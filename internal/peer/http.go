package peer

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// StartHTTP exposes the daemon's telemetry over HTTP on addr: a
// Prometheus text-format /metrics page and the standard /debug/pprof
// endpoints. It is opt-in — cmd/p3qd wires it up only when -http is
// given — and never touches the wire protocol: telemetry readers see a
// consistent snapshot by taking the daemon mutex, exactly like a stats
// request. The returned address is useful when addr binds port 0. The
// listener closes with the daemon.
func (d *Daemon) StartHTTP(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("peer: daemon %d telemetry listen: %w", d.cfg.Index, err)
	}
	d.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", d.serveMetrics)
	// pprof handlers mounted explicitly so nothing leaks onto the
	// DefaultServeMux of the embedding process.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	d.serving.Add(1)
	go func() {
		defer d.serving.Done()
		if err := srv.Serve(ln); err != nil {
			_ = err // http.ErrServerClosed or the listener closing at teardown
		}
	}()
	return ln.Addr(), nil
}

// serveMetrics renders the daemon's full telemetry in Prometheus text
// exposition format: the engine-attached obs registry (sim-plane
// counters, query lifecycle tallies, host-plane phase histograms)
// followed by daemon-level series (divergence, event-machine depths,
// per-plane wire volume).
func (d *Daemon) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	var sb strings.Builder

	// The registry and the engine race with cycle stepping; snapshot both
	// under the same mutex that serializes the replica.
	d.mu.Lock()
	d.obs.SampleMemStats()
	d.obs.WritePrometheus(&sb)
	frozen := d.eng.FrozenEvents()
	pending := d.eng.PendingEvents()
	d.mu.Unlock()

	fmt.Fprintf(&sb, "# HELP p3q_daemon_index This daemon's position in the cluster (0 is the lead).\n")
	fmt.Fprintf(&sb, "# TYPE p3q_daemon_index gauge\n")
	fmt.Fprintf(&sb, "p3q_daemon_index %d\n", d.cfg.Index)
	fmt.Fprintf(&sb, "# HELP p3q_divergence_total Wire responses that contradicted the local replica.\n")
	fmt.Fprintf(&sb, "# TYPE p3q_divergence_total counter\n")
	fmt.Fprintf(&sb, "p3q_divergence_total %d\n", d.divergence.Load())
	fmt.Fprintf(&sb, "# HELP p3q_frozen_events Deliveries frozen at offline nodes.\n")
	fmt.Fprintf(&sb, "# TYPE p3q_frozen_events gauge\n")
	fmt.Fprintf(&sb, "p3q_frozen_events %d\n", frozen)
	fmt.Fprintf(&sb, "# HELP p3q_pending_events In-flight deliveries in the event queue.\n")
	fmt.Fprintf(&sb, "# TYPE p3q_pending_events gauge\n")
	fmt.Fprintf(&sb, "p3q_pending_events %d\n", pending)
	fmt.Fprintf(&sb, "# HELP p3q_wire_msgs_total Wire messages sent, by connection plane.\n")
	fmt.Fprintf(&sb, "# TYPE p3q_wire_msgs_total counter\n")
	for i := range d.counters {
		fmt.Fprintf(&sb, "p3q_wire_msgs_total{plane=%q} %d\n", planeNames[i], d.counters[i].msgs.Load())
	}
	fmt.Fprintf(&sb, "# HELP p3q_wire_bytes_total Bytes put on the wire, by connection plane.\n")
	fmt.Fprintf(&sb, "# TYPE p3q_wire_bytes_total counter\n")
	for i := range d.counters {
		fmt.Fprintf(&sb, "p3q_wire_bytes_total{plane=%q} %d\n", planeNames[i], d.counters[i].bytes.Load())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := fmt.Fprint(w, sb.String()); err != nil {
		_ = err // scraper hung up mid-page
	}
}

package peer

import (
	"fmt"

	"p3q/internal/core"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
	"p3q/internal/wire"
)

// handle dispatches one incoming wire message. Handlers that must speak
// on other links (partial-result delivery, gateway forwarding) do so
// without holding the daemon mutex, so the conversation mesh cannot
// deadlock: no goroutine ever waits on the wire while holding a lock
// another daemon's request needs.
func (d *Daemon) handle(req wire.Msg) wire.Msg {
	switch m := req.(type) {
	case *wire.Hello:
		return d.serveHello(m)
	case *wire.Step:
		// Lockstep operations need the full mesh: stepping triggers an
		// exchange phase that calls every other daemon. A freshly-started
		// daemon can be stepped by the lead before its own Connect
		// finishes, so hold the request until then — each connection has
		// its own serving goroutine, so blocking here blocks nobody else.
		if !d.waitReady() {
			return nil // never connected: drop the conn, the lead reports it
		}
		seq := d.stepLocal(m.Kind)
		if seq != m.Seq {
			d.divergence.Add(1)
		}
		return &wire.StepAck{Seq: seq}
	case *wire.ExchangeGo:
		if !d.waitReady() {
			return nil
		}
		if err := d.exchangePhase(m.Seq); err != nil {
			d.divergence.Add(1)
		}
		return &wire.ExchangeAck{Seq: m.Seq, Divergence: d.divergence.Load()}
	case *wire.ViewExchangeReq:
		return d.serveView(m)
	case *wire.TopExchangeReq:
		return d.serveTop(m)
	case *wire.DirectFetchReq:
		return d.serveFetch(m)
	case *wire.EagerForwardReq:
		return d.serveEagerForward(m)
	case *wire.PartialResult:
		d.acceptPartial(m)
		return &wire.PartialResultAck{}
	case *wire.QuerySubmit:
		return d.serveSubmit(m)
	case *wire.QueryIssue:
		if !d.waitReady() {
			return nil
		}
		qid, ok := d.issueLocal(trace.Query{Querier: m.Querier, Tags: m.Tags})
		return &wire.QueryIssueAck{OK: ok, Qid: qid}
	case *wire.QueryStatus:
		return d.serveStatus(m)
	case *wire.Stats:
		return d.serveStats()
	case *wire.Shutdown:
		d.stopOnce.Do(func() { close(d.stopCh) })
		return &wire.ShutdownAck{}
	default:
		d.divergence.Add(1)
		return nil // protocol confusion: drop the connection
	}
}

func (d *Daemon) serveHello(m *wire.Hello) wire.Msg {
	reject := func(format string, args ...any) wire.Msg {
		return &wire.HelloAck{OK: false, Index: uint32(d.cfg.Index), Reason: fmt.Sprintf(format, args...)}
	}
	if int(m.Index) < 0 || int(m.Index) >= len(d.cfg.Addrs) || int(m.Index) == d.cfg.Index {
		return reject("daemon index %d not valid in a %d-daemon cluster", m.Index, len(d.cfg.Addrs))
	}
	if int(m.Users) != d.cfg.Gen.Users {
		return reject("universe size %d, ours is %d", m.Users, d.cfg.Gen.Users)
	}
	lo, hi := hostedRange(d.cfg.Gen.Users, len(d.cfg.Addrs), int(m.Index))
	if tagging.UserID(m.Lo) != lo || tagging.UserID(m.Hi) != hi {
		return reject("daemon %d claims range [%d,%d), layout says [%d,%d)", m.Index, m.Lo, m.Hi, lo, hi)
	}
	if m.Seed != d.cfg.Engine.Seed {
		return reject("seed %d, ours is %d", m.Seed, d.cfg.Engine.Seed)
	}
	if sum := hashSum(fmt.Sprintf("%+v", d.cfg.Engine)); m.ConfigSum != sum {
		return reject("engine config sum %x, ours is %x", m.ConfigSum, sum)
	}
	if sum := hashSum(fmt.Sprintf("%+v", d.cfg.Gen)); m.DatasetSum != sum {
		return reject("dataset sum %x, ours is %x", m.DatasetSum, sum)
	}
	return &wire.HelloAck{OK: true, Index: uint32(d.cfg.Index)}
}

// currentCycle fetches the cycle state if it matches the request's
// coordinates; a mismatch means the peers disagree about where the
// lockstep stands.
func (d *Daemon) currentCycle(kind uint8, seq uint64) *cycleState {
	d.mu.Lock()
	cs := d.cycle
	d.mu.Unlock()
	if cs == nil || cs.kind != kind || cs.seq != seq {
		d.divergence.Add(1)
		return nil
	}
	return cs
}

func (d *Daemon) serveView(m *wire.ViewExchangeReq) wire.Msg {
	cs := d.currentCycle(wire.StepLazy, m.Seq)
	if cs == nil || !d.hosts(m.Partner) {
		d.divergence.Add(1)
		return &wire.ViewExchangeResp{}
	}
	v := cs.views[pairKey{m.Initiator, m.Partner}]
	if v == nil || !refsMatch(m.Buf, v.BufA) {
		d.divergence.Add(1)
		return &wire.ViewExchangeResp{}
	}
	return &wire.ViewExchangeResp{Buf: refsToWire(v.BufB)}
}

func (d *Daemon) serveTop(m *wire.TopExchangeReq) wire.Msg {
	cs := d.currentCycle(wire.StepLazy, m.Seq)
	if cs == nil || !d.hosts(m.Partner) {
		d.divergence.Add(1)
		return &wire.TopExchangeResp{}
	}
	t := cs.tops[pairKey{m.Initiator, m.Partner}]
	if t == nil || !refsMatch(m.Offers, t.OffersA) {
		d.divergence.Add(1)
		return &wire.TopExchangeResp{}
	}
	return &wire.TopExchangeResp{Offers: refsToWire(t.OffersB)}
}

func (d *Daemon) serveFetch(m *wire.DirectFetchReq) wire.Msg {
	cs := d.currentCycle(wire.StepLazy, m.Seq)
	if cs == nil || !d.hosts(m.Owner) {
		d.divergence.Add(1)
		return &wire.DirectFetchResp{}
	}
	// Fetches from one requester arrive in capture order on its serial
	// link, so popping the expectation queue front matches them up.
	d.mu.Lock()
	key := pairKey{m.Requester, m.Owner}
	queue := cs.fetches[key]
	var offer core.DigestRef
	found := len(queue) > 0
	if found {
		offer = queue[0]
		cs.fetches[key] = queue[1:]
	}
	d.mu.Unlock()
	if !found {
		d.divergence.Add(1)
		return &wire.DirectFetchResp{}
	}
	return &wire.DirectFetchResp{Offer: refToWire(offer)}
}

func (d *Daemon) serveEagerForward(m *wire.EagerForwardReq) wire.Msg {
	cs := d.currentCycle(wire.StepEager, m.Seq)
	if cs == nil || !d.hosts(m.Dest) {
		d.divergence.Add(1)
		return &wire.EagerForwardResp{}
	}
	pc := cs.pairs[eagerKey{m.Qid, m.Initiator}]
	if pc == nil || !pc.Ok || pc.Dest != m.Dest || pc.Querier != m.Querier ||
		!tagsEqual(m.Tags, pc.Tags) || !usersEqual(m.Branch, pc.Branch) ||
		!refsMatch(m.Offers, pc.OffersA) {
		d.divergence.Add(1)
		return &wire.EagerForwardResp{}
	}
	// The destination resolves the branch against its storage and, when
	// anything resolved, sends the partial result list on to the querier
	// before answering the initiator — the natural causal order of
	// Algorithm 3. No daemon lock is held across this call.
	if pc.Delivered {
		if err := d.deliverPartial(cs, pc); err != nil {
			d.divergence.Add(1)
		}
	}
	return &wire.EagerForwardResp{Returned: pc.Returned, Offers: refsToWire(pc.OffersB)}
}

func (d *Daemon) serveSubmit(m *wire.QuerySubmit) wire.Msg {
	q := trace.Query{Querier: m.Querier, Tags: m.Tags}
	if d.cfg.Index == 0 {
		qid, err := d.SubmitQuery(q)
		if err != nil {
			return &wire.QuerySubmitAck{OK: false, Reason: err.Error()}
		}
		return &wire.QuerySubmitAck{OK: true, Qid: qid}
	}
	// Members relay to the lead, which is the only daemon allowed to
	// interleave cluster operations.
	resp, err := d.gatewayCall(0, m)
	if err != nil {
		return &wire.QuerySubmitAck{OK: false, Reason: err.Error()}
	}
	ack, ok := resp.(*wire.QuerySubmitAck)
	if !ok {
		return &wire.QuerySubmitAck{OK: false, Reason: fmt.Sprintf("lead answered %T", resp)}
	}
	return ack
}

func (d *Daemon) serveStatus(m *wire.QueryStatus) wire.Msg {
	d.mu.Lock()
	qr := d.runs[m.Qid]
	st := d.queries[m.Qid]
	d.mu.Unlock()
	if qr == nil {
		return &wire.QueryStatusResp{}
	}
	if st == nil {
		// Known query, querier hosted elsewhere: relay to the daemon
		// running its state machine.
		target := d.daemonOf(qr.Query.Querier)
		if target == d.cfg.Index {
			return &wire.QueryStatusResp{}
		}
		resp, err := d.gatewayCall(target, m)
		if err != nil {
			return &wire.QueryStatusResp{}
		}
		if sr, ok := resp.(*wire.QueryStatusResp); ok {
			return sr
		}
		return &wire.QueryStatusResp{}
	}
	d.mu.Lock()
	resp := &wire.QueryStatusResp{
		Known:  true,
		Done:   st.done,
		Cycles: uint32(st.cycles),
		Used:   uint32(len(st.used)),
		Needed: uint32(st.needed),
	}
	if st.done {
		resp.Results = append([]topk.Entry(nil), st.results...)
	}
	d.mu.Unlock()
	// Aggregate the query's traffic across the cluster: each daemon owns
	// the byte share of the gossips its hosted nodes initiated.
	row := d.clusterQueryBytes(m.Qid)
	resp.Forwarded = row.Forwarded
	resp.Returned = row.Returned
	resp.PartialResults = row.PartialResults
	resp.Maintenance = row.Maintenance
	return resp
}

// clusterQueryBytes sums one query's wire-layer byte attribution across
// every daemon. Called without the daemon lock; peers answer from brief
// critical sections.
func (d *Daemon) clusterQueryBytes(qid uint64) wire.QueryStat {
	total := wire.QueryStat{Qid: qid}
	add := func(row *wire.QueryStat) {
		total.Forwarded += row.Forwarded
		total.Returned += row.Returned
		total.PartialResults += row.PartialResults
		total.Maintenance += row.Maintenance
	}
	d.mu.Lock()
	if row := d.qstats[qid]; row != nil {
		add(row)
	}
	d.mu.Unlock()
	for i := range d.cfg.Addrs {
		if i == d.cfg.Index {
			continue
		}
		resp, err := d.gatewayCall(i, &wire.Stats{})
		if err != nil {
			continue
		}
		sr, ok := resp.(*wire.StatsResp)
		if !ok {
			continue
		}
		for i := range sr.Queries {
			if sr.Queries[i].Qid == qid {
				add(&sr.Queries[i])
			}
		}
	}
	return total
}

func (d *Daemon) serveStats() wire.Msg {
	d.mu.Lock()
	defer d.mu.Unlock()
	plan, commit := d.eng.PhaseDurations()
	_, skewMax, _, _ := d.obs.CommitSkew()
	resp := &wire.StatsResp{
		Index:         uint32(d.cfg.Index),
		LazyCycles:    uint64(d.eng.LazyCycles()),
		EagerCycles:   uint64(d.eng.EagerCycles()),
		Divergence:    d.divergence.Load(),
		FrozenEvents:  uint32(d.eng.FrozenEvents()),
		PendingEvents: uint32(d.eng.PendingEvents()),
		PlanNanos:     uint64(plan.Nanoseconds()),
		CommitNanos:   uint64(commit.Nanoseconds()),
		SkewMaxNanos:  uint64(skewMax.Nanoseconds()),
	}
	planes := []*wire.PlaneStat{&resp.Data, &resp.Ctrl, &resp.Gateway, &resp.Served}
	for i := range d.counters {
		planes[i].Msgs = d.counters[i].msgs.Load()
		planes[i].Bytes = d.counters[i].bytes.Load()
		resp.WireMsgs += planes[i].Msgs
		resp.WireBytes += planes[i].Bytes
	}
	for _, qid := range d.qsOrder {
		row := *d.qstats[qid]
		if qr := d.runs[qid]; qr != nil {
			row.Done = qr.Done()
		}
		resp.Queries = append(resp.Queries, row)
	}
	return resp
}

// ---------------------------------------------------------------------
// Capture/wire conversions and comparisons.

func refToWire(r core.DigestRef) wire.DigestRef {
	return wire.DigestRef{Owner: r.Owner, Version: uint32(r.Version), Bytes: uint32(r.Bytes)}
}

func refsToWire(refs []core.DigestRef) []wire.DigestRef {
	if len(refs) == 0 {
		return nil
	}
	out := make([]wire.DigestRef, len(refs))
	for i, r := range refs {
		out[i] = refToWire(r)
	}
	return out
}

// refsMatch compares a wire batch against the captured one.
func refsMatch(got []wire.DigestRef, want []core.DigestRef) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != refToWire(want[i]) {
			return false
		}
	}
	return true
}

func usersEqual(a, b []tagging.UserID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func tagsEqual(a, b []tagging.TagID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func entriesEqual(a, b []topk.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package peer hosts the p3qd daemon: a process that holds a contiguous
// range of P3Q nodes and speaks the internal/wire protocol with the other
// daemons of a cluster.
//
// # Replication model
//
// Every daemon steps a full deterministic core.Engine replica — the
// simulator is the executable spec, and each daemon runs it. Identical
// dataset, configuration and seed make the replicas bit-identical, so a
// daemon always knows what every exchange of a cycle must contain; the
// captured cycle description (core.LazyCapture / core.EagerCapture) tells
// it which exchanges its hosted nodes initiate, with whom, carrying what.
// The daemons then really speak those exchanges over the wire for every
// cross-daemon pair: the initiator's daemon sends the real content, the
// responder answers from its own replica's capture — computed by the same
// core code paths — and the initiator verifies the response against its
// local capture. Any mismatch increments the divergence counter: the
// simulator-as-oracle contract, enforced per message.
//
// # Lockstep cycles
//
// The lead daemon (index 0) drives the cluster in a two-phase lockstep:
// a Step broadcast makes every replica advance one cycle (with capture),
// then an ExchangeGo broadcast makes every daemon run the cycle's wire
// conversations for the initiators it hosts. Queries are issued between
// cycles through a QueryIssue broadcast, so every replica assigns the
// same query ID. Within a phase daemons work concurrently; the lead
// collects acks before opening the next phase.
//
// # Scope
//
// The v1 daemon assumes the paper's static deployment: no churn, static
// profiles, synchronous delivery (core.Config.Latency == nil). Profile
// digests travel as (owner, version) references — the dataset is the
// shared blob store, as in internal/checkpoint — while the traffic
// accounting still charges the full §3.3 sizes the references stand for.
package peer

import (
	"fmt"
	"net"
	"sync"
)

// Transport abstracts how daemons reach each other, so the same daemon
// code runs over real TCP sockets (cmd/p3qd) and over an in-memory
// fabric (the smoke and cross-check tests).
type Transport interface {
	Listen(addr string) (net.Listener, error)
	Dial(addr string) (net.Conn, error)
}

// TCP is the production transport: plain TCP sockets.
type TCP struct{}

// Listen implements Transport.
func (TCP) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Dial implements Transport.
func (TCP) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Fabric is an in-memory transport: listeners register under their
// address and dials produce net.Pipe pairs. It gives the tests a real
// byte stream — framing, truncation and interleaving behave exactly as
// on a socket — without ports or timing dependence.
type Fabric struct {
	mu        sync.Mutex
	listeners map[string]*fabricListener
}

// NewFabric returns an empty in-memory transport.
func NewFabric() *Fabric {
	return &Fabric{listeners: make(map[string]*fabricListener)}
}

// Listen implements Transport.
func (f *Fabric) Listen(addr string) (net.Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, taken := f.listeners[addr]; taken {
		return nil, fmt.Errorf("peer: fabric address %q already bound", addr)
	}
	l := &fabricListener{fabric: f, addr: addr, accept: make(chan net.Conn)}
	f.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (f *Fabric) Dial(addr string) (net.Conn, error) {
	f.mu.Lock()
	l := f.listeners[addr]
	f.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("peer: fabric address %q not listening", addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed():
		return nil, fmt.Errorf("peer: fabric address %q closed", addr)
	}
}

type fabricListener struct {
	fabric *Fabric
	addr   string
	accept chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
	doneInit  sync.Once
}

func (l *fabricListener) closed() chan struct{} {
	l.doneInit.Do(func() { l.done = make(chan struct{}) })
	return l.done
}

// Accept implements net.Listener.
func (l *fabricListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed():
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *fabricListener) Close() error {
	l.closeOnce.Do(func() {
		l.fabric.mu.Lock()
		delete(l.fabric.listeners, l.addr)
		l.fabric.mu.Unlock()
		close(l.closed())
	})
	return nil
}

// Addr implements net.Listener.
func (l *fabricListener) Addr() net.Addr { return fabricAddr(l.addr) }

type fabricAddr string

func (a fabricAddr) Network() string { return "fabric" }
func (a fabricAddr) String() string  { return string(a) }

package peer

import (
	"fmt"

	"p3q/internal/tagging"
	"p3q/internal/wire"
)

// Client is the thin gateway side of the wire protocol: what cmd/p3qctl
// (and the test harnesses) use to talk to any daemon of a cluster. It
// speaks the same frames as the daemons; queries submitted through a
// member are relayed to the lead transparently.
type Client struct {
	rc       *rpcConn
	counters wireCounters
}

// DialClient connects to a daemon.
func DialClient(tr Transport, addr string) (*Client, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("peer: dialing %s: %w", addr, err)
	}
	c := &Client{}
	c.rc = newRPCConn(conn, &c.counters)
	return c, nil
}

// Close drops the connection.
func (c *Client) Close() {
	if err := c.rc.Close(); err != nil {
		_ = err // already closed
	}
}

// Submit issues a query cluster-wide and returns its ID.
func (c *Client) Submit(querier tagging.UserID, tags []tagging.TagID) (uint64, error) {
	resp, err := c.rc.Call(&wire.QuerySubmit{Querier: querier, Tags: tags})
	if err != nil {
		return 0, err
	}
	ack, ok := resp.(*wire.QuerySubmitAck)
	if !ok {
		return 0, fmt.Errorf("peer: submit answered with %T", resp)
	}
	if !ack.OK {
		return 0, fmt.Errorf("peer: submit rejected: %s", ack.Reason)
	}
	return ack.Qid, nil
}

// Status fetches a query's progress.
func (c *Client) Status(qid uint64) (*wire.QueryStatusResp, error) {
	resp, err := c.rc.Call(&wire.QueryStatus{Qid: qid})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.QueryStatusResp)
	if !ok {
		return nil, fmt.Errorf("peer: status answered with %T", resp)
	}
	return sr, nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats() (*wire.StatsResp, error) {
	resp, err := c.rc.Call(&wire.Stats{})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.StatsResp)
	if !ok {
		return nil, fmt.Errorf("peer: stats answered with %T", resp)
	}
	return sr, nil
}

// Shutdown asks the daemon to stop.
func (c *Client) Shutdown() error {
	resp, err := c.rc.Call(&wire.Shutdown{})
	if err != nil {
		return err
	}
	if _, ok := resp.(*wire.ShutdownAck); !ok {
		return fmt.Errorf("peer: shutdown answered with %T", resp)
	}
	return nil
}

package peer

import (
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"p3q/internal/core"
	"p3q/internal/obs"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
	"p3q/internal/wire"
)

// Config describes one daemon's place in a cluster. Every daemon of a
// cluster must be constructed from the same Addrs, Gen and Engine values:
// the replicas are only interchangeable when the whole deterministic
// universe matches, and the Hello handshake rejects any peer whose sums
// differ.
type Config struct {
	// Index is this daemon's position in Addrs; daemon 0 is the lead.
	Index int
	// Addrs lists every daemon's address, in daemon-index order.
	Addrs []string
	// Gen regenerates the shared dataset locally — daemons never ship
	// profile bits, they agree on the generator.
	Gen trace.GenParams
	// Engine configures the replica. Latency must be nil: the wire
	// protocol is cycle-aligned (synchronous delivery).
	Engine core.Config
	// ConnectTimeout bounds how long Connect waits for peers to come up.
	// Zero means 10 seconds.
	ConnectTimeout time.Duration
}

// hostedRange returns the contiguous node range daemon i hosts out of n.
func hostedRange(users, n, i int) (lo, hi tagging.UserID) {
	return tagging.UserID(i * users / n), tagging.UserID((i + 1) * users / n)
}

// queryState is the querier-side state machine a daemon runs for each
// query whose querier it hosts: the incremental NRA fed by wire-received
// partial result lists, and the used-profile / active-branch bookkeeping
// that drives done-detection (a query is done exactly when no node holds
// a non-empty branch). core's capture tests pin this replay equal to the
// engine's own counters.
type queryState struct {
	qid     uint64
	querier tagging.UserID
	needed  int

	used   map[tagging.UserID]struct{}
	active map[tagging.UserID]struct{}
	nra    *topk.NRA
	batch  [][]topk.Entry // this cycle's partial lists, capture order

	cycles  int
	done    bool
	results []topk.Entry
}

// pairKey identifies a lazy exchange by its two endpoints.
type pairKey struct{ a, b tagging.UserID }

// eagerKey identifies an eager gossip within a cycle.
type eagerKey struct {
	qid       uint64
	initiator tagging.UserID
}

// partialKey identifies one partial-result delivery within a cycle.
type partialKey = eagerKey

// cycleState is everything a daemon knows about the cycle currently in
// its exchange phase: the capture (immutable once built) and the
// responder-side indexes into it. It is replaced wholesale at each step,
// and the step/exchange barrier guarantees no exchange for cycle N runs
// after cycle N+1 steps.
type cycleState struct {
	seq  uint64
	kind uint8

	lazy  *core.LazyCapture
	eager *core.EagerCapture

	views   map[pairKey]*core.ViewExchangeCap
	tops    map[pairKey]*core.TopExchangeCap
	fetches map[pairKey][]core.DigestRef // expected offer queue, send order
	pairs   map[eagerKey]*core.EagerPairCap

	// Partial-result collection for hosted queriers: the exchange phase
	// acks only after every delivery captured for this cycle has arrived
	// (or timed out into a divergence).
	expected     int
	received     map[partialKey]*wire.PartialResult
	partialsDone chan struct{}
	reconciled   bool
}

// Daemon is one p3qd peer: a full engine replica plus the wire protocol
// endpoints for the contiguous node range it hosts.
type Daemon struct {
	cfg    Config
	lo, hi tagging.UserID

	ds  *trace.Dataset
	eng *core.Engine

	tr      Transport
	ln      net.Listener
	peersMu sync.RWMutex
	// peers are the data links: exchange-plane traffic (view/top/fetch/
	// eager conversations, partial results). ctrl are the lead's control
	// links for Step/ExchangeGo/QueryIssue broadcasts, nil on members.
	// The planes never share a connection: an ExchangeGo call parks on
	// its conn until the member's whole exchange phase completes, and the
	// lead's own exchange traffic to that member must not queue behind it.
	peers    []*rpcConn // by daemon index; nil at own index and before Connect
	ctrl     []*rpcConn
	counters [numPlanes]wireCounters
	serving  sync.WaitGroup
	accepted connSet

	// obs observes the replica: sim-plane counters mirror engine state,
	// host-plane histograms time the phases. Attached at Start; all
	// registry access races with the engine, so readers take d.mu.
	obs *obs.Registry

	// httpLn serves the opt-in /metrics + pprof endpoint, nil unless
	// StartHTTP was called.
	httpLn net.Listener

	// leadMu serializes the lead's cluster operations: cycle broadcasts
	// and query issues never interleave, which is what makes every
	// replica execute the identical operation sequence.
	leadMu sync.Mutex

	// mu guards the replica and all mutable daemon state. It is never
	// held across an outgoing Call — handlers and exchange loops read
	// what they need under mu, release it, then speak on the wire —
	// which is what keeps the full-duplex conversation mesh
	// deadlock-free.
	mu      sync.Mutex
	cycle   *cycleState
	queries map[uint64]*queryState
	qorder  []uint64
	runs    map[uint64]*core.QueryRun

	qstats  map[uint64]*wire.QueryStat // this daemon's per-query byte share (hosted initiators)
	qsOrder []uint64

	divergence atomic.Uint64

	readyOnce sync.Once
	ready     chan struct{} // closed when Connect completes the mesh

	stopOnce sync.Once
	stopCh   chan struct{}
}

// New builds a daemon. Call Start to bring it up and Connect to join the
// mesh.
func New(cfg Config, tr Transport) (*Daemon, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("peer: empty address list")
	}
	if cfg.Index < 0 || cfg.Index >= len(cfg.Addrs) {
		return nil, fmt.Errorf("peer: index %d outside the %d-daemon cluster", cfg.Index, len(cfg.Addrs))
	}
	if cfg.Engine.Latency != nil {
		return nil, fmt.Errorf("peer: the wire protocol is cycle-aligned; Engine.Latency must be nil")
	}
	lo, hi := hostedRange(cfg.Gen.Users, len(cfg.Addrs), cfg.Index)
	d := &Daemon{
		cfg:     cfg,
		lo:      lo,
		hi:      hi,
		tr:      tr,
		peers:   make([]*rpcConn, len(cfg.Addrs)),
		ctrl:    make([]*rpcConn, len(cfg.Addrs)),
		queries: make(map[uint64]*queryState),
		runs:    make(map[uint64]*core.QueryRun),
		qstats:  make(map[uint64]*wire.QueryStat),
		ready:   make(chan struct{}),
		stopCh:  make(chan struct{}),
	}
	return d, nil
}

// Start regenerates the dataset, bootstraps the replica, and begins
// serving the wire protocol on this daemon's address.
func (d *Daemon) Start() error {
	d.ds = trace.Generate(d.cfg.Gen)
	d.eng = core.New(d.ds, d.cfg.Engine)
	// Always-on telemetry: attaching the registry is fingerprint-neutral
	// (pinned by core's invariance tests), and the stats/metrics surfaces
	// read from it.
	d.obs = obs.New()
	d.eng.SetObs(d.obs)
	d.eng.Bootstrap()
	ln, err := d.tr.Listen(d.cfg.Addrs[d.cfg.Index])
	if err != nil {
		return fmt.Errorf("peer: daemon %d listen: %w", d.cfg.Index, err)
	}
	d.ln = ln
	d.serving.Add(1)
	go serveListener(ln, &d.counters[planeServed], d.handle, &d.serving, &d.accepted)
	return nil
}

// Connect dials every other daemon and performs the Hello handshake,
// retrying until the peer is up or the timeout elapses.
func (d *Daemon) Connect() error {
	timeout := d.cfg.ConnectTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for i, addr := range d.cfg.Addrs {
		if i == d.cfg.Index {
			continue
		}
		rc, err := d.dialPeer(addr, i, deadline, planeData)
		if err != nil {
			return err
		}
		d.peersMu.Lock()
		d.peers[i] = rc
		d.peersMu.Unlock()
		if d.cfg.Index == 0 {
			cc, err := d.dialPeer(addr, i, deadline, planeCtrl)
			if err != nil {
				return err
			}
			d.peersMu.Lock()
			d.ctrl[i] = cc
			d.peersMu.Unlock()
		}
	}
	d.readyOnce.Do(func() { close(d.ready) })
	return nil
}

// dialPeer establishes one handshaked link to daemon i on the given
// connection plane.
func (d *Daemon) dialPeer(addr string, i int, deadline time.Time, plane int) (*rpcConn, error) {
	conn, err := d.dialUntil(addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("peer: daemon %d dialing daemon %d: %w", d.cfg.Index, i, err)
	}
	rc := newRPCConn(conn, &d.counters[plane])
	if err := d.handshake(rc, i); err != nil {
		if cerr := rc.Close(); cerr != nil {
			err = fmt.Errorf("%w (and closing: %v)", err, cerr)
		}
		return nil, err
	}
	return rc, nil
}

// waitReady holds an incoming lockstep request until this daemon's own
// Connect has completed the mesh, bounded by the connect timeout. It
// reports false if the daemon is shut down or never finishes connecting.
func (d *Daemon) waitReady() bool {
	timeout := d.cfg.ConnectTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	select {
	case <-d.ready:
		return true
	case <-d.stopCh:
		return false
	case <-time.After(timeout):
		return false
	}
}

// peer returns the link to daemon i, or nil before Connect reaches it.
func (d *Daemon) peer(i int) *rpcConn {
	d.peersMu.RLock()
	defer d.peersMu.RUnlock()
	return d.peers[i]
}

// connectedPeers snapshots the mesh, failing while any link is still
// missing: cluster operations must never silently run on a subset of
// the replicas, or the replicas stop being replicas.
func (d *Daemon) connectedPeers() ([]*rpcConn, error) {
	d.peersMu.RLock()
	defer d.peersMu.RUnlock()
	for i, p := range d.peers {
		if i != d.cfg.Index && p == nil {
			return nil, fmt.Errorf("peer: daemon %d is not connected to daemon %d yet", d.cfg.Index, i)
		}
	}
	return append([]*rpcConn(nil), d.peers...), nil
}

// gatewayCall dials a short-lived connection for gateway-plane traffic:
// submit and status relays, cluster-wide stats aggregation. Gateway
// calls never share a link with the lockstep or exchange planes — a
// relay parked behind the lead's cycle mutex must not hold the mutex of
// a connection the cycle itself needs to complete.
func (d *Daemon) gatewayCall(target int, req wire.Msg) (wire.Msg, error) {
	conn, err := d.tr.Dial(d.cfg.Addrs[target])
	if err != nil {
		return nil, fmt.Errorf("peer: gateway dial to daemon %d: %w", target, err)
	}
	rc := newRPCConn(conn, &d.counters[planeGateway])
	defer func() {
		if cerr := rc.Close(); cerr != nil {
			_ = cerr // short-lived conn; remote may close first
		}
	}()
	return rc.Call(req)
}

// connectedCtrl snapshots the lead's control links, failing while any is
// still missing.
func (d *Daemon) connectedCtrl() ([]*rpcConn, error) {
	d.peersMu.RLock()
	defer d.peersMu.RUnlock()
	for i, p := range d.ctrl {
		if i != d.cfg.Index && p == nil {
			return nil, fmt.Errorf("peer: daemon %d has no control link to daemon %d yet", d.cfg.Index, i)
		}
	}
	return append([]*rpcConn(nil), d.ctrl...), nil
}

func (d *Daemon) dialUntil(addr string, deadline time.Time) (net.Conn, error) {
	for {
		conn, err := d.tr.Dial(addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (d *Daemon) handshake(rc *rpcConn, target int) error {
	resp, err := rc.Call(&wire.Hello{
		Index:      uint32(d.cfg.Index),
		Lo:         uint32(d.lo),
		Hi:         uint32(d.hi),
		Users:      uint32(d.cfg.Gen.Users),
		Seed:       d.cfg.Engine.Seed,
		ConfigSum:  hashSum(fmt.Sprintf("%+v", d.cfg.Engine)),
		DatasetSum: hashSum(fmt.Sprintf("%+v", d.cfg.Gen)),
	})
	if err != nil {
		return err
	}
	ack, ok := resp.(*wire.HelloAck)
	if !ok {
		return fmt.Errorf("peer: handshake with daemon %d: unexpected %T", target, resp)
	}
	if !ack.OK {
		return fmt.Errorf("peer: daemon %d rejected handshake: %s", target, ack.Reason)
	}
	if int(ack.Index) != target {
		return fmt.Errorf("peer: dialed daemon %d but reached daemon %d", target, ack.Index)
	}
	return nil
}

// hashSum is FNV-1a over a canonical rendering — enough to catch two
// daemons launched with different flags.
func hashSum(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // documented to never fail
	return h.Sum64()
}

// Close tears the daemon down: listener, peer links, serving goroutines.
func (d *Daemon) Close() {
	d.stopOnce.Do(func() { close(d.stopCh) })
	if d.ln != nil {
		if err := d.ln.Close(); err != nil {
			_ = err // listener already closed
		}
	}
	if d.httpLn != nil {
		if err := d.httpLn.Close(); err != nil {
			_ = err // telemetry listener already closed
		}
	}
	d.peersMu.RLock()
	links := append([]*rpcConn(nil), d.peers...)
	links = append(links, d.ctrl...)
	d.peersMu.RUnlock()
	for _, p := range links {
		if p != nil {
			if err := p.Close(); err != nil {
				_ = err // link already closed
			}
		}
	}
	d.accepted.closeAll()
	d.serving.Wait()
}

// ShutdownRequested is closed when a wire Shutdown arrives; cmd/p3qd
// exits on it.
func (d *Daemon) ShutdownRequested() <-chan struct{} { return d.stopCh }

// Divergence returns how many wire responses contradicted this daemon's
// replica so far. A healthy cluster stays at zero forever.
func (d *Daemon) Divergence() uint64 { return d.divergence.Load() }

// Engine exposes the replica for tests and metrics; callers must not
// mutate it.
func (d *Daemon) Engine() *core.Engine { return d.eng }

// Obs exposes the daemon's telemetry registry. The registry races with
// the stepping replica — read it only under the same serialization the
// daemon uses (see Daemon.mu), or through Metrics/serveStats.
func (d *Daemon) Obs() *obs.Registry { return d.obs }

func (d *Daemon) hosts(u tagging.UserID) bool { return u >= d.lo && u < d.hi }

// daemonOf returns the index of the daemon hosting u.
func (d *Daemon) daemonOf(u tagging.UserID) int {
	n := len(d.cfg.Addrs)
	for i := 0; i < n; i++ {
		lo, hi := hostedRange(d.cfg.Gen.Users, n, i)
		if u >= lo && u < hi {
			return i
		}
	}
	return 0
}

// ---------------------------------------------------------------------
// Lead-side cycle driving.

var errNotLead = fmt.Errorf("peer: only the lead daemon (index 0) drives cycles")

// RunLazyCycle steps the whole cluster through one lazy cycle: Step
// broadcast (every replica advances, captures in hand), then ExchangeGo
// broadcast (every daemon speaks its hosted initiators' exchanges).
func (d *Daemon) RunLazyCycle() error { return d.runCycle(wire.StepLazy) }

// RunEagerCycle steps the whole cluster through one eager cycle.
func (d *Daemon) RunEagerCycle() error { return d.runCycle(wire.StepEager) }

// RunLazyCycles runs n lazy cycles back to back.
func (d *Daemon) RunLazyCycles(n int) error {
	for i := 0; i < n; i++ {
		if err := d.RunLazyCycle(); err != nil {
			return err
		}
	}
	return nil
}

func (d *Daemon) runCycle(kind uint8) error {
	if d.cfg.Index != 0 {
		return errNotLead
	}
	d.leadMu.Lock()
	defer d.leadMu.Unlock()

	if _, err := d.connectedPeers(); err != nil {
		return err
	}
	ctrl, err := d.connectedCtrl()
	if err != nil {
		return err
	}

	// Phase 1: every replica steps. Sequential is fine — stepping makes
	// no outgoing calls.
	seq := d.stepLocal(kind)
	for i, p := range ctrl {
		if p == nil {
			continue
		}
		resp, err := p.Call(&wire.Step{Kind: kind, Seq: seq})
		if err != nil {
			return fmt.Errorf("peer: step broadcast to daemon %d: %w", i, err)
		}
		ack, ok := resp.(*wire.StepAck)
		if !ok || ack.Seq != seq {
			return fmt.Errorf("peer: daemon %d stepped out of lockstep: %+v (want seq %d)", i, resp, seq)
		}
	}

	// Phase 2: every daemon runs its exchanges, concurrently — they call
	// into each other mid-phase. The ExchangeGo call parks on its control
	// link until the member's whole phase completes; the lead's own
	// exchange traffic flows on the separate data links meanwhile.
	errs := make(chan error, len(ctrl))
	inflight := 0
	for i, p := range ctrl {
		if p == nil {
			continue
		}
		inflight++
		go func(i int, p *rpcConn) {
			resp, err := p.Call(&wire.ExchangeGo{Seq: seq})
			if err != nil {
				errs <- fmt.Errorf("peer: exchange broadcast to daemon %d: %w", i, err)
				return
			}
			if ack, ok := resp.(*wire.ExchangeAck); !ok || ack.Seq != seq {
				errs <- fmt.Errorf("peer: daemon %d acked the wrong exchange: %+v (want seq %d)", i, resp, seq)
				return
			}
			errs <- nil
		}(i, p)
	}
	ownErr := d.exchangePhase(seq)
	for ; inflight > 0; inflight-- {
		if err := <-errs; err != nil && ownErr == nil {
			ownErr = err
		}
	}
	return ownErr
}

// SubmitQuery issues a query on every replica of the cluster and returns
// the (cluster-wide identical) query ID. Lead only; members forward wire
// submissions here.
func (d *Daemon) SubmitQuery(q trace.Query) (uint64, error) {
	if d.cfg.Index != 0 {
		return 0, errNotLead
	}
	d.leadMu.Lock()
	defer d.leadMu.Unlock()
	ctrl, err := d.connectedCtrl()
	if err != nil {
		return 0, err
	}
	qid, ok := d.issueLocal(q)
	if !ok {
		return 0, fmt.Errorf("peer: querier %d is offline", q.Querier)
	}
	for i, p := range ctrl {
		if p == nil {
			continue
		}
		resp, err := p.Call(&wire.QueryIssue{Querier: q.Querier, Tags: q.Tags})
		if err != nil {
			return 0, fmt.Errorf("peer: issue broadcast to daemon %d: %w", i, err)
		}
		ack, okResp := resp.(*wire.QueryIssueAck)
		if !okResp || !ack.OK {
			return 0, fmt.Errorf("peer: daemon %d failed to issue the query: %+v", i, resp)
		}
		if ack.Qid != qid {
			d.divergence.Add(1)
			return 0, fmt.Errorf("peer: daemon %d assigned qid %d, lead assigned %d — replicas diverged", i, ack.Qid, qid)
		}
	}
	return qid, nil
}

// AllQueriesDone reports whether every query the cluster has issued is
// complete, per this daemon's replica.
func (d *Daemon) AllQueriesDone() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eng.AllQueriesDone()
}

// RunLead is cmd/p3qd's autonomous driver: warmup lazy cycles, then an
// eager cycle per tick while queries are in flight, and an optional
// background lazy cycle cadence. It returns when the daemon is shut down.
func (d *Daemon) RunLead(warmup int, eagerEvery, lazyEvery time.Duration) error {
	if err := d.RunLazyCycles(warmup); err != nil {
		return err
	}
	eager := time.NewTicker(eagerEvery)
	defer eager.Stop()
	var lazyC <-chan time.Time
	if lazyEvery > 0 {
		lazy := time.NewTicker(lazyEvery)
		defer lazy.Stop()
		lazyC = lazy.C
	}
	for {
		select {
		case <-d.stopCh:
			return nil
		case <-eager.C:
			if !d.AllQueriesDone() {
				if err := d.RunEagerCycle(); err != nil {
					return err
				}
			}
		case <-lazyC:
			if err := d.RunLazyCycle(); err != nil {
				return err
			}
		}
	}
}

// ---------------------------------------------------------------------
// Step phase.

// stepLocal advances the replica one cycle and installs the new cycle
// state. It returns the cycle's sequence number.
func (d *Daemon) stepLocal(kind uint8) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reconcileLocked() // cycle N+1 steps only after N's exchanges acked

	cs := &cycleState{kind: kind, partialsDone: make(chan struct{})}
	if kind == wire.StepLazy {
		cp := d.eng.LazyCycleCaptured()
		cs.seq = cp.Seq
		cs.lazy = cp
		cs.views = make(map[pairKey]*core.ViewExchangeCap, len(cp.Views))
		for i := range cp.Views {
			v := &cp.Views[i]
			cs.views[pairKey{v.Initiator, v.Partner}] = v
		}
		cs.tops = make(map[pairKey]*core.TopExchangeCap, len(cp.Tops))
		cs.fetches = make(map[pairKey][]core.DigestRef)
		for i := range cp.Tops {
			t := &cp.Tops[i]
			if t.HasPartner {
				cs.tops[pairKey{t.Initiator, t.Partner}] = t
			}
			for _, f := range t.Fetches {
				k := pairKey{t.Initiator, f.Owner}
				cs.fetches[k] = append(cs.fetches[k], f.Offer)
			}
		}
	} else {
		cp := d.eng.EagerCycleCaptured()
		cs.seq = cp.Seq
		cs.eager = cp
		cs.pairs = make(map[eagerKey]*core.EagerPairCap, len(cp.Pairs))
		for i := range cp.Pairs {
			pc := &cp.Pairs[i]
			cs.pairs[eagerKey{pc.Qid, pc.Initiator}] = pc
			// The daemon hosting a gossip's initiator owns that pair's
			// byte attribution; summed across daemons these reproduce the
			// engine's per-query totals exactly (pinned by core's capture
			// tests).
			if d.hosts(pc.Initiator) {
				row := d.qstatRowLocked(pc.Qid)
				row.Forwarded += pc.Bytes.Forwarded
				row.Returned += pc.Bytes.Returned
				row.PartialResults += pc.Bytes.PartialResults
				row.Maintenance += pc.Bytes.Maintenance
			}
			if pc.Ok && pc.Delivered && d.hosts(pc.Querier) {
				cs.expected++
			}
		}
		cs.received = make(map[partialKey]*wire.PartialResult, cs.expected)
	}
	if cs.expected == 0 {
		close(cs.partialsDone)
	}
	d.cycle = cs
	return cs.seq
}

func (d *Daemon) qstatRowLocked(qid uint64) *wire.QueryStat {
	row := d.qstats[qid]
	if row == nil {
		row = &wire.QueryStat{Qid: qid}
		d.qstats[qid] = row
		d.qsOrder = append(d.qsOrder, qid)
	}
	return row
}

// issueLocal issues a query on the replica and, when this daemon hosts
// the querier, seeds the querier-side state machine from the capture.
func (d *Daemon) issueLocal(q trace.Query) (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	qr, cp := d.eng.IssueQueryCaptured(q)
	if qr == nil {
		return 0, false
	}
	d.runs[qr.ID] = qr
	if !d.hosts(q.Querier) {
		return qr.ID, true
	}
	st := &queryState{
		qid:     cp.Qid,
		querier: cp.Querier,
		needed:  cp.Needed,
		used:    make(map[tagging.UserID]struct{}, len(cp.UsedOwners)),
		active:  make(map[tagging.UserID]struct{}),
		nra:     topk.NewNRA(d.eng.Config().K),
	}
	for _, o := range cp.UsedOwners {
		st.used[o] = struct{}{}
	}
	st.nra.Run([][]topk.Entry{cp.Local})
	if cp.Done {
		st.done = true
		st.results = st.nra.Drain()
		if !entriesEqual(st.results, cp.Results) {
			d.divergence.Add(1)
		}
	} else {
		st.active[cp.Querier] = struct{}{}
		st.results = st.nra.TopK()
	}
	d.queries[cp.Qid] = st
	d.qorder = append(d.qorder, cp.Qid)
	return qr.ID, true
}

// ---------------------------------------------------------------------
// Exchange phase.

// exchangePhase speaks cycle seq's exchanges for this daemon's hosted
// initiators, waits for the partial results owed to its hosted queriers,
// and folds them into the querier state machines.
func (d *Daemon) exchangePhase(seq uint64) error {
	d.mu.Lock()
	cs := d.cycle
	d.mu.Unlock()
	if cs == nil || cs.seq != seq {
		d.divergence.Add(1)
		return fmt.Errorf("peer: daemon %d asked to exchange cycle %d but holds %v", d.cfg.Index, seq, cs)
	}
	var err error
	if cs.kind == wire.StepLazy {
		err = d.runLazyExchanges(cs)
	} else {
		err = d.runEagerExchanges(cs)
		select {
		case <-cs.partialsDone:
		case <-time.After(30 * time.Second):
			// Missing deliveries become divergences in the reconcile.
		}
		d.mu.Lock()
		d.reconcileLocked()
		d.mu.Unlock()
	}
	return err
}

// runLazyExchanges walks the capture in canonical order and speaks every
// cross-daemon exchange whose initiator this daemon hosts. Responses are
// verified against the local capture — the replica already knows what the
// partner must answer.
func (d *Daemon) runLazyExchanges(cs *cycleState) error {
	for i := range cs.lazy.Views {
		v := &cs.lazy.Views[i]
		if !d.hosts(v.Initiator) || d.hosts(v.Partner) {
			continue
		}
		resp, err := d.peer(d.daemonOf(v.Partner)).Call(&wire.ViewExchangeReq{
			Seq: cs.seq, Initiator: v.Initiator, Partner: v.Partner, Buf: refsToWire(v.BufA),
		})
		if err != nil {
			return err
		}
		vr, ok := resp.(*wire.ViewExchangeResp)
		if !ok || !refsMatch(vr.Buf, v.BufB) {
			d.divergence.Add(1)
		}
	}
	for i := range cs.lazy.Tops {
		t := &cs.lazy.Tops[i]
		if !d.hosts(t.Initiator) {
			continue
		}
		if t.HasPartner && !d.hosts(t.Partner) {
			resp, err := d.peer(d.daemonOf(t.Partner)).Call(&wire.TopExchangeReq{
				Seq: cs.seq, Initiator: t.Initiator, Partner: t.Partner, Offers: refsToWire(t.OffersA),
			})
			if err != nil {
				return err
			}
			tr, ok := resp.(*wire.TopExchangeResp)
			if !ok || !refsMatch(tr.Offers, t.OffersB) {
				d.divergence.Add(1)
			}
		}
		for _, f := range t.Fetches {
			if d.hosts(f.Owner) {
				continue
			}
			resp, err := d.peer(d.daemonOf(f.Owner)).Call(&wire.DirectFetchReq{
				Seq: cs.seq, Requester: t.Initiator, Owner: f.Owner,
			})
			if err != nil {
				return err
			}
			fr, ok := resp.(*wire.DirectFetchResp)
			if !ok || fr.Offer != refToWire(f.Offer) {
				d.divergence.Add(1)
			}
		}
	}
	return nil
}

// runEagerExchanges walks the capture in canonical pair order. For each
// hosted initiator with a remote destination it speaks the full gossip
// conversation; the destination's daemon sends the partial result to the
// querier's daemon as part of serving the forward. Pairs whose
// destination is also local produce only the partial-result delivery.
func (d *Daemon) runEagerExchanges(cs *cycleState) error {
	for i := range cs.eager.Pairs {
		pc := &cs.eager.Pairs[i]
		if !d.hosts(pc.Initiator) || !pc.Ok {
			continue
		}
		if !d.hosts(pc.Dest) {
			resp, err := d.peer(d.daemonOf(pc.Dest)).Call(&wire.EagerForwardReq{
				Seq:       cs.seq,
				Qid:       pc.Qid,
				Initiator: pc.Initiator,
				Dest:      pc.Dest,
				Querier:   pc.Querier,
				Tags:      pc.Tags,
				Branch:    pc.Branch,
				Offers:    refsToWire(pc.OffersA),
			})
			if err != nil {
				return err
			}
			fr, ok := resp.(*wire.EagerForwardResp)
			if !ok || !usersEqual(fr.Returned, pc.Returned) || !refsMatch(fr.Offers, pc.OffersB) {
				d.divergence.Add(1)
			}
			continue
		}
		if pc.Delivered {
			if err := d.deliverPartial(cs, pc); err != nil {
				return err
			}
		}
	}
	return nil
}

// deliverPartial carries one destination-resolved partial result list to
// the querier's daemon (or straight into the local collection when this
// daemon hosts the querier too).
func (d *Daemon) deliverPartial(cs *cycleState, pc *core.EagerPairCap) error {
	msg := &wire.PartialResult{
		Seq:         cs.seq,
		Qid:         pc.Qid,
		Initiator:   pc.Initiator,
		From:        pc.Dest,
		Querier:     pc.Querier,
		FoundOwners: pc.FoundOwners,
		Entries:     pc.Plist,
	}
	if d.hosts(pc.Querier) {
		d.acceptPartial(msg)
		return nil
	}
	resp, err := d.peer(d.daemonOf(pc.Querier)).Call(msg)
	if err != nil {
		return err
	}
	if _, ok := resp.(*wire.PartialResultAck); !ok {
		d.divergence.Add(1)
	}
	return nil
}

// acceptPartial records an arriving partial result for the cycle,
// verifying it against the local replica's capture of the same gossip.
func (d *Daemon) acceptPartial(msg *wire.PartialResult) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cs := d.cycle
	if cs == nil || cs.kind != wire.StepEager || cs.seq != msg.Seq {
		d.divergence.Add(1)
		return
	}
	key := partialKey{msg.Qid, msg.Initiator}
	pc := cs.pairs[key]
	if pc == nil || !pc.Delivered || !d.hosts(pc.Querier) ||
		pc.Dest != msg.From || pc.Querier != msg.Querier ||
		!usersEqual(msg.FoundOwners, pc.FoundOwners) || !entriesEqual(msg.Entries, pc.Plist) {
		d.divergence.Add(1)
	}
	if _, dup := cs.received[key]; dup {
		d.divergence.Add(1)
		return
	}
	cs.received[key] = msg
	if len(cs.received) >= cs.expected {
		select {
		case <-cs.partialsDone:
		default:
			close(cs.partialsDone)
		}
	}
}

// reconcileLocked is the daemon-side endCycle (Algorithm 4): it replays
// the cycle's captured pairs in canonical order against the hosted
// querier state machines, feeding the wire-received partial lists to each
// NRA and resolving done-detection. Any delivery still missing at this
// point is charged as a divergence.
func (d *Daemon) reconcileLocked() {
	cs := d.cycle
	if cs == nil || cs.kind != wire.StepEager || cs.reconciled {
		return
	}
	cs.reconciled = true
	for i := range cs.eager.Pairs {
		pc := &cs.eager.Pairs[i]
		if !pc.Ok {
			continue
		}
		st := d.queries[pc.Qid]
		if st == nil {
			continue
		}
		if pc.Delivered && d.hosts(pc.Querier) {
			msg := cs.received[partialKey{pc.Qid, pc.Initiator}]
			if msg == nil {
				// The wire never delivered what the replica proves was
				// sent; fall back to the capture so the state machine
				// stays live, but record the divergence.
				d.divergence.Add(1)
				msg = &wire.PartialResult{FoundOwners: pc.FoundOwners, Entries: pc.Plist}
			}
			for _, o := range msg.FoundOwners {
				st.used[o] = struct{}{}
			}
			st.batch = append(st.batch, msg.Entries)
		}
		if len(pc.Keep) > 0 {
			st.active[pc.Dest] = struct{}{}
		}
		if pc.BranchEmptied {
			delete(st.active, pc.Initiator)
		} else {
			st.active[pc.Initiator] = struct{}{}
		}
	}
	for _, qid := range d.qorder {
		st := d.queries[qid]
		if st.done {
			continue
		}
		if len(st.batch) > 0 {
			st.nra.Run(st.batch)
			st.batch = nil
		}
		st.cycles++
		if len(st.active) == 0 {
			st.done = true
			st.results = st.nra.Drain()
			// Simulator-as-oracle on the final answer: the wire-fed NRA
			// must land exactly where the replica's own query run did.
			if qr := d.runs[qid]; qr == nil || !qr.Done() || !entriesEqual(st.results, qr.Results()) {
				d.divergence.Add(1)
			}
		} else {
			st.results = st.nra.TopK()
		}
	}
}

package peer

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"p3q/internal/wire"
)

// Connection planes. A daemon tallies each plane's wire volume
// separately so the stats surface shows where the bytes go: data links
// carry the exchange conversations, ctrl the lead's lockstep broadcasts,
// gateway the short-lived relays, and served is the accepted side of
// every plane (a daemon cannot tell which plane an inbound dial belongs
// to until the conversation starts, so inbound volume pools).
const (
	planeData = iota
	planeCtrl
	planeGateway
	planeServed
	numPlanes
)

// planeNames label the planes on the /metrics page.
var planeNames = [numPlanes]string{"data", "ctrl", "gateway", "served"}

// wireCounters tallies raw wire volume for one connection plane.
type wireCounters struct {
	msgs  atomic.Uint64
	bytes atomic.Uint64
}

// countingConn counts the bytes a connection puts on the wire.
type countingConn struct {
	net.Conn
	counters *wireCounters
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.counters.bytes.Add(uint64(n))
	return n, err
}

// rpcConn is the client side of a daemon-to-daemon link: a synchronous
// request/response channel. Calls are serialized by the mutex, so one
// connection carries one conversation at a time and responses can never
// interleave.
type rpcConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *wire.Writer
	r  *wire.Reader

	counters *wireCounters
}

func newRPCConn(c net.Conn, counters *wireCounters) *rpcConn {
	cc := &countingConn{Conn: c, counters: counters}
	return &rpcConn{c: c, w: wire.NewWriter(cc), r: wire.NewReader(cc), counters: counters}
}

// Call sends req and blocks for the response.
func (c *rpcConn) Call(req wire.Msg) (wire.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteMsg(c.w, req); err != nil {
		return nil, fmt.Errorf("peer: sending %T: %w", req, err)
	}
	c.counters.msgs.Add(1)
	resp, err := wire.ReadMsg(c.r)
	if err != nil {
		return nil, fmt.Errorf("peer: awaiting response to %T: %w", req, err)
	}
	return resp, nil
}

// Close tears the link down.
func (c *rpcConn) Close() error { return c.c.Close() }

// connSet tracks accepted connections so Close can interrupt their
// blocked reads; without it a daemon cannot shut down until every peer
// that dialed it hangs up first.
type connSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// add registers a live connection, or reports that the set is already
// closed and the connection should be dropped.
func (s *connSet) add(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *connSet) remove(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// closeAll closes every tracked connection and refuses new ones.
func (s *connSet) closeAll() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		if err := c.Close(); err != nil {
			_ = err // remote already hung up
		}
	}
}

// serveListener accepts connections and serves each with its own
// goroutine, so a slow conversation on one link never blocks another —
// the lockstep protocol relies on a daemon answering exchange requests
// while it is itself mid-exchange.
func serveListener(l net.Listener, counters *wireCounters, handle func(wire.Msg) wire.Msg, done *sync.WaitGroup, accepted *connSet) {
	defer done.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !accepted.add(conn) {
			if err := conn.Close(); err != nil {
				_ = err // daemon is shutting down; the conn is unwanted
			}
			return
		}
		done.Add(1)
		go serveConn(conn, counters, handle, done, accepted)
	}
}

// serveConn answers requests on one accepted connection until it closes
// or a protocol error desynchronizes the stream.
func serveConn(conn net.Conn, counters *wireCounters, handle func(wire.Msg) wire.Msg, done *sync.WaitGroup, accepted *connSet) {
	defer done.Done()
	defer accepted.remove(conn)
	defer func() {
		if err := conn.Close(); err != nil {
			_ = err // already closing; nothing to do with a second failure
		}
	}()
	cc := &countingConn{Conn: conn, counters: counters}
	r := wire.NewReader(cc)
	w := wire.NewWriter(cc)
	for {
		req, err := wire.ReadMsg(r)
		if err != nil {
			return
		}
		resp := handle(req)
		if resp == nil {
			return
		}
		if err := wire.WriteMsg(w, resp); err != nil {
			return
		}
		counters.msgs.Add(1)
	}
}

package baseline

import (
	"testing"

	"p3q/internal/similarity"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

func testDataset(seed uint64) *trace.Dataset {
	p := trace.DefaultGenParams(120)
	p.MeanItems = 20
	p.Seed = seed
	return trace.Generate(p)
}

func TestCentralizedTopKMatchesDirectExact(t *testing.T) {
	ds := testDataset(1)
	c := NewCentralized(ds, 15, 10)
	q, ok := trace.QueryFor(ds, 3, 7)
	if !ok {
		t.Fatal("no query")
	}
	got := c.TopK(q)
	// Re-derive directly.
	snaps := []tagging.Snapshot{ds.Profiles[3].Snapshot()}
	for _, nb := range c.Networks()[3] {
		snaps = append(snaps, ds.Profiles[nb.ID].Snapshot())
	}
	want := topk.Exact(snaps, topk.NewTagSet(q.Tags), 10)
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCentralizedQueryItemRanksWell(t *testing.T) {
	// The query is built from an item the querier tagged; that item scores
	// the full tag count from the querier alone, so it must appear in the
	// results of a sane personalized baseline for most users.
	ds := testDataset(2)
	c := NewCentralized(ds, 20, 10)
	queries := trace.GenerateQueries(ds, 5)
	hits := 0
	for _, q := range queries {
		for _, e := range c.TopK(q) {
			if e.Item == q.Item {
				hits++
				break
			}
		}
	}
	if frac := float64(hits) / float64(len(queries)); frac < 0.8 {
		t.Fatalf("query source item in top-10 for only %.0f%% of queries", frac*100)
	}
}

func TestCentralizedWithNetsSharing(t *testing.T) {
	ds := testDataset(3)
	nets := similarity.IdealNetworks(ds, 10)
	c := NewCentralizedWithNets(ds, nets, 5)
	if c.K() != 5 {
		t.Fatalf("K = %d", c.K())
	}
	q, _ := trace.QueryFor(ds, 0, 1)
	if len(c.TopK(q)) > 5 {
		t.Fatal("TopK returned more than k entries")
	}
}

func TestTopKOverNetworkCustomMembers(t *testing.T) {
	ds := testDataset(4)
	c := NewCentralized(ds, 10, 10)
	q, _ := trace.QueryFor(ds, 1, 2)
	// Over an empty network the result comes from the querier alone; the
	// query's source item must rank first (it matches every query tag).
	got := c.TopKOverNetwork(q, nil)
	if len(got) == 0 || got[0].Item != q.Item {
		t.Fatalf("solo top-k head = %v, want the query source item %d", got, q.Item)
	}
	if got[0].Score != len(q.Tags) {
		t.Fatalf("solo top score = %d, want %d (all query tags)", got[0].Score, len(q.Tags))
	}
}

func TestFullReplicationStorage(t *testing.T) {
	ds := testDataset(5)
	nets := similarity.IdealNetworks(ds, 20)
	f := NewFullReplication(ds, nets)
	u := tagging.UserID(0)
	want := 0
	for _, nb := range nets[0] {
		want += ds.Profiles[nb.ID].Len()
	}
	if got := f.StorageActions(u); got != want {
		t.Fatalf("StorageActions = %d, want %d", got, want)
	}
	if got := f.StorageBytes(u); got != want*tagging.ActionBytes {
		t.Fatalf("StorageBytes = %d, want %d", got, want*tagging.ActionBytes)
	}
}

func TestFullReplicationTopCSubset(t *testing.T) {
	ds := testDataset(6)
	nets := similarity.IdealNetworks(ds, 20)
	f := NewFullReplication(ds, nets)
	for _, u := range []tagging.UserID{0, 5, 50} {
		all := f.StorageActions(u)
		top5 := f.StorageActionsTopC(u, 5)
		if top5 > all {
			t.Fatalf("user %d: top-5 storage %d exceeds full %d", u, top5, all)
		}
		if f.StorageActionsTopC(u, 1000) != all {
			t.Fatal("over-large c should equal full storage")
		}
	}
}

func TestP3QFinalResultsMatchCentralizedReference(t *testing.T) {
	// End-to-end contract: the decentralized protocol's completed results
	// equal the centralized baseline when P3Q runs over the ideal networks
	// used by the baseline. (The core package tests the protocol engine;
	// this test pins the baseline's role as the recall reference.)
	ds := testDataset(7)
	nets := similarity.IdealNetworks(ds, 15)
	c := NewCentralizedWithNets(ds, nets, 10)
	q, _ := trace.QueryFor(ds, 2, 3)
	ref := c.TopK(q)
	if topk.Recall(ref, ref) != 1 {
		t.Fatal("reference recall against itself != 1")
	}
}

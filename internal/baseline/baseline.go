// Package baseline implements the comparison points of the paper:
//
//   - Centralized: the centralized implementation of the protocol used as
//     the recall reference in §3.2.2 ("we run a top-10 processing in a
//     centralized implementation of our protocol and take the 10 returned
//     items for each query as relevant items"). It has global knowledge of
//     every profile, computes each user's ideal personal network offline,
//     and evaluates queries exactly;
//   - FullReplication: the storage-heavy strawman of §1 ([3]) in which
//     every user locally replicates all the profiles of her personal
//     network, giving exact local queries at a massive storage cost.
package baseline

import (
	"p3q/internal/similarity"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// Centralized is the global-knowledge reference implementation.
type Centralized struct {
	ds   *trace.Dataset
	nets [][]similarity.Neighbour
	k    int
}

// NewCentralized builds the reference over the dataset with personal
// networks of size s and top-k size k. The ideal networks are computed
// offline from global information.
func NewCentralized(ds *trace.Dataset, s, k int) *Centralized {
	return &Centralized{
		ds:   ds,
		nets: similarity.IdealNetworks(ds, s),
		k:    k,
	}
}

// NewCentralizedWithNets builds the reference reusing precomputed ideal
// networks (they are expensive; experiments share them).
func NewCentralizedWithNets(ds *trace.Dataset, nets [][]similarity.Neighbour, k int) *Centralized {
	return &Centralized{ds: ds, nets: nets, k: k}
}

// Networks returns the ideal personal networks, indexed by user.
func (c *Centralized) Networks() [][]similarity.Neighbour { return c.nets }

// K returns the configured top-k size.
func (c *Centralized) K() int { return c.k }

// TopK evaluates the query exactly over the querier's own profile plus the
// live profiles of her ideal personal network — the "relevant items" set of
// §3.2.2.
func (c *Centralized) TopK(q trace.Query) []topk.Entry {
	members := make([]tagging.UserID, 0, len(c.nets[q.Querier]))
	for _, nb := range c.nets[q.Querier] {
		members = append(members, nb.ID)
	}
	return c.TopKOverNetwork(q, members)
}

// TopKOverNetwork evaluates the query exactly over the querier's own
// profile plus the given network members' live profiles. Experiments use it
// to compare against the exact result for a node's *actual* (possibly
// unconverged) personal network.
func (c *Centralized) TopKOverNetwork(q trace.Query, members []tagging.UserID) []topk.Entry {
	snaps := make([]tagging.Snapshot, 0, len(members)+1)
	snaps = append(snaps, c.ds.Profiles[q.Querier].Snapshot())
	for _, id := range members {
		snaps = append(snaps, c.ds.Profiles[id].Snapshot())
	}
	return topk.Exact(snaps, topk.NewTagSet(q.Tags), c.k)
}

// FullReplication reports the cost of the §1 strawman: every user stores
// every profile of her personal network.
type FullReplication struct {
	ds   *trace.Dataset
	nets [][]similarity.Neighbour
}

// NewFullReplication builds the strawman over precomputed networks.
func NewFullReplication(ds *trace.Dataset, nets [][]similarity.Neighbour) *FullReplication {
	return &FullReplication{ds: ds, nets: nets}
}

// StorageActions returns the number of tagging actions user u must
// replicate to store her whole personal network (the paper's storage metric
// is the total profile length, §3.3.1).
func (f *FullReplication) StorageActions(u tagging.UserID) int {
	total := 0
	for _, nb := range f.nets[u] {
		total += f.ds.Profiles[nb.ID].Len()
	}
	return total
}

// StorageBytes returns the same storage in wire bytes.
func (f *FullReplication) StorageBytes(u tagging.UserID) int {
	return tagging.ActionsWireSize(f.StorageActions(u))
}

// StorageActionsTopC returns the actions replicated when only the c most
// similar profiles are stored — P3Q's approach; the ratio against
// StorageActions reproduces the "storing 10 profiles requires only 6.8% of
// the space" comparison of §3.3.1.
func (f *FullReplication) StorageActionsTopC(u tagging.UserID, c int) int {
	total := 0
	nets := f.nets[u]
	if c > len(nets) {
		c = len(nets)
	}
	for _, nb := range nets[:c] {
		total += f.ds.Profiles[nb.ID].Len()
	}
	return total
}

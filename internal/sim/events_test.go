package sim

import (
	"testing"
	"time"

	"p3q/internal/randx"
)

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	q.Schedule(30*time.Millisecond, "c")
	q.Schedule(10*time.Millisecond, "a")
	q.Schedule(20*time.Millisecond, "b1")
	q.Schedule(20*time.Millisecond, "b2") // same time: scheduling order
	q.Schedule(5*time.Millisecond, "first")

	want := []string{"first", "a", "b1", "b2", "c"}
	for i, w := range want {
		ev, ok := q.PopUntil(time.Second)
		if !ok {
			t.Fatalf("pop %d: queue empty, want %q", i, w)
		}
		if ev.Payload.(string) != w {
			t.Fatalf("pop %d = %q, want %q", i, ev.Payload, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

func TestEventQueuePopUntilBoundary(t *testing.T) {
	q := NewEventQueue()
	q.Schedule(10*time.Millisecond, "due")
	q.Schedule(11*time.Millisecond, "later")

	if ev, ok := q.PopUntil(10 * time.Millisecond); !ok || ev.Payload.(string) != "due" {
		t.Fatalf("event due exactly at the horizon must pop (got ok=%v)", ok)
	}
	if _, ok := q.PopUntil(10 * time.Millisecond); ok {
		t.Fatal("event beyond the horizon popped")
	}
	if at, ok := q.NextAt(); !ok || at != 11*time.Millisecond {
		t.Fatalf("NextAt = %v/%v, want 11ms/true", at, ok)
	}
}

func TestEventQueueInterleavedSchedulePop(t *testing.T) {
	// Heap property must survive interleaving: schedule, pop some, schedule
	// earlier events, pop the rest in global (At, Seq) order.
	q := NewEventQueue()
	q.Schedule(40*time.Millisecond, 40)
	q.Schedule(20*time.Millisecond, 20)
	if ev, _ := q.PopUntil(time.Second); ev.Payload.(int) != 20 {
		t.Fatalf("got %v, want 20", ev.Payload)
	}
	q.Schedule(10*time.Millisecond, 10)
	q.Schedule(30*time.Millisecond, 30)
	var got []int
	for {
		ev, ok := q.PopUntil(time.Second)
		if !ok {
			break
		}
		got = append(got, ev.Payload.(int))
	}
	want := []int{10, 30, 40}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestLatencyModelsDeterministicAndBounded(t *testing.T) {
	models := []struct {
		name string
		m    LatencyModel
	}{
		{"fixed", FixedLatency(50 * time.Millisecond)},
		{"uniform", UniformLatency{Min: 10 * time.Millisecond, Max: 200 * time.Millisecond}},
		{"lognormal", LogNormalLatency{Median: 50 * time.Millisecond, Sigma: 0.8}},
		{"geo", GeoLatency{RTT: [][]time.Duration{
			{20 * time.Millisecond, 120 * time.Millisecond},
			{120 * time.Millisecond, 20 * time.Millisecond},
		}, Jitter: 0.3}},
	}
	for _, tc := range models {
		for i := 0; i < 200; i++ {
			rng1 := randx.NewSource(uint64(i) + 1)
			rng2 := randx.NewSource(uint64(i) + 1)
			d1 := tc.m.Delay(NodeID(i%7), NodeID(i%11), MsgQueryForward, rng1)
			d2 := tc.m.Delay(NodeID(i%7), NodeID(i%11), MsgQueryForward, rng2)
			if d1 != d2 {
				t.Fatalf("%s: identical streams drew %v vs %v", tc.name, d1, d2)
			}
			if d1 < 0 {
				t.Fatalf("%s: negative delay %v", tc.name, d1)
			}
		}
	}
}

func TestUniformLatencyRange(t *testing.T) {
	m := UniformLatency{Min: 10 * time.Millisecond, Max: 20 * time.Millisecond}
	rng := randx.NewSource(7)
	for i := 0; i < 1000; i++ {
		d := m.Delay(0, 1, MsgQueryForward, rng)
		if d < m.Min || d > m.Max {
			t.Fatalf("uniform draw %v outside [%v, %v]", d, m.Min, m.Max)
		}
	}
}

func TestGeoLatencyZones(t *testing.T) {
	m := GeoLatency{
		Zones: []int{0, 1},
		RTT: [][]time.Duration{
			{5 * time.Millisecond, 100 * time.Millisecond},
			{100 * time.Millisecond, 5 * time.Millisecond},
		},
	}
	rng := randx.NewSource(1)
	if d := m.Delay(0, 1, MsgQueryForward, rng); d != 100*time.Millisecond {
		t.Fatalf("cross-zone delay %v, want 100ms", d)
	}
	if d := m.Delay(0, 0, MsgQueryForward, rng); d != 5*time.Millisecond {
		t.Fatalf("intra-zone delay %v, want 5ms", d)
	}
	// Node 5 is beyond Zones: falls back to id % len(RTT) = zone 1.
	if d := m.Delay(5, 1, MsgQueryForward, rng); d != 5*time.Millisecond {
		t.Fatalf("fallback-zone delay %v, want 5ms", d)
	}
}

func TestParseLatency(t *testing.T) {
	for _, spec := range []string{"", "none", "sync"} {
		m, err := ParseLatency(spec)
		if err != nil || m != nil {
			t.Fatalf("ParseLatency(%q) = %v, %v; want nil, nil", spec, m, err)
		}
	}
	if m, err := ParseLatency("fixed:50ms"); err != nil || m.(FixedLatency) != FixedLatency(50*time.Millisecond) {
		t.Fatalf("fixed spec parsed to %v, %v", m, err)
	}
	if m, err := ParseLatency("uniform:10ms,200ms"); err != nil {
		t.Fatalf("uniform spec: %v", err)
	} else if u := m.(UniformLatency); u.Min != 10*time.Millisecond || u.Max != 200*time.Millisecond {
		t.Fatalf("uniform spec parsed to %+v", u)
	}
	if m, err := ParseLatency("lognormal:50ms,0.8"); err != nil {
		t.Fatalf("lognormal spec: %v", err)
	} else if l := m.(LogNormalLatency); l.Median != 50*time.Millisecond || l.Sigma != 0.8 {
		t.Fatalf("lognormal spec parsed to %+v", l)
	}
	if m, err := ParseLatency("geo:3,25ms,120ms"); err != nil {
		t.Fatalf("geo spec: %v", err)
	} else if g := m.(GeoLatency); len(g.RTT) != 3 || g.RTT[0][0] != 25*time.Millisecond || g.RTT[0][2] != 120*time.Millisecond {
		t.Fatalf("geo spec parsed to %+v", g)
	}

	for _, bad := range []string{
		"bogus:1ms", "fixed:", "fixed:xyz", "fixed:-5ms", "uniform:10ms",
		"uniform:200ms,10ms", "lognormal:50ms,-1", "geo:0,1ms,2ms", "geo:2,1ms",
	} {
		if _, err := ParseLatency(bad); err == nil {
			t.Fatalf("ParseLatency(%q) accepted a malformed spec", bad)
		}
	}
}

func TestLedgerRecordsStampNetworkClock(t *testing.T) {
	nw := NewNetwork(2)
	nw.SetNow(15 * time.Second)
	l := nw.NewLedger()
	l.Send(0, 1, MsgQueryForward, 100)
	nw.SetOnline(1, false)
	l.Send(0, 1, MsgQueryForward, 100) // degrades into a probe, same stamp
	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("recorded %d messages, want 2", len(recs))
	}
	for i, r := range recs {
		if r.At != 15*time.Second {
			t.Fatalf("record %d stamped %v, want 15s", i, r.At)
		}
	}
	// The stamp is snapshotted at ledger creation, not at send time.
	nw.SetNow(20 * time.Second)
	l2 := nw.NewLedger()
	l2.Send(0, 0, MsgProbe, 0)
	if l2.Records()[0].At != 20*time.Second {
		t.Fatalf("new ledger stamped %v, want 20s", l2.Records()[0].At)
	}
	// Commit folds counters regardless of stamps.
	nw.Commit(l)
	if nw.Total().TotalMsgs() != 2 {
		t.Fatalf("commit folded %d msgs, want 2", nw.Total().TotalMsgs())
	}
}

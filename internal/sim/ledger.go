package sim

import "time"

// Ledger is a thread-confined message recorder for the engine's parallel
// phases — the planning goroutines (both the lazy mode's per-node plans
// and the eager mode's per-(initiator, query) plans) and the sharded
// commit phase, where each shard committer owns one Ledger and records the
// commit-time traffic of its own nodes. No shared counter is touched until
// the engine merges the cycle's ledgers in canonical shard order through
// Network.Commit, which folds the recorded traffic into the network's
// per-kind and per-node counters; the fold is a sum per record, so the
// canonical merge order makes the counters independent of how records were
// distributed across ledgers.
//
// A Ledger reads the network's liveness (stable within a cycle: Kill and
// SetOnline only run between cycles) but never writes to it, so any number
// of Ledgers can record concurrently against the same Network.
type Ledger struct {
	nw      *Network
	at      time.Duration
	records []Record
}

// Record is one message captured by a Ledger, already resolved against the
// liveness snapshot: a send to a departed node is stored as the probe it
// degrades into, exactly as Network.Send would have accounted it. At is the
// virtual send time: the network clock (Network.SetNow) when the ledger was
// created, i.e. the start of the cycle whose plan or commit recorded the
// message — stamped in every engine-driven run, latency-modelled or not,
// and zero only when nothing advances the clock. Traffic accounting
// ignores At; it exists for message-trace analysis.
type Record struct {
	From, To NodeID
	Kind     Kind
	Bytes    int
	At       time.Duration
}

// NewLedger returns an empty ledger recording against this network's
// current liveness, stamping records with the network clock at creation
// time (the cycle being planned or committed).
func (nw *Network) NewLedger() *Ledger { return &Ledger{nw: nw, at: nw.now} }

// InitLedger (re)initializes a caller-owned ledger value in place: same
// semantics as NewLedger, but the record buffer is reused. The engine's
// pooled plan slots embed their ledgers and re-init them each cycle instead
// of allocating fresh ones.
//
//p3q:hotpath
func (nw *Network) InitLedger(l *Ledger) {
	l.nw = nw
	l.at = nw.now
	l.records = l.records[:0]
}

// Send records a message with the same semantics as Network.Send: it
// returns true if the destination is online (the message is recorded under
// its kind) and false otherwise (a probe-sized failed attempt is recorded
// instead). Senders must be online; recording a send from an offline node
// panics, as it indicates a protocol bug.
func (l *Ledger) Send(from, to NodeID, k Kind, bytes int) bool {
	if !l.nw.online[from] {
		panic("sim: offline node attempted to send (ledger)")
	}
	if !l.nw.online[to] {
		l.records = append(l.records, Record{From: from, To: to, Kind: MsgProbe, Bytes: ProbeBytes, At: l.at})
		return false
	}
	l.records = append(l.records, Record{From: from, To: to, Kind: k, Bytes: bytes, At: l.at})
	return true
}

// Len returns the number of recorded messages.
func (l *Ledger) Len() int { return len(l.records) }

// Records returns the recorded messages in send order. The slice aliases
// the ledger; do not modify.
func (l *Ledger) Records() []Record { return l.records }

// Merge appends the other ledger's records to this one. The other ledger
// is left untouched, so a plan's ledger can still be totalled after a
// shard committer has absorbed it.
func (l *Ledger) Merge(o *Ledger) {
	l.records = append(l.records, o.records...)
}

// BytesSince returns the total bytes of the records appended after the
// given mark (a prior Len result). The sharded commit phase brackets an
// integration with Len/BytesSince to attribute the commit-resolved
// step-2/step-3 traffic to the gossip pair that caused it.
func (l *Ledger) BytesSince(mark int) uint64 {
	var b uint64
	for _, r := range l.records[mark:] {
		b += uint64(r.Bytes)
	}
	return b
}

// Total returns the per-kind traffic the ledger has recorded so far, i.e.
// what Commit would add to the network's counters.
func (l *Ledger) Total() Traffic {
	var t Traffic
	for _, r := range l.records {
		t.Add(r.Kind, r.Bytes)
	}
	return t
}

// Commit merges every message recorded in the ledger into the network's
// counters and empties the ledger. Committing the ledgers of a cycle in a
// fixed order yields counters identical to having called Network.Send
// inline, which is what keeps parallel planning byte-for-byte deterministic.
func (nw *Network) Commit(l *Ledger) {
	for _, r := range l.records {
		nw.total.Add(r.Kind, r.Bytes)
		nw.perNode[r.From].Add(r.Kind, r.Bytes)
	}
	l.records = l.records[:0]
}

package sim

import (
	"testing"

	"p3q/internal/randx"
)

func TestKindString(t *testing.T) {
	if MsgRandomView.String() != "random-view" {
		t.Fatalf("got %q", MsgRandomView.String())
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
	if len(Kinds()) != int(numKinds) {
		t.Fatalf("Kinds() returned %d kinds", len(Kinds()))
	}
}

func TestTrafficAddAndTotals(t *testing.T) {
	var tr Traffic
	tr.Add(MsgTopDigest, 100)
	tr.Add(MsgTopDigest, 50)
	tr.Add(MsgProfile, 1000)
	if tr.Msgs[MsgTopDigest] != 2 || tr.Bytes[MsgTopDigest] != 150 {
		t.Fatalf("digest counters = %d msgs / %d bytes", tr.Msgs[MsgTopDigest], tr.Bytes[MsgTopDigest])
	}
	if tr.TotalMsgs() != 3 || tr.TotalBytes() != 1150 {
		t.Fatalf("totals = %d msgs / %d bytes", tr.TotalMsgs(), tr.TotalBytes())
	}
}

func TestTrafficSince(t *testing.T) {
	var tr Traffic
	tr.Add(MsgProfile, 10)
	cp := tr
	tr.Add(MsgProfile, 5)
	tr.Add(MsgQueryForward, 7)
	d := tr.Since(cp)
	if d.Bytes[MsgProfile] != 5 || d.Msgs[MsgProfile] != 1 {
		t.Fatalf("diff profile = %d bytes / %d msgs", d.Bytes[MsgProfile], d.Msgs[MsgProfile])
	}
	if d.Bytes[MsgQueryForward] != 7 {
		t.Fatalf("diff forward = %d bytes", d.Bytes[MsgQueryForward])
	}
}

func TestTrafficMerge(t *testing.T) {
	var a, b Traffic
	a.Add(MsgProbe, 8)
	b.Add(MsgProbe, 8)
	b.Add(MsgProfile, 100)
	a.Merge(b)
	if a.Msgs[MsgProbe] != 2 || a.Bytes[MsgProfile] != 100 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestNetworkLiveness(t *testing.T) {
	nw := NewNetwork(10)
	if nw.Size() != 10 || nw.OnlineCount() != 10 {
		t.Fatalf("new network: size=%d online=%d", nw.Size(), nw.OnlineCount())
	}
	nw.SetOnline(3, false)
	if nw.Online(3) || nw.OnlineCount() != 9 {
		t.Fatal("SetOnline(false) not reflected")
	}
	nw.SetOnline(3, false) // idempotent
	if nw.OnlineCount() != 9 {
		t.Fatal("double SetOnline(false) double-counted")
	}
	nw.SetOnline(3, true)
	if !nw.Online(3) || nw.OnlineCount() != 10 {
		t.Fatal("SetOnline(true) not reflected")
	}
}

func TestSendDelivery(t *testing.T) {
	nw := NewNetwork(5)
	if !nw.Send(0, 1, MsgProfile, 500) {
		t.Fatal("send to online node failed")
	}
	if nw.Total().Bytes[MsgProfile] != 500 {
		t.Fatalf("global bytes = %d", nw.Total().Bytes[MsgProfile])
	}
	if nw.NodeTraffic(0).Bytes[MsgProfile] != 500 {
		t.Fatal("sender traffic not recorded")
	}
	if nw.NodeTraffic(1).TotalBytes() != 0 {
		t.Fatal("receiver charged for inbound traffic")
	}
}

func TestSendToOfflineRecordsProbe(t *testing.T) {
	nw := NewNetwork(5)
	nw.SetOnline(2, false)
	if nw.Send(0, 2, MsgProfile, 500) {
		t.Fatal("send to offline node reported success")
	}
	tr := nw.Total()
	if tr.Bytes[MsgProfile] != 0 {
		t.Fatal("payload bytes charged for failed send")
	}
	if tr.Msgs[MsgProbe] != 1 || tr.Bytes[MsgProbe] != ProbeBytes {
		t.Fatalf("probe not recorded: %+v", tr)
	}
}

func TestSendFromOfflinePanics(t *testing.T) {
	nw := NewNetwork(5)
	nw.SetOnline(0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("offline sender did not panic")
		}
	}()
	nw.Send(0, 1, MsgProfile, 1)
}

func TestKillFraction(t *testing.T) {
	nw := NewNetwork(1000)
	rng := randx.NewSource(1)
	killed := nw.Kill(0.3, rng)
	if len(killed) != 300 {
		t.Fatalf("killed %d nodes, want 300", len(killed))
	}
	if nw.OnlineCount() != 700 {
		t.Fatalf("online = %d, want 700", nw.OnlineCount())
	}
	for _, u := range killed {
		if nw.Online(u) {
			t.Fatalf("killed node %d still online", u)
		}
	}
}

func TestKillZeroAndClamp(t *testing.T) {
	nw := NewNetwork(10)
	if got := nw.Kill(0, randx.NewSource(1)); got != nil {
		t.Fatalf("Kill(0) killed %d", len(got))
	}
	killed := nw.Kill(5, randx.NewSource(2)) // clamped to 1.0
	if len(killed) != 10 || nw.OnlineCount() != 0 {
		t.Fatalf("Kill(5) killed %d, online=%d", len(killed), nw.OnlineCount())
	}
}

func TestKillOnlyOnlineNodes(t *testing.T) {
	nw := NewNetwork(100)
	first := nw.Kill(0.5, randx.NewSource(3))
	second := nw.Kill(1.0, randx.NewSource(4))
	if len(first)+len(second) != 100 {
		t.Fatalf("total killed = %d, want 100", len(first)+len(second))
	}
	seen := make(map[NodeID]bool)
	for _, u := range append(first, second...) {
		if seen[u] {
			t.Fatalf("node %d killed twice", u)
		}
		seen[u] = true
	}
}

func TestKillDeterministic(t *testing.T) {
	a := NewNetwork(50)
	b := NewNetwork(50)
	ka := a.Kill(0.2, randx.NewSource(9))
	kb := b.Kill(0.2, randx.NewSource(9))
	if len(ka) != len(kb) {
		t.Fatal("same seed killed different counts")
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("same seed killed different nodes")
		}
	}
}

func TestPerNodeTrafficSumsToTotal(t *testing.T) {
	nw := NewNetwork(6)
	rngSends := []struct {
		from, to NodeID
		k        Kind
		b        int
	}{
		{0, 1, MsgProfile, 100}, {1, 2, MsgTopDigest, 50},
		{2, 0, MsgPartialResult, 70}, {3, 4, MsgQueryForward, 10},
	}
	for _, s := range rngSends {
		nw.Send(s.from, s.to, s.k, s.b)
	}
	nw.SetOnline(5, false)
	nw.Send(0, 5, MsgProfile, 999) // probe
	var sum Traffic
	for u := 0; u < nw.Size(); u++ {
		sum.Merge(nw.NodeTraffic(NodeID(u)))
	}
	total := nw.Total()
	if sum.TotalBytes() != total.TotalBytes() || sum.TotalMsgs() != total.TotalMsgs() {
		t.Fatalf("per-node traffic (%d B / %d msgs) != total (%d B / %d msgs)",
			sum.TotalBytes(), sum.TotalMsgs(), total.TotalBytes(), total.TotalMsgs())
	}
}

func TestTrafficSinceIsInverseOfMerge(t *testing.T) {
	var base, delta Traffic
	base.Add(MsgProfile, 10)
	delta.Add(MsgTopDigest, 5)
	delta.Add(MsgProbe, 8)
	combined := base
	combined.Merge(delta)
	diff := combined.Since(base)
	if diff.TotalBytes() != delta.TotalBytes() || diff.TotalMsgs() != delta.TotalMsgs() {
		t.Fatalf("Since is not the inverse of Merge: %+v vs %+v", diff, delta)
	}
}

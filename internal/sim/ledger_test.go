package sim

import "testing"

func TestLedgerCommitMatchesDirectSends(t *testing.T) {
	direct := NewNetwork(4)
	recorded := NewNetwork(4)
	direct.SetOnline(3, false)
	recorded.SetOnline(3, false)

	type msg struct {
		from, to NodeID
		kind     Kind
		bytes    int
	}
	msgs := []msg{
		{0, 1, MsgTopDigest, 100},
		{1, 0, MsgCommonItems, 40},
		{2, 3, MsgProfile, 900}, // offline dest: degrades to a probe
		{0, 2, MsgRandomView, 64},
	}
	for _, m := range msgs {
		direct.Send(m.from, m.to, m.kind, m.bytes)
	}
	l := recorded.NewLedger()
	for _, m := range msgs {
		l.Send(m.from, m.to, m.kind, m.bytes)
	}
	if l.Len() != len(msgs) {
		t.Fatalf("ledger recorded %d messages, want %d", l.Len(), len(msgs))
	}
	// Nothing is accounted before Commit.
	if recorded.Total().TotalMsgs() != 0 {
		t.Fatal("ledger sends leaked into network counters before Commit")
	}
	recorded.Commit(l)
	if l.Len() != 0 {
		t.Fatal("Commit did not empty the ledger")
	}
	if direct.Total() != recorded.Total() {
		t.Fatalf("total counters diverge:\ndirect   %+v\nrecorded %+v", direct.Total(), recorded.Total())
	}
	for u := 0; u < 4; u++ {
		if direct.NodeTraffic(NodeID(u)) != recorded.NodeTraffic(NodeID(u)) {
			t.Fatalf("per-node counters diverge for node %d", u)
		}
	}
	if recorded.Total().Msgs[MsgProbe] != 1 {
		t.Fatal("offline destination was not degraded to a probe")
	}
}

func TestLedgerMerge(t *testing.T) {
	nw := NewNetwork(2)
	a, b := nw.NewLedger(), nw.NewLedger()
	a.Send(0, 1, MsgTopDigest, 10)
	b.Send(1, 0, MsgProfile, 20)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged ledger has %d records, want 2", a.Len())
	}
	nw.Commit(a)
	if nw.Total().TotalBytes() != 30 {
		t.Fatalf("committed %d bytes, want 30", nw.Total().TotalBytes())
	}
}

func TestLedgerMergeLeavesSourceIntact(t *testing.T) {
	// The sharded commit totals a plan's ledger after a shard committer has
	// absorbed it, so Merge must not drain the source.
	nw := NewNetwork(2)
	a, b := nw.NewLedger(), nw.NewLedger()
	b.Send(1, 0, MsgProfile, 20)
	a.Merge(b)
	if b.Len() != 1 || b.Total().TotalBytes() != 20 {
		t.Fatalf("Merge drained the source ledger: len=%d bytes=%d", b.Len(), b.Total().TotalBytes())
	}
}

func TestLedgerBytesSince(t *testing.T) {
	nw := NewNetwork(3)
	nw.SetOnline(2, false)
	l := nw.NewLedger()
	l.Send(0, 1, MsgTopDigest, 10)
	mark := l.Len()
	if got := l.BytesSince(mark); got != 0 {
		t.Fatalf("BytesSince at the mark = %d, want 0", got)
	}
	l.Send(0, 1, MsgCommonItems, 7)
	l.Send(0, 2, MsgProfile, 1000) // degrades to a probe: ProbeBytes counted
	if got, want := l.BytesSince(mark), uint64(7+ProbeBytes); got != want {
		t.Fatalf("BytesSince = %d, want %d", got, want)
	}
	if got := l.BytesSince(0); got != uint64(17+ProbeBytes) {
		t.Fatalf("BytesSince(0) = %d, want full total %d", got, 17+ProbeBytes)
	}
}

func TestLedgerOfflineSenderPanics(t *testing.T) {
	nw := NewNetwork(2)
	nw.SetOnline(0, false)
	l := nw.NewLedger()
	defer func() {
		if recover() == nil {
			t.Fatal("ledger send from offline node did not panic")
		}
	}()
	l.Send(0, 1, MsgTopDigest, 1)
}

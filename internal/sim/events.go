package sim

// This file is the event-driven half of the substrate: a deterministic
// priority queue of timestamped events and the pluggable per-message
// latency models that feed it. The cycle-driven engine (package core) uses
// them to model asynchronous eager delivery — forwarded lists, returned
// portions and partial results arriving at model-drawn times instead of at
// cycle boundaries — while keeping runs byte-for-byte deterministic.
//
// Determinism contract: events are ordered by (At, Seq), where Seq is the
// scheduling order. As long as events are scheduled from a canonical
// sequential pass (the engine schedules in the canonical pair order) and
// popped sequentially, the delivery order is a pure function of the run's
// inputs — independent of worker count and map iteration order. Latency
// models draw exclusively from the rng stream passed to Delay, never from
// shared state, so the engine can hand each message its own split stream.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"p3q/internal/randx"
)

// Event is one scheduled occurrence: an opaque payload due at a virtual
// time. Seq breaks ties deterministically (earlier scheduled fires first).
type Event struct {
	At      time.Duration
	Seq     uint64
	Payload any
}

// EventQueue is a deterministic min-heap of events ordered by (At, Seq).
// The zero value is ready to use. It is not safe for concurrent use; the
// engine schedules and pops from its single-threaded sections only.
type EventQueue struct {
	heap    []Event
	nextSeq uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

// Schedule enqueues a payload at the given virtual time. Events scheduled
// at the same time fire in scheduling order.
func (q *EventQueue) Schedule(at time.Duration, payload any) {
	q.heap = append(q.heap, Event{At: at, Seq: q.nextSeq, Payload: payload})
	q.nextSeq++
	q.up(len(q.heap) - 1)
}

// NextSeq returns the scheduling counter: the Seq the next Schedule call
// will assign. Checkpointing persists it so a restored queue continues the
// original tie-break sequence.
func (q *EventQueue) NextSeq() uint64 { return q.nextSeq }

// Pending returns a copy of the pending events sorted by (At, Seq) — the
// exact order PopUntil would drain them in. Checkpointing serializes this
// view; payloads are shared with the queue, not cloned.
func (q *EventQueue) Pending() []Event {
	out := make([]Event, len(q.heap))
	copy(out, q.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// RestorePending replaces the queue's contents from a checkpoint: events
// must be sorted by (At, Seq) with strictly increasing Seq values below
// nextSeq, as produced by Pending plus the queue's scheduling counter. A
// (At, Seq)-sorted slice already satisfies the min-heap invariant, so the
// restored queue pops in exactly the captured order and later Schedule
// calls continue the original Seq sequence.
func (q *EventQueue) RestorePending(events []Event, nextSeq uint64) error {
	seen := make(map[uint64]struct{}, len(events))
	for i, ev := range events {
		if ev.Seq >= nextSeq {
			return fmt.Errorf("sim: RestorePending event %d has Seq %d >= nextSeq %d", i, ev.Seq, nextSeq)
		}
		if _, dup := seen[ev.Seq]; dup {
			return fmt.Errorf("sim: RestorePending duplicate Seq %d", ev.Seq)
		}
		seen[ev.Seq] = struct{}{}
		if i > 0 {
			prev := events[i-1]
			if ev.At < prev.At || (ev.At == prev.At && ev.Seq < prev.Seq) {
				return fmt.Errorf("sim: RestorePending events not in (At, Seq) order at index %d", i)
			}
		}
	}
	q.heap = append(q.heap[:0], events...)
	q.nextSeq = nextSeq
	return nil
}

// NextAt returns the due time of the earliest pending event.
func (q *EventQueue) NextAt() (time.Duration, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].At, true
}

// PopUntil removes and returns the earliest event due at or before t. It
// returns ok=false when no pending event is due yet.
func (q *EventQueue) PopUntil(t time.Duration) (Event, bool) {
	if len(q.heap) == 0 || q.heap[0].At > t {
		return Event{}, false
	}
	ev := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return ev, true
}

// before is the heap order: earlier due time first, scheduling order on
// ties.
func (q *EventQueue) before(i, j int) bool {
	if q.heap[i].At != q.heap[j].At {
		return q.heap[i].At < q.heap[j].At
	}
	return q.heap[i].Seq < q.heap[j].Seq
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.before(left, smallest) {
			smallest = left
		}
		if right < n && q.before(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

// LatencyModel draws the one-way delivery latency of a message. A nil
// model means synchronous delivery: every message of a cycle is visible at
// the cycle boundary, the paper's PeerSim-style round model.
//
// Implementations must be pure: the returned delay may depend only on the
// arguments and on draws from rng (the caller hands every message its own
// split stream), never on shared mutable state — that is what keeps
// latency-modelled runs deterministic for every worker count.
type LatencyModel interface {
	Delay(from, to NodeID, k Kind, rng *randx.Source) time.Duration
}

// FixedLatency is a constant one-way delay for every message.
type FixedLatency time.Duration

// Delay implements LatencyModel.
func (f FixedLatency) Delay(from, to NodeID, k Kind, rng *randx.Source) time.Duration {
	if f < 0 {
		return 0
	}
	return time.Duration(f)
}

// UniformLatency draws delays uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(from, to NodeID, k Kind, rng *randx.Source) time.Duration {
	lo, hi := u.Min, u.Max
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Float64()*float64(hi-lo))
}

// LogNormalLatency draws log-normally distributed delays — the classical
// shape of Internet round-trip times: most messages arrive near the
// median, a long tail arrives much later. Sigma is the shape parameter of
// the underlying normal (0.5-1.0 is Internet-like); Sigma <= 0 degenerates
// to a fixed Median delay.
type LogNormalLatency struct {
	Median time.Duration
	Sigma  float64
}

// Delay implements LatencyModel.
func (l LogNormalLatency) Delay(from, to NodeID, k Kind, rng *randx.Source) time.Duration {
	if l.Median <= 0 {
		return 0
	}
	if l.Sigma <= 0 {
		return l.Median
	}
	d := time.Duration(float64(l.Median) * math.Exp(l.Sigma*rng.NormFloat64()))
	if d < 0 {
		return 0
	}
	return d
}

// GeoLatency models a geo-distributed deployment: nodes live in zones and
// each (zone, zone) pair has a base one-way latency, multiplied by a
// uniform jitter factor in [1, 1+Jitter). Zones maps node IDs to zones;
// when nil (or too short), a node's zone is its ID modulo the matrix size
// — a deterministic round-robin placement.
type GeoLatency struct {
	Zones  []int
	RTT    [][]time.Duration
	Jitter float64
}

// NewGeoLatency builds the symmetric intra/inter zone model of the CLI
// spec: zones zones with intra on the matrix diagonal and inter everywhere
// else, nodes assigned round-robin (id modulo zones).
func NewGeoLatency(zones int, intra, inter time.Duration) GeoLatency {
	if zones < 1 {
		zones = 1
	}
	rtt := make([][]time.Duration, zones)
	for i := range rtt {
		rtt[i] = make([]time.Duration, zones)
		for j := range rtt[i] {
			if i == j {
				rtt[i][j] = intra
			} else {
				rtt[i][j] = inter
			}
		}
	}
	return GeoLatency{RTT: rtt}
}

// zone returns the zone of a node.
func (g GeoLatency) zone(id NodeID) int {
	if int(id) < len(g.Zones) {
		z := g.Zones[id]
		if z >= 0 && z < len(g.RTT) {
			return z
		}
	}
	if len(g.RTT) == 0 {
		return 0
	}
	return int(id) % len(g.RTT)
}

// Delay implements LatencyModel.
func (g GeoLatency) Delay(from, to NodeID, k Kind, rng *randx.Source) time.Duration {
	if len(g.RTT) == 0 {
		return 0
	}
	base := g.RTT[g.zone(from)][g.zone(to)]
	if base < 0 {
		base = 0
	}
	if g.Jitter <= 0 {
		return base
	}
	return time.Duration(float64(base) * (1 + g.Jitter*rng.Float64()))
}

// ParseLatency builds a latency model from a CLI spec:
//
//	none | sync | ""                 synchronous delivery (nil model)
//	fixed:<d>                        constant delay, e.g. fixed:50ms
//	uniform:<min>,<max>              uniform in [min, max], e.g. uniform:10ms,200ms
//	lognormal:<median>,<sigma>       log-normal, e.g. lognormal:50ms,0.8
//	geo:<zones>,<intra>,<inter>      zone matrix: <zones> zones (nodes assigned
//	                                 round-robin), <intra> within a zone,
//	                                 <inter> across zones, e.g. geo:3,25ms,120ms
//
// Durations use Go syntax (50ms, 1.5s). The cmd/p3qsim -latency flag and
// the experiments harness parse their specs through this function.
func ParseLatency(spec string) (LatencyModel, error) {
	spec = strings.TrimSpace(spec)
	switch spec {
	case "", "none", "sync":
		return nil, nil
	}
	name, args, _ := strings.Cut(spec, ":")
	parts := strings.Split(args, ",")
	dur := func(i int) (time.Duration, error) {
		d, err := time.ParseDuration(strings.TrimSpace(parts[i]))
		if err != nil || d < 0 {
			return 0, fmt.Errorf("sim: latency spec %q: bad duration %q", spec, parts[i])
		}
		return d, nil
	}
	switch name {
	case "fixed":
		if len(parts) != 1 {
			return nil, fmt.Errorf("sim: latency spec %q: want fixed:<duration>", spec)
		}
		d, err := dur(0)
		if err != nil {
			return nil, err
		}
		return FixedLatency(d), nil
	case "uniform":
		if len(parts) != 2 {
			return nil, fmt.Errorf("sim: latency spec %q: want uniform:<min>,<max>", spec)
		}
		lo, err := dur(0)
		if err != nil {
			return nil, err
		}
		hi, err := dur(1)
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("sim: latency spec %q: max below min", spec)
		}
		return UniformLatency{Min: lo, Max: hi}, nil
	case "lognormal":
		if len(parts) != 2 {
			return nil, fmt.Errorf("sim: latency spec %q: want lognormal:<median>,<sigma>", spec)
		}
		med, err := dur(0)
		if err != nil {
			return nil, err
		}
		sigma, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil || sigma < 0 {
			return nil, fmt.Errorf("sim: latency spec %q: bad sigma %q", spec, parts[1])
		}
		return LogNormalLatency{Median: med, Sigma: sigma}, nil
	case "geo":
		if len(parts) != 3 {
			return nil, fmt.Errorf("sim: latency spec %q: want geo:<zones>,<intra>,<inter>", spec)
		}
		zones, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil || zones < 1 {
			return nil, fmt.Errorf("sim: latency spec %q: bad zone count %q", spec, parts[0])
		}
		intra, err := dur(1)
		if err != nil {
			return nil, err
		}
		inter, err := dur(2)
		if err != nil {
			return nil, err
		}
		return NewGeoLatency(zones, intra, inter), nil
	}
	return nil, fmt.Errorf("sim: unknown latency model %q (want none, fixed, uniform, lognormal or geo)", spec)
}

// Package sim is the network substrate of the reproduction: the
// cycle-driven simulation equivalent of PeerSim's cycle-based mode used by
// the paper's evaluation. It models node liveness (churn) and accounts
// every message and byte exchanged, per category and per node, so the
// bandwidth figures of §3.3 can be regenerated.
//
// Three pieces make up the substrate:
//
//   - Network tracks liveness and the per-kind / per-node traffic counters.
//   - Ledger is the thread-confined recorder the engine's parallel phases
//     write into; committing a cycle's ledgers in a canonical order makes
//     the counters independent of how work was scheduled across workers
//     (see Ledger). Records carry a virtual send timestamp (Record.At) when
//     the engine drives the clock through Network.SetNow, and
//     Ledger.BytesSince brackets commit-time sub-sequences so their traffic
//     can be attributed to the exchange that caused it.
//   - EventQueue and the LatencyModel implementations (events.go) are the
//     event-driven half: a deterministic priority queue of timestamped
//     events plus pluggable per-message delay distributions (fixed,
//     uniform, log-normal, geo-zone matrix), which the engine uses for
//     asynchronous eager delivery — messages arriving at model-drawn times
//     instead of cycle boundaries.
//
// The protocol logic itself lives in package core; sim deliberately knows
// nothing about gossip or queries beyond the message taxonomy.
package sim

import (
	"fmt"
	"time"

	"p3q/internal/randx"
	"p3q/internal/tagging"
)

// NodeID identifies a node; it equals the user ID running on it.
type NodeID = tagging.UserID

// Kind classifies messages for traffic accounting. The categories follow
// the paper's cost analysis: digest exchanges, the three steps of profile
// transfer, and the three kinds of query-processing information of §3.3.2
// ("the forwarded remaining list, the returned remaining list and the
// partial result lists returned to the querier").
type Kind int

const (
	// MsgRandomView is a bottom-layer peer-sampling digest exchange.
	MsgRandomView Kind = iota
	// MsgTopDigest is the first step of the top-layer exchange: profile
	// digests.
	MsgTopDigest
	// MsgCommonItems is the second step: tagging actions for common items,
	// used to compute exact similarity scores.
	MsgCommonItems
	// MsgProfile is the third step: full profile transfer for storage.
	MsgProfile
	// MsgQueryForward carries a query and the forwarded remaining list.
	MsgQueryForward
	// MsgQueryReturn carries the remaining-list portion sent back to the
	// gossip initiator.
	MsgQueryReturn
	// MsgPartialResult carries a partial result list to the querier.
	MsgPartialResult
	// MsgProbe is a failed contact attempt on a departed node.
	MsgProbe

	numKinds
)

var kindNames = [numKinds]string{
	"random-view", "top-digest", "common-items", "profile",
	"query-forward", "query-return", "partial-result", "probe",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds returns all message kinds in order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ProbeBytes is the cost charged for a failed contact attempt: a minimal
// header-sized message.
const ProbeBytes = 8

// Traffic accumulates message and byte counts per kind. The zero value is
// an empty counter ready to use. Traffic values are small and copyable;
// Checkpoint/Since use that for windowed measurements.
type Traffic struct {
	Msgs  [numKinds]uint64
	Bytes [numKinds]uint64
}

// Add records one message of the given kind and size.
func (t *Traffic) Add(k Kind, bytes int) {
	t.Msgs[k]++
	t.Bytes[k] += uint64(bytes)
}

// Merge adds the other counter into this one.
func (t *Traffic) Merge(o Traffic) {
	for i := range t.Msgs {
		t.Msgs[i] += o.Msgs[i]
		t.Bytes[i] += o.Bytes[i]
	}
}

// Since returns the difference t - prev, where prev is an earlier copy of
// the same counter.
func (t Traffic) Since(prev Traffic) Traffic {
	var d Traffic
	for i := range t.Msgs {
		d.Msgs[i] = t.Msgs[i] - prev.Msgs[i]
		d.Bytes[i] = t.Bytes[i] - prev.Bytes[i]
	}
	return d
}

// Snapshot returns the raw per-kind counters — the exact state the
// checkpoint codec persists. Restore is its inverse; the
// snapshotcomplete analyzer verifies the pair covers every Traffic
// field.
func (t Traffic) Snapshot() (msgs, bytes [numKinds]uint64) {
	return t.Msgs, t.Bytes
}

// Restore overwrites the counter with state captured by Snapshot.
func (t *Traffic) Restore(msgs, bytes [numKinds]uint64) {
	t.Msgs, t.Bytes = msgs, bytes
}

// TotalMsgs returns the total message count across kinds.
func (t Traffic) TotalMsgs() uint64 {
	var s uint64
	for _, v := range t.Msgs {
		s += v
	}
	return s
}

// TotalBytes returns the total byte count across kinds.
func (t Traffic) TotalBytes() uint64 {
	var s uint64
	for _, v := range t.Bytes {
		s += v
	}
	return s
}

// Network tracks node liveness and message traffic for a population of n
// nodes. It is not safe for concurrent use; the cycle-driven engine is
// single-threaded by design (determinism).
type Network struct {
	online  []bool
	nOnline int
	total   Traffic
	perNode []Traffic // traffic *sent* by each node

	// now is the virtual clock stamped onto ledger records (Record.At).
	// The engine advances it at cycle boundaries; it has no effect on
	// liveness or traffic accounting.
	now time.Duration
}

// SetNow advances the virtual clock stamped onto records of ledgers
// created afterwards. Pure metadata: traffic counters ignore it.
func (nw *Network) SetNow(t time.Duration) { nw.now = t }

// Now returns the network's virtual clock.
func (nw *Network) Now() time.Duration { return nw.now }

// NewNetwork returns a network of n nodes, all online.
func NewNetwork(n int) *Network {
	online := make([]bool, n)
	for i := range online {
		online[i] = true
	}
	return &Network{
		online:  online,
		nOnline: n,
		perNode: make([]Traffic, n),
	}
}

// Size returns the number of nodes (online or not).
func (nw *Network) Size() int { return len(nw.online) }

// Online reports whether the node is online.
func (nw *Network) Online(u NodeID) bool { return nw.online[u] }

// OnlineCount returns the number of online nodes.
func (nw *Network) OnlineCount() int { return nw.nOnline }

// SetOnline changes a node's liveness.
func (nw *Network) SetOnline(u NodeID, on bool) {
	if nw.online[u] == on {
		return
	}
	nw.online[u] = on
	if on {
		nw.nOnline++
	} else {
		nw.nOnline--
	}
}

// Kill takes a fraction p of currently online nodes offline, chosen
// uniformly at random, and returns their IDs. This models the simultaneous
// massive departure scenario of §3.4.2.
func (nw *Network) Kill(p float64, rng *randx.Source) []NodeID {
	if p <= 0 {
		return nil
	}
	if p > 1 {
		p = 1
	}
	alive := make([]NodeID, 0, nw.nOnline)
	for u, on := range nw.online {
		if on {
			alive = append(alive, NodeID(u))
		}
	}
	k := int(float64(len(alive))*p + 0.5)
	var killed []NodeID
	for _, i := range rng.Sample(len(alive), k) {
		u := alive[i]
		nw.SetOnline(u, false)
		killed = append(killed, u)
	}
	return killed
}

// Send records a message from one node to another. It returns true if the
// destination is online (the message is delivered and accounted under its
// kind) and false otherwise (a probe-sized failed attempt is accounted
// instead). Senders must be online; sending from an offline node panics, as
// it indicates a protocol bug.
func (nw *Network) Send(from, to NodeID, k Kind, bytes int) bool {
	if !nw.online[from] {
		panic(fmt.Sprintf("sim: offline node %d attempted to send", from))
	}
	if !nw.online[to] {
		nw.total.Add(MsgProbe, ProbeBytes)
		nw.perNode[from].Add(MsgProbe, ProbeBytes)
		return false
	}
	nw.total.Add(k, bytes)
	nw.perNode[from].Add(k, bytes)
	return true
}

// Total returns a copy of the global traffic counter.
func (nw *Network) Total() Traffic { return nw.total }

// NodeTraffic returns a copy of the traffic sent by one node.
func (nw *Network) NodeTraffic(u NodeID) Traffic { return nw.perNode[u] }

// RestoreTraffic overwrites the network's traffic counters — the global
// total and every per-node counter — from a checkpoint. perNode must carry
// exactly one counter per node.
func (nw *Network) RestoreTraffic(total Traffic, perNode []Traffic) error {
	if len(perNode) != len(nw.perNode) {
		return fmt.Errorf("sim: RestoreTraffic got %d per-node counters for %d nodes", len(perNode), len(nw.perNode))
	}
	nw.total = total
	copy(nw.perNode, perNode)
	return nil
}

package sim

import (
	"testing"
	"time"
)

// Tests for the checkpoint-facing state accessors: the event queue's
// Pending/RestorePending pair and the network traffic restore.

func TestEventQueuePendingRestoreRoundTrip(t *testing.T) {
	q := NewEventQueue()
	q.Schedule(3*time.Second, "c")
	q.Schedule(time.Second, "a")
	q.Schedule(time.Second, "b") // same time: scheduling order breaks the tie
	q.Schedule(2*time.Second, "d")
	if _, ok := q.PopUntil(time.Second); !ok {
		t.Fatal("no due event")
	}

	pending := q.Pending()
	nextSeq := q.NextSeq()
	r := NewEventQueue()
	if err := r.RestorePending(pending, nextSeq); err != nil {
		t.Fatal(err)
	}
	if r.NextSeq() != nextSeq {
		t.Fatalf("NextSeq = %d, want %d", r.NextSeq(), nextSeq)
	}
	// Interleave a fresh Schedule to prove the Seq sequence continues.
	q.Schedule(time.Second, "e")
	r.Schedule(time.Second, "e")
	for {
		want, okW := q.PopUntil(time.Hour)
		got, okG := r.PopUntil(time.Hour)
		if okW != okG {
			t.Fatalf("queues drained differently: %v vs %v", okW, okG)
		}
		if !okW {
			break
		}
		if want != got {
			t.Fatalf("restored queue popped %+v, want %+v", got, want)
		}
	}
}

func TestEventQueueRestoreRejectsBadInput(t *testing.T) {
	mk := func(at time.Duration, seq uint64) Event { return Event{At: at, Seq: seq} }
	q := NewEventQueue()
	if err := q.RestorePending([]Event{mk(1, 5)}, 5); err == nil {
		t.Fatal("accepted Seq >= nextSeq")
	}
	if err := q.RestorePending([]Event{mk(1, 0), mk(1, 0)}, 2); err == nil {
		t.Fatal("accepted duplicate Seq")
	}
	if err := q.RestorePending([]Event{mk(2, 0), mk(1, 1)}, 2); err == nil {
		t.Fatal("accepted events out of (At, Seq) order")
	}
}

func TestTrafficSnapshotRestoreRoundTrip(t *testing.T) {
	n := NewNetwork(2)
	n.Send(0, 1, MsgProfile, 64)
	n.Send(1, 0, MsgQueryForward, 9)
	src := n.Total()

	msgs, bytes := src.Snapshot()
	var dst Traffic
	dst.Restore(msgs, bytes)
	if dst != src {
		t.Fatalf("restored Traffic = %+v, want %+v", dst, src)
	}
}

func TestNetworkRestoreTraffic(t *testing.T) {
	src := NewNetwork(3)
	src.Send(0, 1, MsgProfile, 100)
	src.Send(2, 0, MsgTopDigest, 40)

	dst := NewNetwork(3)
	per := []Traffic{src.NodeTraffic(0), src.NodeTraffic(1), src.NodeTraffic(2)}
	if err := dst.RestoreTraffic(src.Total(), per); err != nil {
		t.Fatal(err)
	}
	if dst.Total() != src.Total() {
		t.Fatal("total traffic not restored")
	}
	for u := NodeID(0); u < 3; u++ {
		if dst.NodeTraffic(u) != src.NodeTraffic(u) {
			t.Fatalf("node %d traffic not restored", u)
		}
	}
	if err := dst.RestoreTraffic(src.Total(), per[:2]); err == nil {
		t.Fatal("accepted a short per-node slice")
	}
}

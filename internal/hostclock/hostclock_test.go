package hostclock

import (
	"testing"
	"time"
)

func TestStopwatchElapsed(t *testing.T) {
	sw := Start()
	time.Sleep(time.Millisecond)
	d1 := sw.Elapsed()
	if d1 <= 0 {
		t.Fatalf("Elapsed = %v, want > 0", d1)
	}
	time.Sleep(time.Millisecond)
	if d2 := sw.Elapsed(); d2 <= d1 {
		t.Fatalf("Elapsed not monotonic: %v then %v", d1, d2)
	}
}

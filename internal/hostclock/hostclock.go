// Package hostclock quarantines host wall-clock readings for the
// deterministic engine packages. The wallclock analyzer (internal/lint)
// bans direct time.Now/time.Since there, because host time leaking into
// engine state breaks the byte-for-byte fingerprint contract; profiling,
// however, legitimately needs the host clock. A Stopwatch from this
// package is the sanctioned way to measure elapsed host time: importing
// hostclock is greppable, reviewable, and carries the contract that the
// measured durations feed only observability (phase-duration counters,
// benchmark reports) — never simulation-visible state.
package hostclock

import "time"

// Stopwatch measures elapsed host time from its Start.
type Stopwatch struct {
	t0 time.Time
}

// Start returns a running stopwatch.
func Start() Stopwatch { return Stopwatch{t0: time.Now()} }

// Elapsed returns the host time elapsed since Start. The value is
// observability-only by contract: it must not influence engine state,
// scheduling decisions, or anything else a fingerprint can see.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t0) }

package trace

import (
	"p3q/internal/randx"
	"p3q/internal/tagging"
)

// Change is a set of new tagging actions for one user, modelling the
// profile dynamics of §3.4.1 ("every week more than 3000 users change their
// profiles"; on the simulated day, "1540 users changed their profiles with
// an average of 8 new tagging actions per profile", max 268).
type Change struct {
	User    tagging.UserID
	Actions []tagging.Action
}

// ChangeParams configures a change-set draw.
type ChangeParams struct {
	// FracUsers is the fraction of users that change their profile.
	// The paper's simulated day: 1540/10000 = 0.154.
	FracUsers float64
	// MeanNew is the mean number of new tagging actions per changing user
	// (paper: 8). Sizes are log-normal with this mean.
	MeanNew float64
	// SigmaNew is the log-normal sigma of the per-user change size.
	SigmaNew float64
	// MaxNew caps the per-user change size (paper: 268).
	MaxNew int
	Seed   uint64
}

// DefaultChangeParams mirrors the paper's simulated day.
func DefaultChangeParams() ChangeParams {
	return ChangeParams{FracUsers: 0.154, MeanNew: 8, SigmaNew: 1.0, MaxNew: 268, Seed: 99}
}

// GenerateChanges draws a change-set without applying it. For synthetic
// datasets the new actions stay coherent with each user's communities
// (users keep tagging the kind of items they always tagged); for loaded
// datasets the actions are drawn from the global item space with the item's
// existing tags when possible.
func GenerateChanges(d *Dataset, p ChangeParams) []Change {
	if p.FracUsers <= 0 {
		return nil
	}
	if p.FracUsers > 1 {
		p.FracUsers = 1
	}
	if p.MeanNew < 1 {
		p.MeanNew = 1
	}
	if p.SigmaNew <= 0 {
		p.SigmaNew = 0.8
	}
	if p.MaxNew < 1 {
		p.MaxNew = 1
	}
	root := randx.NewSource(p.Seed)
	n := d.Users()
	k := int(float64(n)*p.FracUsers + 0.5)
	who := root.Split(1).Sample(n, k)

	out := make([]Change, 0, k)
	mu := lnMean(p.MeanNew, p.SigmaNew)
	for _, u := range who {
		rng := root.Split(2000 + uint64(u))
		size := int(rng.LogNormal(mu, p.SigmaNew))
		if size < 1 {
			size = 1
		}
		if size > p.MaxNew {
			size = p.MaxNew
		}
		actions := d.drawNewActions(rng, tagging.UserID(u), size)
		if len(actions) > 0 {
			out = append(out, Change{User: tagging.UserID(u), Actions: actions})
		}
	}
	return out
}

// drawNewActions generates up to size actions not already in the user's
// profile.
func (d *Dataset) drawNewActions(rng *randx.Source, u tagging.UserID, size int) []tagging.Action {
	prof := d.Profiles[u]
	var actions []tagging.Action
	seen := make(map[uint64]struct{}, size)
	for tries := 0; len(actions) < size && tries < 40*size; tries++ {
		var it tagging.ItemID
		if d.gen != nil {
			comms := d.gen.membership[u]
			c := comms[rng.Intn(len(comms))]
			pool := d.gen.itemPool[c]
			it = pool[rng.Intn(len(pool))]
		} else {
			it = tagging.ItemID(rng.Intn(d.NumItems))
		}
		tg := d.pickTagFor(rng, it)
		a := tagging.Action{Item: it, Tag: tg}
		if prof.Has(it, tg) {
			continue
		}
		if _, dup := seen[a.Key()]; dup {
			continue
		}
		seen[a.Key()] = struct{}{}
		actions = append(actions, a)
	}
	return actions
}

func (d *Dataset) pickTagFor(rng *randx.Source, it tagging.ItemID) tagging.TagID {
	if d.gen != nil {
		canon := d.gen.canonical[it]
		return canon[rng.Intn(len(canon))]
	}
	return tagging.TagID(rng.Intn(d.NumTags))
}

// Apply appends the change's actions to the owner's profile and returns the
// number of actions actually added (duplicates are skipped).
func (c Change) Apply(d *Dataset) int {
	return d.Profiles[c.User].AddAll(c.Actions)
}

// ApplyChanges applies every change and returns the total number of actions
// added.
func ApplyChanges(d *Dataset, changes []Change) int {
	total := 0
	for _, c := range changes {
		total += c.Apply(d)
	}
	return total
}

package trace

import (
	"math"
	"testing"
)

// Calibration tests: the generator must hit the marginals it is asked for,
// since the substitution argument (DESIGN.md §1) rests on them.

func TestGeneratorHitsMeanItemsTarget(t *testing.T) {
	for _, target := range []float64{20, 60, 120} {
		p := DefaultGenParams(400)
		p.MeanItems = target
		p.Seed = uint64(target)
		s := ComputeStats(Generate(p))
		if math.Abs(s.MeanItemsPerUser-target) > target*0.25 {
			t.Fatalf("target %.0f items/user, generated %.1f (>25%% off)",
				target, s.MeanItemsPerUser)
		}
	}
}

func TestGeneratorActionsPerItemUser(t *testing.T) {
	// The paper's crawl has ~3.8 tags per (user, item); the default
	// MeanExtraTags is calibrated for that.
	p := DefaultGenParams(300)
	p.Seed = 2
	s := ComputeStats(Generate(p))
	if s.MeanActionsPerItemUser < 2.5 || s.MeanActionsPerItemUser > 4.5 {
		t.Fatalf("tags per (user,item) = %.2f, want ~3.8 (paper)", s.MeanActionsPerItemUser)
	}
}

func TestGeneratorProfileSizeSkew(t *testing.T) {
	// Log-normal sizes: the max profile should far exceed the mean (the
	// paper: mean 249 items but >99% under 2000 — a long right tail).
	p := DefaultGenParams(500)
	p.Seed = 3
	s := ComputeStats(Generate(p))
	if float64(s.MaxProfileLen) < 3*s.MeanActionsPerUser {
		t.Fatalf("max profile %d vs mean %.0f: right tail too light",
			s.MaxProfileLen, s.MeanActionsPerUser)
	}
	if float64(s.P99ProfileItems) < s.MeanItemsPerUser {
		t.Fatalf("p99 items %d below the mean %.1f", s.P99ProfileItems, s.MeanItemsPerUser)
	}
}

func TestGeneratorHeadHasPopularItems(t *testing.T) {
	// The dataset reduction criterion of §3.1.1 keeps items tagged by >= 10
	// users; a faithful trace must have a meaningful head of such items.
	p := DefaultGenParams(400)
	p.Seed = 4
	s := ComputeStats(Generate(p))
	if s.ItemsUsedBy10Plus < 50 {
		t.Fatalf("only %d items tagged by >= 10 users; head too thin", s.ItemsUsedBy10Plus)
	}
}

func TestGeneratorCommunityOverlapScalesWithMix(t *testing.T) {
	// Higher CommunityMix must concentrate users on their communities'
	// items, raising within-community profile overlap.
	overlap := func(mix float64) float64 {
		p := DefaultGenParams(200)
		p.MeanItems = 25
		p.CommunityMix = mix
		p.Seed = 5
		ds := Generate(p)
		total, n := 0, 0
		for u := 0; u < 50; u++ {
			best := 0
			for v := 0; v < ds.Users(); v++ {
				if v == u {
					continue
				}
				if s := ds.Profiles[u].CommonScore(ds.Profiles[v].Snapshot()); s > best {
					best = s
				}
			}
			total += best
			n++
		}
		return float64(total) / float64(n)
	}
	low, high := overlap(0.2), overlap(0.95)
	if high <= low {
		t.Fatalf("best-neighbour overlap with mix 0.95 (%.1f) not above mix 0.2 (%.1f)", high, low)
	}
}

func TestGeneratorStableUnderUserCount(t *testing.T) {
	// Normalized marginals should be roughly invariant as the population
	// grows (the scaling argument of DESIGN.md depends on it).
	small := ComputeStats(Generate(GenParams{
		Users: 200, Items: 2000, Tags: 600, Communities: 4,
		MeanItems: 30, SigmaItems: 0.9, MaxItems: 2000,
		MeanExtraTags: 2.8, CommunityMix: 0.85, ItemZipf: 1.15,
		CanonicalTags: 6, Seed: 6,
	}))
	big := ComputeStats(Generate(GenParams{
		Users: 800, Items: 8000, Tags: 2400, Communities: 16,
		MeanItems: 30, SigmaItems: 0.9, MaxItems: 8000,
		MeanExtraTags: 2.8, CommunityMix: 0.85, ItemZipf: 1.15,
		CanonicalTags: 6, Seed: 6,
	}))
	ratio := big.MeanActionsPerUser / small.MeanActionsPerUser
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("actions/user drifted with population: %.1f vs %.1f",
			big.MeanActionsPerUser, small.MeanActionsPerUser)
	}
}

package trace

import (
	"bytes"
	"testing"
)

// FuzzLoad hardens the binary trace parser: arbitrary input must never
// panic or hang, and every dataset that round-trips through Save must load
// back identically.
func FuzzLoad(f *testing.F) {
	// Seed corpus: a valid trace, a truncated one, garbage, and empties.
	p := DefaultGenParams(20)
	p.MeanItems = 8
	p.Seed = 1
	var valid bytes.Buffer
	if err := Save(&valid, Generate(p)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is correct
		}
		// Anything accepted must be internally consistent and re-saveable.
		if ds.Users() < 0 {
			t.Fatal("negative user count")
		}
		var out bytes.Buffer
		if err := Save(&out, ds); err != nil {
			t.Fatalf("re-saving a loaded dataset failed: %v", err)
		}
		back, err := Load(&out)
		if err != nil {
			t.Fatalf("reloading a saved dataset failed: %v", err)
		}
		if back.Users() != ds.Users() || back.TotalActions() != ds.TotalActions() {
			t.Fatal("save/load round trip not idempotent")
		}
	})
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"p3q/internal/tagging"
)

// Binary trace format, so that a real crawl (e.g. an actual delicious dump)
// can be converted once and loaded by every tool in this repository:
//
//	magic   uint32 = 0x50335130 ("P3Q0")
//	users   uint32
//	items   uint32 (size of the item ID space)
//	tags    uint32 (size of the tag ID space)
//	per user:
//	  owner   uint32
//	  actions uint32
//	  actions x { item uint32, tag uint32 }
//
// All integers are little-endian.
const traceMagic = 0x50335130

var errBadMagic = errors.New("trace: bad magic (not a P3Q trace file)")

// Save writes the dataset in the binary trace format.
func Save(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	if err := put32(traceMagic); err != nil {
		return err
	}
	if err := put32(uint32(d.Users())); err != nil {
		return err
	}
	if err := put32(uint32(d.NumItems)); err != nil {
		return err
	}
	if err := put32(uint32(d.NumTags)); err != nil {
		return err
	}
	for _, p := range d.Profiles {
		if err := put32(uint32(p.Owner())); err != nil {
			return err
		}
		if err := put32(uint32(p.Len())); err != nil {
			return err
		}
		for _, a := range p.Actions() {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(a.Item))
			binary.LittleEndian.PutUint32(scratch[4:], uint32(a.Tag))
			if _, err := bw.Write(scratch[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a dataset written by Save. Loaded datasets have no generator
// metadata: change-sets drawn from them use the global item space.
func Load(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, errBadMagic
	}
	users, err := get32()
	if err != nil {
		return nil, err
	}
	items, err := get32()
	if err != nil {
		return nil, err
	}
	tags, err := get32()
	if err != nil {
		return nil, err
	}
	const maxUsers = 1 << 24
	if users > maxUsers {
		return nil, fmt.Errorf("trace: user count %d exceeds sanity limit", users)
	}
	d := &Dataset{
		Profiles: make([]*tagging.Profile, users),
		NumItems: int(items),
		NumTags:  int(tags),
	}
	for i := uint32(0); i < users; i++ {
		owner, err := get32()
		if err != nil {
			return nil, fmt.Errorf("trace: reading user %d header: %w", i, err)
		}
		if owner != i {
			return nil, fmt.Errorf("trace: user %d has owner field %d (profiles must be dense)", i, owner)
		}
		n, err := get32()
		if err != nil {
			return nil, err
		}
		p := tagging.NewProfile(tagging.UserID(owner))
		for j := uint32(0); j < n; j++ {
			if _, err := io.ReadFull(br, scratch[:]); err != nil {
				return nil, fmt.Errorf("trace: reading action %d of user %d: %w", j, i, err)
			}
			it := tagging.ItemID(binary.LittleEndian.Uint32(scratch[:4]))
			tg := tagging.TagID(binary.LittleEndian.Uint32(scratch[4:]))
			p.Add(it, tg)
		}
		d.Profiles[i] = p
	}
	return d, nil
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"p3q/internal/tagging"
)

// Binary trace format, so that a real crawl (e.g. an actual delicious dump)
// can be converted once and loaded by every tool in this repository:
//
//	magic   uint32 = 0x50335130 ("P3Q0")
//	users   uint32
//	items   uint32 (size of the item ID space)
//	tags    uint32 (size of the tag ID space)
//	per user:
//	  owner   uint32
//	  actions uint32
//	  actions x { item uint32, tag uint32 }
//
// All integers are little-endian.
//
// Like internal/checkpoint, the codec runs on sticky-error carriers: the
// first failed read or write is retained and every later operation is a
// no-op, so the call sites stay linear and check the error once. The
// stickyerr analyzer (internal/lint) enforces that raw stream access
// happens only inside the carrier methods below.
const traceMagic = 0x50335130

var errBadMagic = errors.New("trace: bad magic (not a P3Q trace file)")

// traceWriter is the sticky-error carrier for Save.
type traceWriter struct {
	bw      *bufio.Writer
	scratch [8]byte
	err     error
}

// u32 writes one little-endian uint32.
func (w *traceWriter) u32(v uint32) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	_, w.err = w.bw.Write(w.scratch[:4])
}

// pair writes two little-endian uint32s in one call (the per-action hot
// path).
func (w *traceWriter) pair(a, b uint32) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(w.scratch[:4], a)
	binary.LittleEndian.PutUint32(w.scratch[4:], b)
	_, w.err = w.bw.Write(w.scratch[:])
}

// flush returns the first error of the whole write, flushing on success.
func (w *traceWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Save writes the dataset in the binary trace format.
func Save(w io.Writer, d *Dataset) error {
	tw := &traceWriter{bw: bufio.NewWriter(w)}
	tw.u32(traceMagic)
	tw.u32(uint32(d.Users()))
	tw.u32(uint32(d.NumItems))
	tw.u32(uint32(d.NumTags))
	for _, p := range d.Profiles {
		tw.u32(uint32(p.Owner()))
		tw.u32(uint32(p.Len()))
		for _, a := range p.Actions() {
			tw.pair(uint32(a.Item), uint32(a.Tag))
		}
	}
	return tw.flush()
}

// traceReader is the sticky-error carrier for Load.
type traceReader struct {
	br      *bufio.Reader
	scratch [8]byte
	err     error
}

// u32 reads one little-endian uint32, returning zero after a failure.
func (r *traceReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.br, r.scratch[:4]); err != nil {
		r.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(r.scratch[:4])
}

// pair reads two little-endian uint32s.
func (r *traceReader) pair() (uint32, uint32) {
	if r.err != nil {
		return 0, 0
	}
	if _, err := io.ReadFull(r.br, r.scratch[:]); err != nil {
		r.err = err
		return 0, 0
	}
	return binary.LittleEndian.Uint32(r.scratch[:4]), binary.LittleEndian.Uint32(r.scratch[4:])
}

// Load reads a dataset written by Save. Loaded datasets have no generator
// metadata: change-sets drawn from them use the global item space.
func Load(r io.Reader) (*Dataset, error) {
	tr := &traceReader{br: bufio.NewReader(r)}
	magic := tr.u32()
	if tr.err != nil {
		return nil, tr.err
	}
	if magic != traceMagic {
		return nil, errBadMagic
	}
	users := tr.u32()
	items := tr.u32()
	tags := tr.u32()
	if tr.err != nil {
		return nil, tr.err
	}
	const maxUsers = 1 << 24
	if users > maxUsers {
		return nil, fmt.Errorf("trace: user count %d exceeds sanity limit", users)
	}
	d := &Dataset{
		Profiles: make([]*tagging.Profile, users),
		NumItems: int(items),
		NumTags:  int(tags),
	}
	for i := uint32(0); i < users; i++ {
		owner := tr.u32()
		n := tr.u32()
		if tr.err != nil {
			return nil, fmt.Errorf("trace: reading user %d header: %w", i, tr.err)
		}
		if owner != i {
			return nil, fmt.Errorf("trace: user %d has owner field %d (profiles must be dense)", i, owner)
		}
		p := tagging.NewProfile(tagging.UserID(owner))
		for j := uint32(0); j < n; j++ {
			it, tg := tr.pair()
			if tr.err != nil {
				return nil, fmt.Errorf("trace: reading action %d of user %d: %w", j, i, tr.err)
			}
			p.Add(tagging.ItemID(it), tagging.TagID(tg))
		}
		d.Profiles[i] = p
	}
	return d, nil
}

// Package trace provides the workload substrate for the P3Q reproduction: a
// synthetic collaborative-tagging trace generator standing in for the
// delicious crawl used by the paper (January 2009; 10,000 users, 101,144
// items, 31,899 tags, 9,536,635 tagging actions), plus query generation,
// profile change-sets (§3.4.1), dataset statistics, and a binary
// save/load format so a real crawl can be substituted without touching
// protocol code.
//
// # Why the synthetic trace is a faithful substitution
//
// P3Q's behaviour is driven by two properties of the trace: the overlap
// structure between user profiles (it determines similarity scores, hence
// the personal networks and who contributes to whose queries) and the
// long-tail popularity of items and tags (it determines the shape of top-k
// score distributions). The generator models both explicitly:
//
//   - users belong to interest communities; items and tags are
//     community-scoped with Zipf popularity, so users within a community
//     share many (item, tag) pairs while users across communities share few
//     — the "implicit social network" the paper exploits;
//   - each item carries a small set of canonical tags and taggers draw from
//     it with Zipf weights, reproducing the observation that an item is
//     mostly annotated with the same few tags by everyone (which is what
//     makes tag queries answerable at all);
//   - profile sizes are log-normal, matching the paper's skew (mean 249
//     items/user, >99% of users under 2,000 items).
package trace

import (
	"fmt"
	"math"

	"p3q/internal/randx"
	"p3q/internal/tagging"
)

// Dataset is a set of user profiles over a shared item and tag space.
// Profiles are indexed by user ID.
type Dataset struct {
	Profiles []*tagging.Profile
	NumItems int
	NumTags  int

	// gen retains the generator's community structure when the dataset is
	// synthetic, so that change-sets can add actions coherent with each
	// user's interests. It is nil for loaded datasets.
	gen *generator
}

// Users returns the number of users.
func (d *Dataset) Users() int { return len(d.Profiles) }

// Profile returns the profile of the given user.
func (d *Dataset) Profile(u tagging.UserID) *tagging.Profile { return d.Profiles[u] }

// TotalActions returns the total number of tagging actions in the dataset.
func (d *Dataset) TotalActions() int {
	n := 0
	for _, p := range d.Profiles {
		n += p.Len()
	}
	return n
}

// GenParams configures the synthetic trace generator.
type GenParams struct {
	Users       int // number of users
	Items       int // size of the item space
	Tags        int // size of the tag space
	Communities int // number of interest communities

	// MeanItems and SigmaItems parameterize the log-normal distribution of
	// the number of distinct items per user; MaxItems caps it (the paper:
	// mean 249, >99% of users < 2000).
	MeanItems  float64
	SigmaItems float64
	MaxItems   int

	// MeanExtraTags is the mean number of additional tags per (user, item)
	// beyond the first: tags per item-user = 1 + Poisson(MeanExtraTags).
	// The paper's trace has ~3.8 actions per (user, item).
	MeanExtraTags float64

	// CommunityMix is the probability that a user picks an item from one of
	// her own communities rather than from the global pool.
	CommunityMix float64

	// ItemZipf is the Zipf exponent of item popularity within a pool.
	ItemZipf float64

	// CanonicalTags is the number of canonical tags attached to each item;
	// taggers draw from this set with Zipf weights.
	CanonicalTags int

	Seed uint64
}

// DefaultGenParams returns parameters producing a trace whose normalized
// shape matches the paper's delicious crawl, scaled to the given number of
// users. Item and tag space sizes scale with the user count at the paper's
// ratios (10.1 items and 3.2 tags per user).
func DefaultGenParams(users int) GenParams {
	if users < 10 {
		users = 10
	}
	items := users * 10
	tags := users * 3
	if tags < 64 {
		tags = 64
	}
	comms := users / 100
	if comms < 4 {
		comms = 4
	}
	return GenParams{
		Users:       users,
		Items:       items,
		Tags:        tags,
		Communities: comms,
		// Scaled: the full crawl averages 249 items/user; the scaled
		// default uses 60 to keep laptop experiments fast. Experiments can
		// raise it back via -mean-items.
		MeanItems:     60,
		SigmaItems:    0.9,
		MaxItems:      users, // generous cap; clamped to item space below
		MeanExtraTags: 2.8,
		CommunityMix:  0.85,
		ItemZipf:      1.15,
		CanonicalTags: 6,
		Seed:          1,
	}
}

// generator holds the community structure computed during generation.
type generator struct {
	params GenParams
	// itemPool[c] lists the items of community c, in popularity order.
	itemPool [][]tagging.ItemID
	// tagPool[c] lists the tag vocabulary of community c, in popularity order.
	tagPool [][]tagging.TagID
	// canonical[i] is the canonical tag list of item i, most typical first.
	canonical [][]tagging.TagID
	// membership[u] lists the communities of user u (primary first).
	membership [][]int
}

// Generate builds a synthetic dataset from the parameters. Identical
// parameters (including Seed) produce identical datasets.
func Generate(p GenParams) *Dataset {
	p = sanitize(p)
	root := randx.NewSource(p.Seed)
	g := &generator{params: p}
	g.buildCommunities(root.Split(1))
	g.buildCanonicalTags(root.Split(2))

	d := &Dataset{
		Profiles: make([]*tagging.Profile, p.Users),
		NumItems: p.Items,
		NumTags:  p.Tags,
		gen:      g,
	}
	g.membership = make([][]int, p.Users)
	commZipf := randx.NewZipf(root.Split(3), 1.1, p.Communities)
	for u := 0; u < p.Users; u++ {
		rng := root.Split(1000 + uint64(u))
		g.membership[u] = g.pickCommunities(rng, commZipf)
		prof := tagging.NewProfile(tagging.UserID(u))
		g.fillProfile(rng, prof, g.membership[u], g.profileSize(rng))
		d.Profiles[u] = prof
	}
	return d
}

func sanitize(p GenParams) GenParams {
	if p.Users < 1 {
		p.Users = 1
	}
	if p.Items < 10 {
		p.Items = 10
	}
	if p.Tags < 4 {
		p.Tags = 4
	}
	if p.Communities < 1 {
		p.Communities = 1
	}
	if p.Communities > p.Users {
		p.Communities = p.Users
	}
	if p.MeanItems <= 1 {
		p.MeanItems = 10
	}
	if p.SigmaItems <= 0 {
		p.SigmaItems = 0.5
	}
	if p.MaxItems <= 0 || p.MaxItems > p.Items {
		p.MaxItems = p.Items
	}
	if p.MeanExtraTags < 0 {
		p.MeanExtraTags = 0
	}
	if p.CommunityMix < 0 || p.CommunityMix > 1 {
		p.CommunityMix = 0.85
	}
	if p.ItemZipf <= 0 {
		p.ItemZipf = 1.15
	}
	if p.CanonicalTags < 1 {
		p.CanonicalTags = 4
	}
	return p
}

// buildCommunities assigns every item and tag to a community. Community
// sizes follow a mild power law so that a few broad interests dominate, as
// in real tagging systems.
func (g *generator) buildCommunities(rng *randx.Source) {
	p := g.params
	weights := make([]float64, p.Communities)
	for c := range weights {
		weights[c] = 1 / float64(c+1)
	}
	g.itemPool = make([][]tagging.ItemID, p.Communities)
	for i := 0; i < p.Items; i++ {
		c := rng.WeightedChoice(weights)
		g.itemPool[c] = append(g.itemPool[c], tagging.ItemID(i))
	}
	g.tagPool = make([][]tagging.TagID, p.Communities)
	for t := 0; t < p.Tags; t++ {
		c := rng.WeightedChoice(weights)
		g.tagPool[c] = append(g.tagPool[c], tagging.TagID(t))
	}
	// Guarantee non-empty pools: communities that drew nothing borrow the
	// global head element so samplers never face an empty pool.
	for c := 0; c < p.Communities; c++ {
		if len(g.itemPool[c]) == 0 {
			g.itemPool[c] = append(g.itemPool[c], tagging.ItemID(c%p.Items))
		}
		if len(g.tagPool[c]) == 0 {
			g.tagPool[c] = append(g.tagPool[c], tagging.TagID(c%p.Tags))
		}
	}
}

// buildCanonicalTags gives each item its canonical tag list, drawn from the
// vocabulary of the item's community with Zipf weights.
func (g *generator) buildCanonicalTags(rng *randx.Source) {
	p := g.params
	g.canonical = make([][]tagging.TagID, p.Items)
	// Precompute a Zipf sampler per community vocabulary size on demand.
	for c, pool := range g.itemPool {
		vocab := g.tagPool[c]
		z := randx.NewZipf(rng.Split(uint64(c)), 1.2, len(vocab))
		for _, it := range pool {
			n := p.CanonicalTags
			if n > len(vocab) {
				n = len(vocab)
			}
			seen := make(map[tagging.TagID]struct{}, n)
			tags := make([]tagging.TagID, 0, n)
			for tries := 0; len(tags) < n && tries < 20*n; tries++ {
				tg := vocab[z.Draw()]
				if _, dup := seen[tg]; dup {
					continue
				}
				seen[tg] = struct{}{}
				tags = append(tags, tg)
			}
			if len(tags) == 0 {
				tags = append(tags, vocab[0])
			}
			g.canonical[it] = tags
		}
	}
}

// pickCommunities returns 1-3 communities for a user: a Zipf-weighted
// primary plus up to two uniform secondaries.
func (g *generator) pickCommunities(rng *randx.Source, commZipf *randx.Zipf) []int {
	comms := []int{commZipf.Draw()}
	for len(comms) < 3 && rng.Bool(0.4) {
		c := rng.Intn(g.params.Communities)
		dup := false
		for _, x := range comms {
			if x == c {
				dup = true
				break
			}
		}
		if !dup {
			comms = append(comms, c)
		}
	}
	return comms
}

// profileSize draws the number of distinct items for one user.
func (g *generator) profileSize(rng *randx.Source) int {
	p := g.params
	// Parameterize the log-normal so its mean is MeanItems:
	// E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
	mu := lnMean(p.MeanItems, p.SigmaItems)
	n := int(rng.LogNormal(mu, p.SigmaItems))
	if n < 3 {
		n = 3
	}
	if n > p.MaxItems {
		n = p.MaxItems
	}
	return n
}

func lnMean(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}

// fillProfile adds nItems distinct items (with their tags) to the profile.
func (g *generator) fillProfile(rng *randx.Source, prof *tagging.Profile, comms []int, nItems int) {
	p := g.params
	// Per-community item samplers; the first community is the primary and
	// receives most of the weight.
	commWeights := make([]float64, len(comms))
	for i := range comms {
		commWeights[i] = 1 / float64(i+1)
	}
	samplers := make([]*randx.Zipf, len(comms))
	for i, c := range comms {
		samplers[i] = randx.NewZipf(rng.Split(uint64(100+i)), p.ItemZipf, len(g.itemPool[c]))
	}
	globalZipf := randx.NewZipf(rng.Split(999), p.ItemZipf, p.Items)

	tagZipf := randx.NewZipf(rng.Split(777), 1.3, 64)
	for added, tries := 0, 0; added < nItems && tries < 50*nItems; tries++ {
		var it tagging.ItemID
		if rng.Bool(p.CommunityMix) {
			ci := rng.WeightedChoice(commWeights)
			pool := g.itemPool[comms[ci]]
			it = pool[samplers[ci].Draw()]
		} else {
			it = tagging.ItemID(globalZipf.Draw())
		}
		if prof.HasItem(it) {
			continue
		}
		g.tagItem(rng, tagZipf, prof, it)
		added++
	}
}

// tagItem adds 1 + Poisson(MeanExtraTags) tags on the item, drawn from its
// canonical list with Zipf weights (most typical tags first).
func (g *generator) tagItem(rng *randx.Source, tagZipf *randx.Zipf, prof *tagging.Profile, it tagging.ItemID) {
	canon := g.canonical[it]
	n := 1 + rng.Poisson(g.params.MeanExtraTags)
	if n > len(canon) {
		n = len(canon)
	}
	for added, tries := 0, 0; added < n && tries < 20*n; tries++ {
		tg := canon[tagZipf.Draw()%len(canon)]
		if prof.Add(it, tg) {
			added++
		}
	}
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("dataset(users=%d items=%d tags=%d actions=%d)",
		d.Users(), d.NumItems, d.NumTags, d.TotalActions())
}

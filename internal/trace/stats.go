package trace

import (
	"fmt"
	"sort"

	"p3q/internal/tagging"
)

// Stats summarizes a dataset with the quantities the paper reports for its
// delicious crawl (§3.1.1, §3.3.1), so a generated trace can be checked
// against the crawl's marginals.
type Stats struct {
	Users   int
	Items   int // distinct items actually used
	Tags    int // distinct tags actually used
	Actions int

	MeanItemsPerUser   float64 // paper: 249
	MeanActionsPerUser float64 // paper: ~954
	MaxProfileLen      int
	P99ProfileItems    int // paper: >99% of users tag < 2000 items

	MeanActionsPerItemUser float64 // tags per (user, item); paper: ~3.8

	// ItemsUsedBy10Plus is the number of distinct items tagged by at least
	// 10 distinct users — the paper's dataset-reduction criterion.
	ItemsUsedBy10Plus int
}

// ComputeStats scans the dataset once and returns its statistics.
func ComputeStats(d *Dataset) Stats {
	var s Stats
	s.Users = d.Users()
	itemUsers := make(map[tagging.ItemID]int)
	tagsUsed := make(map[tagging.TagID]struct{})
	itemsPerUser := make([]int, 0, s.Users)
	pairCount := 0 // number of (user, item) pairs

	for _, p := range d.Profiles {
		s.Actions += p.Len()
		if p.Len() > s.MaxProfileLen {
			s.MaxProfileLen = p.Len()
		}
		items := p.Items()
		itemsPerUser = append(itemsPerUser, len(items))
		pairCount += len(items)
		for _, it := range items {
			itemUsers[it]++
		}
		for _, a := range p.Actions() {
			tagsUsed[a.Tag] = struct{}{}
		}
	}
	s.Items = len(itemUsers)
	s.Tags = len(tagsUsed)
	for _, n := range itemUsers {
		if n >= 10 {
			s.ItemsUsedBy10Plus++
		}
	}
	if s.Users > 0 {
		s.MeanActionsPerUser = float64(s.Actions) / float64(s.Users)
		totalItems := 0
		for _, n := range itemsPerUser {
			totalItems += n
		}
		s.MeanItemsPerUser = float64(totalItems) / float64(s.Users)
	}
	if pairCount > 0 {
		s.MeanActionsPerItemUser = float64(s.Actions) / float64(pairCount)
	}
	if len(itemsPerUser) > 0 {
		sort.Ints(itemsPerUser)
		idx := int(float64(len(itemsPerUser)) * 0.99)
		if idx >= len(itemsPerUser) {
			idx = len(itemsPerUser) - 1
		}
		s.P99ProfileItems = itemsPerUser[idx]
	}
	return s
}

// String renders the statistics as a short report.
func (s Stats) String() string {
	return fmt.Sprintf(
		"users=%d items=%d tags=%d actions=%d\n"+
			"mean items/user=%.1f mean actions/user=%.1f max profile=%d p99 items=%d\n"+
			"mean tags per (user,item)=%.2f items tagged by >=10 users=%d",
		s.Users, s.Items, s.Tags, s.Actions,
		s.MeanItemsPerUser, s.MeanActionsPerUser, s.MaxProfileLen, s.P99ProfileItems,
		s.MeanActionsPerItemUser, s.ItemsUsedBy10Plus)
}

package trace

import (
	"p3q/internal/randx"
	"p3q/internal/tagging"
)

// Query is a personalized top-k query: a querier and a set of tags. Queries
// are generated as in §3.1.1 of the paper: one item is picked at random from
// the querier's profile and the query consists of the tags the querier used
// on that item, "following the assumption that the tags used by a user to
// tag an item are precisely those she would use to search for that
// particular item".
type Query struct {
	Querier tagging.UserID
	Tags    []tagging.TagID
	// Item is the profile item the query was generated from. The protocol
	// never looks at it; experiments may use it for diagnostics.
	Item tagging.ItemID
}

// GenerateQueries produces one query per user, per the paper's protocol.
// Users with empty profiles (impossible with the generator, possible with
// loaded traces) are skipped.
func GenerateQueries(d *Dataset, seed uint64) []Query {
	root := randx.NewSource(seed)
	out := make([]Query, 0, d.Users())
	for u := 0; u < d.Users(); u++ {
		p := d.Profiles[u]
		if p.Len() == 0 {
			continue
		}
		rng := root.Split(uint64(u))
		items := p.Items()
		it := items[rng.Intn(len(items))]
		out = append(out, Query{
			Querier: tagging.UserID(u),
			Tags:    p.TagsFor(it),
			Item:    it,
		})
	}
	return out
}

// QueryFor builds the query of a single user with the same procedure.
// ok is false if the user's profile is empty.
func QueryFor(d *Dataset, u tagging.UserID, seed uint64) (q Query, ok bool) {
	p := d.Profiles[u]
	if p.Len() == 0 {
		return Query{}, false
	}
	rng := randx.NewSource(seed).Split(uint64(u))
	items := p.Items()
	it := items[rng.Intn(len(items))]
	return Query{Querier: u, Tags: p.TagsFor(it), Item: it}, true
}

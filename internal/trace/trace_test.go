package trace

import (
	"bytes"
	"testing"

	"p3q/internal/tagging"
)

func smallParams(seed uint64) GenParams {
	p := DefaultGenParams(200)
	p.MeanItems = 25
	p.Seed = seed
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallParams(5))
	b := Generate(smallParams(5))
	if a.Users() != b.Users() || a.TotalActions() != b.TotalActions() {
		t.Fatalf("same seed produced different datasets: %v vs %v", a, b)
	}
	for u := 0; u < a.Users(); u++ {
		pa, pb := a.Profiles[u], b.Profiles[u]
		if pa.Len() != pb.Len() {
			t.Fatalf("user %d profile lengths differ: %d vs %d", u, pa.Len(), pb.Len())
		}
		for i, act := range pa.Actions() {
			if pb.Actions()[i] != act {
				t.Fatalf("user %d action %d differs", u, i)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := Generate(smallParams(1))
	b := Generate(smallParams(2))
	if a.TotalActions() == b.TotalActions() {
		// Lengths could rarely coincide; check contents too.
		same := true
		for u := 0; u < a.Users() && same; u++ {
			if a.Profiles[u].Len() != b.Profiles[u].Len() {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestGenerateProfilesNonEmpty(t *testing.T) {
	d := Generate(smallParams(3))
	for u, p := range d.Profiles {
		if p.Len() < 3 {
			t.Fatalf("user %d has %d actions, want >= 3", u, p.Len())
		}
		if p.Owner() != tagging.UserID(u) {
			t.Fatalf("profile %d has owner %d", u, p.Owner())
		}
	}
}

func TestGenerateIDsWithinSpace(t *testing.T) {
	d := Generate(smallParams(4))
	for _, p := range d.Profiles {
		for _, a := range p.Actions() {
			if int(a.Item) >= d.NumItems {
				t.Fatalf("item %d outside space %d", a.Item, d.NumItems)
			}
			if int(a.Tag) >= d.NumTags {
				t.Fatalf("tag %d outside space %d", a.Tag, d.NumTags)
			}
		}
	}
}

func TestGenerateOverlapStructure(t *testing.T) {
	// The whole point of the community structure: a user must have
	// meaningful profile overlap with at least some other users, or P3Q's
	// personal networks would be empty and queries unanswerable.
	d := Generate(smallParams(6))
	withNeighbour := 0
	for u := 0; u < d.Users(); u++ {
		best := 0
		for v := 0; v < d.Users(); v++ {
			if v == u {
				continue
			}
			if s := d.Profiles[u].CommonScore(d.Profiles[v].Snapshot()); s > best {
				best = s
			}
		}
		if best >= 2 {
			withNeighbour++
		}
	}
	frac := float64(withNeighbour) / float64(d.Users())
	if frac < 0.9 {
		t.Fatalf("only %.0f%% of users have a neighbour with score >= 2; trace has no exploitable overlap", frac*100)
	}
}

func TestGenerateLongTail(t *testing.T) {
	d := Generate(smallParams(7))
	users := make(map[tagging.ItemID]int)
	for _, p := range d.Profiles {
		for _, it := range p.Items() {
			users[it]++
		}
	}
	max, singles := 0, 0
	for _, n := range users {
		if n > max {
			max = n
		}
		if n == 1 {
			singles++
		}
	}
	if max < 10 {
		t.Fatalf("most popular item tagged by %d users; expect a heavy head", max)
	}
	if singles < len(users)/10 {
		t.Fatalf("only %d/%d items tagged once; expect a long tail", singles, len(users))
	}
}

func TestStats(t *testing.T) {
	d := Generate(smallParams(8))
	s := ComputeStats(d)
	if s.Users != d.Users() {
		t.Fatalf("stats users = %d, want %d", s.Users, d.Users())
	}
	if s.Actions != d.TotalActions() {
		t.Fatalf("stats actions = %d, want %d", s.Actions, d.TotalActions())
	}
	if s.MeanItemsPerUser < 10 || s.MeanItemsPerUser > 60 {
		t.Fatalf("mean items/user = %.1f, want near the configured 25", s.MeanItemsPerUser)
	}
	if s.MeanActionsPerItemUser < 1 {
		t.Fatalf("mean tags per (user,item) = %.2f, want >= 1", s.MeanActionsPerItemUser)
	}
	if s.ItemsUsedBy10Plus == 0 {
		t.Fatal("no item is tagged by 10+ users; head of the distribution missing")
	}
	if s.String() == "" {
		t.Fatal("Stats.String is empty")
	}
}

func TestDefaultGenParamsScales(t *testing.T) {
	p := DefaultGenParams(1000)
	if p.Items != 10000 || p.Tags != 3000 {
		t.Fatalf("scaled spaces = (%d items, %d tags), want (10000, 3000)", p.Items, p.Tags)
	}
	tiny := DefaultGenParams(1)
	if tiny.Users < 10 {
		t.Fatal("DefaultGenParams should clamp tiny user counts")
	}
}

func TestSanitizeDegenerateParams(t *testing.T) {
	d := Generate(GenParams{Users: 5, Items: 1, Tags: 1, Communities: 99, Seed: 1})
	if d.Users() != 5 {
		t.Fatalf("users = %d, want 5", d.Users())
	}
	for _, p := range d.Profiles {
		if p.Len() == 0 {
			t.Fatal("degenerate parameters produced an empty profile")
		}
	}
}

func TestGenerateQueries(t *testing.T) {
	d := Generate(smallParams(9))
	qs := GenerateQueries(d, 1)
	if len(qs) != d.Users() {
		t.Fatalf("got %d queries, want %d", len(qs), d.Users())
	}
	for _, q := range qs {
		if len(q.Tags) == 0 {
			t.Fatalf("query for user %d has no tags", q.Querier)
		}
		p := d.Profiles[q.Querier]
		for _, tg := range q.Tags {
			if !p.Has(q.Item, tg) {
				t.Fatalf("query tag %d not used by querier %d on item %d", tg, q.Querier, q.Item)
			}
		}
		// The query must contain exactly the tags used on the item.
		if len(q.Tags) != len(p.TagsFor(q.Item)) {
			t.Fatalf("query for user %d has %d tags, profile has %d on item %d",
				q.Querier, len(q.Tags), len(p.TagsFor(q.Item)), q.Item)
		}
	}
}

func TestGenerateQueriesDeterministic(t *testing.T) {
	d := Generate(smallParams(10))
	a := GenerateQueries(d, 7)
	b := GenerateQueries(d, 7)
	for i := range a {
		if a[i].Querier != b[i].Querier || a[i].Item != b[i].Item {
			t.Fatal("query generation not deterministic")
		}
	}
}

func TestQueryFor(t *testing.T) {
	d := Generate(smallParams(11))
	q, ok := QueryFor(d, 3, 7)
	if !ok {
		t.Fatal("QueryFor failed on a non-empty profile")
	}
	if q.Querier != 3 {
		t.Fatalf("querier = %d, want 3", q.Querier)
	}
	all := GenerateQueries(d, 7)
	if all[3].Item != q.Item {
		t.Fatal("QueryFor disagrees with GenerateQueries for the same seed")
	}
}

func TestGenerateChanges(t *testing.T) {
	d := Generate(smallParams(12))
	p := DefaultChangeParams()
	p.Seed = 5
	changes := GenerateChanges(d, p)
	wantUsers := int(float64(d.Users())*p.FracUsers + 0.5)
	if len(changes) < wantUsers-2 || len(changes) > wantUsers {
		t.Fatalf("got %d changes, want ~%d", len(changes), wantUsers)
	}
	seen := make(map[tagging.UserID]bool)
	for _, c := range changes {
		if seen[c.User] {
			t.Fatalf("user %d changed twice", c.User)
		}
		seen[c.User] = true
		if len(c.Actions) == 0 || len(c.Actions) > p.MaxNew {
			t.Fatalf("change size %d out of (0, %d]", len(c.Actions), p.MaxNew)
		}
		for _, a := range c.Actions {
			if d.Profiles[c.User].Has(a.Item, a.Tag) {
				t.Fatal("change contains an action already in the profile")
			}
		}
	}
}

func TestApplyChanges(t *testing.T) {
	d := Generate(smallParams(13))
	before := d.TotalActions()
	p := DefaultChangeParams()
	p.Seed = 6
	changes := GenerateChanges(d, p)
	added := ApplyChanges(d, changes)
	if added <= 0 {
		t.Fatal("ApplyChanges added nothing")
	}
	if d.TotalActions() != before+added {
		t.Fatalf("total actions = %d, want %d", d.TotalActions(), before+added)
	}
	for _, c := range changes {
		for _, a := range c.Actions {
			if !d.Profiles[c.User].Has(a.Item, a.Tag) {
				t.Fatal("applied action missing from profile")
			}
		}
	}
}

func TestChangesVersionBump(t *testing.T) {
	d := Generate(smallParams(14))
	p := ChangeParams{FracUsers: 0.1, MeanNew: 4, SigmaNew: 0.5, MaxNew: 20, Seed: 3}
	changes := GenerateChanges(d, p)
	if len(changes) == 0 {
		t.Fatal("no changes generated")
	}
	c := changes[0]
	v := d.Profiles[c.User].Version()
	added := c.Apply(d)
	if d.Profiles[c.User].Version() != v+added {
		t.Fatal("profile version did not advance by the number of added actions")
	}
}

func TestGenerateChangesZeroFrac(t *testing.T) {
	d := Generate(smallParams(15))
	if got := GenerateChanges(d, ChangeParams{FracUsers: 0}); got != nil {
		t.Fatalf("FracUsers=0 produced %d changes", len(got))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := Generate(smallParams(16))
	var buf bytes.Buffer
	if err := Save(&buf, d); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Users() != d.Users() || got.NumItems != d.NumItems || got.NumTags != d.NumTags {
		t.Fatalf("header mismatch: %v vs %v", got, d)
	}
	for u := 0; u < d.Users(); u++ {
		pa, pb := d.Profiles[u], got.Profiles[u]
		if pa.Len() != pb.Len() {
			t.Fatalf("user %d: %d vs %d actions", u, pa.Len(), pb.Len())
		}
		for i, a := range pa.Actions() {
			if pb.Actions()[i] != a {
				t.Fatalf("user %d action %d mismatch", u, i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("Load accepted garbage input")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("Load accepted empty input")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	d := Generate(smallParams(17))
	var buf bytes.Buffer
	if err := Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("Load accepted a truncated trace")
	}
}

func TestLoadedDatasetSupportsChanges(t *testing.T) {
	d := Generate(smallParams(18))
	var buf bytes.Buffer
	if err := Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	changes := GenerateChanges(loaded, ChangeParams{FracUsers: 0.2, MeanNew: 3, SigmaNew: 0.5, MaxNew: 10, Seed: 4})
	if len(changes) == 0 {
		t.Fatal("no changes on loaded dataset")
	}
	if ApplyChanges(loaded, changes) == 0 {
		t.Fatal("changes on loaded dataset added nothing")
	}
}

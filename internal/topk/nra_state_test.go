package topk

import "testing"

// stateLists builds a stream of partial result lists with overlapping
// items, so the NRA keeps candidates with unresolved bounds mid-stream.
func stateLists() [][]Entry {
	return [][]Entry{
		{{Item: 1, Score: 9}, {Item: 2, Score: 7}, {Item: 3, Score: 2}},
		{{Item: 2, Score: 8}, {Item: 4, Score: 6}, {Item: 1, Score: 1}},
		{{Item: 5, Score: 5}, {Item: 3, Score: 4}, {Item: 4, Score: 3}},
		{{Item: 1, Score: 7}, {Item: 5, Score: 2}, {Item: 6, Score: 1}},
	}
}

func TestNRAStateRestoreContinuesIdentically(t *testing.T) {
	lists := stateLists()
	full := NewNRA(2)
	split := NewNRA(2)
	// Absorb the first half on both operators.
	for _, l := range lists[:2] {
		full.Run([][]Entry{l})
		split.Run([][]Entry{l})
	}
	// Round-trip the split operator through its serializable state.
	restored, err := RestoreNRA(split.State())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.TopK(), full.TopK(); !equalEntries(got, want) {
		t.Fatalf("restored TopK = %v, want %v", got, want)
	}
	// The continuation must match entry for entry, including the scan-cost
	// accounting the stop condition depends on.
	for _, l := range lists[2:] {
		if got, want := restored.Run([][]Entry{l}), full.Run([][]Entry{l}); !equalEntries(got, want) {
			t.Fatalf("restored Run = %v, want %v", got, want)
		}
		if restored.ScannedEntries() != full.ScannedEntries() {
			t.Fatalf("scanned = %d, want %d", restored.ScannedEntries(), full.ScannedEntries())
		}
	}
	if got, want := restored.Drain(), full.Drain(); !equalEntries(got, want) {
		t.Fatalf("restored Drain = %v, want %v", got, want)
	}
}

func TestRestoreNRARejectsIncoherentState(t *testing.T) {
	bad := NRAState{K: 2, Lists: []NRAListState{{Entries: []Entry{{Item: 1, Score: 1}}, Pos: 2}}}
	if _, err := RestoreNRA(bad); err == nil {
		t.Fatal("accepted a cursor past the list end")
	}
	bad = NRAState{K: 2, Cands: []NRACandidateState{{Item: 1, SeenIn: []int{0}}}}
	if _, err := RestoreNRA(bad); err == nil {
		t.Fatal("accepted a candidate seen in a non-existent list")
	}
	bad = NRAState{K: 2, Cands: []NRACandidateState{{Item: 1}, {Item: 1}}}
	if _, err := RestoreNRA(bad); err == nil {
		t.Fatal("accepted duplicate candidates")
	}
}

func equalEntries(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

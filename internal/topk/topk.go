// Package topk implements the top-k machinery of P3Q: the per-node partial
// scoring of queries against stored profile snapshots, an exact reference
// evaluator, and the incremental No-Random-Access (NRA) algorithm of
// Algorithm 4, adapted — as in §2.3 of the paper — to partial result lists
// that arrive asynchronously over gossip cycles.
//
// Scoring model (§2.3): for a query Q and a profile uj, the score of an
// item i is the number of tags of Q that uj used on i. The relevance of i
// for the querier is the sum of these scores over the profiles of her
// personal network. Partial result lists contain every item with a positive
// partial score, ranked by descending score.
package topk

import (
	"sort"

	"p3q/internal/tagging"
)

// Entry is one row of a (partial or final) result list.
type Entry struct {
	Item  tagging.ItemID
	Score int
}

// Less orders entries by descending score with ascending item ID as the
// deterministic tie-break used throughout the reproduction.
func Less(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Item < b.Item
}

// SortEntries sorts a result list in the canonical order.
func SortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return Less(es[i], es[j]) })
}

// TagSet is a deduplicated query tag set.
type TagSet map[tagging.TagID]struct{}

// NewTagSet builds a TagSet from the query's tags.
func NewTagSet(tags []tagging.TagID) TagSet {
	s := make(TagSet, len(tags))
	for _, t := range tags {
		s[t] = struct{}{}
	}
	return s
}

// Accumulate adds the partial scores of one profile snapshot into acc: for
// every action (i, t) in the snapshot with t in the query, the score of i
// increases by one. Because a profile never contains duplicate (item, tag)
// pairs this computes exactly |{t in Q : Tagged(i, t)}| per item.
func Accumulate(acc map[tagging.ItemID]int, snap tagging.Snapshot, q TagSet) {
	for _, a := range snap.Actions() {
		if _, ok := q[a.Tag]; ok {
			acc[a.Item]++
		}
	}
}

// PartialList computes the partial result list over a set of profile
// snapshots: all items with positive aggregate score, in canonical order.
// This is what a node reached by a query sends back to the querier.
func PartialList(snaps []tagging.Snapshot, q TagSet) []Entry {
	acc := make(map[tagging.ItemID]int)
	for _, s := range snaps {
		Accumulate(acc, s, q)
	}
	return entriesFrom(acc)
}

// Exact computes the exact top-k result over a set of snapshots. It is the
// centralized reference ("recall of 1") the protocol's output is compared
// against.
func Exact(snaps []tagging.Snapshot, q TagSet, k int) []Entry {
	acc := make(map[tagging.ItemID]int)
	for _, s := range snaps {
		Accumulate(acc, s, q)
	}
	return TopOf(acc, k)
}

// TopOf returns the k best entries of a score map in canonical order.
func TopOf(acc map[tagging.ItemID]int, k int) []Entry {
	es := entriesFrom(acc)
	if len(es) > k {
		es = es[:k]
	}
	return es
}

// SumLists aggregates a set of partial result lists by summing scores per
// item. It is the ground truth the incremental NRA must converge to.
func SumLists(lists [][]Entry) map[tagging.ItemID]int {
	acc := make(map[tagging.ItemID]int)
	for _, l := range lists {
		for _, e := range l {
			acc[e.Item] += e.Score
		}
	}
	return acc
}

func entriesFrom(acc map[tagging.ItemID]int) []Entry {
	es := make([]Entry, 0, len(acc))
	for it, sc := range acc {
		if sc > 0 {
			es = append(es, Entry{Item: it, Score: sc})
		}
	}
	SortEntries(es)
	return es
}

// Recall returns |got ∩ want| / |want|, the metric of §3.2.2. Empty want
// yields recall 1 (nothing to retrieve).
func Recall(got, want []Entry) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[tagging.ItemID]struct{}, len(want))
	for _, e := range want {
		set[e.Item] = struct{}{}
	}
	hit := 0
	for _, e := range got {
		if _, ok := set[e.Item]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

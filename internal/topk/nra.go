package topk

import (
	"fmt"
	"sort"

	"p3q/internal/tagging"
)

// NRA is the incremental No-Random-Access top-k operator of Algorithm 4.
//
// The querier cannot use a classical one-shot NRA because partial result
// lists arrive asynchronously, one batch per gossip cycle. NRA therefore
// keeps the scan state of every list across invocations: each Run cycle
// scans the newly arrived lists from their head, and previously stopped
// lists rejoin the scan when the cursor reaches the position where they
// stopped — so every list is scanned at most once over the whole
// processing, as §2.3 requires.
//
// Scores follow the classical NRA bounds. For a candidate item:
//
//   - worst-case score: the sum of its scores in the lists where it has
//     been seen (it is assumed absent everywhere else);
//   - best-case score: the worst-case plus, for every list where it has
//     not been seen, that list's last seen score.
//
// Scanning stops when no candidate outside the current top-k — nor any
// hypothetical item unseen in every list — has a best-case score above the
// worst-case score of the k-th candidate.
type NRA struct {
	k     int
	lists []*scanList
	cands map[tagging.ItemID]*candidate
	// ranked is the candidate heap of Algorithm 4, ordered by descending
	// worst-case score (ties: larger best-case first, then ascending item).
	ranked []*candidate
	// bests caches each candidate's best-case score as of the last
	// rebuildRanking.
	bests map[tagging.ItemID]int
	// sumLastSeen caches the sum of lastSeen over all lists as of the last
	// rebuildRanking (the unseen-item bound).
	sumLastSeen int
}

type scanList struct {
	entries []Entry
	pos     int // number of entries scanned so far
}

// lastSeen is the list's current upper bound for items not yet seen in it:
// the score at the last scanned position (the head score before any scan,
// zero once exhausted).
func (l *scanList) lastSeen() int {
	if l.pos >= len(l.entries) {
		return 0
	}
	if l.pos == 0 {
		return l.entries[0].Score
	}
	return l.entries[l.pos-1].Score
}

func (l *scanList) exhausted() bool { return l.pos >= len(l.entries) }

type candidate struct {
	item  tagging.ItemID
	worst int
	// seenIn lists the indexes of the lists where the item has been seen,
	// in ascending order (each list contributes at most once).
	seenIn []int
}

// NewNRA returns an incremental NRA operator for top-k queries.
func NewNRA(k int) *NRA {
	if k < 1 {
		k = 1
	}
	return &NRA{
		k:     k,
		cands: make(map[tagging.ItemID]*candidate),
		bests: make(map[tagging.ItemID]int),
	}
}

// K returns the operator's k.
func (n *NRA) K() int { return n.k }

// Lists returns the number of (non-empty) partial result lists absorbed so
// far.
func (n *NRA) Lists() int { return len(n.lists) }

// ScannedEntries returns the total number of list entries consumed by the
// scan so far — NRA's native cost metric (sequential accesses). The early
// stopping condition exists to keep this below the total entry count.
func (n *NRA) ScannedEntries() int {
	total := 0
	for _, l := range n.lists {
		total += l.pos
	}
	return total
}

// TotalEntries returns the total number of entries across absorbed lists.
func (n *NRA) TotalEntries() int {
	total := 0
	for _, l := range n.lists {
		total += len(l.entries)
	}
	return total
}

// Run absorbs a batch of newly arrived partial result lists (each sorted in
// canonical order, as produced by PartialList) and returns the current
// top-k estimate. Lists must not be mutated by the caller afterwards.
func (n *NRA) Run(newLists [][]Entry) []Entry {
	scanning := make([]int, 0, len(newLists))
	for _, l := range newLists {
		if len(l) == 0 {
			continue
		}
		n.lists = append(n.lists, &scanList{entries: l})
		scanning = append(scanning, len(n.lists)-1)
	}

	position := 1
	for {
		n.rebuildRanking()
		if n.stopConditionMet() {
			break
		}
		progressed := false
		for _, li := range scanning {
			if n.scanOne(li) {
				progressed = true
			}
		}
		position++
		// Old lists that had stopped at position-1 rejoin the scan
		// (Algorithm 4, lines 18-22).
		for li, l := range n.lists {
			if l.pos == position-1 && !l.exhausted() && !contains(scanning, li) {
				scanning = append(scanning, li)
			}
		}
		if !progressed {
			// Nothing left to scan this cycle; the estimate cannot improve
			// until new lists arrive.
			n.rebuildRanking()
			break
		}
	}
	return n.TopK()
}

// Drain scans every absorbed list to exhaustion and returns the now-exact
// top-k. The protocol calls this when a query completes (no remaining list
// anywhere): §2.2.2 guarantees "the accurate (recall of 1) personalized
// results" at that moment, which requires resolving any score bounds the
// early-stopping condition left open. Each list is still scanned at most
// once overall: Drain merely finishes scans the stop condition cut short.
func (n *NRA) Drain() []Entry {
	for li, l := range n.lists {
		for !l.exhausted() {
			n.scanOne(li)
		}
	}
	n.rebuildRanking()
	return n.TopK()
}

// scanOne advances list li by one entry, updating its candidate. It reports
// whether an entry was consumed.
func (n *NRA) scanOne(li int) bool {
	l := n.lists[li]
	if l.exhausted() {
		return false
	}
	e := l.entries[l.pos]
	l.pos++
	c := n.cands[e.Item]
	if c == nil {
		c = &candidate{item: e.Item}
		n.cands[e.Item] = c
	}
	c.worst += e.Score
	c.seenIn = append(c.seenIn, li)
	return true
}

// TopK returns the current top-k estimate (ranked by worst-case score) with
// each entry carrying its worst-case score.
func (n *NRA) TopK() []Entry {
	k := n.k
	if k > len(n.ranked) {
		k = len(n.ranked)
	}
	out := make([]Entry, k)
	for i := 0; i < k; i++ {
		out[i] = Entry{Item: n.ranked[i].item, Score: n.ranked[i].worst}
	}
	return out
}

// rebuildRanking recomputes best-case scores and re-sorts the candidate
// heap per Algorithm 4: descending worst-case, then descending best-case,
// then ascending item ID.
func (n *NRA) rebuildRanking() {
	n.sumLastSeen = 0
	for _, l := range n.lists {
		n.sumLastSeen += l.lastSeen()
	}
	n.ranked = n.ranked[:0]
	for _, c := range n.cands {
		n.ranked = append(n.ranked, c)
		b := c.worst + n.sumLastSeen
		for _, li := range c.seenIn {
			b -= n.lists[li].lastSeen()
		}
		n.bests[c.item] = b
	}
	sort.Slice(n.ranked, func(i, j int) bool {
		a, b := n.ranked[i], n.ranked[j]
		if a.worst != b.worst {
			return a.worst > b.worst
		}
		if n.bests[a.item] != n.bests[b.item] {
			return n.bests[a.item] > n.bests[b.item]
		}
		return a.item < b.item
	})
}

// NRAState is the serializable scan state of an incremental NRA operator:
// every absorbed list with its cursor and every candidate with its
// worst-case accumulation. The derived ranking (best-case bounds, sorted
// candidate order) is a pure function of this state and is rebuilt by
// RestoreNRA, so it is deliberately not part of the snapshot.
type NRAState struct {
	K     int
	Lists []NRAListState
	Cands []NRACandidateState
}

// NRAListState is one absorbed partial result list and its scan cursor.
type NRAListState struct {
	Entries []Entry
	Pos     int
}

// NRACandidateState is one candidate's accumulated state. SeenIn holds the
// indexes of the lists the item has been seen in, in scan order.
type NRACandidateState struct {
	Item   tagging.ItemID
	Worst  int
	SeenIn []int
}

// State captures the operator for checkpointing. Candidates are emitted in
// ascending item order so the snapshot is deterministic; list entry slices
// are shared with the operator, not cloned.
func (n *NRA) State() NRAState {
	st := NRAState{K: n.k}
	for _, l := range n.lists {
		st.Lists = append(st.Lists, NRAListState{Entries: l.entries, Pos: l.pos})
	}
	items := make([]tagging.ItemID, 0, len(n.cands))
	for it := range n.cands {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, it := range items {
		c := n.cands[it]
		st.Cands = append(st.Cands, NRACandidateState{Item: c.item, Worst: c.worst, SeenIn: c.seenIn})
	}
	return st
}

// RestoreNRA rebuilds an operator from a captured state, validating cursor
// and list-index bounds, and recomputes the derived ranking so TopK is
// immediately consistent. Identical future Run/Drain calls on the restored
// operator produce byte-for-byte the results of the original.
func RestoreNRA(st NRAState) (*NRA, error) {
	n := NewNRA(st.K)
	for i, l := range st.Lists {
		if l.Pos < 0 || l.Pos > len(l.Entries) {
			return nil, fmt.Errorf("topk: restored list %d has cursor %d outside [0, %d]", i, l.Pos, len(l.Entries))
		}
		n.lists = append(n.lists, &scanList{entries: l.Entries, pos: l.Pos})
	}
	for _, c := range st.Cands {
		if _, dup := n.cands[c.Item]; dup {
			return nil, fmt.Errorf("topk: restored candidate %d duplicated", c.Item)
		}
		for _, li := range c.SeenIn {
			if li < 0 || li >= len(n.lists) {
				return nil, fmt.Errorf("topk: restored candidate %d seen in out-of-range list %d", c.Item, li)
			}
		}
		n.cands[c.Item] = &candidate{item: c.Item, worst: c.Worst, seenIn: c.SeenIn}
	}
	n.rebuildRanking()
	return n, nil
}

// stopConditionMet implements the loop guard of Algorithm 4 (negated): stop
// when the worst-case score of the k-th candidate is at least the largest
// best-case score among candidates outside the top-k — including the bound
// for items not seen anywhere yet.
func (n *NRA) stopConditionMet() bool {
	if len(n.ranked) < n.k {
		return false
	}
	kthWorst := n.ranked[n.k-1].worst
	maxBest := n.sumLastSeen // an item unseen everywhere could reach this
	for _, c := range n.ranked[n.k:] {
		if b := n.bests[c.item]; b > maxBest {
			maxBest = b
		}
	}
	return kthWorst >= maxBest
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

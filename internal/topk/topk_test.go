package topk

import (
	"math/rand"
	"testing"

	"p3q/internal/tagging"
)

func TestLessCanonicalOrder(t *testing.T) {
	if !Less(Entry{1, 5}, Entry{2, 3}) {
		t.Fatal("higher score should come first")
	}
	if !Less(Entry{1, 5}, Entry{2, 5}) {
		t.Fatal("equal score: lower item ID should come first")
	}
	if Less(Entry{2, 5}, Entry{1, 5}) {
		t.Fatal("tie-break inverted")
	}
}

func TestSortEntries(t *testing.T) {
	es := []Entry{{3, 1}, {1, 2}, {2, 2}, {9, 5}}
	SortEntries(es)
	want := []Entry{{9, 5}, {1, 2}, {2, 2}, {3, 1}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", es, want)
		}
	}
}

func TestAccumulateCountsQueryTags(t *testing.T) {
	p := tagging.NewProfile(1)
	p.Add(10, 1)
	p.Add(10, 2)
	p.Add(10, 3)
	p.Add(20, 1)
	p.Add(30, 9)
	q := NewTagSet([]tagging.TagID{1, 2})
	acc := make(map[tagging.ItemID]int)
	Accumulate(acc, p.Snapshot(), q)
	if acc[10] != 2 {
		t.Fatalf("score(10) = %d, want 2 (tags 1 and 2)", acc[10])
	}
	if acc[20] != 1 {
		t.Fatalf("score(20) = %d, want 1", acc[20])
	}
	if _, ok := acc[30]; ok {
		t.Fatal("item 30 scored despite no query tag")
	}
}

func TestNewTagSetDeduplicates(t *testing.T) {
	q := NewTagSet([]tagging.TagID{1, 1, 2})
	if len(q) != 2 {
		t.Fatalf("tag set size = %d, want 2", len(q))
	}
}

func TestPartialListSortedAndPositive(t *testing.T) {
	a := tagging.NewProfile(1)
	a.Add(10, 1)
	a.Add(20, 1)
	b := tagging.NewProfile(2)
	b.Add(10, 1)
	b.Add(30, 5)
	q := NewTagSet([]tagging.TagID{1})
	l := PartialList([]tagging.Snapshot{a.Snapshot(), b.Snapshot()}, q)
	if len(l) != 2 {
		t.Fatalf("partial list = %v, want 2 entries (items 10, 20)", l)
	}
	if l[0] != (Entry{10, 2}) || l[1] != (Entry{20, 1}) {
		t.Fatalf("partial list = %v, want [{10 2} {20 1}]", l)
	}
}

func TestExactAggregatesAcrossProfiles(t *testing.T) {
	profiles := make([]tagging.Snapshot, 0, 3)
	for i := 0; i < 3; i++ {
		p := tagging.NewProfile(tagging.UserID(i))
		p.Add(100, 1) // all three tag item 100 with query tag 1
		p.Add(tagging.ItemID(i), 1)
		profiles = append(profiles, p.Snapshot())
	}
	got := Exact(profiles, NewTagSet([]tagging.TagID{1}), 2)
	if len(got) != 2 || got[0] != (Entry{100, 3}) {
		t.Fatalf("Exact = %v, want item 100 with score 3 first", got)
	}
}

func TestTopOfTruncatesAndOrders(t *testing.T) {
	acc := map[tagging.ItemID]int{1: 5, 2: 5, 3: 1, 4: 0, 5: -2}
	got := TopOf(acc, 2)
	if len(got) != 2 || got[0] != (Entry{1, 5}) || got[1] != (Entry{2, 5}) {
		t.Fatalf("TopOf = %v, want [{1 5} {2 5}]", got)
	}
}

func TestRecall(t *testing.T) {
	want := []Entry{{1, 3}, {2, 2}, {3, 1}}
	if r := Recall([]Entry{{1, 3}, {2, 2}, {3, 1}}, want); r != 1 {
		t.Fatalf("full recall = %f", r)
	}
	if r := Recall([]Entry{{1, 3}, {9, 9}, {8, 8}}, want); r < 0.32 || r > 0.34 {
		t.Fatalf("1/3 recall = %f", r)
	}
	if r := Recall(nil, want); r != 0 {
		t.Fatalf("empty-got recall = %f, want 0", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty-want recall = %f, want 1", r)
	}
}

func TestRecallIgnoresScores(t *testing.T) {
	// Recall compares item sets; intermediate NRA scores are worst-case
	// estimates and must not matter.
	want := []Entry{{1, 10}}
	if r := Recall([]Entry{{1, 2}}, want); r != 1 {
		t.Fatalf("recall = %f, want 1 (scores differ, items match)", r)
	}
}

// --- NRA ---

func TestNRAOneList(t *testing.T) {
	n := NewNRA(2)
	got := n.Run([][]Entry{{{1, 5}, {2, 3}, {3, 1}}})
	if len(got) != 2 || got[0].Item != 1 || got[1].Item != 2 {
		t.Fatalf("NRA top-2 of one list = %v", got)
	}
}

func TestNRAMergesLists(t *testing.T) {
	n := NewNRA(1)
	n.Run([][]Entry{
		{{1, 2}, {2, 1}},
		{{2, 2}, {1, 1}},
	})
	got := n.Drain()
	// Totals: item1 = 3, item2 = 3; tie broken by item ID.
	if len(got) != 1 || got[0] != (Entry{1, 3}) {
		t.Fatalf("drained top-1 = %v, want {1 3}", got)
	}
}

func TestNRAIncrementalConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(10)
		nLists := 1 + rng.Intn(8)
		lists := make([][]Entry, nLists)
		for i := range lists {
			m := rng.Intn(30)
			acc := make(map[tagging.ItemID]int)
			for j := 0; j < m; j++ {
				acc[tagging.ItemID(rng.Intn(40))] += 1 + rng.Intn(5)
			}
			es := make([]Entry, 0, len(acc))
			for it, sc := range acc {
				es = append(es, Entry{it, sc})
			}
			SortEntries(es)
			lists[i] = es
		}
		n := NewNRA(k)
		// Deliver lists in random batches, as gossip cycles would.
		i := 0
		for i < len(lists) {
			batch := 1 + rng.Intn(3)
			if i+batch > len(lists) {
				batch = len(lists) - i
			}
			n.Run(lists[i : i+batch])
			i += batch
		}
		got := n.Drain()
		want := TopOf(SumLists(lists), k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: NRA %v vs exact %v", trial, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: NRA %v vs exact %v", trial, got, want)
			}
		}
	}
}

func TestNRATopKSetCorrectAfterEachBatchOfAllLists(t *testing.T) {
	// Once every list has been absorbed, even before Drain the early-stop
	// top-k must score-dominate: every returned item's true total must be
	// at least the k-th true total (the classical NRA guarantee; ties may
	// swap equal-scored items until Drain resolves them).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(5)
		lists := make([][]Entry, 1+rng.Intn(6))
		for i := range lists {
			acc := make(map[tagging.ItemID]int)
			for j := 0; j < 20; j++ {
				acc[tagging.ItemID(rng.Intn(25))] += 1 + rng.Intn(4)
			}
			es := make([]Entry, 0, len(acc))
			for it, sc := range acc {
				es = append(es, Entry{it, sc})
			}
			SortEntries(es)
			lists[i] = es
		}
		n := NewNRA(k)
		got := n.Run(lists)
		totals := SumLists(lists)
		exact := TopOf(totals, k)
		if len(exact) < k {
			continue
		}
		kth := exact[len(exact)-1].Score
		for _, e := range got {
			if totals[e.Item] < kth {
				t.Fatalf("trial %d: NRA returned item %d with true total %d < kth total %d",
					trial, e.Item, totals[e.Item], kth)
			}
		}
	}
}

func TestNRAEmptyRun(t *testing.T) {
	n := NewNRA(3)
	if got := n.Run(nil); len(got) != 0 {
		t.Fatalf("Run(nil) = %v, want empty", got)
	}
	if got := n.Run([][]Entry{{}}); len(got) != 0 {
		t.Fatalf("Run(empty list) = %v, want empty", got)
	}
	if n.Lists() != 0 {
		t.Fatalf("empty lists were absorbed: %d", n.Lists())
	}
}

func TestNRARunWithNoNewListsKeepsEstimate(t *testing.T) {
	n := NewNRA(2)
	first := n.Run([][]Entry{{{1, 5}, {2, 3}}})
	second := n.Run(nil)
	if len(first) != len(second) {
		t.Fatalf("estimate changed without new data: %v vs %v", first, second)
	}
	for i := range first {
		if first[i].Item != second[i].Item {
			t.Fatalf("estimate changed without new data: %v vs %v", first, second)
		}
	}
}

func TestNRAKSmallerThanCandidates(t *testing.T) {
	n := NewNRA(10)
	got := n.Run([][]Entry{{{1, 2}}})
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1 (fewer candidates than k)", len(got))
	}
}

func TestNRAKClamped(t *testing.T) {
	n := NewNRA(0)
	if n.K() != 1 {
		t.Fatalf("K = %d, want clamped to 1", n.K())
	}
}

func TestNRAEarlyStopDoesNotScanEverything(t *testing.T) {
	// A single list with a dominant head: the scan should stop long before
	// the tail. This is the whole point of NRA.
	es := make([]Entry, 1000)
	es[0] = Entry{0, 1000}
	for i := 1; i < 1000; i++ {
		es[i] = Entry{tagging.ItemID(i), 1}
	}
	n := NewNRA(1)
	got := n.Run([][]Entry{es})
	if got[0].Item != 0 {
		t.Fatalf("top-1 = %v, want item 0", got)
	}
	if n.lists[0].pos >= 1000 {
		t.Fatal("NRA scanned the entire list despite a dominant top-1")
	}
}

func TestNRADrainIdempotent(t *testing.T) {
	n := NewNRA(2)
	n.Run([][]Entry{{{1, 5}, {2, 3}}, {{3, 4}}})
	a := n.Drain()
	b := n.Drain()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Drain not idempotent: %v vs %v", a, b)
		}
	}
}

func TestNRAWorstScoresNeverExceedTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lists := make([][]Entry, 5)
	for i := range lists {
		acc := make(map[tagging.ItemID]int)
		for j := 0; j < 15; j++ {
			acc[tagging.ItemID(rng.Intn(20))] += 1 + rng.Intn(3)
		}
		es := make([]Entry, 0, len(acc))
		for it, sc := range acc {
			es = append(es, Entry{it, sc})
		}
		SortEntries(es)
		lists[i] = es
	}
	totals := SumLists(lists)
	n := NewNRA(3)
	for _, e := range n.Run(lists) {
		if e.Score > totals[e.Item] {
			t.Fatalf("worst-case score %d exceeds true total %d for item %d",
				e.Score, totals[e.Item], e.Item)
		}
	}
	for _, e := range n.Drain() {
		if e.Score != totals[e.Item] {
			t.Fatalf("drained score %d != true total %d for item %d",
				e.Score, totals[e.Item], e.Item)
		}
	}
}

func TestSumLists(t *testing.T) {
	got := SumLists([][]Entry{
		{{1, 2}, {2, 1}},
		{{1, 3}},
	})
	if got[1] != 5 || got[2] != 1 {
		t.Fatalf("SumLists = %v", got)
	}
}

package topk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p3q/internal/tagging"
)

// randomLists builds sorted partial result lists from fuzz input.
func randomLists(seed int64, nLists, itemSpace, maxLen, maxScore int) [][]Entry {
	rng := rand.New(rand.NewSource(seed))
	lists := make([][]Entry, 0, nLists)
	for i := 0; i < nLists; i++ {
		acc := make(map[tagging.ItemID]int)
		m := rng.Intn(maxLen + 1)
		for j := 0; j < m; j++ {
			acc[tagging.ItemID(rng.Intn(itemSpace))] += 1 + rng.Intn(maxScore)
		}
		es := make([]Entry, 0, len(acc))
		for it, sc := range acc {
			es = append(es, Entry{it, sc})
		}
		SortEntries(es)
		lists = append(lists, es)
	}
	return lists
}

func TestNRADrainEqualsExactProperty(t *testing.T) {
	// For any stream of lists delivered in any batching, Drain equals the
	// exact aggregation with the canonical tie-break.
	f := func(seed int64, kRaw, nListsRaw uint8) bool {
		k := 1 + int(kRaw%15)
		nLists := 1 + int(nListsRaw%10)
		lists := randomLists(seed, nLists, 30, 25, 6)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		n := NewNRA(k)
		i := 0
		for i < len(lists) {
			batch := 1 + rng.Intn(3)
			if i+batch > len(lists) {
				batch = len(lists) - i
			}
			n.Run(lists[i : i+batch])
			i += batch
		}
		got := n.Drain()
		want := TopOf(SumLists(lists), k)
		if len(got) != len(want) {
			return false
		}
		for j := range want {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNRAEarlyTopKDominatesProperty(t *testing.T) {
	// After absorbing all lists (before Drain), every returned item's true
	// total is at least the k-th true total.
	f := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw%8)
		lists := randomLists(seed, 5, 20, 15, 5)
		n := NewNRA(k)
		got := n.Run(lists)
		totals := SumLists(lists)
		exact := TopOf(totals, k)
		if len(exact) < k {
			return true // fewer scored items than k: nothing to dominate
		}
		kth := exact[len(exact)-1].Score
		for _, e := range got {
			if totals[e.Item] < kth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNRAScannedNeverExceedsAvailableProperty(t *testing.T) {
	f := func(seed int64) bool {
		lists := randomLists(seed, 6, 25, 20, 4)
		n := NewNRA(5)
		n.Run(lists)
		if n.ScannedEntries() > n.TotalEntries() {
			return false
		}
		n.Drain()
		return n.ScannedEntries() == n.TotalEntries()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNRABatchingInvarianceProperty(t *testing.T) {
	// The drained result must not depend on how the same lists were
	// batched across Run calls.
	f := func(seed int64, split uint8) bool {
		lists := randomLists(seed, 6, 25, 20, 4)
		oneShot := NewNRA(8)
		oneShot.Run(lists)
		a := oneShot.Drain()

		cut := int(split) % (len(lists) + 1)
		incremental := NewNRA(8)
		incremental.Run(lists[:cut])
		incremental.Run(lists[cut:])
		b := incremental.Drain()

		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecallBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		lists := randomLists(seed, 2, 20, 15, 4)
		r := Recall(lists[0], lists[1])
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialListCanonicalProperty(t *testing.T) {
	// PartialList output is always sorted canonically and strictly positive.
	f := func(seed int64, nProf uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var snaps []tagging.Snapshot
		for i := 0; i <= int(nProf%5); i++ {
			p := tagging.NewProfile(tagging.UserID(i))
			for j := 0; j < 20; j++ {
				p.Add(tagging.ItemID(rng.Intn(15)), tagging.TagID(rng.Intn(6)))
			}
			snaps = append(snaps, p.Snapshot())
		}
		q := NewTagSet([]tagging.TagID{0, 1, 2})
		l := PartialList(snaps, q)
		for i, e := range l {
			if e.Score <= 0 {
				return false
			}
			if i > 0 && Less(e, l[i-1]) == false && l[i-1] != e {
				// l[i-1] must come before e in canonical order.
				if Less(l[i-1], e) == false {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

package lint

import (
	"testing"

	"p3q/internal/lint/analysistest"
)

func TestStickyErr(t *testing.T) {
	analysistest.Run(t, "testdata", StickyErr,
		"p3q/internal/checkpoint/sefixture",
		"example.com/outside")
}

// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named check,
// a Pass hands it one type-checked package, and diagnostics flow through a
// caller-supplied Report hook.
//
// The repository vendors no third-party modules, so the real x/tools
// framework is unavailable; this package mirrors the subset of its API the
// p3qlint suite needs (Analyzer.Run over a Pass with Fset/Files/Pkg/
// TypesInfo), keeping the analyzers themselves source-compatible with a
// future migration to the upstream framework.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the p3qlint
	// command line. It must be a valid Go identifier.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// Pass.Report and returns an error only for internal failures (a
	// finding is a diagnostic, not an error).
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one type-checked package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // package syntax, in deterministic (file name) order
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

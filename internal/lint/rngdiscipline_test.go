package lint

import (
	"testing"

	"p3q/internal/lint/analysistest"
)

func TestRNGDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", RNGDiscipline,
		"p3q/internal/core/rngfixture")
}

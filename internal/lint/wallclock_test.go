package lint

import (
	"testing"

	"p3q/internal/lint/analysistest"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", WallClock,
		"p3q/internal/sim/wcfixture",
		"example.com/outside")
}

package lint

import (
	"testing"

	"p3q/internal/lint/analysistest"
)

func TestPhasePurity(t *testing.T) {
	analysistest.Run(t, "testdata", PhasePurity,
		"p3q/internal/core/ppfixture")
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"p3q/internal/lint/analysis"
)

// HotAlloc flags allocating constructs inside functions annotated
// `//p3q:hotpath` — the per-cycle plan/commit inner loops whose
// pointer-churn is the current scale ceiling (see the ROADMAP's
// million-node SoA item). Flagged constructs: map and slice composite
// literals, make and new, &struct{} literals, calls into package fmt,
// string concatenation, conversions between string and []byte/[]rune,
// and implicit interface boxing at call arguments. A construct that must
// stay (a once-per-call result slice, a cold error path) is excused with
// a trailing `//p3q:alloc <reason>` on its line.
//
// append is deliberately not flagged: growth into a pre-sized or reused
// backing array is the pattern the pooled buffers converge on, and the
// analyzer cannot see capacity.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs in //p3q:hotpath functions unless excused by //p3q:alloc <reason>",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), HotpathScopes) {
		return nil
	}
	for _, f := range pass.Files {
		directives := parseDirectives(f)
		codeEnds := codeEndLines(pass.Fset, f)

		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			line := pass.Fset.Position(fn.Pos()).Line
			hot := directivesAt(pass.Fset, directives, codeEnds, hotpathVerb, line)
			for _, d := range hot {
				d.used = true
			}
			if len(hot) == 0 || fn.Body == nil {
				continue
			}
			checkHotBody(pass, directives, codeEnds, fn)
		}

		for _, ds := range directives {
			for _, d := range ds {
				switch {
				case d.verb == hotpathVerb && !d.used:
					pass.Reportf(d.comment.Pos(), "stale //p3q:%s directive: no function declaration starts on the line below it", hotpathVerb)
				case d.verb == allocVerb && !d.used:
					pass.Reportf(d.comment.Pos(), "stale //p3q:%s directive: no flagged allocation on its line (is the enclosing function annotated //p3q:%s?)", allocVerb, hotpathVerb)
				}
			}
		}
	}
	return nil
}

// checkHotBody walks one hotpath function body and reports each
// allocating construct not excused by an //p3q:alloc directive.
func checkHotBody(pass *analysis.Pass, directives map[*ast.CommentGroup][]*directive, codeEnds map[int]token.Pos, fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...interface{}) {
		line := pass.Fset.Position(pos).Line
		if ds := directivesAt(pass.Fset, directives, codeEnds, allocVerb, line); len(ds) > 0 {
			for _, d := range ds {
				d.used = true
				if d.reason == "" {
					pass.Reportf(d.comment.Pos(), "//p3q:%s directive is missing a reason (say why this allocation must stay on the hot path)", allocVerb)
				}
			}
			return
		}
		args = append(args, fn.Name.Name, allocVerb)
		pass.Reportf(pos, format+" in hotpath function %s (excuse with //p3q:%s <reason>)", args...)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			t := exprType(pass, x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(x.Pos(), "map literal %s allocates", typeString(t))
			case *types.Slice:
				report(x.Pos(), "slice literal %s allocates", typeString(t))
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x.Pos(), "&%s literal heap-allocates", typeString(exprType(pass, x.X)))
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(exprType(pass, x)) {
				if tv, ok := pass.TypesInfo.Types[x]; ok && tv.Value != nil {
					return true // constant-folded at compile time
				}
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkHotCall(pass, report, x)
		}
		return true
	})
}

// checkHotCall classifies one call expression in a hotpath body: builtin
// allocators, fmt calls, allocating conversions, and interface boxing of
// arguments.
func checkHotCall(pass *analysis.Pass, report func(token.Pos, string, ...interface{}), call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// A conversion. string<->[]byte/[]rune copies; converting a
		// concrete value to an interface type boxes it.
		to := tv.Type
		from := exprType(pass, call.Args[0])
		switch {
		case isStringType(to) != isStringType(from):
			report(call.Pos(), "conversion to %s copies its operand", typeString(to))
		case isInterfaceType(to) && !isInterfaceType(from):
			report(call.Pos(), "conversion of %s to interface %s boxes the value", typeString(from), typeString(to))
		}
		return
	}
	if isBuiltin(pass, call.Fun, "make") {
		report(call.Pos(), "make allocates per call; reuse a pooled or per-shard buffer")
		return
	}
	if isBuiltin(pass, call.Fun, "new") {
		report(call.Pos(), "new allocates per call; reuse a pooled or per-shard value")
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(call.Pos(), "fmt.%s formats into fresh allocations", sel.Sel.Name)
				return
			}
		}
	}
	// Implicit interface boxing at arguments: a concrete value passed
	// where the callee takes an interface is heap-boxed per call.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := exprType(pass, arg)
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		if isInterfaceType(pt) && at != nil && !isInterfaceType(at) {
			report(arg.Pos(), "passing %s as %s boxes the value", typeString(at), typeString(pt))
		}
	}
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"p3q/internal/lint/analysis"
)

// checkpointedTypes names, per snapshot scope, the struct types whose
// every field the checkpoint codec must cover. The analyzer checks a type
// in its defining package, against that package's own codec surface, so
// each package must expose one: core's Snapshot/write* and Restore/read*,
// sim's Pending/NextSeq/Traffic.Snapshot and Restore*, randx's State and
// Restore.
var checkpointedTypes = map[string][]string{
	"p3q/internal/core":  {"Engine", "Node", "PersonalNetwork", "Entry", "QueryRun", "eagerEvent"},
	"p3q/internal/sim":   {"EventQueue", "Traffic"},
	"p3q/internal/randx": {"Source"},
}

// SnapshotComplete enforces struct-field coverage of the checkpoint
// codec: every field of a checkpointed type must be referenced both on
// the snapshot path (functions reachable in-package from Snapshot, a
// write* function, or a state accessor named State/Pending/NextSeq) and
// on the restore path (reachable from Restore, a Restore* function, or a
// read* function), or carry `//p3q:transient <reason>` saying why it need
// not survive a checkpoint. A newly added field that silently misses the
// codec is then a lint error instead of a latent resume-divergence.
var SnapshotComplete = &analysis.Analyzer{
	Name: "snapshotcomplete",
	Doc:  "require every field of a checkpointed struct on both codec paths or //p3q:transient <reason>",
	Run:  runSnapshotComplete,
}

// isSnapshotRoot and isRestoreRoot classify function names as codec
// entry points; path membership is the in-package call-graph closure of
// these roots.
func isSnapshotRoot(name string) bool {
	switch name {
	case "Snapshot", "State", "Pending", "NextSeq":
		return true
	}
	return strings.HasPrefix(name, "write")
}

func isRestoreRoot(name string) bool {
	return name == "Restore" || strings.HasPrefix(name, "Restore") || strings.HasPrefix(name, "read")
}

func runSnapshotComplete(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), SnapshotScopes) {
		// Out-of-scope //p3q:transient directives are reported by
		// maporder's module-wide verb/scope validation.
		return nil
	}
	var typeNames []string
	for scope, names := range checkpointedTypes {
		if inScope(pass.Pkg.Path(), []string{scope}) {
			typeNames = names
			break
		}
	}
	allDirectives := map[*ast.File]map[*ast.CommentGroup][]*directive{}
	for _, f := range pass.Files {
		allDirectives[f] = parseDirectives(f)
	}
	if typeNames != nil {
		checkCheckpointedTypes(pass, typeNames, allDirectives)
	}

	// Any transient directive that did not attach to a field of a
	// checkpointed struct excuses nothing.
	for _, directives := range allDirectives {
		for _, ds := range directives {
			for _, d := range ds {
				if d.verb != transientVerb || d.used {
					continue
				}
				pass.Reportf(d.comment.Pos(), "stale //p3q:%s directive: no field of a checkpointed struct starts on the line below it", transientVerb)
			}
		}
	}
	return nil
}

func checkCheckpointedTypes(pass *analysis.Pass, typeNames []string, allDirectives map[*ast.File]map[*ast.CommentGroup][]*directive) {
	snapFuncs, restFuncs := codecPathFuncs(pass)
	snapRefs := fieldRefs(pass, snapFuncs)
	restRefs := fieldRefs(pass, restFuncs)

	designated := map[string]bool{}
	for _, n := range typeNames {
		designated[n] = true
	}
	for _, f := range pass.Files {
		directives := allDirectives[f]
		codeEnds := codeEndLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !designated[ts.Name.Name] {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					checkField(pass, directives, codeEnds, ts.Name.Name, name, snapRefs, restRefs)
				}
			}
			return true
		})
	}
}

// checkField applies the coverage rule to one named field.
func checkField(pass *analysis.Pass, directives map[*ast.CommentGroup][]*directive, codeEnds map[int]token.Pos, typeName string, name *ast.Ident, snapRefs, restRefs map[types.Object]bool) {
	obj := pass.TypesInfo.Defs[name]
	inSnap := snapRefs[obj]
	inRest := restRefs[obj]
	line := pass.Fset.Position(name.Pos()).Line
	if ds := directivesAt(pass.Fset, directives, codeEnds, transientVerb, line); len(ds) > 0 {
		for _, d := range ds {
			d.used = true
			if d.reason == "" {
				pass.Reportf(d.comment.Pos(), "//p3q:%s directive is missing a reason (say why %s.%s need not survive a checkpoint)", transientVerb, typeName, name.Name)
			}
		}
		if inSnap && inRest {
			pass.Reportf(name.Pos(), "stale //p3q:%s directive: field %s.%s is referenced on both checkpoint paths, so it is not transient", transientVerb, typeName, name.Name)
		}
		return
	}
	switch {
	case !inSnap && !inRest:
		pass.Reportf(name.Pos(), "field %s.%s is captured by neither the Snapshot nor the Restore path: serialize it in the checkpoint codec, or annotate it //p3q:%s <reason>", typeName, name.Name, transientVerb)
	case !inSnap:
		pass.Reportf(name.Pos(), "field %s.%s is restored but never referenced on the Snapshot path (Snapshot/write*): a checkpoint would silently drop it", typeName, name.Name)
	case !inRest:
		pass.Reportf(name.Pos(), "field %s.%s is written by Snapshot but never referenced on the Restore path (Restore/read*): a restored engine would not get it back", typeName, name.Name)
	}
}

// codecPathFuncs computes the snapshot-path and restore-path function
// sets: the in-package call-graph closure of the codec roots.
func codecPathFuncs(pass *analysis.Pass) (snap, rest map[types.Object]bool) {
	callees := map[types.Object][]types.Object{}
	var snapRoots, restRoots []types.Object
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if isSnapshotRoot(fd.Name.Name) {
				snapRoots = append(snapRoots, obj)
			}
			if isRestoreRoot(fd.Name.Name) {
				restRoots = append(restRoots, obj)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var callee *ast.Ident
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					callee = fun
				case *ast.SelectorExpr:
					callee = fun.Sel
				default:
					return true
				}
				if obj2 := pass.TypesInfo.Uses[callee]; obj2 != nil && obj2.Pkg() == pass.Pkg {
					callees[obj] = append(callees[obj], obj2)
				}
				return true
			})
		}
	}
	closure := func(roots []types.Object) map[types.Object]bool {
		seen := map[types.Object]bool{}
		stack := append([]types.Object(nil), roots...)
		for len(stack) > 0 {
			o := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[o] {
				continue
			}
			seen[o] = true
			stack = append(stack, callees[o]...)
		}
		return seen
	}
	return closure(snapRoots), closure(restRoots)
}

// fieldRefs collects every struct-field object referenced in the bodies
// of the given functions: through selectors, keyed composite-literal
// fields, and unkeyed composite literals (which initialize every field).
func fieldRefs(pass *analysis.Pass, funcs map[types.Object]bool) map[types.Object]bool {
	refs := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcs[pass.TypesInfo.Defs[fd.Name]] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
						refs[sel.Obj()] = true
					}
				case *ast.CompositeLit:
					st, ok := structOf(exprType(pass, x))
					if !ok {
						return true
					}
					keyed := false
					for _, elt := range x.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						keyed = true
						if key, ok := kv.Key.(*ast.Ident); ok {
							if obj := pass.TypesInfo.Uses[key]; obj != nil {
								refs[obj] = true
							}
						}
					}
					if !keyed && len(x.Elts) > 0 {
						// A positional struct literal names no fields but
						// initializes all of them.
						for i := 0; i < st.NumFields(); i++ {
							refs[st.Field(i)] = true
						}
					}
				}
				return true
			})
		}
	}
	return refs
}

// structOf unwraps t (possibly behind a pointer) to a struct type.
func structOf(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

package lint

import (
	"go/ast"
	"go/types"

	"p3q/internal/lint/analysis"
)

// WallClock flags reads of host time and global process-wide randomness in
// the deterministic engine packages. Simulation time must come from the
// virtual clock (Engine.Now / Network.SetNow / the event queue), and all
// randomness from internal/randx split streams, or identical seeds stop
// producing identical fingerprints. Wall-clock profiling that never feeds
// engine state belongs in internal/hostclock, which exists to make that
// exception explicit and searchable.
var WallClock = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "ban time.Now/Since/Sleep and global math/rand / crypto/rand in deterministic packages",
	Run:  runWallClock,
}

// bannedTime are the time-package functions that read or wait on the host
// clock. Types and constants (time.Duration, time.Second) stay allowed:
// they carry durations without observing the host.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// bannedGlobalRand are the math/rand (and v2) package-level functions
// backed by the shared global generator. Constructors taking an explicit
// source (New, NewSource, NewZipf, ...) stay allowed: internal/randx feeds
// them deterministic state.
var bannedGlobalRand = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"IntN": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"ExpFloat64": true, "NormFloat64": true, "Read": true,
}

func runWallClock(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), DeterministicScopes) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "time":
				if bannedTime[name] {
					pass.Reportf(sel.Pos(), "time.%s reads the host clock in deterministic package %s: use the virtual clock (Engine.Now / Network.SetNow / event time), or internal/hostclock for profiling that never feeds engine state", name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if bannedGlobalRand[name] {
					pass.Reportf(sel.Pos(), "global rand.%s draws from process-wide state in deterministic package %s: draw from an internal/randx split stream instead", name, pass.Pkg.Path())
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(), "crypto/rand is nondeterministic by design: derive randomness from internal/randx split streams in package %s", pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

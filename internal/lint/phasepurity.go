package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"p3q/internal/lint/analysis"
)

// The two phases a function can be assigned to with //p3q:phase.
const (
	planPhase   = "plan"
	commitPhase = "commit"
)

// PhasePurity enforces the plan/commit phase contract of the cycle
// engine. Functions annotated `//p3q:phase plan` run concurrently on
// worker goroutines against cycle-start state, so they may not write
// through an Engine-typed value (mutations must flow through returned
// plan/intent values; a plan function may still normalize its own node,
// because each unit of work owns one node's state exclusively). Functions
// annotated `//p3q:phase commit` replay plans in the canonical order, so
// they may not draw fresh randomness from a randx.Source (Split and State
// do not advance the stream and stay legal) and may not re-derive
// ordering by ranging over a map (unless the loop is independently proven
// commutative with //p3q:orderinvariant). Finally, any function called
// directly from a worker closure passed to forEachIndex, forEachNode, or
// commitSharded must itself carry a phase annotation, so new helpers
// cannot slip into the parallel sections unreviewed.
//
// The write check is a direct-assignment check, not an escape analysis:
// it flags assignments and ++/-- whose target chain passes through a
// value of the package's Engine type. Mutations hidden behind method
// calls are out of its reach — those are what the Workers=1-vs-N
// fingerprint tests remain for.
var PhasePurity = &analysis.Analyzer{
	Name: "phasepurity",
	Doc:  "enforce //p3q:phase plan/commit purity and annotation coverage of worker-closure callees",
	Run:  runPhasePurity,
}

func runPhasePurity(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), DeterministicScopes) {
		return nil
	}

	// Pass 1 over all files: attach //p3q:phase directives to function
	// declarations and index the declarations by their object, so calls
	// in one file can see annotations granted in another.
	phaseOf := map[types.Object]string{}
	decls := map[types.Object]*ast.FuncDecl{}
	type fileDirectives struct {
		file       *ast.File
		directives map[*ast.CommentGroup][]*directive
		codeEnds   map[int]token.Pos
	}
	var perFile []fileDirectives
	for _, f := range pass.Files {
		directives := parseDirectives(f)
		codeEnds := codeEndLines(pass.Fset, f)
		perFile = append(perFile, fileDirectives{f, directives, codeEnds})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj != nil {
				decls[obj] = fd
			}
			line := pass.Fset.Position(fd.Pos()).Line
			for _, d := range directivesAt(pass.Fset, directives, codeEnds, phaseVerb, line) {
				d.used = true
				switch d.reason {
				case planPhase, commitPhase:
					if prev, ok := phaseOf[obj]; ok && prev != d.reason {
						pass.Reportf(d.comment.Pos(), "conflicting //p3q:phase directives on %s: %s and %s (a function belongs to exactly one phase)", fd.Name.Name, prev, d.reason)
						continue
					}
					if obj != nil {
						phaseOf[obj] = d.reason
					}
				default:
					pass.Reportf(d.comment.Pos(), "//p3q:phase directive needs a phase argument: plan or commit")
				}
			}
		}
	}

	// A //p3q:phase directive that attached to no function declaration
	// (on a type, a statement, a blank line) asserts nothing.
	for _, fd := range perFile {
		for _, ds := range fd.directives {
			for _, d := range ds {
				if d.verb == phaseVerb && !d.used {
					pass.Reportf(d.comment.Pos(), "stale //p3q:phase directive: no function declaration starts on the line below it")
				}
			}
		}
	}

	// Pass 2: enforce the per-phase body contracts and the annotation
	// coverage of worker-closure callees.
	reported := map[types.Object]bool{}
	for _, fd := range perFile {
		for _, decl := range fd.file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fn.Name]
			switch phaseOf[obj] {
			case planPhase:
				checkPlanWrites(pass, fn)
			case commitPhase:
				checkCommitBody(pass, fd.directives, fd.codeEnds, fn)
			}
			checkWorkerClosures(pass, fn, phaseOf, decls, reported)
		}
	}
	return nil
}

// checkPlanWrites flags assignment targets in a plan-phase function whose
// selector/index chain passes through an Engine-typed value: those writes
// land in shared engine state while sibling workers are still reading it.
func checkPlanWrites(pass *analysis.Pass, fn *ast.FuncDecl) {
	check := func(target ast.Expr) {
		for e := target; ; {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				if isEngineType(pass.Pkg, exprType(pass, x.X)) {
					pass.Reportf(target.Pos(), "plan-phase function %s writes engine shared state (%s): plan runs concurrently against cycle-start state, so mutations must flow through the returned plan value and be applied at commit", fn.Name.Name, typeString(exprType(pass, target)))
					return
				}
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(st.X)
		}
		return true
	})
}

// checkCommitBody flags randomness draws and map iteration in a
// commit-phase function: commit replays plans in the canonical order, so
// any fresh draw desynchronizes the RNG streams across worker counts and
// any map walk injects Go's per-run iteration order into the result.
func checkCommitBody(pass *analysis.Pass, directives map[*ast.CommentGroup][]*directive, codeEnds map[int]token.Pos, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isRandxSource(exprType(pass, sel.X)) && sel.Sel.Name != "Split" && sel.Sel.Name != "State" {
				pass.Reportf(x.Pos(), "commit-phase function %s draws from a randx.Source (%s): draw all randomness at plan time or in a sequential pass, so streams stay identical across worker counts", fn.Name.Name, sel.Sel.Name)
			}
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[x.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap || x.Key == nil {
				return true
			}
			line := pass.Fset.Position(x.Pos()).Line
			if len(directivesAt(pass.Fset, directives, codeEnds, orderInvariantVerb, line)) > 0 {
				// maporder has already vetted this loop as commutative.
				return true
			}
			pass.Reportf(x.Pos(), "commit-phase function %s ranges over map %s: commit must not re-derive ordering from a map (walk a canonical slice, or prove the body commutative with //p3q:%s)", fn.Name.Name, typeString(tv.Type), orderInvariantVerb)
		}
		return true
	})
}

// workerSpawners names the Engine methods that fan work out to goroutines
// and the phase their closures run in.
var workerSpawners = map[string]string{
	"forEachIndex":  planPhase,
	"forEachNode":   planPhase,
	"commitSharded": commitPhase,
}

// checkWorkerClosures requires every same-package function called
// directly from a func literal passed to forEachIndex/forEachNode/
// commitSharded to carry a //p3q:phase annotation matching the spawner's
// phase. One diagnostic per function, at its declaration.
func checkWorkerClosures(pass *analysis.Pass, fn *ast.FuncDecl, phaseOf map[types.Object]string, decls map[types.Object]*ast.FuncDecl, reported map[types.Object]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		phase, ok := workerSpawners[sel.Sel.Name]
		if !ok || !isEngineType(pass.Pkg, exprType(pass, sel.X)) {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				var callee *ast.Ident
				switch f := inner.Fun.(type) {
				case *ast.Ident:
					callee = f
				case *ast.SelectorExpr:
					callee = f.Sel
				default:
					return true
				}
				obj := pass.TypesInfo.Uses[callee]
				fd, declared := decls[obj]
				if obj == nil || !declared || reported[obj] {
					return true
				}
				got, annotated := phaseOf[obj]
				switch {
				case !annotated:
					reported[obj] = true
					pass.Reportf(fd.Pos(), "%s is called from a %s worker closure but has no //p3q:phase annotation (annotate //p3q:phase %s and satisfy its contract)", fd.Name.Name, sel.Sel.Name, phase)
				case got != phase:
					reported[obj] = true
					pass.Reportf(fd.Pos(), "%s is annotated //p3q:phase %s but is called from a %s worker closure, which runs in the %s phase", fd.Name.Name, got, sel.Sel.Name, phase)
				}
				return true
			})
		}
		return true
	})
}

// isEngineType reports whether t (possibly behind a pointer) is a named
// type called Engine declared in a deterministic-scope package — the
// cycle engine whose shared state the plan phase must not touch.
func isEngineType(pkg *types.Package, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil && inScope(obj.Pkg().Path(), DeterministicScopes)
}

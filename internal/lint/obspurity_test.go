package lint

import (
	"testing"

	"p3q/internal/lint/analysistest"
)

func TestObspurity(t *testing.T) {
	analysistest.Run(t, "testdata", Obspurity,
		"p3q/internal/core/opfixture")
}

package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a p3qlint source annotation, in the style of
// //go:build: no space after the slashes, verb, then a free-form argument
// (a reason, or a phase name for //p3q:phase).
const directivePrefix = "//p3q:"

// The directive verbs. Each verb is owned by one analyzer, which validates
// its attachment, argument, and staleness; maporder additionally validates
// every directive's verb and scope module-wide, so a typoed or misplaced
// verb is an error in whatever package it lands in.
const (
	// orderInvariantVerb marks a range-over-map whose body is commutative,
	// so iteration order provably cannot reach any engine-visible state.
	orderInvariantVerb = "orderinvariant"
	// phaseVerb assigns a function to the plan or commit phase of the
	// cycle engine; phasepurity then enforces that phase's contract.
	phaseVerb = "phase"
	// transientVerb excuses a field of a checkpointed struct from the
	// snapshotcomplete coverage requirement, with a reason.
	transientVerb = "transient"
	// hotpathVerb marks a per-cycle inner-loop function whose body
	// hotalloc scans for allocating constructs.
	hotpathVerb = "hotpath"
	// allocVerb excuses one allocating construct inside a hotpath
	// function, with a reason.
	allocVerb = "alloc"
	// hostplaneVerb marks a struct field or function as host-plane
	// telemetry: wall-clock derived, observability-only. obspurity then
	// enforces that host-plane values never reach engine state or the
	// sim plane of the obs registry.
	hostplaneVerb = "hostplane"
)

// verbScopes maps each recognized verb to the package scopes it applies
// in; nil means the verb is recognized module-wide. A directive using a
// known verb outside its scope is as wrong as an unknown verb — it
// suppresses nothing and rots into false confidence — so maporder reports
// both the same way.
var verbScopes = map[string][]string{
	orderInvariantVerb: nil,
	phaseVerb:          DeterministicScopes,
	transientVerb:      SnapshotScopes,
	hotpathVerb:        HotpathScopes,
	allocVerb:          HotpathScopes,
	hostplaneVerb:      DeterministicScopes,
}

// knownVerbs returns the recognized verbs sorted, for diagnostics.
func knownVerbs() []string {
	out := make([]string, 0, len(verbScopes))
	for v := range verbScopes {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// directive is one parsed //p3q: annotation.
type directive struct {
	comment *ast.Comment
	verb    string
	reason  string
	used    bool
}

// parseDirectives extracts the //p3q: annotations of a file, keyed by the
// comment group that carries them.
func parseDirectives(f *ast.File) map[*ast.CommentGroup][]*directive {
	out := map[*ast.CommentGroup][]*directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, reason, _ := strings.Cut(rest, " ")
			out[cg] = append(out[cg], &directive{
				comment: c,
				verb:    verb,
				reason:  strings.TrimSpace(reason),
			})
		}
	}
	return out
}

// directivesAt returns the directives with the given verb attached to a
// declaration or statement starting at line: carried by a comment group
// ending on the line above it, or by a trailing comment on the same line.
// codeEnds (from codeEndLines) disambiguates the two: a trailing comment
// shares its line with code and attaches only there, never to the line
// below.
func directivesAt(fset *token.FileSet, directives map[*ast.CommentGroup][]*directive, codeEnds map[int]token.Pos, verb string, line int) []*directive {
	var out []*directive
	for cg, ds := range directives {
		start := fset.Position(cg.Pos()).Line
		end := fset.Position(cg.End()).Line
		trailing := codeEnds[start] > 0 && codeEnds[start] <= cg.Pos()
		if trailing {
			if start != line {
				continue
			}
		} else if end != line-1 {
			continue
		}
		for _, d := range ds {
			if d.verb == verb {
				out = append(out, d)
			}
		}
	}
	return out
}

// codeEndLines maps each line of f to the end position of the last
// non-comment syntax node ending on it. A comment group starting after
// that position is a trailing comment of that line's code.
func codeEndLines(fset *token.FileSet, f *ast.File) map[int]token.Pos {
	ends := map[int]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		line := fset.Position(n.End()).Line
		if n.End() > ends[line] {
			ends[line] = n.End()
		}
		return true
	})
	return ends
}

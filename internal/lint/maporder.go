package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"p3q/internal/lint/analysis"
)

// directivePrefix introduces a p3qlint source annotation, in the style of
// //go:build: no space after the slashes, verb, then a free-form reason.
const directivePrefix = "//p3q:"

// orderInvariantVerb marks a range-over-map whose body is commutative, so
// iteration order provably cannot reach any engine-visible state.
const orderInvariantVerb = "orderinvariant"

// MapOrder flags `range` over a map in the deterministic engine packages:
// Go randomizes map iteration order per run, so any map walk whose body
// has order-dependent effects breaks the Workers=1-vs-N fingerprint
// contract. Loops with genuinely commutative bodies are annotated
// `//p3q:orderinvariant <reason>`; the analyzer validates the annotations
// themselves (an annotation that is attached to no map range, lacks a
// reason, or uses an unknown verb is an error in every package).
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map in deterministic packages unless annotated //p3q:orderinvariant <reason>",
	Run:  runMapOrder,
}

// directive is one parsed //p3q: annotation.
type directive struct {
	comment *ast.Comment
	verb    string
	reason  string
	used    bool
}

// parseDirectives extracts the //p3q: annotations of a file, keyed by the
// comment group that carries them.
func parseDirectives(f *ast.File) map[*ast.CommentGroup][]*directive {
	out := map[*ast.CommentGroup][]*directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, reason, _ := strings.Cut(rest, " ")
			out[cg] = append(out[cg], &directive{
				comment: c,
				verb:    verb,
				reason:  strings.TrimSpace(reason),
			})
		}
	}
	return out
}

func runMapOrder(pass *analysis.Pass) error {
	deterministic := inScope(pass.Pkg.Path(), DeterministicScopes)
	for _, f := range pass.Files {
		directives := parseDirectives(f)

		// annotationFor finds an orderinvariant directive attached to the
		// statement starting at line: in a comment group ending on the
		// line above it, or in a trailing comment on the same line.
		annotationFor := func(line int) *directive {
			for cg, ds := range directives {
				start := pass.Fset.Position(cg.Pos()).Line
				end := pass.Fset.Position(cg.End()).Line
				if end != line-1 && start != line {
					continue
				}
				for _, d := range ds {
					if d.verb == orderInvariantVerb {
						return d
					}
				}
			}
			return nil
		}

		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil {
				// `for range m` binds nothing: the body runs len(m)
				// times identically, so order cannot leak.
				return true
			}
			line := pass.Fset.Position(rs.Pos()).Line
			if d := annotationFor(line); d != nil {
				d.used = true
				if d.reason == "" {
					pass.Reportf(d.comment.Pos(), "//p3q:%s directive is missing a reason (say why this loop body is order-invariant)", orderInvariantVerb)
				}
				return true
			}
			if deterministic {
				pass.Reportf(rs.Pos(), "iteration over map %s in deterministic package %s: iterate in canonical order (sorted keys or index order), or annotate the loop //p3q:%s <reason> if its body is commutative", typeString(tv.Type), pass.Pkg.Path(), orderInvariantVerb)
			}
			return true
		})

		// Validate the annotations themselves, in every package: an
		// annotation that suppresses nothing rots into false confidence
		// the next time the loop below it changes.
		for _, ds := range directives {
			for _, d := range ds {
				switch {
				case d.verb != orderInvariantVerb:
					pass.Reportf(d.comment.Pos(), "unknown directive //p3q:%s (the only recognized verb is %s)", d.verb, orderInvariantVerb)
				case !d.used:
					pass.Reportf(d.comment.Pos(), "stale //p3q:%s directive: no range-over-map starts on the line below it", orderInvariantVerb)
				}
			}
		}
	}
	return nil
}

// typeString renders a type compactly for diagnostics.
func typeString(t types.Type) string {
	s := t.String()
	// Shorten fully qualified p3q-internal names: the reader is inside
	// the repo already.
	s = strings.ReplaceAll(s, "p3q/internal/", "")
	return s
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"p3q/internal/lint/analysis"
)

// MapOrder flags `range` over a map in the deterministic engine packages:
// Go randomizes map iteration order per run, so any map walk whose body
// has order-dependent effects breaks the Workers=1-vs-N fingerprint
// contract. Loops with genuinely commutative bodies are annotated
// `//p3q:orderinvariant <reason>`; the analyzer also validates the //p3q:
// directive system itself, module-wide: an orderinvariant annotation that
// is attached to no map range or lacks a reason, a directive with an
// unknown verb, and a known verb used outside its scope (see verbScopes)
// are all errors in every package.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map in deterministic packages unless annotated //p3q:orderinvariant <reason>",
	Run:  runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	deterministic := inScope(pass.Pkg.Path(), DeterministicScopes)
	for _, f := range pass.Files {
		directives := parseDirectives(f)
		codeEnds := codeEndLines(pass.Fset, f)

		// annotationFor finds an orderinvariant directive attached to the
		// statement starting at line.
		annotationFor := func(line int) *directive {
			ds := directivesAt(pass.Fset, directives, codeEnds, orderInvariantVerb, line)
			if len(ds) == 0 {
				return nil
			}
			return ds[0]
		}

		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rs.Key == nil {
				// `for range m` binds nothing: the body runs len(m)
				// times identically, so order cannot leak.
				return true
			}
			line := pass.Fset.Position(rs.Pos()).Line
			if d := annotationFor(line); d != nil {
				d.used = true
				if d.reason == "" {
					pass.Reportf(d.comment.Pos(), "//p3q:%s directive is missing a reason (say why this loop body is order-invariant)", orderInvariantVerb)
				}
				return true
			}
			if deterministic {
				pass.Reportf(rs.Pos(), "iteration over map %s in deterministic package %s: iterate in canonical order (sorted keys or index order), or annotate the loop //p3q:%s <reason> if its body is commutative", typeString(tv.Type), pass.Pkg.Path(), orderInvariantVerb)
			}
			return true
		})

		// Validate the directive system itself, in every package: an
		// annotation that suppresses nothing rots into false confidence
		// the next time the code below it changes. Verb and scope are
		// checked here for every directive; attachment, argument, and
		// staleness of the non-orderinvariant verbs are validated by
		// their owning analyzers (phasepurity, snapshotcomplete,
		// hotalloc).
		for _, ds := range directives {
			for _, d := range ds {
				scopes, known := verbScopes[d.verb]
				switch {
				case !known:
					pass.Reportf(d.comment.Pos(), "unknown directive //p3q:%s (recognized verbs: %s)", d.verb, strings.Join(knownVerbs(), ", "))
				case scopes != nil && !inScope(pass.Pkg.Path(), scopes):
					pass.Reportf(d.comment.Pos(), "unknown directive //p3q:%s in package %s (this verb is only recognized under %s)", d.verb, pass.Pkg.Path(), strings.Join(scopes, ", "))
				case d.verb != orderInvariantVerb:
					// Owned by another analyzer.
				case !d.used:
					pass.Reportf(d.comment.Pos(), "stale //p3q:%s directive: no range-over-map starts on the line below it", orderInvariantVerb)
				}
			}
		}
	}
	return nil
}

// typeString renders a type compactly for diagnostics.
func typeString(t types.Type) string {
	s := t.String()
	// Shorten fully qualified p3q-internal names: the reader is inside
	// the repo already.
	s = strings.ReplaceAll(s, "p3q/internal/", "")
	return s
}

package lint

import (
	"testing"

	"p3q/internal/lint/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", MapOrder,
		"p3q/internal/core/mofixture",
		"example.com/outside")
}

// TestMapOrderAnnotations proves the annotations are validated: a stale
// directive, a reasonless directive, and an unknown verb are themselves
// diagnosed rather than silently tolerated.
func TestMapOrderAnnotations(t *testing.T) {
	analysistest.Run(t, "testdata", MapOrder,
		"p3q/internal/core/annfixture")
}

package lint

import (
	"testing"

	"p3q/internal/lint/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", HotAlloc,
		"p3q/internal/core/hafixture")
}

// TestScopedVerbsOutsideScope proves a scoped verb used from the wrong
// package is rejected as unknown (maporder owns module-wide verb/scope
// validation), so //p3q:hotpath, //p3q:transient and //p3q:phase can
// never silently assert nothing from an out-of-scope package.
func TestScopedVerbsOutsideScope(t *testing.T) {
	analysistest.Run(t, "testdata", MapOrder,
		"example.com/outsideverbs")
}

// Package lint is the p3qlint determinism-linter suite: eight static
// analyzers that enforce, at go-vet time, the ordering, clock, RNG,
// phase, telemetry, and checkpoint contracts ARCHITECTURE.md otherwise
// states only in prose. The dynamic half of the safety net — the Workers=1-vs-N
// fingerprint tests and the resume-equals-uninterrupted checkpoint tests
// — catches a determinism violation only after it is written and only on
// an exercised path; these analyzers reject the idioms that cause them
// before the code runs.
//
// The analyzers:
//
//   - maporder: no `range` over a map inside the deterministic engine
//     packages, unless annotated `//p3q:orderinvariant <reason>` (for
//     provably commutative loop bodies). The //p3q: directive system
//     itself is validated module-wide here: a stale or reasonless
//     orderinvariant annotation, an unknown verb, and a known verb used
//     outside its scope are all errors.
//   - wallclock: no time.Now/Since/Sleep and no global math/rand or
//     crypto/rand in the deterministic packages; use the virtual clock
//     and internal/randx split streams.
//   - rngdiscipline: a randx.Source that crosses into a spawned goroutine
//     must pass through .Split(label) first.
//   - stickyerr: the codec packages (internal/checkpoint, internal/trace,
//     internal/wire) discard no error results and perform raw stream I/O
//     only inside sticky-error carrier methods.
//   - phasepurity: functions annotated `//p3q:phase plan` (run
//     concurrently against cycle-start state) may not write through an
//     Engine-typed value; `//p3q:phase commit` functions may not draw
//     from randx.Source or range over maps; functions called from the
//     forEachIndex/forEachNode/commitSharded worker closures must carry a
//     phase annotation.
//   - snapshotcomplete: every field of a checkpointed struct (Engine,
//     Node, PersonalNetwork, Entry, QueryRun, eagerEvent, sim.EventQueue,
//     sim.Traffic, randx.Source) must be referenced on both the Snapshot
//     and the Restore path, or carry `//p3q:transient <reason>`.
//   - hotalloc: inside functions annotated `//p3q:hotpath`, allocating
//     constructs (map/slice literals, make/new, fmt calls, string
//     concatenation, interface boxing) are flagged unless excused by
//     `//p3q:alloc <reason>`.
//   - obspurity: host-plane telemetry values (anything rooted in
//     internal/hostclock or in a `//p3q:hostplane <reason>` field or
//     function) may not be written into unannotated state, steer engine
//     control flow, escape as unannotated returns, or enter the sim
//     plane of the obs registry (Inc/Add/Event/AddShardIntent).
//
// Run the suite with `go run ./cmd/p3qlint ./...` (or `make lint`), or as
// `go vet -vettool=$(which p3qlint) ./...`.
package lint

import (
	"sort"
	"strings"

	"p3q/internal/lint/analysis"
	"p3q/internal/lint/load"
)

// DeterministicScopes lists the package paths (each covering its subtree)
// under the byte-for-byte determinism contract: everything that executes
// between a seed and an engine fingerprint. maporder, wallclock, and
// rngdiscipline only report inside these scopes.
var DeterministicScopes = []string{
	"p3q/internal/core",
	"p3q/internal/gossip",
	"p3q/internal/sim",
	"p3q/internal/experiments",
	"p3q/internal/checkpoint",
}

// HotpathScopes lists the packages where //p3q:hotpath and //p3q:alloc
// are recognized and hotalloc reports: the deterministic engine scopes
// plus the leaf packages whose helpers the engine's plan/commit inner
// loops call directly (randx samplers, tagging digests and item scans).
// Those leaves are not under the full determinism lint set — randx
// legitimately wraps math/rand, tagging sorts its own memos — but their
// hot helpers carry the same allocation budget as their callers.
var HotpathScopes = append([]string{
	"p3q/internal/randx",
	"p3q/internal/tagging",
}, DeterministicScopes...)

// CodecScopes lists the packages under the sticky-error codec discipline
// enforced by stickyerr.
var CodecScopes = []string{
	"p3q/internal/checkpoint",
	"p3q/internal/trace",
	"p3q/internal/wire",
}

// SnapshotScopes lists the packages that define checkpointed state:
// snapshotcomplete checks struct-field codec coverage there, and the
// //p3q:transient verb is only recognized there.
var SnapshotScopes = []string{
	"p3q/internal/core",
	"p3q/internal/sim",
	"p3q/internal/randx",
}

// inScope reports whether pkg path is one of the scopes or below one.
func inScope(path string, scopes []string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns the full p3qlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{MapOrder, WallClock, RNGDiscipline, StickyErr, PhasePurity, SnapshotComplete, HotAlloc, Obspurity}
}

// Finding is one diagnostic located in a file, ready for printing.
type Finding struct {
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
}

// Check runs the analyzers over the packages and returns all findings
// sorted by file, line, column, and analyzer name.
func Check(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					Analyzer: name,
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

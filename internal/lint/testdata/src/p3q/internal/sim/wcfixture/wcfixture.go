// Package wcfixture exercises the wallclock analyzer inside a
// deterministic-scope package path.
package wcfixture

import (
	"crypto/rand"
	mrand "math/rand"
	"time"
)

func clock() time.Duration {
	start := time.Now()          // want "reads the host clock"
	time.Sleep(time.Millisecond) // want "reads the host clock"
	_ = mrand.Intn(4)            // want "process-wide state"
	r := mrand.New(mrand.NewSource(1))
	_ = r.Intn(4) // explicit deterministic source: allowed
	buf := make([]byte, 8)
	_, _ = rand.Read(buf)    // want "nondeterministic by design"
	return time.Since(start) // want "reads the host clock"
}

// durations and constants from package time stay allowed: they carry
// values without observing the host.
const tick time.Duration = 5 * time.Second

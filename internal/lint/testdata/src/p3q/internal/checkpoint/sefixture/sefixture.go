// Package sefixture exercises the stickyerr analyzer inside a codec-scope
// package path.
package sefixture

import (
	"bufio"
	"io"
	"os"
)

type sticky struct {
	bw  *bufio.Writer
	err error
}

func (w *sticky) put(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.bw.Write(b) // carrier method: raw I/O allowed here
}

type loose struct{ bw *bufio.Writer }

func (l *loose) put(b []byte) error {
	_, err := l.bw.Write(b) // want "raw stream I/O outside a sticky-error carrier"
	return err
}

func drop(f *os.File, r io.Reader, buf []byte) {
	f.Close()                  // want "discards its error result"
	defer f.Close()            // want "deferred call discards its error result"
	_ = f.Close()              // want "assigned to blank"
	_, _ = io.ReadFull(r, buf) // want "assigned to blank" "raw stream I/O"
	n, _ := f.Write(buf)       // want "assigned to blank" "raw stream I/O"
	_ = n
}

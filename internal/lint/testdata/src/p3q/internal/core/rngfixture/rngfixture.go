// Package rngfixture exercises the rngdiscipline analyzer: randx sources
// crossing goroutine boundaries with and without .Split.
package rngfixture

import (
	"sync"

	"p3q/internal/randx"
)

type node struct{ rng *randx.Source }

type pool struct{}

func (pool) Go(f func()) { f() }

func spawn(src *randx.Source, nodes []*node) {
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		_ = src.Intn(4) // want "captured by goroutine-launched closure"
	}()
	go func() {
		defer wg.Done()
		child := src.Split(1) // split before drawing: allowed
		_ = child.Intn(4)
	}()
	go func() {
		defer wg.Done()
		_ = nodes[0].rng.Float64() // want "captured by goroutine-launched closure"
	}()
	wg.Wait()

	go drain(src)          // want "handed to a goroutine"
	go drain(src.Split(2)) // fresh child stream: allowed

	var p pool
	p.Go(func() {
		_ = src.Float64() // want "captured by goroutine-launched closure"
	})
}

func drain(s *randx.Source) { _ = s.Intn(2) }

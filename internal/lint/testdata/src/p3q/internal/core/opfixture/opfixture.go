// Package opfixture exercises the obspurity analyzer: host-plane taint
// seeding from internal/hostclock and //p3q:hostplane declarations, taint
// propagation through locals and expressions, the state / control-flow /
// return sinks, the sim-plane mutator ban, and validation of the
// directives themselves.
package opfixture

import (
	"time"

	"p3q/internal/hostclock"
	"p3q/internal/obs"
)

type Engine struct {
	cycleSeq uint64
	ledger   uint64
	obs      *obs.Registry

	// planDur is host-plane storage: writes of wall time land here legally.
	//
	//p3q:hostplane phase timing for observability only
	planDur time.Duration
}

type report struct {
	cycles uint64
	//p3q:hostplane wall time for the progress line
	took time.Duration
}

func (e *Engine) commitTimed() {
	sw := hostclock.Start()
	e.cycleSeq++
	d := sw.Elapsed()
	e.planDur = d                     // hostplane field: legal
	e.planDur += sw.Elapsed()         // still legal
	e.ledger = uint64(d)              // want "commitTimed writes a host-plane value into field ledger"
	if d > time.Millisecond {         // want "commitTimed branches on a host-plane value"
		e.cycleSeq++
	}
	halved := d / 2
	for halved > 0 { // want "commitTimed loops on a host-plane value"
		halved /= 2
	}
	switch d { // want "commitTimed switches on a host-plane value"
	default:
	}
}

func (e *Engine) simPlaneClean() {
	e.obs.Add(obs.CCommitBytes, e.ledger) // engine-state-derived: legal
	e.obs.Inc(obs.CLazyCycles)
	e.obs.SamplePhase(obs.PhasePlan, e.planDur) // host plane of the registry: legal
}

func (e *Engine) simPlaneDirty() {
	sw := hostclock.Start()
	e.obs.Add(obs.CCommitBytes, uint64(sw.Elapsed())) // want "simPlaneDirty feeds a host-plane value into obs.Registry.Add"
	e.obs.AddShardIntent(0, uint64(e.planDur))        // want "simPlaneDirty feeds a host-plane value into obs.Registry.AddShardIntent"
}

func (e *Engine) leakReturn() time.Duration {
	return e.planDur // want "leakReturn returns a host-plane value but is not marked //p3q:hostplane"
}

// timingNote is observability-only end to end, so its branches and return
// are exempt — but even it may not write the sim plane.
//
//p3q:hostplane formats the progress line
func (e *Engine) timingNote() time.Duration {
	if e.planDur > time.Second { // exempt: the function is declared hostplane
		e.obs.Add(obs.CLazyCycles, uint64(e.planDur)) // want "timingNote feeds a host-plane value into obs.Registry.Add"
		e.obs.Inc(obs.CLazyCycles)                    // untainted args stay legal even here
	}
	return e.planDur // exempt
}

// launder returns a clean value: call results of unannotated functions
// are the documented taint boundary, so the caller sees no taint.
func cleanCaller(e *Engine) uint64 {
	_ = e.timingNote() // hostplane func result IS tainted...
	n := e.leakReturn()
	_ = n
	return e.cycleSeq
}

func taintedCaller(e *Engine) {
	d := e.timingNote()
	e.ledger = uint64(d) // want "taintedCaller writes a host-plane value into field ledger"
}

func buildReport(e *Engine) report {
	sw := hostclock.Start()
	return report{
		cycles: uint64(sw.Elapsed()), // want "buildReport binds a host-plane value to field cycles"
		took:   sw.Elapsed(),         // hostplane field: legal
	}
}

//p3q:hostplane
// want-above "stale //p3q:hostplane directive: no struct field or function declaration starts on the line below it"

var notADecl = 0

// Package scfixture exercises the snapshotcomplete analyzer: every field
// of a checkpointed struct (here: one named Engine, under the core scope)
// must be referenced on both the Snapshot path and the Restore path, or
// carry //p3q:transient with a reason. The dropped field below is the
// regression case: present in Restore, deliberately omitted from
// Snapshot.
package scfixture

type Engine struct {
	cycles  uint64
	seq     uint64
	dropped uint64 // want "field Engine.dropped is restored but never referenced on the Snapshot path"
	ghost   uint64 // want "field Engine.ghost is captured by neither the Snapshot nor the Restore path"

	//p3q:transient recomputed each cycle from cycles
	memo []uint64

	//p3q:transient
	// want-above "//p3q:transient directive is missing a reason"
	scratch []uint64

	//p3q:transient stale claim: this field is in fact serialized
	covered uint64 // want "stale //p3q:transient directive: field Engine.covered is referenced on both checkpoint paths"
}

// Snapshot heads the snapshot path; encodeTail is neither a root name
// nor exported, so its references prove path membership is the
// call-graph closure, not just the roots.
func (e *Engine) Snapshot(out []uint64) []uint64 {
	out = append(out, e.cycles)
	return e.encodeTail(out)
}

func (e *Engine) encodeTail(out []uint64) []uint64 {
	return append(out, e.seq, e.covered)
}

// Restore heads the restore path; decodeTail is reached through it.
func Restore(in []uint64) *Engine {
	e := &Engine{cycles: in[0]}
	e.decodeTail(in[1:])
	return e
}

func (e *Engine) decodeTail(in []uint64) {
	e.seq = in[0]
	e.covered = in[1]
	e.dropped = in[2]
}

//p3q:transient not attached to any field
// want-above "stale //p3q:transient directive: no field of a checkpointed struct starts on the line below it"

var unrelated int

// Package ppfixture exercises the phasepurity analyzer: plan-phase write
// purity, commit-phase randomness and map-order bans, worker-closure
// annotation coverage, and validation of the //p3q:phase directives
// themselves.
package ppfixture

import "p3q/internal/randx"

type Node struct {
	score int
	memo  map[int]int
}

type Engine struct {
	nodes    []*Node
	queries  map[uint64]int
	cycleSeq uint64
	rng      *randx.Source
}

func (e *Engine) forEachIndex(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func (e *Engine) forEachNode(fn func(n *Node)) {
	for _, n := range e.nodes {
		fn(n)
	}
}

func (e *Engine) commitSharded(apply func(i int)) {
	apply(0)
}

//p3q:phase plan
func (e *Engine) planBad(i int) int {
	e.cycleSeq++                // want "plan-phase function planBad writes engine shared state"
	e.nodes[i].score = 1        // want "plan-phase function planBad writes engine shared state"
	e.queries[uint64(i)] = 2    // want "plan-phase function planBad writes engine shared state"
	return e.nodes[i].score + 1 // reads stay legal
}

// planOwn normalizes its own node: receiver-rooted writes are each
// worker's exclusively owned state, so they are legal in plan.
//
//p3q:phase plan
func (n *Node) planOwn() {
	n.score++
	n.memo = map[int]int{}
}

//p3q:phase commit
func (e *Engine) commitBad(i int) {
	_ = e.rng.Intn(10) // want "commit-phase function commitBad draws from a randx.Source"
	child := e.rng.Split(7)
	_ = child.State()             // Split and State do not advance the stream
	for q, v := range e.queries { // want "commit-phase function commitBad ranges over map"
		_ = q
		_ = v
	}
	//p3q:orderinvariant each iteration touches a distinct key
	for q := range e.queries {
		delete(e.queries, q)
	}
	e.cycleSeq++ // commit owns the state it applies to
}

// helper is called from a plan worker closure without any annotation.
func (e *Engine) helper(i int) {} // want "helper is called from a forEachIndex worker closure but has no //p3q:phase annotation"

// misphased carries the wrong phase for the closure that calls it.
//
//p3q:phase plan
func (e *Engine) misphased(i int) {} // want "misphased is annotated //p3q:phase plan but is called from a commitSharded worker closure"

func (e *Engine) cycle() {
	e.forEachIndex(len(e.nodes), func(i int) {
		e.helper(i)
		e.planBad(i)
	})
	e.forEachNode(func(n *Node) {
		n.planOwn()
	})
	e.commitSharded(func(i int) {
		e.misphased(i)
		e.commitBad(i)
	})
}

//p3q:phase plan
//p3q:phase commit
func (e *Engine) twoPhased() {} // want-above "conflicting //p3q:phase directives on twoPhased: plan and commit"

//p3q:phase sideways
func (e *Engine) wrongArg() {} // want-above "//p3q:phase directive needs a phase argument: plan or commit"

//p3q:phase plan
// want-above "stale //p3q:phase directive: no function declaration starts on the line below it"

type notAFunction struct{}

// Package annfixture exercises validation of the //p3q: annotations
// themselves: stale directives, reasonless directives, unknown verbs.
package annfixture

func bad(m map[string]int) int {
	n := 0
	//p3q:orderinvariant counting is commutative
	for _, v := range m {
		n += v
	}
	//p3q:orderinvariant
	// want-above "missing a reason"
	for _, v := range m {
		n += v
	}
	//p3q:orderinvariant this is not attached to a map loop
	// want-above "stale"
	for i := 0; i < 3; i++ {
		n += i
	}
	//p3q:frobnicate whatever
	// want-above "unknown directive"
	return n
}

// Package mofixture exercises the maporder analyzer inside a
// deterministic-scope package path.
package mofixture

func walk(m map[int]int) int {
	sum := 0
	for k, v := range m { // want "iteration over map"
		sum += k + v
	}
	//p3q:orderinvariant summing ints is commutative
	for _, v := range m {
		sum += v
	}
	for range m { // no loop variables: order cannot leak
		sum++
	}
	for _, v := range []int{1, 2} { // slice order is deterministic
		sum += v
	}
	return sum
}

func trailing(m map[string]bool) int {
	n := 0
	for k := range m { //p3q:orderinvariant len is order-free
		_ = k
		n++
	}
	return n
}

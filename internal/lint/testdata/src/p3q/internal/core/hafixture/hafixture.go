// Package hafixture exercises the hotalloc analyzer: allocating
// constructs inside //p3q:hotpath functions are flagged unless excused
// with a trailing //p3q:alloc <reason>, and the directives themselves
// are validated.
package hafixture

import "fmt"

type sink interface{ m() }

type impl struct{ n int }

func (impl) m() {}

func take(x sink) {}

//p3q:hotpath
func hot(n int, s, t string, raw []byte, dst []int) int {
	m := map[int]int{}  // want "map literal"
	sl := []int{1, n}   // want "slice literal"
	p := new(impl)      // want "new allocates per call"
	q := &impl{n: n}    // want "literal heap-allocates"
	cat := s + t        // want "string concatenation allocates"
	b := []byte(s)      // want "copies its operand"
	back := string(raw) // want "copies its operand"
	boxed := sink(impl{n: n})
	// want-above "boxes the value"
	take(impl{n: n})            // want "boxes the value"
	lbl := fmt.Sprintf("%d", n) // want "fmt.Sprintf formats into fresh allocations"

	out := make([]int, 0, n) //p3q:alloc fresh result slice escapes to the caller

	//p3q:alloc
	// want-above "//p3q:alloc directive is missing a reason"
	scratch := make([]int, n)

	//p3q:alloc scratch
	// want-above "stale //p3q:alloc directive: no flagged allocation on its line"
	n += len(dst)

	const pre = "a" + "b" // constant-folded: no allocation at run time
	dst = append(dst, n)  // append is deliberately out of scope

	_, _, _, _, _, _, _, _, _ = m, sl, p, q, cat, b, back, boxed, lbl
	_, _, _ = out, scratch, pre
	return len(dst)
}

// cold allocates freely: no //p3q:hotpath annotation, no findings.
func cold(n int) map[int]int {
	m := map[int]int{}
	m[n] = n
	return m
}

//p3q:hotpath
// want-above "stale //p3q:hotpath directive: no function declaration starts on the line below it"

var hotCounter int

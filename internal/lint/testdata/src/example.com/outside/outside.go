// Package outside is not under any deterministic or codec scope: the
// idioms below are all legal here and must produce no diagnostics.
package outside

import (
	"os"
	"time"
)

func free(m map[int]int) time.Duration {
	start := time.Now()
	total := 0
	for _, v := range m {
		total += v
	}
	f, err := os.Open(os.DevNull)
	if err == nil {
		f.Close()
	}
	return time.Since(start)
}

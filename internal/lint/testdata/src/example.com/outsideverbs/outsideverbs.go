// Package outsideverbs is under no deterministic, codec, or snapshot
// scope: scoped //p3q: verbs used here must be rejected as unknown for
// this package, exactly like a misspelled verb, so a directive can never
// silently assert nothing from the wrong package.
package outsideverbs

//p3q:hotpath
// want-above "unknown directive //p3q:hotpath in package example.com/outsideverbs"

func notHot() map[int]int {
	return map[int]int{}
}

//p3q:transient cache, rebuilt on demand
// want-above "unknown directive //p3q:transient in package example.com/outsideverbs"

var cache map[int]int

//p3q:phase plan
// want-above "unknown directive //p3q:phase in package example.com/outsideverbs"

func notPlanned() { _ = cache }

package lint

import (
	"testing"

	"p3q/internal/lint/analysistest"
)

func TestSnapshotComplete(t *testing.T) {
	analysistest.Run(t, "testdata", SnapshotComplete,
		"p3q/internal/core/scfixture")
}

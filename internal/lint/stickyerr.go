package lint

import (
	"go/ast"
	"go/types"

	"p3q/internal/lint/analysis"
)

// StickyErr enforces the codec discipline of internal/checkpoint and
// internal/trace. The formats are validated streams: a single unobserved
// short write or read desynchronizes every later field, so (1) no call
// whose results include an error may have that error discarded — not as a
// bare statement, not deferred, not assigned to blank — and (2) raw stream
// primitives (bufio/os/io reads and writes) may only be touched inside
// methods of a sticky-error carrier, a type with an `err error` field that
// records the first failure and turns every later operation into a no-op.
// Everything else must go through the carrier's typed accessors.
var StickyErr = &analysis.Analyzer{
	Name: "stickyerr",
	Doc:  "forbid discarded errors and raw stream I/O outside sticky-error carriers in the codec packages",
	Run:  runStickyErr,
}

// rawIOFuncs are package-level stream primitives (package path -> names).
var rawIOFuncs = map[string]map[string]bool{
	"io": {
		"ReadFull": true, "ReadAtLeast": true, "ReadAll": true,
		"Copy": true, "CopyN": true, "WriteString": true,
	},
}

// rawIOMethodPkgs are the packages whose Read/Write-family methods count
// as raw stream access when called on their types.
var rawIOMethodPkgs = map[string]bool{"bufio": true, "io": true, "os": true}

// rawIOMethods are the method names that move bytes on a stream.
var rawIOMethods = map[string]bool{
	"Read": true, "Write": true, "ReadByte": true, "WriteByte": true,
	"ReadString": true, "WriteString": true, "ReadBytes": true,
	"ReadRune": true, "WriteRune": true, "Flush": true,
}

func runStickyErr(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), CodecScopes) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			carrier := isStickyCarrierMethod(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						reportDroppedError(pass, call, "call discards its error result")
					}
				case *ast.DeferStmt:
					reportDroppedError(pass, n.Call, "deferred call discards its error result")
				case *ast.GoStmt:
					reportDroppedError(pass, n.Call, "goroutine call discards its error result")
				case *ast.AssignStmt:
					checkBlankErrorAssign(pass, n)
				case *ast.CallExpr:
					if !carrier && isRawIOCall(pass, n) {
						pass.Reportf(n.Pos(), "raw stream I/O outside a sticky-error carrier: move this read/write into a method of the codec's Writer/Reader (a type with an `err error` field) so failures stay sticky")
					}
				}
				return true
			})
		}
	}
	return nil
}

// isStickyCarrierMethod reports whether fd is a method whose receiver's
// base struct declares an `err error` field — the codec's sticky carrier,
// the only place raw stream access is legitimate.
func isStickyCarrierMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "err" && isErrorType(f.Type()) {
			return true
		}
	}
	return false
}

// reportDroppedError flags call when its result tuple contains an error.
func reportDroppedError(pass *analysis.Pass, call *ast.CallExpr, what string) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				pass.Reportf(call.Pos(), "%s: handle it or thread it through the sticky Writer/Reader", what)
				return
			}
		}
		return
	}
	if isErrorType(tv.Type) {
		pass.Reportf(call.Pos(), "%s: handle it or thread it through the sticky Writer/Reader", what)
	}
}

// checkBlankErrorAssign flags `_ = f()` and `x, _ := f()` where the
// blanked value is an error.
func checkBlankErrorAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result assigned to blank: handle it or thread it through the sticky Writer/Reader")
			}
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok || !isBlank(lhs) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[call]
		if ok && tv.Type != nil && isErrorType(tv.Type) {
			pass.Reportf(lhs.Pos(), "error result assigned to blank: handle it or thread it through the sticky Writer/Reader")
		}
	}
}

// isRawIOCall reports whether call is a raw stream primitive: a package
// function from rawIOFuncs, or a Read/Write-family method on a bufio, io,
// or os type.
func isRawIOCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			names := rawIOFuncs[pkgName.Imported().Path()]
			return names != nil && names[sel.Sel.Name]
		}
	}
	if !rawIOMethods[sel.Sel.Name] {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && rawIOMethodPkgs[obj.Pkg().Path()]
}

// isBlank reports whether expr is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is assignable to the built-in error type.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.AssignableTo(t, errType)
}

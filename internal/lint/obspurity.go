package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"p3q/internal/lint/analysis"
)

// Obspurity enforces the two-plane telemetry contract of internal/obs:
// host-plane values (wall-clock readings and anything derived from them)
// may never flow into engine state or into the sim plane of the obs
// registry. Host-plane storage and host-plane-only functions are declared
// with `//p3q:hostplane <reason>` on a struct field or a function; inside
// a deterministic-scope package the analyzer then taint-tracks, per
// function body, every value rooted in internal/hostclock, in a
// hostplane-marked field, or in a hostplane-marked function's result, and
// reports when a tainted value
//
//   - is assigned (or composite-literal bound) to a field that is not
//     itself marked hostplane — that is host time leaking into state;
//   - steers control flow (an if/for/switch condition) — that is engine
//     behavior depending on the host clock;
//   - is returned from a function not marked hostplane — that is taint
//     escaping the analysis unlabelled; or
//   - is passed to a sim-plane mutator of the obs registry (Inc, Add,
//     Event, AddShardIntent) — that is host time corrupting the
//     reproducible plane. This last check applies inside hostplane
//     functions too: being host-plane-only is exactly why they must not
//     write the sim plane.
//
// Functions marked `//p3q:hostplane` are exempt from the first three
// rules: the annotation asserts the whole function is observability-only,
// and the directive is the reviewable record of that claim. Like
// phasepurity, this is an intra-procedural check, not an escape analysis:
// taint stops at ordinary call boundaries (a callee's result is clean),
// and the obs fingerprint-invariance tests remain the dynamic backstop.
var Obspurity = &analysis.Analyzer{
	Name: "obspurity",
	Doc:  "enforce that //p3q:hostplane wall-clock telemetry never reaches engine state or the sim plane of the obs registry",
	Run:  runObspurity,
}

// simPlaneMutators are the obs.Registry methods that write the sim plane.
var simPlaneMutators = map[string]bool{
	"Inc":            true,
	"Add":            true,
	"Event":          true,
	"AddShardIntent": true,
}

func runObspurity(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), DeterministicScopes) {
		return nil
	}

	// Pass 1 over all files: attach //p3q:hostplane directives to struct
	// fields and function declarations, indexed by object so uses in one
	// file see annotations granted in another.
	hostplane := map[types.Object]bool{}
	type fileDirectives struct {
		file       *ast.File
		directives map[*ast.CommentGroup][]*directive
		codeEnds   map[int]token.Pos
	}
	var perFile []fileDirectives
	for _, f := range pass.Files {
		directives := parseDirectives(f)
		codeEnds := codeEndLines(pass.Fset, f)
		perFile = append(perFile, fileDirectives{f, directives, codeEnds})
		attach := func(line int, objs ...types.Object) bool {
			ds := directivesAt(pass.Fset, directives, codeEnds, hostplaneVerb, line)
			for _, d := range ds {
				d.used = true
				for _, obj := range objs {
					if obj != nil {
						hostplane[obj] = true
					}
				}
			}
			return len(ds) > 0
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				attach(pass.Fset.Position(fd.Pos()).Line, pass.TypesInfo.Defs[fd.Name])
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				objs := make([]types.Object, 0, len(field.Names))
				for _, name := range field.Names {
					objs = append(objs, pass.TypesInfo.Defs[name])
				}
				attach(pass.Fset.Position(field.Pos()).Line, objs...)
			}
			return true
		})
	}

	// A hostplane directive that attached to no field or function asserts
	// nothing and rots.
	for _, fd := range perFile {
		for _, ds := range fd.directives {
			for _, d := range ds {
				if d.verb == hostplaneVerb && !d.used {
					pass.Reportf(d.comment.Pos(), "stale //p3q:%s directive: no struct field or function declaration starts on the line below it", hostplaneVerb)
				}
			}
		}
	}

	// Pass 2: taint-track each function body.
	for _, fd := range perFile {
		for _, decl := range fd.file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exempt := hostplane[pass.TypesInfo.Defs[fn.Name]]
			checkHostplaneFlows(pass, fn, hostplane, exempt)
		}
	}
	return nil
}

// checkHostplaneFlows runs the per-function taint analysis described on
// Obspurity. exempt relaxes the state/control-flow/return rules for a
// function that is itself declared hostplane.
func checkHostplaneFlows(pass *analysis.Pass, fn *ast.FuncDecl, hostplane map[types.Object]bool, exempt bool) {
	tainted := map[types.Object]bool{}

	// fieldObj resolves a selector to the struct field it reads or writes,
	// or nil for anything else (package selectors, method values).
	fieldObj := func(sel *ast.SelectorExpr) types.Object {
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return nil
		}
		return s.Obj()
	}

	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			return tainted[obj] || isHostclockValue(exprType(pass, x))
		case *ast.SelectorExpr:
			if hostplane[fieldObj(x)] {
				return true
			}
			return isHostclockValue(exprType(pass, x)) || taintedExpr(x.X)
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				// A conversion passes the value through unchanged.
				return len(x.Args) == 1 && taintedExpr(x.Args[0])
			}
			return taintedCall(pass, x, hostplane)
		case *ast.BinaryExpr:
			return taintedExpr(x.X) || taintedExpr(x.Y)
		case *ast.UnaryExpr:
			return taintedExpr(x.X)
		case *ast.ParenExpr:
			return taintedExpr(x.X)
		case *ast.StarExpr:
			return taintedExpr(x.X)
		}
		return false
	}

	// Taint propagation to locals runs to a fixpoint: a body may read a
	// variable lexically before the assignment that taints it is visited.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs != nil && taintedExpr(rhs) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if exempt {
				return true
			}
			for i, lhs := range x.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fobj := fieldObj(sel)
				if fobj == nil || hostplane[fobj] {
					continue
				}
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if rhs != nil && taintedExpr(rhs) {
					report(lhs.Pos(), "%s writes a host-plane value into field %s, which is not marked //p3q:%s: host wall time must never become state (store it in a hostplane-marked field or route it to the obs registry's host plane)", fn.Name.Name, fobj.Name(), hostplaneVerb)
				}
			}
		case *ast.CompositeLit:
			if exempt {
				return true
			}
			checkCompositeTaint(pass, fn, x, hostplane, taintedExpr, report)
		case *ast.IfStmt:
			if !exempt && x.Cond != nil && taintedExpr(x.Cond) {
				report(x.Cond.Pos(), "%s branches on a host-plane value: engine control flow must not depend on the host clock (move the comparison into a //p3q:%s function if it is observability-only)", fn.Name.Name, hostplaneVerb)
			}
		case *ast.ForStmt:
			if !exempt && x.Cond != nil && taintedExpr(x.Cond) {
				report(x.Cond.Pos(), "%s loops on a host-plane value: engine control flow must not depend on the host clock", fn.Name.Name)
			}
		case *ast.SwitchStmt:
			if !exempt && x.Tag != nil && taintedExpr(x.Tag) {
				report(x.Tag.Pos(), "%s switches on a host-plane value: engine control flow must not depend on the host clock", fn.Name.Name)
			}
		case *ast.ReturnStmt:
			if exempt {
				return true
			}
			for _, res := range x.Results {
				if taintedExpr(res) {
					report(res.Pos(), "%s returns a host-plane value but is not marked //p3q:%s: annotate the function (declaring it observability-only) so the taint stays labelled", fn.Name.Name, hostplaneVerb)
				}
			}
		case *ast.CallExpr:
			// The sim-plane rule holds everywhere, exempt or not.
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !simPlaneMutators[sel.Sel.Name] || !isObsRegistry(exprType(pass, sel.X)) {
				return true
			}
			for _, arg := range x.Args {
				if taintedExpr(arg) {
					report(arg.Pos(), "%s feeds a host-plane value into obs.Registry.%s: the sim plane must stay reproducible, so only engine-state-derived values may enter it (host timings belong in SamplePhase/SampleShardDuration/SampleCommitSkew)", fn.Name.Name, sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// checkCompositeTaint flags tainted values bound to non-hostplane fields
// in a struct composite literal (both keyed and positional forms).
func checkCompositeTaint(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.CompositeLit, hostplane map[types.Object]bool, taintedExpr func(ast.Expr) bool, report func(token.Pos, string, ...any)) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field *types.Var
		val := elt
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			key, isIdent := kv.Key.(*ast.Ident)
			if !isIdent {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					field = st.Field(j)
					break
				}
			}
			val = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field == nil || hostplane[field] {
			continue
		}
		if taintedExpr(val) {
			report(val.Pos(), "%s binds a host-plane value to field %s, which is not marked //p3q:%s: host wall time must never become state", fn.Name.Name, field.Name(), hostplaneVerb)
		}
	}
}

// taintedCall reports whether a call expression produces a tainted value:
// any call into internal/hostclock (package function or Stopwatch method)
// and any call of a //p3q:hostplane-marked function.
func taintedCall(pass *analysis.Pass, call *ast.CallExpr, hostplane map[types.Object]bool) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return hostplane[pass.TypesInfo.Uses[f]]
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[f.Sel]
		if hostplane[obj] {
			return true
		}
		if obj != nil && obj.Pkg() != nil && isHostclockPath(obj.Pkg().Path()) {
			return true
		}
		return isHostclockValue(exprType(pass, f.X))
	}
	return false
}

// isHostclockValue reports whether t (possibly behind a pointer) is a
// named type declared in internal/hostclock — every such value is a
// wall-clock artifact.
func isHostclockValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && isHostclockPath(obj.Pkg().Path())
}

func isHostclockPath(path string) bool {
	return path == "p3q/internal/hostclock" || strings.HasSuffix(path, "/internal/hostclock")
}

// isObsRegistry reports whether t (possibly behind a pointer) is the
// obs.Registry type.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "p3q/internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

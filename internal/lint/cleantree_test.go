package lint

import (
	"testing"

	"p3q/internal/lint/load"
)

// TestRepoLintClean runs the full p3qlint suite over every package of the
// module and requires zero findings: the determinism contracts hold
// everywhere, and every //p3q: annotation in the tree is live and
// justified. This is the same check CI runs via `go run ./cmd/p3qlint
// ./...`.
func TestRepoLintClean(t *testing.T) {
	root, err := load.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := load.List("p3q", root)
	if err != nil {
		t.Fatal(err)
	}
	loader := load.New(load.ModuleRoot("p3q", root))
	var pkgs []*load.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := Check(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
}

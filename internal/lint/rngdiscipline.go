package lint

import (
	"go/ast"
	"go/types"

	"p3q/internal/lint/analysis"
)

// RNGDiscipline flags a randx.Source that crosses a goroutine boundary
// without an intervening .Split(label). A source is single-threaded
// mutable state: two goroutines drawing from one source race on it, and
// even with external synchronization the interleaving — and therefore
// every later draw — would depend on the schedule. The per-cycle /
// per-pair / per-message stream labels exist precisely so each spawned
// unit of work derives its own independent stream; this analyzer rejects
// the shortcut of reaching back into the shared one.
//
// Checked spawn sites: `go func(){...}()` closures, function values and
// arguments of a plain `go f(...)` statement, and closures passed to a
// method named Go (the errgroup / worker-pool launch idiom).
var RNGDiscipline = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc:  "require .Split(label) when a randx.Source crosses into a spawned goroutine",
	Run:  runRNGDiscipline,
}

// isRandxSource reports whether t is randx.Source or *randx.Source.
func isRandxSource(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil && obj.Pkg().Path() == "p3q/internal/randx"
}

func runRNGDiscipline(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), DeterministicScopes) {
		return nil
	}
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkSpawnCall(pass, parents, n.Call)
			case *ast.CallExpr:
				// Worker-pool style launches: g.Go(func() { ... }).
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Go" {
					for _, arg := range n.Args {
						if fl, ok := arg.(*ast.FuncLit); ok {
							checkClosure(pass, parents, fl)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkSpawnCall validates the call of a go statement: closure bodies are
// inspected for captured sources, and any source passed as an argument
// (or called directly) must be a fresh .Split result.
func checkSpawnCall(pass *analysis.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		checkClosure(pass, parents, fl)
	}
	for _, arg := range call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok {
			checkClosure(pass, parents, fl)
			continue
		}
		if !isRandxSource(exprType(pass, arg)) {
			continue
		}
		if isSplitCall(arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "randx.Source handed to a goroutine: pass source.Split(label) so the spawned work owns an independent stream")
	}
}

// checkClosure flags captured sources used inside a goroutine-launched
// closure for anything other than deriving a child via .Split.
func checkClosure(pass *analysis.Pass, parents map[ast.Node]ast.Node, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !isRandxSource(v.Type()) {
			return true
		}
		if fl.Pos() <= v.Pos() && v.Pos() < fl.End() {
			return true // declared inside the closure (param or local)
		}
		// The source expression is the ident itself, or the selector it
		// terminates (x.rng for a field access).
		var expr ast.Expr = id
		if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.Sel == id {
			expr = sel
		}
		if consumedBySplit(parents, expr) {
			return true
		}
		pass.Reportf(expr.Pos(), "randx.Source captured by goroutine-launched closure without .Split: derive a child stream (source.Split(label)) before the spawn, or split inside the closure before drawing")
		return true
	})
}

// consumedBySplit reports whether expr is exactly the receiver of a
// .Split(...) call.
func consumedBySplit(parents map[ast.Node]ast.Node, expr ast.Expr) bool {
	sel, ok := parents[expr].(*ast.SelectorExpr)
	if !ok || sel.X != expr || sel.Sel.Name != "Split" {
		return false
	}
	call, ok := parents[sel].(*ast.CallExpr)
	return ok && call.Fun == sel
}

// isSplitCall reports whether expr has the form x.Split(...).
func isSplitCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Split"
}

// exprType returns the static type of expr, or nil.
func exprType(pass *analysis.Pass, expr ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// parentMap records the parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

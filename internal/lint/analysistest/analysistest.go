// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against expectations
// written in the fixture sources, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest:
//
//	time.Now() // want "reads the host clock"
//
// declares that a diagnostic matching the regular expression is expected
// on that line; several quoted patterns declare several diagnostics. One
// extension: because a //p3q: directive comment occupies its entire line,
// an expectation for a diagnostic anchored at the directive itself is
// written on the following line as
//
//	//p3q:orderinvariant
//	// want-above "missing a reason"
//
// Fixture import paths resolve against the testdata tree first and the
// enclosing module second, so fixtures may live under real engine package
// paths (where the analyzers are in scope) and still import real
// packages like p3q/internal/randx.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"p3q/internal/lint/analysis"
	"p3q/internal/lint/load"
)

// expectation is one expected diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want(-above)?((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads each fixture package path from testdata/src (falling back to
// the module for imports), applies the analyzer, and reports any mismatch
// between actual diagnostics and // want expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	moduleRoot, err := load.FindModuleRoot(testdata)
	if err != nil {
		t.Fatal(err)
	}
	loader := load.New(load.TreeRoot(srcRoot), load.ModuleRoot("p3q", moduleRoot))
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		expects, err := parseExpectations(pkg)
		if err != nil {
			t.Errorf("fixture %s: %v", path, err)
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			for _, e := range expects {
				if e.matched || e.file != pos.Filename || e.line != pos.Line {
					continue
				}
				if e.pattern.MatchString(d.Message) {
					e.matched = true
					return
				}
			}
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
			}
		}
	}
}

// parseExpectations scans the fixture sources for // want comments. It
// reads the raw file bytes rather than the AST so that expectations work
// inside directive comments and on any line.
func parseExpectations(pkg *load.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		line := 0
		for _, raw := range splitLines(string(src)) {
			line++
			m := wantRE.FindStringSubmatch(raw)
			if m == nil {
				continue
			}
			target := line
			if m[1] == "-above" {
				target = line - 1
			}
			for _, q := range quotedRE.FindAllString(m[2], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", name, line, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", name, line, pat, err)
				}
				out = append(out, &expectation{file: name, line: target, pattern: re})
			}
		}
	}
	return out, nil
}

// splitLines splits keeping it simple: \n terminated, final fragment kept.
func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

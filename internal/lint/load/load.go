// Package load type-checks packages of this module (and GOPATH-style
// fixture trees) without the go/packages machinery, which lives in
// golang.org/x/tools and is unavailable here. Local import paths are
// resolved against an ordered list of roots — analyzer fixtures register
// their testdata tree ahead of the module root, so a fixture package can
// shadow a real path while still importing real sibling packages — and
// everything else (the standard library) is delegated to the compiler's
// source importer, which works offline from GOROOT.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // directory the sources were read from
	Fset  *token.FileSet
	Files []*ast.File // sorted by file name
	Types *types.Package
	Info  *types.Info
}

// Root maps a class of import paths to a directory.
type Root struct {
	module string // module path prefix; empty means GOPATH-style (any path)
	dir    string
}

// ModuleRoot resolves the module path itself and every path below it to
// the module directory tree (module/x/y -> dir/x/y).
func ModuleRoot(module, dir string) Root { return Root{module: module, dir: dir} }

// TreeRoot resolves any import path p to dir/p, the layout of a
// testdata/src fixture tree (and of a GOPATH).
func TreeRoot(dir string) Root { return Root{dir: dir} }

// resolve maps path to a source directory, or ok=false if this root does
// not claim the path.
func (r Root) resolve(path string) (string, bool) {
	if r.module == "" {
		return filepath.Join(r.dir, filepath.FromSlash(path)), true
	}
	if path == r.module {
		return r.dir, true
	}
	if rest, ok := strings.CutPrefix(path, r.module+"/"); ok {
		return filepath.Join(r.dir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Loader loads and caches type-checked packages. It implements
// types.Importer, so loaded packages can import each other.
type Loader struct {
	Fset     *token.FileSet
	roots    []Root
	std      types.Importer
	pkgs     map[string]*Package
	checking map[string]bool
}

// New returns a Loader resolving local paths against the given roots, in
// order (first root claiming an existing directory wins).
func New(roots ...Root) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		roots:    roots,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}
}

// dirFor locates the source directory for a local import path, trying the
// roots in order. ok is false when no root claims the path (the path is
// then assumed to be standard library).
func (l *Loader) dirFor(path string) (string, bool) {
	for _, r := range l.roots {
		dir, claimed := r.resolve(path)
		if !claimed {
			continue
		}
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	return "", false
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// Load returns the type-checked package for an import path, loading it
// (and its local dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("load: no root provides package %q", path)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no buildable Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer: local paths load through this Loader,
// everything else falls through to the standard library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, local := l.dirFor(path); local {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// goFileNames lists the non-test Go files of dir that match the current
// build context (tags, GOOS/GOARCH suffixes), sorted.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("load: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// List walks the module tree rooted at dir and returns the import paths of
// every package that contains buildable non-test Go files, sorted. It
// skips testdata trees, hidden directories, and _-prefixed directories,
// matching the pattern semantics of the go tool.
func List(module, dir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, module)
		} else {
			paths = append(paths, module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Package obs is the engine's runtime telemetry layer: counters, query
// lifecycle events, and host timing histograms collected while the engine
// runs, surfaced by cmd/p3qsim (-obs-out), the p3qd /metrics endpoint,
// and p3qctl stats.
//
// The package enforces a strict two-plane contract:
//
//   - The sim plane (counters, per-shard intent tallies, QueryEvents) is
//     derived only from engine state — cycle sequence numbers, the virtual
//     clock, ledger byte totals, query lifecycle transitions. Given the
//     same dataset, configuration and seed, a run produces the same
//     sim-plane values, so tests may fingerprint them (SimFingerprint).
//   - The host plane (per-phase and per-shard hostclock histograms,
//     commit-skew samples, runtime.MemStats deltas) measures the machine
//     the run happens to execute on. Host-plane values are
//     observability-only by contract: they must never flow back into
//     engine state, scheduling decisions, or sim-plane events. The
//     obspurity analyzer (internal/lint) enforces this statically in the
//     deterministic engine packages.
//
// A nil *Registry is a valid registry: every method nil-checks its
// receiver and returns immediately, so the engine's hot paths instrument
// unconditionally and a run without telemetry pays only a predictable
// branch per probe — no interface boxing, no allocation (the hotalloc
// analyzer holds the callers to that).
//
// This package is runtime telemetry about the engine's execution;
// internal/metrics holds the *paper evaluation* metrics (recall,
// bandwidth distributions) that reproduce the EDBT figures.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"time"
)

// CounterID indexes the sim-plane counters. The values are wire-stable
// within a build only (the JSONL and Prometheus surfaces emit names, not
// indices), so new counters append freely.
type CounterID uint8

const (
	// CLazyCycles counts completed lazy cycles.
	CLazyCycles CounterID = iota
	// CEagerCycles counts completed eager cycles (sync and async).
	CEagerCycles
	// CQueriesIssued counts queries accepted by IssueQuery.
	CQueriesIssued
	// CQueriesSettled counts queries that reached recall 1.
	CQueriesSettled
	// CGossipsPlanned counts planned (initiator, query) eager gossips.
	CGossipsPlanned
	// CGossipsCommitted counts planned gossips that found an online
	// destination (the rest stalled on probes for a cycle).
	CGossipsCommitted
	// CPartialsDelivered counts partial result lists that reached their
	// querier.
	CPartialsDelivered
	// CEventsScheduled counts asynchronous delivery events enqueued.
	CEventsScheduled
	// CEventsFrozen counts events that fired at a departed node and froze.
	CEventsFrozen
	// CEventsReplayed counts frozen events re-scheduled after a revival.
	CEventsReplayed
	// CCommitBytes accumulates the ledger bytes folded by commit phases.
	CCommitBytes

	numCounters
)

// counterNames are the exported metric names, index-aligned with the
// CounterID constants.
var counterNames = [numCounters]string{
	"lazy_cycles",
	"eager_cycles",
	"queries_issued",
	"queries_settled",
	"gossips_planned",
	"gossips_committed",
	"partials_delivered",
	"events_scheduled",
	"events_frozen",
	"events_replayed",
	"commit_bytes",
}

// String returns the counter's exported metric name.
func (c CounterID) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("counter_%d", uint8(c))
}

// EventKind classifies query lifecycle events.
type EventKind uint8

const (
	// EvIssued: the query was accepted and locally processed.
	EvIssued EventKind = iota
	// EvFirstPartial: the first gossip-delivered partial result arrived.
	EvFirstPartial
	// EvForward: a node forwarded the query and a remaining-list branch to
	// a destination (Node → Peer, Bytes of forwarded list).
	EvForward
	// EvReturn: a destination sent an unresolved remaining-list portion
	// back to its initiator (Node → Peer, Bytes of returned list).
	EvReturn
	// EvPartial: a destination sent a partial result list to the querier
	// (Node → Peer, Bytes of the list).
	EvPartial
	// EvSettled: the query completed (recall 1).
	EvSettled
	// EvStalled: the querier departed mid-query; the query suspended.
	EvStalled
	// EvResumed: the querier revived; the query resumed.
	EvResumed
	// EvFrozen: an in-flight delivery fired at a departed node (Node) and
	// was parked for redelivery.
	EvFrozen
	// EvReplayed: a frozen delivery was re-scheduled after Node revived.
	EvReplayed

	numEventKinds
)

// eventNames are the exported event names, index-aligned with the
// EventKind constants.
var eventNames = [numEventKinds]string{
	"issued",
	"first_partial",
	"forward",
	"return",
	"partial",
	"settled",
	"stalled",
	"resumed",
	"frozen",
	"replayed",
}

// String returns the event kind's exported name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event_%d", uint8(k))
}

// QueryEvent is one sim-plane query lifecycle event. Every field derives
// from engine state: Cycle is the engine's cycle sequence counter at
// emission, At the virtual clock, Node/Peer the acting nodes (Peer zero
// when the event has a single actor), Bytes the ledger delta the event
// accounts for. Events are plain values — emitting one neither allocates
// nor boxes.
type QueryEvent struct {
	Kind  EventKind
	Qid   uint64
	Cycle uint64
	At    time.Duration
	Node  uint64
	Peer  uint64
	Bytes uint64
}

// Phase identifies one hostclock-timed phase of a cycle.
type Phase uint8

const (
	// PhasePlan is the parallel planning phase.
	PhasePlan Phase = iota
	// PhaseCommit is the sharded commit phase (including the canonical
	// ledger merge and the sequential finalize/schedule pass).
	PhaseCommit

	numPhases
)

// phaseNames are index-aligned with the Phase constants.
var phaseNames = [numPhases]string{"plan", "commit"}

// String returns the phase's exported name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase_%d", uint8(p))
}

// histBuckets is the number of log2(ns) histogram buckets: bucket i counts
// samples with bits.Len64(ns) == i, i.e. d in [2^(i-1), 2^i) ns, which
// spans sub-nanosecond to ~9 minutes.
const histBuckets = 40

// Histogram is a fixed-bucket log2 duration histogram. The zero value is
// ready to use; copying one yields an independent snapshot.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Max returns the largest sample observed (0 before any sample).
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the mean sample (0 before any sample).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Registry collects one run's telemetry. It is not internally
// synchronized: the engine contract (methods called from one goroutine at
// a time) extends to the registry, and concurrent readers — the daemon's
// /metrics handler — must hold whatever lock serializes engine access.
//
// A nil *Registry disables collection: every method is nil-receiver-safe.
type Registry struct {
	// Sim plane.
	counters     [numCounters]uint64
	eventCounts  [numEventKinds]uint64
	shardIntents []uint64
	sink         func(QueryEvent)

	// Host plane.
	phases    [numPhases]Histogram
	shardDur  Histogram
	skew      Histogram
	skewLast  time.Duration
	mem       runtime.MemStats
	memValid  bool
	allocRate uint64 // TotalAlloc delta between the last two samples
	gcRate    uint64 // NumGC delta between the last two samples
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// SetSink installs fn as the query-event sink: every Event call forwards
// the event to it, in emission order. A nil fn (and a nil registry's
// default) keeps events counted per kind but otherwise unobserved, so the
// steady state stores nothing.
func (r *Registry) SetSink(fn func(QueryEvent)) {
	if r == nil {
		return
	}
	r.sink = fn
}

// Inc adds 1 to a sim-plane counter.
func (r *Registry) Inc(c CounterID) { r.Add(c, 1) }

// Add adds delta to a sim-plane counter.
func (r *Registry) Add(c CounterID, delta uint64) {
	if r == nil {
		return
	}
	r.counters[c] += delta
}

// Counter returns a sim-plane counter's current value.
func (r *Registry) Counter(c CounterID) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[c]
}

// Event records one query lifecycle event: counted per kind always,
// forwarded to the sink when one is installed.
func (r *Registry) Event(ev QueryEvent) {
	if r == nil {
		return
	}
	r.eventCounts[ev.Kind]++
	if r.sink != nil {
		r.sink(ev)
	}
}

// EventCount returns how many events of the kind were emitted.
func (r *Registry) EventCount(k EventKind) uint64 {
	if r == nil {
		return 0
	}
	return r.eventCounts[k]
}

// AddShardIntent accumulates the commit-phase ledger bytes shard applied
// this phase — the sim-plane per-shard work distribution. The vector is
// indexed by shard and sized on first use; shard counts are fixed by
// Config.Workers, so the growth is a one-time cost.
func (r *Registry) AddShardIntent(shard int, bytes uint64) {
	if r == nil {
		return
	}
	for len(r.shardIntents) <= shard {
		r.shardIntents = append(r.shardIntents, 0)
	}
	r.shardIntents[shard] += bytes
}

// ShardIntents returns a copy of the per-shard commit byte tallies.
func (r *Registry) ShardIntents() []uint64 {
	if r == nil {
		return nil
	}
	out := make([]uint64, len(r.shardIntents))
	copy(out, r.shardIntents)
	return out
}

// SimFingerprint hashes the sim plane (counters, event counts, per-shard
// intents) with FNV-1a. Two runs over the same dataset, configuration and
// seed must produce the same value — the telemetry analogue of the engine
// fingerprint, pinned by the invariance tests.
func (r *Registry) SimFingerprint() uint64 {
	if r == nil {
		return 0
	}
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime
			v >>= 8
		}
	}
	for _, v := range r.counters {
		mix(v)
	}
	for _, v := range r.eventCounts {
		mix(v)
	}
	for _, v := range r.shardIntents {
		mix(v)
	}
	return h
}

// SamplePhase records one host-plane phase timing window.
func (r *Registry) SamplePhase(p Phase, d time.Duration) {
	if r == nil {
		return
	}
	r.phases[p].Observe(d)
}

// PhaseTotal returns the cumulative host time sampled for the phase.
func (r *Registry) PhaseTotal(p Phase) time.Duration {
	if r == nil {
		return 0
	}
	return r.phases[p].Sum()
}

// PhaseHistogram returns a snapshot of the phase's timing histogram.
func (r *Registry) PhaseHistogram(p Phase) Histogram {
	if r == nil {
		return Histogram{}
	}
	return r.phases[p]
}

// SampleShardDuration records one shard committer's host-plane wall time
// for one commit phase.
func (r *Registry) SampleShardDuration(d time.Duration) {
	if r == nil {
		return
	}
	r.shardDur.Observe(d)
}

// ShardDurations returns a snapshot of the per-shard commit timing
// histogram.
func (r *Registry) ShardDurations() Histogram {
	if r == nil {
		return Histogram{}
	}
	return r.shardDur
}

// SampleCommitSkew records one commit phase's shard skew: the max-min
// spread of its shard committers' wall times. The Amdahl limit of the
// sharded commit is its slowest shard, so skew is the number the
// locality-aware scheduling work (ROADMAP) optimizes.
func (r *Registry) SampleCommitSkew(skew time.Duration) {
	if r == nil {
		return
	}
	r.skewLast = skew
	r.skew.Observe(skew)
}

// CommitSkew returns the last, maximum and mean commit-phase shard skew
// and the number of commit phases sampled.
func (r *Registry) CommitSkew() (last, max, mean time.Duration, samples uint64) {
	if r == nil {
		return 0, 0, 0, 0
	}
	return r.skewLast, r.skew.Max(), r.skew.Mean(), r.skew.Count()
}

// SampleMemStats reads runtime.MemStats and returns the heap-allocation
// and GC-cycle deltas since the previous sample (both 0 on the first
// call). Host plane: the read lives here so the deterministic engine
// packages never touch the runtime directly.
func (r *Registry) SampleMemStats() (allocDelta, gcDelta uint64) {
	if r == nil {
		return 0, 0
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if r.memValid {
		r.allocRate = m.TotalAlloc - r.mem.TotalAlloc
		r.gcRate = uint64(m.NumGC - r.mem.NumGC)
	}
	r.mem = m
	r.memValid = true
	return r.allocRate, r.gcRate
}

// MemStats returns the most recently sampled runtime.MemStats and whether
// any sample has been taken.
func (r *Registry) MemStats() (runtime.MemStats, bool) {
	if r == nil {
		return runtime.MemStats{}, false
	}
	return r.mem, r.memValid
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format, every metric prefixed p3q_. Counters and events are the sim
// plane; *_seconds histograms, skew and memstats gauges are the host
// plane. Callers must serialize against the goroutine driving the engine.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	for c := CounterID(0); c < numCounters; c++ {
		fmt.Fprintf(w, "# TYPE p3q_%s counter\np3q_%s %d\n", c, c, r.counters[c])
	}
	fmt.Fprintf(w, "# TYPE p3q_query_events_total counter\n")
	for k := EventKind(0); k < numEventKinds; k++ {
		fmt.Fprintf(w, "p3q_query_events_total{kind=%q} %d\n", k.String(), r.eventCounts[k])
	}
	fmt.Fprintf(w, "# TYPE p3q_shard_intent_bytes counter\n")
	for i, v := range r.shardIntents {
		fmt.Fprintf(w, "p3q_shard_intent_bytes{shard=\"%d\"} %d\n", i, v)
	}
	fmt.Fprintf(w, "# TYPE p3q_phase_duration_seconds histogram\n")
	for p := Phase(0); p < numPhases; p++ {
		writeHistogram(w, "p3q_phase_duration_seconds", fmt.Sprintf("phase=%q", p.String()), &r.phases[p])
	}
	fmt.Fprintf(w, "# TYPE p3q_shard_commit_seconds histogram\n")
	writeHistogram(w, "p3q_shard_commit_seconds", "", &r.shardDur)
	fmt.Fprintf(w, "# TYPE p3q_commit_skew_seconds histogram\n")
	writeHistogram(w, "p3q_commit_skew_seconds", "", &r.skew)
	fmt.Fprintf(w, "# TYPE p3q_commit_skew_last_seconds gauge\np3q_commit_skew_last_seconds %g\n", r.skewLast.Seconds())
	if r.memValid {
		fmt.Fprintf(w, "# TYPE p3q_host_heap_alloc_bytes gauge\np3q_host_heap_alloc_bytes %d\n", r.mem.HeapAlloc)
		fmt.Fprintf(w, "# TYPE p3q_host_total_alloc_bytes counter\np3q_host_total_alloc_bytes %d\n", r.mem.TotalAlloc)
		fmt.Fprintf(w, "# TYPE p3q_host_gc_cycles_total counter\np3q_host_gc_cycles_total %d\n", r.mem.NumGC)
		fmt.Fprintf(w, "# TYPE p3q_host_alloc_delta_bytes gauge\np3q_host_alloc_delta_bytes %d\n", r.allocRate)
		fmt.Fprintf(w, "# TYPE p3q_host_gc_delta_cycles gauge\np3q_host_gc_delta_cycles %d\n", r.gcRate)
	}
}

// writeHistogram emits one histogram in Prometheus exposition format:
// cumulative le buckets (upper bound 2^i ns in seconds) for the occupied
// prefix, then +Inf, sum and count. labels is either empty or a single
// rendered key="value" pair.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	top := 0
	for i, c := range h.buckets {
		if c > 0 {
			top = i + 1
		}
	}
	for i := 0; i < top; i++ {
		cum += h.buckets[i]
		le := time.Duration(uint64(1) << uint(i)).Seconds()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum.Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.sum.Seconds())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count)
	}
}

package obs

import (
	"strings"
	"testing"
	"time"
)

// TestNilRegistry pins the nil-receiver contract: every method of a nil
// registry is a no-op returning zero values, so the engine instruments
// unconditionally.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Inc(CLazyCycles)
	r.Add(CCommitBytes, 42)
	r.Event(QueryEvent{Kind: EvIssued, Qid: 1})
	r.SetSink(func(QueryEvent) { t.Fatal("sink on nil registry") })
	r.SamplePhase(PhasePlan, time.Millisecond)
	r.SampleShardDuration(time.Millisecond)
	r.SampleCommitSkew(time.Millisecond)
	r.AddShardIntent(3, 100)
	if got := r.Counter(CLazyCycles); got != 0 {
		t.Fatalf("nil registry counter = %d, want 0", got)
	}
	if got := r.EventCount(EvIssued); got != 0 {
		t.Fatalf("nil registry event count = %d, want 0", got)
	}
	if got := r.PhaseTotal(PhasePlan); got != 0 {
		t.Fatalf("nil registry phase total = %v, want 0", got)
	}
	if got := r.SimFingerprint(); got != 0 {
		t.Fatalf("nil registry fingerprint = %d, want 0", got)
	}
	if got := r.ShardIntents(); got != nil {
		t.Fatalf("nil registry shard intents = %v, want nil", got)
	}
	if a, g := r.SampleMemStats(); a != 0 || g != 0 {
		t.Fatalf("nil registry memstats deltas = %d, %d, want 0, 0", a, g)
	}
}

// TestCountersAndEvents exercises the sim plane: counters accumulate,
// events count per kind and stream to the sink in order.
func TestCountersAndEvents(t *testing.T) {
	r := New()
	r.Inc(CEagerCycles)
	r.Add(CEagerCycles, 2)
	if got := r.Counter(CEagerCycles); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	var seen []QueryEvent
	r.SetSink(func(ev QueryEvent) { seen = append(seen, ev) })
	r.Event(QueryEvent{Kind: EvIssued, Qid: 7})
	r.Event(QueryEvent{Kind: EvForward, Qid: 7, Node: 1, Peer: 2, Bytes: 100})
	r.Event(QueryEvent{Kind: EvForward, Qid: 7, Node: 2, Peer: 3, Bytes: 50})
	if got := r.EventCount(EvForward); got != 2 {
		t.Fatalf("forward count = %d, want 2", got)
	}
	if len(seen) != 3 || seen[0].Kind != EvIssued || seen[2].Peer != 3 {
		t.Fatalf("sink saw %+v", seen)
	}
}

// TestSimFingerprint pins that the fingerprint depends on sim-plane state
// only: two registries with identical counters/events but wildly different
// host-plane samples hash identically, and a sim-plane difference changes
// the hash.
func TestSimFingerprint(t *testing.T) {
	a, b := New(), New()
	for _, r := range []*Registry{a, b} {
		r.Inc(CQueriesIssued)
		r.Event(QueryEvent{Kind: EvSettled, Qid: 1})
		r.AddShardIntent(0, 10)
		r.AddShardIntent(1, 20)
	}
	a.SamplePhase(PhasePlan, 123*time.Millisecond)
	a.SampleCommitSkew(time.Second)
	a.SampleMemStats()
	if a.SimFingerprint() != b.SimFingerprint() {
		t.Fatal("host-plane samples changed the sim fingerprint")
	}
	b.Inc(CQueriesIssued)
	if a.SimFingerprint() == b.SimFingerprint() {
		t.Fatal("sim-plane difference did not change the fingerprint")
	}
}

// TestHistogram checks bucketing, count, sum, max and mean.
func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(-time.Second) // clamped to 0
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Max() != 2*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	want := time.Microsecond + 3*time.Microsecond + 2*time.Millisecond
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Mean() != want/4 {
		t.Fatalf("mean = %v, want %v", h.Mean(), want/4)
	}
}

// TestWritePrometheus spot-checks the exposition format output.
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Add(CLazyCycles, 5)
	r.Event(QueryEvent{Kind: EvIssued})
	r.SamplePhase(PhaseCommit, 2*time.Millisecond)
	r.SampleCommitSkew(time.Millisecond)
	r.AddShardIntent(0, 64)
	r.SampleMemStats()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"p3q_lazy_cycles 5",
		`p3q_query_events_total{kind="issued"} 1`,
		`p3q_shard_intent_bytes{shard="0"} 64`,
		`p3q_phase_duration_seconds_count{phase="commit"} 1`,
		"p3q_commit_skew_seconds_count 1",
		"p3q_host_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusNil pins that a nil registry writes nothing.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
}

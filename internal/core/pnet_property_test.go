package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"p3q/internal/tagging"
)

// refPnet is a naive reference model of PersonalNetwork implementing the
// pre-refactor semantics literally: a flat entry map, a full re-sort on
// every read, and an increment-every-neighbour timestamp walk on Touch.
// The property test drives it in lockstep with the incremental
// implementation and demands identical rankings, evictions, needStore sets
// and age orderings after every operation.
type refPnet struct {
	s, c    int
	entries map[tagging.UserID]*refEntry
}

type refEntry struct {
	id     tagging.UserID
	score  int
	digest *tagging.Digest
	ts     int
	stored tagging.Snapshot
}

func newRefPnet(s, c int) *refPnet {
	if c > s {
		c = s
	}
	return &refPnet{s: s, c: c, entries: make(map[tagging.UserID]*refEntry)}
}

func (r *refPnet) upsert(id tagging.UserID, score int, digest *tagging.Digest) {
	if e := r.entries[id]; e != nil {
		e.score = score
		e.digest = digest
		return
	}
	r.entries[id] = &refEntry{id: id, score: score, digest: digest}
}

func (r *refPnet) ranking() []*refEntry {
	out := make([]*refEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].id < out[j].id
	})
	return out
}

func (r *refPnet) rebalance() (needStore []tagging.UserID) {
	ranked := r.ranking()
	for len(ranked) > r.s {
		last := ranked[len(ranked)-1]
		delete(r.entries, last.id)
		ranked = ranked[:len(ranked)-1]
	}
	for i, e := range ranked {
		if i < r.c {
			if !(e.stored.Valid() && e.stored.Version() >= e.digest.Version) {
				needStore = append(needStore, e.id)
			}
		} else if e.stored.Valid() {
			e.stored = tagging.Snapshot{}
		}
	}
	return needStore
}

func (r *refPnet) touch(partner tagging.UserID) {
	for _, e := range r.entries {
		if e.id == partner {
			e.ts = 0
		} else {
			e.ts++
		}
	}
}

func (r *refPnet) reset(partner tagging.UserID) {
	if e := r.entries[partner]; e != nil {
		e.ts = 0
	}
}

func (r *refPnet) byAge() []*refEntry {
	out := r.ranking()
	sort.Slice(out, func(i, j int) bool {
		if out[i].ts != out[j].ts {
			return out[i].ts > out[j].ts
		}
		return out[i].id < out[j].id
	})
	return out
}

// comparePnets fails the test at the first divergence between the
// incremental implementation and the reference model: membership, ranking
// order, scores, ages, stored validity, and the PartnersByAge ordering.
func comparePnets(t *testing.T, step int, pn *PersonalNetwork, ref *refPnet) {
	t.Helper()
	if pn.Len() != len(ref.entries) {
		t.Fatalf("step %d: len %d != ref %d", step, pn.Len(), len(ref.entries))
	}
	ranked := ref.ranking()
	got := pn.Ranking()
	for i, re := range ranked {
		ge := got[i]
		if ge.ID != re.id || ge.Score != re.score {
			t.Fatalf("step %d: ranking[%d] = %d/%d, ref %d/%d",
				step, i, ge.ID, ge.Score, re.id, re.score)
		}
		if ge.Age() != re.ts {
			t.Fatalf("step %d: entry %d age %d, ref timestamp %d",
				step, ge.ID, ge.Age(), re.ts)
		}
		if ge.Stored.Valid() != re.stored.Valid() {
			t.Fatalf("step %d: entry %d stored=%v, ref %v",
				step, ge.ID, ge.Stored.Valid(), re.stored.Valid())
		}
	}
	refAge := ref.byAge()
	gotAge := pn.PartnersByAge()
	for i, re := range refAge {
		if gotAge[i].ID != re.id {
			t.Fatalf("step %d: byAge[%d] = %d, ref %d (got %v)",
				step, i, gotAge[i].ID, re.id, entryIDs(gotAge))
		}
	}
}

func memberIDs(entries []*Entry) []tagging.UserID {
	out := make([]tagging.UserID, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out
}

func entryIDs(entries []Entry) []tagging.UserID {
	out := make([]tagging.UserID, len(entries))
	for i := range entries {
		out[i] = entries[i].ID
	}
	return out
}

// TestPnetMatchesNaiveModel drives random Upsert/Rebalance/Touch/Reset
// sequences through the incremental personal network and the naive
// full-re-sort reference model, comparing rankings, evictions, needStore
// sets and age orderings after every operation.
func TestPnetMatchesNaiveModel(t *testing.T) {
	const ids = 30
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := 3 + rng.Intn(10)
			c := rng.Intn(s + 2) // occasionally > s: both clamp
			pn := NewPersonalNetwork(0, s, c)
			ref := newRefPnet(s, c)

			// One profile per candidate id; version bumps are shared so both
			// models see identical digests and snapshots.
			profiles := make([]*tagging.Profile, ids+1)
			digests := make([]*tagging.Digest, ids+1)
			for id := 1; id <= ids; id++ {
				profiles[id] = tagging.NewProfile(tagging.UserID(id))
				profiles[id].Add(tagging.ItemID(id), 0)
				digests[id] = tagging.NewDigest(profiles[id].Snapshot(), 256, 3)
			}

			for step := 0; step < 400; step++ {
				id := tagging.UserID(1 + rng.Intn(ids))
				switch op := rng.Intn(10); {
				case op < 4: // upsert, sometimes with a version bump
					if rng.Intn(3) == 0 {
						profiles[id].Add(tagging.ItemID(rng.Intn(50)), tagging.TagID(rng.Intn(5)))
						digests[id] = tagging.NewDigest(profiles[id].Snapshot(), 256, 3)
					}
					score := 1 + rng.Intn(12)
					pn.Upsert(id, score, digests[id])
					ref.upsert(id, score, digests[id])
				case op < 6: // rebalance; store a random subset of needStore
					need := pn.Rebalance()
					refNeed := ref.rebalance()
					if len(need) != len(refNeed) {
						t.Fatalf("step %d: needStore %v, ref %v", step, memberIDs(need), refNeed)
					}
					for i, e := range need {
						if e.ID != refNeed[i] {
							t.Fatalf("step %d: needStore %v, ref %v", step, memberIDs(need), refNeed)
						}
						if rng.Intn(2) == 0 {
							e.Stored = profiles[e.ID].Snapshot()
							ref.entries[e.ID].stored = profiles[e.ID].Snapshot()
						}
					}
				case op < 9: // touch (sometimes an absent id)
					pn.Touch(id)
					ref.touch(id)
				default:
					pn.ResetTimestamp(id)
					ref.reset(id)
				}
				comparePnets(t, step, pn, ref)
			}
		})
	}
}

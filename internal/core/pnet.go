package core

import (
	"sort"

	"p3q/internal/tagging"
)

// Entry is one neighbour of a personal network (§2.1): a similar user, her
// similarity score, the latest known digest of her profile, a gossip-age
// timestamp, and — for the c most similar neighbours — a stored snapshot of
// her profile.
//
// Entries live by value inside the network's flat ranking slice. Pointers
// obtained from Entry, Rebalance or StoredEntries point into that slice and
// stay valid only until the next mutation of the network (Upsert, Rebalance,
// Touch, ResetTimestamp); re-fetch after mutating.
type Entry struct {
	ID    tagging.UserID
	Score int
	// Digest is the latest known digest of the neighbour's profile.
	Digest *tagging.Digest
	// Stored is the locally stored snapshot of the neighbour's profile; the
	// zero Snapshot (invalid) when the neighbour is outside the top-c.
	Stored tagging.Snapshot

	// pn is the owning network; Age derives the gossip timestamp from its
	// logical clock.
	//
	//p3q:transient back-pointer to the owning network, re-attached on restore
	pn *PersonalNetwork
	// last is the owning network's clock value when the neighbour was last
	// gossiped with (or added).
	last uint64
}

// Age returns for how many gossips the neighbour has not been gossiped with
// (0 = just gossiped or just added): the §2.2.1 timestamp, derived as
// clock - last from the owning network's logical clock so that Touch never
// has to walk every neighbour.
func (e *Entry) Age() int { return int(e.pn.clock - e.last) }

// StoredFresh reports whether the stored snapshot is at least as recent as
// the latest known digest.
func (e *Entry) StoredFresh() bool {
	return e.Stored.Valid() && e.Stored.Version() >= e.Digest.Version
}

// rankBefore is the ranking order of §2.1: descending score, ties broken by
// ascending ID.
func rankBefore(aScore int, aID tagging.UserID, bScore int, bID tagging.UserID) bool {
	if aScore != bScore {
		return aScore > bScore
	}
	return aID < bID
}

// rankSlot is one slot of the open-addressed by-owner index: the neighbour
// ID biased by one (0 marks an empty slot) and a copy of its current score,
// which is exactly the key needed to locate the entry in the sorted ranking
// by binary search.
type rankSlot struct {
	key   uint32 // neighbour ID + 1; 0 = empty
	score int32
}

// PersonalNetwork is the top-layer state of one node: up to s scored
// neighbours ranked by similarity, with snapshots stored for the top c.
//
// The hot state is dense: the ranking is a flat []Entry kept sorted at all
// times (descending score, ascending ID), and the by-owner lookup is a small
// open-addressed index mapping neighbour ID to its current score — membership
// is one probe sequence, and an entry's position falls out of a binary search
// on (score, ID). Because the index stores no positions, the shifts that keep
// the ranking sorted never touch it; only a score change updates one slot.
//
// Gossip ages run off a per-network logical clock (clock advances once per
// Touch; an entry's age is clock - last), so Touch is O(1) instead of an
// increment-every-neighbour walk, and the age ordering consumed by
// PartnersByAge is memoized (as positions into the ranking) until a touch or
// a ranking mutation invalidates it.
type PersonalNetwork struct {
	self tagging.UserID //p3q:transient implicit: the owning node's id, re-derived by the restoring node
	s, c int
	// ranking always sorted: descending score, ascending ID.
	ranking []Entry
	//p3q:transient mirror: open-addressed by-owner index over ranking, rebuilt on restore and growth
	idx []rankSlot
	//p3q:transient mirror: len(idx)-1, kept alongside idx
	idxMask int
	// clock counts Touch calls; entries age implicitly as it advances.
	clock uint64
	// byAge memoizes the PartnersByAge ordering (ascending last, ascending
	// ID) as positions into ranking; nil when stale. Pure aging (clock
	// advancing) preserves the ordering, so only touches and ranking
	// mutations invalidate it.
	//
	//p3q:transient memo, rebuilt lazily (or by Prepare) from ranking and last
	byAge []uint32
}

// NewPersonalNetwork returns an empty personal network with the given
// capacities.
func NewPersonalNetwork(self tagging.UserID, s, c int) *PersonalNetwork {
	if c > s {
		c = s
	}
	return &PersonalNetwork{self: self, s: s, c: c}
}

// Len returns the number of neighbours.
func (pn *PersonalNetwork) Len() int { return len(pn.ranking) }

// S returns the personal network capacity.
func (pn *PersonalNetwork) S() int { return pn.s }

// C returns the profile storage capacity.
func (pn *PersonalNetwork) C() int { return pn.c }

// idKey biases a neighbour ID into the index key space (0 is reserved for
// empty slots).
func idKey(id tagging.UserID) uint32 { return uint32(id) + 1 }

// idxHome returns the preferred slot of a key: Fibonacci hashing on the
// high product bits, masked to the table size.
func (pn *PersonalNetwork) idxHome(key uint32) int {
	return int(uint64(key)*0x9e3779b97f4a7c15>>33) & pn.idxMask
}

// idxFind returns the slot index holding key, or -1. Linear probing; the
// table keeps its load factor at or below 3/4.
//
//p3q:hotpath
func (pn *PersonalNetwork) idxFind(key uint32) int {
	if len(pn.idx) == 0 {
		return -1
	}
	i := pn.idxHome(key)
	for {
		s := &pn.idx[i]
		if s.key == key {
			return i
		}
		if s.key == 0 {
			return -1
		}
		i = (i + 1) & pn.idxMask
	}
}

// idxPlace probes to the first empty slot and writes. The caller guarantees
// the key is absent and the table has room.
//
//p3q:hotpath
func (pn *PersonalNetwork) idxPlace(key uint32, score int32) {
	i := pn.idxHome(key)
	for pn.idx[i].key != 0 {
		i = (i + 1) & pn.idxMask
	}
	pn.idx[i] = rankSlot{key: key, score: score}
}

// idxAdd indexes a key that was just appended to the ranking, growing the
// table first when the insert would push the load factor past 3/4. Growth
// re-places every ranking entry (the new one included), so after a grow
// there is nothing left to place.
//
//p3q:hotpath
func (pn *PersonalNetwork) idxAdd(key uint32, score int32) {
	if len(pn.ranking)*4 > len(pn.idx)*3 {
		pn.growIdx()
		return
	}
	pn.idxPlace(key, score)
}

// growIdx rebuilds the index at the next power-of-two size that keeps the
// current ranking at or below half load. Deliberately not a hot path: the
// table grows O(log s) times over a network's lifetime.
func (pn *PersonalNetwork) growIdx() {
	n := len(pn.idx) * 2
	if n < 8 {
		n = 8
	}
	for n < len(pn.ranking)*2 {
		n *= 2
	}
	pn.idx = make([]rankSlot, n)
	pn.idxMask = n - 1
	for i := range pn.ranking {
		e := &pn.ranking[i]
		pn.idxPlace(idKey(e.ID), int32(e.Score))
	}
}

// idxDelete removes key from the table with backward-shift deletion, which
// keeps probe sequences unbroken without tombstones.
//
//p3q:hotpath
func (pn *PersonalNetwork) idxDelete(key uint32) {
	i := pn.idxFind(key)
	if i < 0 {
		return
	}
	j := i
	for {
		j = (j + 1) & pn.idxMask
		s := pn.idx[j]
		if s.key == 0 {
			break
		}
		// s may move into the hole at i iff that does not move it before
		// its home slot (cyclic distance check).
		if (j-pn.idxHome(s.key))&pn.idxMask >= (j-i)&pn.idxMask {
			pn.idx[i] = s
			i = j
		}
	}
	pn.idx[i] = rankSlot{}
}

// panicUpsert keeps the panic's interface boxing out of the hot Upsert
// body; it fires only on caller bugs.
func panicUpsert(msg string) { panic(msg) }

// rankPos returns the ranking position of the (score, id) key: the entry's
// exact position when present ((score, ID) keys are unique), the insertion
// point otherwise.
//
//p3q:hotpath
func (pn *PersonalNetwork) rankPos(score int, id tagging.UserID) int {
	return sort.Search(len(pn.ranking), func(i int) bool {
		e := &pn.ranking[i]
		return !rankBefore(e.Score, e.ID, score, id)
	})
}

// Entry returns the neighbour entry for id, or nil. The pointer aliases the
// ranking slice and stays valid only until the next mutation of the network.
//
//p3q:hotpath
func (pn *PersonalNetwork) Entry(id tagging.UserID) *Entry {
	si := pn.idxFind(idKey(id))
	if si < 0 {
		return nil
	}
	return &pn.ranking[pn.rankPos(int(pn.idx[si].score), id)]
}

// Contains reports whether id is a neighbour.
//
//p3q:hotpath
func (pn *PersonalNetwork) Contains(id tagging.UserID) bool {
	return pn.idxFind(idKey(id)) >= 0
}

// insertAt drops e into the ranking at position i, shifting the tail up.
//
//p3q:hotpath
func (pn *PersonalNetwork) insertAt(i int, e Entry) {
	pn.ranking = append(pn.ranking, Entry{})
	copy(pn.ranking[i+1:], pn.ranking[i:])
	pn.ranking[i] = e
}

// Upsert adds the neighbour or updates its score and digest, and returns
// the entry (a pointer into the ranking, valid until the next mutation).
// New entries start with timestamp 0, per §2.2.1. Scores must be positive;
// Upsert panics otherwise (callers filter).
//
//p3q:hotpath
func (pn *PersonalNetwork) Upsert(id tagging.UserID, score int, digest *tagging.Digest) *Entry {
	if score <= 0 {
		panicUpsert("core: Upsert with non-positive score")
	}
	if id == pn.self {
		panicUpsert("core: Upsert of self")
	}
	if si := pn.idxFind(idKey(id)); si >= 0 {
		i := pn.rankPos(int(pn.idx[si].score), id)
		e := &pn.ranking[i]
		e.Digest = digest
		if e.Score == score {
			return e
		}
		// Reposition: lift the entry out, shift the gap closed, re-insert
		// under the new key. The index needs only its score copy refreshed —
		// it stores no positions — and the age memo is rebuilt on demand
		// (its (last, ID) ordering is untouched, only the positions moved).
		ev := *e
		ev.Score = score
		copy(pn.ranking[i:], pn.ranking[i+1:])
		pn.ranking = pn.ranking[:len(pn.ranking)-1]
		j := pn.rankPos(score, id)
		pn.insertAt(j, ev)
		pn.idx[si].score = int32(score)
		pn.byAge = nil
		return &pn.ranking[j]
	}
	j := pn.rankPos(score, id)
	pn.insertAt(j, Entry{ID: id, Score: score, Digest: digest, pn: pn, last: pn.clock})
	pn.idxAdd(idKey(id), int32(score))
	pn.byAge = nil
	return &pn.ranking[j]
}

// appendEntry appends a restored entry at the tail of the ranking and
// indexes it. The checkpoint reader calls it with entries already validated
// to arrive in rank order; it must not be used elsewhere.
func (pn *PersonalNetwork) appendEntry(e Entry) {
	e.pn = pn
	pn.ranking = append(pn.ranking, e)
	pn.idxAdd(idKey(e.ID), int32(e.Score))
}

// Prepare pre-builds the memoized age ordering if it is stale. The engine
// calls it for every node before a lazy planning phase so that
// AppendPartnersByAge is free of lazy rebuilds and therefore safe to call
// from concurrent planners. The ranking itself needs no preparation: it is
// maintained sorted on every Upsert.
//
//p3q:phase plan
func (pn *PersonalNetwork) Prepare() { pn.orderedByAge() }

// Ranking returns the neighbours ordered by descending score (ties:
// ascending ID). The slice aliases internal state; do not modify.
func (pn *PersonalNetwork) Ranking() []Entry { return pn.ranking }

// Rebalance enforces the capacity rules after a batch of Upserts: only the
// s best neighbours are kept, and only the c best keep stored profiles. It
// returns the entries now inside the top-c whose stored snapshot is missing
// or stale — the caller must fetch those (step 3 of Algorithm 1). The
// returned pointers alias the ranking and stay valid until the next
// mutation of the network; callers write Stored through them immediately.
// The ranking is already sorted, so eviction is a truncation of the tail.
//
//p3q:hotpath
func (pn *PersonalNetwork) Rebalance() (needStore []*Entry) {
	for len(pn.ranking) > pn.s {
		last := &pn.ranking[len(pn.ranking)-1]
		pn.idxDelete(idKey(last.ID))
		*last = Entry{}
		pn.ranking = pn.ranking[:len(pn.ranking)-1]
		pn.byAge = nil
	}
	for i := range pn.ranking {
		e := &pn.ranking[i]
		if i < pn.c {
			if !e.StoredFresh() {
				needStore = append(needStore, e)
			}
		} else if e.Stored.Valid() {
			// Pushed out of the top-c: the replica is dropped to keep the
			// local storage within bounds (§2.1).
			e.Stored = tagging.Snapshot{}
		}
	}
	return needStore
}

// Members returns the neighbour IDs in rank order.
func (pn *PersonalNetwork) Members() []tagging.UserID {
	out := make([]tagging.UserID, len(pn.ranking))
	for i := range pn.ranking {
		out[i] = pn.ranking[i].ID
	}
	return out
}

// StoredEntries returns the entries currently holding a profile snapshot,
// in rank order. The pointers alias the ranking; valid until the next
// mutation of the network.
func (pn *PersonalNetwork) StoredEntries() []*Entry {
	return pn.AppendStored(nil)
}

// AppendStored is StoredEntries appending into a caller-owned buffer
// (reusing its capacity) and returning it. Same aliasing rule: the pointers
// point into the ranking and are valid until the next mutation.
//
//p3q:hotpath
func (pn *PersonalNetwork) AppendStored(dst []*Entry) []*Entry {
	dst = dst[:0]
	for i := range pn.ranking {
		if pn.ranking[i].Stored.Valid() {
			dst = append(dst, &pn.ranking[i])
		}
	}
	return dst
}

// Unstored returns the neighbour IDs whose profiles are not locally stored,
// in rank order. This is the initial remaining list of a query (§2.2.2).
func (pn *PersonalNetwork) Unstored() []tagging.UserID {
	var out []tagging.UserID
	for i := range pn.ranking {
		if !pn.ranking[i].Stored.Valid() {
			out = append(out, pn.ranking[i].ID)
		}
	}
	return out
}

// orderedByAge returns the memoized age ordering (positions into ranking),
// rebuilding it if stale.
func (pn *PersonalNetwork) orderedByAge() []uint32 {
	if pn.byAge == nil {
		pn.byAge = make([]uint32, len(pn.ranking))
		for i := range pn.byAge {
			pn.byAge[i] = uint32(i)
		}
		sort.Slice(pn.byAge, func(i, j int) bool {
			a, b := &pn.ranking[pn.byAge[i]], &pn.ranking[pn.byAge[j]]
			if a.last != b.last {
				return a.last < b.last
			}
			return a.ID < b.ID
		})
	}
	return pn.byAge
}

// PartnersByAge returns the neighbours ordered by decreasing age (oldest
// gossip first; ties: ascending ID) — the lazy-mode partner preference of
// §2.2.1. The returned slice is a fresh copy the caller may reorder freely.
func (pn *PersonalNetwork) PartnersByAge() []Entry {
	return pn.AppendPartnersByAge(nil)
}

// AppendPartnersByAge is PartnersByAge appending entry copies into a
// caller-owned buffer (reusing its capacity) and returning it. The planners
// call it with plan-slot buffers; Prepare has pre-built the age memo, so
// concurrent planners only read.
//
//p3q:hotpath
func (pn *PersonalNetwork) AppendPartnersByAge(dst []Entry) []Entry {
	dst = dst[:0]
	for _, i := range pn.orderedByAge() {
		dst = append(dst, pn.ranking[i])
	}
	return dst
}

// Touch records a gossip with the given partner: its age resets to 0 and
// every other neighbour ages by 1 (§2.2.1). The aging is implicit — the
// logical clock advances and ages are derived as clock - last — so Touch is
// O(1) instead of walking every neighbour.
//
//p3q:hotpath
func (pn *PersonalNetwork) Touch(partner tagging.UserID) {
	pn.clock++
	if e := pn.Entry(partner); e != nil {
		e.last = pn.clock
		pn.byAge = nil
	}
}

// ResetTimestamp zeroes the partner's age without aging the others; used on
// the receiving side of a gossip.
//
//p3q:hotpath
func (pn *PersonalNetwork) ResetTimestamp(partner tagging.UserID) {
	if e := pn.Entry(partner); e != nil && e.last != pn.clock {
		e.last = pn.clock
		pn.byAge = nil
	}
}

package core

import (
	"sort"

	"p3q/internal/tagging"
)

// Entry is one neighbour of a personal network (§2.1): a similar user, her
// similarity score, the latest known digest of her profile, a gossip-age
// timestamp, and — for the c most similar neighbours — a stored snapshot of
// her profile.
type Entry struct {
	ID    tagging.UserID
	Score int
	// Digest is the latest known digest of the neighbour's profile.
	Digest *tagging.Digest
	// Stored is the locally stored snapshot of the neighbour's profile; the
	// zero Snapshot (invalid) when the neighbour is outside the top-c.
	Stored tagging.Snapshot

	// pn is the owning network; Age derives the gossip timestamp from its
	// logical clock.
	//
	//p3q:transient back-pointer to the owning network, re-attached on restore
	pn *PersonalNetwork
	// last is the owning network's clock value when the neighbour was last
	// gossiped with (or added).
	last uint64
}

// Age returns for how many gossips the neighbour has not been gossiped with
// (0 = just gossiped or just added): the §2.2.1 timestamp, derived as
// clock - last from the owning network's logical clock so that Touch never
// has to walk every neighbour.
func (e *Entry) Age() int { return int(e.pn.clock - e.last) }

// StoredFresh reports whether the stored snapshot is at least as recent as
// the latest known digest.
func (e *Entry) StoredFresh() bool {
	return e.Stored.Valid() && e.Stored.Version() >= e.Digest.Version
}

// rankBefore is the ranking order of §2.1: descending score, ties broken by
// ascending ID.
func rankBefore(aScore int, aID tagging.UserID, bScore int, bID tagging.UserID) bool {
	if aScore != bScore {
		return aScore > bScore
	}
	return aID < bID
}

// PersonalNetwork is the top-layer state of one node: up to s scored
// neighbours ranked by similarity, with snapshots stored for the top c.
//
// The ranking is maintained incrementally: it is kept sorted at all times
// (rank-ordered insertion, O(log s) search plus a small pointer move per
// Upsert), so the read paths (Ranking, Members, Unstored, StoredEntries)
// and Rebalance never re-sort. Gossip ages run off a per-network logical
// clock (clock advances once per Touch; an entry's age is clock - last), so
// Touch is O(1) instead of an increment-every-neighbour walk, and the
// age ordering consumed by PartnersByAge is memoized until a touch or a
// membership change invalidates it.
type PersonalNetwork struct {
	self tagging.UserID //p3q:transient implicit: the owning node's id, re-derived by the restoring node
	s, c int
	//p3q:transient mirror: by-owner index of the entries serialized via ranking, rebuilt on restore
	entries map[tagging.UserID]*Entry
	ranking []*Entry // always sorted: descending score, ascending ID
	// clock counts Touch calls; entries age implicitly as it advances.
	clock uint64
	// byAge memoizes the PartnersByAge ordering (ascending last, ascending
	// ID); nil when stale. Pure aging (clock advancing) preserves the
	// ordering, so only touches and membership changes invalidate it.
	//
	//p3q:transient memo, rebuilt lazily (or by Prepare) from ranking and last
	byAge []*Entry
}

// NewPersonalNetwork returns an empty personal network with the given
// capacities.
func NewPersonalNetwork(self tagging.UserID, s, c int) *PersonalNetwork {
	if c > s {
		c = s
	}
	return &PersonalNetwork{
		self:    self,
		s:       s,
		c:       c,
		entries: make(map[tagging.UserID]*Entry),
	}
}

// Len returns the number of neighbours.
func (pn *PersonalNetwork) Len() int { return len(pn.entries) }

// S returns the personal network capacity.
func (pn *PersonalNetwork) S() int { return pn.s }

// C returns the profile storage capacity.
func (pn *PersonalNetwork) C() int { return pn.c }

// Entry returns the neighbour entry for id, or nil.
func (pn *PersonalNetwork) Entry(id tagging.UserID) *Entry { return pn.entries[id] }

// Contains reports whether id is a neighbour.
func (pn *PersonalNetwork) Contains(id tagging.UserID) bool {
	_, ok := pn.entries[id]
	return ok
}

// insert places e at its rank position. The ranking must not contain e.
func (pn *PersonalNetwork) insert(e *Entry) {
	i := sort.Search(len(pn.ranking), func(i int) bool {
		o := pn.ranking[i]
		return !rankBefore(o.Score, o.ID, e.Score, e.ID)
	})
	pn.ranking = append(pn.ranking, nil)
	copy(pn.ranking[i+1:], pn.ranking[i:])
	pn.ranking[i] = e
}

// remove drops e from the ranking, locating it by binary search on its
// current (score, ID) key.
func (pn *PersonalNetwork) remove(e *Entry) {
	i := sort.Search(len(pn.ranking), func(i int) bool {
		o := pn.ranking[i]
		return !rankBefore(o.Score, o.ID, e.Score, e.ID)
	})
	// (score, ID) keys are unique, so i is exactly e's position.
	copy(pn.ranking[i:], pn.ranking[i+1:])
	pn.ranking[len(pn.ranking)-1] = nil
	pn.ranking = pn.ranking[:len(pn.ranking)-1]
}

// Upsert adds the neighbour or updates its score and digest, and returns
// the entry. New entries start with timestamp 0, per §2.2.1. Scores must be
// positive; Upsert panics otherwise (callers filter).
func (pn *PersonalNetwork) Upsert(id tagging.UserID, score int, digest *tagging.Digest) *Entry {
	if score <= 0 {
		panic("core: Upsert with non-positive score")
	}
	if id == pn.self {
		panic("core: Upsert of self")
	}
	if e := pn.entries[id]; e != nil {
		if e.Score != score {
			// Reposition: remove under the old key, reinsert under the new.
			// The age ordering is untouched — scores do not enter it.
			pn.remove(e)
			e.Score = score
			pn.insert(e)
		}
		e.Digest = digest
		return e
	}
	e := &Entry{ID: id, Score: score, Digest: digest, pn: pn, last: pn.clock}
	pn.entries[id] = e
	pn.insert(e)
	pn.byAge = nil
	return e
}

// Prepare pre-builds the memoized age ordering if it is stale. The engine
// calls it for every node before a lazy planning phase so that PartnersByAge
// is free of lazy rebuilds and therefore safe to call from concurrent
// planners. The ranking itself needs no preparation: it is maintained
// sorted on every Upsert.
//
//p3q:phase plan
func (pn *PersonalNetwork) Prepare() { pn.orderedByAge() }

// Ranking returns the neighbours ordered by descending score (ties:
// ascending ID). The slice aliases internal state; do not modify.
func (pn *PersonalNetwork) Ranking() []*Entry { return pn.ranking }

// Rebalance enforces the capacity rules after a batch of Upserts: only the
// s best neighbours are kept, and only the c best keep stored profiles. It
// returns the entries now inside the top-c whose stored snapshot is missing
// or stale — the caller must fetch those (step 3 of Algorithm 1). The
// ranking is already sorted, so eviction is a truncation of the tail.
func (pn *PersonalNetwork) Rebalance() (needStore []*Entry) {
	for len(pn.ranking) > pn.s {
		last := pn.ranking[len(pn.ranking)-1]
		delete(pn.entries, last.ID)
		pn.ranking[len(pn.ranking)-1] = nil
		pn.ranking = pn.ranking[:len(pn.ranking)-1]
		pn.byAge = nil
	}
	for i, e := range pn.ranking {
		if i < pn.c {
			if !e.StoredFresh() {
				needStore = append(needStore, e)
			}
		} else if e.Stored.Valid() {
			// Pushed out of the top-c: the replica is dropped to keep the
			// local storage within bounds (§2.1).
			e.Stored = tagging.Snapshot{}
		}
	}
	return needStore
}

// Members returns the neighbour IDs in rank order.
func (pn *PersonalNetwork) Members() []tagging.UserID {
	out := make([]tagging.UserID, len(pn.ranking))
	for i, e := range pn.ranking {
		out[i] = e.ID
	}
	return out
}

// StoredEntries returns the entries currently holding a profile snapshot,
// in rank order.
func (pn *PersonalNetwork) StoredEntries() []*Entry {
	var out []*Entry
	for _, e := range pn.ranking {
		if e.Stored.Valid() {
			out = append(out, e)
		}
	}
	return out
}

// Unstored returns the neighbour IDs whose profiles are not locally stored,
// in rank order. This is the initial remaining list of a query (§2.2.2).
func (pn *PersonalNetwork) Unstored() []tagging.UserID {
	var out []tagging.UserID
	for _, e := range pn.ranking {
		if !e.Stored.Valid() {
			out = append(out, e.ID)
		}
	}
	return out
}

// orderedByAge returns the memoized age ordering, rebuilding it if stale.
func (pn *PersonalNetwork) orderedByAge() []*Entry {
	if pn.byAge == nil {
		pn.byAge = make([]*Entry, len(pn.ranking))
		copy(pn.byAge, pn.ranking)
		sort.Slice(pn.byAge, func(i, j int) bool {
			a, b := pn.byAge[i], pn.byAge[j]
			if a.last != b.last {
				return a.last < b.last
			}
			return a.ID < b.ID
		})
	}
	return pn.byAge
}

// PartnersByAge returns the neighbours ordered by decreasing age (oldest
// gossip first; ties: ascending ID) — the lazy-mode partner preference of
// §2.2.1. The ordering is memoized between touches and membership changes;
// the returned slice is a fresh copy the caller may reorder freely.
func (pn *PersonalNetwork) PartnersByAge() []*Entry {
	ordered := pn.orderedByAge()
	out := make([]*Entry, len(ordered))
	copy(out, ordered)
	return out
}

// Touch records a gossip with the given partner: its age resets to 0 and
// every other neighbour ages by 1 (§2.2.1). The aging is implicit — the
// logical clock advances and ages are derived as clock - last — so Touch is
// O(1) instead of walking every neighbour.
func (pn *PersonalNetwork) Touch(partner tagging.UserID) {
	pn.clock++
	if e := pn.entries[partner]; e != nil {
		e.last = pn.clock
		pn.byAge = nil
	}
}

// ResetTimestamp zeroes the partner's age without aging the others; used on
// the receiving side of a gossip.
func (pn *PersonalNetwork) ResetTimestamp(partner tagging.UserID) {
	if e := pn.entries[partner]; e != nil && e.last != pn.clock {
		e.last = pn.clock
		pn.byAge = nil
	}
}

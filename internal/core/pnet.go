package core

import (
	"sort"

	"p3q/internal/tagging"
)

// Entry is one neighbour of a personal network (§2.1): a similar user, her
// similarity score, the latest known digest of her profile, a gossip-age
// timestamp, and — for the c most similar neighbours — a stored snapshot of
// her profile.
type Entry struct {
	ID    tagging.UserID
	Score int
	// Digest is the latest known digest of the neighbour's profile.
	Digest *tagging.Digest
	// Timestamp counts for how many cycles the neighbour has not been
	// gossiped with (0 = just gossiped or just added).
	Timestamp int
	// Stored is the locally stored snapshot of the neighbour's profile; the
	// zero Snapshot (invalid) when the neighbour is outside the top-c.
	Stored tagging.Snapshot
	// rank caches the entry's position after the last rebalance.
	rank int
}

// StoredFresh reports whether the stored snapshot is at least as recent as
// the latest known digest.
func (e *Entry) StoredFresh() bool {
	return e.Stored.Valid() && e.Stored.Version() >= e.Digest.Version
}

// PersonalNetwork is the top-layer state of one node: up to s scored
// neighbours ranked by similarity, with snapshots stored for the top c.
type PersonalNetwork struct {
	self    tagging.UserID
	s, c    int
	entries map[tagging.UserID]*Entry
	ranking []*Entry // descending score, ascending ID; valid when !dirty
	dirty   bool
}

// NewPersonalNetwork returns an empty personal network with the given
// capacities.
func NewPersonalNetwork(self tagging.UserID, s, c int) *PersonalNetwork {
	if c > s {
		c = s
	}
	return &PersonalNetwork{
		self:    self,
		s:       s,
		c:       c,
		entries: make(map[tagging.UserID]*Entry),
	}
}

// Len returns the number of neighbours.
func (pn *PersonalNetwork) Len() int { return len(pn.entries) }

// S returns the personal network capacity.
func (pn *PersonalNetwork) S() int { return pn.s }

// C returns the profile storage capacity.
func (pn *PersonalNetwork) C() int { return pn.c }

// Entry returns the neighbour entry for id, or nil.
func (pn *PersonalNetwork) Entry(id tagging.UserID) *Entry { return pn.entries[id] }

// Contains reports whether id is a neighbour.
func (pn *PersonalNetwork) Contains(id tagging.UserID) bool {
	_, ok := pn.entries[id]
	return ok
}

// Upsert adds the neighbour or updates its score and digest, and returns
// the entry. New entries start with timestamp 0, per §2.2.1. Scores must be
// positive; Upsert panics otherwise (callers filter).
func (pn *PersonalNetwork) Upsert(id tagging.UserID, score int, digest *tagging.Digest) *Entry {
	if score <= 0 {
		panic("core: Upsert with non-positive score")
	}
	if id == pn.self {
		panic("core: Upsert of self")
	}
	e := pn.entries[id]
	if e == nil {
		e = &Entry{ID: id, Score: score, Digest: digest}
		pn.entries[id] = e
	} else {
		e.Score = score
		e.Digest = digest
	}
	pn.dirty = true
	return e
}

// Prepare rebuilds the cached ranking if it is stale. The engine calls it
// for every node before a parallel planning phase so that the read paths
// (Ranking, StoredEntries, PartnersByAge) are free of lazy rebuilds and
// therefore safe to call from concurrent planners.
func (pn *PersonalNetwork) Prepare() { pn.rebuild() }

// Ranking returns the neighbours ordered by descending score (ties:
// ascending ID). The slice aliases internal state; do not modify.
func (pn *PersonalNetwork) Ranking() []*Entry {
	pn.rebuild()
	return pn.ranking
}

func (pn *PersonalNetwork) rebuild() {
	if !pn.dirty {
		return
	}
	pn.ranking = pn.ranking[:0]
	for _, e := range pn.entries {
		pn.ranking = append(pn.ranking, e)
	}
	sort.Slice(pn.ranking, func(i, j int) bool {
		a, b := pn.ranking[i], pn.ranking[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.ID < b.ID
	})
	for i, e := range pn.ranking {
		e.rank = i
	}
	pn.dirty = false
}

// Rebalance enforces the capacity rules after a batch of Upserts: only the
// s best neighbours are kept, and only the c best keep stored profiles. It
// returns the entries now inside the top-c whose stored snapshot is missing
// or stale — the caller must fetch those (step 3 of Algorithm 1).
func (pn *PersonalNetwork) Rebalance() (needStore []*Entry) {
	pn.rebuild()
	// Evict beyond s.
	for len(pn.ranking) > pn.s {
		last := pn.ranking[len(pn.ranking)-1]
		delete(pn.entries, last.ID)
		pn.ranking = pn.ranking[:len(pn.ranking)-1]
	}
	for i, e := range pn.ranking {
		if i < pn.c {
			if !e.StoredFresh() {
				needStore = append(needStore, e)
			}
		} else if e.Stored.Valid() {
			// Pushed out of the top-c: the replica is dropped to keep the
			// local storage within bounds (§2.1).
			e.Stored = tagging.Snapshot{}
		}
	}
	return needStore
}

// Members returns the neighbour IDs in rank order.
func (pn *PersonalNetwork) Members() []tagging.UserID {
	pn.rebuild()
	out := make([]tagging.UserID, len(pn.ranking))
	for i, e := range pn.ranking {
		out[i] = e.ID
	}
	return out
}

// StoredEntries returns the entries currently holding a profile snapshot,
// in rank order.
func (pn *PersonalNetwork) StoredEntries() []*Entry {
	pn.rebuild()
	var out []*Entry
	for _, e := range pn.ranking {
		if e.Stored.Valid() {
			out = append(out, e)
		}
	}
	return out
}

// Unstored returns the neighbour IDs whose profiles are not locally stored,
// in rank order. This is the initial remaining list of a query (§2.2.2).
func (pn *PersonalNetwork) Unstored() []tagging.UserID {
	pn.rebuild()
	var out []tagging.UserID
	for _, e := range pn.ranking {
		if !e.Stored.Valid() {
			out = append(out, e.ID)
		}
	}
	return out
}

// PartnersByAge returns the neighbours ordered by decreasing timestamp
// (oldest gossip first; ties: ascending ID) — the lazy-mode partner
// preference of §2.2.1.
func (pn *PersonalNetwork) PartnersByAge() []*Entry {
	pn.rebuild()
	out := make([]*Entry, len(pn.ranking))
	copy(out, pn.ranking)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Timestamp != out[j].Timestamp {
			return out[i].Timestamp > out[j].Timestamp
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Touch records a gossip with the given partner: its timestamp resets to 0
// and every other neighbour's timestamp increments by 1 (§2.2.1). It walks
// the rebuilt ranking rather than the entries map: same set, but linear
// memory instead of a map iteration on the engine's sequential commit path.
func (pn *PersonalNetwork) Touch(partner tagging.UserID) {
	pn.rebuild()
	for _, e := range pn.ranking {
		if e.ID == partner {
			e.Timestamp = 0
		} else {
			e.Timestamp++
		}
	}
}

// ResetTimestamp zeroes the partner's timestamp without aging the others;
// used on the receiving side of a gossip.
func (pn *PersonalNetwork) ResetTimestamp(partner tagging.UserID) {
	if e := pn.entries[partner]; e != nil {
		e.Timestamp = 0
	}
}

package core

import (
	"testing"

	"p3q/internal/sim"
	"p3q/internal/trace"
)

// Regression tests for the eager mode's behaviour under querier churn: a
// departed querier must neither lose resolved profiles (the recall-1
// guarantee of §2.2.2 has to survive §3.4.2-style departures) nor keep the
// engine burning cycles on branches nobody will read.

// TestOfflineQuerierRetainsResolvedProfiles drives branch gossips directly
// through the plan/commit path while the querier is offline — bypassing
// EagerCycle's stall gate — to pin the eagerGossip-level fix: resolved
// profiles used to be dropped from every remaining list forever when the
// querier could not receive them, leaving ProfilesUsed short of
// ProfilesNeeded with no way to recover.
func TestOfflineQuerierRetainsResolvedProfiles(t *testing.T) {
	cfg := smallCfg()
	w := newWorld(t, 120, cfg, 57)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, ok := trace.QueryFor(w.ds, 3, 14)
	if !ok {
		t.Fatal("no query for user 3")
	}
	qr := e.IssueQuery(q)
	e.RunEager(2) // spread branches beyond the querier
	if qr.Done() {
		t.Fatal("query finished before the churn could hit; weaken the head start")
	}
	e.Network().SetOnline(q.Querier, false)

	retained := false
	probesBefore := e.Network().Total().Msgs[sim.MsgProbe]
	usedBefore := qr.ProfilesUsed()
	for cycle := 0; cycle < 30; cycle++ {
		seq := e.cycleSeq
		e.cycleSeq++
		var pairs []eagerPair
		for u := range e.nodes {
			n := e.nodes[u]
			if e.net.Online(n.id) && len(n.branches[qr.ID]) > 0 {
				pairs = append(pairs, eagerPair{u: n.id, qid: qr.ID})
			}
		}
		for _, pr := range pairs {
			p := e.planEagerGossip(pr, seq)
			if len(p.foundOwners) > 0 && !p.delivered {
				retained = true
			}
			e.commitEagerGossip(p)
		}
	}
	if !retained {
		t.Fatal("no remaining-list member was resolved while the querier was offline; scenario too weak to test retention")
	}
	if qr.ProfilesUsed() != usedBefore {
		t.Fatal("partial results were delivered to an offline querier")
	}
	if e.Network().Total().Msgs[sim.MsgProbe] == probesBefore {
		t.Fatal("failed partial-result attempts were not charged as probes")
	}

	// The retained members must still be deliverable after revival.
	e.Network().SetOnline(q.Querier, true)
	e.RunEager(200)
	if !qr.Done() {
		t.Fatal("query did not complete after the querier revived")
	}
	if qr.ProfilesUsed() != qr.ProfilesNeeded() {
		t.Fatalf("profiles used %d != needed %d: resolved profiles were lost while the querier was offline",
			qr.ProfilesUsed(), qr.ProfilesNeeded())
	}
	want := exactReference(e, q, cfg.K)
	got := qr.Results()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %v, want %v (exact baseline)", i, got[i], want[i])
		}
	}
}

// TestStalledQueryLifecycle covers both lifecycle paths of a killed
// querier: cancel-forever (the query stalls, freezes its counters, and
// stops consuming the engine's cycle budget) and revive-and-finish (the
// query resumes automatically and still reaches full recall).
func TestStalledQueryLifecycle(t *testing.T) {
	cfg := smallCfg()
	w := newWorld(t, 120, cfg, 58)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, ok := trace.QueryFor(w.ds, 5, 3)
	if !ok {
		t.Fatal("no query for user 5")
	}
	qr := e.IssueQuery(q)
	if qr.State() != QueryActive {
		t.Fatalf("fresh query state = %v, want %v", qr.State(), QueryActive)
	}
	e.RunEager(2)
	if qr.Done() {
		t.Fatal("query finished before the churn could hit")
	}

	e.Network().SetOnline(q.Querier, false)
	if !qr.Stalled() || qr.State() != QueryStalled {
		t.Fatalf("killed querier left state %v, want %v", qr.State(), QueryStalled)
	}
	if st := e.Stats().QueriesStalled; st != 1 {
		t.Fatalf("Stats().QueriesStalled = %d, want 1", st)
	}

	// Cancel-forever path: the stalled query must not keep RunEager busy.
	if ran := e.RunEager(50); ran != 0 {
		t.Fatalf("RunEager ran %d cycles for a stalled-only query, want 0", ran)
	}
	bytesBefore, cyclesBefore := qr.Bytes(), qr.Cycles()
	trafficBefore := e.Network().Total()
	e.EagerCycle() // a forced cycle must leave the stalled query frozen
	if qr.Bytes() != bytesBefore {
		t.Fatal("stalled query generated traffic")
	}
	if qr.Cycles() != cyclesBefore {
		t.Fatal("stalled query advanced its cycle count")
	}
	if e.Network().Total() != trafficBefore {
		t.Fatal("a cycle with only a stalled query sent messages")
	}
	if qr.Done() {
		t.Fatal("stalled query completed without its querier")
	}

	// Revive-and-finish path.
	e.Network().SetOnline(q.Querier, true)
	if qr.State() != QueryActive {
		t.Fatalf("revived querier left state %v, want %v", qr.State(), QueryActive)
	}
	e.RunEager(200)
	if !qr.Done() || qr.State() != QueryDone {
		t.Fatalf("query did not finish after revival (state %v)", qr.State())
	}
	if qr.ProfilesUsed() != qr.ProfilesNeeded() {
		t.Fatalf("profiles used %d != needed %d after revival", qr.ProfilesUsed(), qr.ProfilesNeeded())
	}
	want := exactReference(e, q, cfg.K)
	got := qr.Results()
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("results diverge from exact baseline after revival: got %v want %v", got, want)
		}
	}
}

// TestStalledQueryDoesNotBlockOthers checks that one departed querier
// neither blocks the other queries nor keeps RunEager running once the
// survivors finish (the old behaviour burned the entire cycle budget).
func TestStalledQueryDoesNotBlockOthers(t *testing.T) {
	cfg := smallCfg()
	w := newWorld(t, 150, cfg, 59)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	qa, ok := trace.QueryFor(w.ds, 2, 7)
	if !ok {
		t.Fatal("no query for user 2")
	}
	qb, ok := trace.QueryFor(w.ds, 9, 8)
	if !ok {
		t.Fatal("no query for user 9")
	}
	ra := e.IssueQuery(qa)
	rb := e.IssueQuery(qb)
	e.RunEager(1)
	if ra.Done() {
		t.Fatal("query A finished before the churn could hit")
	}
	e.Network().SetOnline(qa.Querier, false)

	ran := e.RunEager(60)
	if ran >= 60 {
		t.Fatal("RunEager burned the whole budget despite only a stalled query left")
	}
	if !rb.Done() {
		t.Fatal("active query did not complete alongside a stalled one")
	}
	if ra.Done() {
		t.Fatal("stalled query completed without its querier")
	}
	if !e.AllQueriesDone() {
		t.Fatal("stalled query kept AllQueriesDone false")
	}
}

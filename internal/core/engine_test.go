package core

import (
	"testing"

	"p3q/internal/metrics"
	"p3q/internal/sim"
	"p3q/internal/similarity"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// testWorld bundles a small dataset with its ideal networks.
type testWorld struct {
	ds    *trace.Dataset
	ideal [][]similarity.Neighbour
	cfg   Config
}

func newWorld(t testing.TB, users int, cfg Config, seed uint64) *testWorld {
	t.Helper()
	p := trace.DefaultGenParams(users)
	p.MeanItems = 20
	p.Seed = seed
	ds := trace.Generate(p)
	return &testWorld{ds: ds, ideal: similarity.IdealNetworks(ds, cfg.S), cfg: cfg}
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.S = 20
	cfg.C = 5
	cfg.BloomBits = 2048 // smaller digests keep tests fast
	cfg.BloomHashes = 6
	return cfg
}

// exactReference computes the centralized baseline for a query: the exact
// top-k over the querier's own profile plus the profiles of her personal
// network members.
func exactReference(e *Engine, q trace.Query, k int) []topk.Entry {
	u := e.Node(q.Querier)
	snaps := []tagging.Snapshot{u.Profile().Snapshot()}
	for _, id := range u.PersonalNetwork().Members() {
		snaps = append(snaps, e.Dataset().Profiles[id].Snapshot())
	}
	return topk.Exact(snaps, topk.NewTagSet(q.Tags), k)
}

func TestSeedIdealNetworksInstallsState(t *testing.T) {
	w := newWorld(t, 100, smallCfg(), 1)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	for u := 0; u < e.Users(); u++ {
		n := e.Node(tagging.UserID(u))
		want := len(w.ideal[u])
		if want > w.cfg.S {
			want = w.cfg.S
		}
		if n.PersonalNetwork().Len() != want {
			t.Fatalf("user %d: pnet size %d, want %d", u, n.PersonalNetwork().Len(), want)
		}
		stored := n.PersonalNetwork().StoredEntries()
		wantStored := w.cfg.C
		if wantStored > want {
			wantStored = want
		}
		if len(stored) != wantStored {
			t.Fatalf("user %d: %d stored, want %d", u, len(stored), wantStored)
		}
		for _, entry := range stored {
			if !entry.StoredFresh() {
				t.Fatalf("user %d: seeded snapshot of %d is stale", u, entry.ID)
			}
		}
		if n.View().Size() == 0 {
			t.Fatalf("user %d: random view not bootstrapped", u)
		}
	}
}

func TestEagerQueryReachesExactResults(t *testing.T) {
	w := newWorld(t, 150, smallCfg(), 2)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	queries := trace.GenerateQueries(w.ds, 7)
	for _, q := range queries[:25] {
		qr := e.IssueQuery(q)
		if qr == nil {
			t.Fatalf("IssueQuery returned nil for online querier %d", q.Querier)
		}
	}
	cycles := e.RunEager(50)
	if !e.AllQueriesDone() {
		t.Fatalf("queries not done after %d cycles", cycles)
	}
	for _, qr := range e.Queries() {
		want := exactReference(e, qr.Query, w.cfg.K)
		got := qr.Results()
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d\n got=%v\nwant=%v",
				qr.ID, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: result %d = %v, want %v (exact baseline)",
					qr.ID, i, got[i], want[i])
			}
		}
	}
}

func TestEagerPartitionNoDoubleCounting(t *testing.T) {
	// The final drained scores equal the exact sums; if any profile were
	// counted twice the scores would exceed them. Run with alpha values on
	// both sides of 0.5 to exercise different split shapes.
	for _, alpha := range []float64{0.0, 0.3, 0.7, 1.0} {
		cfg := smallCfg()
		cfg.Alpha = alpha
		w := newWorld(t, 100, cfg, 3)
		e := New(w.ds, cfg)
		e.SeedIdealNetworks(w.ideal)
		q, ok := trace.QueryFor(w.ds, 5, 11)
		if !ok {
			t.Fatal("no query for user 5")
		}
		qr := e.IssueQuery(q)
		e.RunEager(100)
		if !qr.Done() {
			t.Fatalf("alpha=%.1f: query not done", alpha)
		}
		want := exactReference(e, q, cfg.K)
		got := qr.Results()
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("alpha=%.1f: results diverge from exact: got %v want %v",
					alpha, got, want)
			}
		}
	}
}

func TestEagerProfilesUsedEqualsNeeded(t *testing.T) {
	w := newWorld(t, 100, smallCfg(), 4)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 0, 3)
	qr := e.IssueQuery(q)
	e.RunEager(100)
	if !qr.Done() {
		t.Fatal("query not done")
	}
	if qr.ProfilesUsed() != qr.ProfilesNeeded() {
		t.Fatalf("profiles used %d != needed %d at completion",
			qr.ProfilesUsed(), qr.ProfilesNeeded())
	}
}

func TestEagerImmediateCompletionWhenAllStored(t *testing.T) {
	cfg := smallCfg()
	cfg.C = cfg.S // store everything: no gossip needed
	w := newWorld(t, 80, cfg, 5)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 3, 9)
	qr := e.IssueQuery(q)
	if !qr.Done() {
		t.Fatal("query with full storage should complete locally (Algorithm 2 line 4)")
	}
	if qr.Cycles() != 0 {
		t.Fatalf("cycles = %d, want 0", qr.Cycles())
	}
	want := exactReference(e, q, cfg.K)
	got := qr.Results()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("local-only results diverge: got %v want %v", got, want)
		}
	}
}

func TestEagerRecallImprovesMonotonically(t *testing.T) {
	w := newWorld(t, 150, smallCfg(), 6)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 10, 5)
	qr := e.IssueQuery(q)
	want := exactReference(e, q, w.cfg.K)
	prev := topk.Recall(qr.Results(), want)
	finalRecall := prev
	for i := 0; i < 40 && !qr.Done(); i++ {
		e.EagerCycle()
		finalRecall = topk.Recall(qr.Results(), want)
	}
	if !qr.Done() {
		t.Fatal("query did not complete")
	}
	if finalRecall != 1 {
		t.Fatalf("final recall = %f, want 1", finalRecall)
	}
	if prev > finalRecall {
		t.Fatalf("recall regressed from %f to %f", prev, finalRecall)
	}
}

func TestEagerUsersReachedBounded(t *testing.T) {
	w := newWorld(t, 120, smallCfg(), 7)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 2, 13)
	qr := e.IssueQuery(q)
	e.RunEager(100)
	if qr.UsersReached() > w.cfg.S+1 {
		t.Fatalf("reached %d users, more than s+1 = %d", qr.UsersReached(), w.cfg.S+1)
	}
	if qr.PartialResultMessages() >= qr.UsersReached()+1 {
		t.Fatalf("partial result messages %d >= users reached + 1 (%d)",
			qr.PartialResultMessages(), qr.UsersReached()+1)
	}
}

func TestEagerQueryBytesAccounted(t *testing.T) {
	w := newWorld(t, 100, smallCfg(), 8)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 4, 17)
	qr := e.IssueQuery(q)
	e.RunEager(100)
	b := qr.Bytes()
	if b.Forwarded == 0 || b.PartialResults == 0 {
		t.Fatalf("query traffic not accounted: %+v", b)
	}
	if b.Total() != b.Forwarded+b.Returned+b.PartialResults {
		t.Fatal("QueryBytes.Total inconsistent")
	}
	nt := e.Network().Total()
	if nt.Bytes[sim.MsgQueryForward] < b.Forwarded {
		t.Fatal("network counter misses query-forward bytes")
	}
}

func TestIssueQueryOfflineQuerier(t *testing.T) {
	w := newWorld(t, 50, smallCfg(), 9)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	e.Network().SetOnline(3, false)
	q, _ := trace.QueryFor(w.ds, 3, 1)
	if qr := e.IssueQuery(q); qr != nil {
		t.Fatal("IssueQuery for departed querier returned a run")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		w := newWorld(t, 80, smallCfg(), 10)
		e := New(w.ds, w.cfg)
		e.SeedIdealNetworks(w.ideal)
		qs := trace.GenerateQueries(w.ds, 3)
		for _, q := range qs[:10] {
			e.IssueQuery(q)
		}
		e.RunEager(30)
		sum := 0
		for _, qr := range e.Queries() {
			for _, r := range qr.Results() {
				sum += int(r.Item) + r.Score
			}
			sum += qr.UsersReached()
		}
		return e.Network().Total().TotalBytes(), sum
	}
	b1, s1 := run()
	b2, s2 := run()
	if b1 != b2 || s1 != s2 {
		t.Fatalf("two identical runs diverged: bytes %d vs %d, result sum %d vs %d", b1, b2, s1, s2)
	}
}

func TestLazyConvergenceImprovesSuccessRatio(t *testing.T) {
	cfg := smallCfg()
	cfg.S = 10
	cfg.C = 5
	w := newWorld(t, 100, cfg, 11)
	e := New(w.ds, cfg)
	e.Bootstrap()
	ratio := func() float64 {
		vals := make([]float64, 0, e.Users())
		for u := 0; u < e.Users(); u++ {
			scores := make(map[tagging.UserID]int)
			for _, entry := range e.Node(tagging.UserID(u)).PersonalNetwork().Ranking() {
				scores[entry.ID] = entry.Score
			}
			vals = append(vals, metrics.SuccessRatio(scores, w.ideal[u]))
		}
		return metrics.Mean(vals)
	}
	start := ratio()
	e.RunLazy(25)
	end := ratio()
	if end < start {
		t.Fatalf("success ratio fell from %f to %f", start, end)
	}
	if end < 0.6 {
		t.Fatalf("success ratio after 25 lazy cycles = %f, want >= 0.6", end)
	}
}

func TestLazyScoresAreExact(t *testing.T) {
	// Every score in every personal network must equal the true similarity
	// (Bloom false positives must not inflate scores; step 2 computes exact
	// intersections).
	cfg := smallCfg()
	w := newWorld(t, 80, cfg, 12)
	e := New(w.ds, cfg)
	e.Bootstrap()
	e.RunLazy(10)
	for u := 0; u < e.Users(); u++ {
		p := w.ds.Profiles[u]
		for _, entry := range e.Node(tagging.UserID(u)).PersonalNetwork().Ranking() {
			truth := p.CommonScore(w.ds.Profiles[entry.ID].Snapshot())
			if entry.Score != truth {
				t.Fatalf("user %d neighbour %d: score %d, true similarity %d",
					u, entry.ID, entry.Score, truth)
			}
		}
	}
}

func TestLazyTrafficUsesThreeSteps(t *testing.T) {
	w := newWorld(t, 80, smallCfg(), 13)
	e := New(w.ds, w.cfg)
	e.Bootstrap()
	e.RunLazy(5)
	tr := e.Network().Total()
	if tr.Bytes[sim.MsgRandomView] == 0 {
		t.Fatal("no bottom-layer traffic")
	}
	if tr.Bytes[sim.MsgTopDigest] == 0 {
		t.Fatal("no step-1 digest traffic")
	}
	if tr.Bytes[sim.MsgCommonItems] == 0 {
		t.Fatal("no step-2 common-item traffic")
	}
	if tr.Bytes[sim.MsgProfile] == 0 {
		t.Fatal("no step-3 profile traffic")
	}
}

func TestProfileChangePropagatesThroughLazyGossip(t *testing.T) {
	cfg := smallCfg()
	w := newWorld(t, 80, cfg, 14)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)

	// Change some profiles; replicas become stale.
	changes := trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.3, MeanNew: 5, SigmaNew: 0.5, MaxNew: 20, Seed: 5,
	})
	changedVersion := make(map[tagging.UserID]int)
	for _, c := range changes {
		c.Apply(w.ds)
		changedVersion[c.User] = w.ds.Profiles[c.User].Version()
	}
	aur := func() float64 {
		var vals []float64
		for u := 0; u < e.Users(); u++ {
			var stored []metrics.Replica
			for _, entry := range e.Node(tagging.UserID(u)).PersonalNetwork().StoredEntries() {
				stored = append(stored, metrics.Replica{Owner: entry.ID, Version: entry.Stored.Version()})
			}
			if r, ok := metrics.UpdateRate(stored, changedVersion); ok {
				vals = append(vals, r)
			}
		}
		return metrics.Mean(vals)
	}
	before := aur()
	if before > 0.2 {
		t.Fatalf("AUR right after changes = %f, expected near 0", before)
	}
	e.RunLazy(30)
	after := aur()
	if after < 0.8 {
		t.Fatalf("AUR after 30 lazy cycles = %f, want >= 0.8 (small c keeps replicas fresh, §3.4.1)", after)
	}
}

func TestEagerGossipRefreshesReachedUsers(t *testing.T) {
	// Figure 9's mechanism: consecutive queries from one user refresh the
	// stale replicas of the users they reach, without any lazy cycle.
	cfg := smallCfg()
	w := newWorld(t, 100, cfg, 15)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	changes := trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.5, MeanNew: 6, SigmaNew: 0.5, MaxNew: 20, Seed: 6,
	})
	changedVersion := make(map[tagging.UserID]int)
	for _, c := range changes {
		c.Apply(w.ds)
		changedVersion[c.User] = w.ds.Profiles[c.User].Version()
	}

	reached := make(map[tagging.UserID]struct{})
	for i := 0; i < 10; i++ {
		q, ok := trace.QueryFor(w.ds, 0, uint64(100+i))
		if !ok {
			t.Fatal("no query")
		}
		qr := e.IssueQuery(q)
		e.RunEager(40)
		if !qr.Done() {
			t.Fatal("query did not complete")
		}
		for u := range qr.reached {
			reached[u] = struct{}{}
		}
	}
	// Fresh profile versions can only enter eager traffic through exchange
	// participants (remaining-list members advertise their own profiles),
	// so measure the refresh rate over replicas whose owners participated —
	// the paper-scale setting (s=1000, c=10) makes nearly every cluster
	// member a participant, which is why Figure 9 reports higher absolute
	// rates.
	participantChanged := make(map[tagging.UserID]int)
	for u := range reached {
		if v, ok := changedVersion[u]; ok {
			participantChanged[u] = v
		}
	}
	if len(participantChanged) == 0 {
		t.Fatal("no participant changed her profile; change-set too small")
	}
	var vals []float64
	for u := range reached {
		var stored []metrics.Replica
		for _, entry := range e.Node(u).PersonalNetwork().StoredEntries() {
			stored = append(stored, metrics.Replica{Owner: entry.ID, Version: entry.Stored.Version()})
		}
		if r, ok := metrics.UpdateRate(stored, participantChanged); ok {
			vals = append(vals, r)
		}
	}
	if len(vals) == 0 {
		t.Skip("no reached user stores a participant's changed profile at this scale")
	}
	if aur := metrics.Mean(vals); aur < 0.3 {
		t.Fatalf("AUR over participant-owned replicas after 10 queries = %f, want >= 0.3", aur)
	}
}

func TestChurnQueriesStillComplete(t *testing.T) {
	cfg := smallCfg()
	w := newWorld(t, 150, cfg, 16)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	killed := e.Kill(0.3)
	if len(killed) == 0 {
		t.Fatal("Kill removed nobody")
	}
	issued, completedRecall := 0, 0.0
	queries := trace.GenerateQueries(w.ds, 21)
	for _, q := range queries[:40] {
		if !e.Network().Online(q.Querier) {
			continue
		}
		qr := e.IssueQuery(q)
		if qr == nil {
			continue
		}
		issued++
		want := exactReference(e, q, cfg.K)
		e.RunEager(15)
		completedRecall += topk.Recall(qr.Results(), want)
	}
	if issued == 0 {
		t.Fatal("no queries issued")
	}
	avg := completedRecall / float64(issued)
	if avg < 0.7 {
		t.Fatalf("average recall under 30%% churn = %f, want >= 0.7 (paper: 50%% departures cost ~10%%)", avg)
	}
}

func TestChurnProbesRecorded(t *testing.T) {
	cfg := smallCfg()
	w := newWorld(t, 100, cfg, 17)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	e.Kill(0.5)
	for _, q := range trace.GenerateQueries(w.ds, 23)[:20] {
		e.IssueQuery(q)
	}
	e.RunEager(10)
	if e.Network().Total().Msgs[sim.MsgProbe] == 0 {
		t.Fatal("no probes recorded despite 50% departures")
	}
}

func TestRunEagerStopsWhenAllDone(t *testing.T) {
	w := newWorld(t, 80, smallCfg(), 18)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 1, 2)
	e.IssueQuery(q)
	ran := e.RunEager(100)
	if ran >= 100 {
		t.Fatalf("RunEager did not stop at completion (ran %d cycles)", ran)
	}
	more := e.RunEager(5)
	if more != 0 {
		t.Fatalf("RunEager ran %d extra cycles after completion", more)
	}
}

package core

import (
	"sync"
	"sync/atomic"
	"time"

	"p3q/internal/gossip"
	"p3q/internal/hostclock"
	"p3q/internal/obs"
	"p3q/internal/randx"
	"p3q/internal/sim"
	"p3q/internal/similarity"
	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// Engine drives a population of P3Q nodes cycle by cycle, the equivalent of
// the paper's PeerSim setup. It owns the simulated network (liveness and
// traffic accounting) and the query registry.
//
// Engines are deterministic: identical dataset, configuration and seed
// reproduce identical cycles, byte counts and query results — independently
// of Config.Workers. Both modes run on a plan/commit design, and both
// phases are parallel:
//
//   - plan: a worker pool of Config.Workers goroutines plans the cycle's
//     exchanges concurrently against the cycle-start state (per online node
//     in lazy cycles, see lazy.go; per (initiator, query) gossip in eager
//     cycles, see eager.go).
//   - commit: the population is partitioned into Config.Workers contiguous
//     node index shards, and one committer per shard applies only its own
//     nodes' intents, walking every plan in the canonical order (see
//     commitSharded). Shards never share a node, and commit-time traffic is
//     recorded in per-shard ledgers merged canonically afterwards, so every
//     worker count produces byte-for-byte identical output.
//
// The worker pools are internal; the engine's methods themselves must
// still be called from one goroutine at a time.
type Engine struct {
	cfg   Config
	ds    *trace.Dataset
	net   *sim.Network
	nodes []*Node
	rng   *randx.Source

	lazyCycles  int
	eagerCycles int

	// cycleSeq numbers every cycle (lazy or eager) ever started; it labels
	// the per-cycle split streams of the planning phases so no two cycles
	// reuse a stream.
	cycleSeq uint64
	// killSeq numbers every Kill call; it labels the kill stream so two
	// Kill calls with no intervening cycle still draw independent sets.
	killSeq uint64

	queries     map[uint64]*QueryRun
	queryOrder  []uint64
	nextQueryID uint64

	// now is the engine's virtual clock: EagerPeriod per eager cycle,
	// LazyPeriod per lazy cycle, starting at zero. The event scheduler
	// stamps deliveries against it and the per-query time metrics
	// (time-to-first-result, time-to-full-recall) are measured on it.
	now time.Duration
	// events is the pending delivery queue of the asynchronous eager mode
	// (Config.Latency != nil): timestamped message events popped in
	// deterministic (time, scheduling order) between cycle boundaries.
	events *sim.EventQueue
	// frozen parks events that fired while their target node was departed,
	// per target, in freeze order; they are redelivered (re-scheduled at
	// the current clock) once the node is back online — the simulation's
	// store-and-forward assumption for churn during delivery.
	frozen map[tagging.UserID][]*eagerEvent
	// latRng seeds the per-event latency streams: split per (cycle, pair,
	// message) in the canonical scheduling order, so delay draws are
	// independent of Workers.
	latRng *randx.Source

	// naiveExchangeBytes tallies what every top-layer exchange would have
	// cost if full profiles were shipped instead of running the 3-step
	// digest/common-items/delta protocol of Algorithm 1 (ablation ledger).
	naiveExchangeBytes uint64

	// planDur and commitDur accumulate the wall-clock time spent in the
	// parallel planning phases and in the sharded commit phases (including
	// the canonical ledger merge and the eager querier-side finalize) — the
	// compatibility view behind PhaseDurations; the attached obs registry
	// additionally keeps per-phase histograms of the same windows.
	//
	//p3q:transient host-side telemetry, deliberately outside the checkpoint (see Snapshot)
	//p3q:hostplane cumulative hostclock phase windows, observability only
	planDur, commitDur time.Duration

	// obs is the optional telemetry registry (see internal/obs and SetObs).
	// It strictly observes: sim-plane counters/events are derived from
	// engine state, host-plane timings from hostclock windows, and nothing
	// ever flows back — attaching a registry changes no fingerprint, which
	// the obspurity analyzer enforces statically and the invariance tests
	// pin dynamically. nil disables collection.
	//
	//p3q:transient observes the run, never part of engine state; reattach after restore
	obs *obs.Registry

	// Pooled per-cycle scratch. Every cycle re-initializes the slots it
	// uses (a slot's used flag gates the committers), so the only state
	// that survives a cycle is buffer capacity — a steady-state cycle plans
	// and commits without allocating.
	//
	//p3q:transient per-cycle plan pool, fully re-initialized by each lazy cycle
	vplans []viewPlan
	//p3q:transient per-cycle plan pool, fully re-initialized by each lazy cycle
	tplans []topPlan
	//p3q:transient per-cycle plan pool, fully re-initialized by each eager cycle
	eplans []eagerPlan
	//p3q:transient per-cycle gossip-pair scratch, rebuilt by each eager cycle
	pairsBuf []eagerPair
	//p3q:transient per-cycle permutation scratch, overwritten by each cycle
	permBuf []int
	//p3q:transient per-commit-phase shard scratch, re-initialized by commitSharded
	shards []commitShard
}

// New builds an engine over the dataset. Nodes start with empty personal
// networks and empty random views; call Bootstrap (and run lazy cycles) to
// converge organically, or SeedIdealNetworks to start from converged state.
func New(ds *trace.Dataset, cfg Config) *Engine {
	cfg = cfg.sanitize(ds.Users())
	root := randx.NewSource(cfg.Seed)
	e := &Engine{
		cfg:   cfg,
		ds:    ds,
		net:   sim.NewNetwork(ds.Users()),
		nodes: make([]*Node, ds.Users()),
		// The engine label lives above 32 bits so it can never collide
		// with the per-node labels (u+1) in very large populations.
		rng:     root.Split(0xE16 << 32),
		latRng:  root.Split(0x1A7E << 32),
		queries: make(map[uint64]*QueryRun),
		events:  sim.NewEventQueue(),
		frozen:  make(map[tagging.UserID][]*eagerEvent),
	}
	for u := 0; u < ds.Users(); u++ {
		id := tagging.UserID(u)
		e.nodes[u] = &Node{
			id:      id,
			e:       e,
			profile: ds.Profiles[u],
			pnet:    NewPersonalNetwork(id, cfg.S, cfg.capacityOf(id)),
			view:    gossip.NewView(id, cfg.R),
			rng:     root.Split(uint64(u) + 1),
		}
	}
	return e
}

// Config returns the engine's (sanitized) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Dataset returns the dataset the engine runs over.
func (e *Engine) Dataset() *trace.Dataset { return e.ds }

// Network returns the simulated network (liveness, traffic counters).
func (e *Engine) Network() *sim.Network { return e.net }

// Node returns the node of the given user.
func (e *Engine) Node(u tagging.UserID) *Node { return e.nodes[u] }

// Users returns the population size.
func (e *Engine) Users() int { return len(e.nodes) }

// LazyCycles returns the number of lazy cycles run so far.
func (e *Engine) LazyCycles() int { return e.lazyCycles }

// EagerCycles returns the number of eager cycles run so far.
func (e *Engine) EagerCycles() int { return e.eagerCycles }

// Now returns the engine's virtual clock: time zero at construction,
// advanced by Config.EagerPeriod per eager cycle and Config.LazyPeriod per
// lazy cycle. Asynchronous deliveries (Config.Latency) are scheduled
// against it and the per-query time metrics are measured on it.
func (e *Engine) Now() time.Duration { return e.now }

// PendingEvents returns the number of in-flight delivery events (always 0
// with synchronous delivery). Frozen events parked at departed nodes do
// not count until redelivery is scheduled.
func (e *Engine) PendingEvents() int { return e.events.Len() }

// FrozenEvents returns the number of delivery events parked at departed
// nodes awaiting redelivery (always 0 with synchronous delivery) — the
// store-and-forward backlog churn leaves behind.
func (e *Engine) FrozenEvents() int {
	n := 0
	//p3q:orderinvariant sums per-node queue lengths, a commutative reduction
	for _, evs := range e.frozen {
		n += len(evs)
	}
	return n
}

// SetObs attaches a telemetry registry (see internal/obs); nil detaches.
// The registry strictly observes the run: sim-plane counters and query
// lifecycle events derive only from engine state, host-plane timings only
// from hostclock windows, and nothing flows back into the engine — so
// attaching a registry changes no fingerprint.
func (e *Engine) SetObs(r *obs.Registry) { e.obs = r }

// Obs returns the attached telemetry registry, nil when none is attached.
func (e *Engine) Obs() *obs.Registry { return e.obs }

// emitQueryEvent emits one sim-plane query lifecycle event to the attached
// registry. Every argument derives from engine state (the virtual clock,
// node IDs, ledger byte deltas), and every call site is sequential engine
// code — issue, the finalize/schedule passes, event application, churn
// entry points — never a parallel planner or shard committer, so emission
// order is deterministic.
func (e *Engine) emitQueryEvent(kind obs.EventKind, qid uint64, at time.Duration, node, peer tagging.UserID, bytes uint64) {
	if e.obs == nil {
		return
	}
	e.obs.Event(obs.QueryEvent{
		Kind:  kind,
		Qid:   qid,
		Cycle: e.cycleSeq,
		At:    at,
		Node:  uint64(node),
		Peer:  uint64(peer),
		Bytes: bytes,
	})
}

// samplePhase routes one hostclock phase window into the compatibility
// accumulators behind PhaseDurations and, when a registry is attached,
// into its host-plane phase histograms.
//
//p3q:hostplane
func (e *Engine) samplePhase(p obs.Phase, d time.Duration) {
	if p == obs.PhasePlan {
		e.planDur += d
	} else {
		e.commitDur += d
	}
	e.obs.SamplePhase(p, d)
}

// Queries returns every issued query in issue order.
func (e *Engine) Queries() []*QueryRun {
	out := make([]*QueryRun, 0, len(e.queryOrder))
	for _, id := range e.queryOrder {
		out = append(out, e.queries[id])
	}
	return out
}

// NaiveExchangeBytes returns the hypothetical cost of every top-layer
// exchange so far had full profiles been shipped instead of the 3-step
// protocol of Algorithm 1. Comparing it against the actual
// digest/common-items/profile traffic quantifies the 3-step savings
// (ablation of the design choice in §2.2.1).
func (e *Engine) NaiveExchangeBytes() uint64 { return e.naiveExchangeBytes }

// AllQueriesDone reports whether every issued query has settled: completed,
// or stalled because its querier departed mid-query. A stalled query resumes
// automatically once the querier revives (so AllQueriesDone may flip back to
// false after a Revive), but while the querier is away it must not keep
// RunEager burning cycles forwarding branches nobody will read.
//
// Under asynchronous delivery (Config.Latency) a query with in-flight or
// frozen delivery events is not yet done even when no node holds a branch
// — completion requires every scheduled event applied — so RunEager keeps
// running (and the clock keeps advancing) until the last delivery lands.
func (e *Engine) AllQueriesDone() bool {
	for _, id := range e.queryOrder {
		qr := e.queries[id]
		if !qr.done && !qr.Stalled() {
			return false
		}
	}
	return true
}

// Bootstrap seeds every node's random view with R uniformly chosen peers,
// modelling the usual join-through-bootstrap-service assumption of gossip
// protocols ("each user builds her personal network by first discovering
// the contact information of any user currently in the system using the
// random peer sampling protocol", §3.2.1).
func (e *Engine) Bootstrap() {
	n := len(e.nodes)
	for u, node := range e.nodes {
		peers := make([]gossip.Descriptor, 0, e.cfg.R)
		for _, i := range node.rng.Sample(n, e.cfg.R+1) {
			if i == u {
				continue
			}
			peers = append(peers, e.nodes[i].descriptor())
			if len(peers) == e.cfg.R {
				break
			}
		}
		node.view.Bootstrap(peers)
	}
}

// LazyCycle runs one cycle of the lazy mode on every online node: the
// bottom-layer view exchange, the top-layer personal network gossip, and
// the scoring of random-view candidates (§2.2.1: "at each cycle, a user
// gossips with a neighbour from her random view and a neighbour from her
// personal network respectively").
//
// Each layer runs as a plan/commit round: Config.Workers goroutines plan
// every online node's exchange against the cycle-start state, then the
// same number of shard committers apply the intents — each to its own
// contiguous range of nodes, in the cycle's canonical permutation order.
// The output is byte-for-byte identical for every worker count.
func (e *Engine) LazyCycle() { e.lazyCycle(nil) }

// lazyCycle is LazyCycle with an optional capture: when cp is non-nil the
// cycle's exchanges are described into it (see capture.go) after the
// commit phases, with no effect on the cycle itself.
func (e *Engine) lazyCycle(cp *LazyCapture) {
	e.net.SetNow(e.now)
	if e.cfg.Latency != nil {
		e.replayFrozen()
	}
	order := e.rng.PermInto(e.permBuf, len(e.nodes))
	e.permBuf = order
	seq := e.cycleSeq
	e.cycleSeq++

	sw := hostclock.Start()
	// Normalize per-node caches (own digests, evaluated memos, memoized
	// gossip-age orderings) so the planners below only hit read-only paths.
	// Each unit of work touches one node's state exclusively, so this
	// pre-pass parallelizes too.
	e.forEachNode(func(n *Node) {
		n.digest()
		n.checkEvalCache()
		n.pnet.Prepare()
	})

	// Round 1: bottom-layer peer sampling, planned into the pooled slots
	// (an offline node's slot keeps used=false so a stale plan from a
	// previous cycle can never leak into the commit).
	if len(e.vplans) < len(e.nodes) {
		e.vplans = make([]viewPlan, len(e.nodes))
	}
	e.forEachNode(func(n *Node) {
		p := &e.vplans[n.id]
		p.used = false
		if e.net.Online(n.id) {
			e.planViewInto(n, seq, p)
		}
	})
	e.samplePhase(obs.PhasePlan, sw.Elapsed())
	sw = hostclock.Start()
	e.commitSharded(func(sh *commitShard) {
		for _, i := range order {
			if e.net.Online(e.nodes[i].id) {
				e.commitViewShard(e.nodes[i], &e.vplans[i], sh)
			}
		}
	})
	e.samplePhase(obs.PhaseCommit, sw.Elapsed())

	// Round 2: top-layer personal network gossip plus random-view
	// evaluation, planned against the round-1-committed views.
	sw = hostclock.Start()
	if len(e.tplans) < len(e.nodes) {
		e.tplans = make([]topPlan, len(e.nodes))
	}
	e.forEachNode(func(n *Node) {
		p := &e.tplans[n.id]
		p.used = false
		if e.net.Online(n.id) {
			e.planTopInto(n, seq, p)
		}
	})
	e.samplePhase(obs.PhasePlan, sw.Elapsed())
	sw = hostclock.Start()
	e.commitSharded(func(sh *commitShard) {
		for _, i := range order {
			if e.net.Online(e.nodes[i].id) {
				e.commitTopShard(e.nodes[i], &e.tplans[i], sh)
			}
		}
	})
	e.samplePhase(obs.PhaseCommit, sw.Elapsed())
	if cp != nil {
		e.captureLazy(cp, seq, order)
	}
	// The lazy cycle occupies one LazyPeriod of virtual time; in-flight
	// eager deliveries falling inside the window arrive during it.
	t1 := e.now + e.cfg.LazyPeriod
	if e.cfg.Latency != nil {
		e.pumpEvents(t1)
	}
	e.now = t1
	e.lazyCycles++
	e.obs.Inc(obs.CLazyCycles)
}

// commitShard is one committer of the sharded commit phase. It owns the
// contiguous node index range [lo, hi) — the ROADMAP's locality-aware
// grouping: each committer touches one dense slice of the population — and
// applies only the intents targeting its own nodes, recording commit-time
// traffic in its private ledger and the 3-step ablation side ledger in
// naive.
type commitShard struct {
	lo, hi tagging.UserID
	ledger sim.Ledger
	naive  uint64

	// dur is the committer's host wall time for the current phase,
	// measured only while a telemetry registry is attached; it feeds the
	// registry's per-shard histograms and the commit-skew samples.
	//
	//p3q:hostplane per-shard hostclock window, observability only
	dur time.Duration
}

// owns reports whether the node belongs to this shard.
func (sh *commitShard) owns(id tagging.UserID) bool { return id >= sh.lo && id < sh.hi }

// commitSharded runs one commit phase: apply is called once per shard —
// concurrently when Workers > 1 — and must walk the cycle's plans in the
// canonical order, applying only the effects owned by the given shard.
// Because shards never share a node and every cross-node input (profiles,
// normalized digests, liveness) is frozen during the phase, each node's
// state receives exactly the same intents in exactly the same order for
// every worker count. Afterwards the per-shard ledgers and side counters
// are folded into the network in ascending shard order; the fold is a sum
// of per-record counters, so the canonical order makes it independent of
// how the records were distributed across shards.
func (e *Engine) commitSharded(apply func(sh *commitShard)) {
	n := len(e.nodes)
	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	size := (n + workers - 1) / workers
	if cap(e.shards) < workers {
		e.shards = make([]commitShard, workers)
	}
	shards := e.shards[:workers]
	for i := range shards {
		lo := min(i*size, n)
		hi := min(lo+size, n)
		shards[i].lo, shards[i].hi = tagging.UserID(lo), tagging.UserID(hi)
		shards[i].naive = 0
		e.net.InitLedger(&shards[i].ledger)
	}
	timed := e.obs != nil
	if workers == 1 {
		if timed {
			sw := hostclock.Start()
			apply(&shards[0])
			shards[0].dur = sw.Elapsed()
		} else {
			apply(&shards[0])
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := range shards {
			go func(sh *commitShard) {
				defer wg.Done()
				if timed {
					sw := hostclock.Start()
					apply(sh)
					sh.dur = sw.Elapsed()
				} else {
					apply(sh)
				}
			}(&shards[i])
		}
		wg.Wait()
	}
	if timed {
		e.sampleShards(shards)
	}
	for i := range shards {
		e.net.Commit(&shards[i].ledger)
		e.naiveExchangeBytes += shards[i].naive
	}
}

// sampleShards records one commit phase's per-shard telemetry into the
// attached registry, before the ledgers are folded (Network.Commit empties
// them): sim-plane per-shard intent bytes and the commit byte total,
// host-plane per-shard durations and the max-min commit skew — the number
// the locality-aware scheduling work (ROADMAP) wants to shrink. The
// intent bytes fed to the sim plane come from the ledger, never from the
// durations; obspurity holds the function to that.
//
//p3q:hostplane min/max scan over shard wall-clock durations
func (e *Engine) sampleShards(shards []commitShard) {
	minDur, maxDur := shards[0].dur, shards[0].dur
	for i := range shards {
		sh := &shards[i]
		bytes := sh.ledger.Total().TotalBytes()
		e.obs.AddShardIntent(i, bytes)
		e.obs.Add(obs.CCommitBytes, bytes)
		e.obs.SampleShardDuration(sh.dur)
		if sh.dur < minDur {
			minDur = sh.dur
		}
		if sh.dur > maxDur {
			maxDur = sh.dur
		}
	}
	e.obs.SampleCommitSkew(maxDur - minDur)
}

// PhaseDurations returns the cumulative wall-clock time the engine has
// spent in the parallel planning phases and in the sharded commit phases
// (the commit figure includes the canonical ledger merge and the eager
// querier-side finalize). Benchmarks report the two separately to track
// how far the commit phase — the historical Amdahl limit of both cycle
// kinds — has been pushed. This is the compatibility view of the same
// windows the attached obs registry histograms per phase (samplePhase).
//
//p3q:hostplane
func (e *Engine) PhaseDurations() (plan, commit time.Duration) {
	return e.planDur, e.commitDur
}

// planChunk is the number of nodes a worker claims per scheduling step:
// large enough to amortize the atomic increment, small enough to balance
// skewed per-node costs.
const planChunk = 64

// forEachIndex runs fn for every index in [0, n). With Workers > 1 the
// indices are processed by a worker pool in chunks; fn must therefore be
// safe to run concurrently for distinct indices (the planning contract:
// read shared state, write only the index's own slot). The set of fn
// invocations is identical for every worker count — only the schedule
// differs.
func (e *Engine) forEachIndex(n int, fn func(i int)) {
	workers := e.cfg.Workers
	if max := (n + planChunk - 1) / planChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(planChunk)) - planChunk
				if lo >= n {
					return
				}
				hi := lo + planChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// forEachNode runs fn for every node under the forEachIndex contract.
func (e *Engine) forEachNode(fn func(n *Node)) {
	e.forEachIndex(len(e.nodes), func(i int) { fn(e.nodes[i]) })
}

// RunLazy runs n lazy cycles.
func (e *Engine) RunLazy(n int) {
	for i := 0; i < n; i++ {
		e.LazyCycle()
	}
}

// RunEager runs eager cycles until every issued query settles (completes,
// or stalls on a departed querier) or maxCycles elapse, returning the
// number of cycles executed.
func (e *Engine) RunEager(maxCycles int) int {
	ran := 0
	for ; ran < maxCycles && !e.AllQueriesDone(); ran++ {
		e.EagerCycle()
	}
	return ran
}

// Kill takes the given fraction of online nodes offline simultaneously
// (§3.4.2) and returns their IDs. The kill stream is labelled with a
// per-engine counter: Split does not advance the parent source, so a
// constant label would hand two back-to-back Kill calls (no intervening
// cycle) identical streams and correlated kill sets.
func (e *Engine) Kill(frac float64) []tagging.UserID {
	e.killSeq++
	ids := e.net.Kill(frac, e.rng.Split(0xDEAD<<32|e.killSeq))
	if e.obs != nil {
		// Queries whose querier just departed are now stalled (the state is
		// derived from liveness, so this is the transition moment).
		for _, qid := range e.queryOrder {
			qr := e.queries[qid]
			if !qr.done && containsID(ids, qr.Query.Querier) {
				e.emitQueryEvent(obs.EvStalled, qid, e.now, qr.Query.Querier, 0, 0)
			}
		}
	}
	return ids
}

// Revive brings departed nodes back online. A revived node keeps her
// profile and personal network (the paper's model: departures are
// disconnections, not data loss — "her opinion on the tagged items keeps
// meaningful", §3.4.2) and re-enters the gossip at the next cycle; her
// random view heals through peer sampling. Under asynchronous delivery,
// events frozen while she was away are redelivered at the start of the
// next cycle (see replayFrozen).
func (e *Engine) Revive(ids []tagging.UserID) {
	for _, id := range ids {
		e.net.SetOnline(id, true)
	}
	if e.obs != nil {
		for _, qid := range e.queryOrder {
			qr := e.queries[qid]
			if !qr.done && containsID(ids, qr.Query.Querier) {
				e.emitQueryEvent(obs.EvResumed, qid, e.now, qr.Query.Querier, 0, 0)
			}
		}
	}
}

// SeedExplicitNetworks installs pre-declared social networks (e.g. Facebook
// friend lists) instead of gossip-discovered implicit ones — the deployment
// variant discussed in §4: "equipping each P3Q user with a pre-defined
// explicit network as input would be straightforward: only the eager mode
// of P3Q would suffice". Each user's contacts are scored with the real
// profile similarity (floored at 1 so a declared friend is kept even with
// no tagging overlap), the top-c profiles are stored, and random views are
// bootstrapped for connectivity.
func (e *Engine) SeedExplicitNetworks(contacts [][]tagging.UserID) {
	if len(contacts) != len(e.nodes) {
		panic("core: SeedExplicitNetworks needs one contact list per user")
	}
	digests := make([]*tagging.Digest, len(e.nodes))
	for u, node := range e.nodes {
		digests[u] = node.digest()
	}
	for u, node := range e.nodes {
		node.pnet = NewPersonalNetwork(node.id, e.cfg.S, e.cfg.capacityOf(node.id))
		node.checkEvalCache()
		for _, friend := range contacts[u] {
			if friend == node.id || node.pnet.Contains(friend) {
				continue
			}
			score := node.profile.CommonScore(e.nodes[friend].profile.Snapshot())
			if score < 1 {
				score = 1
			}
			node.pnet.Upsert(friend, score, digests[friend])
			node.evaluated[friend] = digests[friend].Version
		}
		for _, entry := range node.pnet.Rebalance() {
			entry.Stored = e.nodes[entry.ID].profile.Snapshot()
		}
	}
	e.Bootstrap()
}

// SeedIdealNetworks installs the given (offline-computed) ideal personal
// networks into every node: the top-s neighbours with their scores and
// digests, fresh stored snapshots for the top-c, and warmed evaluation
// caches. Random views are bootstrapped as usual. This is how experiments
// that assume converged networks (Figures 3-6, 8, 11) start without paying
// hundreds of lazy cycles.
func (e *Engine) SeedIdealNetworks(nets [][]similarity.Neighbour) {
	// One digest per user, shared by every holder (digests of the same
	// profile version are identical).
	digests := make([]*tagging.Digest, len(e.nodes))
	for u, node := range e.nodes {
		digests[u] = node.digest()
	}
	for u, node := range e.nodes {
		node.pnet = NewPersonalNetwork(node.id, e.cfg.S, e.cfg.capacityOf(node.id))
		node.checkEvalCache()
		limit := len(nets[u])
		if limit > e.cfg.S {
			limit = e.cfg.S
		}
		for _, nb := range nets[u][:limit] {
			node.pnet.Upsert(nb.ID, nb.Score, digests[nb.ID])
			node.evaluated[nb.ID] = digests[nb.ID].Version
		}
		for _, entry := range node.pnet.Rebalance() {
			entry.Stored = e.nodes[entry.ID].profile.Snapshot()
		}
	}
	e.Bootstrap()
}

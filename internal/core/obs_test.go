package core

import (
	"testing"
	"time"

	"p3q/internal/obs"
	"p3q/internal/sim"
	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// runObsWorkload drives an engine through the full protocol surface —
// lazy convergence, a query burst, mid-burst churn (stalling queries and
// freezing deliveries under the latency model), revival — with or without
// a telemetry registry attached, and returns the engine fingerprint plus
// the registry (nil when detached).
func runObsWorkload(t *testing.T, workers int, latency sim.LatencyModel, attach bool) (string, *obs.Registry) {
	t.Helper()
	cfg := smallCfg()
	cfg.S = 15
	cfg.C = 5
	cfg.Workers = workers
	cfg.Latency = latency
	w := newWorld(t, 120, cfg, 77)
	e := New(w.ds, cfg)
	var r *obs.Registry
	if attach {
		r = obs.New()
		// A sink that drops events still exercises the emission paths.
		r.SetSink(func(obs.QueryEvent) {})
		e.SetObs(r)
	}
	e.Bootstrap()
	e.RunLazy(8)
	for _, q := range trace.GenerateQueries(w.ds, 5)[:20] {
		e.IssueQuery(q)
	}
	e.RunEager(2)
	killed := e.Kill(0.25)
	if len(killed) == 0 {
		t.Fatal("Kill removed nobody")
	}
	for i := 0; i < 3; i++ {
		e.EagerCycle()
	}
	e.RunLazy(2)
	e.Revive(killed)
	e.RunEager(30)
	return engineFingerprint(e), r
}

// TestObsFingerprintInvariance pins the tentpole contract: enabling the
// full obs registry (sim-plane events with a live sink plus host-plane
// histograms) changes no engine fingerprint, synchronously or under a
// latency model, sequentially or parallel.
func TestObsFingerprintInvariance(t *testing.T) {
	models := map[string]sim.LatencyModel{
		"sync":  nil,
		"async": sim.LogNormalLatency{Median: 2 * time.Second, Sigma: 1.0},
	}
	for name, lat := range models {
		for _, workers := range []int{1, 4} {
			bare, _ := runObsWorkload(t, workers, lat, false)
			obsd, r := runObsWorkload(t, workers, lat, true)
			if bare != obsd {
				t.Fatalf("%s workers=%d: engine fingerprint changed when the obs registry was attached", name, workers)
			}
			if r.Counter(obs.CLazyCycles) == 0 || r.Counter(obs.CEagerCycles) == 0 {
				t.Fatalf("%s workers=%d: registry recorded no cycles", name, workers)
			}
			if r.Counter(obs.CQueriesIssued) != 20 {
				t.Fatalf("%s workers=%d: queries issued = %d, want 20", name, workers, r.Counter(obs.CQueriesIssued))
			}
			if r.EventCount(obs.EvIssued) != 20 {
				t.Fatalf("%s workers=%d: issued events = %d, want 20", name, workers, r.EventCount(obs.EvIssued))
			}
			if r.EventCount(obs.EvForward) == 0 || r.EventCount(obs.EvSettled) == 0 {
				t.Fatalf("%s workers=%d: lifecycle events missing (forward=%d settled=%d)",
					name, workers, r.EventCount(obs.EvForward), r.EventCount(obs.EvSettled))
			}
			if r.EventCount(obs.EvStalled) == 0 {
				t.Fatalf("%s workers=%d: churn stalled no queries", name, workers)
			}
			if r.PhaseTotal(obs.PhasePlan) == 0 || r.PhaseTotal(obs.PhaseCommit) == 0 {
				t.Fatalf("%s workers=%d: phase histograms empty", name, workers)
			}
			_, _, _, skewSamples := r.CommitSkew()
			if skewSamples == 0 {
				t.Fatalf("%s workers=%d: no commit-skew samples", name, workers)
			}
		}
	}
}

// TestObsSimPlaneDeterministic pins that the sim plane itself is
// reproducible: two identical runs with registries attached produce the
// same SimFingerprint and identical event streams.
func TestObsSimPlaneDeterministic(t *testing.T) {
	lat := sim.LogNormalLatency{Median: 2 * time.Second, Sigma: 1.0}
	run := func() (*obs.Registry, []obs.QueryEvent) {
		cfg := smallCfg()
		cfg.S = 15
		cfg.Workers = 4
		cfg.Latency = lat
		w := newWorld(t, 120, cfg, 77)
		e := New(w.ds, cfg)
		r := obs.New()
		var events []obs.QueryEvent
		r.SetSink(func(ev obs.QueryEvent) { events = append(events, ev) })
		e.SetObs(r)
		e.Bootstrap()
		e.RunLazy(6)
		for _, q := range trace.GenerateQueries(w.ds, 5)[:10] {
			e.IssueQuery(q)
		}
		killed := e.Kill(0.3)
		e.RunEager(5)
		e.Revive(killed)
		e.RunEager(25)
		return r, events
	}
	r1, ev1 := run()
	r2, ev2 := run()
	if r1.SimFingerprint() != r2.SimFingerprint() {
		t.Fatal("sim-plane fingerprint differs between identical runs")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event stream lengths differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	if r1.EventCount(obs.EvFrozen) == 0 {
		t.Log("note: churn froze no deliveries in this workload")
	}
}

// TestFrozenEventsAccessor pins the FrozenEvents depth against the
// fingerprint's view of the frozen map.
func TestFrozenEventsAccessor(t *testing.T) {
	cfg := smallCfg()
	cfg.S = 15
	cfg.Latency = sim.LogNormalLatency{Median: 4 * time.Second, Sigma: 1.2}
	w := newWorld(t, 120, cfg, 77)
	e := New(w.ds, cfg)
	e.Bootstrap()
	e.RunLazy(6)
	for _, q := range trace.GenerateQueries(w.ds, 5)[:15] {
		e.IssueQuery(q)
	}
	e.RunEager(2)
	e.Kill(0.4)
	for i := 0; i < 4; i++ {
		e.EagerCycle()
	}
	want := 0
	for u := 0; u < e.Users(); u++ {
		want += len(e.frozen[tagging.UserID(u)])
	}
	if got := e.FrozenEvents(); got != want {
		t.Fatalf("FrozenEvents = %d, want %d", got, want)
	}
}

package core

import (
	"p3q/internal/gossip"
	"p3q/internal/randx"
	"p3q/internal/tagging"
)

// Node is one P3Q participant: a user, her profile, her personal network
// and random view, plus the per-query branches of remaining lists she is
// responsible for in eager mode.
type Node struct {
	id      tagging.UserID   //p3q:transient implicit: nodes serialize in index order, the id is the position
	e       *Engine          //p3q:transient engine back-pointer, re-attached on restore
	profile *tagging.Profile //p3q:transient re-resolved from the restored dataset (profiles serialize once, engine-level)
	pnet    *PersonalNetwork
	view    *gossip.View
	rng     *randx.Source

	// ownDigest caches the digest of the node's own profile per version.
	//
	//p3q:transient memo keyed by profile version, recomputed by digest() in the next pre-pass
	ownDigest *tagging.Digest

	// evaluated memoizes, per candidate owner, the highest profile version
	// already scored against the own profile. A digest whose version is not
	// newer carries no new information (Algorithm 1 drops it), so the
	// candidate is skipped without a Bloom scan. The cache is only valid
	// for the own profile version it was built against: scores grow when
	// the *own* profile grows, so the cache resets on own-profile change.
	evaluated   map[tagging.UserID]int
	evalVersion int

	// branches holds this node's remaining list per active query. The map
	// is lazily allocated by setBranch: at any moment only the nodes along
	// active query paths hold branches, so most of a large population never
	// pays for the map.
	branches map[uint64][]tagging.UserID
}

// setBranch stores a branch list, allocating the branches map on first use.
// Reads, deletes and len on a nil map are legal, so only the write path
// needs the helper.
func (n *Node) setBranch(qid uint64, members []tagging.UserID) {
	if n.branches == nil {
		n.branches = make(map[uint64][]tagging.UserID)
	}
	n.branches[qid] = members
}

// ID returns the node's user ID.
func (n *Node) ID() tagging.UserID { return n.id }

// Profile returns the node's live profile.
func (n *Node) Profile() *tagging.Profile { return n.profile }

// PersonalNetwork returns the node's personal network.
func (n *Node) PersonalNetwork() *PersonalNetwork { return n.pnet }

// View returns the node's random view.
func (n *Node) View() *gossip.View { return n.view }

// digest returns the current digest of the node's own profile, recomputing
// it only when the profile changed. The engine's per-cycle pre-pass calls
// it for every node, so during the parallel plan and commit phases — where
// planners and shard committers of other nodes read it — it is a pure
// read: profiles only change between cycles. It runs in the pre-pass as a
// unit of plan-phase work that owns its node exclusively, so the memo
// write below stays legal under phasepurity.
//
//p3q:phase plan
//p3q:hotpath
func (n *Node) digest() *tagging.Digest {
	if n.ownDigest == nil || n.ownDigest.Version != n.profile.Version() {
		n.ownDigest = tagging.NewDigest(n.profile.Snapshot(), n.e.cfg.BloomBits, n.e.cfg.BloomHashes)
	}
	return n.ownDigest
}

// descriptor returns the node's own peer-sampling descriptor with a fresh
// digest.
func (n *Node) descriptor() gossip.Descriptor {
	return gossip.Descriptor{Node: n.id, Digest: n.digest()}
}

// checkEvalCache invalidates the evaluated memo when the own profile
// changed since it was built. Pre-pass work: each unit owns its node.
//
//p3q:phase plan
//p3q:hotpath
func (n *Node) checkEvalCache() {
	if n.evaluated == nil || n.evalVersion != n.profile.Version() {
		n.evaluated = make(map[tagging.UserID]int) //p3q:alloc once per own-profile version bump, not per call
		n.evalVersion = n.profile.Version()
	}
}

// offer is a profile advertisement inside a gossip message: the digest that
// is actually transmitted in step 1, plus the snapshot the advertiser would
// serve in steps 2-3. Holding the snapshot is simulation convenience only —
// its bytes are charged exactly when the corresponding protocol step
// transfers them.
type offer struct {
	digest *tagging.Digest
	snap   tagging.Snapshot
}

// advertise builds the gossip payload of the top layer (§2.2.1): the node's
// own profile plus a random subset of at most MaxDigestsPerGossip stored
// neighbour profiles ("if more than 50 profiles are stored ... 50 random
// ones among them are exchanged ... Otherwise, all the profiles are
// exchanged"). The sampling randomness is passed in explicitly: both the
// lazy and the eager planners derive per-cycle split streams (planLabel /
// eagerStream) so that concurrent planners never contend on a shared
// source.
func (n *Node) advertise(rng *randx.Source) []offer {
	var smp randx.Sampler
	out, _ := n.advertiseInto(rng, nil, nil, &smp)
	return out
}

// advertiseInto is advertise appending into caller-owned buffers: dst
// receives the offers, stored is the neighbour-collection scratch (both
// reuse their capacity; the grown stored buffer is returned for the caller
// to keep), and smp owns the sampling scratch. The buffers are plan-owned,
// never node-owned: a node can be the partner of several concurrently
// planning initiators, each of which calls advertise on it.
//
//p3q:hotpath
func (n *Node) advertiseInto(rng *randx.Source, dst []offer, stored []*Entry, smp *randx.Sampler) (offers []offer, storedOut []*Entry) {
	stored = n.pnet.AppendStored(stored)
	max := n.e.cfg.MaxDigestsPerGossip
	dst = dst[:0]
	dst = append(dst, offer{digest: n.digest(), snap: n.profile.Snapshot()})
	if len(stored) <= max {
		for _, e := range stored {
			dst = append(dst, offer{digest: e.Digest, snap: e.Stored})
		}
		return dst, stored
	}
	for _, i := range smp.Sample(rng, len(stored), max) {
		e := stored[i]
		dst = append(dst, offer{digest: e.Digest, snap: e.Stored})
	}
	return dst, stored
}

// offersWireSize is the step-1 cost of a digest batch.
func offersWireSize(offers []offer) int {
	b := 0
	for _, o := range offers {
		b += o.digest.SizeBytes()
	}
	return b
}

// KnownProfiles returns the profiles this node can read locally: her own
// plus the stored snapshots of her personal network. Extensions (such as
// personalized query expansion, §4) build their per-user statistics from
// exactly this set — the information P3Q already maintains.
func (n *Node) KnownProfiles() []tagging.Snapshot { return n.storedSnapshots() }

// storedSnapshots returns the profiles this node can evaluate a query
// against: her own plus the stored neighbour snapshots (the paper's
// GoodProfiles before restriction to a remaining list).
func (n *Node) storedSnapshots() []tagging.Snapshot {
	stored := n.pnet.StoredEntries()
	out := make([]tagging.Snapshot, 0, 1+len(stored))
	out = append(out, n.profile.Snapshot())
	for _, e := range stored {
		out = append(out, e.Stored)
	}
	return out
}

// lookup returns the snapshot this node stores for user ul, if any: her own
// profile or a stored neighbour replica ("These profiles can be either her
// own profile or those stored in her personal network", §2.3).
func (n *Node) lookup(ul tagging.UserID) (tagging.Snapshot, bool) {
	if ul == n.id {
		return n.profile.Snapshot(), true
	}
	if e := n.pnet.Entry(ul); e != nil && e.Stored.Valid() {
		return e.Stored, true
	}
	return tagging.Snapshot{}, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

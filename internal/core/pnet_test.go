package core

import (
	"testing"

	"p3q/internal/bloom"
	"p3q/internal/tagging"
)

func mkDigest(owner tagging.UserID, version int) *tagging.Digest {
	p := tagging.NewProfile(owner)
	for i := 0; i < version; i++ {
		p.Add(tagging.ItemID(i), 0)
	}
	return tagging.NewDigest(p.Snapshot(), 256, 3)
}

func TestPnetUpsertAndRanking(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 2)
	pn.Upsert(1, 3, mkDigest(1, 1))
	pn.Upsert(2, 7, mkDigest(2, 1))
	pn.Upsert(3, 3, mkDigest(3, 1))
	r := pn.Ranking()
	if len(r) != 3 {
		t.Fatalf("len = %d, want 3", len(r))
	}
	if r[0].ID != 2 {
		t.Fatalf("head = %d, want 2 (highest score)", r[0].ID)
	}
	if r[1].ID != 1 || r[2].ID != 3 {
		t.Fatal("tie between 1 and 3 not broken by ascending ID")
	}
}

func TestPnetUpsertUpdatesExisting(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 2)
	pn.Upsert(1, 3, mkDigest(1, 1))
	pn.Upsert(1, 9, mkDigest(1, 2))
	if pn.Len() != 1 {
		t.Fatalf("len = %d, want 1", pn.Len())
	}
	e := pn.Entry(1)
	if e.Score != 9 || e.Digest.Version != 2 {
		t.Fatalf("entry = score %d version %d, want 9/2", e.Score, e.Digest.Version)
	}
}

func TestPnetUpsertPanics(t *testing.T) {
	pn := NewPersonalNetwork(7, 5, 2)
	for _, tc := range []struct {
		id    tagging.UserID
		score int
	}{{1, 0}, {1, -1}, {7, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Upsert(%d, %d) did not panic", tc.id, tc.score)
				}
			}()
			pn.Upsert(tc.id, tc.score, mkDigest(tc.id, 1))
		}()
	}
}

func TestPnetRebalanceEvictsBeyondS(t *testing.T) {
	pn := NewPersonalNetwork(0, 3, 1)
	for i := 1; i <= 5; i++ {
		pn.Upsert(tagging.UserID(i), i, mkDigest(tagging.UserID(i), 1))
	}
	pn.Rebalance()
	if pn.Len() != 3 {
		t.Fatalf("len after rebalance = %d, want 3", pn.Len())
	}
	if pn.Contains(1) || pn.Contains(2) {
		t.Fatal("lowest-scored entries not evicted")
	}
	if !pn.Contains(5) || !pn.Contains(4) || !pn.Contains(3) {
		t.Fatal("best entries evicted")
	}
}

func TestPnetRebalanceNeedStore(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 2)
	pn.Upsert(1, 10, mkDigest(1, 1))
	pn.Upsert(2, 5, mkDigest(2, 1))
	pn.Upsert(3, 1, mkDigest(3, 1))
	need := pn.Rebalance()
	if len(need) != 2 {
		t.Fatalf("needStore = %d entries, want 2 (top-c lacking snapshots)", len(need))
	}
	if need[0].ID != 1 || need[1].ID != 2 {
		t.Fatalf("needStore IDs = %d,%d want 1,2", need[0].ID, need[1].ID)
	}
}

func TestPnetRebalanceDropsStorageOutsideTopC(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 1)
	p1 := tagging.NewProfile(1)
	p1.Add(1, 1)
	e1 := pn.Upsert(1, 5, mkDigest(1, 1))
	e1.Stored = p1.Snapshot()
	pn.Rebalance()
	if !pn.Entry(1).Stored.Valid() {
		t.Fatal("top-c entry lost its snapshot")
	}
	// A better neighbour pushes 1 out of the top-1.
	pn.Upsert(2, 9, mkDigest(2, 1))
	pn.Rebalance()
	if pn.Entry(1).Stored.Valid() {
		t.Fatal("entry pushed out of top-c kept its stored profile")
	}
}

func TestPnetStoredFreshDetectsStale(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 2)
	p1 := tagging.NewProfile(1)
	p1.Add(1, 1)
	e := pn.Upsert(1, 5, mkDigest(1, 1))
	e.Stored = p1.Snapshot()
	if !e.StoredFresh() {
		t.Fatal("fresh snapshot reported stale")
	}
	// A newer digest arrives: the stored version falls behind. Re-fetch
	// the entry — Upsert may reorder the flat ranking array, so pointers
	// into it are only valid until the next mutation.
	pn.Upsert(1, 6, mkDigest(1, 3))
	if e = pn.Entry(1); e.StoredFresh() {
		t.Fatal("stale snapshot reported fresh")
	}
	need := pn.Rebalance()
	if len(need) != 1 || need[0].ID != 1 {
		t.Fatalf("stale stored entry not scheduled for re-fetch: %v", need)
	}
}

func TestPnetUnstored(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 1)
	p1 := tagging.NewProfile(1)
	p1.Add(1, 1)
	pn.Upsert(1, 9, mkDigest(1, 1)).Stored = p1.Snapshot()
	pn.Upsert(2, 5, mkDigest(2, 1))
	pn.Upsert(3, 3, mkDigest(3, 1))
	un := pn.Unstored()
	if len(un) != 2 || un[0] != 2 || un[1] != 3 {
		t.Fatalf("Unstored = %v, want [2 3] in rank order", un)
	}
}

func TestPnetTouchAging(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 2)
	pn.Upsert(1, 5, mkDigest(1, 1))
	pn.Upsert(2, 5, mkDigest(2, 1))
	pn.Upsert(3, 5, mkDigest(3, 1))
	pn.Touch(1)
	if pn.Entry(1).Age() != 0 {
		t.Fatal("touched partner age != 0")
	}
	if pn.Entry(2).Age() != 1 || pn.Entry(3).Age() != 1 {
		t.Fatal("other entries did not age by 1")
	}
	pn.Touch(2)
	oldest := pn.PartnersByAge()[0]
	if oldest.ID != 3 {
		t.Fatalf("oldest partner = %d, want 3 (age 2)", oldest.ID)
	}
}

func TestPnetResetTimestamp(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 2)
	pn.Upsert(1, 5, mkDigest(1, 1))
	pn.Upsert(2, 5, mkDigest(2, 1))
	pn.Touch(1) // ages 2
	pn.ResetTimestamp(2)
	if pn.Entry(2).Age() != 0 {
		t.Fatal("ResetTimestamp did not zero the entry")
	}
	if pn.Entry(1).Age() != 0 {
		t.Fatal("ResetTimestamp aged another entry")
	}
	pn.ResetTimestamp(99) // absent: no-op
}

func TestPnetMembersRankOrder(t *testing.T) {
	pn := NewPersonalNetwork(0, 5, 2)
	pn.Upsert(4, 1, mkDigest(4, 1))
	pn.Upsert(5, 9, mkDigest(5, 1))
	m := pn.Members()
	if len(m) != 2 || m[0] != 5 || m[1] != 4 {
		t.Fatalf("Members = %v, want [5 4]", m)
	}
}

func TestPnetCapsCAtS(t *testing.T) {
	pn := NewPersonalNetwork(0, 3, 10)
	if pn.C() != 3 {
		t.Fatalf("C = %d, want clamped to S=3", pn.C())
	}
}

func TestConfigSanitize(t *testing.T) {
	cfg := Config{}.sanitize(10)
	if cfg.S < 1 || cfg.R < 1 || cfg.K < 1 || cfg.MaxProbes < 1 {
		t.Fatalf("sanitize left invalid values: %+v", cfg)
	}
	if cfg.BloomBits < 64 || cfg.BloomHashes < 1 {
		t.Fatalf("sanitize left invalid Bloom geometry: %+v", cfg)
	}
	cfg2 := Config{S: 5, C: 50, Alpha: 2}.sanitize(10)
	if cfg2.C != 5 {
		t.Fatalf("C = %d, want clamped to S", cfg2.C)
	}
	if cfg2.Alpha != 1 {
		t.Fatalf("Alpha = %f, want clamped to 1", cfg2.Alpha)
	}
}

func TestConfigCapacityOf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.C = 7
	if cfg.capacityOf(3) != 7 {
		t.Fatal("uniform capacity not returned")
	}
	cfg.CAssign = []int{1, 2, 3}
	cfg.S = 2
	if cfg.capacityOf(2) != 2 {
		t.Fatalf("per-user capacity = %d, want clamped to S=2", cfg.capacityOf(2))
	}
	if cfg.capacityOf(0) != 1 {
		t.Fatalf("per-user capacity = %d, want 1", cfg.capacityOf(0))
	}
}

func TestConfigCAssignLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched CAssign length did not panic")
		}
	}()
	Config{CAssign: []int{1, 2}}.sanitize(10)
}

func TestBloomDefaultGeometryInConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BloomBits != bloom.DefaultBits || cfg.BloomHashes != bloom.DefaultHashes {
		t.Fatalf("default Bloom geometry = %d/%d", cfg.BloomBits, cfg.BloomHashes)
	}
}

package core

import (
	"sort"
	"time"

	"p3q/internal/hostclock"
	"p3q/internal/obs"
	"p3q/internal/sim"
	"p3q/internal/tagging"
	"p3q/internal/topk"
)

// This file implements asynchronous eager delivery (Config.Latency): the
// event-driven alternative to the synchronous cycle boundary of the
// paper's PeerSim rounds. The decision of *which* gossips run in a cycle
// is unchanged — every node holding a branch initiates once per query,
// planned concurrently and committed through the sharded committers — but
// the *arrival* of each message is a timestamped event drawn from the
// latency model:
//
//	t0          cycle start: forwards sent, branches consumed
//	tA = t0+dF  forward arrives: the destination has processed the query;
//	            its kept remaining-list portion activates
//	tA+dP       the partial result reaches the querier, who merges it into
//	            the incremental NRA immediately (Algorithm 4, mid-cycle)
//	tA+dR       the returned portion reaches the initiator and re-activates
//	            her branch
//
// Destination processing (remaining-list resolution, the partial-list
// computation, the α-split) stays planned against cycle-start state: node
// storage only changes at cycle granularity, so evaluating it at tA would
// read the same profiles — the latency model delays visibility, not
// computation. Traffic is likewise accounted at send time, exactly as in
// the synchronous engine.
//
// Between cycle boundaries the engine pops due events in deterministic
// (time, scheduling order) and applies them sequentially. A branch that
// arrives after the next cycle boundary simply misses that cycle — the
// latency-vs-recall trade-off the model exists to expose — and a query
// settles (reaches recall 1) the moment its last event lands, possibly
// mid-cycle: QueryRun.TimeToFullRecall reports that instant.
//
// Events firing at a departed node freeze (per node, in arrival order) and
// are redelivered at the clock's current time once the node is back online
// — the store-and-forward assumption; the stalled-query lifecycle of the
// synchronous engine carries over unchanged.
//
// Determinism: plans draw from the same per-(cycle, query, initiator)
// split streams as the synchronous path; latency draws come from per-event
// split streams derived in the canonical pair order by the sequential
// scheduling pass; events are pushed and popped in canonical order. Output
// is therefore byte-for-byte identical for every Config.Workers value, and
// a zero-delay model (sim.FixedLatency(0)) reproduces the synchronous
// engine's protocol state exactly — every event of a cycle fires at t0, in
// the canonical pair order, before the next cycle plans.

// eagerEventKind classifies asynchronous delivery events.
type eagerEventKind uint8

const (
	// evDeliverPartial delivers a partial result list to the querier.
	evDeliverPartial eagerEventKind = iota
	// evBranchKeep activates the remaining-list portion the destination
	// kept, once the forwarded query has arrived.
	evBranchKeep
	// evBranchReturn merges the returned remaining-list portion back into
	// the initiator's branch.
	evBranchReturn
)

// eagerEvent is one in-flight message effect of the asynchronous eager
// mode. node is the target whose state the event mutates (querier,
// destination, or initiator); liveness is checked when the event fires.
type eagerEvent struct {
	kind eagerEventKind
	qid  uint64
	node tagging.UserID

	members []tagging.UserID // branch portion (keep / return)
	plist   []topk.Entry     // partial result list (deliver)
	owners  []tagging.UserID // resolved profile owners (deliver)
}

// eagerCycleAsync is EagerCycle under a latency model. Planning and the
// sharded commit are identical to the synchronous path; the differences
// are confined to what happens to a plan's outputs: branch hand-offs and
// partial results become events scheduled by a sequential pass in the
// canonical pair order, and the event pump applies everything due inside
// the cycle's virtual-time window.
func (e *Engine) eagerCycleAsync() {
	t0 := e.now
	t1 := t0 + e.cfg.EagerPeriod
	e.net.SetNow(t0)
	e.replayFrozen()
	seq := e.cycleSeq
	e.cycleSeq++
	pairs := e.eagerPairs()
	e.obs.Add(obs.CGossipsPlanned, uint64(len(pairs)))
	if len(pairs) > 0 {
		sw := hostclock.Start()
		e.forEachNode(func(n *Node) {
			n.digest()
			n.checkEvalCache()
		})
		plans := e.eagerPlanSlots(len(pairs))
		e.forEachIndex(len(pairs), func(i int) {
			e.planEagerGossipInto(pairs[i], seq, &plans[i])
		})
		e.samplePhase(obs.PhasePlan, sw.Elapsed())
		sw = hostclock.Start()
		e.commitSharded(func(sh *commitShard) {
			for i := range plans {
				e.commitEagerGossipShardAsync(&plans[i], sh)
			}
		})
		e.scheduleEagerGossips(plans, seq, t0)
		e.samplePhase(obs.PhaseCommit, sw.Elapsed())
	}
	e.pumpEvents(t1)
	e.endCycleAsync(seq)
	e.now = t1
	e.eagerCycles++
	e.obs.Inc(obs.CEagerCycles)
}

// commitEagerGossipShardAsync applies the shard-owned *immediate* effects
// of one planned gossip: the plan ledger, the initiator's branch
// consumption (the forwarded list left her node at send time), the
// piggybacked maintenance exchange and the gossip timestamps. The two
// branch hand-offs the synchronous committer applies in place — the
// destination's kept portion and the initiator's returned portion — are
// deferred to delivery events (scheduleEagerGossips); everything else
// matches commitEagerGossipShard, including the canonical pair order each
// shard walks.
//
//p3q:phase commit
func (e *Engine) commitEagerGossipShardAsync(p *eagerPlan, sh *commitShard) {
	if sh.owns(p.u) {
		sh.ledger.Merge(&p.ledger)
	}
	if !p.ok {
		return
	}
	u, dest := e.nodes[p.u], e.nodes[p.dest]
	if sh.owns(u.id) {
		// The planned branch was consumed in full at send time; members
		// merged in by events that already fired this window survive via
		// subtraction, exactly as in the synchronous committer.
		next := subtractMembers(u.branches[p.qid], p.branch)
		if len(next) > 0 {
			u.setBranch(p.qid, next)
		} else {
			delete(u.branches, p.qid)
			p.branchEmptied = true
		}
	}

	peerBytes, selfBytes := e.commitTopExchangeShard(u, dest, &p.exch, sh)
	if sh.owns(dest.id) {
		p.peerBytes = peerBytes
	}
	if sh.owns(u.id) {
		p.selfBytes = selfBytes
		u.pnet.Touch(dest.id)
	}
	if sh.owns(dest.id) {
		dest.pnet.ResetTimestamp(u.id)
	}
}

// scheduleEagerGossips is the asynchronous counterpart of
// finalizeEagerGossips: a sequential pass over the cycle's plans in the
// canonical pair order that applies the querier-side bookkeeping resolved
// at send time (traffic, reached-sets, active-branch tracking) and turns
// each plan's deliveries into timestamped events. Latency draws come from
// per-event split streams labelled by (cycle, pair index, message), so the
// schedule is a pure function of the cycle-start state.
func (e *Engine) scheduleEagerGossips(plans []eagerPlan, seq uint64, t0 time.Duration) {
	lrng := e.latRng.Derive(seq)
	for i := range plans {
		p := &plans[i]
		qr := e.queries[p.qid]
		t := p.ledger.Total()
		qr.bytes.Forwarded += t.Bytes[sim.MsgQueryForward]
		qr.bytes.Returned += t.Bytes[sim.MsgQueryReturn]
		qr.bytes.PartialResults += t.Bytes[sim.MsgPartialResult]
		if !p.ok {
			continue
		}
		e.emitEagerHops(p, &t)
		qr.reached[p.dest] = struct{}{}
		qr.bytes.Maintenance += p.exch.ledger.Total().TotalBytes() + p.peerBytes + p.selfBytes

		prng := lrng.Derive(uint64(i))
		frng := prng.Derive(0)
		dF := e.cfg.Latency.Delay(p.u, p.dest, sim.MsgQueryForward, &frng)
		tA := t0 + dF
		if p.delivered {
			drng := prng.Derive(1)
			dP := e.cfg.Latency.Delay(p.dest, qr.Query.Querier, sim.MsgPartialResult, &drng)
			e.scheduleEagerEvent(tA+dP, &eagerEvent{
				kind: evDeliverPartial, qid: p.qid, node: qr.Query.Querier,
				plist: p.plist, owners: p.foundOwners,
			})
		}
		if len(p.keep) > 0 {
			e.scheduleEagerEvent(tA, &eagerEvent{
				kind: evBranchKeep, qid: p.qid, node: p.dest, members: p.keep,
			})
		}
		if len(p.returned) > 0 {
			rrng := prng.Derive(2)
			dR := e.cfg.Latency.Delay(p.dest, p.u, sim.MsgQueryReturn, &rrng)
			e.scheduleEagerEvent(tA+dR, &eagerEvent{
				kind: evBranchReturn, qid: p.qid, node: p.u, members: p.returned,
			})
		}
		if p.branchEmptied {
			delete(qr.activeNodes, p.u)
		} else {
			qr.activeNodes[p.u] = struct{}{}
		}
	}
}

// scheduleEagerEvent enqueues one delivery event and accounts it against
// its query's in-flight counter.
func (e *Engine) scheduleEagerEvent(at time.Duration, ev *eagerEvent) {
	e.queries[ev.qid].inflight++
	e.events.Schedule(at, ev)
	e.obs.Inc(obs.CEventsScheduled)
}

// pumpEvents applies every delivery event due at or before t, in
// deterministic (time, scheduling order). Events firing at a departed node
// freeze and are redelivered after it revives.
func (e *Engine) pumpEvents(t time.Duration) {
	for {
		ev, ok := e.events.PopUntil(t)
		if !ok {
			return
		}
		e.applyEagerEvent(ev.Payload.(*eagerEvent), ev.At)
	}
}

// replayFrozen re-schedules events frozen at nodes that are back online,
// at the current clock, sweeping targets in ascending node order (a
// deterministic order independent of how the map grew). Called at the
// start of every cycle, it covers both Engine.Revive and direct
// Network.SetOnline liveness flips.
func (e *Engine) replayFrozen() {
	if len(e.frozen) == 0 {
		return
	}
	ids := make([]tagging.UserID, 0, len(e.frozen))
	//p3q:orderinvariant collects online keys into ids, which is sorted before use
	for id := range e.frozen {
		if e.net.Online(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, ev := range e.frozen[id] {
			e.events.Schedule(e.now, ev)
			e.obs.Inc(obs.CEventsReplayed)
			e.emitQueryEvent(obs.EvReplayed, ev.qid, e.now, id, 0, 0)
		}
		delete(e.frozen, id)
	}
}

// applyEagerEvent applies one delivery at its arrival time. The target's
// liveness is evaluated now — at arrival — not at send time: a node that
// departed while the message was in flight freezes it for redelivery.
func (e *Engine) applyEagerEvent(ev *eagerEvent, at time.Duration) {
	if !e.net.Online(ev.node) {
		e.frozen[ev.node] = append(e.frozen[ev.node], ev)
		e.obs.Inc(obs.CEventsFrozen)
		e.emitQueryEvent(obs.EvFrozen, ev.qid, at, ev.node, 0, 0)
		return
	}
	qr := e.queries[ev.qid]
	qr.inflight--
	switch ev.kind {
	case evDeliverPartial:
		qr.deliverAsync(ev.plist, ev.owners, at)
	case evBranchKeep, evBranchReturn:
		n := e.nodes[ev.node]
		n.setBranch(ev.qid, mergeUnique(n.branches[ev.qid], ev.members))
		qr.activeNodes[ev.node] = struct{}{}
	}
	qr.maybeSettle(at, e.cycleSeq-1)
}

// deliverAsync merges one arriving partial result list into the
// incremental NRA the moment it lands (Algorithm 4, mid-cycle) and
// refreshes the displayed estimate.
func (qr *QueryRun) deliverAsync(list []topk.Entry, owners []tagging.UserID, at time.Duration) {
	for _, o := range owners {
		qr.used[o] = struct{}{}
	}
	qr.partialMsgs++
	qr.e.obs.Inc(obs.CPartialsDelivered)
	if !qr.hasFirst {
		qr.hasFirst = true
		qr.firstAt = at
		qr.e.emitQueryEvent(obs.EvFirstPartial, qr.ID, at, qr.Query.Querier, 0, 0)
	}
	qr.results = qr.nra.Run([][]topk.Entry{list})
}

// maybeSettle completes the query if no node holds a remaining list and no
// delivery is in flight: the recall-1 moment of §2.2.2, timestamped at the
// arrival that sealed it. seq is the cycle during which it happened, so
// endCycleAsync still counts that cycle as processed.
func (qr *QueryRun) maybeSettle(at time.Duration, seq uint64) {
	if qr.done || qr.inflight > 0 || len(qr.activeNodes) > 0 {
		return
	}
	qr.done = true
	qr.doneAt = at
	qr.settledSeq = seq
	qr.results = qr.nra.Drain()
	qr.e.obs.Inc(obs.CQueriesSettled)
	qr.e.emitQueryEvent(obs.EvSettled, qr.ID, at, qr.Query.Querier, 0, 0)
}

// endCycleAsync closes one asynchronous eager cycle: queries that settled
// during this cycle's window (or are still active) count it in Cycles, and
// active queries refresh their displayed estimate. Stalled queries stay
// frozen, exactly as in the synchronous endCycle; merging happened on
// arrival, so there is no batch to absorb here.
func (e *Engine) endCycleAsync(seq uint64) {
	for _, qid := range e.queryOrder {
		qr := e.queries[qid]
		if qr.done {
			if qr.settledSeq == seq {
				qr.cycles++
			}
			continue
		}
		if qr.Stalled() {
			continue
		}
		qr.cycles++
		qr.results = qr.nra.TopK()
	}
}

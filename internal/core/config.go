// Package core implements P3Q, the fully decentralized gossip-based
// protocol for personalized top-k query processing of Bai, Bertier,
// Guerraoui, Kermarrec and Leroy, "Gossiping Personalized Queries"
// (EDBT 2010).
//
// Every user runs a node that maintains, besides her own tagging profile:
//
//   - a personal network: the s most similar users found so far, with the
//     profiles of the c most similar ones stored locally (§2.1);
//   - a random view of r uniformly sampled peers keeping the overlay
//     connected (bottom gossip layer).
//
// The protocol is bimodal (§2.2): the lazy mode runs periodically at low
// frequency and maintains the personal networks through a 3-step profile
// exchange (Algorithm 1); the eager mode runs on demand, gossiping queries
// along personal networks with remaining-list splitting (Algorithms 2-3)
// while piggybacking the same maintenance, and the querier merges the
// asynchronously arriving partial result lists with an incremental NRA
// (Algorithm 4, package topk).
//
// The Engine type drives a population of nodes cycle by cycle over the sim
// substrate, reproducing PeerSim's cycle-based model used in the paper's
// evaluation.
package core

import (
	"runtime"
	"time"

	"p3q/internal/bloom"
	"p3q/internal/sim"
	"p3q/internal/tagging"
)

// Config holds the protocol and simulation parameters. The defaults follow
// §3.1.2 of the paper scaled down (s=1000 in the paper; experiments here
// default to smaller populations, and every parameter can be raised back to
// paper scale).
type Config struct {
	// S is the personal network size: the number of similar neighbours a
	// user tracks. Paper: 1000.
	S int
	// C is the number of most-similar neighbours whose profiles are stored
	// locally. Paper: 10..1000 depending on scenario. CAssign overrides C
	// per user when non-nil (heterogeneous scenarios of Table 1).
	C       int
	CAssign []int
	// R is the random view size of the peer sampling layer. Paper: 10.
	R int
	// Alpha is the remaining-list split parameter of the eager mode: the
	// fraction of the (unresolved) remaining list sent back to the gossip
	// initiator. Paper: 0.5 is optimal (Theorem 2.2).
	Alpha float64
	// K is the number of results a query returns. Paper: 10.
	K int
	// MaxDigestsPerGossip bounds the profile digests advertised per
	// top-layer exchange. Paper: 50.
	MaxDigestsPerGossip int
	// BloomBits and BloomHashes set the digest geometry. Paper: 20 Kbit.
	BloomBits   int
	BloomHashes int
	// MaxProbes bounds the failed contact attempts a node makes per cycle
	// before giving up (departed destinations, §3.4.2). The paper does not
	// specify a retry policy; 3 keeps stalls short without flooding.
	MaxProbes int
	// DisableEagerBias turns off the eager mode's preference for
	// remaining-list members that are also personal-network neighbours
	// (Algorithm 3 lines 4-6), selecting destinations uniformly from the
	// remaining list instead. Ablation knob; the paper's protocol keeps
	// the bias on.
	DisableEagerBias bool
	// Workers is the number of goroutines the engine uses for the parallel
	// phases of both modes. It sizes the planning pool — lazy cycles plan
	// partner selection, Bloom-digest filtering, common-item scoring and
	// random-view evaluation per online node; eager cycles plan destination
	// selection, remaining-list resolution, partial-list computation, the
	// α-split and the piggybacked maintenance exchange per (initiator,
	// query) gossip — and the commit phase's shard count: the population is
	// partitioned into Workers contiguous node index ranges, and one
	// committer per shard applies exactly its own nodes' intents in the
	// engine's canonical (cycle, pair, role) order. 0 (the default) means
	// runtime.GOMAXPROCS(0); 1 forces fully sequential execution. Shards
	// never share a node and per-shard traffic ledgers are merged in
	// canonical shard order, so every value of Workers produces
	// byte-for-byte identical personal networks, query results and traffic
	// counters.
	Workers int
	// Latency models the one-way delivery delay of every eager-mode query
	// message (forwarded lists, returned portions, partial results). When
	// nil (the default), delivery is synchronous: every effect of a cycle
	// is visible at the cycle boundary, the paper's PeerSim-style round
	// model, and the engine behaves exactly as before the event scheduler
	// existed. When set, EagerCycle runs event-driven: each planned
	// (initiator, query) gossip becomes timestamped delivery events whose
	// arrival times are drawn from the model, queriers merge partial
	// results the moment they arrive (Algorithm 4, incrementally,
	// mid-cycle), branch hand-offs activate at arrival, and queries can
	// settle between cycle boundaries. Messages arriving at a departed
	// node freeze and are redelivered when it revives. Determinism is
	// preserved: all latency randomness comes from per-event split streams
	// drawn in canonical order, so output is byte-for-byte identical for
	// every Workers value, and a zero-delay model reproduces the
	// synchronous engine's protocol state exactly (in-progress top-k
	// bounds of unfinished queries excepted: partial lists merge per
	// arrival instead of per cycle batch). See sim.ParseLatency
	// for the CLI spec syntax.
	Latency sim.LatencyModel
	// EagerPeriod is the virtual time one eager cycle occupies (the
	// paper's deployment assumption in §3.5: 5 seconds). It paces the
	// engine clock that latency-modelled deliveries are scheduled against
	// and that the per-query time-to-first-result / time-to-full-recall
	// metrics are measured on. 0 defaults to 5s.
	EagerPeriod time.Duration
	// LazyPeriod is the virtual time one lazy cycle occupies (§3.5: one
	// minute). 0 defaults to 60s.
	LazyPeriod time.Duration
	// StaticNetworks freezes personal-network membership: gossip still
	// refreshes the digests, scores and stored replicas of existing
	// neighbours, but never admits new ones. This is the §4 explicit
	// social network deployment ("equipping each P3Q user with a
	// pre-defined explicit network as input would be straightforward:
	// only the eager mode of P3Q would suffice") — pair it with
	// SeedExplicitNetworks. Leaving it false over a seeded explicit
	// network yields a hybrid that enriches declared friends with
	// implicit acquaintances.
	StaticNetworks bool
	// Seed feeds all randomness; identical seeds reproduce identical runs.
	Seed uint64
}

// DefaultConfig returns a laptop-scale configuration: s=100, c=10, the
// paper's digest geometry, view size and split parameter.
func DefaultConfig() Config {
	return Config{
		S:                   100,
		C:                   10,
		R:                   10,
		Alpha:               0.5,
		K:                   10,
		MaxDigestsPerGossip: 50,
		BloomBits:           bloom.DefaultBits,
		BloomHashes:         bloom.DefaultHashes,
		MaxProbes:           3,
		Seed:                1,
	}
}

// sanitize clamps nonsensical values so a zero-ish config still runs.
func (c Config) sanitize(users int) Config {
	if c.S < 1 {
		c.S = 1
	}
	if c.C < 0 {
		c.C = 0
	}
	if c.C > c.S {
		c.C = c.S
	}
	if c.R < 1 {
		c.R = 1
	}
	if c.Alpha < 0 {
		c.Alpha = 0
	}
	if c.Alpha > 1 {
		c.Alpha = 1
	}
	if c.K < 1 {
		c.K = 1
	}
	if c.MaxDigestsPerGossip < 1 {
		c.MaxDigestsPerGossip = 1
	}
	if c.BloomBits < 64 {
		c.BloomBits = bloom.DefaultBits
	}
	if c.BloomHashes < 1 {
		c.BloomHashes = bloom.DefaultHashes
	}
	if c.MaxProbes < 1 {
		c.MaxProbes = 1
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EagerPeriod <= 0 {
		c.EagerPeriod = 5 * time.Second
	}
	if c.LazyPeriod <= 0 {
		c.LazyPeriod = time.Minute
	}
	if c.CAssign != nil && len(c.CAssign) != users {
		panic("core: CAssign length does not match the number of users")
	}
	return c
}

// capacityOf returns the storage capacity of user u under this config.
func (c Config) capacityOf(u tagging.UserID) int {
	if c.CAssign != nil {
		cap := c.CAssign[u]
		if cap > c.S {
			cap = c.S
		}
		return cap
	}
	return c.C
}

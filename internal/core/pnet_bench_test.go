package core

import (
	"math/rand"
	"sort"
	"testing"

	"p3q/internal/tagging"
)

// resortPnet is the pre-refactor ranking maintenance, kept as the bench
// baseline: a dirty flag plus a full sort.Slice rebuild on every Rebalance
// (and on every read of a dirty ranking).
type resortPnet struct {
	s, c    int
	entries map[tagging.UserID]*Entry
	ranking []*Entry
	dirty   bool
}

func newResortPnet(s, c int) *resortPnet {
	return &resortPnet{s: s, c: c, entries: make(map[tagging.UserID]*Entry)}
}

func (pn *resortPnet) upsert(id tagging.UserID, score int, digest *tagging.Digest) {
	e := pn.entries[id]
	if e == nil {
		e = &Entry{ID: id, Score: score, Digest: digest}
		pn.entries[id] = e
	} else {
		e.Score = score
		e.Digest = digest
	}
	pn.dirty = true
}

func (pn *resortPnet) rebuild() {
	if !pn.dirty {
		return
	}
	pn.ranking = pn.ranking[:0]
	for _, e := range pn.entries {
		pn.ranking = append(pn.ranking, e)
	}
	sort.Slice(pn.ranking, func(i, j int) bool {
		a, b := pn.ranking[i], pn.ranking[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.ID < b.ID
	})
	pn.dirty = false
}

func (pn *resortPnet) rebalance() (needStore []*Entry) {
	pn.rebuild()
	for len(pn.ranking) > pn.s {
		last := pn.ranking[len(pn.ranking)-1]
		delete(pn.entries, last.ID)
		pn.ranking = pn.ranking[:len(pn.ranking)-1]
	}
	for i, e := range pn.ranking {
		if i < pn.c {
			if !e.StoredFresh() {
				needStore = append(needStore, e)
			}
		} else if e.Stored.Valid() {
			e.Stored = tagging.Snapshot{}
		}
	}
	return needStore
}

// pnetBenchOps synthesizes the commit-phase workload of a converged node at
// s=100: batches of scored upserts (the size of a typical integration)
// followed by a Rebalance, drawing candidates from a pool three times the
// network size.
type pnetBenchOp struct {
	id    tagging.UserID
	score int
}

func pnetBenchOps(n int) ([][]pnetBenchOp, []*tagging.Digest) {
	const pool = 300
	digests := make([]*tagging.Digest, pool+1)
	for id := 1; id <= pool; id++ {
		digests[id] = mkDigest(tagging.UserID(id), 1)
	}
	rng := rand.New(rand.NewSource(1))
	batches := make([][]pnetBenchOp, n)
	for i := range batches {
		batch := make([]pnetBenchOp, 8)
		for j := range batch {
			batch[j] = pnetBenchOp{
				id:    tagging.UserID(1 + rng.Intn(pool)),
				score: 1 + rng.Intn(40),
			}
		}
		batches[i] = batch
	}
	return batches, digests
}

// BenchmarkPnetUpsertRebalance compares the incremental rank-ordered
// personal network against the pre-refactor full-re-sort baseline on the
// same upsert/rebalance stream at s=100 — the structure that shrank the
// sharded commit phase's per-integration cost.
func BenchmarkPnetUpsertRebalance(b *testing.B) {
	batches, digests := pnetBenchOps(512)
	b.Run("incremental-s100", func(b *testing.B) {
		pn := NewPersonalNetwork(0, 100, 10)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range batches[i%len(batches)] {
				pn.Upsert(op.id, op.score, digests[op.id])
			}
			pn.Rebalance()
		}
	})
	b.Run("resort-s100", func(b *testing.B) {
		pn := newResortPnet(100, 10)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range batches[i%len(batches)] {
				pn.upsert(op.id, op.score, digests[op.id])
			}
			pn.rebalance()
		}
	})
}

package core

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"p3q/internal/sim"
	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// Tests for asynchronous eager delivery (Config.Latency): the zero-delay
// equivalence with the synchronous engine, worker-count determinism of the
// event-driven path, mid-cycle settling, and the freeze/replay lifecycle
// of events targeting departed nodes.

// runAsyncEquivWorkload drives a churn-heavy workload to full completion
// (every query done, none stalled at the end) so fingerprints depend only
// on final protocol state, never on in-progress NRA estimates — the
// synchronous engine merges a cycle's partial lists in one batch while the
// asynchronous engine merges per arrival, so interim (not final) top-k
// bounds may legitimately differ.
func runAsyncEquivWorkload(t *testing.T, workers int, lat sim.LatencyModel) string {
	t.Helper()
	cfg := smallCfg()
	cfg.S = 15
	cfg.C = 5
	cfg.Workers = workers
	cfg.Latency = lat
	w := newWorld(t, 120, cfg, 91)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)

	for _, q := range trace.GenerateQueries(w.ds, 6)[:25] {
		e.IssueQuery(q)
	}
	e.RunEager(2)
	killed := e.Kill(0.2)
	if len(killed) == 0 {
		t.Fatal("Kill removed nobody")
	}
	for i := 0; i < 2; i++ {
		e.EagerCycle() // forced: survivors gossip around the holes
	}
	e.RunLazy(2)
	e.Revive(killed)
	if ran := e.RunEager(400); ran >= 400 {
		t.Fatal("workload did not settle within the cycle budget")
	}
	for _, qr := range e.Queries() {
		if !qr.Done() {
			t.Fatalf("query %d not done at the end (state %v); the equivalence workload must complete every query", qr.ID, qr.State())
		}
		if qr.ProfilesUsed() != qr.ProfilesNeeded() {
			t.Fatalf("query %d used %d profiles, needed %d", qr.ID, qr.ProfilesUsed(), qr.ProfilesNeeded())
		}
	}
	return engineFingerprint(e)
}

// syncGoldenFingerprint pins the synchronous engine's mixed-workload
// output as of the introduction of the event scheduler: the Latency=nil
// path must keep reproducing it byte for byte, so the asynchronous
// machinery provably cannot leak into the default configuration. If a
// deliberate protocol or fingerprint-format change breaks this, regenerate
// the constant from sha256(runMixedWorkload(t, 1)).
const syncGoldenFingerprint = "513db530a44d00e06605983b1c43303edbba43d27950b403126010e04588c259"

func TestSyncOutputPinned(t *testing.T) {
	got := fmt.Sprintf("%x", sha256.Sum256([]byte(runMixedWorkload(t, 1))))
	if got != syncGoldenFingerprint {
		t.Fatalf("Latency=nil engine output changed: fingerprint sha256 = %s, pinned %s\n"+
			"(if this change is deliberate, update syncGoldenFingerprint)", got, syncGoldenFingerprint)
	}
}

func TestAsyncZeroLatencyMatchesSync(t *testing.T) {
	// The event-driven engine under a zero-delay model must reproduce the
	// synchronous engine byte for byte: every event of a cycle fires at the
	// cycle-start time in the canonical pair order, before the next cycle
	// plans — so personal networks, branches, query results, traffic
	// counters and the new time metrics all coincide.
	sync := runAsyncEquivWorkload(t, 3, nil)
	async := runAsyncEquivWorkload(t, 3, sim.FixedLatency(0))
	if sync != async {
		t.Fatalf("zero-latency async diverged from synchronous engine:\n%s", firstDiff(sync, async))
	}
}

// runMixedWorkloadLatency is runMixedWorkload with a heavy-tailed latency
// model: lognormal with a 2s median against the 5s eager period, so a
// sizable fraction of deliveries crosses cycle boundaries and some land
// during the lazy phases and churn waves.
func runMixedWorkloadLatency(t *testing.T, workers int) string {
	t.Helper()
	cfg := smallCfg()
	cfg.S = 15
	cfg.C = 5
	cfg.Workers = workers
	cfg.Latency = sim.LogNormalLatency{Median: 2 * time.Second, Sigma: 1.0}
	w := newWorld(t, 120, cfg, 77)
	e := New(w.ds, cfg)
	e.Bootstrap()
	e.RunLazy(8)

	trace.ApplyChanges(w.ds, trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.3, MeanNew: 4, SigmaNew: 0.5, MaxNew: 15, Seed: 9,
	}))
	e.RunLazy(4)

	for _, q := range trace.GenerateQueries(w.ds, 5)[:20] {
		e.IssueQuery(q)
	}
	e.RunEager(2)

	killed := e.Kill(0.25)
	if len(killed) == 0 {
		t.Fatal("Kill removed nobody")
	}
	for i := 0; i < 3; i++ {
		e.EagerCycle()
	}
	e.RunLazy(2)
	e.Revive(killed)
	e.RunEager(20)

	killed = e.Kill(0.25)
	if len(killed) == 0 {
		t.Fatal("second Kill removed nobody")
	}
	e.RunLazy(4)
	e.Revive(killed)
	e.RunLazy(4)

	return engineFingerprint(e)
}

func TestAsyncParallelDeterminism(t *testing.T) {
	// The asynchronous path must stay byte-for-byte identical for every
	// worker count — including the latency draws, the event schedule, the
	// freeze/replay bookkeeping and the per-query time metrics the
	// fingerprint now carries. 7 does not divide 120, so shards of unequal
	// size are covered too. Run under -race in CI.
	want := runMixedWorkloadLatency(t, 1)
	for _, workers := range []int{2, 7, 8} {
		got := runMixedWorkloadLatency(t, workers)
		if got != want {
			t.Fatalf("Workers=%d async run diverged from Workers=1:\n%s", workers, firstDiff(want, got))
		}
	}
}

func TestAsyncQueriesSettleMidCycle(t *testing.T) {
	// With a 1s fixed delay against the 5s period, a gossip planned at t0
	// resolves its partial result at t0+2s: queries settle strictly inside
	// a cycle window, which the synchronous engine cannot express.
	cfg := smallCfg()
	cfg.Latency = sim.FixedLatency(time.Second)
	w := newWorld(t, 120, cfg, 58)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, ok := trace.QueryFor(w.ds, 5, 3)
	if !ok {
		t.Fatal("no query for user 5")
	}
	qr := e.IssueQuery(q)
	if qr.Done() {
		t.Fatal("query finished locally; scenario too weak")
	}
	e.RunEager(200)
	if !qr.Done() {
		t.Fatal("query did not complete")
	}
	tfull, ok := qr.TimeToFullRecall()
	if !ok {
		t.Fatal("completed query reports no time-to-full-recall")
	}
	if tfull%e.Config().EagerPeriod == 0 {
		t.Fatalf("time-to-full-recall %v lies on a cycle boundary; expected a mid-cycle settle", tfull)
	}
	t1st, ok := qr.TimeToFirstResult()
	if !ok {
		t.Fatal("completed query reports no time-to-first-result")
	}
	if t1st <= 0 || t1st > tfull {
		t.Fatalf("time-to-first-result %v outside (0, %v]", t1st, tfull)
	}
	// Fixed 1s hops: the first partial result needs forward + partial
	// delivery, i.e. exactly 2s after the first gossip cycle started.
	if t1st != 2*time.Second {
		t.Fatalf("time-to-first-result = %v, want 2s (forward 1s + partial 1s)", t1st)
	}
	want := exactReference(e, q, cfg.K)
	got := qr.Results()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %v, want %v (exact baseline)", i, got[i], want[i])
		}
	}
}

func TestAsyncFrozenPartialRedelivery(t *testing.T) {
	// A partial result in flight toward a querier who departs before it
	// arrives must freeze — not deliver, not vanish — and be redelivered
	// when the querier revives, so the query still reaches full recall.
	cfg := smallCfg()
	cfg.Latency = sim.FixedLatency(7 * time.Second) // > EagerPeriod: every delivery crosses a cycle boundary
	w := newWorld(t, 120, cfg, 57)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, ok := trace.QueryFor(w.ds, 3, 14)
	if !ok {
		t.Fatal("no query for user 3")
	}
	qr := e.IssueQuery(q)
	e.RunEager(2)
	if qr.Done() {
		t.Fatal("query finished before the churn could hit; weaken the head start")
	}
	if qr.InFlight() == 0 {
		t.Fatal("nothing in flight after two cycles; scenario too weak to test freezing")
	}

	e.Network().SetOnline(q.Querier, false)
	used := qr.ProfilesUsed()
	msgs := qr.PartialResultMessages()
	for i := 0; i < 6; i++ {
		e.EagerCycle() // forced: in-flight deliveries fire and must freeze
	}
	if qr.ProfilesUsed() != used || qr.PartialResultMessages() != msgs {
		t.Fatal("partial results were delivered to a departed querier")
	}
	if len(e.frozen[q.Querier]) == 0 {
		t.Fatal("no event froze at the departed querier")
	}
	if !qr.Stalled() {
		t.Fatalf("query state = %v, want stalled", qr.State())
	}

	e.Revive([]tagging.UserID{q.Querier})
	e.RunEager(400)
	if !qr.Done() {
		t.Fatal("query did not complete after the querier revived")
	}
	if len(e.frozen[q.Querier]) != 0 {
		t.Fatal("frozen events were not replayed on revival")
	}
	if qr.ProfilesUsed() != qr.ProfilesNeeded() {
		t.Fatalf("profiles used %d != needed %d: a frozen partial result was lost",
			qr.ProfilesUsed(), qr.ProfilesNeeded())
	}
	want := exactReference(e, q, cfg.K)
	got := qr.Results()
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("results diverge from exact baseline after redelivery: got %v want %v", got, want)
		}
	}
}

func TestAsyncFrozenBranchEventsReplay(t *testing.T) {
	// Branch hand-offs (kept and returned remaining-list portions) in
	// flight toward nodes that depart mid-delivery must freeze and replay
	// too: after a churn wave strikes a query burst under high latency,
	// reviving everyone must still drive every query to full recall.
	cfg := smallCfg()
	cfg.S = 15
	cfg.C = 5
	cfg.Latency = sim.UniformLatency{Min: 2 * time.Second, Max: 12 * time.Second}
	w := newWorld(t, 120, cfg, 77)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	for _, q := range trace.GenerateQueries(w.ds, 5)[:20] {
		e.IssueQuery(q)
	}
	e.RunEager(2)
	killed := e.Kill(0.4)
	if len(killed) == 0 {
		t.Fatal("Kill removed nobody")
	}
	for i := 0; i < 4; i++ {
		e.EagerCycle() // in-flight events aimed at the dead fire and freeze
	}
	total := 0
	for _, evs := range e.frozen {
		total += len(evs)
	}
	if total == 0 {
		t.Fatal("no event froze at a departed node; scenario too weak")
	}

	e.Revive(killed)
	if ran := e.RunEager(600); ran >= 600 {
		t.Fatal("queries did not settle after full revival")
	}
	for _, qr := range e.Queries() {
		if !qr.Done() {
			t.Fatalf("query %d not done after revival (state %v)", qr.ID, qr.State())
		}
		if qr.ProfilesUsed() != qr.ProfilesNeeded() {
			t.Fatalf("query %d used %d profiles, needed %d: a frozen branch event was lost",
				qr.ID, qr.ProfilesUsed(), qr.ProfilesNeeded())
		}
	}
	if e.PendingEvents() != 0 || len(e.frozen) != 0 {
		t.Fatalf("leftover events after completion: %d pending, %d frozen targets",
			e.PendingEvents(), len(e.frozen))
	}
}

func TestAsyncStalledQueryFrozenCounters(t *testing.T) {
	// The synchronous stall contract carries over: while the querier is
	// away the query burns no traffic of its own and its cycle counter
	// freezes, and RunEager does not spin on a stalled-only engine.
	cfg := smallCfg()
	cfg.Latency = sim.FixedLatency(500 * time.Millisecond)
	w := newWorld(t, 120, cfg, 58)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, ok := trace.QueryFor(w.ds, 5, 3)
	if !ok {
		t.Fatal("no query for user 5")
	}
	qr := e.IssueQuery(q)
	e.RunEager(1)
	if qr.Done() {
		t.Fatal("query finished before the churn could hit")
	}
	// Let the in-flight deliveries of the head start land first (500ms
	// hops stay within the window), then stall the querier.
	e.Network().SetOnline(q.Querier, false)
	if qr.State() != QueryStalled {
		t.Fatalf("state = %v, want stalled", qr.State())
	}
	if ran := e.RunEager(50); ran != 0 {
		t.Fatalf("RunEager ran %d cycles for a stalled-only query, want 0", ran)
	}
	cycles, bytes := qr.Cycles(), qr.Bytes()
	e.EagerCycle()
	if qr.Cycles() != cycles {
		t.Fatal("stalled query advanced its cycle count")
	}
	if qr.Bytes() != bytes {
		t.Fatal("stalled query generated traffic")
	}

	e.Network().SetOnline(q.Querier, true)
	e.RunEager(400)
	if !qr.Done() || qr.State() != QueryDone {
		t.Fatalf("query did not finish after revival (state %v)", qr.State())
	}
	if qr.ProfilesUsed() != qr.ProfilesNeeded() {
		t.Fatalf("profiles used %d != needed %d after revival", qr.ProfilesUsed(), qr.ProfilesNeeded())
	}
}

func TestAsyncClockAdvances(t *testing.T) {
	cfg := smallCfg()
	cfg.Latency = sim.FixedLatency(time.Second)
	w := newWorld(t, 50, cfg, 3)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	if e.Now() != 0 {
		t.Fatalf("fresh engine clock = %v, want 0", e.Now())
	}
	e.EagerCycle()
	if e.Now() != e.Config().EagerPeriod {
		t.Fatalf("clock after one eager cycle = %v, want %v", e.Now(), e.Config().EagerPeriod)
	}
	e.LazyCycle()
	want := e.Config().EagerPeriod + e.Config().LazyPeriod
	if e.Now() != want {
		t.Fatalf("clock after eager+lazy = %v, want %v", e.Now(), want)
	}
}

package core

import (
	"sort"

	"p3q/internal/gossip"
	"p3q/internal/randx"
	"p3q/internal/sim"
	"p3q/internal/tagging"
)

// This file implements the lazy mode of §2.2.1: the bottom-layer peer
// sampling exchange and the top-layer 3-step profile exchange of
// Algorithm 1 that discovers and maintains personal networks.
//
// Both layers run in a plan/commit design so a lazy cycle can use every
// core — in both halves of the cycle — while staying byte-for-byte
// deterministic:
//
//   - plan: a worker pool runs the read-heavy phase for every online node
//     concurrently — partner selection, Bloom-digest filtering, common-item
//     scoring, random-view evaluation — producing a per-node intent plus a
//     sim.Ledger of the messages the node would send. Planners read only
//     the cycle-start state and draw randomness from per-(cycle, node)
//     split streams, so each plan is a pure function of the cycle-start
//     state regardless of goroutine scheduling.
//   - commit: the population is partitioned into Workers contiguous node
//     index shards, and one committer per shard walks every plan in the
//     engine's canonical permutation order, applying only the effects that
//     target its own nodes (commitShard in engine.go). A pair's effects
//     decompose into per-node intents — the initiator's view merge,
//     timestamp resets, own-side integration, gossip touch and random-view
//     contacts; the partner's view merge, peer-side integration and
//     timestamp reset — and every effect mutates only its target node
//     (cross-node inputs — profiles, normalized digests, liveness — are
//     frozen during the commit phase), so shards never contend. Commit-time
//     traffic (step-2/step-3 messages, which depend on the committed
//     network) is recorded in per-shard ledgers that are merged into the
//     network in canonical shard order after the parallel phase. Each
//     node's intents land in the same canonical (cycle, pair, role) order
//     for every worker count, so the output stays byte-for-byte identical.
//
// The eager mode runs on the same primitives: EagerCycle (eager.go) plans
// every (initiator, query) gossip concurrently — including the piggybacked
// top-layer maintenance exchange, planned through planTopExchange below —
// and commits through the same sharded committers in the canonical pair
// order.

// Randomness purposes of the planning phases. Each planner derives its
// streams by splitting node sources with a label that encodes the cycle
// sequence number, the purpose, and (for partner-side streams) the
// initiator, so no two derived streams in the history of a run coincide
// and no planner ever advances a shared source. The eager purposes are
// additionally split per query (see eagerStream in eager.go).
const (
	purposeView          uint64 = iota // initiator's bottom-layer stream
	purposeViewReply                   // partner's bottom-layer stream
	purposeTop                         // initiator's top-layer stream
	purposeTopReply                    // partner's top-layer stream
	purposeEagerDest                   // initiator's destination-selection stream
	purposeEagerSplit                  // destination's remaining-list split stream
	purposeEagerAdv                    // initiator's piggybacked advertise stream
	purposeEagerAdvReply               // destination's piggybacked advertise stream
)

// planLabel packs (cycle sequence, purpose, peer) into a unique split
// label: peer occupies the low 32 bits, the purpose the next 3, and the
// cycle sequence the rest. Initiator-side streams use peer 0.
func planLabel(seq, purpose uint64, peer tagging.UserID) uint64 {
	return seq<<35 | purpose<<32 | uint64(peer)
}

// viewPlan is one node's planned bottom-layer exchange: the selected
// partner, both send buffers (computed against the cycle-start views), the
// split streams the commit-time merges will draw from, and the message
// ledger. Plans live in the engine's pooled vplans slice: every field is
// either a value re-initialized per cycle or a scratch buffer that reuses
// its capacity, so a steady-state cycle plans without allocating.
type viewPlan struct {
	used       bool // false: slot idle this cycle (offline node or empty view)
	ledger     sim.Ledger
	partner    tagging.UserID
	dead       bool // partner departed: drop it from the view
	bufA, bufB []gossip.Descriptor
	smpA, smpB randx.Sampler
	rngA, rngB randx.Source
}

// planViewInto plans one bottom-layer gossip for node a into the pooled
// plan slot p: pick a uniform partner from the random view, swap r digests,
// re-sample both views. The slot stays unused when the view is empty.
//
//p3q:phase plan
//p3q:hotpath
func (e *Engine) planViewInto(a *Node, seq uint64, p *viewPlan) {
	p.used = false
	p.rngA = a.rng.Derive(planLabel(seq, purposeView, 0))
	rng := &p.rngA
	d, ok := a.view.SelectPartner(rng)
	if !ok {
		return
	}
	p.used = true
	p.dead = false
	p.partner = d.Node
	e.net.InitLedger(&p.ledger)
	if !e.net.Online(d.Node) {
		p.ledger.Send(a.id, d.Node, sim.MsgProbe, 0) // records the failed attempt
		// Departed contact: drop it so the view heals (§3.4.2).
		p.dead = true
		return
	}
	b := e.nodes[d.Node]
	p.rngB = b.rng.Derive(planLabel(seq, purposeViewReply, a.id))
	p.bufA = a.view.SendBufferInto(a.descriptor(), rng, p.bufA, &p.smpA)
	p.bufB = b.view.SendBufferInto(b.descriptor(), &p.rngB, p.bufB, &p.smpB)
	p.ledger.Send(a.id, d.Node, sim.MsgRandomView, descriptorsWireSize(p.bufA))
	p.ledger.Send(d.Node, a.id, sim.MsgRandomView, descriptorsWireSize(p.bufB))
}

// commitViewShard applies the shard-owned effects of one planned
// bottom-layer exchange: the plan ledger and the initiator-side view merge
// (or dead-partner removal) belong to a's shard, the partner-side merge to
// the partner's shard.
//
//p3q:phase commit
func (e *Engine) commitViewShard(a *Node, p *viewPlan, sh *commitShard) {
	if !p.used {
		return
	}
	if sh.owns(a.id) {
		sh.ledger.Merge(&p.ledger)
	}
	if p.dead {
		if sh.owns(a.id) {
			a.view.Remove(p.partner)
		}
		return
	}
	if sh.owns(a.id) {
		a.view.Merge(p.bufB, &p.rngA)
	}
	if sh.owns(p.partner) {
		e.nodes[p.partner].view.Merge(p.bufA, &p.rngB)
	}
}

// requestBytes is the size charged for a bare "send me X" request message.
const requestBytes = 8

// sortEntriesByAge stable-sorts entries by decreasing gossip age,
// preserving the incoming order among ties.
func sortEntriesByAge(entries []Entry) {
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Age() > entries[j].Age()
	})
}

// descriptorsWireSize is the wire size of a peer-sampling buffer: one
// digest per descriptor.
func descriptorsWireSize(ds []gossip.Descriptor) int {
	b := 0
	for _, d := range ds {
		b += d.Digest.SizeBytes()
	}
	return b
}

// rvContact is one planned random-view evaluation: either a pure
// evaluated-cache update (digest shares no item) or a direct contact with
// the planned integration of the owner's fresh offer. Contacts live in the
// owning topPlan's pooled rv slice, so the embedded integration's buffers
// survive from cycle to cycle (see topPlan.nextRV).
type rvContact struct {
	owner    tagging.UserID
	evalOnly bool
	version  int
	intent   integration
}

// topPlan is one node's planned top-layer gossip plus random-view
// evaluation: the probes spent finding an online partner, the symmetric
// 3-step exchange planned for both sides, and the random-view contacts.
// Like viewPlan, topPlans are pooled engine slots: every sub-plan is
// embedded by value and every buffer — including the rv slots' integration
// buffers and the seen overlay map — is reused across cycles.
type topPlan struct {
	used   bool // false: slot idle this cycle (offline node)
	ledger sim.Ledger
	resets []tagging.UserID // departed partners probed: reset their timestamps

	partner tagging.UserID
	ok      bool
	exch    exchangePlan // the symmetric 3-step exchange with the partner

	rv []rvContact

	// Plan-phase scratch.
	partners []Entry                // PartnersByAge buffer
	seen     map[tagging.UserID]int // evaluated-cache overlay, cleared per cycle
	oneOffer [1]offer               // backing array for single-offer integrations
}

// nextRV appends one rv slot and returns it, re-exposing a previous cycle's
// slot (with its integration buffers intact) when capacity allows. The
// caller must set every field it relies on: the slot's content is stale.
//
//p3q:hotpath
func (p *topPlan) nextRV() *rvContact {
	if len(p.rv) < cap(p.rv) {
		p.rv = p.rv[:len(p.rv)+1]
	} else {
		p.rv = append(p.rv, rvContact{})
	}
	return &p.rv[len(p.rv)-1]
}

// planTopInto plans one top-layer gossip for node a into the pooled plan
// slot p — select the personal network neighbour with the oldest timestamp
// (retrying past departed ones up to MaxProbes) and the symmetric 3-step
// profile exchange with her — and the scoring of a's random-view candidates
// (§2.2.1).
//
//p3q:phase plan
func (e *Engine) planTopInto(a *Node, seq uint64, p *topPlan) {
	p.used = true
	p.ok = false
	p.resets = p.resets[:0]
	p.rv = p.rv[:0]
	e.net.InitLedger(&p.ledger)
	rng := a.rng.Derive(planLabel(seq, purposeTop, 0))

	p.partners = a.pnet.AppendPartnersByAge(p.partners)
	partners := p.partners
	// Equal timestamps (common right after bootstrap) are tried in random
	// order so the first cycles do not all hit the lowest IDs.
	rng.Shuffle(len(partners), func(i, j int) { partners[i], partners[j] = partners[j], partners[i] })
	sortEntriesByAge(partners)
	var b *Node
	probes := 0
	for _, pe := range partners {
		if probes >= e.cfg.MaxProbes {
			break
		}
		if !e.net.Online(pe.ID) {
			p.ledger.Send(a.id, pe.ID, sim.MsgProbe, 0)
			probes++
			// Keep the entry (her profile stays meaningful, §3.4.2) but
			// reset the timestamp so other neighbours are tried first in
			// the following cycles.
			p.resets = append(p.resets, pe.ID)
			continue
		}
		b = e.nodes[pe.ID]
		break
	}

	// seen overlays the evaluated cache with the versions this plan already
	// scored, so the random-view pass below does not re-contact an owner
	// the top exchange just integrated.
	if p.seen == nil {
		p.seen = make(map[tagging.UserID]int)
	} else {
		clear(p.seen)
	}
	seen := p.seen
	if b != nil {
		p.partner, p.ok = b.id, true
		brng := b.rng.Derive(planLabel(seq, purposeTopReply, a.id))
		e.planTopExchangeInto(&p.exch, a, b, &rng, &brng, seen)
	}

	// Random-view evaluation: score the members whose digests indicate at
	// least one shared item, contacting them directly for their fresh
	// profiles (§2.2.1: "The profile of vj is obtained by directly
	// contacting vj if Digest(vj) contains at least one item tagged by ui").
	for _, d := range a.view.Entries() {
		if d.Node == a.id {
			continue
		}
		v, known := a.evaluated[d.Node]
		if sv, ok := seen[d.Node]; ok && (!known || sv > v) {
			v, known = sv, true
		}
		if known && v >= d.Digest.Version {
			continue
		}
		entry := a.pnet.Entry(d.Node)
		if entry != nil && entry.Digest.Version >= d.Digest.Version {
			continue
		}
		if entry == nil && e.cfg.StaticNetworks {
			continue // membership frozen: no point contacting non-members
		}
		if !d.Digest.SharesItemWith(a.profile) {
			seen[d.Node] = d.Digest.Version
			c := p.nextRV()
			c.owner, c.evalOnly, c.version = d.Node, true, d.Digest.Version
			continue
		}
		if !e.net.Online(d.Node) {
			p.ledger.Send(a.id, d.Node, sim.MsgProbe, 0)
			continue
		}
		// Direct contact: the owner serves a fresh offer of her own
		// profile. The initiating request is charged symmetrically to
		// fetchFromOwner; the response carries the fresh digest (§3.3).
		owner := e.nodes[d.Node]
		p.oneOffer[0] = offer{digest: owner.digest(), snap: owner.profile.Snapshot()}
		p.ledger.Send(a.id, d.Node, sim.MsgTopDigest, requestBytes)
		p.ledger.Send(d.Node, a.id, sim.MsgTopDigest, p.oneOffer[0].digest.SizeBytes())
		c := p.nextRV()
		c.owner, c.evalOnly, c.version = d.Node, false, 0
		planIntegrateInto(&c.intent, a, p.oneOffer[:], d.Node, seen)
	}
}

// commitTopShard applies the shard-owned effects of one planned top-layer
// gossip in the canonical role order: probe ledger and timestamp resets
// (initiator), the partner exchange (split across both shards), the gossip
// timestamps, and the random-view contacts (initiator).
//
//p3q:phase commit
func (e *Engine) commitTopShard(a *Node, p *topPlan, sh *commitShard) {
	if !p.used {
		return
	}
	ownA := sh.owns(a.id)
	if ownA {
		sh.ledger.Merge(&p.ledger)
		for _, id := range p.resets {
			a.pnet.ResetTimestamp(id)
		}
	}
	if p.ok {
		b := e.nodes[p.partner]
		e.commitTopExchangeShard(a, b, &p.exch, sh)
		if ownA {
			a.pnet.Touch(p.partner)
		}
		if sh.owns(b.id) {
			b.pnet.ResetTimestamp(a.id)
		}
	}
	if ownA {
		for i := range p.rv {
			c := &p.rv[i]
			if c.evalOnly {
				a.checkEvalCache()
				a.evaluated[c.owner] = c.version
				continue
			}
			a.commitIntegration(&c.intent, &sh.ledger)
		}
	}
}

// exchangePlan is one planned symmetric top-layer exchange between two
// online nodes (Algorithm 3, "maintain personal network as in lazy mode",
// and the partner half of planTop): both sides' step-1 digest messages,
// the ablation side ledger, and the planned integrations of what each side
// received. Steps 2-3 resolve at commit time through commitIntegration.
type exchangePlan struct {
	ledger  sim.Ledger
	naive   uint64      // 3-step ablation ledger contribution
	intPeer integration // b's integration of a's offers
	intSelf integration // a's integration of b's offers

	// Plan-phase scratch: the advertised offer batches (their content is
	// consumed by the sends, the ablation ledger and the integrations above,
	// which copy what they keep), plus the stored-entry collection buffer
	// and sampling scratch shared by both advertise calls (they run
	// sequentially within this plan).
	offersA, offersB []offer
	storedBuf        []*Entry
	smp              randx.Sampler
}

// planTopExchangeInto plans the symmetric top-layer exchange between two
// online nodes into the pooled plan p: both sides advertise digests (step 1)
// and the received batches are scored against cycle-start state. The
// advertising randomness is passed in explicitly so both the lazy and the
// eager planners can derive per-cycle split streams; seen optionally
// overlays versions the caller's plan has already scored on a's side (the
// lazy planner shares it with its random-view pass).
//
//p3q:phase plan
//p3q:hotpath
func (e *Engine) planTopExchangeInto(p *exchangePlan, a, b *Node, rngA, rngB *randx.Source, seen map[tagging.UserID]int) {
	e.net.InitLedger(&p.ledger)
	p.offersA, p.storedBuf = a.advertiseInto(rngA, p.offersA, p.storedBuf, &p.smp)
	p.offersB, p.storedBuf = b.advertiseInto(rngB, p.offersB, p.storedBuf, &p.smp)
	p.ledger.Send(a.id, b.id, sim.MsgTopDigest, offersWireSize(p.offersA))
	p.ledger.Send(b.id, a.id, sim.MsgTopDigest, offersWireSize(p.offersB))
	p.naive = naiveOffersBytes(p.offersA) + naiveOffersBytes(p.offersB)
	planIntegrateInto(&p.intPeer, b, p.offersA, a.id, nil)
	planIntegrateInto(&p.intSelf, a, p.offersB, b.id, seen)
}

// commitTopExchangeShard applies the shard-owned effects of a planned
// exchange: the step-1 ledger and the ablation side ledger (charged to a's
// shard), b's integration of a's offers (b's shard) and a's integration of
// b's offers (a's shard). It returns the commit-resolved step-2/step-3
// traffic of each integration — each value is only meaningful in the shard
// owning the respective node — so the eager finalize pass can attribute
// piggybacked maintenance bytes per query.
//
//p3q:phase commit
func (e *Engine) commitTopExchangeShard(a, b *Node, p *exchangePlan, sh *commitShard) (peerBytes, selfBytes uint64) {
	if sh.owns(a.id) {
		sh.ledger.Merge(&p.ledger)
		sh.naive += p.naive
	}
	if sh.owns(b.id) {
		mark := sh.ledger.Len()
		b.commitIntegration(&p.intPeer, &sh.ledger)
		peerBytes = sh.ledger.BytesSince(mark)
	}
	if sh.owns(a.id) {
		mark := sh.ledger.Len()
		a.commitIntegration(&p.intSelf, &sh.ledger)
		selfBytes = sh.ledger.BytesSince(mark)
	}
	return peerBytes, selfBytes
}

// naiveOffersBytes is the 3-step-ablation side ledger for one offer batch:
// what a naive protocol shipping every advertised profile in full would
// have cost.
func naiveOffersBytes(offers []offer) uint64 {
	var b uint64
	for _, o := range offers {
		b += uint64(tagging.ActionsWireSize(o.snap.Len()))
	}
	return b
}

// integration is the planned outcome of one node integrating a batch of
// received profile advertisements: the exact similarity scores and message
// sizes of steps 1-2 of Algorithm 1. Step 3 (profile storage) depends on
// the personal network as committed, so it is resolved at commit time.
// Integrations are embedded by value in their owning plan slots and
// re-initialized in place by planIntegrateInto; the common/actions scratch
// buffers persist across cycles.
type integration struct {
	ok        bool // false: every offer was filtered out, nothing to commit
	provider  tagging.UserID
	results   []intResult
	reqBytes  int
	respBytes int

	// Step-2 scratch, reused per offer.
	common  []tagging.ItemID
	actions []tagging.Action
}

// intResult is one scored offer inside an integration. applied is written
// at commit time (like eagerPlan.branchEmptied): it marks the results whose
// upsert landed, replacing the per-commit membership map the step-3 loop
// used to allocate.
type intResult struct {
	o        offer
	score    int
	received int  // actions transferred in step 2 (for the step-3 discount)
	version  int  // evaluated-cache update for the offer's owner
	applied  bool // commit-time: upsert landed, offer's snapshot is storable
}

// planIntegrateInto computes the read-only part of Algorithm 1 for a batch
// of offers received by n from provider, into the caller's pooled
// integration slot:
//
//	step 1 (lines 1-15):  filter digests — drop unchanged/known versions and
//	                      owners sharing no item with the own profile;
//	step 2 (lines 16-26): fetch the tagging actions on common items and
//	                      compute exact similarity scores.
//
// It reads only n's cycle-start state (plus the optional seen overlay of
// versions already scored by the same plan) and mutates nothing but the
// slot, so any number of planners may run it concurrently — including two
// planners integrating into the same n. The slot's ok flag is false when
// every offer is filtered out (no step-2 messages are exchanged then).
//
//p3q:phase plan
//p3q:hotpath
func planIntegrateInto(it *integration, n *Node, offers []offer, provider tagging.UserID, seen map[tagging.UserID]int) {
	it.provider = provider
	it.results = it.results[:0]
	it.reqBytes, it.respBytes = 0, 0
	for _, o := range offers {
		owner := o.digest.Owner
		if owner == n.id {
			continue
		}
		v, known := n.evaluated[owner]
		if sv, ok := seen[owner]; ok && (!known || sv > v) {
			v, known = sv, true
		}
		if known && v >= o.digest.Version {
			continue // already scored at this or a newer version
		}
		if entry := n.pnet.Entry(owner); entry != nil {
			if entry.Digest.Version >= o.digest.Version {
				continue // digest does not change (or is older than known)
			}
		} else if n.e.cfg.StaticNetworks {
			continue // membership frozen: never admit new neighbours
		} else if !o.digest.SharesItemWith(n.profile) {
			continue // no common item: does not qualify (Algorithm 1, line 10)
		}
		// Step 2: request the actions on common items and compute the
		// exact score.
		it.common = appendCommonItems(it.common, n.profile, o.digest)
		it.reqBytes += tagging.ItemsWireSize(len(it.common))
		it.actions = o.snap.AppendActionsOnItems(it.actions, it.common)
		it.respBytes += tagging.ActionsWireSize(len(it.actions))
		score := 0
		for _, a := range it.actions {
			if n.profile.Has(a.Item, a.Tag) {
				score++
			}
		}
		if seen != nil {
			seen[owner] = o.digest.Version
		}
		it.results = append(it.results, intResult{o: o, score: score, received: len(it.actions), version: o.digest.Version})
	}
	it.ok = len(it.results) > 0
}

// commitIntegration applies a planned integration: the evaluated-cache
// updates and step-2 traffic, the personal-network upserts (top-s, positive
// scores), and step 3 (lines 27-31) — fetch and store the full profiles of
// neighbours entering the top-c. Messages are recorded in l (the committing
// shard's ledger) rather than sent on the network directly, so shard
// committers stay free of shared counters; only n's own state is mutated,
// and the cross-node reads (owner profiles and digests) are frozen during
// the commit phase.
//
//p3q:phase commit
//p3q:hotpath
func (n *Node) commitIntegration(it *integration, l *sim.Ledger) {
	if !it.ok {
		return
	}
	n.checkEvalCache()
	// Two integrations planned against the same cycle-start state may
	// score the same owner at different versions (two initiators gossiped
	// with n); the commits must never downgrade state a newer-version
	// integration already applied, or the evaluated memo's "highest
	// version scored" contract (and score monotonicity) breaks.
	for _, r := range it.results {
		if v, ok := n.evaluated[r.o.digest.Owner]; !ok || r.version > v {
			n.evaluated[r.o.digest.Owner] = r.version
		}
	}
	l.Send(n.id, it.provider, sim.MsgCommonItems, it.reqBytes)
	l.Send(it.provider, n.id, sim.MsgCommonItems, it.respBytes)

	// Update the personal network: keep the s highest positive scores. The
	// applied flags mark which results landed, so the step-3 loop below can
	// match rebalanced entries to their batch offers with a linear scan over
	// the (small) result set instead of a per-commit map.
	for i := range it.results {
		r := &it.results[i]
		r.applied = false
		if r.score <= 0 {
			continue
		}
		if entry := n.pnet.Entry(r.o.digest.Owner); entry != nil && entry.Digest.Version > r.version {
			continue // a fresher same-cycle commit already landed
		}
		n.pnet.Upsert(r.o.digest.Owner, r.score, r.o.digest)
		r.applied = true
	}

	// Step 3: store the profiles of neighbours entering the top-c.
	profBytes := 0
	var directFetch []*Entry
	for _, entry := range n.pnet.Rebalance() {
		var r *intResult
		for i := range it.results {
			if it.results[i].applied && it.results[i].o.digest.Owner == entry.ID {
				r = &it.results[i]
				break
			}
		}
		if r != nil {
			entry.Stored = r.o.snap
			rest := r.o.snap.Len() - r.received
			if rest < 0 {
				rest = 0
			}
			profBytes += tagging.ActionsWireSize(rest)
		} else {
			// The entry re-entered the top-c without being advertised in
			// this batch (it was pushed out of storage earlier): fetch
			// directly from the owner.
			directFetch = append(directFetch, entry)
		}
	}
	if profBytes > 0 {
		l.Send(it.provider, n.id, sim.MsgProfile, profBytes)
	}
	for _, entry := range directFetch {
		n.fetchFromOwner(entry, l)
	}
}

// fetchFromOwner retrieves a neighbour's full fresh profile directly from
// its owner (used for random-view candidates and for re-entering top-c
// entries), recording the messages in l. It is a no-op if the owner has
// departed. The owner's profile and normalized digest are read-only during
// the commit phase, so this is safe from any shard committer.
//
//p3q:phase commit
func (n *Node) fetchFromOwner(entry *Entry, l *sim.Ledger) {
	if !n.e.net.Online(entry.ID) {
		l.Send(n.id, entry.ID, sim.MsgProbe, 0) // records the probe
		return
	}
	owner := n.e.nodes[entry.ID]
	snap := owner.profile.Snapshot()
	l.Send(n.id, entry.ID, sim.MsgCommonItems, requestBytes)
	l.Send(entry.ID, n.id, sim.MsgProfile, tagging.ActionsWireSize(snap.Len()))
	entry.Stored = snap
	entry.Digest = owner.digest()
}

// appendCommonItems appends the items of p that the digest may contain —
// the common-item estimate of Algorithm 1 (false positives possible at the
// Bloom filter's rate, false negatives never) — into dst (reusing its
// capacity) and returns it.
//
//p3q:hotpath
func appendCommonItems(dst []tagging.ItemID, p *tagging.Profile, d *tagging.Digest) []tagging.ItemID {
	dst = dst[:0]
	for _, it := range p.Items() {
		if d.MightContainItem(it) {
			dst = append(dst, it)
		}
	}
	return dst
}

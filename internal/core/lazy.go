package core

import (
	"sort"

	"p3q/internal/gossip"
	"p3q/internal/sim"
	"p3q/internal/tagging"
)

// This file implements the lazy mode of §2.2.1: the bottom-layer peer
// sampling exchange and the top-layer 3-step profile exchange of
// Algorithm 1 that discovers and maintains personal networks.

// viewExchange runs one bottom-layer gossip for node a: pick a uniform
// partner from the random view, swap r digests, re-sample both views.
func (e *Engine) viewExchange(a *Node) {
	d, ok := a.view.SelectPartner(a.rng)
	if !ok {
		return
	}
	if !e.net.Online(d.Node) {
		e.net.Send(a.id, d.Node, sim.MsgProbe, 0) // records the failed attempt
		// Departed contact: drop it so the view heals (§3.4.2).
		a.view.Remove(d.Node)
		return
	}
	b := e.nodes[d.Node]
	bufA := a.view.SendBuffer(a.descriptor(), a.rng)
	bufB := b.view.SendBuffer(b.descriptor(), b.rng)
	e.net.Send(a.id, d.Node, sim.MsgRandomView, descriptorsWireSize(bufA))
	e.net.Send(d.Node, a.id, sim.MsgRandomView, descriptorsWireSize(bufB))
	a.view.Merge(bufB, a.rng)
	b.view.Merge(bufA, b.rng)
}

// requestBytes is the size charged for a bare "send me X" request message.
const requestBytes = 8

// sortEntriesByAge stable-sorts entries by decreasing timestamp, preserving
// the incoming order among ties.
func sortEntriesByAge(entries []*Entry) {
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Timestamp > entries[j].Timestamp
	})
}

// descriptorsWireSize is the wire size of a peer-sampling buffer: one
// digest per descriptor.
func descriptorsWireSize(ds []gossip.Descriptor) int {
	b := 0
	for _, d := range ds {
		b += d.Digest.SizeBytes()
	}
	return b
}

// topLazyGossip runs one top-layer gossip for node a: select the personal
// network neighbour with the oldest timestamp (retrying past departed ones
// up to MaxProbes) and run the symmetric 3-step profile exchange with her.
func (e *Engine) topLazyGossip(a *Node) {
	partners := a.pnet.PartnersByAge()
	// Equal timestamps (common right after bootstrap) are tried in random
	// order so the first cycles do not all hit the lowest IDs.
	a.rng.Shuffle(len(partners), func(i, j int) { partners[i], partners[j] = partners[j], partners[i] })
	sortEntriesByAge(partners)
	probes := 0
	for _, p := range partners {
		if probes >= e.cfg.MaxProbes {
			return
		}
		if !e.net.Online(p.ID) {
			e.net.Send(a.id, p.ID, sim.MsgProbe, 0)
			probes++
			// Keep the entry (her profile stays meaningful, §3.4.2) but
			// reset the timestamp so other neighbours are tried first in
			// the following cycles.
			a.pnet.ResetTimestamp(p.ID)
			continue
		}
		b := e.nodes[p.ID]
		e.topExchange(a, b)
		a.pnet.Touch(p.ID)
		b.pnet.ResetTimestamp(a.id)
		return
	}
}

// topExchange performs the symmetric top-layer exchange between two online
// nodes: both sides advertise digests (step 1) and integrate what they
// received (steps 2-3). Used verbatim by the lazy mode and piggybacked by
// the eager mode (Algorithm 3, "maintain personal network as in lazy
// mode").
func (e *Engine) topExchange(a, b *Node) {
	offersA := a.advertise()
	offersB := b.advertise()
	e.net.Send(a.id, b.id, sim.MsgTopDigest, offersWireSize(offersA))
	e.net.Send(b.id, a.id, sim.MsgTopDigest, offersWireSize(offersB))
	// Side ledger for the 3-step ablation: what a naive protocol shipping
	// every advertised profile in full would have cost.
	for _, o := range offersA {
		e.naiveExchangeBytes += uint64(tagging.ActionsWireSize(o.snap.Len()))
	}
	for _, o := range offersB {
		e.naiveExchangeBytes += uint64(tagging.ActionsWireSize(o.snap.Len()))
	}
	b.integrate(offersA, a.id)
	a.integrate(offersB, b.id)
}

// integrate processes a batch of received profile advertisements per
// Algorithm 1. provider is the node that sent them and that serves steps
// 2-3 for these offers.
//
//	step 1 (lines 1-15):  filter digests — drop unchanged/known versions and
//	                      owners sharing no item with the own profile;
//	step 2 (lines 16-26): fetch the tagging actions on common items, compute
//	                      exact similarity scores, update the personal
//	                      network (top-s, positive scores);
//	step 3 (lines 27-31): fetch the full profiles of neighbours entering the
//	                      top-c and store them.
func (n *Node) integrate(offers []offer, provider tagging.UserID) {
	n.checkEvalCache()
	type scored struct {
		o        offer
		received int // actions transferred in step 2 (for the step-3 discount)
	}
	var candidates []scored

	// Step 1: filter on digests only.
	for _, o := range offers {
		owner := o.digest.Owner
		if owner == n.id {
			continue
		}
		if v, ok := n.evaluated[owner]; ok && v >= o.digest.Version {
			continue // already scored at this or a newer version
		}
		if entry := n.pnet.Entry(owner); entry != nil {
			if entry.Digest.Version >= o.digest.Version {
				continue // digest does not change (or is older than known)
			}
		} else if n.e.cfg.StaticNetworks {
			continue // membership frozen: never admit new neighbours
		} else if !o.digest.SharesItemWith(n.profile) {
			continue // no common item: does not qualify (Algorithm 1, line 10)
		}
		candidates = append(candidates, scored{o: o})
	}
	if len(candidates) == 0 {
		return
	}

	// Step 2: request the actions on common items and compute exact scores.
	reqBytes, respBytes := 0, 0
	type result struct {
		o        offer
		score    int
		received int
	}
	var results []result
	for _, c := range candidates {
		common := commonItems(n.profile, c.o.digest)
		reqBytes += tagging.ItemsWireSize(len(common))
		actions := c.o.snap.ActionsOnItems(common)
		respBytes += tagging.ActionsWireSize(len(actions))
		score := 0
		for _, a := range actions {
			if n.profile.Has(a.Item, a.Tag) {
				score++
			}
		}
		n.evaluated[c.o.digest.Owner] = c.o.digest.Version
		results = append(results, result{o: c.o, score: score, received: len(actions)})
	}
	n.e.net.Send(n.id, provider, sim.MsgCommonItems, reqBytes)
	n.e.net.Send(provider, n.id, sim.MsgCommonItems, respBytes)

	// Update the personal network: keep the s highest positive scores.
	inBatch := make(map[tagging.UserID]result, len(results))
	for _, r := range results {
		if r.score > 0 {
			n.pnet.Upsert(r.o.digest.Owner, r.score, r.o.digest)
			inBatch[r.o.digest.Owner] = r
		}
	}

	// Step 3: store the profiles of neighbours entering the top-c.
	profBytes := 0
	var directFetch []*Entry
	for _, entry := range n.pnet.Rebalance() {
		if r, ok := inBatch[entry.ID]; ok {
			entry.Stored = r.o.snap
			rest := r.o.snap.Len() - r.received
			if rest < 0 {
				rest = 0
			}
			profBytes += tagging.ActionsWireSize(rest)
		} else {
			// The entry re-entered the top-c without being advertised in
			// this batch (it was pushed out of storage earlier): fetch
			// directly from the owner.
			directFetch = append(directFetch, entry)
		}
	}
	if profBytes > 0 {
		n.e.net.Send(provider, n.id, sim.MsgProfile, profBytes)
	}
	for _, entry := range directFetch {
		n.fetchFromOwner(entry)
	}
}

// fetchFromOwner retrieves a neighbour's full fresh profile directly from
// its owner (used for random-view candidates and for re-entering top-c
// entries). It is a no-op if the owner has departed.
func (n *Node) fetchFromOwner(entry *Entry) {
	if !n.e.net.Online(entry.ID) {
		n.e.net.Send(n.id, entry.ID, sim.MsgProbe, 0) // records the probe
		return
	}
	owner := n.e.nodes[entry.ID]
	snap := owner.profile.Snapshot()
	n.e.net.Send(n.id, entry.ID, sim.MsgCommonItems, requestBytes)
	n.e.net.Send(entry.ID, n.id, sim.MsgProfile, tagging.ActionsWireSize(snap.Len()))
	entry.Stored = snap
	entry.Digest = owner.digest()
}

// evaluateRandomView scores the random-view members whose digests indicate
// at least one shared item, contacting them directly for their fresh
// profiles (§2.2.1: "The profile of vj is obtained by directly contacting
// vj if Digest(vj) contains at least one item tagged by ui").
func (n *Node) evaluateRandomView() {
	n.checkEvalCache()
	for _, d := range n.view.Entries() {
		if d.Node == n.id {
			continue
		}
		if v, ok := n.evaluated[d.Node]; ok && v >= d.Digest.Version {
			continue
		}
		entry := n.pnet.Entry(d.Node)
		if entry != nil && entry.Digest.Version >= d.Digest.Version {
			continue
		}
		if entry == nil && n.e.cfg.StaticNetworks {
			continue // membership frozen: no point contacting non-members
		}
		if !d.Digest.SharesItemWith(n.profile) {
			n.evaluated[d.Node] = d.Digest.Version
			continue
		}
		if !n.e.net.Online(d.Node) {
			n.e.net.Send(n.id, d.Node, sim.MsgProbe, 0)
			continue
		}
		// Direct contact: the owner serves a fresh offer of her own profile.
		owner := n.e.nodes[d.Node]
		fresh := offer{digest: owner.digest(), snap: owner.profile.Snapshot()}
		n.e.net.Send(d.Node, n.id, sim.MsgTopDigest, fresh.digest.SizeBytes())
		n.integrate([]offer{fresh}, d.Node)
	}
}

// commonItems returns the items of p that the digest may contain — the
// common-item estimate of Algorithm 1 (false positives possible at the
// Bloom filter's rate, false negatives never).
func commonItems(p *tagging.Profile, d *tagging.Digest) []tagging.ItemID {
	var out []tagging.ItemID
	for _, it := range p.Items() {
		if d.MightContainItem(it) {
			out = append(out, it)
		}
	}
	return out
}

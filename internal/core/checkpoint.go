package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	ckpt "p3q/internal/checkpoint"
	"p3q/internal/gossip"
	"p3q/internal/randx"
	"p3q/internal/sim"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// This file implements the engine side of the checkpoint/restore subsystem:
// Engine.Snapshot serializes the complete protocol state into the versioned
// binary format of internal/checkpoint, and Restore rebuilds an engine that
// continues the run exactly where the snapshot left off.
//
// The correctness bar is the repository's determinism contract extended
// across process boundaries: snapshot at cycle N, restore, run M more
// cycles, and the fingerprint equals an uninterrupted N+M run byte for byte
// — for every Config.Workers value, in synchronous and asynchronous
// (latency-modelled) delivery, including snapshots taken while events are
// frozen at departed nodes (TestCheckpointResumeEquivalence).
//
// What a snapshot contains, and why it is sufficient:
//
//   - Profiles. Nodes alias the dataset's profiles, and profiles mutate
//     over a run (trace.ApplyChanges), so every profile's full action log
//     is embedded — the checkpoint is self-contained. Restore either
//     rebuilds a private dataset from the embedded logs (ds == nil) or
//     fast-forwards a caller-provided dataset whose profiles must be
//     prefixes of the checkpointed logs (the warm-fork path: the caller
//     regenerates the deterministic base trace and keeps its generator
//     metadata for future change-sets).
//   - Digests and stored snapshots by reference. Profiles are append-only,
//     so a digest is a pure function of (owner, version, Bloom geometry)
//     and a stored replica is SnapshotAt(version) of the owner's profile.
//     Serializing (owner, version) pairs and reconstructing both keeps
//     checkpoints small and — because every consumer only reads digest
//     content and versions — behaviourally identical.
//   - Personal networks in ranking order with their logical clocks and
//     per-entry last-gossip stamps (ages and the memoized age ordering are
//     derived state), random views, evaluated-version memos, and per-query
//     remaining-list branches in list order (order is protocol state: it
//     drives destination selection).
//   - Query runs: tags, NRA scan state (lists with cursors, candidate
//     accumulations; the ranking is rebuilt), pending unmerged lists,
//     reached/used/active sets, traffic attribution, cycle counters and
//     the virtual-clock instants (issue, first result, full recall).
//   - The network substrate: liveness, global and per-node traffic.
//   - The event machinery: the pending delivery queue with its (At, Seq)
//     order and scheduling counter, and the store-and-forward events
//     frozen at departed nodes, per target in freeze order.
//   - Every RNG stream state (engine, latency, per node) and the cycle,
//     kill and query-ID sequence counters that label split streams.
//
// Phase-duration telemetry (PhaseDurations) is deliberately not captured:
// it measures host wall-clock, not protocol state, and restarts at zero.

// maxListEntries bounds any single serialized result list; partial lists
// are bounded by the item space, which shares the uint32 ID space.
const maxListEntries = 1 << 26

// maxQueryTags bounds a query's tag list (real queries carry the tags of
// one profile item — a handful).
const maxQueryTags = 1 << 20

// maxEvents bounds the pending/frozen event counts.
const maxEvents = 1 << 26

// Snapshot writes the engine's complete state as a P3Q checkpoint. Call it
// between cycles (like every other engine method, from one goroutine);
// restoring the stream with Restore yields an engine whose continued run is
// byte-for-byte identical to this engine's, for any worker count.
func (e *Engine) Snapshot(w io.Writer) error {
	cw := ckpt.NewWriter(w)
	e.writeParams(cw)
	e.writeCounters(cw)
	e.writeProfiles(cw)
	e.writeNetwork(cw)
	for _, n := range e.nodes {
		e.writeNode(cw, n)
	}
	e.writeQueries(cw)
	e.writeEvents(cw)
	return cw.Close()
}

// Restore rebuilds an engine from a checkpoint written by Snapshot.
//
// ds selects where profiles come from:
//
//   - nil: a private dataset is materialized from the embedded profile
//     logs. Fully self-contained, but the dataset carries no generator
//     metadata (like trace.Load), so future change-sets drawn from it use
//     the global item space.
//   - non-nil: the caller's dataset is adopted and fast-forwarded — each
//     profile must be a prefix of (or equal to) the checkpointed log and
//     the missing actions are appended in place. This is the
//     converge-once-fork-many path: regenerate the deterministic base
//     trace, restore on top, and keep generator metadata. The dataset is
//     mutated and must not be shared with another live engine whose
//     profile state could diverge.
//
// cfg must agree with the snapshotting engine's configuration on every
// protocol parameter (s, c, r, k, alpha, digest geometry, probes, periods,
// seed, mode flags); Restore validates them and fails on a mismatch.
// Config.Workers and Config.Latency are free: a snapshot taken at any
// worker count restores at any other, and a fork may run under a different
// latency model (or none), which is what lets one converged overlay serve
// whole scenario families.
func Restore(r io.Reader, ds *trace.Dataset, cfg Config) (*Engine, error) {
	cr := ckpt.NewReader(r)
	rs := &restorer{r: cr, digests: make(map[digestKey]*tagging.Digest)}

	users := rs.readParams(cfg)
	if cr.Err() != nil {
		return nil, cr.Err()
	}
	if cfg.CAssign != nil && len(cfg.CAssign) != users {
		return nil, fmt.Errorf("checkpoint: CAssign has %d entries for %d users", len(cfg.CAssign), users)
	}
	rs.cfg = cfg.sanitize(users)
	rs.validateParams()

	e := &Engine{
		cfg:     rs.cfg,
		queries: make(map[uint64]*QueryRun),
		events:  sim.NewEventQueue(),
		frozen:  make(map[tagging.UserID][]*eagerEvent),
	}
	rs.e = e
	rs.readCounters()
	rs.readProfiles(ds, users)
	if cr.Err() != nil {
		return nil, cr.Err()
	}
	e.ds = rs.ds
	e.net = sim.NewNetwork(users)
	e.net.SetNow(e.now)
	rs.readNetwork()
	e.nodes = make([]*Node, users)
	for u := 0; u < users && cr.Err() == nil; u++ {
		e.nodes[u] = rs.readNode(tagging.UserID(u))
	}
	rs.readQueries()
	rs.readEvents()
	cr.End()
	if cr.Err() != nil {
		return nil, cr.Err()
	}
	if err := rs.crossCheck(); err != nil {
		return nil, err
	}
	return e, nil
}

// digestKey identifies a reconstructable digest: profiles are append-only,
// so (owner, version) determines the digest content exactly.
type digestKey struct {
	owner   tagging.UserID
	version int
}

// restorer carries the context of one Restore call.
type restorer struct {
	r       *ckpt.Reader
	cfg     Config
	e       *Engine
	ds      *trace.Dataset
	users   int
	digests map[digestKey]*tagging.Digest

	// snapshot-side parameters read from the stream, validated against cfg.
	params snapParams
}

// snapParams is the protocol-parameter block a snapshot opens with.
type snapParams struct {
	users, items, tags                 int
	s, c, r, k                         int
	maxDigests, bloomBits, bloomHashes int
	maxProbes                          int
	alphaBits                          uint64
	eagerPeriod, lazyPeriod            time.Duration
	seed                               uint64
	disableEagerBias, staticNetworks   bool
}

func (e *Engine) writeParams(cw *ckpt.Writer) {
	cw.U32(uint32(len(e.nodes)))
	cw.U32(uint32(e.ds.NumItems))
	cw.U32(uint32(e.ds.NumTags))
	cw.U32(uint32(e.cfg.S))
	cw.U32(uint32(e.cfg.C))
	cw.U32(uint32(e.cfg.R))
	cw.U32(uint32(e.cfg.K))
	cw.U32(uint32(e.cfg.MaxDigestsPerGossip))
	cw.U32(uint32(e.cfg.BloomBits))
	cw.U32(uint32(e.cfg.BloomHashes))
	cw.U32(uint32(e.cfg.MaxProbes))
	cw.U64(math.Float64bits(e.cfg.Alpha))
	cw.I64(int64(e.cfg.EagerPeriod))
	cw.I64(int64(e.cfg.LazyPeriod))
	cw.U64(e.cfg.Seed)
	cw.Bool(e.cfg.DisableEagerBias)
	cw.Bool(e.cfg.StaticNetworks)
}

// readParams reads the parameter block and returns the population size. cfg
// is the caller's (unsanitized) configuration; validation happens after
// sanitization in validateParams.
func (rs *restorer) readParams(cfg Config) int {
	p := &rs.params
	p.users = int(rs.r.U32())
	if rs.r.Err() == nil && (p.users < 1 || p.users > ckpt.MaxUsers) {
		rs.r.Fail("user count %d outside [1, %d]", p.users, ckpt.MaxUsers)
	}
	p.items = int(rs.r.U32())
	p.tags = int(rs.r.U32())
	p.s = int(rs.r.U32())
	p.c = int(rs.r.U32())
	p.r = int(rs.r.U32())
	p.k = int(rs.r.U32())
	p.maxDigests = int(rs.r.U32())
	p.bloomBits = int(rs.r.U32())
	p.bloomHashes = int(rs.r.U32())
	p.maxProbes = int(rs.r.U32())
	p.alphaBits = rs.r.U64()
	p.eagerPeriod = time.Duration(rs.r.I64())
	p.lazyPeriod = time.Duration(rs.r.I64())
	p.seed = rs.r.U64()
	p.disableEagerBias = rs.r.Bool()
	p.staticNetworks = rs.r.Bool()
	rs.users = p.users
	return p.users
}

// validateParams rejects a restore whose configuration disagrees with the
// snapshot on any protocol parameter. Workers and Latency are deliberately
// exempt: both are execution choices the determinism contract already
// spans.
func (rs *restorer) validateParams() {
	if rs.r.Err() != nil {
		return
	}
	p, c := rs.params, rs.cfg
	mismatch := func(field string, snap, now any) {
		rs.r.Fail("config mismatch: %s is %v in the snapshot but %v in the restoring config", field, snap, now)
	}
	switch {
	case p.s != c.S:
		mismatch("S", p.s, c.S)
	case p.c != c.C:
		mismatch("C", p.c, c.C)
	case p.r != c.R:
		mismatch("R", p.r, c.R)
	case p.k != c.K:
		mismatch("K", p.k, c.K)
	case p.maxDigests != c.MaxDigestsPerGossip:
		mismatch("MaxDigestsPerGossip", p.maxDigests, c.MaxDigestsPerGossip)
	case p.bloomBits != c.BloomBits:
		mismatch("BloomBits", p.bloomBits, c.BloomBits)
	case p.bloomHashes != c.BloomHashes:
		mismatch("BloomHashes", p.bloomHashes, c.BloomHashes)
	case p.maxProbes != c.MaxProbes:
		mismatch("MaxProbes", p.maxProbes, c.MaxProbes)
	case p.alphaBits != math.Float64bits(c.Alpha):
		mismatch("Alpha", math.Float64frombits(p.alphaBits), c.Alpha)
	case p.eagerPeriod != c.EagerPeriod:
		mismatch("EagerPeriod", p.eagerPeriod, c.EagerPeriod)
	case p.lazyPeriod != c.LazyPeriod:
		mismatch("LazyPeriod", p.lazyPeriod, c.LazyPeriod)
	case p.seed != c.Seed:
		mismatch("Seed", p.seed, c.Seed)
	case p.disableEagerBias != c.DisableEagerBias:
		mismatch("DisableEagerBias", p.disableEagerBias, c.DisableEagerBias)
	case p.staticNetworks != c.StaticNetworks:
		mismatch("StaticNetworks", p.staticNetworks, c.StaticNetworks)
	}
}

func (e *Engine) writeCounters(cw *ckpt.Writer) {
	cw.U64(uint64(e.lazyCycles))
	cw.U64(uint64(e.eagerCycles))
	cw.U64(e.cycleSeq)
	cw.U64(e.killSeq)
	cw.U64(e.nextQueryID)
	cw.I64(int64(e.now))
	cw.U64(e.naiveExchangeBytes)
	cw.U64(e.rng.State())
	cw.U64(e.latRng.State())
}

func (rs *restorer) readCounters() {
	e := rs.e
	e.lazyCycles = int(rs.r.U64())
	e.eagerCycles = int(rs.r.U64())
	e.cycleSeq = rs.r.U64()
	e.killSeq = rs.r.U64()
	e.nextQueryID = rs.r.U64()
	e.now = time.Duration(rs.r.I64())
	e.naiveExchangeBytes = rs.r.U64()
	e.rng = randx.Restore(rs.r.U64())
	e.latRng = randx.Restore(rs.r.U64())
}

func (e *Engine) writeProfiles(cw *ckpt.Writer) {
	var keys []uint64
	for _, p := range e.ds.Profiles {
		cw.Count(p.Len())
		keys = keys[:0]
		for _, a := range p.Actions() {
			keys = append(keys, a.Key())
		}
		cw.U64s(keys)
	}
}

// readProfiles materializes the embedded profile logs (ds == nil) or
// fast-forwards the provided dataset to the checkpointed state, validating
// that its profiles are prefixes of the checkpointed logs.
func (rs *restorer) readProfiles(ds *trace.Dataset, users int) {
	if ds != nil {
		if ds.Users() != users {
			rs.r.Fail("dataset has %d users, snapshot has %d", ds.Users(), users)
			return
		}
		if ds.NumItems != rs.params.items || ds.NumTags != rs.params.tags {
			rs.r.Fail("dataset spaces (%d items, %d tags) do not match the snapshot (%d, %d)",
				ds.NumItems, ds.NumTags, rs.params.items, rs.params.tags)
			return
		}
	}
	var profiles []*tagging.Profile
	if ds == nil {
		profiles = make([]*tagging.Profile, 0, ckpt.CapHint(users))
	}
	var keys []uint64
	for u := 0; u < users && rs.r.Err() == nil; u++ {
		n := rs.r.Count(maxListEntries)
		var p *tagging.Profile
		have := 0
		if ds == nil {
			p = tagging.NewProfile(tagging.UserID(u))
		} else {
			p = ds.Profiles[u]
			have = p.Len()
			if n < have {
				rs.r.Fail("user %d: dataset profile has %d actions, snapshot only %d (dataset is ahead of the checkpoint)", u, have, n)
				return
			}
		}
		log := p.Actions()
		for j := 0; j < n && rs.r.Err() == nil; {
			batch := n - j
			if batch > 4096 {
				batch = 4096
			}
			if cap(keys) < batch {
				keys = make([]uint64, batch)
			}
			keys = keys[:batch]
			rs.r.U64s(keys)
			for _, key := range keys {
				if rs.r.Err() != nil {
					return
				}
				a := tagging.ActionFromKey(key)
				if j < have {
					if log[j].Key() != key {
						rs.r.Fail("user %d: dataset action %d is (%d, %d), snapshot has (%d, %d) — not the checkpoint's base dataset",
							u, j, log[j].Item, log[j].Tag, a.Item, a.Tag)
						return
					}
				} else if !p.Add(a.Item, a.Tag) {
					rs.r.Fail("user %d: action (%d, %d) duplicated in the snapshot", u, a.Item, a.Tag)
				}
				j++
			}
		}
		if ds == nil {
			profiles = append(profiles, p)
		}
	}
	if ds == nil {
		rs.ds = &trace.Dataset{Profiles: profiles, NumItems: rs.params.items, NumTags: rs.params.tags}
	} else {
		rs.ds = ds
	}
}

func (e *Engine) writeNetwork(cw *ckpt.Writer) {
	for u := range e.nodes {
		cw.Bool(e.net.Online(tagging.UserID(u)))
	}
	writeTraffic(cw, e.net.Total())
	for u := range e.nodes {
		writeTraffic(cw, e.net.NodeTraffic(tagging.UserID(u)))
	}
}

func (rs *restorer) readNetwork() {
	for u := 0; u < rs.users && rs.r.Err() == nil; u++ {
		rs.e.net.SetOnline(tagging.UserID(u), rs.r.Bool())
	}
	total := rs.readTraffic()
	perNode := make([]sim.Traffic, 0, ckpt.CapHint(rs.users))
	for u := 0; u < rs.users && rs.r.Err() == nil; u++ {
		perNode = append(perNode, rs.readTraffic())
	}
	if rs.r.Err() != nil {
		return
	}
	if err := rs.e.net.RestoreTraffic(total, perNode); err != nil {
		rs.r.Fail("%v", err)
	}
}

func writeTraffic(cw *ckpt.Writer, t sim.Traffic) {
	for _, k := range sim.Kinds() {
		cw.U64(t.Msgs[k])
		cw.U64(t.Bytes[k])
	}
}

func (rs *restorer) readTraffic() sim.Traffic {
	var t sim.Traffic
	for _, k := range sim.Kinds() {
		t.Msgs[k] = rs.r.U64()
		t.Bytes[k] = rs.r.U64()
	}
	return t
}

func (e *Engine) writeNode(cw *ckpt.Writer, n *Node) {
	cw.U64(n.rng.State())

	cw.U32(uint32(n.evalVersion))
	evalIDs := make([]tagging.UserID, 0, len(n.evaluated))
	//p3q:orderinvariant collects keys into evalIDs, which is sorted before use
	for id := range n.evaluated {
		evalIDs = append(evalIDs, id)
	}
	sort.Slice(evalIDs, func(i, j int) bool { return evalIDs[i] < evalIDs[j] })
	cw.Count(len(evalIDs))
	for _, id := range evalIDs {
		cw.U32(uint32(id))
		cw.U32(uint32(n.evaluated[id]))
	}

	entries := n.view.Entries()
	cw.Count(len(entries))
	for _, d := range entries {
		cw.U32(uint32(d.Node))
		cw.U32(uint32(d.Digest.Version))
	}

	pn := n.pnet
	cw.U32(uint32(pn.s))
	cw.U32(uint32(pn.c))
	cw.U64(pn.clock)
	cw.Count(len(pn.ranking))
	for _, en := range pn.ranking {
		cw.U32(uint32(en.ID))
		cw.I64(int64(en.Score))
		cw.U64(en.last)
		cw.U32(uint32(en.Digest.Version))
		cw.Bool(en.Stored.Valid())
		if en.Stored.Valid() {
			cw.U32(uint32(en.Stored.Version()))
		}
	}

	qids := make([]uint64, 0, len(n.branches))
	//p3q:orderinvariant collects keys into qids, which is sorted before use
	for qid := range n.branches {
		qids = append(qids, qid)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	cw.Count(len(qids))
	for _, qid := range qids {
		cw.U64(qid)
		writeUserList(cw, n.branches[qid])
	}
}

func (rs *restorer) readNode(id tagging.UserID) *Node {
	n := &Node{
		id:      id,
		e:       rs.e,
		profile: rs.ds.Profiles[id],
		rng:     randx.Restore(rs.r.U64()),
	}

	n.evalVersion = int(rs.r.U32())
	nEval := rs.r.Count(rs.users)
	n.evaluated = make(map[tagging.UserID]int, ckpt.CapHint(nEval))
	prev := -1
	for i := 0; i < nEval && rs.r.Err() == nil; i++ {
		owner := rs.readUserID()
		if int(owner) <= prev {
			rs.r.Fail("node %d: evaluated memo not in ascending owner order", id)
		}
		prev = int(owner)
		n.evaluated[owner] = int(rs.r.U32())
	}

	nView := rs.r.Count(rs.cfg.R)
	descs := make([]gossip.Descriptor, 0, ckpt.CapHint(nView))
	for i := 0; i < nView && rs.r.Err() == nil; i++ {
		owner := rs.readUserID()
		version := int(rs.r.U32())
		if owner == id {
			rs.r.Fail("node %d: own descriptor in random view", id)
			break
		}
		descs = append(descs, gossip.Descriptor{Node: owner, Digest: rs.digestFor(owner, version)})
	}
	n.view = gossip.NewView(id, rs.cfg.R)
	n.view.Bootstrap(descs)
	if rs.r.Err() == nil && n.view.Size() != nView {
		rs.r.Fail("node %d: random view holds duplicates", id)
	}

	s := int(rs.r.U32())
	c := int(rs.r.U32())
	if rs.r.Err() == nil && (s != rs.cfg.S || c < 0 || c > s) {
		rs.r.Fail("node %d: personal network capacities (s=%d, c=%d) incoherent with S=%d", id, s, c, rs.cfg.S)
	}
	// Per-node storage capacity is config (C or a CAssign entry, clamped to
	// s), so the config-match contract extends to heterogeneous setups: a
	// restore under a different CAssign draw must fail loudly, not install
	// capacities the caller's config disagrees with.
	if want := min(rs.cfg.capacityOf(id), s); rs.r.Err() == nil && c != want {
		rs.r.Fail("config mismatch: node %d stored capacity is %d in the snapshot but %d in the restoring config (CAssign differs?)", id, c, want)
	}
	n.pnet = NewPersonalNetwork(id, s, c)
	n.pnet.clock = rs.r.U64()
	nPnet := rs.r.Count(s)
	for i := 0; i < nPnet && rs.r.Err() == nil; i++ {
		owner := rs.readUserID()
		score := int(rs.r.I64())
		last := rs.r.U64()
		version := int(rs.r.U32())
		stored := tagging.Snapshot{}
		if rs.r.Bool() {
			sv := int(rs.r.U32())
			stored = rs.snapshotFor(owner, sv)
		}
		if rs.r.Err() != nil {
			break
		}
		switch {
		case owner == id:
			rs.r.Fail("node %d: personal network contains self", id)
		case score <= 0:
			rs.r.Fail("node %d: non-positive score %d for neighbour %d", id, score, owner)
		case last > n.pnet.clock:
			rs.r.Fail("node %d: neighbour %d gossip stamp %d exceeds clock %d", id, owner, last, n.pnet.clock)
		case n.pnet.Contains(owner):
			rs.r.Fail("node %d: duplicate neighbour %d", id, owner)
		}
		if rs.r.Err() != nil {
			break
		}
		en := Entry{ID: owner, Score: score, Digest: rs.digestFor(owner, version), Stored: stored, last: last}
		if ln := len(n.pnet.ranking); ln > 0 {
			p := &n.pnet.ranking[ln-1]
			if !rankBefore(p.Score, p.ID, en.Score, en.ID) {
				rs.r.Fail("node %d: personal network ranking out of order at neighbour %d", id, owner)
				break
			}
		}
		// The entries arrive in rank order (just validated), so the dense
		// layout is rebuilt by plain appends; appendEntry re-attaches the
		// owning-network pointer and feeds the by-owner index.
		n.pnet.appendEntry(en)
	}

	nBr := rs.r.Count(maxEvents)
	prevQID := uint64(0)
	for i := 0; i < nBr && rs.r.Err() == nil; i++ {
		qid := rs.r.U64()
		if i > 0 && qid <= prevQID {
			rs.r.Fail("node %d: branches not in ascending query order", id)
			break
		}
		prevQID = qid
		n.setBranch(qid, rs.readUserList(rs.users))
	}
	return n
}

func (e *Engine) writeQueries(cw *ckpt.Writer) {
	cw.Count(len(e.queryOrder))
	for _, qid := range e.queryOrder {
		qr := e.queries[qid]
		cw.U64(qr.ID)
		cw.U32(uint32(qr.Query.Querier))
		cw.Count(len(qr.Query.Tags))
		for _, t := range qr.Query.Tags {
			cw.U32(uint32(t))
		}
		cw.U32(uint32(qr.Query.Item))
		cw.U32(uint32(qr.needed))
		cw.U32(uint32(qr.cycles))
		cw.Bool(qr.done)
		cw.U32(uint32(qr.partialMsgs))
		cw.U64(qr.bytes.Forwarded)
		cw.U64(qr.bytes.Returned)
		cw.U64(qr.bytes.PartialResults)
		cw.U64(qr.bytes.Maintenance)
		cw.I64(int64(qr.issuedAt))
		cw.Bool(qr.hasFirst)
		cw.I64(int64(qr.firstAt))
		cw.I64(int64(qr.doneAt))
		cw.U32(uint32(qr.inflight))
		cw.U64(qr.settledSeq)
		writeUserSet(cw, qr.used)
		writeUserSet(cw, qr.reached)
		writeUserSet(cw, qr.activeNodes)
		writeEntryList(cw, qr.results)
		cw.Count(len(qr.pending))
		for _, l := range qr.pending {
			writeEntryList(cw, l)
		}
		writeNRA(cw, qr.nra)
	}
}

func (rs *restorer) readQueries() {
	e := rs.e
	nQ := rs.r.Count(maxEvents)
	var prev uint64
	for i := 0; i < nQ && rs.r.Err() == nil; i++ {
		qr := &QueryRun{e: e}
		qr.ID = rs.r.U64()
		if i > 0 && qr.ID <= prev {
			rs.r.Fail("queries not in ascending ID order")
			return
		}
		prev = qr.ID
		qr.Query.Querier = rs.readUserID()
		nTags := rs.r.Count(maxQueryTags)
		qr.Query.Tags = make([]tagging.TagID, 0, ckpt.CapHint(nTags))
		for j := 0; j < nTags && rs.r.Err() == nil; j++ {
			qr.Query.Tags = append(qr.Query.Tags, tagging.TagID(rs.r.U32()))
		}
		qr.Query.Item = tagging.ItemID(rs.r.U32())
		qr.qset = topk.NewTagSet(qr.Query.Tags)
		qr.needed = int(rs.r.U32())
		qr.cycles = int(rs.r.U32())
		qr.done = rs.r.Bool()
		qr.partialMsgs = int(rs.r.U32())
		qr.bytes.Forwarded = rs.r.U64()
		qr.bytes.Returned = rs.r.U64()
		qr.bytes.PartialResults = rs.r.U64()
		qr.bytes.Maintenance = rs.r.U64()
		qr.issuedAt = time.Duration(rs.r.I64())
		qr.hasFirst = rs.r.Bool()
		qr.firstAt = time.Duration(rs.r.I64())
		qr.doneAt = time.Duration(rs.r.I64())
		qr.inflight = int(rs.r.U32())
		qr.settledSeq = rs.r.U64()
		qr.used = rs.readUserSet()
		qr.reached = rs.readUserSet()
		qr.activeNodes = rs.readUserSet()
		qr.results = rs.readEntryList()
		nPend := rs.r.Count(maxEvents)
		for j := 0; j < nPend && rs.r.Err() == nil; j++ {
			qr.pending = append(qr.pending, rs.readEntryList())
		}
		qr.nra = rs.readNRA()
		if rs.r.Err() != nil {
			return
		}
		e.queries[qr.ID] = qr
		e.queryOrder = append(e.queryOrder, qr.ID)
	}
}

func writeNRA(cw *ckpt.Writer, n *topk.NRA) {
	st := n.State()
	cw.U32(uint32(st.K))
	cw.Count(len(st.Lists))
	for _, l := range st.Lists {
		cw.U32(uint32(l.Pos))
		writeEntryList(cw, l.Entries)
	}
	cw.Count(len(st.Cands))
	for _, c := range st.Cands {
		cw.U32(uint32(c.Item))
		cw.I64(int64(c.Worst))
		cw.Count(len(c.SeenIn))
		for _, li := range c.SeenIn {
			cw.U32(uint32(li))
		}
	}
}

func (rs *restorer) readNRA() *topk.NRA {
	st := topk.NRAState{K: int(rs.r.U32())}
	nLists := rs.r.Count(maxEvents)
	for i := 0; i < nLists && rs.r.Err() == nil; i++ {
		pos := int(rs.r.U32())
		st.Lists = append(st.Lists, topk.NRAListState{Pos: pos, Entries: rs.readEntryList()})
	}
	nCands := rs.r.Count(maxListEntries)
	for i := 0; i < nCands && rs.r.Err() == nil; i++ {
		c := topk.NRACandidateState{Item: tagging.ItemID(rs.r.U32()), Worst: int(rs.r.I64())}
		nSeen := rs.r.Count(nLists)
		for j := 0; j < nSeen && rs.r.Err() == nil; j++ {
			c.SeenIn = append(c.SeenIn, int(rs.r.U32()))
		}
		st.Cands = append(st.Cands, c)
	}
	if rs.r.Err() != nil {
		return topk.NewNRA(st.K)
	}
	n, err := topk.RestoreNRA(st)
	if err != nil {
		rs.r.Fail("%v", err)
		return topk.NewNRA(st.K)
	}
	return n
}

func (e *Engine) writeEvents(cw *ckpt.Writer) {
	pending := e.events.Pending()
	cw.U64(e.events.NextSeq())
	cw.Count(len(pending))
	for _, ev := range pending {
		cw.I64(int64(ev.At))
		cw.U64(ev.Seq)
		writeEagerEvent(cw, ev.Payload.(*eagerEvent))
	}

	targets := make([]tagging.UserID, 0, len(e.frozen))
	//p3q:orderinvariant collects keys into targets, which is sorted before use
	for id := range e.frozen {
		targets = append(targets, id)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	cw.Count(len(targets))
	for _, id := range targets {
		cw.U32(uint32(id))
		cw.Count(len(e.frozen[id]))
		for _, ev := range e.frozen[id] {
			writeEagerEvent(cw, ev)
		}
	}
}

func (rs *restorer) readEvents() {
	e := rs.e
	nextSeq := rs.r.U64()
	nPending := rs.r.Count(maxEvents)
	pending := make([]sim.Event, 0, ckpt.CapHint(nPending))
	for i := 0; i < nPending && rs.r.Err() == nil; i++ {
		at := time.Duration(rs.r.I64())
		seq := rs.r.U64()
		pending = append(pending, sim.Event{At: at, Seq: seq, Payload: rs.readEagerEvent()})
	}
	if rs.r.Err() == nil {
		if err := e.events.RestorePending(pending, nextSeq); err != nil {
			rs.r.Fail("%v", err)
		}
	}

	nTargets := rs.r.Count(rs.users)
	prev := -1
	for i := 0; i < nTargets && rs.r.Err() == nil; i++ {
		id := rs.readUserID()
		if int(id) <= prev {
			rs.r.Fail("frozen targets not in ascending order")
			return
		}
		prev = int(id)
		nEv := rs.r.Count(maxEvents)
		evs := make([]*eagerEvent, 0, ckpt.CapHint(nEv))
		for j := 0; j < nEv && rs.r.Err() == nil; j++ {
			evs = append(evs, rs.readEagerEvent())
		}
		if nEv == 0 {
			rs.r.Fail("frozen target %d has no events", id)
			return
		}
		e.frozen[id] = evs
	}
}

func writeEagerEvent(cw *ckpt.Writer, ev *eagerEvent) {
	cw.U8(uint8(ev.kind))
	cw.U64(ev.qid)
	cw.U32(uint32(ev.node))
	writeUserList(cw, ev.members)
	writeEntryList(cw, ev.plist)
	writeUserList(cw, ev.owners)
}

func (rs *restorer) readEagerEvent() *eagerEvent {
	ev := &eagerEvent{}
	kind := rs.r.U8()
	if rs.r.Err() == nil && kind > uint8(evBranchReturn) {
		rs.r.Fail("unknown event kind %d", kind)
		return ev
	}
	ev.kind = eagerEventKind(kind)
	ev.qid = rs.r.U64()
	// The queries section precedes the events, so the reference is
	// checkable right here.
	if _, ok := rs.e.queries[ev.qid]; rs.r.Err() == nil && !ok {
		rs.r.Fail("delivery event references unknown query %d", ev.qid)
		return ev
	}
	ev.node = rs.readUserID()
	ev.members = rs.readUserList(rs.users)
	ev.plist = rs.readEntryList()
	ev.owners = rs.readUserList(rs.users)
	return ev
}

// crossCheck validates the references that span sections read in the
// other order: branch query IDs (nodes precede queries in the stream) must
// name registered queries, and the ID allocator must sit past every issued
// ID so future queries cannot collide. Event query IDs are validated at
// read time — the queries section precedes the events.
func (rs *restorer) crossCheck() error {
	e := rs.e
	for _, n := range e.nodes {
		bad, found := uint64(0), false
		//p3q:orderinvariant min-reduction: the smallest unknown query ID wins regardless of visit order
		for qid := range n.branches {
			if _, ok := e.queries[qid]; !ok && (!found || qid < bad) {
				bad, found = qid, true
			}
		}
		if found {
			return fmt.Errorf("checkpoint: node %d holds a branch of unknown query %d", n.id, bad)
		}
	}
	if n := len(e.queryOrder); n > 0 && e.queryOrder[n-1] >= e.nextQueryID {
		return fmt.Errorf("checkpoint: query ID allocator (%d) not past the last issued ID (%d)",
			e.nextQueryID, e.queryOrder[n-1])
	}
	return nil
}

// digestFor reconstructs (and caches) the digest of a profile prefix:
// profiles are append-only, so NewDigest over SnapshotAt(version) with the
// engine's Bloom geometry reproduces the original digest bit for bit.
func (rs *restorer) digestFor(owner tagging.UserID, version int) *tagging.Digest {
	if rs.r.Err() != nil {
		return nil
	}
	if version < 0 || version > rs.ds.Profiles[owner].Len() {
		rs.r.Fail("digest of user %d at version %d, but the profile has %d actions", owner, version, rs.ds.Profiles[owner].Len())
		return nil
	}
	key := digestKey{owner: owner, version: version}
	if d, ok := rs.digests[key]; ok {
		return d
	}
	d := tagging.NewDigest(rs.ds.Profiles[owner].SnapshotAt(version), rs.cfg.BloomBits, rs.cfg.BloomHashes)
	rs.digests[key] = d
	return d
}

// snapshotFor reconstructs a stored replica: the owner's profile truncated
// to the replicated version.
func (rs *restorer) snapshotFor(owner tagging.UserID, version int) tagging.Snapshot {
	if rs.r.Err() != nil {
		return tagging.Snapshot{}
	}
	if version < 0 || version > rs.ds.Profiles[owner].Len() {
		rs.r.Fail("replica of user %d at version %d, but the profile has %d actions", owner, version, rs.ds.Profiles[owner].Len())
		return tagging.Snapshot{}
	}
	return rs.ds.Profiles[owner].SnapshotAt(version)
}

// readUserID reads and bounds-checks one user ID.
func (rs *restorer) readUserID() tagging.UserID {
	id := rs.r.U32()
	if rs.r.Err() == nil && int(id) >= rs.users {
		rs.r.Fail("user ID %d outside population of %d", id, rs.users)
		return 0
	}
	return tagging.UserID(id)
}

func writeUserList(cw *ckpt.Writer, ids []tagging.UserID) {
	cw.Count(len(ids))
	for _, id := range ids {
		cw.U32(uint32(id))
	}
}

func (rs *restorer) readUserList(max int) []tagging.UserID {
	n := rs.r.Count(max)
	out := make([]tagging.UserID, 0, ckpt.CapHint(n))
	for i := 0; i < n && rs.r.Err() == nil; i++ {
		out = append(out, rs.readUserID())
	}
	return out
}

// writeUserSet serializes a user-ID set in ascending order (sets carry no
// order of their own; the canonical order keeps snapshots deterministic).
func writeUserSet(cw *ckpt.Writer, set map[tagging.UserID]struct{}) {
	ids := make([]tagging.UserID, 0, len(set))
	//p3q:orderinvariant collects keys into ids, which is sorted before use
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	writeUserList(cw, ids)
}

func (rs *restorer) readUserSet() map[tagging.UserID]struct{} {
	n := rs.r.Count(rs.users)
	set := make(map[tagging.UserID]struct{}, ckpt.CapHint(n))
	prev := -1
	for i := 0; i < n && rs.r.Err() == nil; i++ {
		id := rs.readUserID()
		if int(id) <= prev {
			rs.r.Fail("user set not in ascending order")
			return set
		}
		prev = int(id)
		set[id] = struct{}{}
	}
	return set
}

func writeEntryList(cw *ckpt.Writer, es []topk.Entry) {
	cw.Count(len(es))
	for _, e := range es {
		cw.U32(uint32(e.Item))
		cw.I64(int64(e.Score))
	}
}

func (rs *restorer) readEntryList() []topk.Entry {
	n := rs.r.Count(maxListEntries)
	out := make([]topk.Entry, 0, ckpt.CapHint(n))
	for i := 0; i < n && rs.r.Err() == nil; i++ {
		out = append(out, topk.Entry{Item: tagging.ItemID(rs.r.U32()), Score: int(rs.r.I64())})
	}
	return out
}

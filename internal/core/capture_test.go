package core

import (
	"testing"

	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// TestCapturedRunMatchesPlainRun pins the capture contract: a run stepped
// through the captured cycle variants is byte-for-byte identical to the
// same run stepped through the plain ones. The daemon's replicas step
// with capture on, so any capture-path side effect would silently diverge
// the cluster from the reference engine.
func TestCapturedRunMatchesPlainRun(t *testing.T) {
	ds := trace.Generate(trace.DefaultGenParams(60))
	cfg := DefaultConfig()
	cfg.Seed = 11

	plain := New(ds, cfg)
	plain.Bootstrap()
	captured := New(ds, cfg)
	captured.Bootstrap()

	for i := 0; i < 8; i++ {
		plain.LazyCycle()
		captured.LazyCycleCaptured()
	}
	queries := trace.GenerateQueries(ds, 3)[:10]
	for _, q := range queries {
		plain.IssueQuery(q)
		if _, cp := captured.IssueQueryCaptured(q); cp == nil {
			t.Fatalf("IssueQueryCaptured(%d) returned nil capture", q.Querier)
		}
	}
	for i := 0; i < 40 && !plain.AllQueriesDone(); i++ {
		plain.EagerCycle()
		captured.EagerCycleCaptured()
	}
	if !captured.AllQueriesDone() {
		t.Fatal("captured engine did not settle with the plain one")
	}
	if a, b := engineFingerprint(plain), engineFingerprint(captured); a != b {
		t.Errorf("captured run diverged from plain run:\nplain:\n%s\ncaptured:\n%s", a, b)
	}
}

// TestEagerCapturePairBytesSumToQueryBytes pins the attribution contract
// the daemons' wire-layer tallies rely on: summing the per-pair Bytes of
// every captured gossip, plus nothing else, reproduces each query's
// QueryBytes exactly.
func TestEagerCapturePairBytesSumToQueryBytes(t *testing.T) {
	ds := trace.Generate(trace.DefaultGenParams(50))
	cfg := DefaultConfig()
	cfg.Seed = 7
	e := New(ds, cfg)
	e.Bootstrap()
	e.RunLazy(10)

	sums := make(map[uint64]QueryBytes)
	for _, q := range trace.GenerateQueries(ds, 5)[:12] {
		qr := e.IssueQuery(q)
		sums[qr.ID] = QueryBytes{}
	}
	for i := 0; i < 40 && !e.AllQueriesDone(); i++ {
		cp := e.EagerCycleCaptured()
		for pi := range cp.Pairs {
			p := &cp.Pairs[pi]
			s := sums[p.Qid]
			s.Forwarded += p.Bytes.Forwarded
			s.Returned += p.Bytes.Returned
			s.PartialResults += p.Bytes.PartialResults
			s.Maintenance += p.Bytes.Maintenance
			sums[p.Qid] = s
		}
	}
	if !e.AllQueriesDone() {
		t.Fatal("queries did not settle")
	}
	for _, qr := range e.Queries() {
		if got, want := sums[qr.ID], qr.Bytes(); got != want {
			t.Errorf("query %d: captured pair bytes %+v, engine %+v", qr.ID, got, want)
		}
	}
}

// TestEagerCaptureReplaysQuerierBookkeeping drives the querier-side state
// machine a daemon runs — used-profile and active-branch tracking from the
// captured pairs alone — and checks it reaches the engine's own counters.
// This is the daemon's done-detection path: a query is done exactly when
// no node holds a non-empty branch.
func TestEagerCaptureReplaysQuerierBookkeeping(t *testing.T) {
	ds := trace.Generate(trace.DefaultGenParams(40))
	cfg := DefaultConfig()
	cfg.Seed = 21
	e := New(ds, cfg)
	e.Bootstrap()
	e.RunLazy(10)

	type qstate struct {
		used   map[tagging.UserID]struct{}
		active map[tagging.UserID]struct{}
	}
	states := make(map[uint64]*qstate)
	for _, q := range trace.GenerateQueries(ds, 9)[:8] {
		qr, cp := e.IssueQueryCaptured(q)
		st := &qstate{used: make(map[tagging.UserID]struct{}), active: make(map[tagging.UserID]struct{})}
		for _, o := range cp.UsedOwners {
			st.used[o] = struct{}{}
		}
		if !cp.Done {
			st.active[cp.Querier] = struct{}{}
		}
		if cp.Needed != qr.ProfilesNeeded() || cp.Qid != qr.ID {
			t.Fatalf("issue capture mismatch: %+v vs needed=%d id=%d", cp, qr.ProfilesNeeded(), qr.ID)
		}
		states[qr.ID] = st
	}
	for i := 0; i < 40 && !e.AllQueriesDone(); i++ {
		cp := e.EagerCycleCaptured()
		for pi := range cp.Pairs {
			p := &cp.Pairs[pi]
			st := states[p.Qid]
			if !p.Ok {
				continue
			}
			if p.Delivered {
				for _, o := range p.FoundOwners {
					st.used[o] = struct{}{}
				}
			}
			if len(p.Keep) > 0 {
				st.active[p.Dest] = struct{}{}
			}
			if p.BranchEmptied {
				delete(st.active, p.Initiator)
			} else {
				st.active[p.Initiator] = struct{}{}
			}
		}
	}
	if !e.AllQueriesDone() {
		t.Fatal("queries did not settle")
	}
	for _, qr := range e.Queries() {
		st := states[qr.ID]
		if len(st.used) != qr.ProfilesUsed() {
			t.Errorf("query %d: replayed used=%d, engine=%d", qr.ID, len(st.used), qr.ProfilesUsed())
		}
		if len(st.active) != 0 {
			t.Errorf("query %d: replayed active set not drained: %d nodes", qr.ID, len(st.active))
		}
		if len(st.used) != qr.ProfilesNeeded() {
			t.Errorf("query %d: replayed used=%d, needed=%d", qr.ID, len(st.used), qr.ProfilesNeeded())
		}
	}
}

package core

import (
	"p3q/internal/gossip"
	"p3q/internal/sim"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// This file is the core-reuse seam between the deterministic engine and
// the peer daemon (internal/peer, cmd/p3qd). A daemon hosts a contiguous
// node range but steps a full engine replica — the simulator is the
// executable spec, and every daemon runs it — and the captured cycle
// description tells the daemon exactly which protocol exchanges the cycle
// performed, with whom, carrying what. The daemon then speaks those
// exchanges over the wire (internal/wire) between the daemons hosting
// each side, and verifies every peer response against its own replica's
// computation: the simulator-as-oracle contract, enforced per message.
//
// Captures are pure observations. A captured cycle draws the same random
// streams, sends the same messages and commits the same state as an
// uncaptured one — capture_test.go pins byte-for-byte equality — so
// stepping replicas with capture on N daemons is indistinguishable from
// running the reference engine.

// DigestRef identifies a profile digest on the wire without shipping its
// bits: the owner and the profile version it was built from. Profiles are
// append-only (tagging.Profile), so (owner, version) reconstructs the
// digest bit-exactly on any daemon holding the dataset — the same
// collapse internal/checkpoint uses for stored snapshots. Bytes carries
// the §3.3 wire cost of the digest, which is what the traffic accounting
// charges.
type DigestRef struct {
	Owner   tagging.UserID
	Version int
	Bytes   int
}

// ViewExchangeCap is one bottom-layer peer-sampling exchange of a lazy
// cycle: the initiator's buffer travels to the partner and the partner's
// buffer comes back (§2.2.1).
type ViewExchangeCap struct {
	Initiator tagging.UserID
	Partner   tagging.UserID
	BufA      []DigestRef // initiator -> partner
	BufB      []DigestRef // partner -> initiator
}

// DirectFetchCap is one random-view direct contact (§2.2.1): the
// initiator requests the owner's fresh profile offer.
type DirectFetchCap struct {
	Owner tagging.UserID
	Offer DigestRef
}

// TopExchangeCap is one initiator's top-layer round of a lazy cycle: the
// symmetric 3-step exchange with the selected partner (step-1 digest
// batches in both directions; steps 2-3 resolve against the receiver's
// committed state) plus the initiator's random-view direct contacts.
type TopExchangeCap struct {
	Initiator  tagging.UserID
	HasPartner bool
	Partner    tagging.UserID
	OffersA    []DigestRef // initiator -> partner (step 1)
	OffersB    []DigestRef // partner -> initiator (step 1)
	Fetches    []DirectFetchCap
}

// LazyCapture describes every exchange of one lazy cycle, in the cycle's
// canonical permutation order — the order the commit phase applies them.
type LazyCapture struct {
	Seq   uint64
	Views []ViewExchangeCap
	Tops  []TopExchangeCap
}

// EagerPairCap is one (initiator, query) gossip of an eager cycle
// (Algorithm 3): the forwarded branch, the destination's resolution into
// a partial result, the α-split of the unresolved rest, and the
// piggybacked maintenance exchange. Bytes is this pair's contribution to
// the query's traffic, exactly as the engine's finalize pass attributes
// it.
type EagerPairCap struct {
	Initiator tagging.UserID
	Qid       uint64
	Ok        bool // an online destination was found
	Dest      tagging.UserID
	Querier   tagging.UserID

	Tags        []tagging.TagID
	Branch      []tagging.UserID // forwarded remaining list (cycle-start)
	FoundOwners []tagging.UserID // resolved against the destination's storage
	Plist       []topk.Entry     // partial result over the resolved profiles
	Delivered   bool             // the partial result reached the querier
	Keep        []tagging.UserID // unresolved members the destination keeps
	Returned    []tagging.UserID // unresolved members sent back

	OffersA []DigestRef // piggybacked maintenance, initiator -> destination
	OffersB []DigestRef // piggybacked maintenance, destination -> initiator

	BranchEmptied bool // commit-resolved: the initiator's branch drained
	Bytes         QueryBytes
}

// EagerCapture describes every gossip of one eager cycle, in the
// canonical pair order.
type EagerCapture struct {
	Seq   uint64
	Pairs []EagerPairCap
}

// IssueCapture describes the querier-local processing of IssueQuery
// (Algorithm 2): the profiles answered from local storage, the initial
// partial result, and the remaining list seeding the first branch.
type IssueCapture struct {
	Qid        uint64
	Querier    tagging.UserID
	Needed     int
	UsedOwners []tagging.UserID // querier + stored neighbours, local-storage hits
	Local      []topk.Entry     // partial result over the local profiles
	Remaining  []tagging.UserID
	Done       bool // answered entirely from local storage
	Results    []topk.Entry
}

// LazyCycleCaptured runs one lazy cycle exactly like LazyCycle and
// returns the capture describing its exchanges. It requires synchronous
// delivery: the daemon's wire protocol is cycle-aligned.
func (e *Engine) LazyCycleCaptured() *LazyCapture {
	if e.cfg.Latency != nil {
		panic("core: capture requires synchronous delivery (Config.Latency == nil)")
	}
	cp := &LazyCapture{}
	e.lazyCycle(cp)
	return cp
}

// EagerCycleCaptured runs one eager cycle exactly like EagerCycle and
// returns the capture describing its gossips. It requires synchronous
// delivery.
func (e *Engine) EagerCycleCaptured() *EagerCapture {
	if e.cfg.Latency != nil {
		panic("core: capture requires synchronous delivery (Config.Latency == nil)")
	}
	cp := &EagerCapture{}
	e.eagerCycle(cp)
	return cp
}

// IssueQueryCaptured issues a query exactly like IssueQuery and returns
// the capture of the querier-local processing alongside the run.
func (e *Engine) IssueQueryCaptured(q trace.Query) (*QueryRun, *IssueCapture) {
	cp := &IssueCapture{}
	qr := e.issueQuery(q, cp)
	if qr == nil {
		return nil, nil
	}
	return qr, cp
}

// digestRefs converts an offer batch to its wire references.
func digestRefs(offers []offer) []DigestRef {
	if len(offers) == 0 {
		return nil
	}
	out := make([]DigestRef, len(offers))
	for i, o := range offers {
		out[i] = DigestRef{Owner: o.digest.Owner, Version: o.digest.Version, Bytes: o.digest.SizeBytes()}
	}
	return out
}

// descriptorRefs converts a peer-sampling buffer to its wire references.
func descriptorRefs(buf []gossip.Descriptor) []DigestRef {
	if len(buf) == 0 {
		return nil
	}
	out := make([]DigestRef, len(buf))
	for i, d := range buf {
		out[i] = DigestRef{Owner: d.Node, Version: d.Digest.Version, Bytes: d.Digest.SizeBytes()}
	}
	return out
}

// captureLazy fills cap from the cycle's committed plan slots, walking
// the canonical permutation order.
func (e *Engine) captureLazy(cp *LazyCapture, seq uint64, order []int) {
	cp.Seq = seq
	for _, i := range order {
		p := &e.vplans[i]
		if !p.used || p.dead {
			continue
		}
		cp.Views = append(cp.Views, ViewExchangeCap{
			Initiator: e.nodes[i].id,
			Partner:   p.partner,
			BufA:      descriptorRefs(p.bufA),
			BufB:      descriptorRefs(p.bufB),
		})
	}
	for _, i := range order {
		p := &e.tplans[i]
		if !p.used {
			continue
		}
		tc := TopExchangeCap{Initiator: e.nodes[i].id, HasPartner: p.ok}
		if p.ok {
			tc.Partner = p.partner
			tc.OffersA = digestRefs(p.exch.offersA)
			tc.OffersB = digestRefs(p.exch.offersB)
		}
		for ri := range p.rv {
			c := &p.rv[ri]
			if c.evalOnly {
				continue
			}
			d := e.nodes[c.owner].digest()
			tc.Fetches = append(tc.Fetches, DirectFetchCap{
				Owner: c.owner,
				Offer: DigestRef{Owner: c.owner, Version: d.Version, Bytes: d.SizeBytes()},
			})
		}
		if !tc.HasPartner && len(tc.Fetches) == 0 {
			continue
		}
		cp.Tops = append(cp.Tops, tc)
	}
}

// captureEagerContent fills cap with the plan-phase content of the
// cycle's gossips, before commit mutates any branch. The hand-off slices
// (foundOwners, plist, keep, returned) are freshly allocated per plan and
// never mutated after the cycle, so the capture aliases them; the branch
// aliases the initiator's live list, so it is copied.
func (e *Engine) captureEagerContent(cp *EagerCapture, seq uint64, plans []eagerPlan) {
	cp.Seq = seq
	cp.Pairs = make([]EagerPairCap, len(plans))
	for i := range plans {
		p := &plans[i]
		qr := e.queries[p.qid]
		pc := &cp.Pairs[i]
		pc.Initiator = p.u
		pc.Qid = p.qid
		pc.Ok = p.ok
		pc.Querier = qr.Query.Querier
		pc.Tags = qr.Query.Tags
		if !p.ok {
			continue
		}
		pc.Dest = p.dest
		pc.Branch = append([]tagging.UserID(nil), p.branch...)
		pc.FoundOwners = p.foundOwners
		pc.Plist = p.plist
		pc.Delivered = p.delivered
		pc.Keep = p.keep
		pc.Returned = p.returned
		pc.OffersA = digestRefs(p.exch.offersA)
		pc.OffersB = digestRefs(p.exch.offersB)
	}
}

// captureEagerOutcome fills in the commit-resolved fields after the shard
// committers and the finalize pass have run: the per-pair traffic
// attribution (the same arithmetic finalizeEagerGossip applies to the
// query totals) and the branch-drained flag.
func (e *Engine) captureEagerOutcome(cp *EagerCapture, plans []eagerPlan) {
	for i := range plans {
		p := &plans[i]
		pc := &cp.Pairs[i]
		t := p.ledger.Total()
		pc.Bytes.Forwarded = t.Bytes[sim.MsgQueryForward]
		pc.Bytes.Returned = t.Bytes[sim.MsgQueryReturn]
		pc.Bytes.PartialResults = t.Bytes[sim.MsgPartialResult]
		if !p.ok {
			continue
		}
		pc.BranchEmptied = p.branchEmptied
		pc.Bytes.Maintenance = p.exch.ledger.Total().TotalBytes() + p.peerBytes + p.selfBytes
	}
}

// captureIssue fills cap from the querier-local processing state.
func captureIssue(cp *IssueCapture, qr *QueryRun, u *Node, local []topk.Entry, remaining []tagging.UserID) {
	cp.Qid = qr.ID
	cp.Querier = u.id
	cp.Needed = qr.needed
	cp.UsedOwners = append(cp.UsedOwners, u.id)
	for _, entry := range u.pnet.StoredEntries() {
		cp.UsedOwners = append(cp.UsedOwners, entry.ID)
	}
	cp.Local = local
	cp.Remaining = remaining
	cp.Done = qr.done
	cp.Results = qr.results
}

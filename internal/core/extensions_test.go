package core

import (
	"testing"

	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

func TestReviveRestoresLiveness(t *testing.T) {
	w := newWorld(t, 100, smallCfg(), 30)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	killed := e.Kill(0.4)
	if e.Network().OnlineCount() != 100-len(killed) {
		t.Fatal("Kill bookkeeping wrong")
	}
	e.Revive(killed)
	if e.Network().OnlineCount() != 100 {
		t.Fatalf("online after revive = %d, want 100", e.Network().OnlineCount())
	}
	// Revived nodes keep their personal networks and answer queries again.
	for _, id := range killed[:3] {
		if e.Node(id).PersonalNetwork().Len() == 0 {
			t.Fatalf("revived node %d lost her personal network", id)
		}
		q, ok := trace.QueryFor(w.ds, id, 5)
		if !ok {
			continue
		}
		if qr := e.IssueQuery(q); qr == nil {
			t.Fatalf("revived node %d cannot query", id)
		}
	}
	e.RunEager(60)
	if !e.AllQueriesDone() {
		t.Fatal("queries from revived nodes did not complete")
	}
}

func TestReviveHealsQueriesAfterChurn(t *testing.T) {
	// A query stalled by departures completes after the departed nodes
	// return: no permanent protocol state is lost.
	cfg := smallCfg()
	w := newWorld(t, 120, cfg, 31)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 0, 9)
	qr := e.IssueQuery(q)
	killed := e.Kill(0.6)
	e.RunEager(15)
	stalledRecall := topk.Recall(qr.Results(), exactReference(e, q, cfg.K))
	e.Revive(killed)
	e.RunEager(60)
	if !qr.Done() {
		t.Fatal("query did not complete after revival")
	}
	finalRecall := topk.Recall(qr.Results(), exactReference(e, q, cfg.K))
	if finalRecall != 1 {
		t.Fatalf("final recall = %f, want 1 after revival", finalRecall)
	}
	if finalRecall < stalledRecall {
		t.Fatal("recall regressed after revival")
	}
}

func TestSeedExplicitNetworks(t *testing.T) {
	w := newWorld(t, 80, smallCfg(), 32)
	e := New(w.ds, w.cfg)
	// Declared friend lists: a ring of 10 friends each.
	contacts := make([][]tagging.UserID, 80)
	for u := 0; u < 80; u++ {
		for d := 1; d <= 10; d++ {
			contacts[u] = append(contacts[u], tagging.UserID((u+d)%80))
		}
	}
	e.SeedExplicitNetworks(contacts)
	for u := 0; u < 80; u++ {
		pn := e.Node(tagging.UserID(u)).PersonalNetwork()
		if pn.Len() != 10 {
			t.Fatalf("user %d has %d neighbours, want 10 declared friends", u, pn.Len())
		}
		for _, id := range pn.Members() {
			found := false
			for _, c := range contacts[u] {
				if c == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("user %d has undeclared neighbour %d", u, id)
			}
		}
		if len(pn.StoredEntries()) != min(w.cfg.C, 10) {
			t.Fatalf("user %d stores %d profiles, want %d", u, len(pn.StoredEntries()), min(w.cfg.C, 10))
		}
	}
}

func TestExplicitNetworksAnswerQueries(t *testing.T) {
	// §4: "only the eager mode of P3Q would suffice" — queries over
	// explicit networks complete and match the exact evaluation over the
	// declared contacts.
	cfg := smallCfg()
	cfg.StaticNetworks = true
	w := newWorld(t, 100, cfg, 33)
	e := New(w.ds, cfg)
	contacts := make([][]tagging.UserID, 100)
	for u := 0; u < 100; u++ {
		for d := 1; d <= 15; d++ {
			contacts[u] = append(contacts[u], tagging.UserID((u*3+d*7)%100))
		}
	}
	e.SeedExplicitNetworks(contacts)
	q, _ := trace.QueryFor(w.ds, 4, 2)
	qr := e.IssueQuery(q)
	e.RunEager(60)
	if !qr.Done() {
		t.Fatal("query over explicit network did not complete")
	}
	want := exactReference(e, q, cfg.K)
	got := qr.Results()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("explicit-network results diverge: got %v want %v", got, want)
		}
	}
}

func TestSeedExplicitNetworksSelfAndDuplicates(t *testing.T) {
	w := newWorld(t, 30, smallCfg(), 34)
	e := New(w.ds, w.cfg)
	contacts := make([][]tagging.UserID, 30)
	contacts[0] = []tagging.UserID{0, 1, 1, 2} // self + duplicate
	e.SeedExplicitNetworks(contacts)
	pn := e.Node(0).PersonalNetwork()
	if pn.Len() != 2 {
		t.Fatalf("user 0 has %d neighbours, want 2 (self and duplicate dropped)", pn.Len())
	}
	if pn.Contains(0) {
		t.Fatal("self admitted as friend")
	}
}

func TestSeedExplicitNetworksLengthPanics(t *testing.T) {
	w := newWorld(t, 20, smallCfg(), 35)
	e := New(w.ds, w.cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched contact list length did not panic")
		}
	}()
	e.SeedExplicitNetworks(make([][]tagging.UserID, 3))
}

func TestKnownProfilesContents(t *testing.T) {
	w := newWorld(t, 60, smallCfg(), 36)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	n := e.Node(5)
	known := n.KnownProfiles()
	if len(known) != 1+len(n.PersonalNetwork().StoredEntries()) {
		t.Fatalf("KnownProfiles returned %d snapshots", len(known))
	}
	if known[0].Owner() != 5 {
		t.Fatal("own profile not first in KnownProfiles")
	}
}

func TestStaticNetworksMembershipFrozen(t *testing.T) {
	cfg := smallCfg()
	cfg.StaticNetworks = true
	w := newWorld(t, 80, cfg, 37)
	e := New(w.ds, cfg)
	contacts := make([][]tagging.UserID, 80)
	for u := 0; u < 80; u++ {
		for d := 1; d <= 5; d++ {
			contacts[u] = append(contacts[u], tagging.UserID((u+d)%80))
		}
	}
	e.SeedExplicitNetworks(contacts)
	before := make(map[tagging.UserID][]tagging.UserID)
	for u := 0; u < 80; u++ {
		before[tagging.UserID(u)] = e.Node(tagging.UserID(u)).PersonalNetwork().Members()
	}
	// Heavy gossip: lazy cycles plus a full query load.
	e.RunLazy(10)
	for _, q := range trace.GenerateQueries(w.ds, 3)[:30] {
		e.IssueQuery(q)
	}
	e.RunEager(40)
	for u := 0; u < 80; u++ {
		got := e.Node(tagging.UserID(u)).PersonalNetwork().Members()
		want := before[tagging.UserID(u)]
		if len(got) != len(want) {
			t.Fatalf("user %d: membership size changed %d -> %d", u, len(want), len(got))
		}
		wantSet := make(map[tagging.UserID]bool, len(want))
		for _, id := range want {
			wantSet[id] = true
		}
		for _, id := range got {
			if !wantSet[id] {
				t.Fatalf("user %d: undeclared member %d joined a static network", u, id)
			}
		}
	}
}

func TestStaticNetworksStillRefreshReplicas(t *testing.T) {
	// Frozen membership must not freeze freshness: changed profiles of
	// declared friends still propagate.
	cfg := smallCfg()
	cfg.StaticNetworks = true
	w := newWorld(t, 60, cfg, 38)
	e := New(w.ds, cfg)
	contacts := make([][]tagging.UserID, 60)
	for u := 0; u < 60; u++ {
		for d := 1; d <= 8; d++ {
			contacts[u] = append(contacts[u], tagging.UserID((u+d)%60))
		}
	}
	e.SeedExplicitNetworks(contacts)
	changes := trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.5, MeanNew: 6, SigmaNew: 0.5, MaxNew: 20, Seed: 8,
	})
	changedVersion := make(map[tagging.UserID]int)
	for _, c := range changes {
		c.Apply(w.ds)
		changedVersion[c.User] = w.ds.Profiles[c.User].Version()
	}
	e.RunLazy(40)
	refreshed, subject := 0, 0
	for u := 0; u < 60; u++ {
		for _, entry := range e.Node(tagging.UserID(u)).PersonalNetwork().StoredEntries() {
			target, ok := changedVersion[entry.ID]
			if !ok {
				continue
			}
			subject++
			if entry.Stored.Version() >= target {
				refreshed++
			}
		}
	}
	if subject == 0 {
		t.Fatal("no replicas subject to change")
	}
	if frac := float64(refreshed) / float64(subject); frac < 0.5 {
		t.Fatalf("only %.0f%% of replicas refreshed under static networks", frac*100)
	}
}

func TestEngineStats(t *testing.T) {
	w := newWorld(t, 60, smallCfg(), 80)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 1, 1)
	e.IssueQuery(q)
	e.RunEager(40)
	e.Kill(0.1)
	st := e.Stats()
	if st.Users != 60 {
		t.Fatalf("stats users = %d", st.Users)
	}
	if st.Online != 54 {
		t.Fatalf("stats online = %d, want 54 after killing 10%%", st.Online)
	}
	if st.QueriesIssued != 1 || st.QueriesDone != 1 {
		t.Fatalf("stats queries = %d/%d", st.QueriesDone, st.QueriesIssued)
	}
	if st.MeanNeighbours <= 0 || st.MeanStored <= 0 || st.StoredActions <= 0 {
		t.Fatalf("stats fill empty: %+v", st)
	}
	if st.MeanStored > float64(w.cfg.C) {
		t.Fatalf("mean stored %f exceeds c=%d", st.MeanStored, w.cfg.C)
	}
	if st.Traffic.TotalBytes() == 0 {
		t.Fatal("stats traffic empty after a query")
	}
	if st.String() == "" {
		t.Fatal("stats render empty")
	}
}

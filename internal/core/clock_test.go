package core

import (
	"testing"
	"time"

	"p3q/internal/topk"
	"p3q/internal/trace"
)

func TestClockFiresCyclesAtPeriods(t *testing.T) {
	w := newWorld(t, 60, smallCfg(), 70)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	c := NewClock(e, time.Minute, 5*time.Second)

	c.Advance(4 * time.Second)
	if e.LazyCycles() != 0 || e.EagerCycles() != 0 {
		t.Fatalf("cycles fired before their periods: lazy=%d eager=%d",
			e.LazyCycles(), e.EagerCycles())
	}
	// Queries are needed for eager cycles to do work, but the schedule
	// advances regardless; lazy fires unconditionally.
	c.Advance(56 * time.Second) // now at 60s
	if e.LazyCycles() != 1 {
		t.Fatalf("lazy cycles at 60s = %d, want 1", e.LazyCycles())
	}
	c.Advance(2 * time.Minute) // now at 180s
	if e.LazyCycles() != 3 {
		t.Fatalf("lazy cycles at 180s = %d, want 3", e.LazyCycles())
	}
	if c.Now() != 180*time.Second {
		t.Fatalf("Now = %v, want 180s", c.Now())
	}
}

func TestClockEagerOnlyWithActiveQueries(t *testing.T) {
	w := newWorld(t, 60, smallCfg(), 71)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	c := NewClock(e, time.Minute, 5*time.Second)
	c.Advance(30 * time.Second)
	if e.EagerCycles() != 0 {
		t.Fatalf("eager cycles fired with no queries: %d", e.EagerCycles())
	}
	q, _ := trace.QueryFor(w.ds, 2, 1)
	qr := e.IssueQuery(q)
	c.Advance(30 * time.Second)
	if e.EagerCycles() == 0 && !qr.Done() {
		t.Fatal("eager mode never fired for an active query")
	}
}

func TestClockAnswersQueryWithinPaperBudget(t *testing.T) {
	// §3.5: queries answered accurately within 10 eager cycles = 50 seconds
	// at the 5-second eager period.
	w := newWorld(t, 120, smallCfg(), 72)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	c := NewClock(e, time.Minute, 5*time.Second)
	q, _ := trace.QueryFor(w.ds, 8, 3)
	qr := e.IssueQuery(q)
	elapsed := c.RunUntilQueriesDone(5 * time.Minute)
	if !qr.Done() {
		t.Fatal("query did not complete in 5 simulated minutes")
	}
	if elapsed > 90*time.Second {
		t.Fatalf("query took %v of simulated time, paper budget is ~50s", elapsed)
	}
	want := exactReference(e, q, w.cfg.K)
	if r := topk.Recall(qr.Results(), want); r != 1 {
		t.Fatalf("recall at completion = %f", r)
	}
}

func TestClockDefaultsPeriods(t *testing.T) {
	w := newWorld(t, 30, smallCfg(), 73)
	e := New(w.ds, w.cfg)
	c := NewClock(e, 0, 0)
	if c.LazyPeriod != time.Minute || c.EagerPeriod != 5*time.Second {
		t.Fatalf("defaults = %v/%v, want 1m/5s", c.LazyPeriod, c.EagerPeriod)
	}
}

func TestClockInterleavingMatchesPaperRatio(t *testing.T) {
	// 12 eager opportunities per lazy cycle at the paper's periods.
	w := newWorld(t, 60, smallCfg(), 74)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	// A stream of queries keeps the eager mode busy for the whole window.
	for _, q := range trace.GenerateQueries(w.ds, 7)[:30] {
		e.IssueQuery(q)
	}
	c := NewClock(e, time.Minute, 5*time.Second)
	c.Advance(time.Minute)
	if e.LazyCycles() != 1 {
		t.Fatalf("lazy cycles = %d, want 1", e.LazyCycles())
	}
	if e.EagerCycles() == 0 || e.EagerCycles() > 12 {
		t.Fatalf("eager cycles in one minute = %d, want 1..12", e.EagerCycles())
	}
}

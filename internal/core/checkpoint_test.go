package core

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"p3q/internal/sim"
	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// Tests for the checkpoint/restore subsystem. The correctness bar is the
// repository's determinism contract extended across a snapshot boundary:
// snapshot at cycle N, restore, run M more cycles, and the fingerprint must
// equal an uninterrupted N+M run byte for byte — in synchronous and
// asynchronous delivery, for Workers 1/2/7, including snapshots taken while
// events are frozen at departed nodes.

// checkpointCfg is the shared configuration of the split workload.
func checkpointCfg(workers int, lat sim.LatencyModel) Config {
	cfg := smallCfg()
	cfg.S = 15
	cfg.C = 5
	cfg.Workers = workers
	cfg.Latency = lat
	return cfg
}

// checkpointPhaseA drives an engine into a deliberately messy mid-run
// state: organically converged networks, applied profile changes, a query
// burst, and a churn wave striking mid-burst — so the snapshot carries
// stalled queries, remaining-list branches spread over the population and
// (under a latency model) pending and frozen delivery events. It returns
// the engine, its world and the killed IDs the continuation revives.
func checkpointPhaseA(t *testing.T, cfg Config) (*Engine, *testWorld, []tagging.UserID) {
	t.Helper()
	w := newWorld(t, 120, cfg, 77)
	e := New(w.ds, cfg)
	e.Bootstrap()
	e.RunLazy(8)

	trace.ApplyChanges(w.ds, trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.3, MeanNew: 4, SigmaNew: 0.5, MaxNew: 15, Seed: 9,
	}))
	e.RunLazy(4)

	for _, q := range trace.GenerateQueries(w.ds, 5)[:20] {
		e.IssueQuery(q)
	}
	e.RunEager(2)

	killed := e.Kill(0.25)
	if len(killed) == 0 {
		t.Fatal("Kill removed nobody")
	}
	for i := 0; i < 3; i++ {
		e.EagerCycle() // survivors gossip around the holes; async events freeze
	}
	e.RunLazy(1)
	return e, w, killed
}

// checkpointPhaseB continues the workload after the (real or hypothetical)
// snapshot point: revival, the stalled queries resuming to completion, a
// second churn wave and lazy maintenance.
func checkpointPhaseB(e *Engine, killed []tagging.UserID) string {
	e.RunLazy(1)
	e.Revive(killed)
	e.RunEager(30)
	second := e.Kill(0.25)
	e.RunLazy(4)
	e.Revive(second)
	e.RunLazy(4)
	return engineFingerprint(e)
}

// resumedRun executes phase A at snapWorkers, snapshots, restores at
// restoreWorkers (over the phase-A dataset, the warm-fork path), and runs
// phase B on the restored engine. wantFrozen asserts the snapshot was taken
// while events were frozen at departed nodes.
func resumedRun(t *testing.T, lat sim.LatencyModel, snapWorkers, restoreWorkers int, wantFrozen bool) string {
	t.Helper()
	e, w, killed := checkpointPhaseA(t, checkpointCfg(snapWorkers, lat))
	if wantFrozen && len(e.frozen) == 0 {
		t.Fatal("no events frozen at departed nodes at the snapshot point; the scenario must cover mid-burst snapshots")
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := Restore(&buf, w.ds, checkpointCfg(restoreWorkers, lat))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return checkpointPhaseB(restored, killed)
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	// Heavy-tailed latency pushes deliveries across cycle boundaries, so
	// the async snapshot carries in-flight events and frozen
	// store-and-forward state.
	lognormal := sim.LogNormalLatency{Median: 2 * time.Second, Sigma: 1.0}
	for _, mode := range []struct {
		name string
		lat  sim.LatencyModel
	}{
		{"sync", nil},
		{"async", lognormal},
	} {
		t.Run(mode.name, func(t *testing.T) {
			e, _, killed := checkpointPhaseA(t, checkpointCfg(1, mode.lat))
			want := checkpointPhaseB(e, killed)
			for _, workers := range []int{1, 2, 7} {
				got := resumedRun(t, mode.lat, workers, workers, mode.lat != nil)
				if got != want {
					t.Fatalf("Workers=%d resumed run diverged from the uninterrupted run:\n%s",
						workers, firstDiff(want, got))
				}
			}
			// The snapshot itself is worker-count independent: snapshot at
			// one worker count, restore at another.
			if got := resumedRun(t, mode.lat, 7, 2, mode.lat != nil); got != want {
				t.Fatalf("snapshot at Workers=7 restored at Workers=2 diverged:\n%s", firstDiff(want, got))
			}
		})
	}
}

func TestCheckpointEmbeddedDatasetResume(t *testing.T) {
	// Restoring with ds == nil rebuilds the dataset from the embedded
	// profile logs (the cross-process path: no base trace at hand). The
	// continuation must match the warm-fork restore byte for byte.
	e, w, killed := checkpointPhaseA(t, checkpointCfg(2, nil))
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	warm, err := Restore(bytes.NewReader(raw), w.ds, checkpointCfg(2, nil))
	if err != nil {
		t.Fatalf("Restore with dataset: %v", err)
	}
	embedded, err := Restore(bytes.NewReader(raw), nil, checkpointCfg(2, nil))
	if err != nil {
		t.Fatalf("Restore with embedded dataset: %v", err)
	}
	if embedded.Dataset() == w.ds {
		t.Fatal("embedded restore returned the caller's dataset")
	}
	a, b := checkpointPhaseB(warm, killed), checkpointPhaseB(embedded, killed)
	if a != b {
		t.Fatalf("embedded-dataset resume diverged from warm-fork resume:\n%s", firstDiff(a, b))
	}
}

func TestCheckpointSnapshotRoundTripBytes(t *testing.T) {
	// Snapshot -> Restore -> Snapshot must reproduce the identical byte
	// stream: the strongest cheap proof that nothing is lost or reordered.
	e, _, _ := checkpointPhaseA(t, checkpointCfg(2, sim.FixedLatency(7*time.Second)))
	var first bytes.Buffer
	if err := e.Snapshot(&first); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(first.Bytes()), nil, checkpointCfg(2, sim.FixedLatency(7*time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := restored.Snapshot(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("snapshot round trip changed the byte stream (%d vs %d bytes)", first.Len(), second.Len())
	}
}

// smallSnapshot builds a compact valid checkpoint for the rejection tests
// and the fuzzer seed corpus.
func smallSnapshot(t testing.TB) ([]byte, Config) {
	t.Helper()
	cfg := smallCfg()
	cfg.Workers = 1
	w := newWorld(t, 40, cfg, 11)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	for _, q := range trace.GenerateQueries(w.ds, 3)[:5] {
		e.IssueQuery(q)
	}
	e.RunEager(1)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), cfg
}

func TestRestoreRejectsGarbage(t *testing.T) {
	_, cfg := smallSnapshot(t)
	if _, err := Restore(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), nil, cfg); err == nil {
		t.Fatal("Restore accepted garbage input")
	}
	if _, err := Restore(bytes.NewReader(nil), nil, cfg); err == nil {
		t.Fatal("Restore accepted empty input")
	}
}

func TestRestoreRejectsTruncated(t *testing.T) {
	raw, cfg := smallSnapshot(t)
	for _, cut := range []int{len(raw) / 2, len(raw) - 1, 7} {
		if _, err := Restore(bytes.NewReader(raw[:cut]), nil, cfg); err == nil {
			t.Fatalf("Restore accepted a snapshot truncated to %d of %d bytes", cut, len(raw))
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d bytes surfaced as %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestRestoreRejectsVersionSkew(t *testing.T) {
	raw, cfg := smallSnapshot(t)
	skewed := append([]byte(nil), raw...)
	skewed[4] ^= 0xFF // the version field sits behind the 4-byte magic
	_, err := Restore(bytes.NewReader(skewed), nil, cfg)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-skewed snapshot surfaced as %v, want a version error", err)
	}
}

func TestRestoreRejectsConfigMismatch(t *testing.T) {
	raw, cfg := smallSnapshot(t)
	bad := cfg
	bad.S = cfg.S + 1
	if _, err := Restore(bytes.NewReader(raw), nil, bad); err == nil || !strings.Contains(err.Error(), "config mismatch") {
		t.Fatalf("restore with a different S surfaced as %v, want a config mismatch", err)
	}
	bad = cfg
	bad.Seed = cfg.Seed + 99
	if _, err := Restore(bytes.NewReader(raw), nil, bad); err == nil || !strings.Contains(err.Error(), "config mismatch") {
		t.Fatalf("restore with a different Seed surfaced as %v, want a config mismatch", err)
	}
}

func TestRestoreRejectsCAssignMismatch(t *testing.T) {
	// Heterogeneous storage capacities are config too: restoring under a
	// different CAssign draw must fail the config-match contract, not
	// silently keep the snapshot's capacities.
	cfg := smallCfg()
	cfg.Workers = 1
	w := newWorld(t, 40, cfg, 11)
	cfg.CAssign = make([]int, 40)
	for i := range cfg.CAssign {
		cfg.CAssign[i] = 3 + i%5
	}
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Restore(bytes.NewReader(raw), nil, cfg); err != nil {
		t.Fatalf("restore under the snapshotting CAssign failed: %v", err)
	}
	bad := cfg
	bad.CAssign = make([]int, 40)
	for i := range bad.CAssign {
		bad.CAssign[i] = 2 + i%7 // a different draw
	}
	if _, err := Restore(bytes.NewReader(raw), nil, bad); err == nil || !strings.Contains(err.Error(), "config mismatch") {
		t.Fatalf("restore under a different CAssign surfaced as %v, want a config mismatch", err)
	}
	short := cfg
	short.CAssign = cfg.CAssign[:10]
	if _, err := Restore(bytes.NewReader(raw), nil, short); err == nil {
		t.Fatal("restore accepted a CAssign of the wrong length")
	}
}

func TestRestoreRejectsForeignDataset(t *testing.T) {
	raw, cfg := smallSnapshot(t)
	other := newWorld(t, 40, cfg, 99) // same size, different content
	if _, err := Restore(bytes.NewReader(raw), other.ds, cfg); err == nil {
		t.Fatal("Restore accepted a dataset that is not the checkpoint's base")
	}
}

func TestRestoreRejectsAheadDataset(t *testing.T) {
	// A dataset that already advanced past the snapshot (changes applied
	// after the checkpoint was written) cannot be rolled back.
	cfg := smallCfg()
	cfg.Workers = 1
	w := newWorld(t, 40, cfg, 11)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trace.ApplyChanges(w.ds, trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.5, MeanNew: 3, SigmaNew: 0.5, MaxNew: 10, Seed: 4,
	}))
	if _, err := Restore(&buf, w.ds, cfg); err == nil {
		t.Fatal("Restore accepted a dataset ahead of the checkpoint")
	}
}

// TestFuzzSeedCorpusRestores keeps the on-disk seed corpus of FuzzRestore
// honest: every testdata/fuzz/FuzzRestore entry must parse as a
// `go test fuzz v1` []byte literal, and the valid-snapshot seed must
// restore successfully at the current format version. When the format (or
// the checkpoint.Version constant) changes, this fails and signals that
// the seed needs regenerating from smallSnapshot.
func TestFuzzSeedCorpusRestores(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzRestore")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus directory is empty")
	}
	_, cfg := smallSnapshot(t)
	restored := 0
	for _, ent := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(strings.TrimSuffix(string(raw), "\n"), "\n", 2)
		if len(lines) != 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go test fuzz v1 corpus file", ent.Name())
		}
		lit := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		data, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: corpus []byte literal does not unquote: %v", ent.Name(), err)
		}
		e, err := Restore(bytes.NewReader([]byte(data)), nil, cfg)
		if err != nil {
			t.Fatalf("%s: seed no longer restores at the current version: %v", ent.Name(), err)
		}
		e.LazyCycle()
		restored++
	}
	if restored == 0 {
		t.Fatal("no corpus entry restored")
	}
}

// FuzzRestore hardens the checkpoint parser the way FuzzLoad hardens the
// trace parser: arbitrary input must never panic or hang, and anything
// accepted must yield an engine that survives running real cycles.
func FuzzRestore(f *testing.F) {
	raw, cfg := smallSnapshot(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:16])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Restore(bytes.NewReader(data), nil, cfg)
		if err != nil {
			return // rejecting malformed input is correct
		}
		// Accepted input must be internally coherent: cycles of both modes
		// must run and the state must re-snapshot.
		_ = e.Stats()
		e.LazyCycle()
		e.EagerCycle()
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			t.Fatalf("re-snapshotting an accepted restore failed: %v", err)
		}
	})
}

package core

import (
	"testing"

	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// Edge cases of the eager mode and engine lifecycle.

func TestQueryWithUnknownTags(t *testing.T) {
	// A query whose tags nobody ever used returns empty results but still
	// terminates cleanly (every profile must still be consulted).
	w := newWorld(t, 80, smallCfg(), 50)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	q := trace.Query{Querier: 2, Tags: []tagging.TagID{999999}}
	qr := e.IssueQuery(q)
	e.RunEager(60)
	if !qr.Done() {
		t.Fatal("unknown-tag query did not terminate")
	}
	if len(qr.Results()) != 0 {
		t.Fatalf("unknown-tag query returned %v", qr.Results())
	}
}

func TestQueryWithEmptyTagList(t *testing.T) {
	w := newWorld(t, 60, smallCfg(), 51)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	qr := e.IssueQuery(trace.Query{Querier: 1})
	e.RunEager(60)
	if !qr.Done() {
		t.Fatal("empty query did not terminate")
	}
	if len(qr.Results()) != 0 {
		t.Fatal("empty query produced results")
	}
}

func TestQuerierWithEmptyPersonalNetwork(t *testing.T) {
	// A freshly booted node (no neighbours yet) gets a purely local answer
	// and the query completes immediately.
	w := newWorld(t, 50, smallCfg(), 52)
	e := New(w.ds, w.cfg)
	e.Bootstrap() // no lazy cycles: personal networks empty
	q, _ := trace.QueryFor(w.ds, 7, 1)
	qr := e.IssueQuery(q)
	if !qr.Done() {
		t.Fatal("query over empty personal network should complete locally")
	}
	if qr.ProfilesNeeded() != 1 || qr.ProfilesUsed() != 1 {
		t.Fatalf("needed/used = %d/%d, want 1/1 (own profile only)",
			qr.ProfilesNeeded(), qr.ProfilesUsed())
	}
	// The local answer contains the query's source item.
	found := false
	for _, entry := range qr.Results() {
		if entry.Item == q.Item {
			found = true
		}
	}
	if !found {
		t.Fatal("local-only results miss the query's own source item")
	}
}

func TestManyConcurrentQueriesFromOneUser(t *testing.T) {
	w := newWorld(t, 100, smallCfg(), 53)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	var runs []*QueryRun
	for i := 0; i < 8; i++ {
		q, ok := trace.QueryFor(w.ds, 9, uint64(60+i))
		if !ok {
			t.Fatal("no query")
		}
		runs = append(runs, e.IssueQuery(q))
	}
	e.RunEager(80)
	for i, qr := range runs {
		if !qr.Done() {
			t.Fatalf("concurrent query %d did not complete", i)
		}
		want := exactReference(e, qr.Query, w.cfg.K)
		if r := topk.Recall(qr.Results(), want); r != 1 {
			t.Fatalf("concurrent query %d recall = %f", i, r)
		}
	}
}

func TestKGreaterThanAvailableItems(t *testing.T) {
	cfg := smallCfg()
	cfg.K = 10000
	w := newWorld(t, 60, cfg, 54)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 3, 2)
	qr := e.IssueQuery(q)
	e.RunEager(60)
	if !qr.Done() {
		t.Fatal("huge-k query did not complete")
	}
	// Every item with a positive score, no more.
	for _, entry := range qr.Results() {
		if entry.Score <= 0 {
			t.Fatalf("huge-k results include non-positive score: %v", entry)
		}
	}
}

func TestEagerCycleWithNoQueriesIsCheap(t *testing.T) {
	w := newWorld(t, 60, smallCfg(), 55)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	before := e.Network().Total()
	e.EagerCycle()
	diff := e.Network().Total().Since(before)
	if diff.TotalBytes() != 0 {
		t.Fatalf("idle eager cycle transmitted %d bytes", diff.TotalBytes())
	}
	if e.EagerCycles() != 1 {
		t.Fatal("cycle counter not advanced")
	}
}

func TestLazyCycleOnAllOfflinePopulation(t *testing.T) {
	w := newWorld(t, 40, smallCfg(), 56)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	e.Kill(1.0)
	e.LazyCycle() // must not panic or transmit
	if got := e.Network().Total().TotalBytes(); got != 0 {
		t.Fatalf("all-offline lazy cycle transmitted %d bytes", got)
	}
}

func TestQueryCompletionExactUnderHeterogeneousStorage(t *testing.T) {
	cfg := smallCfg()
	cfg.CAssign = make([]int, 100)
	for i := range cfg.CAssign {
		cfg.CAssign[i] = 1 + i%7 // wildly heterogeneous
	}
	w := newWorld(t, 100, cfg, 57)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	for _, q := range trace.GenerateQueries(w.ds, 5)[:15] {
		e.IssueQuery(q)
	}
	e.RunEager(80)
	if !e.AllQueriesDone() {
		t.Fatal("heterogeneous queries did not complete")
	}
	for _, qr := range e.Queries() {
		want := exactReference(e, qr.Query, cfg.K)
		got := qr.Results()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("heterogeneous results diverge: %v vs %v", got, want)
			}
		}
	}
}

func TestSingleUserPopulation(t *testing.T) {
	p := trace.DefaultGenParams(10)
	p.Seed = 58
	ds := trace.Generate(p)
	// Shrink to one user.
	ds.Profiles = ds.Profiles[:1]
	cfg := smallCfg()
	e := New(ds, cfg)
	e.Bootstrap()
	e.RunLazy(3) // nothing to gossip with; must not panic
	q, ok := trace.QueryFor(ds, 0, 1)
	if !ok {
		t.Skip("single user has empty profile")
	}
	qr := e.IssueQuery(q)
	if qr == nil || !qr.Done() {
		t.Fatal("single-user query should complete locally")
	}
}

func TestChurnDuringLazyConvergence(t *testing.T) {
	// Failure injection: nodes die midway through organic convergence; the
	// survivors keep converging among themselves.
	cfg := smallCfg()
	cfg.S = 10
	w := newWorld(t, 120, cfg, 59)
	e := New(w.ds, cfg)
	e.Bootstrap()
	e.RunLazy(8)
	e.Kill(0.4)
	e.RunLazy(15) // must not panic; probes accounted
	alive := 0
	withNeighbours := 0
	for u := 0; u < e.Users(); u++ {
		if !e.Network().Online(tagging.UserID(u)) {
			continue
		}
		alive++
		if e.Node(tagging.UserID(u)).PersonalNetwork().Len() > 0 {
			withNeighbours++
		}
	}
	if withNeighbours < alive*8/10 {
		t.Fatalf("only %d/%d survivors have neighbours after churned convergence",
			withNeighbours, alive)
	}
}

func TestInterleavedLazyAndEagerCycles(t *testing.T) {
	// The paper's deployment runs both modes concurrently (lazy each
	// minute, eager every 5s). Interleaving them must preserve exactness.
	w := newWorld(t, 100, smallCfg(), 60)
	e := New(w.ds, w.cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 5, 3)
	qr := e.IssueQuery(q)
	want := exactReference(e, q, w.cfg.K)
	for i := 0; i < 40 && !qr.Done(); i++ {
		e.EagerCycle()
		if i%3 == 0 {
			e.LazyCycle()
		}
	}
	if !qr.Done() {
		t.Fatal("query did not complete under interleaved modes")
	}
	got := qr.Results()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaved results diverge: %v vs %v", got, want)
		}
	}
}

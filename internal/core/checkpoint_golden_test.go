package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_checkpoint.bin from the current engine")

// TestCheckpointGoldenRoundTrip pins the checkpoint byte format against a
// golden file committed to the repository. TestCheckpointSnapshotRoundTripBytes
// proves Snapshot -> Restore -> Snapshot is a fixed point within one build;
// the golden extends that across commits: refactors of the engine's
// in-memory layout (dense personal networks, pooled plan slots, lazily
// allocated branch maps) must not perturb a single byte of the wire format,
// or old checkpoints silently stop restoring. A deliberate format change
// bumps checkpoint.Version and regenerates the golden with:
//
//	go test ./internal/core/ -run TestCheckpointGoldenRoundTrip -update-golden
//
// (TestFuzzSeedCorpusRestores will demand its seed regenerated at the same
// time.)
func TestCheckpointGoldenRoundTrip(t *testing.T) {
	raw, cfg := smallSnapshot(t)
	path := filepath.Join("testdata", "golden_checkpoint.bin")
	if *updateGolden {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(raw))
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden checkpoint unreadable (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(raw, golden) {
		t.Fatalf("checkpoint byte stream diverged from the golden (%d vs %d bytes); "+
			"if a format change is intentional, bump the version and regenerate with -update-golden",
			len(raw), len(golden))
	}
	e, err := Restore(bytes.NewReader(golden), nil, cfg)
	if err != nil {
		t.Fatalf("golden checkpoint no longer restores: %v", err)
	}
	var again bytes.Buffer
	if err := e.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, again.Bytes()) {
		t.Fatalf("restore -> snapshot of the golden changed the byte stream (%d vs %d bytes)",
			len(golden), again.Len())
	}
}

package core

import (
	"fmt"

	"p3q/internal/sim"
	"p3q/internal/tagging"
)

// EngineStats is a point-in-time summary of a running engine, for
// monitoring and the example tools.
type EngineStats struct {
	Users  int
	Online int

	LazyCycles  int
	EagerCycles int

	// MeanNeighbours is the average personal network fill across online
	// nodes; MeanStored the average number of stored replicas.
	MeanNeighbours float64
	MeanStored     float64
	// StoredActions is the total number of tagging actions held as
	// replicas across all nodes (the Figure 5 storage metric, aggregated).
	StoredActions int

	QueriesIssued int
	QueriesDone   int
	// QueriesStalled counts queries suspended because their querier
	// departed mid-query; they resume when the querier revives.
	QueriesStalled int

	Traffic sim.Traffic
}

// Stats summarizes the engine's current state in O(users + stored).
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Users:         len(e.nodes),
		Online:        e.net.OnlineCount(),
		LazyCycles:    e.lazyCycles,
		EagerCycles:   e.eagerCycles,
		QueriesIssued: len(e.queryOrder),
		Traffic:       e.net.Total(),
	}
	var neighbours, stored int
	for _, n := range e.nodes {
		neighbours += n.pnet.Len()
		for _, entry := range n.pnet.StoredEntries() {
			stored++
			st.StoredActions += entry.Stored.Len()
		}
	}
	if st.Users > 0 {
		st.MeanNeighbours = float64(neighbours) / float64(st.Users)
		st.MeanStored = float64(stored) / float64(st.Users)
	}
	for _, id := range e.queryOrder {
		qr := e.queries[id]
		if qr.done {
			st.QueriesDone++
		} else if qr.Stalled() {
			st.QueriesStalled++
		}
	}
	return st
}

// String renders the summary on two lines.
func (s EngineStats) String() string {
	return fmt.Sprintf(
		"nodes %d (%d online), cycles lazy=%d eager=%d, queries %d/%d done\n"+
			"pnet fill %.1f, stored %.1f replicas/user (%s replica data), traffic %d msgs / %s",
		s.Users, s.Online, s.LazyCycles, s.EagerCycles, s.QueriesDone, s.QueriesIssued,
		s.MeanNeighbours, s.MeanStored,
		byteCount(uint64(tagging.ActionsWireSize(s.StoredActions))),
		s.Traffic.TotalMsgs(), byteCount(s.Traffic.TotalBytes()))
}

// byteCount renders a byte quantity with a binary-ish unit.
func byteCount(b uint64) string {
	const unit = 1000
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %cB", float64(b)/float64(div), "KMGTPE"[exp])
}

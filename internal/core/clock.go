package core

import "time"

// Clock drives the bimodal protocol in simulated wall-clock time, the way
// the paper's summary (§3.5) reasons about deployment: "Assume 1 minute per
// cycle and 5 seconds per cycle are used in the lazy mode and the eager
// mode respectively, the query can be accurately answered within 50
// seconds". The lazy mode fires every LazyPeriod on every node; the eager
// mode fires every EagerPeriod but only does work while queries are active
// (it is on-demand, §2.2).
//
// The clock is purely simulated: Advance processes due cycles in timestamp
// order (lazy before eager on ties, both periods anchored at time zero) and
// never sleeps.
type Clock struct {
	e           *Engine
	LazyPeriod  time.Duration
	EagerPeriod time.Duration

	now       time.Duration
	nextLazy  time.Duration
	nextEager time.Duration
}

// NewClock returns a clock over the engine with the given mode periods.
// The paper's deployment values are 60s lazy / 5s eager.
func NewClock(e *Engine, lazy, eager time.Duration) *Clock {
	if lazy <= 0 {
		lazy = time.Minute
	}
	if eager <= 0 {
		eager = 5 * time.Second
	}
	return &Clock{
		e:           e,
		LazyPeriod:  lazy,
		EagerPeriod: eager,
		nextLazy:    lazy,
		nextEager:   eager,
	}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves simulated time forward by d, firing every lazy and eager
// cycle that becomes due, in order. Eager cycles fire only while at least
// one query is active; their schedule stays anchored regardless, so a query
// issued mid-stream waits at most one EagerPeriod for its first cycle.
func (c *Clock) Advance(d time.Duration) {
	target := c.now + d
	for {
		next := c.nextLazy
		if c.nextEager < next {
			next = c.nextEager
		}
		if next > target {
			break
		}
		c.now = next
		// Lazy first on ties: the low-frequency maintenance tick is the
		// stable background the eager burst rides on.
		if c.nextLazy == next {
			c.e.LazyCycle()
			c.nextLazy += c.LazyPeriod
			continue
		}
		if !c.e.AllQueriesDone() {
			c.e.EagerCycle()
		}
		c.nextEager += c.EagerPeriod
	}
	c.now = target
}

// RunUntilQueriesDone advances until every issued query completes or the
// simulated deadline elapses, and returns the simulated time consumed since
// the call.
func (c *Clock) RunUntilQueriesDone(max time.Duration) time.Duration {
	start := c.now
	for c.now-start < max && !c.e.AllQueriesDone() {
		step := c.EagerPeriod
		if remaining := max - (c.now - start); step > remaining {
			step = remaining
		}
		c.Advance(step)
	}
	return c.now - start
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p3q/internal/randx"
	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// Property-based tests (testing/quick) on the protocol's core invariants.

func TestSplitRemainingPartitionProperty(t *testing.T) {
	// keep ∪ returned == rest, keep ∩ returned == ∅, for every alpha and
	// list shape.
	f := func(n uint8, alphaRaw uint8, seed uint64) bool {
		alpha := float64(alphaRaw%101) / 100
		rest := make([]tagging.UserID, n)
		for i := range rest {
			rest[i] = tagging.UserID(i)
		}
		rng := randx.NewSource(seed)
		keep, returned := splitRemaining(rest, alpha, rng)
		if len(keep)+len(returned) != len(rest) {
			return false
		}
		seen := make(map[tagging.UserID]bool, len(rest))
		for _, u := range append(append([]tagging.UserID{}, keep...), returned...) {
			if seen[u] {
				return false
			}
			seen[u] = true
		}
		for _, u := range rest {
			if !seen[u] {
				return false
			}
		}
		// The destination keeps floor((1-alpha)*n).
		wantKeep := int((1 - alpha) * float64(len(rest)))
		if len(rest) > 0 && wantKeep < len(rest) && len(keep) != wantKeep {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRemainingExtremes(t *testing.T) {
	rest := []tagging.UserID{1, 2, 3, 4}
	rng := randx.NewSource(1)
	keep, ret := splitRemaining(rest, 1, rng) // alpha=1: all returned
	if len(keep) != 0 || len(ret) != 4 {
		t.Fatalf("alpha=1: keep=%d ret=%d", len(keep), len(ret))
	}
	keep, ret = splitRemaining(rest, 0, rng) // alpha=0: all kept
	if len(keep) != 4 || len(ret) != 0 {
		t.Fatalf("alpha=0: keep=%d ret=%d", len(keep), len(ret))
	}
	keep, ret = splitRemaining(nil, 0.5, rng)
	if keep != nil || ret != nil {
		t.Fatal("empty rest should split into nils")
	}
}

func TestMergeUniqueProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		branch := make([]tagging.UserID, len(a))
		for i, v := range a {
			branch[i] = tagging.UserID(v % 32)
		}
		// Deduplicate the starting branch as the protocol guarantees.
		branch = mergeUnique(nil, branch)
		add := make([]tagging.UserID, len(b))
		for i, v := range b {
			add[i] = tagging.UserID(v % 32)
		}
		merged := mergeUnique(branch, add)
		seen := make(map[tagging.UserID]int)
		for _, u := range merged {
			seen[u]++
			if seen[u] > 1 {
				return false
			}
		}
		// Everything from both inputs is present.
		for _, u := range branch {
			if seen[u] == 0 {
				return false
			}
		}
		for _, u := range add {
			if seen[u] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPnetInvariantsUnderRandomUpserts(t *testing.T) {
	// After any sequence of Upserts and Rebalances: size <= s, stored <= c,
	// the stored entries are exactly the top-c of the ranking, and the
	// ranking is sorted.
	f := func(ops []uint16, seed uint64) bool {
		pn := NewPersonalNetwork(999, 8, 3)
		rng := rand.New(rand.NewSource(int64(seed)))
		profiles := make(map[tagging.UserID]*tagging.Profile)
		for _, op := range ops {
			id := tagging.UserID(op % 40)
			if id == 999 {
				continue
			}
			score := int(op%13) + 1
			p := profiles[id]
			if p == nil {
				p = tagging.NewProfile(id)
				p.Add(tagging.ItemID(rng.Intn(100)), tagging.TagID(rng.Intn(10)))
				profiles[id] = p
			}
			d := tagging.NewDigest(p.Snapshot(), 256, 3)
			e := pn.Upsert(id, score, d)
			for _, need := range pn.Rebalance() {
				need.Stored = profiles[need.ID].Snapshot()
			}
			_ = e
		}
		if pn.Len() > 8 {
			return false
		}
		ranking := pn.Ranking()
		for i := 1; i < len(ranking); i++ {
			a, b := ranking[i-1], ranking[i]
			if a.Score < b.Score || (a.Score == b.Score && a.ID > b.ID) {
				return false
			}
		}
		stored := pn.StoredEntries()
		if len(stored) > 3 {
			return false
		}
		// Stored entries are a prefix of the ranking.
		for i, e := range stored {
			if ranking[i].ID != e.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryPartitionInvariantDuringProcessing(t *testing.T) {
	// At every point of a query's processing, each personal-network member
	// of the querier is in AT MOST one remaining list across all nodes, and
	// never in a remaining list after her profile was used.
	cfg := smallCfg()
	w := newWorld(t, 120, cfg, 40)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	q, _ := trace.QueryFor(w.ds, 3, 14)
	qr := e.IssueQuery(q)
	for cycle := 0; cycle < 40 && !qr.Done(); cycle++ {
		e.EagerCycle()
		holders := make(map[tagging.UserID]tagging.UserID) // member -> branch holder
		for u := 0; u < e.Users(); u++ {
			node := e.nodes[u]
			for qid, branch := range node.branches {
				if qid != qr.ID {
					continue
				}
				for _, member := range branch {
					if prev, dup := holders[member]; dup {
						t.Fatalf("cycle %d: member %d in two remaining lists (%d and %d)",
							cycle, member, prev, u)
					}
					holders[member] = tagging.UserID(u)
					if _, used := qr.used[member]; used {
						t.Fatalf("cycle %d: member %d still pending after being used", cycle, member)
					}
				}
			}
		}
	}
	if !qr.Done() {
		t.Fatal("query did not complete")
	}
}

func TestScoresNeverDecreaseUnderGossip(t *testing.T) {
	// Profiles are append-only, so a neighbour's similarity score can only
	// grow as fresher versions are integrated.
	cfg := smallCfg()
	w := newWorld(t, 80, cfg, 41)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	before := make(map[[2]uint32]int)
	for u := 0; u < e.Users(); u++ {
		for _, entry := range e.nodes[u].pnet.Ranking() {
			before[[2]uint32{uint32(u), uint32(entry.ID)}] = entry.Score
		}
	}
	trace.ApplyChanges(w.ds, trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.4, MeanNew: 6, SigmaNew: 0.5, MaxNew: 25, Seed: 12,
	}))
	e.RunLazy(15)
	for u := 0; u < e.Users(); u++ {
		for _, entry := range e.nodes[u].pnet.Ranking() {
			if old, ok := before[[2]uint32{uint32(u), uint32(entry.ID)}]; ok && entry.Score < old {
				t.Fatalf("user %d neighbour %d: score fell %d -> %d", u, entry.ID, old, entry.Score)
			}
		}
	}
}

func TestStoredReplicasNeverNewerThanOwner(t *testing.T) {
	// A replica can lag its owner but can never be ahead of her.
	cfg := smallCfg()
	w := newWorld(t, 80, cfg, 42)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)
	trace.ApplyChanges(w.ds, trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.5, MeanNew: 8, SigmaNew: 0.6, MaxNew: 30, Seed: 13,
	}))
	for cycle := 0; cycle < 10; cycle++ {
		e.LazyCycle()
		for u := 0; u < e.Users(); u++ {
			for _, entry := range e.nodes[u].pnet.StoredEntries() {
				owner := w.ds.Profiles[entry.ID]
				if entry.Stored.Version() > owner.Version() {
					t.Fatalf("user %d stores version %d of %d, owner only has %d",
						u, entry.Stored.Version(), entry.ID, owner.Version())
				}
				if entry.Digest.Version > owner.Version() {
					t.Fatalf("user %d knows digest version %d of %d, owner only has %d",
						u, entry.Digest.Version, entry.ID, owner.Version())
				}
			}
		}
	}
}

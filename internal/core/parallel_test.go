package core

import (
	"fmt"
	"testing"

	"p3q/internal/sim"
	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// engineFingerprint captures everything the determinism contract promises:
// personal networks (members, scores, timestamps, digest and stored
// versions), random views, query results, per-query time metrics
// (time-to-first-result / time-to-full-recall on the virtual clock),
// in-flight and frozen delivery events, and the network's full traffic
// counters, globally and per node.
func engineFingerprint(e *Engine) string {
	out := ""
	for u := 0; u < e.Users(); u++ {
		n := e.Node(tagging.UserID(u))
		out += fmt.Sprintf("node %d online=%v\n", u, e.Network().Online(n.ID()))
		for _, entry := range n.PersonalNetwork().Ranking() {
			out += fmt.Sprintf("  pnet %d score=%d ts=%d dv=%d sv=%d\n",
				entry.ID, entry.Score, entry.Age(), entry.Digest.Version, entry.Stored.Version())
		}
		for _, d := range n.View().Entries() {
			out += fmt.Sprintf("  view %d v=%d\n", d.Node, d.Digest.Version)
		}
		tr := e.Network().NodeTraffic(n.ID())
		out += fmt.Sprintf("  sent msgs=%d bytes=%d\n", tr.TotalMsgs(), tr.TotalBytes())
	}
	for _, qr := range e.Queries() {
		out += fmt.Sprintf("query %d state=%v reached=%v used=%d:", qr.ID, qr.State(), qr.Reached(), qr.ProfilesUsed())
		for _, r := range qr.Results() {
			out += fmt.Sprintf(" %d/%d", r.Item, r.Score)
		}
		b := qr.Bytes()
		t1st, tfull := int64(-1), int64(-1)
		if d, ok := qr.TimeToFirstResult(); ok {
			t1st = int64(d)
		}
		if d, ok := qr.TimeToFullRecall(); ok {
			tfull = int64(d)
		}
		out += fmt.Sprintf(" bytes=%d/%d/%d/%d cyc=%d t1st=%d tfull=%d inflight=%d\n",
			b.Forwarded, b.Returned, b.PartialResults, b.Maintenance,
			qr.Cycles(), t1st, tfull, qr.InFlight())
	}
	total := e.Network().Total()
	for _, k := range sim.Kinds() {
		out += fmt.Sprintf("total %v msgs=%d bytes=%d\n", k, total.Msgs[k], total.Bytes[k])
	}
	for u := 0; u < e.Users(); u++ {
		if n := len(e.frozen[tagging.UserID(u)]); n > 0 {
			out += fmt.Sprintf("frozen %d n=%d\n", u, n)
		}
	}
	out += fmt.Sprintf("now=%d pending=%d\n", int64(e.Now()), e.PendingEvents())
	out += fmt.Sprintf("naive=%d\n", e.NaiveExchangeBytes())
	return out
}

// runMixedWorkload drives an engine through the full protocol surface:
// organic lazy convergence, profile changes, a query burst over eager
// cycles with massive departures striking mid-burst (stalling the killed
// queriers' queries and probing departed branch holders), lazy maintenance
// under churn, revival, and a second churn wave.
func runMixedWorkload(t *testing.T, workers int) string {
	t.Helper()
	cfg := smallCfg()
	cfg.S = 15
	cfg.C = 5
	cfg.Workers = workers
	w := newWorld(t, 120, cfg, 77)
	e := New(w.ds, cfg)
	e.Bootstrap()
	e.RunLazy(8)

	trace.ApplyChanges(w.ds, trace.GenerateChanges(w.ds, trace.ChangeParams{
		FracUsers: 0.3, MeanNew: 4, SigmaNew: 0.5, MaxNew: 15, Seed: 9,
	}))
	e.RunLazy(4)

	for _, q := range trace.GenerateQueries(w.ds, 5)[:20] {
		e.IssueQuery(q)
	}
	e.RunEager(2)

	// Churn mid-burst: 25% departures over 20 queriers all but guarantee
	// stalled queries; the survivors keep gossiping around the holes.
	killed := e.Kill(0.25)
	if len(killed) == 0 {
		t.Fatal("Kill removed nobody")
	}
	stalled := 0
	for _, qr := range e.Queries() {
		if qr.State() == QueryStalled {
			stalled++
		}
	}
	if stalled == 0 {
		t.Fatal("churn stalled no query; the mixed scenario must cover the querier-departure path")
	}
	for i := 0; i < 3; i++ {
		e.EagerCycle()
	}
	e.RunLazy(2)
	e.Revive(killed)
	e.RunEager(20) // stalled queries resume

	killed = e.Kill(0.25)
	if len(killed) == 0 {
		t.Fatal("second Kill removed nobody")
	}
	e.RunLazy(4)
	e.Revive(killed)
	e.RunLazy(4)

	return engineFingerprint(e)
}

func TestParallelDeterminism(t *testing.T) {
	// A Workers: N engine and a Workers: 1 engine over the same dataset
	// and seed must produce byte-for-byte identical personal networks,
	// query results, reached-sets and sim.Network traffic counters after
	// mixed lazy/eager/churn cycles — both modes plan AND commit in
	// parallel. Run this test under -race to also certify both phases
	// data-race free (the CI workflow does).
	sequential := runMixedWorkload(t, 1)
	for _, workers := range []int{2, 8} {
		parallel := runMixedWorkload(t, workers)
		if parallel != sequential {
			t.Fatalf("Workers=%d diverged from Workers=1:\n%s", workers,
				firstDiff(sequential, parallel))
		}
	}
}

func TestShardCountIndependence(t *testing.T) {
	// Workers also sets the number of commit shards: the 120-node mixed
	// workload partitions into 1, 2 and 7 contiguous ranges here — 7 does
	// not divide 120, so the last shard is short, and pairs routinely span
	// two shards. The fingerprints must still match byte-for-byte: shards
	// never share a node and each node receives its intents in the
	// canonical (cycle, pair, role) order regardless of the partition.
	want := runMixedWorkload(t, 1)
	for _, workers := range []int{2, 7} {
		got := runMixedWorkload(t, workers)
		if got != want {
			t.Fatalf("Workers=%d sharded commit diverged from Workers=1:\n%s",
				workers, firstDiff(want, got))
		}
	}
}

// firstDiff returns the first differing line of two fingerprints, for
// readable failure output.
func firstDiff(a, b string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			lo := i - 120
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("...%q vs ...%q", a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}

func TestRepeatedRunsIdentical(t *testing.T) {
	// Two runs at the same worker count are identical too (the planners'
	// split streams are pure functions of the cycle-start state).
	a := runMixedWorkload(t, 4)
	b := runMixedWorkload(t, 4)
	if a != b {
		t.Fatalf("two identical Workers=4 runs diverged:\n%s", firstDiff(a, b))
	}
}

func TestWorkersSanitized(t *testing.T) {
	cfg := smallCfg()
	cfg.Workers = 0
	w := newWorld(t, 20, cfg, 1)
	e := New(w.ds, cfg)
	if e.Config().Workers < 1 {
		t.Fatalf("sanitize left Workers=%d, want >= 1", e.Config().Workers)
	}
	cfg.Workers = -3
	if e = New(w.ds, cfg); e.Config().Workers < 1 {
		t.Fatalf("sanitize left Workers=%d for negative input", e.Config().Workers)
	}
}

func TestKillStreamsDecorrelated(t *testing.T) {
	// Two Kill calls with no intervening cycle must draw from independent
	// streams: with the old constant 0xDEAD label, killing 50% after a
	// full revival reproduced the exact same set.
	cfg := smallCfg()
	w := newWorld(t, 200, cfg, 33)
	e := New(w.ds, cfg)
	e.SeedIdealNetworks(w.ideal)

	first := e.Kill(0.5)
	e.Revive(first)
	second := e.Kill(0.5)
	if len(first) == 0 || len(second) == 0 {
		t.Fatal("Kill removed nobody")
	}
	same := make(map[tagging.UserID]bool, len(first))
	for _, id := range first {
		same[id] = true
	}
	overlap := 0
	for _, id := range second {
		if same[id] {
			overlap++
		}
	}
	if overlap == len(first) && len(first) == len(second) {
		t.Fatal("two back-to-back Kill(0.5) calls selected identical sets (correlated streams)")
	}
}

func TestRandomViewContactChargesRequest(t *testing.T) {
	// Every random-view direct contact charges the initiating request
	// message symmetrically to fetchFromOwner, not just the owner's digest
	// response (the old accounting undercounted the §3.3 bandwidth
	// figures). Two users sharing one item, empty personal networks: the
	// only top-digest traffic of the first lazy cycle is the two direct
	// contacts, each a request/response pair.
	p0 := tagging.NewProfile(0)
	p0.Add(1, 1)
	p1 := tagging.NewProfile(1)
	p1.Add(1, 1)
	ds := &trace.Dataset{Profiles: []*tagging.Profile{p0, p1}, NumItems: 2, NumTags: 2}
	cfg := smallCfg()
	e := New(ds, cfg)
	e.Bootstrap()
	e.LazyCycle()
	tr := e.Network().Total()
	digestBytes := uint64(e.Node(0).digest().SizeBytes())
	if got, want := tr.Msgs[sim.MsgTopDigest], uint64(4); got != want {
		t.Fatalf("top-digest messages = %d, want %d (request + response per contact)", got, want)
	}
	if got, want := tr.Bytes[sim.MsgTopDigest], 2*requestBytes+2*digestBytes; got != want {
		t.Fatalf("top-digest bytes = %d, want %d (2 requests of %d + 2 digests of %d)",
			got, want, requestBytes, digestBytes)
	}
}

package tagging

import (
	"math/rand"
	"testing"

	"p3q/internal/bloom"
)

func digestOf(p *Profile) *Digest {
	return NewDigest(p.Snapshot(), bloom.DefaultBits, bloom.DefaultHashes)
}

func TestDigestContainsAllItems(t *testing.T) {
	p := NewProfile(1)
	for i := 0; i < 300; i++ {
		p.Add(ItemID(i), TagID(i%5))
	}
	d := digestOf(p)
	for _, it := range p.Items() {
		if !d.MightContainItem(it) {
			t.Fatalf("digest misses item %d (false negative)", it)
		}
	}
}

func TestDigestVersionAndOwner(t *testing.T) {
	p := NewProfile(9)
	p.Add(1, 1)
	p.Add(2, 2)
	d := digestOf(p)
	if d.Owner != 9 {
		t.Fatalf("digest owner = %d, want 9", d.Owner)
	}
	if d.Version != 2 {
		t.Fatalf("digest version = %d, want 2", d.Version)
	}
}

func TestDigestSameAs(t *testing.T) {
	p := NewProfile(1)
	p.Add(1, 1)
	d1 := digestOf(p)
	d2 := digestOf(p)
	if !d1.SameAs(d2) {
		t.Fatal("digests of the same profile version not SameAs")
	}
	p.Add(2, 2)
	d3 := digestOf(p)
	if d1.SameAs(d3) {
		t.Fatal("digest of changed profile reported SameAs")
	}
	q := NewProfile(2)
	q.Add(1, 1)
	if d1.SameAs(digestOf(q)) {
		t.Fatal("digests of different owners reported SameAs")
	}
	if d1.SameAs(nil) {
		t.Fatal("SameAs(nil) returned true")
	}
}

func TestSharesItemWith(t *testing.T) {
	a := NewProfile(1)
	b := NewProfile(2)
	for i := 0; i < 50; i++ {
		a.Add(ItemID(i), 1)
		b.Add(ItemID(i+1000), 1)
	}
	da := digestOf(a)
	if da.SharesItemWith(b) {
		t.Fatal("disjoint profiles reported sharing an item (extremely unlikely FP)")
	}
	b.Add(25, 1) // now they share item 25
	if !da.SharesItemWith(b) {
		t.Fatal("shared item not detected")
	}
}

func TestDigestSizeBytes(t *testing.T) {
	p := NewProfile(1)
	p.Add(1, 1)
	d := digestOf(p)
	want := bloom.DefaultBits/8 + UserIDBytes + 4
	if d.SizeBytes() != want {
		t.Fatalf("digest SizeBytes = %d, want %d", d.SizeBytes(), want)
	}
}

func TestDigestOfSnapshotIgnoresLaterItems(t *testing.T) {
	p := NewProfile(1)
	p.Add(1, 1)
	snap := p.Snapshot()
	p.Add(2, 1)
	d := NewDigest(snap, bloom.DefaultBits, bloom.DefaultHashes)
	if d.Version != 1 {
		t.Fatalf("snapshot digest version = %d, want 1", d.Version)
	}
	// Item 2 was added after the snapshot; a 20Kbit filter with one key
	// should essentially never false-positive on it.
	if d.MightContainItem(2) {
		t.Fatal("snapshot digest contains item added later")
	}
}

func TestDigestLowFalsePositives(t *testing.T) {
	p := NewProfile(1)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		p.Add(ItemID(rng.Intn(1<<30)), 1)
	}
	d := digestOf(p)
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		it := ItemID(1<<30 + rng.Intn(1<<30)) // disjoint ID range
		if d.MightContainItem(it) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.005 {
		t.Fatalf("digest FPR = %.5f, want <= 0.005 at 500 items", rate)
	}
}

// digestsIdentical is bitwise digest equality: same owner, same version,
// same filter geometry and bit content, same add count.
func digestsIdentical(a, b *Digest) bool {
	return a.Owner == b.Owner && a.Version == b.Version &&
		a.Items.Equal(b.Items) && a.Items.AddCount() == b.Items.AddCount()
}

func TestDigestBuilderBuildMatchesNewDigest(t *testing.T) {
	// Build with reused scratch must be indistinguishable from NewDigest,
	// on both fill paths: a full snapshot (sorted item memo) and a partial
	// one (log-prefix dedupe through the builder's seen set).
	p := NewProfile(4)
	for i := 0; i < 50; i++ {
		p.Add(ItemID(i%17), TagID(i%3)) // duplicates exercise the dedupe
	}
	partial := p.SnapshotAt(20)
	full := p.Snapshot()
	var b DigestBuilder
	for _, s := range []Snapshot{partial, full, partial} { // reuse across calls
		got := b.Build(s, 2048, 6)
		want := NewDigest(s, 2048, 6)
		if !digestsIdentical(got, want) {
			t.Fatalf("Build(version %d) diverged from NewDigest", s.Version())
		}
	}
}

func TestDigestBuilderRebuildMatchesFresh(t *testing.T) {
	p := NewProfile(4)
	p.Add(1, 1)
	var b DigestBuilder
	d := b.Build(p.Snapshot(), 2048, 6)
	filter := d.Items
	for i := 0; i < 30; i++ {
		p.Add(ItemID(100+i), 2)
	}
	b.Rebuild(d, p.Snapshot())
	if d.Items != filter {
		t.Fatal("Rebuild replaced the filter instead of refilling it in place")
	}
	if d.Items.Bits() != 2048 || d.Items.Hashes() != 6 {
		t.Fatalf("Rebuild changed the geometry to %d/%d", d.Items.Bits(), d.Items.Hashes())
	}
	if want := NewDigest(p.Snapshot(), 2048, 6); !digestsIdentical(d, want) {
		t.Fatal("Rebuild diverged from a freshly built digest")
	}
}

package tagging

import (
	"testing"
	"unsafe"
)

// TestInternedIDWidths pins the in-memory width of the interned ID types.
// The million-node engine's dense hot-state layouts (personal-network
// entries, view descriptors, pooled plan slots) are sized around 4-byte
// IDs; widening any of them to 64 bits would silently double the hot
// arrays' footprint and desynchronize UserIDBytes-based bandwidth
// accounting from what the structs actually hold.
func TestInternedIDWidths(t *testing.T) {
	if got := unsafe.Sizeof(UserID(0)); got != 4 {
		t.Errorf("UserID is %d bytes, want 4", got)
	}
	if got := unsafe.Sizeof(ItemID(0)); got != 4 {
		t.Errorf("ItemID is %d bytes, want 4", got)
	}
	if got := unsafe.Sizeof(TagID(0)); got != 4 {
		t.Errorf("TagID is %d bytes, want 4", got)
	}
	if UserIDBytes != int(unsafe.Sizeof(UserID(0))) {
		t.Errorf("UserIDBytes = %d desynchronized from the UserID width %d",
			UserIDBytes, unsafe.Sizeof(UserID(0)))
	}
}

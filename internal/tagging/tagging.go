// Package tagging defines the data model of a collaborative tagging system
// as used by the P3Q protocol (Bai et al., EDBT 2010): users, items, tags,
// tagging actions, and user profiles.
//
// A profile is the set of tagging actions performed by one user. P3Q scores
// the similarity between two users as the number of common tagging actions,
// i.e. the number of (item, tag) pairs present in both profiles.
//
// Profiles are append-only: a tagging action, once performed, is never
// removed (the paper's dynamics only ever add actions). This makes a
// consistent point-in-time replica of a profile representable as a prefix of
// the owner's action log; see Snapshot.
package tagging

import (
	"fmt"
	"sort"
)

// UserID identifies a user (and, in the simulated network, the node run by
// that user). IDs are dense: a dataset with n users uses IDs 0..n-1.
type UserID uint32

// ItemID identifies an item (URL, photo, video...). In the byte-accounting
// model an item is identified on the wire by a 128-bit hash (see ItemBytes).
type ItemID uint32

// TagID identifies a tag. Tags are interned strings; see Vocabulary.
type TagID uint32

// Action is a single tagging action: "the profile owner tagged Item with
// Tag". The owner is implicit (the profile the action belongs to).
type Action struct {
	Item ItemID
	Tag  TagID
}

// Key packs the (item, tag) pair into a single comparable 64-bit key.
func (a Action) Key() uint64 { return uint64(a.Item)<<32 | uint64(a.Tag) }

// ActionFromKey is the inverse of Action.Key.
func ActionFromKey(k uint64) Action {
	return Action{Item: ItemID(k >> 32), Tag: TagID(k & 0xffffffff)}
}

// Profile is the append-only tagging history of one user.
//
// The zero value is not usable; create profiles with NewProfile. Profile is
// not safe for concurrent mutation; concurrent readers are safe as long as
// no writer is active.
type Profile struct {
	owner UserID
	log   []Action       // append-only action log
	index map[uint64]int // action key -> position in log
	items map[ItemID]int // item -> number of actions on it (distinct tags)

	// itemsSorted mirrors the keys of items in ascending order, maintained
	// incrementally by Add. It makes Items a zero-allocation accessor, which
	// matters because the engine's integration planner walks the item list
	// once per offer.
	itemsSorted []ItemID
}

// NewProfile returns an empty profile owned by the given user.
func NewProfile(owner UserID) *Profile {
	return &Profile{
		owner: owner,
		index: make(map[uint64]int),
		items: make(map[ItemID]int),
	}
}

// Owner returns the user owning this profile.
func (p *Profile) Owner() UserID { return p.owner }

// Len returns the number of tagging actions in the profile. The paper calls
// this the "length" of the profile and uses it as the storage metric.
func (p *Profile) Len() int { return len(p.log) }

// Version returns a monotonically increasing version number, incremented by
// every successful Add. Because profiles are append-only the version equals
// the profile length; replicas compare versions to detect staleness.
func (p *Profile) Version() int { return len(p.log) }

// NumItems returns the number of distinct items tagged in the profile.
func (p *Profile) NumItems() int { return len(p.items) }

// Add records the action (item, tag). It returns false if the exact action
// was already present (a user tagging the same item with the same tag twice
// is a no-op, as in delicious).
func (p *Profile) Add(item ItemID, tag TagID) bool {
	a := Action{Item: item, Tag: tag}
	k := a.Key()
	if _, dup := p.index[k]; dup {
		return false
	}
	p.index[k] = len(p.log)
	p.log = append(p.log, a)
	if p.items[item] == 0 {
		i := sort.Search(len(p.itemsSorted), func(i int) bool { return p.itemsSorted[i] >= item })
		p.itemsSorted = append(p.itemsSorted, 0)
		copy(p.itemsSorted[i+1:], p.itemsSorted[i:])
		p.itemsSorted[i] = item
	}
	p.items[item]++
	return true
}

// AddAll records every action in the list, skipping duplicates, and returns
// the number actually added.
func (p *Profile) AddAll(actions []Action) int {
	n := 0
	for _, a := range actions {
		if p.Add(a.Item, a.Tag) {
			n++
		}
	}
	return n
}

// Has reports whether the profile contains the exact action (item, tag).
func (p *Profile) Has(item ItemID, tag TagID) bool {
	_, ok := p.index[Action{Item: item, Tag: tag}.Key()]
	return ok
}

// HasItem reports whether the profile contains any action on the item.
func (p *Profile) HasItem(item ItemID) bool {
	_, ok := p.items[item]
	return ok
}

// Actions returns the action log. The returned slice must not be modified;
// it aliases the profile's internal storage.
func (p *Profile) Actions() []Action { return p.log }

// Items returns the distinct items in the profile, in ascending order. The
// returned slice aliases the profile's internal storage and must not be
// modified.
//
//p3q:hotpath
func (p *Profile) Items() []ItemID { return p.itemsSorted }

// TagsFor returns the tags the owner used on the item, in log order.
func (p *Profile) TagsFor(item ItemID) []TagID {
	var out []TagID
	for _, a := range p.log {
		if a.Item == item {
			out = append(out, a.Tag)
		}
	}
	return out
}

// Snapshot returns a point-in-time view of the profile containing its first
// Version() actions. The snapshot stays consistent even if the owner keeps
// appending actions afterwards.
func (p *Profile) Snapshot() Snapshot { return Snapshot{p: p, n: len(p.log)} }

// SnapshotAt returns a view of the first n actions. n is clamped to
// [0, Len()].
func (p *Profile) SnapshotAt(n int) Snapshot {
	if n < 0 {
		n = 0
	}
	if n > len(p.log) {
		n = len(p.log)
	}
	return Snapshot{p: p, n: n}
}

// CommonScore returns the P3Q similarity score between this profile and the
// snapshot: the number of tagging actions present in both,
//
//	Score(ui, uj) = |Profile(ui) ∩ Profile(uj)|.
//
// The score is symmetric: p.CommonScore(q.Snapshot()) equals
// q.CommonScore(p.Snapshot()).
func (p *Profile) CommonScore(other Snapshot) int {
	// Iterate over the smaller side.
	if other.Len() < len(p.log) {
		score := 0
		for _, a := range other.Actions() {
			if p.Has(a.Item, a.Tag) {
				score++
			}
		}
		return score
	}
	score := 0
	for _, a := range p.log {
		if other.Has(a.Item, a.Tag) {
			score++
		}
	}
	return score
}

// CommonItems returns the items present in both this profile and the
// snapshot, in ascending order.
func (p *Profile) CommonItems(other Snapshot) []ItemID {
	var out []ItemID
	for _, it := range p.itemsSorted {
		if other.HasItem(it) {
			out = append(out, it)
		}
	}
	return out
}

// String implements fmt.Stringer for debugging.
func (p *Profile) String() string {
	return fmt.Sprintf("profile(user=%d actions=%d items=%d)", p.owner, len(p.log), len(p.items))
}

// Snapshot is an immutable point-in-time view of a profile: its first n
// actions. Snapshots are values; copying them is cheap (two words). A
// snapshot taken from a profile remains valid and unchanged while the owner
// appends more actions, which is exactly the semantics of a replica stored
// at a remote node in P3Q.
type Snapshot struct {
	p *Profile
	n int
}

// Owner returns the user owning the underlying profile.
func (s Snapshot) Owner() UserID { return s.p.owner }

// Len returns the number of actions visible in the snapshot.
func (s Snapshot) Len() int { return s.n }

// Version returns the profile version the snapshot was taken at, equal to
// Len. Comparing against the owner's current Version detects staleness.
func (s Snapshot) Version() int { return s.n }

// Valid reports whether the snapshot refers to an actual profile (the zero
// Snapshot is not valid).
func (s Snapshot) Valid() bool { return s.p != nil }

// Actions returns the visible prefix of the action log. The returned slice
// must not be modified.
func (s Snapshot) Actions() []Action { return s.p.log[:s.n] }

// Has reports whether the snapshot contains the exact action.
func (s Snapshot) Has(item ItemID, tag TagID) bool {
	pos, ok := s.p.index[Action{Item: item, Tag: tag}.Key()]
	return ok && pos < s.n
}

// HasItem reports whether the snapshot contains any action on the item.
// Note: because the item count map is not versioned, this scans the log
// prefix only when the snapshot is stale; the common case (fresh snapshot)
// is a map lookup.
func (s Snapshot) HasItem(item ItemID) bool {
	if !s.p.HasItem(item) {
		return false
	}
	if s.n == len(s.p.log) {
		return true
	}
	for _, a := range s.p.log[:s.n] {
		if a.Item == item {
			return true
		}
	}
	return false
}

// Items returns the distinct items visible in the snapshot, ascending.
func (s Snapshot) Items() []ItemID {
	if s.n == len(s.p.log) {
		return s.p.Items()
	}
	seen := make(map[ItemID]struct{})
	for _, a := range s.p.log[:s.n] {
		seen[a.Item] = struct{}{}
	}
	out := make([]ItemID, 0, len(seen))
	for it := range seen {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActionsOnItems returns the snapshot's actions restricted to the given
// items. This is the payload of the second step of the 3-step profile
// exchange ("require her tagging actions for the common items").
func (s Snapshot) ActionsOnItems(items []ItemID) []Action {
	return s.AppendActionsOnItems(nil, items)
}

// AppendActionsOnItems is ActionsOnItems appending into a caller-owned
// buffer (reusing its capacity) and returning it. Membership is a linear
// scan over items — the common-item lists this is called with are short, so
// the scan beats building a per-call set and allocates nothing once the
// buffer is warm.
//
//p3q:hotpath
func (s Snapshot) AppendActionsOnItems(dst []Action, items []ItemID) []Action {
	dst = dst[:0]
	for _, a := range s.p.log[:s.n] {
		for _, it := range items {
			if a.Item == it {
				dst = append(dst, a)
				break
			}
		}
	}
	return dst
}

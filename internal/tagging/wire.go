package tagging

// Wire-size model from §3.3 of the paper. All bandwidth accounting in the
// simulator uses these constants so that reported byte counts are comparable
// with the paper's:
//
//   - a user is identified by a 4-byte ID;
//   - an item (URL) is identified by its 128-bit MD4 hash (16 bytes);
//   - a tag is represented as a 16-byte string;
//   - a tagging action therefore takes 36 bytes (item + tag + user ID);
//   - a relevance score is a 4-byte integer.
const (
	UserIDBytes = 4
	ItemBytes   = 16
	TagBytes    = 16
	ActionBytes = ItemBytes + TagBytes + UserIDBytes // 36
	ScoreBytes  = 4
)

// ActionsWireSize returns the size in bytes of n tagging actions on the wire.
func ActionsWireSize(n int) int { return n * ActionBytes }

// ItemsWireSize returns the size in bytes of n item identifiers on the wire.
func ItemsWireSize(n int) int { return n * ItemBytes }

// UsersWireSize returns the size in bytes of n user identifiers on the wire.
func UsersWireSize(n int) int { return n * UserIDBytes }

// QueryWireSize returns the size in bytes of a query with n tags: the
// querier's ID plus the tag strings.
func QueryWireSize(nTags int) int { return UserIDBytes + nTags*TagBytes }

// ResultListWireSize returns the size in bytes of a partial result list with
// n entries plus the list of m users whose profiles were used to build it
// (both are sent to the querier in the same message, §2.2.2).
func ResultListWireSize(nEntries, mUsers int) int {
	return nEntries*(ItemBytes+ScoreBytes) + mUsers*UserIDBytes
}

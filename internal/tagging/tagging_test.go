package tagging

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActionKeyRoundTrip(t *testing.T) {
	f := func(item, tag uint32) bool {
		a := Action{Item: ItemID(item), Tag: TagID(tag)}
		return ActionFromKey(a.Key()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActionKeyInjective(t *testing.T) {
	f := func(i1, t1, i2, t2 uint32) bool {
		a := Action{Item: ItemID(i1), Tag: TagID(t1)}
		b := Action{Item: ItemID(i2), Tag: TagID(t2)}
		return (a == b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileAddAndHas(t *testing.T) {
	p := NewProfile(7)
	if p.Owner() != 7 {
		t.Fatalf("owner = %d, want 7", p.Owner())
	}
	if !p.Add(1, 2) {
		t.Fatal("first Add returned false")
	}
	if p.Add(1, 2) {
		t.Fatal("duplicate Add returned true")
	}
	if !p.Has(1, 2) {
		t.Fatal("Has(1,2) = false after Add")
	}
	if p.Has(2, 1) {
		t.Fatal("Has(2,1) = true, never added")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}

func TestProfileSameItemDifferentTags(t *testing.T) {
	p := NewProfile(0)
	p.Add(5, 1)
	p.Add(5, 2)
	p.Add(5, 3)
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	if p.NumItems() != 1 {
		t.Fatalf("NumItems = %d, want 1", p.NumItems())
	}
	tags := p.TagsFor(5)
	if len(tags) != 3 || tags[0] != 1 || tags[1] != 2 || tags[2] != 3 {
		t.Fatalf("TagsFor(5) = %v, want [1 2 3]", tags)
	}
}

func TestProfileVersionTracksLen(t *testing.T) {
	p := NewProfile(0)
	for i := 0; i < 10; i++ {
		p.Add(ItemID(i), 0)
		if p.Version() != p.Len() {
			t.Fatalf("Version %d != Len %d", p.Version(), p.Len())
		}
	}
}

func TestProfileItemsSorted(t *testing.T) {
	p := NewProfile(0)
	for _, it := range []ItemID{9, 3, 7, 1, 3} {
		p.Add(it, 0)
	}
	items := p.Items()
	want := []ItemID{1, 3, 7, 9}
	if len(items) != len(want) {
		t.Fatalf("Items = %v, want %v", items, want)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("Items = %v, want %v", items, want)
		}
	}
}

func TestAddAllCountsOnlyNew(t *testing.T) {
	p := NewProfile(0)
	p.Add(1, 1)
	n := p.AddAll([]Action{{1, 1}, {2, 2}, {2, 2}, {3, 3}})
	if n != 2 {
		t.Fatalf("AddAll added %d, want 2", n)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
}

func TestCommonScoreSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := NewProfile(0)
		b := NewProfile(1)
		for i := 0; i < 40; i++ {
			a.Add(ItemID(rng.Intn(20)), TagID(rng.Intn(10)))
			b.Add(ItemID(rng.Intn(20)), TagID(rng.Intn(10)))
		}
		if a.CommonScore(b.Snapshot()) != b.CommonScore(a.Snapshot()) {
			t.Fatalf("CommonScore not symmetric: %d vs %d",
				a.CommonScore(b.Snapshot()), b.CommonScore(a.Snapshot()))
		}
	}
}

func TestCommonScoreSelfEqualsLen(t *testing.T) {
	p := NewProfile(0)
	for i := 0; i < 25; i++ {
		p.Add(ItemID(i%7), TagID(i))
	}
	if got := p.CommonScore(p.Snapshot()); got != p.Len() {
		t.Fatalf("self score = %d, want %d", got, p.Len())
	}
}

func TestCommonScoreDisjoint(t *testing.T) {
	a := NewProfile(0)
	b := NewProfile(1)
	a.Add(1, 1)
	a.Add(2, 2)
	b.Add(3, 3)
	b.Add(1, 9) // same item, different tag: not a common action
	if got := a.CommonScore(b.Snapshot()); got != 0 {
		t.Fatalf("disjoint score = %d, want 0", got)
	}
}

func TestCommonScoreExact(t *testing.T) {
	a := NewProfile(0)
	b := NewProfile(1)
	common := []Action{{1, 1}, {2, 5}, {9, 3}}
	for _, c := range common {
		a.Add(c.Item, c.Tag)
		b.Add(c.Item, c.Tag)
	}
	a.Add(100, 1)
	b.Add(200, 2)
	if got := a.CommonScore(b.Snapshot()); got != len(common) {
		t.Fatalf("score = %d, want %d", got, len(common))
	}
}

func TestCommonItems(t *testing.T) {
	a := NewProfile(0)
	b := NewProfile(1)
	a.Add(1, 1)
	a.Add(2, 1)
	a.Add(3, 1)
	b.Add(2, 9) // shared item even though tags differ
	b.Add(3, 1)
	b.Add(4, 1)
	got := a.CommonItems(b.Snapshot())
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("CommonItems = %v, want [2 3]", got)
	}
}

func TestSnapshotImmutableUnderAppends(t *testing.T) {
	p := NewProfile(0)
	p.Add(1, 1)
	p.Add(2, 2)
	snap := p.Snapshot()
	p.Add(3, 3)
	p.Add(1, 7)
	if snap.Len() != 2 {
		t.Fatalf("snapshot Len = %d, want 2", snap.Len())
	}
	if snap.Has(3, 3) {
		t.Fatal("snapshot sees action added after it was taken")
	}
	if snap.Has(1, 7) {
		t.Fatal("snapshot sees later tag on known item")
	}
	if !snap.Has(1, 1) || !snap.Has(2, 2) {
		t.Fatal("snapshot lost actions it should contain")
	}
}

func TestSnapshotHasItemStale(t *testing.T) {
	p := NewProfile(0)
	p.Add(1, 1)
	snap := p.Snapshot()
	p.Add(9, 1) // new item after snapshot
	if snap.HasItem(9) {
		t.Fatal("stale snapshot reports item added later")
	}
	if !snap.HasItem(1) {
		t.Fatal("stale snapshot lost existing item")
	}
}

func TestSnapshotItemsStale(t *testing.T) {
	p := NewProfile(0)
	p.Add(4, 1)
	p.Add(2, 1)
	snap := p.Snapshot()
	p.Add(9, 1)
	items := snap.Items()
	if len(items) != 2 || items[0] != 2 || items[1] != 4 {
		t.Fatalf("stale snapshot Items = %v, want [2 4]", items)
	}
}

func TestSnapshotAtClamps(t *testing.T) {
	p := NewProfile(0)
	p.Add(1, 1)
	if got := p.SnapshotAt(-5).Len(); got != 0 {
		t.Fatalf("SnapshotAt(-5).Len = %d, want 0", got)
	}
	if got := p.SnapshotAt(100).Len(); got != 1 {
		t.Fatalf("SnapshotAt(100).Len = %d, want 1", got)
	}
}

func TestSnapshotActionsOnItems(t *testing.T) {
	p := NewProfile(0)
	p.Add(1, 1)
	p.Add(1, 2)
	p.Add(2, 1)
	p.Add(3, 1)
	got := p.Snapshot().ActionsOnItems([]ItemID{1, 3})
	if len(got) != 3 {
		t.Fatalf("ActionsOnItems returned %d actions, want 3", len(got))
	}
	for _, a := range got {
		if a.Item != 1 && a.Item != 3 {
			t.Fatalf("unexpected item %d in restricted actions", a.Item)
		}
	}
}

func TestZeroSnapshotInvalid(t *testing.T) {
	var s Snapshot
	if s.Valid() {
		t.Fatal("zero snapshot reports Valid")
	}
}

func TestCommonScoreAgainstStaleSnapshot(t *testing.T) {
	a := NewProfile(0)
	b := NewProfile(1)
	a.Add(1, 1)
	b.Add(1, 1)
	snap := b.Snapshot()
	b.Add(2, 2)
	a.Add(2, 2) // common in live profiles, but not in the snapshot
	if got := a.CommonScore(snap); got != 1 {
		t.Fatalf("score vs stale snapshot = %d, want 1", got)
	}
	if got := a.CommonScore(b.Snapshot()); got != 2 {
		t.Fatalf("score vs fresh snapshot = %d, want 2", got)
	}
}

func TestWireSizes(t *testing.T) {
	if ActionBytes != 36 {
		t.Fatalf("ActionBytes = %d, want 36 (paper §3.3.1)", ActionBytes)
	}
	if got := ActionsWireSize(10); got != 360 {
		t.Fatalf("ActionsWireSize(10) = %d, want 360", got)
	}
	if got := QueryWireSize(3); got != 4+48 {
		t.Fatalf("QueryWireSize(3) = %d, want 52", got)
	}
	if got := ResultListWireSize(5, 2); got != 5*20+8 {
		t.Fatalf("ResultListWireSize(5,2) = %d, want 108", got)
	}
	if got := ItemsWireSize(3); got != 48 {
		t.Fatalf("ItemsWireSize(3) = %d, want 48", got)
	}
	if got := UsersWireSize(3); got != 12 {
		t.Fatalf("UsersWireSize(3) = %d, want 12", got)
	}
}

func TestVocabularyInterning(t *testing.T) {
	v := NewVocabulary()
	m1 := v.Tag("matrix")
	m2 := v.Tag("matrix")
	if m1 != m2 {
		t.Fatal("same tag name produced different IDs")
	}
	if v.Tag("math") == m1 {
		t.Fatal("different tag names produced the same ID")
	}
	if v.TagName(m1) != "matrix" {
		t.Fatalf("TagName = %q, want matrix", v.TagName(m1))
	}
	i1 := v.Item("http://example.com")
	if v.ItemName(i1) != "http://example.com" {
		t.Fatalf("ItemName = %q", v.ItemName(i1))
	}
	if v.NumTags() != 2 || v.NumItems() != 1 {
		t.Fatalf("counts = (%d tags, %d items), want (2, 1)", v.NumTags(), v.NumItems())
	}
}

func TestVocabularyPlaceholders(t *testing.T) {
	v := NewVocabulary()
	if got := v.TagName(42); got != "tag#42" {
		t.Fatalf("TagName(42) = %q, want tag#42", got)
	}
	if got := v.ItemName(0); got != "item#0" {
		t.Fatalf("ItemName(0) = %q, want item#0", got)
	}
}

func TestCommonScoreMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		a := NewProfile(0)
		b := NewProfile(1)
		for i := 0; i < 60; i++ {
			a.Add(ItemID(rng.Intn(15)), TagID(rng.Intn(8)))
			b.Add(ItemID(rng.Intn(15)), TagID(rng.Intn(8)))
		}
		brute := 0
		for _, act := range a.Actions() {
			if b.Has(act.Item, act.Tag) {
				brute++
			}
		}
		if got := a.CommonScore(b.Snapshot()); got != brute {
			t.Fatalf("CommonScore = %d, brute force = %d", got, brute)
		}
	}
}

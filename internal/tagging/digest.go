package tagging

import "p3q/internal/bloom"

// Digest is the compact summary of a profile exchanged by the gossip
// protocol before any full profile is transmitted (§2.1). It contains the
// owner's ID, a Bloom filter over the *items* tagged by the owner (tags are
// deliberately omitted to keep digests small), and the profile version at
// encode time, which lets a receiver detect that a profile it already knows
// has changed ("if Digest(ul) does not change", Algorithm 1).
type Digest struct {
	Owner   UserID
	Items   *bloom.Filter
	Version int // profile length when the digest was produced
}

// NewDigest builds the digest of the snapshot with the given Bloom geometry.
func NewDigest(s Snapshot, mBits, kHashes int) *Digest {
	var b DigestBuilder
	return b.Build(s, mBits, kHashes)
}

// DigestBuilder builds digests with reusable dedupe scratch. The zero value
// is ready to use. A builder is not safe for concurrent use; own one per
// goroutine (the engine keeps one per restore/rebuild site).
type DigestBuilder struct {
	seen map[ItemID]struct{}
}

// Build returns a fresh digest of the snapshot, reusing the builder's
// scratch. The result is identical to NewDigest.
func (b *DigestBuilder) Build(s Snapshot, mBits, kHashes int) *Digest {
	f := bloom.New(mBits, kHashes)
	b.fill(f, s)
	return &Digest{Owner: s.Owner(), Items: f, Version: s.Version()}
}

// Rebuild re-digests the snapshot into d in place, resetting and refilling
// the existing Bloom filter instead of allocating a new one. The filter's
// geometry is kept.
//
// Aliasing hazard: digests are shared by pointer — a node's neighbours hold
// *Digest references in their views and personal networks. Rebuild mutates
// the pointed-to digest, so it is only safe for digests that have never
// escaped (e.g. scratch digests owned by a single builder), never for a
// node's published digest.
func (b *DigestBuilder) Rebuild(d *Digest, s Snapshot) {
	d.Items.Reset()
	b.fill(d.Items, s)
	d.Owner = s.Owner()
	d.Version = s.Version()
}

// fill adds the snapshot's distinct items to the filter. A full snapshot
// walks the profile's sorted item memo directly; a partial one dedupes the
// log prefix through the reusable seen set. The filter bits and add count
// are identical either way (Bloom adds commute and both paths add each
// distinct item exactly once).
func (b *DigestBuilder) fill(f *bloom.Filter, s Snapshot) {
	if s.n == len(s.p.log) {
		for _, it := range s.p.itemsSorted {
			f.Add(itemKey(it))
		}
		return
	}
	if b.seen == nil {
		b.seen = make(map[ItemID]struct{}, 64)
	}
	clear(b.seen)
	for _, a := range s.p.log[:s.n] {
		if _, dup := b.seen[a.Item]; dup {
			continue
		}
		b.seen[a.Item] = struct{}{}
		f.Add(itemKey(a.Item))
	}
}

// itemKey widens an item ID into the 64-bit key space of the Bloom filter.
// The filter's own hashing mixes the key, so identity widening suffices.
func itemKey(it ItemID) uint64 { return uint64(it) }

// MightContainItem reports whether the digested profile may contain the
// item. False positives occur at the filter's FPR; false negatives never.
func (d *Digest) MightContainItem(it ItemID) bool {
	return d.Items.Test(itemKey(it))
}

// SharesItemWith reports whether the digested profile appears to share at
// least one item with the given profile. This is the first-step test of
// Algorithm 1: a user with no common item "simply does not qualify" as a
// neighbour candidate.
//
//p3q:hotpath
func (d *Digest) SharesItemWith(p *Profile) bool {
	for _, it := range p.itemsSorted {
		if d.Items.Test(itemKey(it)) {
			return true
		}
	}
	return false
}

// SameAs reports whether two digests describe the same version of the same
// profile. Version equality is decisive because profiles are append-only.
func (d *Digest) SameAs(other *Digest) bool {
	if other == nil {
		return false
	}
	return d.Owner == other.Owner && d.Version == other.Version
}

// SizeBytes returns the wire size of the digest: the Bloom filter plus the
// owner ID and a 4-byte version counter.
func (d *Digest) SizeBytes() int {
	return d.Items.SizeBytes() + UserIDBytes + 4
}

package tagging

import "p3q/internal/bloom"

// Digest is the compact summary of a profile exchanged by the gossip
// protocol before any full profile is transmitted (§2.1). It contains the
// owner's ID, a Bloom filter over the *items* tagged by the owner (tags are
// deliberately omitted to keep digests small), and the profile version at
// encode time, which lets a receiver detect that a profile it already knows
// has changed ("if Digest(ul) does not change", Algorithm 1).
type Digest struct {
	Owner   UserID
	Items   *bloom.Filter
	Version int // profile length when the digest was produced
}

// NewDigest builds the digest of the snapshot with the given Bloom geometry.
func NewDigest(s Snapshot, mBits, kHashes int) *Digest {
	f := bloom.New(mBits, kHashes)
	seen := make(map[ItemID]struct{}, 64)
	for _, a := range s.Actions() {
		if _, dup := seen[a.Item]; dup {
			continue
		}
		seen[a.Item] = struct{}{}
		f.Add(itemKey(a.Item))
	}
	return &Digest{Owner: s.Owner(), Items: f, Version: s.Version()}
}

// itemKey widens an item ID into the 64-bit key space of the Bloom filter.
// The filter's own hashing mixes the key, so identity widening suffices.
func itemKey(it ItemID) uint64 { return uint64(it) }

// MightContainItem reports whether the digested profile may contain the
// item. False positives occur at the filter's FPR; false negatives never.
func (d *Digest) MightContainItem(it ItemID) bool {
	return d.Items.Test(itemKey(it))
}

// SharesItemWith reports whether the digested profile appears to share at
// least one item with the given profile. This is the first-step test of
// Algorithm 1: a user with no common item "simply does not qualify" as a
// neighbour candidate.
func (d *Digest) SharesItemWith(p *Profile) bool {
	for it := range p.items {
		if d.Items.Test(itemKey(it)) {
			return true
		}
	}
	return false
}

// SameAs reports whether two digests describe the same version of the same
// profile. Version equality is decisive because profiles are append-only.
func (d *Digest) SameAs(other *Digest) bool {
	if other == nil {
		return false
	}
	return d.Owner == other.Owner && d.Version == other.Version
}

// SizeBytes returns the wire size of the digest: the Bloom filter plus the
// owner ID and a 4-byte version counter.
func (d *Digest) SizeBytes() int {
	return d.Items.SizeBytes() + UserIDBytes + 4
}

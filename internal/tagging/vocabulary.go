package tagging

// Vocabulary interns human-readable names for tags and items. The protocol
// itself only manipulates numeric IDs; the vocabulary exists so that
// examples and tools can build datasets from named tags ("matrix", "linear
// algebra", "keanu reeves") and print results readably.
//
// The zero value is not usable; create with NewVocabulary. Vocabulary is not
// safe for concurrent mutation.
type Vocabulary struct {
	tagByName  map[string]TagID
	tagNames   []string
	itemByName map[string]ItemID
	itemNames  []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{
		tagByName:  make(map[string]TagID),
		itemByName: make(map[string]ItemID),
	}
}

// Tag interns the tag name and returns its ID. Repeated calls with the same
// name return the same ID.
func (v *Vocabulary) Tag(name string) TagID {
	if id, ok := v.tagByName[name]; ok {
		return id
	}
	id := TagID(len(v.tagNames))
	v.tagByName[name] = id
	v.tagNames = append(v.tagNames, name)
	return id
}

// Item interns the item name and returns its ID.
func (v *Vocabulary) Item(name string) ItemID {
	if id, ok := v.itemByName[name]; ok {
		return id
	}
	id := ItemID(len(v.itemNames))
	v.itemByName[name] = id
	v.itemNames = append(v.itemNames, name)
	return id
}

// TagName returns the interned name for the tag ID, or a placeholder if the
// ID was never interned.
func (v *Vocabulary) TagName(id TagID) string {
	if int(id) < len(v.tagNames) {
		return v.tagNames[id]
	}
	return "tag#" + itoa(uint32(id))
}

// ItemName returns the interned name for the item ID, or a placeholder.
func (v *Vocabulary) ItemName(id ItemID) string {
	if int(id) < len(v.itemNames) {
		return v.itemNames[id]
	}
	return "item#" + itoa(uint32(id))
}

// NumTags returns the number of interned tags.
func (v *Vocabulary) NumTags() int { return len(v.tagNames) }

// NumItems returns the number of interned items.
func (v *Vocabulary) NumItems() int { return len(v.itemNames) }

// itoa converts without pulling in strconv for a hot path that is anything
// but hot; it simply keeps this file dependency-free.
func itoa(n uint32) string {
	if n == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

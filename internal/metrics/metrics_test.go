package metrics

import (
	"bytes"
	"strings"
	"testing"

	"p3q/internal/similarity"
	"p3q/internal/tagging"
)

func TestSuccessRatioPerfect(t *testing.T) {
	ideal := []similarity.Neighbour{{ID: 1, Score: 5}, {ID: 2, Score: 3}}
	members := map[tagging.UserID]int{1: 5, 2: 3}
	if r := SuccessRatio(members, ideal); r != 1 {
		t.Fatalf("ratio = %f, want 1", r)
	}
}

func TestSuccessRatioPartial(t *testing.T) {
	ideal := []similarity.Neighbour{{ID: 1, Score: 5}, {ID: 2, Score: 3}, {ID: 3, Score: 3}, {ID: 4, Score: 2}}
	members := map[tagging.UserID]int{1: 5, 9: 1} // 9's score below the cut
	if r := SuccessRatio(members, ideal); r != 0.25 {
		t.Fatalf("ratio = %f, want 0.25", r)
	}
}

func TestSuccessRatioTieRobust(t *testing.T) {
	// Members 7 and 8 both score 3, same as the ideal boundary: either is a
	// valid choice and must count as good.
	ideal := []similarity.Neighbour{{ID: 1, Score: 5}, {ID: 7, Score: 3}}
	members := map[tagging.UserID]int{1: 5, 8: 3}
	if r := SuccessRatio(members, ideal); r != 1 {
		t.Fatalf("ratio = %f, want 1 (tie at the boundary)", r)
	}
}

func TestSuccessRatioCapped(t *testing.T) {
	ideal := []similarity.Neighbour{{ID: 1, Score: 1}}
	members := map[tagging.UserID]int{1: 1, 2: 2, 3: 3}
	if r := SuccessRatio(members, ideal); r != 1 {
		t.Fatalf("ratio = %f, want capped at 1", r)
	}
}

func TestSuccessRatioEmptyIdeal(t *testing.T) {
	if r := SuccessRatio(nil, nil); r != 1 {
		t.Fatalf("ratio = %f, want 1 for empty ideal", r)
	}
}

func TestSuccessRatioEmptyMembers(t *testing.T) {
	ideal := []similarity.Neighbour{{ID: 1, Score: 5}}
	if r := SuccessRatio(map[tagging.UserID]int{}, ideal); r != 0 {
		t.Fatalf("ratio = %f, want 0", r)
	}
}

func TestUpdateRate(t *testing.T) {
	changed := map[tagging.UserID]int{1: 10, 2: 20}
	stored := []Replica{
		{Owner: 1, Version: 10}, // updated
		{Owner: 2, Version: 15}, // stale
		{Owner: 3, Version: 99}, // not subject to change
	}
	rate, ok := UpdateRate(stored, changed)
	if !ok {
		t.Fatal("UpdateRate reported no subjects")
	}
	if rate != 0.5 {
		t.Fatalf("rate = %f, want 0.5", rate)
	}
}

func TestUpdateRateNoSubjects(t *testing.T) {
	if _, ok := UpdateRate([]Replica{{Owner: 5, Version: 1}}, map[tagging.UserID]int{9: 2}); ok {
		t.Fatal("UpdateRate should report no subjects")
	}
	if _, ok := UpdateRate(nil, nil); ok {
		t.Fatal("UpdateRate on empty input should report no subjects")
	}
}

func TestUpdateRateNewerThanTarget(t *testing.T) {
	// A replica refreshed past the change (further changes) still counts.
	rate, ok := UpdateRate([]Replica{{Owner: 1, Version: 99}}, map[tagging.UserID]int{1: 10})
	if !ok || rate != 1 {
		t.Fatalf("rate = %f ok=%v, want 1 true", rate, ok)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %f", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("mean of empty = %f, want 0", m)
	}
}

func TestTableFprint(t *testing.T) {
	tb := NewTable("My Title", "cycle", "recall")
	tb.Add("0", "0.42")
	tb.AddF("1", 2, 0.9)
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"My Title", "cycle", "recall", "0.42", "0.90"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.Add("1", "x,y")
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a,b") {
		t.Fatalf("CSV header missing: %s", out)
	}
	if !strings.Contains(out, "\"x,y\"") {
		t.Fatalf("CSV quoting missing: %s", out)
	}
	if strings.Contains(out, "ignored") {
		t.Fatal("CSV should omit the title")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Fatalf("F = %s", F(1.2345, 2))
	}
	if I(42) != "42" {
		t.Fatalf("I = %s", I(42))
	}
	if U(7) != "7" {
		t.Fatalf("U = %s", U(7))
	}
}

// Package metrics implements the evaluation metrics of §3 of the paper —
// success ratio of personal networks (§3.2.1), recall of top-k results
// (§3.2.2, provided by package topk), and average update rate under profile
// dynamics (§3.4.1) — plus the plain-text table/series rendering used by
// the experiment harness to print the paper's figures and tables.
//
// These are paper-evaluation metrics: protocol-quality measures computed
// from engine state against an offline oracle, reproduced as experiment
// outputs. Runtime telemetry — cycle/query counters, phase timings,
// /metrics scraping — is a different subsystem entirely; see internal/obs
// and the "Observability" section of ARCHITECTURE.md.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"p3q/internal/similarity"
	"p3q/internal/tagging"
)

// SuccessRatio measures the quality of a personal network against the ideal
// one computed offline (§3.2.1): the number of neighbours that are in the
// network "and should be", over the ideal network size.
//
// Ties are treated score-robustly: a present neighbour counts as good if
// its similarity score is at least the lowest score of the ideal network,
// since any such neighbour is an equally valid top-s choice. The count is
// capped at the ideal size so the ratio stays in [0, 1].
func SuccessRatio(memberScores map[tagging.UserID]int, ideal []similarity.Neighbour) float64 {
	if len(ideal) == 0 {
		return 1
	}
	minScore := ideal[len(ideal)-1].Score
	good := 0
	for _, sc := range memberScores {
		if sc >= minScore {
			good++
		}
	}
	if good > len(ideal) {
		good = len(ideal)
	}
	return float64(good) / float64(len(ideal))
}

// Replica describes one stored profile replica for update-rate accounting.
type Replica struct {
	Owner   tagging.UserID
	Version int // version of the stored snapshot
}

// UpdateRate computes one user's update rate (§3.4.1): among her stored
// replicas whose owners changed their profiles, the fraction that has been
// refreshed to at least the owner's post-change version. ok is false when
// no stored replica is subject to changes (the user is excluded from the
// average).
func UpdateRate(stored []Replica, changedVersion map[tagging.UserID]int) (rate float64, ok bool) {
	subject, updated := 0, 0
	for _, r := range stored {
		target, changed := changedVersion[r.Owner]
		if !changed {
			continue
		}
		subject++
		if r.Version >= target {
			updated++
		}
	}
	if subject == 0 {
		return 0, false
	}
	return float64(updated) / float64(subject), true
}

// Mean returns the arithmetic mean of the values (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table is a printable result table: the unit of output of every
// experiment (one per paper table or figure).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row. The number of cells should match the header.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends a row of float64 cells formatted with the given precision,
// after a leading string label.
func (t *Table) AddF(label string, prec int, vals ...float64) {
	cells := make([]string, 0, 1+len(vals))
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, strconv.FormatFloat(v, 'f', prec, 64))
	}
	t.Add(cells...)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the table as comma-separated values (header included, title
// omitted). Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with the given precision (helper for table cells).
func F(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }

// I formats an int (helper for table cells).
func I(v int) string { return strconv.Itoa(v) }

// U formats a uint64 (helper for table cells).
func U(v uint64) string { return strconv.FormatUint(v, 10) }

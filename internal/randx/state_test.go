package randx

import "testing"

func TestStateRoundTripContinuesStream(t *testing.T) {
	s := NewSource(42)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	resumed := NewSource(s.State())
	for i := 0; i < 20; i++ {
		if a, b := s.Uint64(), resumed.Uint64(); a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}
}

func TestStateRoundTripPreservesSplits(t *testing.T) {
	s := NewSource(7)
	s.Uint64()
	resumed := NewSource(s.State())
	if a, b := s.Split(99).Uint64(), resumed.Split(99).Uint64(); a != b {
		t.Fatalf("split streams diverged after state round trip: %d vs %d", a, b)
	}
}

// Package randx provides the deterministic randomness substrate for the
// simulator: a splittable seeded source plus the samplers the experiments
// need (bounded Zipf for long-tail popularity, Poisson for the heterogeneous
// storage scenarios of Table 1, log-normal for profile sizes).
//
// Determinism contract: every run of an experiment derives all of its
// randomness from a single root seed through Split, so identical seeds and
// parameters reproduce identical outputs, independent of map iteration
// order or goroutine scheduling.
package randx

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source based on splitmix64. It
// implements rand.Source64 so it can back a math/rand.Rand, and it supports
// deterministic splitting into independent child sources.
type Source struct {
	state uint64
}

// NewSource returns a source seeded with the given value.
func NewSource(seed uint64) *Source { return &Source{state: seed} }

// next advances the splitmix64 state and returns the next value.
func (s *Source) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 { return s.next() }

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.next() >> 1) }

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// State exposes the source's internal splitmix64 state for checkpointing.
// NewSource(state) reconstructs a source that continues the exact same
// stream: the constructor stores its seed verbatim, so save/restore is a
// plain round trip through State.
func (s *Source) State() uint64 { return s.state }

// Restore reconstructs a source whose stream continues exactly where a
// source with the given State left off: the state is stored verbatim, so
// Restore(s.State()) is a perfect round trip. The checkpoint codec pairs
// it with State; the snapshotcomplete analyzer verifies the pair covers
// every Source field.
func Restore(state uint64) *Source { return &Source{state: state} }

// Split derives an independent child source from this source and a label.
// Two children split with different labels from the same parent state are
// statistically independent; splitting does not advance the parent, so the
// set of children is a pure function of (parent state, label).
func (s *Source) Split(label uint64) *Source {
	c := s.Derive(label)
	return &c
}

// Derive is Split returning the child by value: the same state derivation,
// but the caller decides where the child lives. The engine's planners derive
// per-plan streams into pooled plan slots, so a cycle's thousands of splits
// stop being thousands of heap allocations.
//
//p3q:hotpath
func (s *Source) Derive(label uint64) Source {
	z := s.state ^ (label * 0xd6e8feb86659fd93)
	z = (z ^ (z >> 32)) * 0xd6e8feb86659fd93
	z = (z ^ (z >> 32)) * 0xd6e8feb86659fd93
	return Source{state: z ^ (z >> 32)}
}

// Rand wraps the source in a math/rand.Rand for use with the standard
// library's distribution helpers. The returned Rand shares this source's
// state: draws through it advance the source.
func (s *Source) Rand() *rand.Rand { return rand.New(s) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with n <= 0")
	}
	return int(s.next() % uint64(n)) // negligible modulo bias for our n
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Shuffle permutes the n elements using the supplied swap function
// (Fisher-Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	return s.PermInto(nil, n)
}

// PermInto writes a random permutation of [0, n) into dst (reusing its
// capacity) and returns it. The draw sequence and result are identical to
// Perm, so pooled callers stay byte-for-byte compatible with allocating
// ones.
//
//p3q:hotpath
func (s *Source) PermInto(dst []int, n int) []int {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	s.Shuffle(n, func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
	return dst
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. If k >= n it returns a permutation of all n values.
func (s *Source) Sample(n, k int) []int {
	var sp Sampler
	return sp.Sample(s, n, k)
}

// Sampler owns the scratch buffers of Sample so hot callers can draw
// distinct-index samples every cycle without allocating. The zero value is
// ready to use; buffers grow to the largest (n, k) seen and are reused.
// A Sampler is not safe for concurrent use — embed one per planner-owned
// plan slot.
type Sampler struct {
	chosen []int
	// remapK/remapV record the displaced positions of the partial
	// Fisher-Yates (the role the old implementation gave a per-call map):
	// remapV[i] is the value currently living at virtual position
	// remapK[i]. k is small everywhere Sample is used (view capacities,
	// digest batches, split sizes), so a linear scan beats a map — and
	// allocates nothing once warm.
	remapK, remapV []int
}

// lookup returns the value at virtual position j.
func (sp *Sampler) lookup(j int) int {
	for i, k := range sp.remapK {
		if k == j {
			return sp.remapV[i]
		}
	}
	return j
}

// set records that virtual position j now holds v.
func (sp *Sampler) set(j, v int) {
	for i, k := range sp.remapK {
		if k == j {
			sp.remapV[i] = v
			return
		}
	}
	sp.remapK = append(sp.remapK, j)
	sp.remapV = append(sp.remapV, v)
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order, drawing from src. The draw sequence and results are identical to
// Source.Sample; the returned slice aliases the sampler's scratch and is
// valid until the next call. If k >= n it returns a permutation of all n
// values.
//
//p3q:hotpath
func (sp *Sampler) Sample(src *Source, n, k int) []int {
	if k >= n {
		sp.chosen = src.PermInto(sp.chosen, n)
		return sp.chosen
	}
	// Partial Fisher-Yates over the displaced-position records: O(k) space.
	sp.chosen = sp.chosen[:0]
	sp.remapK = sp.remapK[:0]
	sp.remapV = sp.remapV[:0]
	for i := 0; i < k; i++ {
		j := i + src.Intn(n-i)
		sp.chosen = append(sp.chosen, sp.lookup(j))
		sp.set(j, sp.lookup(i))
	}
	return sp.chosen
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		if u1 == 0 {
			continue
		}
		u2 := s.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Poisson returns a Poisson(lambda) variate using Knuth's product method,
// adequate for the small lambdas used here (Table 1 uses 1 and 4).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws values in [0, n) with probability proportional to
// 1/(rank+1)^exponent. It is a small bounded Zipf sampler built on the
// standard library generator.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a bounded Zipf sampler over [0, n) with the given
// exponent (> 1 per math/rand's contract; exponents <= 1 are clamped to
// 1.0001, which is visually indistinguishable for our workloads).
func NewZipf(s *Source, exponent float64, n int) *Zipf {
	if exponent <= 1 {
		exponent = 1.0001
	}
	if n < 1 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(s.Rand(), exponent, 1, uint64(n-1))}
}

// Draw returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to the weights. Zero-total weights fall back to
// uniform. It panics on an empty slice.
func (s *Source) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("randx: WeightedChoice with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return s.Intn(len(weights))
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

package randx

import (
	"math"
	"testing"
)

// Table 1 of the paper, in percent, parallel to StorageClasses.
var (
	table1Lambda1 = []float64{36.79, 36.79, 18.39, 6.13, 1.53, 0.31, 0.06}
	table1Lambda4 = []float64{2.06, 8.25, 16.49, 21.99, 21.99, 17.59, 11.73}
)

func TestStorageClassPMFMatchesTable1Lambda1(t *testing.T) {
	pmf := StorageClassPMF(1, StorageTailLump)
	for i, want := range table1Lambda1 {
		got := pmf[i] * 100
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("lambda=1 class c=%d: pmf %.4f%%, Table 1 says %.2f%%",
				StorageClasses[i], got, want)
		}
	}
}

func TestStorageClassPMFMatchesTable1Lambda4(t *testing.T) {
	pmf := StorageClassPMF(4, StorageTailTruncate)
	for i, want := range table1Lambda4 {
		got := pmf[i] * 100
		// The paper's row carries ~0.02pp of rounding drift relative to
		// the exact renormalized Poisson(4) pmf; allow 0.05pp.
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("lambda=4 class c=%d: pmf %.4f%%, Table 1 says %.2f%%",
				StorageClasses[i], got, want)
		}
	}
}

func TestStorageClassPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.5, 1, 2, 4} {
		for _, mode := range []StorageTailMode{StorageTailLump, StorageTailTruncate} {
			pmf := StorageClassPMF(lambda, mode)
			sum := 0.0
			for _, p := range pmf {
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("pmf(lambda=%g, mode=%d) sums to %f", lambda, mode, sum)
			}
		}
	}
}

func TestTailModeFor(t *testing.T) {
	if TailModeFor(1) != StorageTailLump {
		t.Fatal("lambda=1 should lump the tail (Table 1 convention)")
	}
	if TailModeFor(4) != StorageTailTruncate {
		t.Fatal("lambda=4 should truncate (Table 1 convention)")
	}
}

func TestDrawStorageClassEmpirical(t *testing.T) {
	s := NewSource(20)
	const n = 200000
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[s.DrawStorageClass(4, StorageTailTruncate)]++
	}
	pmf := StorageClassPMF(4, StorageTailTruncate)
	for i, c := range StorageClasses {
		got := float64(counts[c]) / n
		if math.Abs(got-pmf[i]) > 0.005 {
			t.Fatalf("empirical P(c=%d) = %.4f, analytic %.4f", c, got, pmf[i])
		}
	}
}

func TestDrawStorageClassOnlyValidClasses(t *testing.T) {
	s := NewSource(21)
	valid := make(map[int]bool)
	for _, c := range StorageClasses {
		valid[c] = true
	}
	for i := 0; i < 10000; i++ {
		if c := s.DrawStorageClass(1, StorageTailLump); !valid[c] {
			t.Fatalf("drew invalid class %d", c)
		}
	}
}

func TestAssignStorageLength(t *testing.T) {
	s := NewSource(22)
	cs := s.AssignStorage(500, 1, StorageTailLump)
	if len(cs) != 500 {
		t.Fatalf("AssignStorage returned %d values, want 500", len(cs))
	}
}

func TestLambda1MostlySmallStorage(t *testing.T) {
	// §3.1.2: "In the lambda = 1 scenario, more than 73% users only store
	// 10 or 20 profiles."
	s := NewSource(23)
	cs := s.AssignStorage(100000, 1, StorageTailLump)
	small := 0
	for _, c := range cs {
		if c == 10 || c == 20 {
			small++
		}
	}
	if frac := float64(small) / float64(len(cs)); frac < 0.72 {
		t.Fatalf("fraction with c in {10,20} = %.3f, paper says > 0.73", frac)
	}
}

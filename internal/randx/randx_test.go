package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewSource(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	c1again := root.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Split is not a pure function of (state, label)")
	}
	// Advance c1; root and c2 must be unaffected.
	before := NewSource(7).Split(2).Uint64()
	for i := 0; i < 10; i++ {
		c1.Uint64()
	}
	if c2.Uint64() != before {
		t.Fatal("advancing one child affected a sibling")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := NewSource(9)
	b := NewSource(9)
	a.Split(123)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent state")
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(2)
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSource(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %f, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(4)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	s := NewSource(5)
	for trial := 0; trial < 100; trial++ {
		got := s.Sample(20, 5)
		if len(got) != 5 {
			t.Fatalf("Sample(20,5) returned %d values", len(got))
		}
		seen := make(map[int]bool)
		for _, v := range got {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("Sample returned invalid/duplicate value: %v", got)
			}
			seen[v] = true
		}
	}
}

func TestSampleAll(t *testing.T) {
	s := NewSource(6)
	got := s.Sample(5, 10)
	if len(got) != 5 {
		t.Fatalf("Sample(5,10) returned %d values, want 5", len(got))
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	s := NewSource(77)
	counts := make([]int, 10)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range s.Sample(10, 3) {
			counts[v]++
		}
	}
	// Each element should be picked with probability 3/10.
	want := float64(trials) * 0.3
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("element %d sampled %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestPoissonMeanAndVariance(t *testing.T) {
	s := NewSource(8)
	for _, lambda := range []float64{1, 4} {
		const n = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.02 {
			t.Fatalf("Poisson(%g) mean = %f", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.05 {
			t.Fatalf("Poisson(%g) variance = %f", lambda, variance)
		}
	}
}

func TestPoissonNonPositiveLambda(t *testing.T) {
	s := NewSource(9)
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson with lambda <= 0 should return 0")
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := NewSource(10)
	for i := 0; i < 1000; i++ {
		if s.LogNormal(3, 1) <= 0 {
			t.Fatal("LogNormal returned non-positive value")
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := NewSource(11)
	const n = 20000
	below := 0
	median := math.Exp(3.0)
	for i := 0; i < n; i++ {
		if s.LogNormal(3, 0.8) < median {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("fraction below median = %f, want ~0.5", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	s := NewSource(12)
	z := NewZipf(s, 1.2, 1000)
	counts := make(map[int]int)
	const n = 20000
	for i := 0; i < n; i++ {
		v := z.Draw()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("Zipf not skewed: count[0]=%d count[10]=%d", counts[0], counts[10])
	}
	if counts[0] < n/20 {
		t.Fatalf("rank-0 mass too small for a long-tail distribution: %d", counts[0])
	}
}

func TestZipfClampedExponent(t *testing.T) {
	s := NewSource(13)
	z := NewZipf(s, 0.5, 10) // clamped internally
	for i := 0; i < 100; i++ {
		if v := z.Draw(); v < 0 || v >= 10 {
			t.Fatalf("clamped Zipf draw %d out of range", v)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	s := NewSource(14)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight element chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %f, want ~3", ratio)
	}
}

func TestWeightedChoiceZeroTotalUniform(t *testing.T) {
	s := NewSource(15)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[s.WeightedChoice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 700 {
			t.Fatalf("uniform fallback skewed: counts[%d]=%d", i, c)
		}
	}
}

func TestWeightedChoicePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedChoice(empty) did not panic")
		}
	}()
	NewSource(1).WeightedChoice(nil)
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewSource(16)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %f, want ~1", variance)
	}
}

func TestRandAdapter(t *testing.T) {
	s := NewSource(17)
	r := s.Rand()
	for i := 0; i < 100; i++ {
		if v := r.Intn(5); v < 0 || v >= 5 {
			t.Fatalf("adapter Intn out of range: %d", v)
		}
	}
}

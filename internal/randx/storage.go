package randx

import "math"

// StorageClasses are the per-user stored-profile capacities c considered by
// the paper's evaluation (Table 1 and the seven uniform scenarios of §3.1.2).
var StorageClasses = []int{10, 20, 50, 100, 200, 500, 1000}

// StorageTailMode selects how a Poisson draw larger than the last storage
// class index is handled when assigning heterogeneous capacities.
type StorageTailMode int

const (
	// StorageTailLump maps every draw k >= 6 onto the last class. This
	// reproduces the paper's lambda=1 row of Table 1 exactly
	// (36.79, 36.79, 18.39, 6.13, 1.53, 0.31, 0.06 %).
	StorageTailLump StorageTailMode = iota
	// StorageTailTruncate redraws until k <= 6, i.e. renormalizes the
	// Poisson pmf over the seven classes. This reproduces the paper's
	// lambda=4 row exactly (2.06, 8.25, 16.49, 21.99, 21.99, 17.59,
	// 11.73 %).
	StorageTailTruncate
)

// TailModeFor returns the Table 1 convention matching the given lambda: the
// paper lumps the tail for lambda=1 and truncates for lambda=4 (the two
// conventions are numerically indistinguishable at lambda=1). Any other
// lambda defaults to truncation.
func TailModeFor(lambda float64) StorageTailMode {
	if lambda <= 1 {
		return StorageTailLump
	}
	return StorageTailTruncate
}

// StorageClassPMF returns the analytic probability of each storage class
// under Poisson(lambda) with the given tail handling. The slice is parallel
// to StorageClasses.
func StorageClassPMF(lambda float64, mode StorageTailMode) []float64 {
	n := len(StorageClasses)
	pmf := make([]float64, n)
	// Poisson pmf by recurrence: p(0)=e^-l, p(k)=p(k-1)*l/k.
	p := math.Exp(-lambda)
	total := 0.0
	for k := 0; k < n; k++ {
		if k > 0 {
			p = p * lambda / float64(k)
		}
		pmf[k] = p
		total += p
	}
	switch mode {
	case StorageTailLump:
		pmf[n-1] += 1 - total // fold P(k >= n) into the last class
	case StorageTailTruncate:
		for k := range pmf {
			pmf[k] /= total
		}
	}
	return pmf
}

// DrawStorageClass samples a capacity c from StorageClasses under
// Poisson(lambda) with the given tail handling.
func (s *Source) DrawStorageClass(lambda float64, mode StorageTailMode) int {
	last := len(StorageClasses) - 1
	for {
		k := s.Poisson(lambda)
		if k <= last {
			return StorageClasses[k]
		}
		if mode == StorageTailLump {
			return StorageClasses[last]
		}
		// truncate: redraw
	}
}

// AssignStorage draws a capacity for each of n users.
func (s *Source) AssignStorage(n int, lambda float64, mode StorageTailMode) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = s.DrawStorageClass(lambda, mode)
	}
	return out
}

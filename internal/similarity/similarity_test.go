package similarity

import (
	"testing"

	"p3q/internal/tagging"
	"p3q/internal/trace"
)

func testDataset(seed uint64) *trace.Dataset {
	p := trace.DefaultGenParams(120)
	p.MeanItems = 20
	p.Seed = seed
	return trace.Generate(p)
}

func TestIndexMatchesDirectScore(t *testing.T) {
	d := testDataset(1)
	ix := Build(d)
	for u := 0; u < 20; u++ {
		scores := ix.CoScores(d.Profiles[u])
		for v := 0; v < d.Users(); v++ {
			if v == u {
				continue
			}
			want := Score(d.Profiles[u], d.Profiles[v])
			if got := scores[tagging.UserID(v)]; got != want {
				t.Fatalf("score(%d,%d) via index = %d, direct = %d", u, v, got, want)
			}
		}
	}
}

func TestCoScoresExcludesSelf(t *testing.T) {
	d := testDataset(2)
	ix := Build(d)
	for u := 0; u < d.Users(); u++ {
		if _, ok := ix.CoScores(d.Profiles[u])[tagging.UserID(u)]; ok {
			t.Fatalf("user %d scored against herself", u)
		}
	}
}

func TestTopNeighboursOrdering(t *testing.T) {
	d := testDataset(3)
	ix := Build(d)
	ns := ix.TopNeighbours(d.Profiles[0], 50)
	for i := 1; i < len(ns); i++ {
		prev, cur := ns[i-1], ns[i]
		if cur.Score > prev.Score {
			t.Fatal("neighbours not sorted by descending score")
		}
		if cur.Score == prev.Score && cur.ID < prev.ID {
			t.Fatal("tie-break not ascending by ID")
		}
	}
	for _, n := range ns {
		if n.Score <= 0 {
			t.Fatalf("non-positive score %d in top neighbours", n.Score)
		}
	}
}

func TestTopNeighboursTruncates(t *testing.T) {
	d := testDataset(4)
	ix := Build(d)
	ns := ix.TopNeighbours(d.Profiles[0], 5)
	if len(ns) > 5 {
		t.Fatalf("TopNeighbours(5) returned %d entries", len(ns))
	}
}

func TestIdealNetworksDeterministic(t *testing.T) {
	d := testDataset(5)
	a := IdealNetworks(d, 20)
	b := IdealNetworks(d, 20)
	for u := range a {
		if len(a[u]) != len(b[u]) {
			t.Fatalf("user %d: ideal network sizes differ", u)
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatalf("user %d entry %d: %v vs %v (parallel nondeterminism)", u, i, a[u][i], b[u][i])
			}
		}
	}
}

func TestIdealNetworksMatchPerUser(t *testing.T) {
	d := testDataset(6)
	ix := Build(d)
	nets := IdealNetworksWithIndex(d, ix, 15)
	for _, u := range []int{0, 7, 42} {
		want := ix.TopNeighbours(d.Profiles[u], 15)
		got := nets[u]
		if len(got) != len(want) {
			t.Fatalf("user %d: %d vs %d neighbours", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d neighbour %d: %v vs %v", u, i, got[i], want[i])
			}
		}
	}
}

func TestIdealNetworkContainsBestPeer(t *testing.T) {
	// Brute-force the single best neighbour for a few users and verify it
	// leads the ideal network.
	d := testDataset(7)
	nets := IdealNetworks(d, 10)
	for _, u := range []int{0, 3, 99} {
		bestScore := 0
		for v := 0; v < d.Users(); v++ {
			if v == u {
				continue
			}
			if s := Score(d.Profiles[u], d.Profiles[v]); s > bestScore {
				bestScore = s
			}
		}
		if bestScore == 0 {
			continue // isolated user: ideal network legitimately empty
		}
		if len(nets[u]) == 0 || nets[u][0].Score != bestScore {
			t.Fatalf("user %d: ideal network head score %v, brute-force best %d",
				u, nets[u], bestScore)
		}
	}
}

func TestUsersFor(t *testing.T) {
	d := testDataset(8)
	ix := Build(d)
	p := d.Profiles[0]
	a := p.Actions()[0]
	users := ix.UsersFor(a)
	found := false
	for _, u := range users {
		if u == 0 {
			found = true
		}
		if !d.Profiles[u].Has(a.Item, a.Tag) {
			t.Fatalf("index lists user %d for an action she never performed", u)
		}
	}
	if !found {
		t.Fatal("index misses the action's own performer")
	}
}

func TestScoreSymmetry(t *testing.T) {
	d := testDataset(9)
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if Score(d.Profiles[u], d.Profiles[v]) != Score(d.Profiles[v], d.Profiles[u]) {
				t.Fatalf("score(%d,%d) asymmetric", u, v)
			}
		}
	}
}

func TestIdealNetworksAfterChanges(t *testing.T) {
	// Applying a change-set must be reflected when networks are recomputed:
	// scores can only grow (profiles are append-only).
	d := testDataset(10)
	before := IdealNetworks(d, 10)
	changes := trace.GenerateChanges(d, trace.ChangeParams{
		FracUsers: 0.3, MeanNew: 10, SigmaNew: 0.6, MaxNew: 40, Seed: 11,
	})
	trace.ApplyChanges(d, changes)
	after := IdealNetworks(d, 10)
	grew := false
	for u := range after {
		if len(after[u]) > 0 && len(before[u]) > 0 && after[u][0].Score > before[u][0].Score {
			grew = true
		}
		if len(after[u]) < len(before[u]) {
			t.Fatalf("user %d lost neighbours after additive changes", u)
		}
	}
	if !grew {
		t.Fatal("no score grew after applying a substantial change-set")
	}
}

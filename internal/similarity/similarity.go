// Package similarity computes the P3Q user-similarity metric and the
// offline "ideal personal network" oracle used as ground truth by the
// evaluation (§3.2.1: "the ideal one obtained off-line using the global
// information about all users' profiles").
//
// The similarity between two users is the number of common tagging actions,
// Score(ui, uj) = |Profile(ui) ∩ Profile(uj)| — the metric of §2.1. The
// oracle builds an inverted index from (item, tag) pairs to the users that
// performed them and accumulates pairwise co-occurrence counts, which is
// dramatically cheaper than all-pairs profile intersection and scales as the
// total co-occurrence mass of the trace.
package similarity

import (
	"runtime"
	"sort"
	"sync"

	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// Neighbour is a scored candidate for a user's personal network.
type Neighbour struct {
	ID    tagging.UserID
	Score int
}

// Index maps every tagging action to the users that performed it.
type Index struct {
	byAction map[uint64][]tagging.UserID
	users    int
}

// Build constructs the inverted index of the dataset.
func Build(d *trace.Dataset) *Index {
	ix := &Index{
		byAction: make(map[uint64][]tagging.UserID, d.TotalActions()),
		users:    d.Users(),
	}
	for _, p := range d.Profiles {
		u := p.Owner()
		for _, a := range p.Actions() {
			k := a.Key()
			ix.byAction[k] = append(ix.byAction[k], u)
		}
	}
	return ix
}

// UsersFor returns the users that performed the given action. The returned
// slice aliases the index and must not be modified.
func (ix *Index) UsersFor(a tagging.Action) []tagging.UserID {
	return ix.byAction[a.Key()]
}

// CoScores returns, for the user u, the similarity score with every user
// sharing at least one action with her. u itself is excluded.
func (ix *Index) CoScores(p *tagging.Profile) map[tagging.UserID]int {
	out := make(map[tagging.UserID]int)
	self := p.Owner()
	for _, a := range p.Actions() {
		for _, v := range ix.byAction[a.Key()] {
			if v != self {
				out[v]++
			}
		}
	}
	return out
}

// TopNeighbours returns the s best neighbours of the user by similarity
// score (positive scores only), ordered by descending score with ascending
// ID as the deterministic tie-break.
func (ix *Index) TopNeighbours(p *tagging.Profile, s int) []Neighbour {
	scores := ix.CoScores(p)
	out := make([]Neighbour, 0, len(scores))
	for id, sc := range scores {
		if sc > 0 {
			out = append(out, Neighbour{ID: id, Score: sc})
		}
	}
	SortNeighbours(out)
	if len(out) > s {
		out = out[:s]
	}
	return out
}

// SortNeighbours orders neighbours by descending score, ascending ID.
func SortNeighbours(ns []Neighbour) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Score != ns[j].Score {
			return ns[i].Score > ns[j].Score
		}
		return ns[i].ID < ns[j].ID
	})
}

// IdealNetworks computes the ideal personal network (top-s neighbours) of
// every user, in parallel across CPUs. The result is indexed by user ID and
// fully deterministic.
func IdealNetworks(d *trace.Dataset, s int) [][]Neighbour {
	ix := Build(d)
	return IdealNetworksWithIndex(d, ix, s)
}

// IdealNetworksWithIndex is IdealNetworks with a pre-built index, for
// callers that reuse the index across calls.
func IdealNetworksWithIndex(d *trace.Dataset, ix *Index, s int) [][]Neighbour {
	n := d.Users()
	out := make([][]Neighbour, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				out[u] = ix.TopNeighbours(d.Profiles[u], s)
			}
		}()
	}
	for u := 0; u < n; u++ {
		next <- u
	}
	close(next)
	wg.Wait()
	return out
}

// Score computes the similarity between two live profiles directly, without
// an index. It is the reference implementation the index is tested against.
func Score(a, b *tagging.Profile) int {
	return a.CommonScore(b.Snapshot())
}

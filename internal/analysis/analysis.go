// Package analysis implements the closed-form query-processing analysis of
// §2.4 of the paper (Theorems 2.1-2.4): the number of gossip cycles R(α)
// for a querier to obtain the best results her personal network can
// provide, and the bounds on users involved, partial results and gossip
// messages.
//
// The model assumes that every gossiped query finds the same number X of
// requested profiles at each destination; the querier starts with a
// remaining list of length L.
package analysis

import "math"

// RAlpha returns R(α), the number of eager cycles until the remaining list
// is exhausted (Theorem 2.1):
//
//	R(α) = 1 - log_α((1-α)·L/X + α)        for 0.5 <= α < 1
//	R(α) = 1 - log_{1-α}(α·L/X + (1-α))    for 0 < α < 0.5
//	R(α) = L/X                              for α = 0 or α = 1
//
// L and X must be positive; L < X is clamped to one cycle.
func RAlpha(alpha, l, x float64) float64 {
	if l <= 0 {
		return 0
	}
	if x <= 0 {
		return math.Inf(1)
	}
	if l <= x {
		return 1
	}
	switch {
	case alpha <= 0 || alpha >= 1:
		return l / x
	case alpha >= 0.5:
		return 1 - math.Log((1-alpha)*l/x+alpha)/math.Log(alpha)
	default:
		return 1 - math.Log(alpha*l/x+(1-alpha))/math.Log(1-alpha)
	}
}

// OptimalAlpha is the split minimizing R(α) (Theorem 2.2).
const OptimalAlpha = 0.5

// RemainingAfter simulates the recurrence of Theorem 2.1's proof directly:
// the length of the longest remaining list after r cycles. It is the
// reference the closed form is tested against.
//
//	L(r) = β·(L(r-1) - X), with β = max(α, 1-α)
func RemainingAfter(alpha, l, x float64, r int) float64 {
	beta := alpha
	if 1-alpha > beta {
		beta = 1 - alpha
	}
	for i := 0; i < r && l > 0; i++ {
		l = beta * (l - x)
		if l < 0 {
			l = 0
		}
	}
	return l
}

// UsersBound returns the Theorem 2.3 upper bound on the number of users
// involved in processing a query completing in r cycles: 2^r.
func UsersBound(r float64) float64 { return math.Pow(2, r) }

// PartialResultsBound returns the Theorem 2.3 upper bound on the number of
// partial result lists sent to the querier: 2^r - 1.
func PartialResultsBound(r float64) float64 { return math.Pow(2, r) - 1 }

// MessagesBound returns the Theorem 2.4 upper bound on the number of eager
// gossip messages transmitting remaining lists: 2·(2^r - 1).
func MessagesBound(r float64) float64 { return 2 * (math.Pow(2, r) - 1) }

// CyclesLogApprox returns the O(log2 L) approximation quoted in §1 for the
// query processing time at α = 0.5 with X = 1.
func CyclesLogApprox(l float64) float64 {
	if l <= 1 {
		return 1
	}
	return math.Log2(l)
}

package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRAlphaBoundaries(t *testing.T) {
	// α = 0 and α = 1: the querier (or a single chain) processes the list
	// X profiles per cycle: L/X cycles.
	if got := RAlpha(0, 100, 10); got != 10 {
		t.Fatalf("R(0) = %f, want 10", got)
	}
	if got := RAlpha(1, 100, 10); got != 10 {
		t.Fatalf("R(1) = %f, want 10", got)
	}
}

func TestRAlphaDegenerate(t *testing.T) {
	if got := RAlpha(0.5, 0, 10); got != 0 {
		t.Fatalf("R with empty list = %f, want 0", got)
	}
	if got := RAlpha(0.5, 5, 10); got != 1 {
		t.Fatalf("R with L <= X = %f, want 1", got)
	}
	if got := RAlpha(0.5, 10, 0); !math.IsInf(got, 1) {
		t.Fatalf("R with X = 0 = %f, want +Inf", got)
	}
}

func TestRAlphaSymmetry(t *testing.T) {
	// R(α) = R(1-α) by the construction of the two branches.
	for _, a := range []float64{0.1, 0.2, 0.3, 0.4} {
		r1 := RAlpha(a, 1000, 10)
		r2 := RAlpha(1-a, 1000, 10)
		if math.Abs(r1-r2) > 1e-9 {
			t.Fatalf("R(%g) = %f != R(%g) = %f", a, r1, 1-a, r2)
		}
	}
}

func TestRAlphaMonotoneAboveHalf(t *testing.T) {
	// Theorem 2.2: R(α) increases on [0.5, 1).
	prev := RAlpha(0.5, 1000, 10)
	for _, a := range []float64{0.6, 0.7, 0.8, 0.9, 0.99} {
		cur := RAlpha(a, 1000, 10)
		if cur <= prev {
			t.Fatalf("R not increasing: R(%g)=%f <= previous %f", a, cur, prev)
		}
		prev = cur
	}
}

func TestRAlphaMonotoneBelowHalf(t *testing.T) {
	// Theorem 2.2: R(α) decreases on (0, 0.5).
	prev := RAlpha(0.01, 1000, 10)
	for _, a := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		cur := RAlpha(a, 1000, 10)
		if cur >= prev {
			t.Fatalf("R not decreasing: R(%g)=%f >= previous %f", a, cur, prev)
		}
		prev = cur
	}
}

func TestRAlphaMinimumAtHalf(t *testing.T) {
	// Theorem 2.2: α = 0.5 achieves the minimum.
	min := RAlpha(OptimalAlpha, 990, 10)
	for _, a := range []float64{0, 0.1, 0.3, 0.45, 0.55, 0.7, 0.9, 1} {
		if r := RAlpha(a, 990, 10); r < min-1e-9 {
			t.Fatalf("R(%g) = %f below R(0.5) = %f", a, r, min)
		}
	}
}

func TestRAlphaMatchesRecurrence(t *testing.T) {
	// The closed form must agree with the simulated recurrence: after
	// ceil(R) cycles the longest remaining list is empty; after floor(R)-1
	// it is not.
	for _, tc := range []struct{ alpha, l, x float64 }{
		{0.5, 1000, 10}, {0.7, 500, 5}, {0.3, 800, 20}, {0.9, 300, 3}, {0.5, 990, 1},
	} {
		r := RAlpha(tc.alpha, tc.l, tc.x)
		up := int(math.Ceil(r + 1e-9))
		if rem := RemainingAfter(tc.alpha, tc.l, tc.x, up); rem > 1e-6 {
			t.Fatalf("alpha=%g L=%g X=%g: after ceil(R)=%d cycles remaining=%f, want 0",
				tc.alpha, tc.l, tc.x, up, rem)
		}
		down := int(math.Floor(r - 1e-9))
		if down >= 1 {
			if rem := RemainingAfter(tc.alpha, tc.l, tc.x, down-1); rem <= 0 {
				t.Fatalf("alpha=%g L=%g X=%g: already empty after %d cycles but R=%f",
					tc.alpha, tc.l, tc.x, down-1, r)
			}
		}
	}
}

func TestRAlphaLogApproximation(t *testing.T) {
	// §1: "the query processing time in gossip cycles can be approximated
	// with O(log2 L)". At alpha=0.5, X=1 the closed form stays within a
	// small constant of log2(L).
	for _, l := range []float64{64, 256, 1024, 4096} {
		r := RAlpha(0.5, l, 1)
		approx := CyclesLogApprox(l)
		if math.Abs(r-approx) > 3 {
			t.Fatalf("L=%g: R=%f vs log2=%f differ by more than 3", l, r, approx)
		}
	}
}

func TestBounds(t *testing.T) {
	if UsersBound(3) != 8 {
		t.Fatalf("UsersBound(3) = %f", UsersBound(3))
	}
	if PartialResultsBound(3) != 7 {
		t.Fatalf("PartialResultsBound(3) = %f", PartialResultsBound(3))
	}
	if MessagesBound(3) != 14 {
		t.Fatalf("MessagesBound(3) = %f", MessagesBound(3))
	}
}

func TestRemainingAfterMonotone(t *testing.T) {
	prev := 1000.0
	for r := 1; r < 20; r++ {
		cur := RemainingAfter(0.5, 1000, 10, r)
		if cur > prev {
			t.Fatalf("remaining list grew at cycle %d: %f > %f", r, cur, prev)
		}
		prev = cur
	}
	if prev != 0 {
		t.Fatalf("remaining list never emptied: %f", prev)
	}
}

func TestCyclesLogApproxDegenerate(t *testing.T) {
	if CyclesLogApprox(0.5) != 1 {
		t.Fatal("CyclesLogApprox below 1 item should clamp to 1")
	}
}

func TestRAlphaOptimalityProperty(t *testing.T) {
	// Theorem 2.2 as a property: for any L > X > 0 and any alpha, R(alpha)
	// is at least R(0.5).
	check := func(lRaw, xRaw uint16, aRaw uint8) bool {
		x := float64(xRaw%50) + 1
		l := x + float64(lRaw%5000) + 1
		alpha := float64(aRaw%101) / 100
		return RAlpha(alpha, l, x) >= RAlpha(OptimalAlpha, l, x)-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRAlphaSymmetryProperty(t *testing.T) {
	check := func(lRaw, xRaw uint16, aRaw uint8) bool {
		x := float64(xRaw%50) + 1
		l := x + float64(lRaw%5000) + 1
		alpha := float64(aRaw%49+1) / 100 // (0, 0.5)
		return math.Abs(RAlpha(alpha, l, x)-RAlpha(1-alpha, l, x)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRAlphaAtLeastOneCycleProperty(t *testing.T) {
	check := func(lRaw, xRaw uint16, aRaw uint8) bool {
		x := float64(xRaw%100) + 1
		l := float64(lRaw) + 1
		alpha := float64(aRaw%101) / 100
		r := RAlpha(alpha, l, x)
		return r >= 1 || l <= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"p3q/internal/metrics"
	"p3q/internal/randx"
)

// table1Paper holds the percentages reported by Table 1 of the paper.
var table1Paper = map[float64][]float64{
	1: {36.79, 36.79, 18.39, 6.13, 1.53, 0.31, 0.06},
	4: {2.06, 8.25, 16.49, 21.99, 21.99, 17.59, 11.73},
}

// Table1 reproduces Table 1: the distribution of per-user storage
// capacities c under the two heterogeneous Poisson scenarios, both
// analytically (the exact pmf the paper tabulates) and empirically (the
// sampled assignment the heterogeneous experiments actually use).
func Table1(cfg Config) []*metrics.Table {
	t := metrics.NewTable(
		"Table 1 — distribution of c (percent of users)",
		"c", "paper l=1", "ours l=1", "sampled l=1", "paper l=4", "ours l=4", "sampled l=4")

	sample := func(lambda float64) []float64 {
		rng := randx.NewSource(cfg.Seed).Split(uint64(lambda * 1000))
		counts := make(map[int]int)
		n := cfg.Users
		if n < 10000 {
			n = 10000 // sample enough to resolve the 0.06% tail
		}
		for i := 0; i < n; i++ {
			counts[rng.DrawStorageClass(lambda, randx.TailModeFor(lambda))]++
		}
		out := make([]float64, len(randx.StorageClasses))
		for i, c := range randx.StorageClasses {
			out[i] = 100 * float64(counts[c]) / float64(n)
		}
		return out
	}

	pmf1 := randx.StorageClassPMF(1, randx.TailModeFor(1))
	pmf4 := randx.StorageClassPMF(4, randx.TailModeFor(4))
	s1 := sample(1)
	s4 := sample(4)
	for i, c := range randx.StorageClasses {
		t.Add(
			metrics.I(c),
			metrics.F(table1Paper[1][i], 2), metrics.F(pmf1[i]*100, 2), metrics.F(s1[i], 2),
			metrics.F(table1Paper[4][i], 2), metrics.F(pmf4[i]*100, 2), metrics.F(s4[i], 2),
		)
	}
	return []*metrics.Table{t}
}

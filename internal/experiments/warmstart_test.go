package experiments

import (
	"testing"
	"time"

	"p3q/internal/core"
	"p3q/internal/sim"
)

// TestSharedSnapshotForkMatchesColdBuild pins the warm-start contract the
// latency and expansion experiments rely on: a row forked from the shared
// snapshot produces exactly what the cold-built row produced — same query
// results, same traffic counters — including under a latency model the
// snapshot was not taken with.
func TestSharedSnapshotForkMatchesColdBuild(t *testing.T) {
	cfg := Default()
	cfg.Users = 120
	cfg.Queries = 25
	cfg.Cycles = 6
	cfg.Workers = 2
	w := NewWorld(cfg)

	start := time.Now()
	base := w.SeededEngine(w.CoreConfig(10))
	snap, err := NewSharedSnapshot(base, time.Since(start))
	if err != nil {
		t.Fatal(err)
	}

	row := func(e *core.Engine) ([][]int, sim.Traffic) {
		for _, q := range w.Queries {
			e.IssueQuery(q)
		}
		e.RunEager(cfg.Cycles * 4)
		var results [][]int
		for _, qr := range e.Queries() {
			var flat []int
			for _, r := range qr.Results() {
				flat = append(flat, int(r.Item), r.Score)
			}
			results = append(results, flat)
		}
		return results, e.Network().Total()
	}

	cc := w.CoreConfig(10)
	cc.Latency = sim.FixedLatency(50 * time.Millisecond) // differs from the snapshot's (nil) model
	coldResults, coldTraffic := row(w.SeededEngine(cc))
	forkResults, forkTraffic := row(snap.MustFork(cc))

	if forkTraffic != coldTraffic {
		t.Fatalf("forked row traffic %+v diverged from cold-built row %+v", forkTraffic, coldTraffic)
	}
	if len(forkResults) != len(coldResults) {
		t.Fatalf("forked row ran %d queries, cold row %d", len(forkResults), len(coldResults))
	}
	for i := range coldResults {
		if len(forkResults[i]) != len(coldResults[i]) {
			t.Fatalf("query %d: forked results differ in length", i)
		}
		for j := range coldResults[i] {
			if forkResults[i][j] != coldResults[i][j] {
				t.Fatalf("query %d: forked results diverged from cold build", i)
			}
		}
	}
	if note := snap.SavingsNote("test"); note == "" {
		t.Fatal("empty savings note")
	}
}

package experiments

import (
	"fmt"
	"math"

	"p3q/internal/analysis"
	"p3q/internal/metrics"
)

// Theory reproduces the analytical results of §2.4 and checks them against
// the implementation:
//
//   - Theorems 2.1/2.2: R(alpha) for a sweep of alpha at the world's
//     average remaining-list length L, showing the minimum at alpha = 0.5
//     and the symmetry around it;
//   - Theorems 2.3/2.4: the bounds on users involved, partial results and
//     gossip messages;
//   - an empirical column: the measured completion cycles of the protocol
//     for each alpha (uniform c = 10), which must follow the same ordering
//     as the closed form.
func Theory(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)

	alphas := []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1}
	measured := make([]float64, len(alphas))
	avgL := 0.0
	for ai, alpha := range alphas {
		cc := w.CoreConfig(10)
		cc.Alpha = alpha
		e := w.SeededEngine(cc)
		var lSum float64
		for _, q := range w.Queries {
			qr := e.IssueQuery(q)
			if qr == nil {
				continue
			}
			lSum += float64(qr.ProfilesNeeded() - 1)
		}
		e.RunEager(cfg.Cycles * 10)
		var cyclesDone []float64
		for _, qr := range e.Queries() {
			cyclesDone = append(cyclesDone, float64(qr.Cycles()))
		}
		measured[ai] = metrics.Mean(cyclesDone)
		if ai == 0 && len(e.Queries()) > 0 {
			avgL = lSum / float64(len(e.Queries()))
		}
	}

	t1 := metrics.NewTable(
		fmt.Sprintf("Theorems 2.1-2.2 — R(alpha) (analytic, L=%.0f) vs measured completion cycles", avgL),
		"alpha", "R(alpha) X=1", "R(alpha) X=3", "R(alpha) X=10", "measured cycles")
	for ai, alpha := range alphas {
		t1.Add(fmt.Sprintf("%.1f", alpha),
			metrics.F(analysis.RAlpha(alpha, avgL, 1), 1),
			metrics.F(analysis.RAlpha(alpha, avgL, 3), 1),
			metrics.F(analysis.RAlpha(alpha, avgL, 10), 1),
			metrics.F(measured[ai], 1))
	}

	// Theorems 2.3/2.4 at alpha = 0.5 with a conservative X = 1.
	r := analysis.RAlpha(analysis.OptimalAlpha, avgL, 1)
	e := w.SeededEngine(w.CoreConfig(10))
	for _, q := range w.Queries {
		e.IssueQuery(q)
	}
	e.RunEager(cfg.Cycles * 10)
	var users, partials []float64
	for _, qr := range e.Queries() {
		users = append(users, float64(qr.UsersReached()))
		partials = append(partials, float64(qr.PartialResultMessages()))
	}
	t2 := metrics.NewTable("Theorems 2.3-2.4 — bounds at alpha=0.5 (bounds capped at population size)",
		"quantity", "bound", "measured mean", "measured max")
	t2.Add("users involved (<= 2^R)",
		metrics.F(math.Min(analysis.UsersBound(r), float64(cfg.Users)), 0),
		metrics.F(metrics.Mean(users), 1), metrics.F(maxOf(users), 0))
	t2.Add("partial results (<= 2^R - 1)",
		metrics.F(math.Min(analysis.PartialResultsBound(r), float64(cfg.Users)), 0),
		metrics.F(metrics.Mean(partials), 1), metrics.F(maxOf(partials), 0))
	t2.Add("remaining-list messages (<= 2(2^R - 1))",
		metrics.F(math.Min(analysis.MessagesBound(r), 2*float64(cfg.Users)), 0),
		"", "")
	return []*metrics.Table{t1, t2}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

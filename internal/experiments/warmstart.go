package experiments

import (
	"bytes"
	"fmt"
	"time"

	"p3q/internal/core"
	"p3q/internal/hostclock"
	"p3q/internal/trace"
)

// SharedSnapshot is the experiments-side consumer of the checkpoint
// subsystem: a scenario family converges (or seeds) one engine, captures it
// once, and forks every row — different query workloads, churn patterns,
// latency models, worker counts — from the shared snapshot instead of
// re-converging per row. Forked engines continue byte-for-byte as the
// captured engine would (the checkpoint determinism contract), so tables
// are unchanged; only the wall clock is.
//
// Forks share the captured engine's dataset object. That is safe for rows
// that never mutate profiles (none of the eager-mode sweeps do); a row that
// applies trace.ApplyChanges must restore with its own dataset via
// core.Restore directly.
type SharedSnapshot struct {
	data []byte
	ds   *trace.Dataset

	coldBuild time.Duration //p3q:hostplane wall clock of the one cold build captured
	snapTime  time.Duration //p3q:hostplane wall clock of taking the snapshot
	forkTime  time.Duration //p3q:hostplane accumulated wall clock of all forks
	forks     int
}

// NewSharedSnapshot captures a converged engine for forking. coldBuild is
// the measured wall clock of building that engine from scratch; the savings
// note reports fork cost against it.
func NewSharedSnapshot(e *core.Engine, coldBuild time.Duration) (*SharedSnapshot, error) {
	sw := hostclock.Start()
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		return nil, err
	}
	return &SharedSnapshot{
		data:      buf.Bytes(),
		ds:        e.Dataset(),
		coldBuild: coldBuild,
		snapTime:  sw.Elapsed(),
	}, nil
}

// Fork restores an independent engine from the shared snapshot. The
// configuration must match the captured engine's protocol parameters;
// Workers and Latency may differ per row.
func (s *SharedSnapshot) Fork(cc core.Config) (*core.Engine, error) {
	sw := hostclock.Start()
	e, err := core.Restore(bytes.NewReader(s.data), s.ds, cc)
	if err != nil {
		return nil, err
	}
	s.forkTime += sw.Elapsed()
	s.forks++
	return e, nil
}

// MustFork is Fork for experiment runners, whose signatures have no error
// path; a failing fork is a programming error (mismatched configuration).
func (s *SharedSnapshot) MustFork(cc core.Config) *core.Engine {
	e, err := s.Fork(cc)
	if err != nil {
		panic(fmt.Sprintf("experiments: warm-start fork failed: %v", err))
	}
	return e
}

// SavingsNote summarizes the measured wall clock of the warm-start scheme
// versus rebuilding every row cold: n rows cost one cold build plus one
// snapshot plus n forks, against n cold builds.
//
//p3q:hostplane formats wall-clock savings for the experiment log
func (s *SharedSnapshot) SavingsNote(label string) string {
	warm := s.coldBuild + s.snapTime + s.forkTime
	cold := time.Duration(s.forks) * s.coldBuild
	return fmt.Sprintf(
		"[%s: warm-start — converged once in %s, %d fork(s) in %s (snapshot %s, %s/fork); %s total vs ~%s cold-started, saving ~%s]",
		label, s.coldBuild.Round(time.Millisecond), s.forks, s.forkTime.Round(time.Millisecond),
		s.snapTime.Round(time.Millisecond), s.perFork().Round(time.Millisecond),
		warm.Round(time.Millisecond), cold.Round(time.Millisecond), (cold - warm).Round(time.Millisecond))
}

//p3q:hostplane mean fork wall clock for the savings note
func (s *SharedSnapshot) perFork() time.Duration {
	if s.forks == 0 {
		return 0
	}
	return s.forkTime / time.Duration(s.forks)
}

package experiments

import (
	"bytes"
	"strconv"
	"testing"
)

// tinyCfg keeps the smoke tests fast while preserving the shapes the
// assertions check.
func tinyCfg() Config {
	return Config{
		Users:     150,
		S:         20,
		K:         10,
		MeanItems: 20,
		Queries:   40,
		Cycles:    10,
		Seed:      7,
	}
}

// cell parses a table cell as float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "table2",
		"fig7a", "fig7b", "fig8", "fig9", "fig10",
		"fig11a", "fig11b", "fig11c", "theory", "bandwidth",
		"timeline", "latency", "localonly", "expansion", "ablations",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, name := range want {
		if reg[i].Name != name {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].Name, name)
		}
		if reg[i].Paper == "" || reg[i].Run == nil {
			t.Fatalf("registry entry %s incomplete", name)
		}
	}
	if _, ok := Lookup("fig3"); !ok {
		t.Fatal("Lookup(fig3) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

func TestTable1Shape(t *testing.T) {
	tables := Table1(tinyCfg())
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	tb := tables[0]
	if len(tb.Rows) != 7 {
		t.Fatalf("Table 1 has %d rows, want 7 storage classes", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		paper := cell(t, row[1])
		ours := cell(t, row[2])
		sampled := cell(t, row[3])
		if diff := paper - ours; diff > 0.05 || diff < -0.05 {
			t.Fatalf("lambda=1 analytic diverges from paper at c=%s: %f vs %f", row[0], ours, paper)
		}
		if diff := ours - sampled; diff > 1.5 || diff < -1.5 {
			t.Fatalf("lambda=1 sample diverges at c=%s: %f vs %f", row[0], sampled, ours)
		}
	}
}

func TestFig2ConvergenceShape(t *testing.T) {
	cfg := tinyCfg()
	cfg.Cycles = 8 // Fig2 multiplies by 5 internally
	tb := Fig2(cfg)[0]
	if len(tb.Rows) < 5 {
		t.Fatalf("too few sampled cycles: %d", len(tb.Rows))
	}
	nCols := len(tb.Header) - 1
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	for c := 1; c <= nCols; c++ {
		f, l := cell(t, first[c]), cell(t, last[c])
		if l < f {
			t.Fatalf("column %s: success ratio fell from %f to %f", tb.Header[c], f, l)
		}
		if l < 0.5 {
			t.Fatalf("column %s: final success ratio %f too low", tb.Header[c], l)
		}
	}
	// Paper: the more profiles stored, the faster the convergence — compare
	// an early sample between the smallest and largest c.
	if nCols >= 2 {
		mid := tb.Rows[2]
		small, large := cell(t, mid[1]), cell(t, mid[nCols])
		if small > large+0.15 {
			t.Fatalf("early convergence: c=%s (%f) should not trail far behind c=%s (%f)",
				tb.Header[nCols], large, tb.Header[1], small)
		}
	}
}

func TestFig3AlphaShape(t *testing.T) {
	tb := Fig3(tinyCfg())[0]
	last := tb.Rows[len(tb.Rows)-1]
	first := tb.Rows[0]
	// All alphas share the identical local starting point.
	base := cell(t, first[1])
	for c := 2; c < len(first); c++ {
		if v := cell(t, first[c]); v != base {
			t.Fatalf("cycle-0 recall differs across alphas: %f vs %f", v, base)
		}
	}
	// alpha=0.5 (column 4) must converge at least as fast as the extremes
	// (columns 1 and 7): compare an early-to-mid cycle.
	midRow := tb.Rows[len(tb.Rows)/3]
	a0, a05, a1 := cell(t, midRow[1]), cell(t, midRow[4]), cell(t, midRow[7])
	if a05+1e-9 < a0 || a05+1e-9 < a1 {
		t.Fatalf("alpha=0.5 (%f) slower than extremes (%f, %f) at mid-processing", a05, a0, a1)
	}
	// Everyone finishes high.
	for c := 1; c < len(last); c++ {
		if v := cell(t, last[c]); v < 0.9 {
			t.Fatalf("final recall for %s = %f, want >= 0.9", tb.Header[c], v)
		}
	}
}

func TestFig4StorageShape(t *testing.T) {
	tb := Fig4(tinyCfg())[0]
	first := tb.Rows[0]
	nCols := len(tb.Header) - 1
	// Larger c ⇒ more stored profiles ⇒ better cycle-0 recall.
	small, large := cell(t, first[1]), cell(t, first[nCols])
	if large < small {
		t.Fatalf("cycle-0 recall: c=%s (%f) below c=%s (%f)",
			tb.Header[nCols], large, tb.Header[1], small)
	}
	last := tb.Rows[len(tb.Rows)-1]
	for c := 1; c <= nCols; c++ {
		if v := cell(t, last[c]); v < 0.99 {
			t.Fatalf("final recall for %s = %f, want ~1 (paper: all reach 1 by cycle 10)",
				tb.Header[c], v)
		}
	}
}

func TestFig5StorageShape(t *testing.T) {
	tb := Fig5(tinyCfg())[0]
	prevMean, prevPct := 0.0, 0.0
	for _, row := range tb.Rows {
		mean := cell(t, row[7])
		pct := cell(t, row[8])
		if mean < prevMean {
			t.Fatalf("mean storage decreased with larger c: %f after %f", mean, prevMean)
		}
		if pct < prevPct || pct > 100.0001 {
			t.Fatalf("%% of full invalid: %f after %f", pct, prevPct)
		}
		prevMean, prevPct = mean, pct
	}
	lastPct := cell(t, tb.Rows[len(tb.Rows)-1][8])
	if lastPct < 99.9 {
		t.Fatalf("c=s storage should be 100%% of full, got %f", lastPct)
	}
}

func TestFig6TrafficShape(t *testing.T) {
	tables := Fig6(tinyCfg())
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want lambda=1 and lambda=4", len(tables))
	}
	for _, tb := range tables {
		if got := cell(t, tb.Rows[0][5]); got <= 0 {
			t.Fatalf("%s: partial-result mean bytes = %f", tb.Title, got)
		}
	}
	// lambda=4 resolves more profiles per user: fewer partial-result
	// messages (paper: 228 vs 70).
	msgs1 := cell(t, tables[0].Rows[3][5])
	msgs4 := cell(t, tables[1].Rows[3][5])
	if msgs4 > msgs1 {
		t.Fatalf("lambda=4 sends more partial-result messages (%f) than lambda=1 (%f)", msgs4, msgs1)
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2(tinyCfg())[0]
	prevAvg := 0.0
	for _, row := range tb.Rows {
		c := cell(t, row[0])
		pct := cell(t, row[1])
		avg := cell(t, row[2])
		max := cell(t, row[3])
		if pct <= 0 || pct > 100 {
			t.Fatalf("c=%v: %% users = %f out of range", c, pct)
		}
		if avg > max {
			t.Fatalf("c=%v: avg %f > max %f", c, avg, max)
		}
		if max > c {
			t.Fatalf("c=%v: max to update %f exceeds storage", c, max)
		}
		if avg < prevAvg {
			t.Fatalf("average profiles to update decreased with larger c")
		}
		prevAvg = avg
	}
}

func TestFig7aAURShape(t *testing.T) {
	tb := Fig7a(tinyCfg())[0]
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	for c := 1; c < len(tb.Header); c++ {
		f, l := cell(t, first[c]), cell(t, last[c])
		if f > 0.05 {
			t.Fatalf("%s: AUR starts at %f, want ~0 right after changes", tb.Header[c], f)
		}
		if l < 0.5 {
			t.Fatalf("%s: final AUR %f, want substantial refresh", tb.Header[c], l)
		}
	}
}

func TestFig7bAURShape(t *testing.T) {
	tb := Fig7b(tinyCfg())[0]
	last := tb.Rows[len(tb.Rows)-1]
	l1, l4 := cell(t, last[1]), cell(t, last[2])
	if l1 < 0.4 {
		t.Fatalf("lambda=1 final AUR = %f, want substantial refresh", l1)
	}
	// Paper: small stores are easier to keep fresh.
	if l4 > l1+0.05 {
		t.Fatalf("lambda=4 AUR (%f) should not exceed lambda=1 (%f)", l4, l1)
	}
}

func TestFig8ReachShape(t *testing.T) {
	tb := Fig8(tinyCfg())[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
	mean1 := cell(t, tb.Rows[0][5])
	mean4 := cell(t, tb.Rows[1][5])
	if mean1 <= 0 || mean4 <= 0 {
		t.Fatal("queries reached nobody")
	}
	// Paper: lambda=1 reaches several times more users than lambda=4.
	if mean1 < mean4 {
		t.Fatalf("lambda=1 mean reach (%f) below lambda=4 (%f)", mean1, mean4)
	}
}

func TestFig9EagerRefreshShape(t *testing.T) {
	tb := Fig9(tinyCfg())[0]
	if len(tb.Rows) < 3 {
		t.Fatalf("too few sampled points: %d", len(tb.Rows))
	}
	prev := -1.0
	for _, row := range tb.Rows {
		v := cell(t, row[1])
		if v < prev-0.1 { // allow small dips as the reached set grows
			t.Fatalf("AUR fell sharply: %f after %f", v, prev)
		}
		prev = v
	}
	firstAUR := cell(t, tb.Rows[0][1])
	lastAUR := cell(t, tb.Rows[len(tb.Rows)-1][1])
	if lastAUR < firstAUR {
		t.Fatalf("AUR did not improve over consecutive queries: %f -> %f", firstAUR, lastAUR)
	}
}

func TestFig10DiscoveryShape(t *testing.T) {
	tb := Fig10(tinyCfg())[0]
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	for c := 1; c <= 2; c++ {
		f, l := cell(t, first[c]), cell(t, last[c])
		if l < f {
			t.Fatalf("%s: discovery ratio fell from %f to %f", tb.Header[c], f, l)
		}
		if l <= 0 {
			t.Fatalf("%s: nobody completed their new personal network", tb.Header[c])
		}
	}
}

func TestFig11ChurnShape(t *testing.T) {
	tb := Fig11a(tinyCfg())[0]
	last := tb.Rows[len(tb.Rows)-1]
	p0 := cell(t, last[1])
	p90 := cell(t, last[len(last)-1])
	if p0 < 0.99 {
		t.Fatalf("p=0%% final recall = %f, want ~1", p0)
	}
	if p90 > p0 {
		t.Fatalf("90%% departures should not beat 0%%: %f vs %f", p90, p0)
	}
	// Intermediate departure levels stay reasonably effective (paper: 50%
	// departures cost only ~10%).
	p50 := cell(t, last[4])
	if p50 < 0.6 {
		t.Fatalf("p=50%% final recall = %f, want >= 0.6", p50)
	}
}

func TestFig11cShape(t *testing.T) {
	cfg := tinyCfg()
	cfg.Queries = 30
	tb := Fig11c(cfg)[0]
	if len(tb.Rows) != 9 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
	lo1 := cell(t, tb.Rows[0][1])
	hi1 := cell(t, tb.Rows[len(tb.Rows)-1][1])
	if hi1 < lo1 {
		t.Fatalf("incomplete-query %% should grow with departures: %f -> %f", lo1, hi1)
	}
	if hi1 <= 0 {
		t.Fatal("90% departures should leave some queries incomplete")
	}
}

func TestTheoryShape(t *testing.T) {
	tables := Theory(tinyCfg())
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	t1 := tables[0]
	// R(alpha) at X=1 is minimal at alpha=0.5 (row index 3).
	min := cell(t, t1.Rows[3][1])
	for i, row := range t1.Rows {
		if v := cell(t, row[1]); v < min-1e-9 {
			t.Fatalf("R(alpha) row %d = %f below R(0.5) = %f", i, v, min)
		}
	}
	// Measured cycles: alpha=0.5 completes no slower than the extremes.
	m0, m05, m1 := cell(t, t1.Rows[0][4]), cell(t, t1.Rows[3][4]), cell(t, t1.Rows[6][4])
	if m05 > m0+1e-9 || m05 > m1+1e-9 {
		t.Fatalf("measured: alpha=0.5 (%f) slower than extremes (%f, %f)", m05, m0, m1)
	}
}

func TestBandwidthShape(t *testing.T) {
	tb := Bandwidth(tinyCfg())[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
	lazy := cell(t, tb.Rows[0][1])
	burst := cell(t, tb.Rows[1][1])
	if lazy <= 0 || burst <= 0 {
		t.Fatalf("bandwidth figures not positive: lazy=%f burst=%f", lazy, burst)
	}
	// The paper's qualitative claim: the eager burst (per query, including
	// the piggybacked maintenance) is larger than the per-user lazy
	// background.
	if burst < lazy {
		t.Fatalf("query burst (%f Kbps) below lazy background (%f Kbps)", burst, lazy)
	}
}

func TestTablesRender(t *testing.T) {
	// Every experiment's output must render without error.
	cfg := tinyCfg()
	cfg.Queries = 20
	cfg.Cycles = 6
	for _, r := range []Runner{mustLookup(t, "table1"), mustLookup(t, "fig5"), mustLookup(t, "table2")} {
		for _, tb := range r.Run(cfg) {
			var buf bytes.Buffer
			if err := tb.Fprint(&buf); err != nil {
				t.Fatalf("%s: Fprint: %v", r.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s: empty output", r.Name)
			}
			buf.Reset()
			if err := tb.CSV(&buf); err != nil {
				t.Fatalf("%s: CSV: %v", r.Name, err)
			}
		}
	}
}

func mustLookup(t *testing.T, name string) Runner {
	t.Helper()
	r, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %s not registered", name)
	}
	return r
}

func TestLocalOnlyShape(t *testing.T) {
	tb := LocalOnly(tinyCfg())[0]
	if len(tb.Rows) < 3 {
		t.Fatalf("too few storage points: %d", len(tb.Rows))
	}
	prev := -1.0
	for _, row := range tb.Rows {
		r := cell(t, row[1])
		if r < prev-0.02 { // recall must grow with storage (small noise ok)
			t.Fatalf("local-only recall fell from %f to %f as c grew", prev, r)
		}
		prev = r
	}
	first := cell(t, tb.Rows[0][1])
	last := cell(t, tb.Rows[len(tb.Rows)-1][1])
	if last-first < 0.2 {
		t.Fatalf("storage barely affects local-only recall: %f -> %f", first, last)
	}
}

func TestExpansionShape(t *testing.T) {
	tb := Expansion(tinyCfg())[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
	bare := cell(t, tb.Rows[0][1])
	expanded := cell(t, tb.Rows[1][1])
	if expanded < bare {
		t.Fatalf("expansion hurt recall: %f -> %f", bare, expanded)
	}
	if expanded-bare < 0.02 {
		t.Fatalf("expansion shows no benefit: %f -> %f", bare, expanded)
	}
}

func TestAblationsShape(t *testing.T) {
	tb := Ablations(tinyCfg())[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
	// 3-step exchange must not cost more than naive full shipping.
	with := cell(t, tb.Rows[0][1])
	without := cell(t, tb.Rows[0][2])
	if with > without {
		t.Fatalf("3-step exchange (%f B) costs more than naive (%f B)", with, without)
	}
	// Incremental NRA must scan no more entries than recomputation.
	scanned := cell(t, tb.Rows[2][1])
	rescan := cell(t, tb.Rows[2][2])
	if scanned > rescan {
		t.Fatalf("incremental NRA scanned %f entries, recompute %f", scanned, rescan)
	}
}

func TestScaledBloomBits(t *testing.T) {
	paper := Config{MeanItems: 249}
	if got := paper.ScaledBloomBits(); got != 20*1024 {
		t.Fatalf("paper-scale bloom bits = %d, want 20Kbit", got)
	}
	small := Config{MeanItems: 5}
	if got := small.ScaledBloomBits(); got < 1024 || got%64 != 0 {
		t.Fatalf("small-scale bloom bits = %d invalid", got)
	}
}

func TestScaledClassAndDigestCap(t *testing.T) {
	paper := Config{S: 1000}
	if paper.ScaledClass(10) != 10 || paper.ScaledClass(1000) != 1000 {
		t.Fatal("paper-scale classes must be identity")
	}
	if paper.DigestCap() != 50 {
		t.Fatalf("paper-scale digest cap = %d, want 50", paper.DigestCap())
	}
	small := Config{S: 50}
	if got := small.ScaledClass(1000); got != 50 {
		t.Fatalf("scaled top class = %d, want 50", got)
	}
	if got := small.ScaledClass(10); got != 1 {
		t.Fatalf("scaled bottom class = %d, want 1", got)
	}
	if cap := small.DigestCap(); cap < 2 || cap > 5 {
		t.Fatalf("scaled digest cap = %d, want a small positive bound", cap)
	}
}

func TestLatencyShape(t *testing.T) {
	tb := Latency(tinyCfg())[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("latency table has %d rows, want 5 models", len(tb.Rows))
	}
	if tb.Rows[0][0] != "sync" {
		t.Fatalf("first row is %q, want the synchronous baseline", tb.Rows[0][0])
	}
	for _, row := range tb.Rows {
		p50, p99 := cell(t, row[4]), cell(t, row[6])
		if p99 < p50 {
			t.Fatalf("%s: time-to-full-recall p99 %f below p50 %f", row[0], p99, p50)
		}
		if done := cell(t, row[7]); done <= 0 {
			t.Fatalf("%s: no query completed", row[0])
		}
	}
	// Delay can only push the full-recall tail outward relative to the
	// synchronous rounds (same gossip schedule, later arrivals).
	syncP99 := cell(t, tb.Rows[0][6])
	for _, row := range tb.Rows[1:] {
		if cell(t, row[6]) < syncP99 {
			t.Fatalf("%s: full-recall p99 %f below the synchronous %f", row[0], cell(t, row[6]), syncP99)
		}
	}
}

func TestTimelineShape(t *testing.T) {
	tb := Timeline(tinyCfg())[0]
	if len(tb.Rows) < 3 {
		t.Fatalf("too few time marks: %d", len(tb.Rows))
	}
	prevRecall := -1.0
	for _, row := range tb.Rows {
		r := cell(t, row[1])
		if r < prevRecall-0.05 {
			t.Fatalf("recall fell sharply over time: %f after %f", r, prevRecall)
		}
		prevRecall = r
	}
	last := tb.Rows[len(tb.Rows)-1]
	if cell(t, last[1]) < 0.95 {
		t.Fatalf("final recall = %s, want near 1 within two simulated minutes", last[1])
	}
	if cell(t, last[2]) < 95 {
		t.Fatalf("only %s%% of queries done within two simulated minutes", last[2])
	}
}

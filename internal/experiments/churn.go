package experiments

import (
	"fmt"

	"p3q/internal/metrics"
	"p3q/internal/topk"
)

// fig11Departures are the departure fractions swept by Figure 11.
var fig11Departures = []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9}

// Fig11a reproduces Figure 11(a): the evolution of average recall over
// eager cycles when a fraction p of users departs simultaneously before the
// queries are issued, in the lambda=1 scenario. The paper's observations to
// reproduce: recall improves slower as p grows, yet even massive departures
// leave most relevant items retrievable within 10 cycles.
func Fig11a(cfg Config) []*metrics.Table {
	return []*metrics.Table{churnRecall(cfg, 1)}
}

// Fig11b reproduces Figure 11(b): the same in the lambda=4 scenario, where
// larger stores mean more replicas and hence better resilience.
func Fig11b(cfg Config) []*metrics.Table {
	return []*metrics.Table{churnRecall(cfg, 4)}
}

func churnRecall(cfg Config, lambda float64) *metrics.Table {
	cycles := cfg.Cycles / 2
	if cycles < 10 {
		cycles = 10
	}
	header := []string{"cycle"}
	for _, p := range fig11Departures {
		header = append(header, fmt.Sprintf("p=%.0f%%", p*100))
	}
	t := metrics.NewTable(
		fmt.Sprintf("Figure 11 — average recall under departures (lambda=%g)", lambda), header...)

	curves := make([][]float64, len(fig11Departures))
	for pi, p := range fig11Departures {
		w := NewWorld(cfg)
		e := w.SeededEngine(w.HeteroConfig(lambda))
		e.Kill(p)
		// The baseline stays the full-information one: the querier wants
		// the items her whole personal network would have provided.
		refs := make([][]topk.Entry, 0, len(w.Queries))
		var runs []int
		for _, q := range w.Queries {
			qr := e.IssueQuery(q)
			if qr == nil {
				continue // departed querier
			}
			runs = append(runs, len(refs))
			refs = append(refs, w.Central.TopK(q))
		}
		all := e.Queries()
		avg := func() float64 {
			vals := make([]float64, 0, len(all))
			for i, qr := range all {
				vals = append(vals, topk.Recall(qr.Results(), refs[runs[i]]))
			}
			return metrics.Mean(vals)
		}
		var curve []float64
		curve = append(curve, avg())
		for c := 0; c < cycles; c++ {
			e.EagerCycle()
			curve = append(curve, avg())
		}
		curves[pi] = curve
	}
	for cyc := 0; cyc <= cycles; cyc++ {
		row := []string{cycleLabel(cyc)}
		for pi := range fig11Departures {
			row = append(row, metrics.F(curves[pi][cyc], 3))
		}
		t.Add(row...)
	}
	return t
}

// Fig11c reproduces Figure 11(c): the percentage of queries that cannot
// reach recall 1 no matter how long the querier waits, because some
// personal-network profiles are no longer available anywhere among the
// online nodes. The paper's observation to reproduce: the fraction grows
// with the departure percentage and is much smaller for lambda=4 (more
// replicas; < 5% even at 50% departures at paper scale).
func Fig11c(cfg Config) []*metrics.Table {
	departures := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	t := metrics.NewTable("Figure 11c — % of queries unable to reach recall 1",
		"departure %", "l=1", "l=4")
	cycles := cfg.Cycles * 3

	results := make(map[float64][2]float64)
	for li, lambda := range []float64{1, 4} {
		for _, p := range departures {
			w := NewWorld(cfg)
			e := w.SeededEngine(w.HeteroConfig(lambda))
			e.Kill(p)
			issued := 0
			var refs [][]topk.Entry
			for _, q := range w.Queries {
				qr := e.IssueQuery(q)
				if qr == nil {
					continue
				}
				issued++
				refs = append(refs, w.Central.TopK(q))
			}
			e.RunEager(cycles)
			incomplete := 0
			for i, qr := range e.Queries() {
				if topk.Recall(qr.Results(), refs[i]) < 1 {
					incomplete++
				}
			}
			pct := 0.0
			if issued > 0 {
				pct = 100 * float64(incomplete) / float64(issued)
			}
			r := results[p]
			r[li] = pct
			results[p] = r
		}
	}
	for _, p := range departures {
		r := results[p]
		t.Add(fmt.Sprintf("%.0f", p*100), metrics.F(r[0], 1), metrics.F(r[1], 1))
	}
	return []*metrics.Table{t}
}

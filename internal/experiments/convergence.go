package experiments

import (
	"fmt"

	"p3q/internal/core"
	"p3q/internal/metrics"
	"p3q/internal/tagging"
)

// Fig2 reproduces Figure 2: the convergence speed of personal networks in
// lazy mode. For every uniform storage scenario c, nodes start with empty
// personal networks and bootstrap random views only; the average success
// ratio against the offline-computed ideal networks is sampled as lazy
// cycles accumulate. The paper's observations to reproduce: more stored
// profiles converge faster, and even c=10 identifies most neighbours
// eventually.
func Fig2(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	cValues := cfg.UniformCValues()
	cycles := cfg.Cycles * 5 // Figure 2 runs to 500 cycles at paper scale
	step := cycles / 20
	if step < 1 {
		step = 1
	}

	header := []string{"cycle"}
	for _, c := range cValues {
		header = append(header, fmt.Sprintf("c=%d", c))
	}
	t := metrics.NewTable("Figure 2 — average success ratio vs lazy cycles", header...)

	curves := make([][]float64, len(cValues))
	var sampledCycles []int
	for ci, c := range cValues {
		e := core.New(w.DS, w.CoreConfig(c))
		e.Bootstrap()
		var curve []float64
		record := func() { curve = append(curve, avgSuccessRatio(e, w)) }
		record()
		for cyc := 1; cyc <= cycles; cyc++ {
			e.LazyCycle()
			if cyc%step == 0 {
				record()
			}
		}
		curves[ci] = curve
		if ci == 0 {
			sampledCycles = append(sampledCycles, 0)
			for cyc := step; cyc <= cycles; cyc += step {
				sampledCycles = append(sampledCycles, cyc)
			}
		}
	}
	for i, cyc := range sampledCycles {
		row := []string{cycleLabel(cyc)}
		for ci := range cValues {
			row = append(row, metrics.F(curves[ci][i], 3))
		}
		t.Add(row...)
	}
	return []*metrics.Table{t}
}

// avgSuccessRatio measures §3.2.1's success ratio averaged over all users.
func avgSuccessRatio(e *core.Engine, w *World) float64 {
	vals := make([]float64, 0, e.Users())
	for u := 0; u < e.Users(); u++ {
		scores := make(map[tagging.UserID]int)
		for _, entry := range e.Node(tagging.UserID(u)).PersonalNetwork().Ranking() {
			scores[entry.ID] = entry.Score
		}
		vals = append(vals, metrics.SuccessRatio(scores, w.Ideal[u]))
	}
	return metrics.Mean(vals)
}

package experiments

import (
	"fmt"
	"time"

	"p3q/internal/core"
	"p3q/internal/metrics"
	"p3q/internal/topk"
)

// Timeline reproduces the §3.5 deployment narrative in simulated wall-clock
// time: the lazy mode ticks every minute, the eager mode every 5 seconds,
// and the paper claims "the query can be accurately answered within 50
// seconds" in the lambda=1 scenario. The table reports average recall and
// the fraction of completed queries at 5-second marks after all queries are
// issued simultaneously.
func Timeline(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	e := w.SeededEngine(w.HeteroConfig(1))
	clock := core.NewClock(e, time.Minute, 5*time.Second)

	var refs [][]topk.Entry
	for _, q := range w.Queries {
		if qr := e.IssueQuery(q); qr != nil {
			refs = append(refs, w.Central.TopK(q))
		}
	}
	runs := e.Queries()

	t := metrics.NewTable(
		"Section 3.5 — query timeline (lazy 60s / eager 5s, lambda=1)",
		"seconds", "avg recall", "% queries done")
	record := func() {
		var recall []float64
		done := 0
		for i, qr := range runs {
			recall = append(recall, topk.Recall(qr.Results(), refs[i]))
			if qr.Done() {
				done++
			}
		}
		t.Add(fmt.Sprintf("%.0f", clock.Now().Seconds()),
			metrics.F(metrics.Mean(recall), 3),
			metrics.F(100*float64(done)/float64(len(runs)), 1))
	}
	record()
	for i := 0; i < 24; i++ { // two simulated minutes in 5s steps
		clock.Advance(5 * time.Second)
		record()
		if e.AllQueriesDone() {
			break
		}
	}
	return []*metrics.Table{t}
}

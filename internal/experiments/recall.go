package experiments

import (
	"fmt"

	"p3q/internal/metrics"
)

// fig3Alphas are the split parameters swept by Figure 3.
var fig3Alphas = []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1}

// Fig3 reproduces Figure 3: the evolution of average recall over eager
// cycles for different values of the split parameter alpha, with c=10.
// The paper's observations to reproduce: alpha=0.5 converges fastest, the
// closer alpha is to 0.5 the faster, and the extremes (0: chain routing;
// 1: querier asks neighbours one by one) are slowest — confirming
// Theorem 2.2 empirically.
func Fig3(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	cycles := cfg.Cycles

	header := []string{"cycle"}
	for _, a := range fig3Alphas {
		header = append(header, fmt.Sprintf("a=%.1f", a))
	}
	t := metrics.NewTable("Figure 3 — average recall vs cycles, alpha sweep (c=10)", header...)

	curves := make([][]float64, len(fig3Alphas))
	for ai, alpha := range fig3Alphas {
		cc := w.CoreConfig(10)
		cc.Alpha = alpha
		curves[ai] = w.RecallCurve(w.SeededEngine(cc), cycles)
	}
	for cyc := 0; cyc <= cycles; cyc++ {
		row := []string{cycleLabel(cyc)}
		for ai := range fig3Alphas {
			row = append(row, metrics.F(curves[ai][cyc], 3))
		}
		t.Add(row...)
	}
	return []*metrics.Table{t}
}

// Fig4 reproduces Figure 4: the evolution of average recall over eager
// cycles for the uniform storage scenarios, with alpha=0.5. The paper's
// observations to reproduce: all scenarios reach recall 1 within ~10
// cycles, larger c starts higher and finishes sooner, and the first cycle
// brings the largest improvement.
func Fig4(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	cycles := cfg.Cycles / 2
	if cycles < 10 {
		cycles = 10
	}
	cValues := cfg.UniformCValues()

	header := []string{"cycle"}
	for _, c := range cValues {
		header = append(header, fmt.Sprintf("c=%d", c))
	}
	t := metrics.NewTable("Figure 4 — average recall vs cycles, c sweep (alpha=0.5)", header...)

	curves := make([][]float64, len(cValues))
	for ci, c := range cValues {
		curves[ci] = w.RecallCurve(w.SeededEngine(w.CoreConfig(c)), cycles)
	}
	for cyc := 0; cyc <= cycles; cyc++ {
		row := []string{cycleLabel(cyc)}
		for ci := range cValues {
			row = append(row, metrics.F(curves[ci][cyc], 3))
		}
		t.Add(row...)
	}
	return []*metrics.Table{t}
}

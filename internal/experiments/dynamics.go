package experiments

import (
	"fmt"

	"p3q/internal/core"
	"p3q/internal/metrics"
	"p3q/internal/similarity"
	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// Table2 reproduces Table 2: for every uniform storage scenario, how a
// day's worth of profile changes impacts the stored replicas — the fraction
// of users having at least one stored profile to update, and the average
// and maximum number of replicas to update. It only depends on the ideal
// networks and the change-set, exactly as in the paper.
func Table2(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	changes := trace.GenerateChanges(w.DS, scaledChangeParams(cfg))
	changed := make(map[tagging.UserID]bool, len(changes))
	for _, c := range changes {
		changed[c.User] = true
	}

	t := metrics.NewTable(
		fmt.Sprintf("Table 2 — influence of profile changes (%d of %d users changed)",
			len(changes), cfg.Users),
		"c", "% users having to update", "avg profiles to update", "max profiles to update")
	for _, c := range cfg.UniformCValues() {
		usersAffected, totalToUpdate, maxToUpdate := 0, 0, 0
		for u := 0; u < cfg.Users; u++ {
			limit := c
			if limit > len(w.Ideal[u]) {
				limit = len(w.Ideal[u])
			}
			n := 0
			for _, nb := range w.Ideal[u][:limit] {
				if changed[nb.ID] {
					n++
				}
			}
			if n > 0 {
				usersAffected++
				totalToUpdate += n
				if n > maxToUpdate {
					maxToUpdate = n
				}
			}
		}
		avg := 0.0
		if usersAffected > 0 {
			avg = float64(totalToUpdate) / float64(usersAffected)
		}
		t.Add(metrics.I(c),
			metrics.F(100*float64(usersAffected)/float64(cfg.Users), 1),
			metrics.F(avg, 1), metrics.I(maxToUpdate))
	}
	return []*metrics.Table{t}
}

// Fig7a reproduces Figure 7(a): the average update rate of stored replicas
// over lazy cycles after a simultaneous profile change, for the uniform
// storage scenarios. The paper's observation to reproduce: small stores
// stay fresh (AUR near 1 within tens of cycles for c=10/20) while large
// stores lag.
func Fig7a(cfg Config) []*metrics.Table {
	cValues := cfg.UniformCValues()
	labels := make([]string, len(cValues))
	for i, c := range cValues {
		labels[i] = fmt.Sprintf("c=%d", c)
	}
	return []*metrics.Table{aurLazyCurves(cfg, "Figure 7a — AUR vs lazy cycles (uniform c)",
		labels, cValues, func(w *World, c int) core.Config { return w.CoreConfig(c) })}
}

// Fig7b reproduces Figure 7(b): the same curves for the heterogeneous
// scenarios; lambda=1 (mostly small stores) stays fresher than lambda=4.
func Fig7b(cfg Config) []*metrics.Table {
	return []*metrics.Table{aurLazyCurves(cfg, "Figure 7b — AUR vs lazy cycles (heterogeneous)",
		[]string{"l=1", "l=4"}, []int{1, 4},
		func(w *World, lambda int) core.Config { return w.HeteroConfig(float64(lambda)) })}
}

// aurLazyCurves runs the shared harness of Figure 7: seed converged
// networks, apply the change-set, run lazy cycles, sample the AUR. Each
// scenario gets a fresh world so all curves start from the same base state.
func aurLazyCurves(cfg Config, title string, labels []string, params []int,
	configFor func(w *World, param int) core.Config) *metrics.Table {

	cycles := cfg.Cycles * 2
	step := cycles / 10
	if step < 1 {
		step = 1
	}
	header := append([]string{"cycle"}, labels...)
	t := metrics.NewTable(title, header...)

	curves := make([][]float64, len(params))
	for pi, param := range params {
		pw := NewWorld(cfg)
		e := pw.SeededEngine(configFor(pw, param))
		target := changedVersions(pw.DS, trace.GenerateChanges(pw.DS, scaledChangeParams(cfg)))
		var curve []float64
		curve = append(curve, engineAUR(e, nil, target))
		for cyc := 1; cyc <= cycles; cyc++ {
			e.LazyCycle()
			if cyc%step == 0 {
				curve = append(curve, engineAUR(e, nil, target))
			}
		}
		curves[pi] = curve
	}
	for i := 0; i <= cycles/step; i++ {
		row := []string{cycleLabel(i * step)}
		for pi := range params {
			row = append(row, metrics.F(curves[pi][i], 3))
		}
		t.Add(row...)
	}
	return t
}

// Fig8 reproduces Figure 8: the number of users reached by each query in
// the heterogeneous scenarios. The paper's observation to reproduce:
// queries in lambda=1 reach several times more users than in lambda=4
// (256 vs 75 on average at paper scale) because small stores resolve fewer
// profiles per gossip.
func Fig8(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	t := metrics.NewTable("Figure 8 — users reached by a query",
		"lambda", "min", "median", "p90", "max", "mean")
	for _, lambda := range []float64{1, 4} {
		e := w.SeededEngine(w.HeteroConfig(lambda))
		for _, q := range w.Queries {
			e.IssueQuery(q)
		}
		e.RunEager(cfg.Cycles * 2)
		var reached []float64
		for _, qr := range e.Queries() {
			reached = append(reached, float64(qr.UsersReached()))
		}
		ps := percentiles(reached, 0, 0.5, 0.9, 1)
		t.Add(fmt.Sprintf("%g", lambda),
			metrics.F(ps[0], 0), metrics.F(ps[1], 0), metrics.F(ps[2], 0),
			metrics.F(ps[3], 0), metrics.F(metrics.Mean(reached), 1))
	}
	return []*metrics.Table{t}
}

// Fig9 reproduces Figure 9: the average update rate over the users reached
// by queries, as one user issues consecutive queries with no lazy cycle in
// between. The paper's observation to reproduce: the eager mode alone
// refreshes a significant share of the reached users' replicas, with
// diminishing returns as the reachable fresh versions are exhausted
// ("all the changes are not taken into account only relying on the eager
// mode").
func Fig9(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	e := w.SeededEngine(w.HeteroConfig(1))
	target := changedVersions(w.DS, trace.GenerateChanges(w.DS, scaledChangeParams(cfg)))

	numQueries := 50
	sample := map[int]bool{1: true, 2: true, 5: true, 10: true, 20: true, 50: true}
	t := metrics.NewTable("Figure 9 — AUR of query-reached users vs consecutive queries (lambda=1)",
		"queries", "AUR (reached users)", "cumulative users reached")

	reached := make(map[tagging.UserID]struct{})
	querier := tagging.UserID(0)
	for i := 1; i <= numQueries; i++ {
		q, ok := trace.QueryFor(w.DS, querier, cfg.Seed+uint64(1000+i))
		if !ok {
			break
		}
		qr := e.IssueQuery(q)
		if qr == nil {
			break
		}
		e.RunEager(cfg.Cycles * 2)
		for _, u := range reachedOf(qr) {
			reached[u] = struct{}{}
		}
		if sample[i] {
			ids := make([]tagging.UserID, 0, len(reached))
			for u := 0; u < e.Users(); u++ {
				if _, ok := reached[tagging.UserID(u)]; ok {
					ids = append(ids, tagging.UserID(u))
				}
			}
			t.Add(metrics.I(i), metrics.F(engineAUR(e, ids, target), 3), metrics.I(len(reached)))
		}
	}
	return []*metrics.Table{t}
}

// Fig10 reproduces Figure 10: after the change-set alters who the ideal
// neighbours are, the fraction of affected users that have discovered ALL
// their new neighbours through lazy gossip ("a strict metric": the ratio
// counts a user only when her network is completed). Both heterogeneous
// scenarios are reported.
func Fig10(cfg Config) []*metrics.Table {
	cycles := cfg.Cycles * 3
	step := cycles / 10
	if step < 1 {
		step = 1
	}
	t := metrics.NewTable("Figure 10 — % of users having found all new neighbours",
		"cycle", "l=1", "l=4")

	curves := make([][]float64, 2)
	for li, lambda := range []float64{1, 4} {
		pw := NewWorld(cfg)
		e := pw.SeededEngine(pw.HeteroConfig(lambda))
		oldIdeal := pw.Ideal
		trace.ApplyChanges(pw.DS, trace.GenerateChanges(pw.DS, scaledChangeParams(cfg)))
		newIdeal := similarity.IdealNetworks(pw.DS, cfg.S)

		// Users whose ideal personal network changed, and their new
		// neighbours.
		newNeighbours := make(map[tagging.UserID][]tagging.UserID)
		for u := 0; u < cfg.Users; u++ {
			old := make(map[tagging.UserID]bool, len(oldIdeal[u]))
			for _, nb := range oldIdeal[u] {
				old[nb.ID] = true
			}
			var added []tagging.UserID
			for _, nb := range newIdeal[u] {
				if !old[nb.ID] {
					added = append(added, nb.ID)
				}
			}
			if len(added) > 0 {
				newNeighbours[tagging.UserID(u)] = added
			}
		}
		measure := func() float64 {
			if len(newNeighbours) == 0 {
				return 100
			}
			done := 0
			//p3q:orderinvariant counts satisfied entries; a sum is commutative
			for u, added := range newNeighbours {
				all := true
				for _, nb := range added {
					if !e.Node(u).PersonalNetwork().Contains(nb) {
						all = false
						break
					}
				}
				if all {
					done++
				}
			}
			return 100 * float64(done) / float64(len(newNeighbours))
		}
		var curve []float64
		curve = append(curve, measure())
		for cyc := 1; cyc <= cycles; cyc++ {
			e.LazyCycle()
			if cyc%step == 0 {
				curve = append(curve, measure())
			}
		}
		curves[li] = curve
	}
	for i := 0; i <= cycles/step; i++ {
		t.Add(cycleLabel(i*step), metrics.F(curves[0][i], 1), metrics.F(curves[1][i], 1))
	}
	return []*metrics.Table{t}
}

// reachedOf exposes the reached-user set of a query run as a slice.
func reachedOf(qr *core.QueryRun) []tagging.UserID { return qr.Reached() }

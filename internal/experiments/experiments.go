// Package experiments regenerates every table and figure of the paper's
// evaluation (§3). Each experiment is a named Runner producing one or more
// printable tables whose rows correspond to the points of the paper's plot
// (or the cells of its table).
//
// Experiments default to a laptop scale (hundreds of users, s in the tens)
// that preserves the qualitative shapes of the paper's results — who wins,
// where curves saturate, how parameters order — while running in seconds.
// Every scale knob can be raised to the paper's values (10,000 users,
// s=1000) through Config.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"p3q/internal/baseline"
	"p3q/internal/bloom"
	"p3q/internal/core"
	"p3q/internal/metrics"
	"p3q/internal/randx"
	"p3q/internal/sim"
	"p3q/internal/similarity"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// Config scales an experiment run. The zero value is not useful; start from
// Default.
type Config struct {
	// Users is the population size (paper: 10,000).
	Users int
	// S is the personal network size (paper: 1000).
	S int
	// K is the top-k size (paper: 10).
	K int
	// MeanItems is the mean number of distinct items per user in the
	// generated trace (paper's crawl: 249).
	MeanItems float64
	// Queries caps the number of queries evaluated per scenario
	// (0 = one per user, as in the paper).
	Queries int
	// Cycles is the default number of protocol cycles for per-cycle
	// figures; individual experiments scale it to their paper counterpart.
	Cycles int
	// Workers is the engine worker count for the parallel planning phases
	// of both modes (0 = all cores). Every value produces identical
	// tables; Workers only changes how fast they are regenerated.
	Workers int
	// Latency models per-message delivery delay in the eager mode (nil =
	// the paper's synchronous rounds). Set through the p3qsim -latency
	// flag (sim.ParseLatency specs); the dedicated "latency" experiment
	// sweeps its own models regardless of this field.
	Latency sim.LatencyModel
	// Seed drives all randomness.
	Seed uint64
}

// Default returns the laptop-scale configuration used by the test suite
// and the quickstart instructions.
func Default() Config {
	return Config{
		Users:     400,
		S:         50,
		K:         10,
		MeanItems: 30,
		Queries:   150,
		Cycles:    20,
		Seed:      42,
	}
}

// ScaledClass maps a paper storage class (defined against s=1000) onto the
// configured s, preserving the class-to-network proportions: at s=1000 the
// classes are exactly the paper's {10, 20, 50, 100, 200, 500, 1000}; at
// s=50 they become {1, 1, 3, 5, 10, 25, 50}.
func (c Config) ScaledClass(class int) int {
	v := int(math.Round(float64(class) * float64(c.S) / 1000))
	if v < 1 {
		v = 1
	}
	if v > c.S {
		v = c.S
	}
	return v
}

// StorageClasses returns the heterogeneous storage classes of Table 1
// scaled to the configured s (deduplicated, for reporting).
func (c Config) StorageClasses() []int {
	out := make([]int, 0, len(randx.StorageClasses))
	seen := make(map[int]bool)
	for _, v := range randx.StorageClasses {
		v = c.ScaledClass(v)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// UniformCValues returns the uniform storage scenarios of §3.1.2 (c in
// {10, 20, 50, 100, 200, 500, 1000}) restricted to c <= s.
func (c Config) UniformCValues() []int {
	var out []int
	for _, v := range randx.StorageClasses {
		if v <= c.S {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = []int{c.S}
	}
	return out
}

// World bundles the dataset, its ideal networks, the centralized baseline
// and the query workload — everything experiments share.
type World struct {
	Cfg     Config
	DS      *trace.Dataset
	Ideal   [][]similarity.Neighbour
	Central *baseline.Centralized
	Queries []trace.Query
}

// NewWorld generates the workload for a configuration.
func NewWorld(cfg Config) *World {
	p := trace.DefaultGenParams(cfg.Users)
	p.MeanItems = cfg.MeanItems
	p.Seed = cfg.Seed
	ds := trace.Generate(p)
	ideal := similarity.IdealNetworks(ds, cfg.S)
	queries := trace.GenerateQueries(ds, cfg.Seed+1)
	if cfg.Queries > 0 && cfg.Queries < len(queries) {
		queries = queries[:cfg.Queries]
	}
	return &World{
		Cfg:     cfg,
		DS:      ds,
		Ideal:   ideal,
		Central: baseline.NewCentralizedWithNets(ds, ideal, cfg.K),
		Queries: queries,
	}
}

// ScaledBloomBits returns the paper's 20 Kbit digest geometry scaled to the
// configured mean profile size (the crawl's mean is 249 items/user): at
// paper scale it is exactly 20 Kbit; smaller traces get proportionally
// smaller digests so byte ratios between digests and profiles stay
// representative. The result is clamped to at least 1024 bits.
func (c Config) ScaledBloomBits() int {
	bits := int(float64(bloom.DefaultBits) * c.MeanItems / 249)
	if bits < 1024 {
		bits = 1024
	}
	return (bits + 63) / 64 * 64
}

// DigestCap returns the paper's 50-digest advertisement bound scaled to s.
// The cap is the mechanism behind Figure 7's "large stores stay stale"
// effect (a node with c=500 advertises only 50 random replicas per
// exchange); scaling it with s preserves the cap-to-store ratios at reduced
// scale. At s=1000 it is exactly the paper's 50.
func (c Config) DigestCap() int {
	v := int(math.Round(50 * float64(c.S) / 1000))
	if v < 2 {
		v = 2
	}
	return v
}

// CoreConfig builds a protocol configuration with uniform storage c. It is
// the single source of the engine parameters every harness derives from an
// experiments configuration — cmd/p3qsim's converge driver builds through
// it too, so checkpoints written by one harness restore in the other.
func (c Config) CoreConfig(storageC int) core.Config {
	cc := core.DefaultConfig()
	cc.S = c.S
	cc.C = storageC
	cc.K = c.K
	cc.Seed = c.Seed
	cc.MaxDigestsPerGossip = c.DigestCap()
	cc.BloomBits = c.ScaledBloomBits()
	cc.Workers = c.Workers
	cc.Latency = c.Latency
	return cc
}

// CoreConfig builds a protocol configuration with uniform storage c.
func (w *World) CoreConfig(c int) core.Config { return w.Cfg.CoreConfig(c) }

// HeteroConfig builds a protocol configuration with Poisson-distributed
// storage capacities (Table 1), scaled to s via ScaledClass.
func (w *World) HeteroConfig(lambda float64) core.Config {
	cc := core.DefaultConfig()
	cc.S = w.Cfg.S
	cc.K = w.Cfg.K
	cc.Seed = w.Cfg.Seed
	cc.MaxDigestsPerGossip = w.Cfg.DigestCap()
	cc.BloomBits = w.Cfg.ScaledBloomBits()
	cc.Workers = w.Cfg.Workers
	cc.Latency = w.Cfg.Latency
	rng := randx.NewSource(w.Cfg.Seed).Split(uint64(lambda * 1000))
	raw := rng.AssignStorage(w.Cfg.Users, lambda, randx.TailModeFor(lambda))
	cc.CAssign = make([]int, len(raw))
	for i, v := range raw {
		cc.CAssign[i] = w.Cfg.ScaledClass(v)
	}
	return cc
}

// SeededEngine builds an engine starting from converged (ideal) personal
// networks, the setup of the eager-mode experiments (§3.2.2 onwards).
func (w *World) SeededEngine(cc core.Config) *core.Engine {
	e := core.New(w.DS, cc)
	e.SeedIdealNetworks(w.Ideal)
	return e
}

// RecallCurve issues the world's queries on the engine and returns the
// average recall (against the centralized baseline) at the end of each
// eager cycle; index 0 is the purely local result of Algorithm 2 line 3.
func (w *World) RecallCurve(e *core.Engine, cycles int) []float64 {
	refs := make([][]topk.Entry, 0, len(w.Queries))
	runs := make([]*core.QueryRun, 0, len(w.Queries))
	for _, q := range w.Queries {
		qr := e.IssueQuery(q)
		if qr == nil {
			continue
		}
		runs = append(runs, qr)
		refs = append(refs, w.Central.TopK(q))
	}
	curve := make([]float64, 0, cycles+1)
	avg := func() float64 {
		vals := make([]float64, len(runs))
		for i, qr := range runs {
			vals[i] = topk.Recall(qr.Results(), refs[i])
		}
		return metrics.Mean(vals)
	}
	curve = append(curve, avg())
	for i := 0; i < cycles; i++ {
		e.EagerCycle()
		curve = append(curve, avg())
	}
	return curve
}

// Runner is a named experiment producing the paper's rows.
type Runner struct {
	Name  string // experiment id, e.g. "fig3"
	Paper string // what it reproduces
	Run   func(cfg Config) []*metrics.Table
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{"table1", "Table 1: distribution of c under Poisson lambda=1/4", Table1},
		{"fig2", "Figure 2: personal network convergence speed", Fig2},
		{"fig3", "Figure 3: recall vs cycles for alpha sweep (c=10)", Fig3},
		{"fig4", "Figure 4: recall vs cycles for c sweep (alpha=0.5)", Fig4},
		{"fig5", "Figure 5: per-user storage requirement", Fig5},
		{"fig6", "Figure 6: per-query bandwidth by category (lambda=1)", Fig6},
		{"table2", "Table 2: influence of profile changes", Table2},
		{"fig7a", "Figure 7a: AUR in lazy mode, uniform c", Fig7a},
		{"fig7b", "Figure 7b: AUR in lazy mode, lambda=1 vs lambda=4", Fig7b},
		{"fig8", "Figure 8: users reached per query", Fig8},
		{"fig9", "Figure 9: AUR of reached users in eager mode", Fig9},
		{"fig10", "Figure 10: new-neighbour discovery in lazy mode", Fig10},
		{"fig11a", "Figure 11a: recall under churn (lambda=1)", Fig11a},
		{"fig11b", "Figure 11b: recall under churn (lambda=4)", Fig11b},
		{"fig11c", "Figure 11c: queries unable to reach full recall", Fig11c},
		{"theory", "Theorems 2.1-2.4: R(alpha) and bounds", Theory},
		{"bandwidth", "Section 3.3.2: lazy/eager bandwidth summary", Bandwidth},
		{"timeline", "Section 3.5: query timeline in simulated wall-clock time", Timeline},
		{"latency", "Extension: asynchronous eager delivery — time-to-first-result and time-to-full-recall under per-message latency models", Latency},
		{"localonly", "Extension: local-only recall vs stored profiles (the §1 argument)", LocalOnly},
		{"expansion", "Extension: personalized query expansion (§4)", Expansion},
		{"ablations", "Extension: design-choice ablations (DESIGN.md §5)", Ablations},
	}
}

// Lookup finds a runner by name.
func Lookup(name string) (Runner, bool) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// percentiles returns the values at the given quantiles of a copy of xs.
func percentiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(qs))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}

// cycleLabel renders a cycle index.
func cycleLabel(c int) string { return fmt.Sprintf("%d", c) }

// changedVersions applies a change-set and returns each changed user's
// post-change profile version (the target replicas must reach to count as
// updated).
func changedVersions(ds *trace.Dataset, changes []trace.Change) map[tagging.UserID]int {
	target := make(map[tagging.UserID]int, len(changes))
	for _, c := range changes {
		c.Apply(ds)
		target[c.User] = ds.Profiles[c.User].Version()
	}
	return target
}

// engineAUR computes the average update rate over the given node IDs (all
// nodes when ids is nil), considering only users with at least one stored
// replica subject to change.
func engineAUR(e *core.Engine, ids []tagging.UserID, target map[tagging.UserID]int) float64 {
	if ids == nil {
		ids = make([]tagging.UserID, e.Users())
		for i := range ids {
			ids[i] = tagging.UserID(i)
		}
	}
	var vals []float64
	for _, u := range ids {
		var stored []metrics.Replica
		for _, entry := range e.Node(u).PersonalNetwork().StoredEntries() {
			stored = append(stored, metrics.Replica{Owner: entry.ID, Version: entry.Stored.Version()})
		}
		if r, ok := metrics.UpdateRate(stored, target); ok {
			vals = append(vals, r)
		}
	}
	return metrics.Mean(vals)
}

// scaledChangeParams mirrors the paper's simulated day (§3.4.1: 1540 of
// 10,000 users change, avg 8 new actions, max 268) at the configured scale.
func scaledChangeParams(cfg Config) trace.ChangeParams {
	p := trace.DefaultChangeParams()
	p.Seed = cfg.Seed + 77
	return p
}

package experiments

import (
	"fmt"
	"os"
	"time"

	"p3q/internal/core"
	"p3q/internal/hostclock"
	"p3q/internal/metrics"
	"p3q/internal/sim"
	"p3q/internal/topk"
)

// Latency is the asynchronous-delivery extension experiment: the same
// query burst processed under different per-message latency models, with
// per-query time-to-first-result and time-to-full-recall distributions
// measured on the engine's virtual clock (EagerPeriod = 5s, the paper's
// §3.5 deployment assumption).
//
// The synchronous row ("sync") is the paper's PeerSim round model: every
// delivery lands on a cycle boundary, so times quantize to multiples of
// 5s. The modelled rows let messages arrive mid-cycle — queriers merge
// partial results the moment they land — and heavy-tailed models (the
// lognormal row, the cross-zone geo row) push a fraction of deliveries
// past the cycle boundary, delaying branch hand-offs by a full period:
// the latency-vs-recall trade-off a deployed system lives with.
func Latency(cfg Config) []*metrics.Table {
	models := []struct {
		name string
		m    sim.LatencyModel
	}{
		{"sync", nil},
		{"fixed 50ms", sim.FixedLatency(50 * time.Millisecond)},
		{"uniform 0.1-2s", sim.UniformLatency{Min: 100 * time.Millisecond, Max: 2 * time.Second}},
		{"lognormal 1s σ=1", sim.LogNormalLatency{Median: time.Second, Sigma: 1.0}},
		{"geo 3z 50ms/2.5s", sim.NewGeoLatency(3, 50*time.Millisecond, 2500*time.Millisecond)},
	}

	w := NewWorld(cfg)
	// Converge-once-fork-many: one seeded engine is snapshotted and every
	// latency row forks from it instead of re-seeding. The forked state is
	// byte-for-byte the cold-built state (the checkpoint contract), so the
	// rows are unchanged; the savings note reports the wall clock spared.
	sw := hostclock.Start()
	base := w.SeededEngine(w.CoreConfig(10))
	snap, err := NewSharedSnapshot(base, sw.Elapsed())
	if err != nil {
		panic(fmt.Sprintf("experiments: latency warm-start snapshot failed: %v", err))
	}
	tTimes := metrics.NewTable(
		"Asynchronous eager delivery — per-query times (virtual clock, eager period 5s)",
		"model", "ttfr p50", "ttfr p90", "ttfr p99", "full p50", "full p90", "full p99", "done %", "avg recall", "avg cycles")
	for _, mc := range models {
		cc := w.CoreConfig(10)
		cc.Latency = mc.m
		e := snap.MustFork(cc)

		var refs [][]topk.Entry
		var runs []*core.QueryRun
		for _, q := range w.Queries {
			if qr := e.IssueQuery(q); qr != nil {
				runs = append(runs, qr)
				refs = append(refs, w.Central.TopK(q))
			}
		}
		e.RunEager(cfg.Cycles * 4)

		var ttfr, full, recall, cycles []float64
		done := 0
		for i, qr := range runs {
			recall = append(recall, topk.Recall(qr.Results(), refs[i]))
			cycles = append(cycles, float64(qr.Cycles()))
			if d, ok := qr.TimeToFirstResult(); ok {
				ttfr = append(ttfr, d.Seconds())
			}
			if d, ok := qr.TimeToFullRecall(); ok {
				full = append(full, d.Seconds())
				done++
			}
		}
		pf := percentiles(ttfr, 0.5, 0.9, 0.99)
		pd := percentiles(full, 0.5, 0.9, 0.99)
		tTimes.Add(mc.name,
			metrics.F(pf[0], 2), metrics.F(pf[1], 2), metrics.F(pf[2], 2),
			metrics.F(pd[0], 2), metrics.F(pd[1], 2), metrics.F(pd[2], 2),
			metrics.F(100*float64(done)/float64(len(runs)), 1),
			metrics.F(metrics.Mean(recall), 3),
			metrics.F(metrics.Mean(cycles), 1))
	}
	fmt.Fprintln(os.Stderr, snap.SavingsNote("latency"))
	return []*metrics.Table{tTimes}
}

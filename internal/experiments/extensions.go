package experiments

import (
	"fmt"
	"os"

	"p3q/internal/core"
	"p3q/internal/expansion"
	"p3q/internal/hostclock"
	"p3q/internal/metrics"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// LocalOnly quantifies the §1 storage argument: "several hundreds of
// profiles are needed to return reasonable results (in the sense of [1]) in
// a system of only 10,000 users" when queries are answered purely from
// locally stored profiles, with no gossip. The table reports the recall of
// local-only processing as a function of the number of stored profiles —
// the cost P3Q's collaborative eager mode avoids.
func LocalOnly(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	t := metrics.NewTable(
		"Extension (§1 argument) — recall of local-only processing vs stored profiles",
		"stored profiles c", "avg recall (no gossip)", "% of full storage")

	cValues := append([]int{1, 2, 5}, cfg.UniformCValues()...)
	seen := make(map[int]bool)
	for _, c := range cValues {
		if c > cfg.S || seen[c] {
			continue
		}
		seen[c] = true
		e := w.SeededEngine(w.CoreConfig(c))
		var recalls []float64
		var stored, full float64
		for _, q := range w.Queries {
			qr := e.IssueQuery(q)
			if qr == nil {
				continue
			}
			// Cycle-0 results = local processing only (Algorithm 2 line 3).
			recalls = append(recalls, topk.Recall(qr.Results(), w.Central.TopK(q)))
		}
		for u := 0; u < cfg.Users; u++ {
			node := e.Node(tagUserID(u))
			for i, nb := range w.Ideal[u] {
				l := float64(w.DS.Profiles[nb.ID].Len())
				full += l
				if i < node.PersonalNetwork().C() {
					stored += l
				}
			}
		}
		pct := 0.0
		if full > 0 {
			pct = 100 * stored / full
		}
		t.Add(metrics.I(c), metrics.F(metrics.Mean(recalls), 3), metrics.F(pct, 1))
	}
	return []*metrics.Table{t}
}

// Expansion evaluates the personalized query expansion extension (§1/§4 of
// the paper): each querier issues only the first tag of her query, with and
// without expansion from her locally known profiles, and both are scored
// against the full-query centralized reference.
func Expansion(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	// Converge once, fork per variant: both variants start from the same
	// snapshotted seeded engine instead of re-seeding (the forked state is
	// byte-for-byte the cold-built state, so the table is unchanged).
	sw := hostclock.Start()
	base := w.SeededEngine(w.CoreConfig(10))
	snap, err := NewSharedSnapshot(base, sw.Elapsed())
	if err != nil {
		panic(fmt.Sprintf("experiments: expansion warm-start snapshot failed: %v", err))
	}
	t := metrics.NewTable(
		"Extension (§4) — personalized query expansion on truncated queries",
		"variant", "avg recall vs full-query reference")

	type variant struct {
		name   string
		expand bool
	}
	for _, v := range []variant{{"bare single-tag query", false}, {"expanded (+3 suggested tags)", true}} {
		// A forked engine per variant keeps the query registries separate.
		ve := snap.MustFork(w.CoreConfig(10))
		type pending struct {
			qr   *core.QueryRun
			want []topk.Entry
		}
		var runs []pending
		for _, q := range w.Queries {
			if len(q.Tags) < 2 {
				continue // nothing to truncate
			}
			issued := trace.Query{Querier: q.Querier, Tags: q.Tags[:1]}
			if v.expand {
				x := expansion.New(ve.Node(q.Querier).KnownProfiles())
				issued.Tags = x.Expand(issued.Tags, 3)
			}
			if qr := ve.IssueQuery(issued); qr != nil {
				runs = append(runs, pending{qr: qr, want: w.Central.TopK(q)})
			}
		}
		ve.RunEager(cfg.Cycles * 3)
		var recalls []float64
		for _, p := range runs {
			recalls = append(recalls, topk.Recall(p.qr.Results(), p.want))
		}
		t.Add(v.name, metrics.F(metrics.Mean(recalls), 3))
	}
	fmt.Fprintln(os.Stderr, snap.SavingsNote("expansion"))
	return []*metrics.Table{t}
}

// Ablations prints the design-choice ablations of DESIGN.md §5 as a table
// (the bench targets report the same numbers under go test -bench).
func Ablations(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	t := metrics.NewTable("Extension — design ablations (DESIGN.md §5)",
		"design choice", "with (paper)", "without (naive)", "unit")

	// 3-step exchange vs shipping advertised profiles in full.
	e := w.SeededEngine(w.CoreConfig(10))
	lazyCycles := 5
	e.RunLazy(lazyCycles)
	actual := float64(e.Network().Total().TotalBytes()) / float64(e.Users()) / float64(lazyCycles)
	naive := float64(e.NaiveExchangeBytes()) / float64(e.Users()) / float64(lazyCycles)
	t.Add("3-step profile exchange (Alg. 1)",
		metrics.F(actual, 0), metrics.F(naive, 0), "bytes/user/cycle")

	// Eager destination bias vs uniform random destinations.
	cyclesFor := func(disable bool) float64 {
		cc := w.CoreConfig(10)
		cc.DisableEagerBias = disable
		ve := w.SeededEngine(cc)
		for _, q := range w.Queries {
			ve.IssueQuery(q)
		}
		ve.RunEager(cfg.Cycles * 3)
		var cs []float64
		for _, qr := range ve.Queries() {
			cs = append(cs, float64(qr.Cycles()))
		}
		return metrics.Mean(cs)
	}
	t.Add("eager bias to personal network (Alg. 3)",
		metrics.F(cyclesFor(false), 1), metrics.F(cyclesFor(true), 1), "cycles/query")

	// Incremental NRA vs per-cycle recomputation: entries scanned.
	lists := sampleLists(w, 20)
	n := topk.NewNRA(cfg.K)
	for _, l := range lists {
		n.Run([][]topk.Entry{l})
	}
	rescan := 0
	for i := range lists {
		for j := 0; j <= i; j++ {
			rescan += len(lists[j])
		}
	}
	t.Add("incremental NRA (Alg. 4)",
		metrics.I(n.ScannedEntries()), metrics.I(rescan), "entries scanned")
	return []*metrics.Table{t}
}

// sampleLists builds a stream of realistic partial result lists.
func sampleLists(w *World, n int) [][]topk.Entry {
	var lists [][]topk.Entry
	for i := 0; i < n && i < len(w.Queries); i++ {
		q := w.Queries[i]
		entries := w.Central.TopKOverNetwork(trace.Query{Querier: q.Querier, Tags: q.Tags}, nil)
		if len(entries) > 0 {
			lists = append(lists, entries)
		}
	}
	return lists
}

func tagUserID(u int) tagging.UserID { return tagging.UserID(u) }

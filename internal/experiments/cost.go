package experiments

import (
	"fmt"

	"p3q/internal/baseline"
	"p3q/internal/metrics"
	"p3q/internal/sim"
	"p3q/internal/tagging"
)

// Fig5 reproduces Figure 5: the per-user storage requirement (total length
// of the stored profiles, in tagging actions) for every uniform storage
// scenario. The paper plots users in ascending order of requirement; this
// table reports the distribution percentiles plus the headline comparison
// of §3.3.1: storing 10 profiles costs a small fraction of storing the
// whole personal network (6.8% in the paper's trace, 73.6% for c=500).
func Fig5(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	full := baseline.NewFullReplication(w.DS, w.Ideal)
	cValues := cfg.UniformCValues()

	t := metrics.NewTable(
		"Figure 5 — storage requirement per user (profile actions stored)",
		"c", "min", "p25", "median", "p75", "p90", "max", "mean", "% of full")

	var fullTotal float64
	perC := make(map[int][]float64)
	for _, c := range cValues {
		vals := make([]float64, w.Cfg.Users)
		for u := 0; u < w.Cfg.Users; u++ {
			vals[u] = float64(full.StorageActionsTopC(tagging.UserID(u), c))
		}
		perC[c] = vals
	}
	for u := 0; u < w.Cfg.Users; u++ {
		fullTotal += float64(full.StorageActions(tagging.UserID(u)))
	}
	for _, c := range cValues {
		vals := perC[c]
		ps := percentiles(vals, 0, 0.25, 0.5, 0.75, 0.90, 1)
		total := 0.0
		for _, v := range vals {
			total += v
		}
		pctOfFull := 0.0
		if fullTotal > 0 {
			pctOfFull = 100 * total / fullTotal
		}
		t.Add(metrics.I(c),
			metrics.F(ps[0], 0), metrics.F(ps[1], 0), metrics.F(ps[2], 0),
			metrics.F(ps[3], 0), metrics.F(ps[4], 0), metrics.F(ps[5], 0),
			metrics.F(total/float64(len(vals)), 1), metrics.F(pctOfFull, 1))
	}
	return []*metrics.Table{t}
}

// Fig6 reproduces Figure 6 and the query-traffic analysis of §3.3.2: the
// per-query bandwidth split into partial result lists, returned remaining
// lists and forwarded remaining lists, for the two heterogeneous scenarios.
// The paper's observations to reproduce: partial result lists dominate, and
// the lambda=4 scenario is cheaper than lambda=1 (573 KB vs 360 KB per
// query at paper scale) with far fewer partial-result messages (228 vs 70)
// because large stores resolve several profiles through a single user.
func Fig6(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	var tables []*metrics.Table
	for _, lambda := range []float64{1, 4} {
		e := w.SeededEngine(w.HeteroConfig(lambda))
		var fwd, ret, res, msgs []float64
		for _, q := range w.Queries {
			e.IssueQuery(q)
		}
		e.RunEager(cfg.Cycles * 2)
		for _, qr := range e.Queries() {
			b := qr.Bytes()
			fwd = append(fwd, float64(b.Forwarded))
			ret = append(ret, float64(b.Returned))
			res = append(res, float64(b.PartialResults))
			msgs = append(msgs, float64(qr.PartialResultMessages()))
		}
		t := metrics.NewTable(
			fmt.Sprintf("Figure 6 — per-query traffic by category (lambda=%g, bytes)", lambda),
			"category", "min", "median", "p90", "max", "mean")
		addRow := func(name string, vals []float64) {
			ps := percentiles(vals, 0, 0.5, 0.9, 1)
			t.Add(name, metrics.F(ps[0], 0), metrics.F(ps[1], 0), metrics.F(ps[2], 0),
				metrics.F(ps[3], 0), metrics.F(metrics.Mean(vals), 1))
		}
		addRow("partial result lists", res)
		addRow("returned remaining lists", ret)
		addRow("forwarded remaining lists", fwd)
		addRow("partial-result messages", msgs)
		total := metrics.Mean(fwd) + metrics.Mean(ret) + metrics.Mean(res)
		t.Add("total per query (mean)", "", "", "", "", metrics.F(total, 1))
		tables = append(tables, t)
	}
	return tables
}

// Bandwidth reproduces the §3.3.2 headline numbers: the background traffic
// of the lazy mode and the burst traffic of query processing, expressed in
// Kbps using the paper's cycle lengths (1 minute per lazy cycle, 5 seconds
// per eager cycle). Paper values at full scale: 13.4 Kbps lazy background,
// 91 Kbps to answer a query within 50 seconds.
func Bandwidth(cfg Config) []*metrics.Table {
	w := NewWorld(cfg)
	e := w.SeededEngine(w.HeteroConfig(1))

	// Lazy background: run cycles and average per-user sent bytes.
	const lazyCycleSeconds = 60.0
	before := e.Network().Total()
	lazyCycles := 5
	e.RunLazy(lazyCycles)
	lazyDiff := e.Network().Total().Since(before)
	lazyBytesPerUserCycle := float64(lazyDiff.TotalBytes()) / float64(e.Users()) / float64(lazyCycles)
	lazyKbps := lazyBytesPerUserCycle * 8 / lazyCycleSeconds / 1000

	// Eager burst: per-query traffic over the cycles it takes.
	const eagerCycleSeconds = 5.0
	for _, q := range w.Queries {
		e.IssueQuery(q)
	}
	e.RunEager(cfg.Cycles * 2)
	var kbps, payloadKbps, seconds, msgs []float64
	for _, qr := range e.Queries() {
		cycles := qr.Cycles()
		if cycles == 0 {
			cycles = 1
		}
		dur := float64(cycles) * eagerCycleSeconds
		kbps = append(kbps, float64(qr.Bytes().All())*8/dur/1000)
		payloadKbps = append(payloadKbps, float64(qr.Bytes().Total())*8/dur/1000)
		seconds = append(seconds, dur)
		msgs = append(msgs, float64(qr.PartialResultMessages()))
	}

	t := metrics.NewTable(
		"Section 3.3.2 — bandwidth summary (lambda=1; lazy cycle 60s, eager cycle 5s)",
		"quantity", "value")
	t.Add("lazy background per user (Kbps)", metrics.F(lazyKbps, 2))
	t.Add("mean query burst incl. maintenance (Kbps)", metrics.F(metrics.Mean(kbps), 2))
	t.Add("mean query payload only (Kbps)", metrics.F(metrics.Mean(payloadKbps), 2))
	t.Add("mean query latency (seconds)", metrics.F(metrics.Mean(seconds), 1))
	t.Add("mean partial-result messages per query", metrics.F(metrics.Mean(msgs), 1))
	t.Add("probe messages (failed contacts)", metrics.U(e.Network().Total().Msgs[sim.MsgProbe]))
	return []*metrics.Table{t}
}

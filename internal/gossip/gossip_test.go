package gossip

import (
	"testing"

	"p3q/internal/randx"
	"p3q/internal/tagging"
)

func desc(node tagging.UserID, version int) Descriptor {
	p := tagging.NewProfile(node)
	for i := 0; i < version; i++ {
		p.Add(tagging.ItemID(i), 0)
	}
	return Descriptor{
		Node:   node,
		Digest: tagging.NewDigest(p.Snapshot(), 256, 3),
	}
}

func TestBootstrapExcludesSelfAndDuplicates(t *testing.T) {
	v := NewView(1, 5)
	v.Bootstrap([]Descriptor{desc(1, 1), desc(2, 1), desc(2, 1), desc(3, 1)})
	if v.Size() != 2 {
		t.Fatalf("view size = %d, want 2", v.Size())
	}
	for _, d := range v.Entries() {
		if d.Node == 1 {
			t.Fatal("view contains self")
		}
	}
}

func TestBootstrapRespectsCapacity(t *testing.T) {
	v := NewView(0, 3)
	var peers []Descriptor
	for i := 1; i <= 10; i++ {
		peers = append(peers, desc(tagging.UserID(i), 1))
	}
	v.Bootstrap(peers)
	if v.Size() != 3 {
		t.Fatalf("view size = %d, want capacity 3", v.Size())
	}
}

func TestSelectPartnerEmpty(t *testing.T) {
	v := NewView(0, 3)
	if _, ok := v.SelectPartner(randx.NewSource(1)); ok {
		t.Fatal("empty view returned a partner")
	}
}

func TestSelectPartnerUniform(t *testing.T) {
	v := NewView(0, 4)
	v.Bootstrap([]Descriptor{desc(1, 1), desc(2, 1), desc(3, 1), desc(4, 1)})
	rng := randx.NewSource(2)
	counts := make(map[tagging.UserID]int)
	for i := 0; i < 4000; i++ {
		d, ok := v.SelectPartner(rng)
		if !ok {
			t.Fatal("partner selection failed")
		}
		counts[d.Node]++
	}
	for id, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("partner %d selected %d/4000 times, want ~1000", id, c)
		}
	}
}

func TestSendBufferIncludesSelfFirst(t *testing.T) {
	v := NewView(9, 4)
	v.Bootstrap([]Descriptor{desc(1, 1), desc(2, 1), desc(3, 1)})
	self := desc(9, 5)
	buf := v.SendBuffer(self, randx.NewSource(3))
	if len(buf) == 0 || buf[0].Node != 9 {
		t.Fatal("send buffer does not lead with the own descriptor")
	}
	if len(buf) > v.Capacity() {
		t.Fatalf("send buffer size %d exceeds capacity %d", len(buf), v.Capacity())
	}
}

func TestMergeCapacityAndNoSelf(t *testing.T) {
	v := NewView(0, 3)
	v.Bootstrap([]Descriptor{desc(1, 1), desc(2, 1), desc(3, 1)})
	v.Merge([]Descriptor{desc(0, 9), desc(4, 1), desc(5, 1)}, randx.NewSource(4))
	if v.Size() > 3 {
		t.Fatalf("view size %d exceeds capacity", v.Size())
	}
	for _, d := range v.Entries() {
		if d.Node == 0 {
			t.Fatal("merge admitted the own descriptor")
		}
	}
}

func TestMergeNoDuplicates(t *testing.T) {
	v := NewView(0, 10)
	v.Bootstrap([]Descriptor{desc(1, 1), desc(2, 1)})
	v.Merge([]Descriptor{desc(1, 1), desc(2, 1), desc(3, 1)}, randx.NewSource(5))
	seen := make(map[tagging.UserID]bool)
	for _, d := range v.Entries() {
		if seen[d.Node] {
			t.Fatalf("duplicate descriptor for node %d", d.Node)
		}
		seen[d.Node] = true
	}
	if v.Size() != 3 {
		t.Fatalf("view size = %d, want 3", v.Size())
	}
}

func TestMergeKeepsFreshestDigest(t *testing.T) {
	v := NewView(0, 10)
	v.Bootstrap([]Descriptor{desc(1, 2)})
	v.Merge([]Descriptor{desc(1, 7)}, randx.NewSource(6))
	if v.Entries()[0].Digest.Version != 7 {
		t.Fatalf("kept version %d, want freshest 7", v.Entries()[0].Digest.Version)
	}
	// Older arrival must not downgrade.
	v.Merge([]Descriptor{desc(1, 3)}, randx.NewSource(7))
	if v.Entries()[0].Digest.Version != 7 {
		t.Fatalf("older digest downgraded the entry to %d", v.Entries()[0].Digest.Version)
	}
}

func TestMergeDropsNilDigests(t *testing.T) {
	v := NewView(0, 5)
	v.Merge([]Descriptor{{Node: 3, Digest: nil}}, randx.NewSource(8))
	if v.Size() != 0 {
		t.Fatal("nil digest admitted to view")
	}
}

func TestRemove(t *testing.T) {
	v := NewView(0, 5)
	v.Bootstrap([]Descriptor{desc(1, 1), desc(2, 1), desc(3, 1)})
	v.Remove(2)
	if v.Size() != 2 {
		t.Fatalf("size after Remove = %d, want 2", v.Size())
	}
	for _, d := range v.Entries() {
		if d.Node == 2 {
			t.Fatal("removed node still present")
		}
	}
	v.Remove(99) // absent: no-op
	if v.Size() != 2 {
		t.Fatal("Remove of absent node changed the view")
	}
}

// exchange simulates one symmetric peer-sampling exchange between two views.
func exchange(a, b *View, da, db Descriptor, rng *randx.Source) {
	sa := a.SendBuffer(da, rng)
	sb := b.SendBuffer(db, rng)
	a.Merge(sb, rng)
	b.Merge(sa, rng)
}

func TestGossipKeepsNetworkConnected(t *testing.T) {
	// Bootstrap n nodes in a ring (worst case for connectivity) and run the
	// sampling protocol; after a few cycles every node must be reachable
	// from node 0 through view edges, and views should mix far beyond ring
	// neighbours.
	const n = 100
	const r = 8
	views := make([]*View, n)
	selves := make([]Descriptor, n)
	for i := 0; i < n; i++ {
		views[i] = NewView(tagging.UserID(i), r)
		selves[i] = desc(tagging.UserID(i), 1)
	}
	for i := 0; i < n; i++ {
		views[i].Bootstrap([]Descriptor{selves[(i+1)%n], selves[(i+2)%n]})
	}
	rng := randx.NewSource(9)
	for cycle := 0; cycle < 30; cycle++ {
		for i := 0; i < n; i++ {
			d, ok := views[i].SelectPartner(rng)
			if !ok {
				continue
			}
			exchange(views[i], views[d.Node], selves[i], selves[d.Node], rng)
		}
	}
	// BFS over view edges (undirected).
	adj := make([][]int, n)
	for i, v := range views {
		for _, d := range v.Entries() {
			adj[i] = append(adj[i], int(d.Node))
			adj[d.Node] = append(adj[d.Node], i)
		}
	}
	visited := make([]bool, n)
	queue := []int{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range adj[x] {
			if !visited[y] {
				visited[y] = true
				count++
				queue = append(queue, y)
			}
		}
	}
	if count != n {
		t.Fatalf("gossip overlay disconnected: reached %d/%d nodes", count, n)
	}
}

func TestGossipInDegreeBalanced(t *testing.T) {
	// After mixing, no node should be absent from all views and no node
	// should dominate (a basic uniformity sanity check on the sampler).
	const n = 80
	const r = 8
	views := make([]*View, n)
	selves := make([]Descriptor, n)
	for i := 0; i < n; i++ {
		views[i] = NewView(tagging.UserID(i), r)
		selves[i] = desc(tagging.UserID(i), 1)
	}
	for i := 0; i < n; i++ {
		views[i].Bootstrap([]Descriptor{selves[(i+1)%n], selves[(i+7)%n], selves[(i+13)%n]})
	}
	rng := randx.NewSource(10)
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < n; i++ {
			if d, ok := views[i].SelectPartner(rng); ok {
				exchange(views[i], views[d.Node], selves[i], selves[d.Node], rng)
			}
		}
	}
	indeg := make([]int, n)
	for _, v := range views {
		for _, d := range v.Entries() {
			indeg[d.Node]++
		}
	}
	max := 0
	for _, c := range indeg {
		if c > max {
			max = c
		}
	}
	if max > 6*r {
		t.Fatalf("in-degree max %d far above the ~r expected for uniform sampling", max)
	}
}

// Package gossip implements the bottom layer of P3Q's two-layer gossip: the
// random peer sampling protocol (Jelasity et al., "Gossip-based peer
// sampling") that maintains each user's random view. Per §2.2.1 of the
// paper: "at each cycle, a user ui sends the r digests to a neighbour vj
// picked uniformly at random from her random view and receives r digests
// from vj. Then r digests among the 2r digests are randomly selected to
// form the new random view."
//
// The random view keeps the overlay connected regardless of how clustered
// the personal networks become, and surfaces new similarity candidates to
// the top layer.
package gossip

import (
	"p3q/internal/randx"
	"p3q/internal/tagging"
)

// Descriptor is one view entry: a node and the latest known digest of its
// profile. (The paper also exchanges contact information — IP and port —
// which the simulation does not need; its wire size is absorbed in the
// digest's.)
type Descriptor struct {
	Node   tagging.UserID
	Digest *tagging.Digest
}

// View is a node's random view: up to capacity descriptors of peers sampled
// approximately uniformly from the network.
type View struct {
	self     tagging.UserID
	capacity int
	entries  []Descriptor
}

// NewView returns an empty view for the given node.
func NewView(self tagging.UserID, capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	return &View{self: self, capacity: capacity}
}

// Capacity returns the view size r.
func (v *View) Capacity() int { return v.capacity }

// Size returns the current number of descriptors.
func (v *View) Size() int { return len(v.entries) }

// Entries returns the current descriptors. The returned slice aliases the
// view and must not be modified.
func (v *View) Entries() []Descriptor { return v.entries }

// Bootstrap seeds the view with initial peers (deduplicated, self excluded,
// truncated to capacity).
func (v *View) Bootstrap(peers []Descriptor) {
	v.entries = v.entries[:0]
	seen := make(map[tagging.UserID]struct{}, len(peers))
	for _, d := range peers {
		if d.Node == v.self {
			continue
		}
		if _, dup := seen[d.Node]; dup {
			continue
		}
		seen[d.Node] = struct{}{}
		v.entries = append(v.entries, d)
		if len(v.entries) == v.capacity {
			break
		}
	}
}

// SelectPartner picks a gossip partner uniformly at random from the view.
// ok is false when the view is empty.
func (v *View) SelectPartner(rng *randx.Source) (Descriptor, bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, false
	}
	return v.entries[rng.Intn(len(v.entries))], true
}

// SendBuffer returns the descriptors to ship to a partner: this node's own
// fresh descriptor plus a random sample of the view, at most capacity in
// total. Including the own descriptor is what lets new nodes become known —
// the paper's "contact information of the corresponding users is also
// exchanged".
func (v *View) SendBuffer(self Descriptor, rng *randx.Source) []Descriptor {
	out := make([]Descriptor, 0, v.capacity)
	out = append(out, self)
	if len(v.entries) > 0 {
		for _, i := range rng.Sample(len(v.entries), v.capacity-1) {
			out = append(out, v.entries[i])
		}
	}
	return out
}

// Merge combines the received descriptors with the current view and keeps a
// uniform random sample of capacity entries, per the paper's "r digests
// among the 2r digests are randomly selected". Duplicates keep the freshest
// digest (highest version); the node's own descriptor is dropped.
func (v *View) Merge(received []Descriptor, rng *randx.Source) {
	byNode := make(map[tagging.UserID]Descriptor, len(v.entries)+len(received))
	order := make([]tagging.UserID, 0, len(v.entries)+len(received))
	add := func(d Descriptor) {
		if d.Node == v.self || d.Digest == nil {
			return
		}
		if prev, ok := byNode[d.Node]; ok {
			if d.Digest.Version > prev.Digest.Version {
				byNode[d.Node] = d
			}
			return
		}
		byNode[d.Node] = d
		order = append(order, d.Node)
	}
	for _, d := range v.entries {
		add(d)
	}
	for _, d := range received {
		add(d)
	}
	// Uniform random subset of size capacity, in deterministic order.
	if len(order) > v.capacity {
		picked := rng.Sample(len(order), v.capacity)
		kept := make([]tagging.UserID, 0, v.capacity)
		for _, i := range picked {
			kept = append(kept, order[i])
		}
		order = kept
	}
	v.entries = v.entries[:0]
	for _, id := range order {
		v.entries = append(v.entries, byNode[id])
	}
}

// Remove drops the descriptor of a node (e.g. one detected as departed).
func (v *View) Remove(node tagging.UserID) {
	for i, d := range v.entries {
		if d.Node == node {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			return
		}
	}
}

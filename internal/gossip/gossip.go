// Package gossip implements the bottom layer of P3Q's two-layer gossip: the
// random peer sampling protocol (Jelasity et al., "Gossip-based peer
// sampling") that maintains each user's random view. Per §2.2.1 of the
// paper: "at each cycle, a user ui sends the r digests to a neighbour vj
// picked uniformly at random from her random view and receives r digests
// from vj. Then r digests among the 2r digests are randomly selected to
// form the new random view."
//
// The random view keeps the overlay connected regardless of how clustered
// the personal networks become, and surfaces new similarity candidates to
// the top layer.
package gossip

import (
	"p3q/internal/randx"
	"p3q/internal/tagging"
)

// Descriptor is one view entry: a node and the latest known digest of its
// profile. (The paper also exchanges contact information — IP and port —
// which the simulation does not need; its wire size is absorbed in the
// digest's.)
type Descriptor struct {
	Node   tagging.UserID
	Digest *tagging.Digest
}

// View is a node's random view: up to capacity descriptors of peers sampled
// approximately uniformly from the network. Descriptors live in a flat
// slice — the view's hot state is two words plus one dense array.
type View struct {
	self     tagging.UserID
	capacity int
	entries  []Descriptor

	// scratch and smp are Merge's dedupe buffer and sampling scratch,
	// reused across cycles; their content is meaningless between calls
	// (the checkpoint codec rightly ignores them). Merge runs at commit
	// time under the owning shard (one committer per node), so view-owned
	// scratch is safe.
	scratch []Descriptor
	smp     randx.Sampler
}

// NewView returns an empty view for the given node.
func NewView(self tagging.UserID, capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	return &View{self: self, capacity: capacity}
}

// Capacity returns the view size r.
func (v *View) Capacity() int { return v.capacity }

// Size returns the current number of descriptors.
func (v *View) Size() int { return len(v.entries) }

// Entries returns the current descriptors. The returned slice aliases the
// view and must not be modified.
func (v *View) Entries() []Descriptor { return v.entries }

// Bootstrap seeds the view with initial peers (deduplicated, self excluded,
// truncated to capacity).
func (v *View) Bootstrap(peers []Descriptor) {
	v.entries = v.entries[:0]
	seen := make(map[tagging.UserID]struct{}, len(peers))
	for _, d := range peers {
		if d.Node == v.self {
			continue
		}
		if _, dup := seen[d.Node]; dup {
			continue
		}
		seen[d.Node] = struct{}{}
		v.entries = append(v.entries, d)
		if len(v.entries) == v.capacity {
			break
		}
	}
}

// SelectPartner picks a gossip partner uniformly at random from the view.
// ok is false when the view is empty.
func (v *View) SelectPartner(rng *randx.Source) (Descriptor, bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, false
	}
	return v.entries[rng.Intn(len(v.entries))], true
}

// SendBuffer returns the descriptors to ship to a partner: this node's own
// fresh descriptor plus a random sample of the view, at most capacity in
// total. Including the own descriptor is what lets new nodes become known —
// the paper's "contact information of the corresponding users is also
// exchanged".
func (v *View) SendBuffer(self Descriptor, rng *randx.Source) []Descriptor {
	var smp randx.Sampler
	return v.SendBufferInto(self, rng, nil, &smp)
}

// SendBufferInto is SendBuffer appending into a caller-owned buffer with
// caller-owned sampling scratch. The planners call it with plan-slot
// buffers: SendBuffer runs in the parallel plan phase, where two planners
// may read the same view concurrently, so the scratch must be plan-owned,
// not view-owned. The draw sequence and result are identical to SendBuffer.
//
//p3q:hotpath
func (v *View) SendBufferInto(self Descriptor, rng *randx.Source, dst []Descriptor, smp *randx.Sampler) []Descriptor {
	dst = dst[:0]
	dst = append(dst, self)
	if len(v.entries) > 0 {
		for _, i := range smp.Sample(rng, len(v.entries), v.capacity-1) {
			dst = append(dst, v.entries[i])
		}
	}
	return dst
}

// Merge combines the received descriptors with the current view and keeps a
// uniform random sample of capacity entries, per the paper's "r digests
// among the 2r digests are randomly selected". Duplicates keep the freshest
// digest (highest version); the node's own descriptor is dropped.
//
// The dedupe runs over a view-owned flat scratch with a linear membership
// scan — at most 2r+1 candidates — replacing the map-and-order-slice pair
// this method used to allocate per call. Order and draw sequence are
// unchanged: candidates keep first-occurrence order, and the down-sample
// draws exactly when the candidate count exceeds capacity.
//
//p3q:hotpath
func (v *View) Merge(received []Descriptor, rng *randx.Source) {
	sc := v.scratch[:0]
	for pass := 0; pass < 2; pass++ {
		src := v.entries
		if pass == 1 {
			src = received
		}
		for _, d := range src {
			if d.Node == v.self || d.Digest == nil {
				continue
			}
			dup := false
			for i := range sc {
				if sc[i].Node == d.Node {
					if d.Digest.Version > sc[i].Digest.Version {
						sc[i] = d
					}
					dup = true
					break
				}
			}
			if !dup {
				sc = append(sc, d)
			}
		}
	}
	// Uniform random subset of size capacity, in deterministic order.
	v.entries = v.entries[:0]
	if len(sc) > v.capacity {
		for _, i := range v.smp.Sample(rng, len(sc), v.capacity) {
			v.entries = append(v.entries, sc[i])
		}
	} else {
		v.entries = append(v.entries, sc...)
	}
	v.scratch = sc[:0]
}

// Remove drops the descriptor of a node (e.g. one detected as departed).
func (v *View) Remove(node tagging.UserID) {
	for i, d := range v.entries {
		if d.Node == node {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			return
		}
	}
}

package gossip

import (
	"testing"

	"p3q/internal/randx"
	"p3q/internal/tagging"
)

// Churn-facing behaviour of the peer sampling layer.

func TestViewHealsAfterRemovals(t *testing.T) {
	// Remove half of a view's contacts (departures) and keep gossiping with
	// the survivors: the view must fill back up to capacity.
	const n = 60
	const r = 8
	views := make([]*View, n)
	selves := make([]Descriptor, n)
	for i := 0; i < n; i++ {
		views[i] = NewView(tagging.UserID(i), r)
		selves[i] = desc(tagging.UserID(i), 1)
	}
	for i := 0; i < n; i++ {
		views[i].Bootstrap([]Descriptor{selves[(i+1)%n], selves[(i+2)%n], selves[(i+3)%n]})
	}
	rng := randx.NewSource(21)
	for cycle := 0; cycle < 20; cycle++ {
		for i := 0; i < n; i++ {
			if d, ok := views[i].SelectPartner(rng); ok {
				exchange(views[i], views[d.Node], selves[i], selves[d.Node], rng)
			}
		}
	}
	// Damage node 0's view heavily.
	for _, d := range append([]Descriptor(nil), views[0].Entries()...) {
		if d.Node%2 == 0 {
			views[0].Remove(d.Node)
		}
	}
	damaged := views[0].Size()
	for cycle := 0; cycle < 15; cycle++ {
		if d, ok := views[0].SelectPartner(rng); ok {
			exchange(views[0], views[d.Node], selves[0], selves[d.Node], rng)
		}
	}
	if views[0].Size() <= damaged {
		t.Fatalf("view did not heal: %d -> %d entries", damaged, views[0].Size())
	}
	if views[0].Size() != r {
		t.Fatalf("healed view has %d entries, want capacity %d", views[0].Size(), r)
	}
}

func TestFreshDigestVersionsPropagate(t *testing.T) {
	// A node whose profile changes ships a fresher self-descriptor; after a
	// few exchanges other views must carry the newer version.
	const n = 30
	const r = 6
	views := make([]*View, n)
	selves := make([]Descriptor, n)
	for i := 0; i < n; i++ {
		views[i] = NewView(tagging.UserID(i), r)
		selves[i] = desc(tagging.UserID(i), 1)
	}
	for i := 0; i < n; i++ {
		views[i].Bootstrap([]Descriptor{selves[(i+1)%n], selves[(i+5)%n], selves[(i+9)%n]})
	}
	rng := randx.NewSource(22)
	for cycle := 0; cycle < 10; cycle++ {
		for i := 0; i < n; i++ {
			if d, ok := views[i].SelectPartner(rng); ok {
				exchange(views[i], views[d.Node], selves[i], selves[d.Node], rng)
			}
		}
	}
	// Node 0 updates her profile: version 1 -> 9.
	selves[0] = desc(0, 9)
	for cycle := 0; cycle < 20; cycle++ {
		for i := 0; i < n; i++ {
			if d, ok := views[i].SelectPartner(rng); ok {
				exchange(views[i], views[d.Node], selves[i], selves[d.Node], rng)
			}
		}
	}
	fresh, stale := 0, 0
	for i := 1; i < n; i++ {
		for _, d := range views[i].Entries() {
			if d.Node != 0 {
				continue
			}
			if d.Digest.Version >= 9 {
				fresh++
			} else {
				stale++
			}
		}
	}
	if fresh == 0 {
		t.Fatal("no view carries node 0's fresh digest after 20 cycles")
	}
	if stale > fresh {
		t.Fatalf("stale digests (%d) outnumber fresh ones (%d)", stale, fresh)
	}
}

func TestSendBufferWithEmptyView(t *testing.T) {
	v := NewView(3, 5)
	buf := v.SendBuffer(desc(3, 1), randx.NewSource(23))
	if len(buf) != 1 || buf[0].Node != 3 {
		t.Fatalf("empty-view send buffer = %v, want just self", buf)
	}
}

func TestMergeIntoEmptyView(t *testing.T) {
	v := NewView(0, 4)
	v.Merge([]Descriptor{desc(1, 1), desc(2, 1)}, randx.NewSource(24))
	if v.Size() != 2 {
		t.Fatalf("merge into empty view gave %d entries", v.Size())
	}
}

package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// FuzzWireMessage throws arbitrary bytes at the frame decoder. Any input
// must either fail cleanly or decode to a message that re-encodes and
// re-decodes to itself — the decoder is the trust boundary of the peer
// daemon, so it must never panic, never over-allocate, and never accept a
// frame it cannot reproduce.
//
// The committed seed corpus (testdata/fuzz/FuzzWireMessage) holds one
// valid frame per message type, generated from sampleMessages by
// TestSeedCorpusCommitted with -update-corpus.
func FuzzWireMessage(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(encodeFrame(f, m))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMsg(NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMsg(NewWriter(&buf), m); err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		m2, err := ReadMsg(NewReader(&buf))
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%T unstable under re-encoding:\n first %+v\nsecond %+v", m, m, m2)
		}
	})
}

// corpusEntry renders one seed input in the Go fuzz corpus file format.
func corpusEntry(frame []byte) string {
	return "go test fuzz v1\n[]byte(" + strconv.Quote(string(frame)) + ")\n"
}

// corpusName returns the committed corpus file name for a message.
func corpusName(m Msg) string {
	name := reflect.TypeOf(m).Elem().Name()
	return "seed-" + strings.ToLower(name)
}

var updateCorpus = os.Getenv("WIRE_UPDATE_CORPUS") != ""

// TestSeedCorpusCommitted keeps the committed fuzz seed corpus in lock
// step with the wire format: one file per message type, each holding that
// type's sample frame. Run with WIRE_UPDATE_CORPUS=1 to regenerate after
// a deliberate format change.
func TestSeedCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireMessage")
	if updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range sampleMessages() {
		path := filepath.Join(dir, corpusName(m))
		want := corpusEntry(encodeFrame(t, m))
		if updateCorpus {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%T: %v (run with WIRE_UPDATE_CORPUS=1 to regenerate)", m, err)
		}
		if string(got) != want {
			t.Errorf("%T: committed corpus file %s is stale (run with WIRE_UPDATE_CORPUS=1 to regenerate)", m, path)
		}
	}
	if updateCorpus {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		known := make(map[string]bool)
		for _, m := range sampleMessages() {
			known[corpusName(m)] = true
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "seed-") && !known[e.Name()] {
				t.Errorf("stale corpus file %s for a retired message type", e.Name())
			}
		}
	}
}

// TestCorpusEntriesDecode proves every committed seed is a valid frame —
// the fuzzer starts from meaningful coverage, not dead inputs.
func TestCorpusEntriesDecode(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireMessage")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("empty seed corpus")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		frame, err := parseCorpusEntry(string(data))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if _, err := ReadMsg(NewReader(bytes.NewReader(frame))); err != nil {
			t.Errorf("%s: committed seed does not decode: %v", e.Name(), err)
		}
	}
}

// parseCorpusEntry reads back the Go fuzz corpus file format written by
// corpusEntry.
func parseCorpusEntry(s string) ([]byte, error) {
	lines := strings.SplitN(s, "\n", 3)
	if len(lines) < 2 || lines[0] != "go test fuzz v1" {
		return nil, fmt.Errorf("not a go fuzz corpus entry")
	}
	body := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
	unquoted, err := strconv.Unquote(body)
	if err != nil {
		return nil, fmt.Errorf("unquoting corpus body: %w", err)
	}
	return []byte(unquoted), nil
}

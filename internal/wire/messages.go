package wire

import (
	"p3q/internal/tagging"
	"p3q/internal/topk"
)

// Type identifies a wire message.
type Type uint16

// Message types. The values are part of the wire format: never reorder or
// reuse them — retire a message by leaving a gap and bump Version when the
// semantics change.
const (
	// Cluster control plane.
	TypeHello       Type = 1 // daemon -> daemon: identity + compatibility proof
	TypeHelloAck    Type = 2
	TypeStep        Type = 3 // lead -> member: step the replica one cycle
	TypeStepAck     Type = 4
	TypeExchangeGo  Type = 5 // lead -> member: run the cycle's wire exchanges
	TypeExchangeAck Type = 6
	TypeShutdown    Type = 7
	TypeShutdownAck Type = 8

	// Protocol plane: lazy digest exchange (§2.2.1).
	TypeViewExchangeReq  Type = 16
	TypeViewExchangeResp Type = 17
	TypeTopExchangeReq   Type = 18
	TypeTopExchangeResp  Type = 19
	TypeDirectFetchReq   Type = 20
	TypeDirectFetchResp  Type = 21

	// Protocol plane: eager query gossip (§2.2.2).
	TypeEagerForwardReq  Type = 24
	TypeEagerForwardResp Type = 25
	TypePartialResult    Type = 26
	TypePartialResultAck Type = 27

	// Query plane.
	TypeQuerySubmit     Type = 32 // gateway -> any daemon
	TypeQuerySubmitAck  Type = 33
	TypeQueryIssue      Type = 34 // lead -> member: issue on every replica
	TypeQueryIssueAck   Type = 35
	TypeQueryStatus     Type = 36
	TypeQueryStatusResp Type = 37
	TypeStats           Type = 38
	TypeStatsResp       Type = 39
)

// Msg is one wire message. Encoding and decoding are deliberately
// unexported: every message crosses the stream through WriteMsg/ReadMsg
// so the frame envelope is never bypassed.
type Msg interface {
	WireType() Type
	encode(w *Writer)
	decode(r *Reader)
}

// DigestRef references a profile digest by (owner, version) instead of
// shipping its bits — profiles are append-only, so the reference
// reconstructs the digest bit-exactly on any daemon holding the dataset.
// Bytes is the §3.3 wire cost of the digest the reference stands for.
type DigestRef struct {
	Owner   tagging.UserID
	Version uint32
	Bytes   uint32
}

func encodeRefs(w *Writer, refs []DigestRef) {
	w.Count(len(refs))
	for _, d := range refs {
		w.U32(uint32(d.Owner))
		w.U32(d.Version)
		w.U32(d.Bytes)
	}
}

func decodeRefs(r *Reader) []DigestRef {
	n := r.Count(MaxListLen)
	if n == 0 {
		return nil
	}
	out := make([]DigestRef, 0, CapHint(n))
	for i := 0; i < n; i++ {
		out = append(out, DigestRef{
			Owner:   tagging.UserID(r.U32()),
			Version: r.U32(),
			Bytes:   r.U32(),
		})
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

func encodeUsers(w *Writer, users []tagging.UserID) {
	w.Count(len(users))
	for _, u := range users {
		w.U32(uint32(u))
	}
}

func decodeUsers(r *Reader) []tagging.UserID {
	n := r.Count(MaxListLen)
	if n == 0 {
		return nil
	}
	out := make([]tagging.UserID, 0, CapHint(n))
	for i := 0; i < n; i++ {
		out = append(out, tagging.UserID(r.U32()))
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

func encodeTags(w *Writer, tags []tagging.TagID) {
	w.Count(len(tags))
	for _, t := range tags {
		w.U32(uint32(t))
	}
}

func decodeTags(r *Reader) []tagging.TagID {
	n := r.Count(MaxListLen)
	if n == 0 {
		return nil
	}
	out := make([]tagging.TagID, 0, CapHint(n))
	for i := 0; i < n; i++ {
		out = append(out, tagging.TagID(r.U32()))
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

func encodeEntries(w *Writer, entries []topk.Entry) {
	w.Count(len(entries))
	for _, e := range entries {
		w.U32(uint32(e.Item))
		w.I64(int64(e.Score))
	}
}

func decodeEntries(r *Reader) []topk.Entry {
	n := r.Count(MaxListLen)
	if n == 0 {
		return nil
	}
	out := make([]topk.Entry, 0, CapHint(n))
	for i := 0; i < n; i++ {
		out = append(out, topk.Entry{
			Item:  tagging.ItemID(r.U32()),
			Score: int(r.I64()),
		})
		if r.Err() != nil {
			return nil
		}
	}
	return out
}

// Hello opens a daemon-to-daemon connection: the dialer identifies itself
// and proves it runs the same deterministic universe. Replicas are only
// interchangeable when dataset, configuration and seed all match, so the
// receiver rejects on any sum mismatch rather than silently diverging.
type Hello struct {
	Index      uint32 // dialer's daemon index (0 is the lead)
	Lo, Hi     uint32 // hosted node range [Lo, Hi)
	Users      uint32 // total users in the universe
	Seed       uint64
	ConfigSum  uint64 // FNV-1a over the engine configuration
	DatasetSum uint64 // FNV-1a over the generator parameters
}

func (*Hello) WireType() Type { return TypeHello }

func (m *Hello) encode(w *Writer) {
	w.U32(m.Index)
	w.U32(m.Lo)
	w.U32(m.Hi)
	w.U32(m.Users)
	w.U64(m.Seed)
	w.U64(m.ConfigSum)
	w.U64(m.DatasetSum)
}

func (m *Hello) decode(r *Reader) {
	m.Index = r.U32()
	m.Lo = r.U32()
	m.Hi = r.U32()
	m.Users = r.U32()
	m.Seed = r.U64()
	m.ConfigSum = r.U64()
	m.DatasetSum = r.U64()
}

// HelloAck accepts or rejects a Hello.
type HelloAck struct {
	OK     bool
	Index  uint32 // responder's daemon index
	Reason string // set when !OK
}

func (*HelloAck) WireType() Type { return TypeHelloAck }

func (m *HelloAck) encode(w *Writer) {
	w.Bool(m.OK)
	w.U32(m.Index)
	w.String(m.Reason)
}

func (m *HelloAck) decode(r *Reader) {
	m.OK = r.Bool()
	m.Index = r.U32()
	m.Reason = r.String()
}

// Cycle kinds carried by Step.
const (
	StepLazy  uint8 = 0
	StepEager uint8 = 1
)

// Step instructs a member to step its replica one cycle (with capture)
// and ack. The lead drives the cluster in lockstep: phase one steps every
// replica, phase two (ExchangeGo) runs the wire exchanges the captures
// describe.
type Step struct {
	Kind uint8 // StepLazy or StepEager
	Seq  uint64
}

func (*Step) WireType() Type { return TypeStep }

func (m *Step) encode(w *Writer) {
	w.U8(m.Kind)
	w.U64(m.Seq)
}

func (m *Step) decode(r *Reader) {
	m.Kind = r.U8()
	if m.Kind > StepEager {
		r.Fail("invalid step kind")
	}
	m.Seq = r.U64()
}

// StepAck confirms the replica stepped cycle Seq.
type StepAck struct {
	Seq uint64
}

func (*StepAck) WireType() Type { return TypeStepAck }
func (m *StepAck) encode(w *Writer) {
	w.U64(m.Seq)
}
func (m *StepAck) decode(r *Reader) {
	m.Seq = r.U64()
}

// ExchangeGo instructs a member to run cycle Seq's wire exchanges for the
// initiators it hosts.
type ExchangeGo struct {
	Seq uint64
}

func (*ExchangeGo) WireType() Type { return TypeExchangeGo }
func (m *ExchangeGo) encode(w *Writer) {
	w.U64(m.Seq)
}
func (m *ExchangeGo) decode(r *Reader) {
	m.Seq = r.U64()
}

// ExchangeAck confirms the member finished cycle Seq's exchanges and
// reports its cumulative divergence count — peer responses that did not
// match the local replica's own computation.
type ExchangeAck struct {
	Seq        uint64
	Divergence uint64
}

func (*ExchangeAck) WireType() Type { return TypeExchangeAck }

func (m *ExchangeAck) encode(w *Writer) {
	w.U64(m.Seq)
	w.U64(m.Divergence)
}

func (m *ExchangeAck) decode(r *Reader) {
	m.Seq = r.U64()
	m.Divergence = r.U64()
}

// Shutdown asks a daemon to stop cleanly.
type Shutdown struct{}

func (*Shutdown) WireType() Type     { return TypeShutdown }
func (m *Shutdown) encode(w *Writer) {}
func (m *Shutdown) decode(r *Reader) {}

// ShutdownAck confirms the daemon is stopping.
type ShutdownAck struct{}

func (*ShutdownAck) WireType() Type     { return TypeShutdownAck }
func (m *ShutdownAck) encode(w *Writer) {}
func (m *ShutdownAck) decode(r *Reader) {}

// ViewExchangeReq carries one bottom-layer peer-sampling exchange
// (§2.2.1): the initiator's descriptor buffer travels to the daemon
// hosting the partner, which answers with the partner's buffer.
type ViewExchangeReq struct {
	Seq       uint64
	Initiator tagging.UserID
	Partner   tagging.UserID
	Buf       []DigestRef
}

func (*ViewExchangeReq) WireType() Type { return TypeViewExchangeReq }

func (m *ViewExchangeReq) encode(w *Writer) {
	w.U64(m.Seq)
	w.U32(uint32(m.Initiator))
	w.U32(uint32(m.Partner))
	encodeRefs(w, m.Buf)
}

func (m *ViewExchangeReq) decode(r *Reader) {
	m.Seq = r.U64()
	m.Initiator = tagging.UserID(r.U32())
	m.Partner = tagging.UserID(r.U32())
	m.Buf = decodeRefs(r)
}

// ViewExchangeResp returns the partner's descriptor buffer.
type ViewExchangeResp struct {
	Buf []DigestRef
}

func (*ViewExchangeResp) WireType() Type { return TypeViewExchangeResp }
func (m *ViewExchangeResp) encode(w *Writer) {
	encodeRefs(w, m.Buf)
}
func (m *ViewExchangeResp) decode(r *Reader) {
	m.Buf = decodeRefs(r)
}

// TopExchangeReq carries step 1 of one top-layer exchange (§2.2.1): the
// initiator's offer batch travels to the daemon hosting the partner,
// which answers with the partner's batch; steps 2-3 resolve locally
// against each side's committed replica.
type TopExchangeReq struct {
	Seq       uint64
	Initiator tagging.UserID
	Partner   tagging.UserID
	Offers    []DigestRef
}

func (*TopExchangeReq) WireType() Type { return TypeTopExchangeReq }

func (m *TopExchangeReq) encode(w *Writer) {
	w.U64(m.Seq)
	w.U32(uint32(m.Initiator))
	w.U32(uint32(m.Partner))
	encodeRefs(w, m.Offers)
}

func (m *TopExchangeReq) decode(r *Reader) {
	m.Seq = r.U64()
	m.Initiator = tagging.UserID(r.U32())
	m.Partner = tagging.UserID(r.U32())
	m.Offers = decodeRefs(r)
}

// TopExchangeResp returns the partner's offer batch.
type TopExchangeResp struct {
	Offers []DigestRef
}

func (*TopExchangeResp) WireType() Type { return TypeTopExchangeResp }
func (m *TopExchangeResp) encode(w *Writer) {
	encodeRefs(w, m.Offers)
}
func (m *TopExchangeResp) decode(r *Reader) {
	m.Offers = decodeRefs(r)
}

// DirectFetchReq asks the daemon hosting Owner for Owner's fresh profile
// offer (the random-view direct contact of §2.2.1).
type DirectFetchReq struct {
	Seq       uint64
	Requester tagging.UserID
	Owner     tagging.UserID
}

func (*DirectFetchReq) WireType() Type { return TypeDirectFetchReq }

func (m *DirectFetchReq) encode(w *Writer) {
	w.U64(m.Seq)
	w.U32(uint32(m.Requester))
	w.U32(uint32(m.Owner))
}

func (m *DirectFetchReq) decode(r *Reader) {
	m.Seq = r.U64()
	m.Requester = tagging.UserID(r.U32())
	m.Owner = tagging.UserID(r.U32())
}

// DirectFetchResp returns the owner's offer.
type DirectFetchResp struct {
	Offer DigestRef
}

func (*DirectFetchResp) WireType() Type { return TypeDirectFetchResp }

func (m *DirectFetchResp) encode(w *Writer) {
	w.U32(uint32(m.Offer.Owner))
	w.U32(m.Offer.Version)
	w.U32(m.Offer.Bytes)
}

func (m *DirectFetchResp) decode(r *Reader) {
	m.Offer.Owner = tagging.UserID(r.U32())
	m.Offer.Version = r.U32()
	m.Offer.Bytes = r.U32()
}

// EagerForwardReq carries one eager gossip (Algorithm 3) to the daemon
// hosting the destination: the query, the forwarded remaining list, and
// the piggybacked maintenance offers of the initiator.
type EagerForwardReq struct {
	Seq       uint64
	Qid       uint64
	Initiator tagging.UserID
	Dest      tagging.UserID
	Querier   tagging.UserID
	Tags      []tagging.TagID
	Branch    []tagging.UserID
	Offers    []DigestRef // piggybacked maintenance, initiator -> destination
}

func (*EagerForwardReq) WireType() Type { return TypeEagerForwardReq }

func (m *EagerForwardReq) encode(w *Writer) {
	w.U64(m.Seq)
	w.U64(m.Qid)
	w.U32(uint32(m.Initiator))
	w.U32(uint32(m.Dest))
	w.U32(uint32(m.Querier))
	encodeTags(w, m.Tags)
	encodeUsers(w, m.Branch)
	encodeRefs(w, m.Offers)
}

func (m *EagerForwardReq) decode(r *Reader) {
	m.Seq = r.U64()
	m.Qid = r.U64()
	m.Initiator = tagging.UserID(r.U32())
	m.Dest = tagging.UserID(r.U32())
	m.Querier = tagging.UserID(r.U32())
	m.Tags = decodeTags(r)
	m.Branch = decodeUsers(r)
	m.Offers = decodeRefs(r)
}

// EagerForwardResp answers an eager gossip: the α-split portion of the
// unresolved remaining list sent back to the initiator, and the
// destination's piggybacked maintenance offers.
type EagerForwardResp struct {
	Returned []tagging.UserID
	Offers   []DigestRef // piggybacked maintenance, destination -> initiator
}

func (*EagerForwardResp) WireType() Type { return TypeEagerForwardResp }

func (m *EagerForwardResp) encode(w *Writer) {
	encodeUsers(w, m.Returned)
	encodeRefs(w, m.Offers)
}

func (m *EagerForwardResp) decode(r *Reader) {
	m.Returned = decodeUsers(r)
	m.Offers = decodeRefs(r)
}

// PartialResult delivers a destination's partial result list to the
// daemon hosting the querier (Algorithm 3 step 3).
type PartialResult struct {
	Seq         uint64
	Qid         uint64
	Initiator   tagging.UserID // the gossip initiator (with Qid: which gossip this resolves)
	From        tagging.UserID // the gossip destination that resolved the profiles
	Querier     tagging.UserID
	FoundOwners []tagging.UserID // profiles resolved from the destination's storage
	Entries     []topk.Entry
}

func (*PartialResult) WireType() Type { return TypePartialResult }

func (m *PartialResult) encode(w *Writer) {
	w.U64(m.Seq)
	w.U64(m.Qid)
	w.U32(uint32(m.Initiator))
	w.U32(uint32(m.From))
	w.U32(uint32(m.Querier))
	encodeUsers(w, m.FoundOwners)
	encodeEntries(w, m.Entries)
}

func (m *PartialResult) decode(r *Reader) {
	m.Seq = r.U64()
	m.Qid = r.U64()
	m.Initiator = tagging.UserID(r.U32())
	m.From = tagging.UserID(r.U32())
	m.Querier = tagging.UserID(r.U32())
	m.FoundOwners = decodeUsers(r)
	m.Entries = decodeEntries(r)
}

// PartialResultAck confirms delivery.
type PartialResultAck struct{}

func (*PartialResultAck) WireType() Type     { return TypePartialResultAck }
func (m *PartialResultAck) encode(w *Writer) {}
func (m *PartialResultAck) decode(r *Reader) {}

// QuerySubmit asks a daemon to run a query on behalf of Querier. Any
// daemon accepts it; a member forwards it to the lead, which issues it on
// every replica between cycles.
type QuerySubmit struct {
	Querier tagging.UserID
	Tags    []tagging.TagID
}

func (*QuerySubmit) WireType() Type { return TypeQuerySubmit }

func (m *QuerySubmit) encode(w *Writer) {
	w.U32(uint32(m.Querier))
	encodeTags(w, m.Tags)
}

func (m *QuerySubmit) decode(r *Reader) {
	m.Querier = tagging.UserID(r.U32())
	m.Tags = decodeTags(r)
}

// QuerySubmitAck returns the query ID the cluster assigned, identical on
// every replica by determinism.
type QuerySubmitAck struct {
	OK     bool
	Qid    uint64
	Reason string // set when !OK
}

func (*QuerySubmitAck) WireType() Type { return TypeQuerySubmitAck }

func (m *QuerySubmitAck) encode(w *Writer) {
	w.Bool(m.OK)
	w.U64(m.Qid)
	w.String(m.Reason)
}

func (m *QuerySubmitAck) decode(r *Reader) {
	m.OK = r.Bool()
	m.Qid = r.U64()
	m.Reason = r.String()
}

// QueryIssue is the lead's broadcast ordering every member to issue the
// query on its replica; replicas assign identical IDs.
type QueryIssue struct {
	Querier tagging.UserID
	Tags    []tagging.TagID
}

func (*QueryIssue) WireType() Type { return TypeQueryIssue }

func (m *QueryIssue) encode(w *Writer) {
	w.U32(uint32(m.Querier))
	encodeTags(w, m.Tags)
}

func (m *QueryIssue) decode(r *Reader) {
	m.Querier = tagging.UserID(r.U32())
	m.Tags = decodeTags(r)
}

// QueryIssueAck confirms the member issued the query, echoing the ID its
// replica assigned so the lead can assert agreement.
type QueryIssueAck struct {
	OK  bool
	Qid uint64
}

func (*QueryIssueAck) WireType() Type { return TypeQueryIssueAck }

func (m *QueryIssueAck) encode(w *Writer) {
	w.Bool(m.OK)
	w.U64(m.Qid)
}

func (m *QueryIssueAck) decode(r *Reader) {
	m.OK = r.Bool()
	m.Qid = r.U64()
}

// QueryStatus asks a daemon for the state of a query.
type QueryStatus struct {
	Qid uint64
}

func (*QueryStatus) WireType() Type { return TypeQueryStatus }
func (m *QueryStatus) encode(w *Writer) {
	w.U64(m.Qid)
}
func (m *QueryStatus) decode(r *Reader) {
	m.Qid = r.U64()
}

// QueryStatusResp reports a query's progress as the answering daemon sees
// it: recall counters, the wire-tallied traffic split, and — once done —
// the result list its own NRA accumulated from wire-received partial
// results.
type QueryStatusResp struct {
	Known  bool
	Done   bool
	Cycles uint32 // eager cycles since issue
	Used   uint32 // profiles used so far
	Needed uint32 // personal network size + 1

	// Wire-tallied traffic attributed to this query, same categories as
	// core.QueryBytes.
	Forwarded      uint64
	Returned       uint64
	PartialResults uint64
	Maintenance    uint64

	Results []topk.Entry // populated once Done
}

func (*QueryStatusResp) WireType() Type { return TypeQueryStatusResp }

func (m *QueryStatusResp) encode(w *Writer) {
	w.Bool(m.Known)
	w.Bool(m.Done)
	w.U32(m.Cycles)
	w.U32(m.Used)
	w.U32(m.Needed)
	w.U64(m.Forwarded)
	w.U64(m.Returned)
	w.U64(m.PartialResults)
	w.U64(m.Maintenance)
	encodeEntries(w, m.Results)
}

func (m *QueryStatusResp) decode(r *Reader) {
	m.Known = r.Bool()
	m.Done = r.Bool()
	m.Cycles = r.U32()
	m.Used = r.U32()
	m.Needed = r.U32()
	m.Forwarded = r.U64()
	m.Returned = r.U64()
	m.PartialResults = r.U64()
	m.Maintenance = r.U64()
	m.Results = decodeEntries(r)
}

// Stats asks a daemon for its cluster-level counters.
type Stats struct{}

func (*Stats) WireType() Type     { return TypeStats }
func (m *Stats) encode(w *Writer) {}
func (m *Stats) decode(r *Reader) {}

// QueryStat is one query's row in a StatsResp.
type QueryStat struct {
	Qid  uint64
	Done bool

	Forwarded      uint64
	Returned       uint64
	PartialResults uint64
	Maintenance    uint64
}

// PlaneStat is one connection plane's raw wire tally.
type PlaneStat struct {
	Msgs  uint64
	Bytes uint64
}

// StatsResp reports a daemon's counters: cycles stepped, divergence
// detections (peer responses contradicting the local replica), raw wire
// volume — total and split by connection plane — the replica's
// event-machine depths, cumulative hostclock phase windows, and the
// per-query traffic tallies this daemon attributed from the exchanges
// its hosted initiators ran.
type StatsResp struct {
	Index       uint32
	LazyCycles  uint64
	EagerCycles uint64
	Divergence  uint64
	WireMsgs    uint64 // total across planes, both directions
	WireBytes   uint64

	// Replica event-machine depths at answer time.
	FrozenEvents  uint32 // deliveries frozen at offline nodes
	PendingEvents uint32 // in-flight deliveries in the event queue

	// Cumulative hostclock phase windows (observability only; these never
	// feed back into replica state).
	PlanNanos    uint64
	CommitNanos  uint64
	SkewMaxNanos uint64 // worst per-cycle commit skew across shards

	// Raw wire volume by connection plane. Data/Ctrl/Gateway count this
	// daemon's dialed links; Served counts its accepted side of all planes.
	Data    PlaneStat
	Ctrl    PlaneStat
	Gateway PlaneStat
	Served  PlaneStat

	Queries []QueryStat
}

func (*StatsResp) WireType() Type { return TypeStatsResp }

func encodePlane(w *Writer, p PlaneStat) {
	w.U64(p.Msgs)
	w.U64(p.Bytes)
}

func decodePlane(r *Reader) PlaneStat {
	return PlaneStat{Msgs: r.U64(), Bytes: r.U64()}
}

func (m *StatsResp) encode(w *Writer) {
	w.U32(m.Index)
	w.U64(m.LazyCycles)
	w.U64(m.EagerCycles)
	w.U64(m.Divergence)
	w.U64(m.WireMsgs)
	w.U64(m.WireBytes)
	w.U32(m.FrozenEvents)
	w.U32(m.PendingEvents)
	w.U64(m.PlanNanos)
	w.U64(m.CommitNanos)
	w.U64(m.SkewMaxNanos)
	encodePlane(w, m.Data)
	encodePlane(w, m.Ctrl)
	encodePlane(w, m.Gateway)
	encodePlane(w, m.Served)
	w.Count(len(m.Queries))
	for _, q := range m.Queries {
		w.U64(q.Qid)
		w.Bool(q.Done)
		w.U64(q.Forwarded)
		w.U64(q.Returned)
		w.U64(q.PartialResults)
		w.U64(q.Maintenance)
	}
}

func (m *StatsResp) decode(r *Reader) {
	m.Index = r.U32()
	m.LazyCycles = r.U64()
	m.EagerCycles = r.U64()
	m.Divergence = r.U64()
	m.WireMsgs = r.U64()
	m.WireBytes = r.U64()
	m.FrozenEvents = r.U32()
	m.PendingEvents = r.U32()
	m.PlanNanos = r.U64()
	m.CommitNanos = r.U64()
	m.SkewMaxNanos = r.U64()
	m.Data = decodePlane(r)
	m.Ctrl = decodePlane(r)
	m.Gateway = decodePlane(r)
	m.Served = decodePlane(r)
	n := r.Count(MaxQueryEntries)
	if n == 0 {
		return
	}
	m.Queries = make([]QueryStat, 0, CapHint(n))
	for i := 0; i < n; i++ {
		var q QueryStat
		q.Qid = r.U64()
		q.Done = r.Bool()
		q.Forwarded = r.U64()
		q.Returned = r.U64()
		q.PartialResults = r.U64()
		q.Maintenance = r.U64()
		if r.Err() != nil {
			m.Queries = nil
			return
		}
		m.Queries = append(m.Queries, q)
	}
}

// newMsg returns a zero message of the given type, or false for an
// unknown type.
func newMsg(t Type) (Msg, bool) {
	switch t {
	case TypeHello:
		return &Hello{}, true
	case TypeHelloAck:
		return &HelloAck{}, true
	case TypeStep:
		return &Step{}, true
	case TypeStepAck:
		return &StepAck{}, true
	case TypeExchangeGo:
		return &ExchangeGo{}, true
	case TypeExchangeAck:
		return &ExchangeAck{}, true
	case TypeShutdown:
		return &Shutdown{}, true
	case TypeShutdownAck:
		return &ShutdownAck{}, true
	case TypeViewExchangeReq:
		return &ViewExchangeReq{}, true
	case TypeViewExchangeResp:
		return &ViewExchangeResp{}, true
	case TypeTopExchangeReq:
		return &TopExchangeReq{}, true
	case TypeTopExchangeResp:
		return &TopExchangeResp{}, true
	case TypeDirectFetchReq:
		return &DirectFetchReq{}, true
	case TypeDirectFetchResp:
		return &DirectFetchResp{}, true
	case TypeEagerForwardReq:
		return &EagerForwardReq{}, true
	case TypeEagerForwardResp:
		return &EagerForwardResp{}, true
	case TypePartialResult:
		return &PartialResult{}, true
	case TypePartialResultAck:
		return &PartialResultAck{}, true
	case TypeQuerySubmit:
		return &QuerySubmit{}, true
	case TypeQuerySubmitAck:
		return &QuerySubmitAck{}, true
	case TypeQueryIssue:
		return &QueryIssue{}, true
	case TypeQueryIssueAck:
		return &QueryIssueAck{}, true
	case TypeQueryStatus:
		return &QueryStatus{}, true
	case TypeQueryStatusResp:
		return &QueryStatusResp{}, true
	case TypeStats:
		return &Stats{}, true
	case TypeStatsResp:
		return &StatsResp{}, true
	default:
		return nil, false
	}
}

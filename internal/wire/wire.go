// Package wire is the versioned wire format of the P3Q peer protocol:
// the messages a p3qd daemon (internal/peer, cmd/p3qd) exchanges with its
// peers and with the p3qctl gateway — the lazy digest exchanges of §2.2.1
// (random-view buffers, top-layer offer batches, direct profile fetches),
// the eager query gossip of §2.2.2 (forwarded remaining lists, α-split
// returns, partial result delivery), the query plane, and the
// cluster-control handshake.
//
// The codec follows the sticky-error discipline of internal/checkpoint:
// fixed-width little-endian integers, explicit counts bounded before
// anything is allocated, truncation surfacing as io.ErrUnexpectedEOF, and
// an end marker per frame proving reader and writer agreed on the layout.
// The stickyerr analyzer (internal/lint) enforces that raw stream access
// stays inside the Writer/Reader carriers and that no error result is
// dropped.
//
// Frame layout (one frame per message, self-delimiting on a stream):
//
//	magic    uint32 = 0x50335157 ("P3QW")
//	version  uint16
//	type     uint16 (message type, messages.go)
//	payload  (message-defined fields)
//	end      uint32 = 0x444E4523 ("#END")
//
// Digests and profile snapshots never travel as bits: profiles are
// append-only (tagging.Profile), so a (owner, version) reference
// reconstructs them bit-exactly on any daemon holding the dataset — the
// same collapse internal/checkpoint uses. Every reference still carries
// the §3.3 wire cost of the object it stands for, which is what the
// traffic accounting charges on both sides.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies a P3Q wire frame ("P3QW").
const Magic uint32 = 0x50335157

// Version is the current protocol version. The Hello handshake carries
// it, and every frame repeats it: daemons reject any frame from a
// different version instead of misparsing it — the format references
// engine state whose derivation may change between versions.
const Version uint16 = 2

// endMarker terminates a frame ("#END"), shared with the checkpoint
// format: reading it proves the payload was consumed in full agreement
// with the writer.
const endMarker uint32 = 0x444E4523

// ErrBadMagic reports input that is not a P3Q wire frame at all.
var ErrBadMagic = errors.New("wire: bad magic (not a P3Q wire frame)")

// MaxListLen bounds every repeated section of a message (digest batches,
// remaining lists, result lists) before allocation. Personal networks,
// views and gossip batches are all far below it; a count above is a
// malformed or hostile frame.
const MaxListLen = 1 << 16

// MaxStringLen bounds the free-text fields (handshake reject reasons).
const MaxStringLen = 1 << 10

// MaxQueryEntries bounds the per-query stats table of a StatsResp.
const MaxQueryEntries = 1 << 20

// Writer serializes wire frames. Errors are sticky: the first write
// failure is retained and every later call is a no-op, so call sites stay
// linear and check the error once per frame.
type Writer struct {
	w       *bufio.Writer
	scratch [8]byte
	err     error
}

// NewWriter returns a Writer over the stream. One Writer per connection:
// frames are emitted back to back and flushed per frame.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.scratch[0] = v
	w.write(w.scratch[:1])
}

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.scratch[:2], v)
	w.write(w.scratch[:2])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	w.write(w.scratch[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:8], v)
	w.write(w.scratch[:8])
}

// I64 writes a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Count writes a list length. Negative lengths are a programming error on
// the writing side and are reported through the sticky error.
func (w *Writer) Count(n int) {
	if n < 0 {
		w.fail("negative count %d", n)
		return
	}
	w.U32(uint32(n))
}

// String writes a length-prefixed string, rejecting oversized ones on the
// writing side so the reader's bound never truncates silently.
func (w *Writer) String(s string) {
	if len(s) > MaxStringLen {
		w.fail("string of %d bytes exceeds the %d-byte limit", len(s), MaxStringLen)
		return
	}
	w.Count(len(s))
	w.write([]byte(s))
}

// fail records a writer-side error.
func (w *Writer) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("wire: "+format, args...)
	}
}

// begin emits a frame header.
func (w *Writer) begin(t Type) {
	w.U32(Magic)
	w.U16(Version)
	w.U16(uint16(t))
}

// finish emits the end marker and flushes the frame onto the stream,
// returning the first error of the whole frame.
func (w *Writer) finish() error {
	w.U32(endMarker)
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Reader deserializes wire frames with the same sticky-error discipline
// as Writer: after the first failure every read returns zero values. One
// Reader per connection.
type Reader struct {
	r       *bufio.Reader
	scratch [8]byte
	err     error
}

// NewReader returns a Reader over the stream.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return nil
	}
	if _, err := io.ReadFull(r.r, r.scratch[:n]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("wire: truncated frame: %w", err)
		return nil
	}
	return r.scratch[:n]
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if b := r.read(1); b != nil {
		return b[0]
	}
	return 0
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if b := r.read(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if b := r.read(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if b := r.read(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads a boolean byte, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("invalid boolean byte")
		return false
	}
}

// Count reads a list length and validates it against max; nothing may be
// allocated from an unvalidated length.
func (r *Reader) Count(max int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		r.Fail(fmt.Sprintf("count %d exceeds limit %d", n, max))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string of at most MaxStringLen bytes.
func (r *Reader) String() string {
	n := r.Count(MaxStringLen)
	if r.err != nil || n == 0 {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("wire: truncated frame: %w", err)
		return ""
	}
	return string(buf)
}

// Fail records a reader-side validation error (beyond the structural ones
// the primitives detect): out-of-range enum values, inconsistent section
// sizes.
func (r *Reader) Fail(msg string) {
	if r.err == nil {
		r.err = errors.New("wire: " + msg)
	}
}

// CapHint caps a validated count for preallocation: a frame may
// legitimately announce a large list, but the reader never trusts it with
// more than a bounded allocation up front — append grows the rest only as
// data actually arrives.
func CapHint(n int) int {
	const max = 1 << 12
	if n > max {
		return max
	}
	return n
}

// header reads and validates a frame header, returning the message type.
func (r *Reader) header() Type {
	if magic := r.U32(); r.err == nil && magic != Magic {
		r.err = ErrBadMagic
	}
	if v := r.U16(); r.err == nil && v != Version {
		r.err = fmt.Errorf("wire: unsupported protocol version %d (this build speaks version %d)", v, Version)
	}
	return Type(r.U16())
}

// end validates the frame's end marker.
func (r *Reader) end() {
	if m := r.U32(); r.err == nil && m != endMarker {
		r.err = errors.New("wire: missing end marker (frame layout disagreement)")
	}
}

// WriteMsg encodes one message as a frame onto w and flushes it.
func WriteMsg(w *Writer, m Msg) error {
	w.begin(m.WireType())
	m.encode(w)
	return w.finish()
}

// ReadMsg decodes the next frame from r, returning the typed message. On
// any error the stream must be considered desynchronized and the
// connection torn down.
func ReadMsg(r *Reader) (Msg, error) {
	t := r.header()
	if r.err != nil {
		return nil, r.err
	}
	m, ok := newMsg(t)
	if !ok {
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
	m.decode(r)
	r.end()
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"p3q/internal/tagging"
	"p3q/internal/topk"
)

// sampleMessages returns one fully populated message per wire type. The
// round-trip test, the fuzz seed corpus and the corpus-drift check all
// derive from this single list, so adding a message type here is the only
// step needed to cover it everywhere.
func sampleMessages() []Msg {
	refs := []DigestRef{
		{Owner: 3, Version: 2, Bytes: 96},
		{Owner: 17, Version: 0, Bytes: 40},
	}
	refs2 := []DigestRef{{Owner: 8, Version: 5, Bytes: 128}}
	users := []tagging.UserID{4, 9, 21}
	tags := []tagging.TagID{2, 7}
	entries := []topk.Entry{{Item: 11, Score: 5}, {Item: 3, Score: 2}}

	return []Msg{
		&Hello{Index: 1, Lo: 20, Hi: 40, Users: 60, Seed: 42, ConfigSum: 0xDEAD, DatasetSum: 0xBEEF},
		&HelloAck{OK: false, Index: 0, Reason: "seed mismatch"},
		&Step{Kind: StepEager, Seq: 9},
		&StepAck{Seq: 9},
		&ExchangeGo{Seq: 9},
		&ExchangeAck{Seq: 9, Divergence: 1},
		&Shutdown{},
		&ShutdownAck{},
		&ViewExchangeReq{Seq: 4, Initiator: 5, Partner: 31, Buf: refs},
		&ViewExchangeResp{Buf: refs2},
		&TopExchangeReq{Seq: 4, Initiator: 5, Partner: 31, Offers: refs},
		&TopExchangeResp{Offers: refs2},
		&DirectFetchReq{Seq: 4, Requester: 5, Owner: 31},
		&DirectFetchResp{Offer: DigestRef{Owner: 31, Version: 3, Bytes: 88}},
		&EagerForwardReq{Seq: 6, Qid: 2, Initiator: 5, Dest: 31, Querier: 4, Tags: tags, Branch: users, Offers: refs},
		&EagerForwardResp{Returned: users, Offers: refs2},
		&PartialResult{Seq: 6, Qid: 2, Initiator: 5, From: 31, Querier: 4, FoundOwners: users, Entries: entries},
		&PartialResultAck{},
		&QuerySubmit{Querier: 4, Tags: tags},
		&QuerySubmitAck{OK: true, Qid: 2},
		&QueryIssue{Querier: 4, Tags: tags},
		&QueryIssueAck{OK: true, Qid: 2},
		&QueryStatus{Qid: 2},
		&QueryStatusResp{
			Known: true, Done: true, Cycles: 7, Used: 12, Needed: 12,
			Forwarded: 640, Returned: 320, PartialResults: 480, Maintenance: 4096,
			Results: entries,
		},
		&Stats{},
		&StatsResp{
			Index: 1, LazyCycles: 30, EagerCycles: 12, Divergence: 0,
			WireMsgs: 210, WireBytes: 68000,
			FrozenEvents: 3, PendingEvents: 8,
			PlanNanos: 1_200_000, CommitNanos: 950_000, SkewMaxNanos: 40_000,
			Data:    PlaneStat{Msgs: 150, Bytes: 50000},
			Ctrl:    PlaneStat{Msgs: 40, Bytes: 12000},
			Gateway: PlaneStat{Msgs: 20, Bytes: 6000},
			Served:  PlaneStat{Msgs: 180, Bytes: 61000},
			Queries: []QueryStat{
				{Qid: 1, Done: true, Forwarded: 640, Returned: 320, PartialResults: 480, Maintenance: 4096},
				{Qid: 2, Done: false, Forwarded: 120},
			},
		},
	}
}

func encodeFrame(t testing.TB, m Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMsg(NewWriter(&buf), m); err != nil {
		t.Fatalf("WriteMsg(%T): %v", m, err)
	}
	return buf.Bytes()
}

// TestSampleMessagesCoverEveryType guards the sample list against rotting
// as message types are added.
func TestSampleMessagesCoverEveryType(t *testing.T) {
	seen := make(map[Type]bool)
	for _, m := range sampleMessages() {
		if seen[m.WireType()] {
			t.Errorf("duplicate sample for type %d", m.WireType())
		}
		seen[m.WireType()] = true
	}
	for ty := Type(0); ty < 64; ty++ {
		if _, known := newMsg(ty); known && !seen[ty] {
			t.Errorf("message type %d has no sample", ty)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		frame := encodeFrame(t, m)
		got, err := ReadMsg(NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Errorf("%T: ReadMsg: %v", m, err)
			continue
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T: round trip mismatch:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

// TestStreamOfFrames checks that back-to-back frames on one stream decode
// in order through a single persistent Reader — the per-connection shape
// the daemon uses.
func TestStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteMsg(w, m); err != nil {
			t.Fatalf("WriteMsg(%T): %v", m, err)
		}
	}
	r := NewReader(&buf)
	for _, want := range msgs {
		got, err := ReadMsg(r)
		if err != nil {
			t.Fatalf("ReadMsg (want %T): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stream mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
	if _, err := ReadMsg(r); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("exhausted stream: got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestTruncation feeds every proper prefix of every sample frame to the
// decoder: each must fail cleanly as an unexpected EOF, never panic and
// never succeed.
func TestTruncation(t *testing.T) {
	for _, m := range sampleMessages() {
		frame := encodeFrame(t, m)
		for cut := 0; cut < len(frame); cut++ {
			if _, err := ReadMsg(NewReader(bytes.NewReader(frame[:cut]))); !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("%T cut at %d/%d: got %v, want io.ErrUnexpectedEOF", m, cut, len(frame), err)
			}
		}
	}
}

func TestBadMagic(t *testing.T) {
	frame := encodeFrame(t, &StepAck{Seq: 1})
	frame[0] ^= 0xFF
	if _, err := ReadMsg(NewReader(bytes.NewReader(frame))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	frame := encodeFrame(t, &StepAck{Seq: 1})
	frame[4] ^= 0xFF // low byte of the version field
	_, err := ReadMsg(NewReader(bytes.NewReader(frame)))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("got %v, want a version mismatch error", err)
	}
}

func TestUnknownType(t *testing.T) {
	frame := encodeFrame(t, &StepAck{Seq: 1})
	frame[6] = 0xFF // low byte of the type field
	frame[7] = 0xFF
	_, err := ReadMsg(NewReader(bytes.NewReader(frame)))
	if err == nil || !strings.Contains(err.Error(), "unknown message type") {
		t.Fatalf("got %v, want an unknown-type error", err)
	}
}

func TestCorruptEndMarker(t *testing.T) {
	frame := encodeFrame(t, &StepAck{Seq: 1})
	frame[len(frame)-1] ^= 0xFF
	_, err := ReadMsg(NewReader(bytes.NewReader(frame)))
	if err == nil || !strings.Contains(err.Error(), "end marker") {
		t.Fatalf("got %v, want an end-marker error", err)
	}
}

// TestOversizedCount crafts a ViewExchangeResp announcing more digest
// refs than MaxListLen: the bound must trip before any allocation is
// attempted.
func TestOversizedCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.begin(TypeViewExchangeResp)
	w.U32(MaxListLen + 1)
	if err := w.finish(); err != nil {
		t.Fatalf("crafting frame: %v", err)
	}
	_, err := ReadMsg(NewReader(&buf))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("got %v, want a count-limit error", err)
	}
}

func TestInvalidBool(t *testing.T) {
	frame := encodeFrame(t, &HelloAck{OK: true, Index: 2})
	frame[8] = 7 // the OK byte, right after the 8-byte header
	_, err := ReadMsg(NewReader(bytes.NewReader(frame)))
	if err == nil || !strings.Contains(err.Error(), "boolean") {
		t.Fatalf("got %v, want an invalid-boolean error", err)
	}
}

func TestInvalidStepKind(t *testing.T) {
	frame := encodeFrame(t, &Step{Kind: StepLazy, Seq: 3})
	frame[8] = 9 // the kind byte
	_, err := ReadMsg(NewReader(bytes.NewReader(frame)))
	if err == nil || !strings.Contains(err.Error(), "step kind") {
		t.Fatalf("got %v, want a step-kind error", err)
	}
}

// TestWriterRejectsOversizedString pins the writer-side guard: oversized
// reject reasons fail loudly at the sender instead of desynchronizing the
// stream.
func TestWriterRejectsOversizedString(t *testing.T) {
	var buf bytes.Buffer
	m := &HelloAck{Reason: strings.Repeat("x", MaxStringLen+1)}
	if err := WriteMsg(NewWriter(&buf), m); err == nil {
		t.Fatal("oversized string was accepted")
	}
}

// TestWriterErrorsAreSticky checks that a failing sink poisons the Writer
// permanently and the frame-level error surfaces it.
func TestWriterErrorsAreSticky(t *testing.T) {
	w := NewWriter(failingWriter{})
	err := WriteMsg(w, &StatsResp{Queries: []QueryStat{{Qid: 1}}})
	if err == nil {
		t.Fatal("write to failing sink succeeded")
	}
	if w.Err() == nil {
		t.Fatal("sticky error not retained")
	}
	if second := WriteMsg(w, &Stats{}); !errors.Is(second, err) && second == nil {
		t.Fatal("poisoned writer accepted another frame")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("sink closed")
}

package e2e

import (
	"testing"

	"p3q/internal/core"
	"p3q/internal/trace"
)

// TestCrossCheckClusterMatchesEngine is the cross-check tier: the same
// trace and the same cycle schedule run twice — once through the
// deterministic in-process engine (the executable spec) and once through
// a four-daemon cluster speaking the wire protocol — and every
// observable must agree: query completion, recall, the exact result
// lists, and the per-query byte tallies summed across the cluster.
//
// This is the test that makes the simulator the oracle for the daemon:
// a protocol change that alters what goes over the wire, or a byte
// accounting drift between the two implementations, fails here even if
// both sides still "work".
func TestCrossCheckClusterMatchesEngine(t *testing.T) {
	const (
		daemons = 4
		users   = 80
		seed    = 7
		warmup  = 8
		maxEag  = 80
	)

	// Reference run: the deterministic engine.
	gen := trace.DefaultGenParams(users)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	ds := trace.Generate(gen)
	eng := core.New(ds, cfg)
	eng.Bootstrap()
	for i := 0; i < warmup; i++ {
		eng.LazyCycle()
	}
	queries := trace.GenerateQueries(ds, 3)
	if len(queries) < 2 {
		t.Fatalf("dataset generated %d queries, want at least 2", len(queries))
	}
	queries = queries[:2]
	var runs []*core.QueryRun
	for _, q := range queries {
		runs = append(runs, eng.IssueQuery(q))
	}
	engCycles := 0
	for ; engCycles < maxEag && !eng.AllQueriesDone(); engCycles++ {
		eng.EagerCycle()
	}
	if !eng.AllQueriesDone() {
		t.Fatalf("engine reference run did not finish within %d eager cycles", maxEag)
	}

	// Cluster run: identical trace, identical schedule, over the wire.
	c := StartCluster(t, daemons, users, seed)
	if err := c.Lead().RunLazyCycles(warmup); err != nil {
		t.Fatalf("cluster warmup: %v", err)
	}
	var qids []uint64
	for i, q := range queries {
		qid, err := c.Lead().SubmitQuery(q)
		if err != nil {
			t.Fatalf("submitting query %d: %v", i, err)
		}
		qids = append(qids, qid)
	}
	for i := 0; i < engCycles; i++ {
		if err := c.Lead().RunEagerCycle(); err != nil {
			t.Fatalf("cluster eager cycle %d: %v", i, err)
		}
	}
	c.RequireNoDivergence(t)

	cl := c.Client(t, 0)
	for i, run := range runs {
		if run.ID != qids[i] {
			t.Errorf("query %d: engine qid %d, cluster qid %d", i, run.ID, qids[i])
		}
		st, err := cl.Status(qids[i])
		if err != nil {
			t.Fatalf("status for query %d: %v", i, err)
		}
		if !st.Known {
			t.Fatalf("cluster does not know query %d", i)
		}
		if !st.Done {
			t.Errorf("query %d: engine done, cluster not done", i)
			continue
		}
		if got, want := int(st.Used), run.ProfilesUsed(); got != want {
			t.Errorf("query %d: cluster used %d profiles, engine used %d", i, got, want)
		}
		if got, want := int(st.Needed), run.ProfilesNeeded(); got != want {
			t.Errorf("query %d: cluster needed %d profiles, engine needed %d", i, got, want)
		}

		want := run.Results()
		if len(st.Results) != len(want) {
			t.Errorf("query %d: cluster returned %d results, engine %d", i, len(st.Results), len(want))
			continue
		}
		for j := range want {
			if st.Results[j] != want[j] {
				t.Errorf("query %d result %d: cluster %+v, engine %+v", i, j, st.Results[j], want[j])
			}
		}

		b := run.Bytes()
		if st.Forwarded != b.Forwarded || st.Returned != b.Returned ||
			st.PartialResults != b.PartialResults || st.Maintenance != b.Maintenance {
			t.Errorf("query %d traffic: cluster {fwd %d ret %d partial %d maint %d}, engine {fwd %d ret %d partial %d maint %d}",
				i, st.Forwarded, st.Returned, st.PartialResults, st.Maintenance,
				b.Forwarded, b.Returned, b.PartialResults, b.Maintenance)
		}
	}
}

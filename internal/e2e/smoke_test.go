package e2e

import (
	"testing"
	"time"

	"p3q/internal/trace"
)

// TestSmokeThreeDaemonQuery is the always-on smoke tier: a three-daemon
// cluster over the in-memory transport answers one query to full recall,
// through the real wire protocol end to end — submit via a member daemon
// (relayed to the lead), eager gossip conversations between daemons,
// partial results to the querier's daemon, status via the gateway client.
// The whole run must finish well inside five seconds of wall time.
func TestSmokeThreeDaemonQuery(t *testing.T) {
	start := time.Now()
	c := StartCluster(t, 3, 60, 11)
	if err := c.Lead().RunLazyCycles(8); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	ds := trace.Generate(c.Gen)
	queries := trace.GenerateQueries(ds, 3)
	if len(queries) == 0 {
		t.Fatal("dataset generated no queries")
	}
	q := queries[0]

	// Submit through a member, not the lead: exercises gateway relay.
	cl := c.Client(t, 1)
	qid, err := cl.Submit(q.Querier, q.Tags)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	done := false
	for i := 0; i < 60 && !done; i++ {
		if err := c.Lead().RunEagerCycle(); err != nil {
			t.Fatalf("eager cycle %d: %v", i, err)
		}
		st, err := cl.Status(qid)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if !st.Known {
			t.Fatal("cluster lost the query")
		}
		done = st.Done
	}
	if !done {
		t.Fatal("query did not complete within 60 eager cycles")
	}

	st, err := cl.Status(qid)
	if err != nil {
		t.Fatalf("final status: %v", err)
	}
	if st.Used != st.Needed {
		t.Errorf("recall incomplete: used %d of %d profiles", st.Used, st.Needed)
	}
	if len(st.Results) == 0 {
		t.Error("done query returned no results")
	}
	if st.Forwarded == 0 && st.Returned == 0 && st.PartialResults == 0 {
		t.Error("query finished with zero attributed traffic; the tallies are dead")
	}
	c.RequireNoDivergence(t)

	for i, d := range c.Daemons {
		stats, err := c.Client(t, i).Stats()
		if err != nil {
			t.Fatalf("stats from daemon %d: %v", i, err)
		}
		if stats.WireMsgs == 0 || stats.WireBytes == 0 {
			t.Errorf("daemon %d reports no wire traffic; the cluster is not actually talking", i)
		}
		_ = d
	}

	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("smoke tier took %v, budget is 5s", elapsed)
	}
}

//go:build e2e

package e2e

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// TestProcessThreeDaemonCluster is the process tier: it builds the real
// p3qd and p3qctl binaries, launches three daemons on loopback TCP
// ports, submits a query through p3qctl against a member daemon, waits
// for full recall, checks the stats endpoints, and shuts the cluster
// down cleanly over the wire. Gated behind the e2e build tag — run it
// with `make e2e`.
func TestProcessThreeDaemonCluster(t *testing.T) {
	const (
		users = 60
		seed  = 11
	)
	bin := t.TempDir()
	p3qd := filepath.Join(bin, "p3qd")
	p3qctl := filepath.Join(bin, "p3qctl")
	gobuild(t, p3qd, "p3q/cmd/p3qd")
	gobuild(t, p3qctl, "p3q/cmd/p3qctl")

	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	joined := strings.Join(addrs, ",")
	var daemons []*exec.Cmd
	for i := range addrs {
		cmd := exec.Command(p3qd,
			"-index", strconv.Itoa(i),
			"-addrs", joined,
			"-users", strconv.Itoa(users),
			"-seed", strconv.Itoa(seed),
			"-eager-every", "10ms",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting daemon %d: %v", i, err)
		}
		daemons = append(daemons, cmd)
	}
	t.Cleanup(func() {
		for _, cmd := range daemons {
			if cmd.ProcessState == nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		}
	})

	// The same deterministic universe the daemons regenerate.
	ds := trace.Generate(trace.DefaultGenParams(users))
	queries := trace.GenerateQueries(ds, 3)
	if len(queries) == 0 {
		t.Fatal("dataset generated no queries")
	}
	q := queries[0]

	// Submit through daemon 1 (a member): exercises the gateway relay.
	// Retries cover cluster start-up; the client dials fresh each time.
	var qid string
	deadline := time.Now().Add(30 * time.Second)
	for {
		out, err := ctl(p3qctl, addrs[1], "submit",
			"-querier", fmt.Sprint(q.Querier),
			"-tags", joinTags(q.Tags))
		if err == nil {
			qid = strings.TrimSpace(strings.TrimPrefix(out, "qid"))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit never succeeded: %v\n%s", err, out)
		}
		time.Sleep(100 * time.Millisecond)
	}

	out, err := ctl(p3qctl, addrs[1], "wait", "-qid", qid, "-timeout", "30s")
	if err != nil {
		t.Fatalf("wait: %v\n%s", err, out)
	}
	status := parseKV(out)
	if status["done"] != "true" {
		t.Fatalf("query not done:\n%s", out)
	}
	if status["used"] != status["needed"] {
		t.Errorf("recall incomplete: used %s of %s profiles", status["used"], status["needed"])
	}
	if !strings.Contains(out, "result item") {
		t.Errorf("done query returned no results:\n%s", out)
	}

	for i, addr := range addrs {
		out, err := ctl(p3qctl, addr, "stats")
		if err != nil {
			t.Fatalf("stats from daemon %d: %v\n%s", i, err, out)
		}
		stats := parseKV(out)
		if stats["divergence"] != "0" {
			t.Errorf("daemon %d diverged from the cluster:\n%s", i, out)
		}
		if stats["wire_msgs"] == "0" || stats["wire_bytes"] == "0" {
			t.Errorf("daemon %d reports no wire traffic:\n%s", i, out)
		}
	}

	// Shut every daemon down over the wire and wait for clean exits.
	for i, addr := range addrs {
		if out, err := ctl(p3qctl, addr, "shutdown"); err != nil {
			t.Errorf("shutdown daemon %d: %v\n%s", i, err, out)
		}
	}
	for i, cmd := range daemons {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon %d exited uncleanly: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Errorf("daemon %d did not exit after shutdown", i)
			_ = cmd.Process.Kill()
		}
	}
}

func gobuild(t *testing.T, out, pkg string) {
	t.Helper()
	cmd := exec.Command("go", "build", "-o", out, pkg)
	cmd.Dir = repoRoot(t)
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, b)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	b, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(b)))
}

// freeAddr reserves a loopback port by listening on it briefly. A daemon
// re-binds it moments later; on loopback the window is not contested.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving a port: %v", err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatalf("releasing the port: %v", err)
	}
	return addr
}

func ctl(bin, addr string, args ...string) (string, error) {
	full := append([]string{"-addr", addr}, args...)
	b, err := exec.Command(bin, full...).CombinedOutput()
	return string(b), err
}

func joinTags(tags []tagging.TagID) string {
	parts := make([]string, len(tags))
	for i, tg := range tags {
		parts[i] = fmt.Sprint(tg)
	}
	return strings.Join(parts, ",")
}

func parseKV(out string) map[string]string {
	kv := make(map[string]string)
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 2 {
			kv[f[0]] = f[1]
		}
	}
	return kv
}

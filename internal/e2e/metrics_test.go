package e2e

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"p3q/internal/trace"
)

// scrape fetches one telemetry page from a daemon's HTTP endpoint.
func scrape(t *testing.T, url string) string {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			_ = cerr // body fully read; close failure is harmless here
		}
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(body)
}

// metricValue extracts one un-labelled sample from an exposition page.
func metricValue(t *testing.T, page, name string) float64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindStringSubmatch(page)
	if m == nil {
		t.Fatalf("metric %s missing from page:\n%s", name, page)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// TestSmokeClusterMetrics is the telemetry smoke tier: every daemon of a
// three-daemon cluster serves a scrapeable Prometheus /metrics page with
// live cycle counters, and the extended stats response carries the
// phase timings and per-plane wire split.
func TestSmokeClusterMetrics(t *testing.T) {
	c := StartCluster(t, 3, 60, 11)
	urls := make([]string, len(c.Daemons))
	for i, d := range c.Daemons {
		addr, err := d.StartHTTP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("daemon %d telemetry listener: %v", i, err)
		}
		urls[i] = fmt.Sprintf("http://%s", addr)
	}

	if err := c.Lead().RunLazyCycles(6); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	ds := trace.Generate(c.Gen)
	q := trace.GenerateQueries(ds, 3)[0]
	cl := c.Client(t, 1)
	if _, err := cl.Submit(q.Querier, q.Tags); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := c.Lead().RunEagerCycle(); err != nil {
			t.Fatalf("eager cycle %d: %v", i, err)
		}
		if c.Lead().AllQueriesDone() {
			break
		}
	}

	for i, url := range urls {
		page := scrape(t, url+"/metrics")
		if got := metricValue(t, page, "p3q_lazy_cycles"); got != 6 {
			t.Errorf("daemon %d: p3q_lazy_cycles = %v, want 6", i, got)
		}
		if got := metricValue(t, page, "p3q_eager_cycles"); got == 0 {
			t.Errorf("daemon %d: p3q_eager_cycles = 0, want non-zero", i)
		}
		if got := metricValue(t, page, "p3q_daemon_index"); got != float64(i) {
			t.Errorf("daemon %d: p3q_daemon_index = %v", i, got)
		}
		if got := metricValue(t, page, "p3q_divergence_total"); got != 0 {
			t.Errorf("daemon %d: p3q_divergence_total = %v, want 0", i, got)
		}
		// Every daemon speaks on the wire, so at least one plane series
		// must be live, and the registry's host plane must have samples.
		if m := regexp.MustCompile(`(?m)^p3q_wire_bytes_total\{plane="[a-z]+"\} [1-9]`).FindString(page); m == "" {
			t.Errorf("daemon %d: all wire planes report zero bytes", i)
		}
		if m := regexp.MustCompile(`(?m)^p3q_query_events_total\{kind="issued"\} 1$`).FindString(page); m == "" {
			t.Errorf("daemon %d: issued-query event counter is not 1", i)
		}
		if got := metricValue(t, page, `p3q_phase_duration_seconds_count{phase="plan"}`); got == 0 {
			t.Errorf("daemon %d: no plan-phase samples", i)
		}
		// pprof rides on the same mux.
		if idx := scrape(t, url+"/debug/pprof/"); idx == "" {
			t.Errorf("daemon %d: empty pprof index", i)
		}
	}

	// The richer stats message agrees with the scrape.
	for i := range c.Daemons {
		st, err := c.Client(t, i).Stats()
		if err != nil {
			t.Fatalf("stats from daemon %d: %v", i, err)
		}
		if st.PlanNanos == 0 || st.CommitNanos == 0 {
			t.Errorf("daemon %d: phase timings empty (plan=%d commit=%d)", i, st.PlanNanos, st.CommitNanos)
		}
		planeSum := st.Data.Bytes + st.Ctrl.Bytes + st.Gateway.Bytes + st.Served.Bytes
		if planeSum != st.WireBytes {
			t.Errorf("daemon %d: plane bytes sum %d != total %d", i, planeSum, st.WireBytes)
		}
		if st.Divergence != 0 {
			t.Errorf("daemon %d: divergence %d", i, st.Divergence)
		}
	}
	c.RequireNoDivergence(t)
}

// Package e2e hosts the daemon test tiers: the in-process smoke tier
// (daemons over an in-memory transport, always on in `go test ./...`),
// the cross-check tier (an N-daemon cluster replayed against the
// deterministic engine, asserting identical recall and identical
// per-query traffic bytes), and the process tier (real p3qd binaries on
// loopback TCP, gated behind the e2e build tag — see process_e2e_test.go
// and `make e2e`).
package e2e

import (
	"fmt"
	"testing"

	"p3q/internal/core"
	"p3q/internal/peer"
	"p3q/internal/trace"
)

// Cluster is an in-process daemon cluster over an in-memory transport.
type Cluster struct {
	Fabric  *peer.Fabric
	Addrs   []string
	Daemons []*peer.Daemon
	Gen     trace.GenParams
	Engine  core.Config
}

// Lead returns the cluster's driving daemon.
func (c *Cluster) Lead() *peer.Daemon { return c.Daemons[0] }

// Client dials the daemon at index i.
func (c *Cluster) Client(t testing.TB, i int) *peer.Client {
	t.Helper()
	cl, err := peer.DialClient(c.Fabric, c.Addrs[i])
	if err != nil {
		t.Fatalf("dialing daemon %d: %v", i, err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// StartCluster brings up n daemons hosting users/n nodes each, connected
// in a full mesh, and registers teardown with the test.
func StartCluster(t testing.TB, n, users int, seed uint64) *Cluster {
	t.Helper()
	c := &Cluster{
		Fabric: peer.NewFabric(),
		Gen:    trace.DefaultGenParams(users),
		Engine: core.DefaultConfig(),
	}
	c.Engine.Seed = seed
	for i := 0; i < n; i++ {
		c.Addrs = append(c.Addrs, fmt.Sprintf("daemon-%d", i))
	}
	for i := 0; i < n; i++ {
		d, err := peer.New(peer.Config{
			Index:  i,
			Addrs:  c.Addrs,
			Gen:    c.Gen,
			Engine: c.Engine,
		}, c.Fabric)
		if err != nil {
			t.Fatalf("building daemon %d: %v", i, err)
		}
		if err := d.Start(); err != nil {
			t.Fatalf("starting daemon %d: %v", i, err)
		}
		c.Daemons = append(c.Daemons, d)
		t.Cleanup(d.Close)
	}
	for i, d := range c.Daemons {
		if err := d.Connect(); err != nil {
			t.Fatalf("connecting daemon %d: %v", i, err)
		}
	}
	return c
}

// RequireNoDivergence fails the test if any daemon saw a wire response
// contradict its replica.
func (c *Cluster) RequireNoDivergence(t testing.TB) {
	t.Helper()
	for i, d := range c.Daemons {
		if n := d.Divergence(); n != 0 {
			t.Errorf("daemon %d recorded %d divergences; the wire protocol disagreed with the replica", i, n)
		}
	}
}

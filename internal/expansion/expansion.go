// Package expansion implements personalized query expansion on top of P3Q —
// the application direction the paper singles out in §1 and §4 ("our
// contribution ... is not limited to top-k processing: we believe that it
// could be used in the context of personalized query expansion").
//
// A query's tags are expanded with the tags that co-occur most strongly
// with them on the same items *within the querier's locally known profiles*
// — her own plus the stored snapshots of her personal network, exactly the
// information P3Q already maintains. Because those profiles belong to her
// implicit acquaintances, two users expand the same tag differently: for a
// computer scientist "matrix" grows toward {linearalgebra, eigenvalues},
// for a film fan toward {scifi, keanureeves} — the §1 disambiguation story,
// applied at query time.
package expansion

import (
	"sort"

	"p3q/internal/tagging"
)

// Expander holds the personalized tag co-occurrence statistics of one user.
// Build it with New from the profiles the user knows locally; it is
// read-only afterwards and safe for concurrent use.
type Expander struct {
	// cooc[t][u] counts, over all known profiles and items, how often tags
	// t and u were used together on the same item by the same user.
	cooc map[tagging.TagID]map[tagging.TagID]int
	// freq[t] counts the (item, user) pairs tag t appears in.
	freq map[tagging.TagID]int
}

// New builds the co-occurrence statistics from a set of profile snapshots.
func New(profiles []tagging.Snapshot) *Expander {
	x := &Expander{
		cooc: make(map[tagging.TagID]map[tagging.TagID]int),
		freq: make(map[tagging.TagID]int),
	}
	for _, p := range profiles {
		x.addProfile(p)
	}
	return x
}

func (x *Expander) addProfile(p tagging.Snapshot) {
	// Group the profile's actions by item; each item's tag set contributes
	// one co-occurrence per unordered tag pair.
	byItem := make(map[tagging.ItemID][]tagging.TagID)
	for _, a := range p.Actions() {
		byItem[a.Item] = append(byItem[a.Item], a.Tag)
	}
	for _, tags := range byItem {
		for _, t := range tags {
			x.freq[t]++
		}
		for i := 0; i < len(tags); i++ {
			for j := 0; j < len(tags); j++ {
				if i == j {
					continue
				}
				m := x.cooc[tags[i]]
				if m == nil {
					m = make(map[tagging.TagID]int)
					x.cooc[tags[i]] = m
				}
				m[tags[j]]++
			}
		}
	}
}

// Tags returns the number of distinct tags seen.
func (x *Expander) Tags() int { return len(x.freq) }

// Cooccurrence returns how often two tags were used together on an item.
func (x *Expander) Cooccurrence(t, u tagging.TagID) int { return x.cooc[t][u] }

// Candidate is one expansion suggestion with its affinity to the query.
type Candidate struct {
	Tag tagging.TagID
	// Affinity is the sum over the query tags of
	// cooc(q, tag)² / freq(tag) — the co-occurrence support weighted by
	// the precision cooc/freq. The precision factor suppresses globally
	// popular tags that co-occur with everything; the support factor
	// suppresses one-off accidental co-occurrences.
	Affinity float64
}

// Suggest returns up to n expansion candidates for the query tags, best
// first (ties broken by ascending tag ID). Query tags themselves are never
// suggested.
func (x *Expander) Suggest(query []tagging.TagID, n int) []Candidate {
	if n <= 0 {
		return nil
	}
	inQuery := make(map[tagging.TagID]struct{}, len(query))
	for _, t := range query {
		inQuery[t] = struct{}{}
	}
	affinity := make(map[tagging.TagID]float64)
	for t := range inQuery {
		for u, c := range x.cooc[t] {
			if _, dup := inQuery[u]; dup {
				continue
			}
			affinity[u] += float64(c) * float64(c) / float64(x.freq[u])
		}
	}
	out := make([]Candidate, 0, len(affinity))
	for tag, a := range affinity {
		out = append(out, Candidate{Tag: tag, Affinity: a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Affinity != out[j].Affinity {
			return out[i].Affinity > out[j].Affinity
		}
		return out[i].Tag < out[j].Tag
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Expand returns the query tags followed by up to n suggested tags.
func (x *Expander) Expand(query []tagging.TagID, n int) []tagging.TagID {
	out := append([]tagging.TagID(nil), query...)
	for _, c := range x.Suggest(query, n) {
		out = append(out, c.Tag)
	}
	return out
}

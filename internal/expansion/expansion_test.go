package expansion

import (
	"testing"

	"p3q/internal/tagging"
	"p3q/internal/trace"
)

// twoTopicProfiles builds profiles where tags 1,2,3 always co-occur on
// items 10x and tags 7,8 on items 20x.
func twoTopicProfiles() []tagging.Snapshot {
	var snaps []tagging.Snapshot
	for u := 0; u < 5; u++ {
		p := tagging.NewProfile(tagging.UserID(u))
		for i := 0; i < 4; i++ {
			it := tagging.ItemID(100 + i)
			p.Add(it, 1)
			p.Add(it, 2)
			if i%2 == 0 {
				p.Add(it, 3)
			}
		}
		for i := 0; i < 3; i++ {
			it := tagging.ItemID(200 + i)
			p.Add(it, 7)
			p.Add(it, 8)
		}
		snaps = append(snaps, p.Snapshot())
	}
	return snaps
}

func TestCooccurrenceCounts(t *testing.T) {
	x := New(twoTopicProfiles())
	// Tags 1 and 2 co-occur on 4 items x 5 users = 20 times.
	if got := x.Cooccurrence(1, 2); got != 20 {
		t.Fatalf("cooc(1,2) = %d, want 20", got)
	}
	if x.Cooccurrence(1, 2) != x.Cooccurrence(2, 1) {
		t.Fatal("co-occurrence not symmetric")
	}
	if got := x.Cooccurrence(1, 7); got != 0 {
		t.Fatalf("cross-topic cooc = %d, want 0", got)
	}
}

func TestSuggestStaysOnTopic(t *testing.T) {
	x := New(twoTopicProfiles())
	got := x.Suggest([]tagging.TagID{1}, 3)
	if len(got) == 0 {
		t.Fatal("no suggestions")
	}
	for _, c := range got {
		if c.Tag == 7 || c.Tag == 8 {
			t.Fatalf("cross-topic tag %d suggested for tag 1", c.Tag)
		}
		if c.Tag == 1 {
			t.Fatal("query tag suggested as its own expansion")
		}
		if c.Affinity <= 0 {
			t.Fatalf("non-positive affinity %f", c.Affinity)
		}
	}
	// Tag 2 (always with 1) must outrank tag 3 (half the time).
	if got[0].Tag != 2 {
		t.Fatalf("top suggestion = %d, want 2", got[0].Tag)
	}
}

func TestSuggestLimitsAndOrder(t *testing.T) {
	x := New(twoTopicProfiles())
	if got := x.Suggest([]tagging.TagID{1}, 1); len(got) != 1 {
		t.Fatalf("Suggest(.., 1) returned %d", len(got))
	}
	if got := x.Suggest([]tagging.TagID{1}, 0); got != nil {
		t.Fatal("Suggest(.., 0) should return nil")
	}
	all := x.Suggest([]tagging.TagID{1}, 100)
	for i := 1; i < len(all); i++ {
		if all[i].Affinity > all[i-1].Affinity {
			t.Fatal("suggestions not sorted by descending affinity")
		}
	}
}

func TestExpandPrependsQuery(t *testing.T) {
	x := New(twoTopicProfiles())
	got := x.Expand([]tagging.TagID{1, 2}, 2)
	if len(got) < 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Expand lost the original query: %v", got)
	}
	seen := make(map[tagging.TagID]bool)
	for _, tg := range got {
		if seen[tg] {
			t.Fatalf("duplicate tag %d in expanded query %v", tg, got)
		}
		seen[tg] = true
	}
}

func TestEmptyExpander(t *testing.T) {
	x := New(nil)
	if x.Tags() != 0 {
		t.Fatal("empty expander has tags")
	}
	if got := x.Suggest([]tagging.TagID{1}, 5); len(got) != 0 {
		t.Fatalf("empty expander suggested %v", got)
	}
	if got := x.Expand([]tagging.TagID{1}, 5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("empty expander Expand = %v", got)
	}
}

func TestPersonalizationDiffersAcrossUsers(t *testing.T) {
	// Two disjoint communities: expansion of the shared tag must differ
	// depending on whose profiles feed the expander — the §1 story.
	shared := tagging.TagID(0)
	mkCommunity := func(base tagging.ItemID, topicTag tagging.TagID, owner tagging.UserID) tagging.Snapshot {
		p := tagging.NewProfile(owner)
		for i := 0; i < 5; i++ {
			p.Add(base+tagging.ItemID(i), shared)
			p.Add(base+tagging.ItemID(i), topicTag)
		}
		return p.Snapshot()
	}
	mathView := New([]tagging.Snapshot{mkCommunity(100, 10, 0), mkCommunity(100, 10, 1)})
	filmView := New([]tagging.Snapshot{mkCommunity(200, 20, 2), mkCommunity(200, 20, 3)})
	m := mathView.Suggest([]tagging.TagID{shared}, 1)
	f := filmView.Suggest([]tagging.TagID{shared}, 1)
	if len(m) != 1 || len(f) != 1 {
		t.Fatal("missing suggestions")
	}
	if m[0].Tag != 10 || f[0].Tag != 20 {
		t.Fatalf("personalized expansions wrong: math=%d film=%d", m[0].Tag, f[0].Tag)
	}
}

func TestExpanderOnGeneratedTrace(t *testing.T) {
	params := trace.DefaultGenParams(100)
	params.MeanItems = 20
	params.Seed = 4
	ds := trace.Generate(params)
	var snaps []tagging.Snapshot
	for _, p := range ds.Profiles[:20] {
		snaps = append(snaps, p.Snapshot())
	}
	x := New(snaps)
	if x.Tags() == 0 {
		t.Fatal("no tags indexed from generated trace")
	}
	// Expanding a real profile's item tags yields suggestions for most
	// non-trivial queries.
	q := ds.Profiles[0].TagsFor(ds.Profiles[0].Items()[0])
	got := x.Expand(q, 3)
	if len(got) < len(q) {
		t.Fatal("Expand dropped query tags")
	}
}

func TestFrequencyNormalizationSuppressesGenericTags(t *testing.T) {
	// A "generic" tag co-occurring with everything everywhere must rank
	// below a specific tag with the same raw co-occurrence count against
	// the query tag.
	var snaps []tagging.Snapshot
	generic, specific, query := tagging.TagID(1), tagging.TagID(2), tagging.TagID(3)
	p := tagging.NewProfile(0)
	// 3 items with query+generic+specific.
	for i := 0; i < 3; i++ {
		it := tagging.ItemID(i)
		p.Add(it, query)
		p.Add(it, generic)
		p.Add(it, specific)
	}
	// 30 unrelated items inflate the generic tag's frequency.
	for i := 10; i < 40; i++ {
		p.Add(tagging.ItemID(i), generic)
		p.Add(tagging.ItemID(i), tagging.TagID(100+i))
	}
	snaps = append(snaps, p.Snapshot())
	x := New(snaps)
	got := x.Suggest([]tagging.TagID{query}, 2)
	if len(got) < 2 {
		t.Fatalf("want 2 suggestions, got %v", got)
	}
	if got[0].Tag != specific {
		t.Fatalf("specific tag should outrank the generic one: %v", got)
	}
}

// Package checkpoint provides the binary codec of the engine
// checkpoint/restore subsystem: a versioned, length-prefixed format in the
// validation discipline of internal/trace/io.go, hardened for untrusted
// input (every count is bounded before anything is allocated, truncation
// surfaces as io.ErrUnexpectedEOF, and a version mismatch is reported as
// such instead of being misparsed).
//
// The codec is deliberately dumb: fixed-width little-endian integers with
// explicit counts, no reflection, no compression. What goes into a
// checkpoint — and in which order — is decided by the owners of the state
// (core.Engine.Snapshot / core.Restore); this package only guarantees that
// a reader either consumes exactly what a writer produced or fails with a
// descriptive error. The owners' coverage is itself lint-enforced: the
// snapshotcomplete analyzer (internal/lint) requires every field of a
// checkpointed struct to be referenced on both the Snapshot and the
// Restore path, or to carry an explicit `//p3q:transient <reason>`
// waiver, so a newly added field cannot silently miss this codec.
//
// File layout:
//
//	magic    uint32 = 0x50335143 ("P3QC")
//	version  uint16
//	payload  (owner-defined sections of fixed-width fields and
//	          count-prefixed lists)
//	end      uint32 = 0x444E4523 ("#END")
//
// All integers are little-endian. Callers bound every count they read with
// Reader.Count(max); the reader never allocates proportionally to an
// unvalidated length.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies a P3Q checkpoint file ("P3QC").
const Magic uint32 = 0x50335143

// Version is the current format version. Restore rejects snapshots written
// by a different version: the format serializes internal engine state whose
// layout may change between versions, so cross-version reads would be
// silently wrong rather than merely lossy.
const Version uint16 = 1

// endMarker terminates a checkpoint ("#END"); reading it proves the stream
// was consumed in full agreement with the writer.
const endMarker uint32 = 0x444E4523

// ErrBadMagic reports input that is not a P3Q checkpoint at all.
var ErrBadMagic = errors.New("checkpoint: bad magic (not a P3Q checkpoint)")

// MaxUsers is the population sanity limit, mirroring trace.Load's. Counts
// of per-user state are bounded by it.
const MaxUsers = 1 << 24

// Writer serializes checkpoint payloads. Errors are sticky: the first write
// failure is retained and every later call is a no-op, so call sites stay
// linear and check Flush (or Err) once at the end.
type Writer struct {
	w       *bufio.Writer
	scratch [8]byte
	err     error
}

// NewWriter returns a Writer emitting the checkpoint header (magic and
// current version) ahead of the payload.
func NewWriter(w io.Writer) *Writer {
	cw := &Writer{w: bufio.NewWriter(w)}
	cw.U32(Magic)
	cw.U16(Version)
	return cw
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.scratch[0] = v
	w.write(w.scratch[:1])
}

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.scratch[:2], v)
	w.write(w.scratch[:2])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	w.write(w.scratch[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:8], v)
	w.write(w.scratch[:8])
}

// I64 writes a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// U64s writes a batch of little-endian uint64s. Hot bulk sections (profile
// action logs) use it to amortize per-field call overhead.
func (w *Writer) U64s(vs []uint64) {
	if w.err != nil {
		return
	}
	var chunk [512]byte
	for len(vs) > 0 {
		n := len(vs)
		if n > len(chunk)/8 {
			n = len(chunk) / 8
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], vs[i])
		}
		w.write(chunk[:n*8])
		vs = vs[n:]
	}
}

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Count writes a list length. Negative lengths are a programming error on
// the writing side and are reported through the sticky error.
func (w *Writer) Count(n int) {
	if n < 0 {
		w.fail("negative count %d", n)
		return
	}
	w.U32(uint32(n))
}

// fail records a writer-side error.
func (w *Writer) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// Close writes the end marker and flushes. It returns the first error of
// the whole write, so a single Close check validates the entire snapshot.
func (w *Writer) Close() error {
	w.U32(endMarker)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader deserializes checkpoint payloads with the same sticky-error
// discipline as Writer: after the first failure every read returns zero
// values, and Err reports what went wrong.
type Reader struct {
	r       *bufio.Reader
	scratch [8]byte
	err     error
}

// NewReader returns a Reader over the stream and validates the header. Call
// Err before trusting any value: a bad magic or a version mismatch is
// already recorded at construction.
func NewReader(r io.Reader) *Reader {
	cr := &Reader{r: bufio.NewReader(r)}
	if magic := cr.U32(); cr.err == nil && magic != Magic {
		cr.err = ErrBadMagic
	}
	if v := cr.U16(); cr.err == nil && v != Version {
		cr.err = fmt.Errorf("checkpoint: unsupported format version %d (this build reads version %d)", v, Version)
	}
	return cr
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return nil
	}
	if _, err := io.ReadFull(r.r, r.scratch[:n]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("checkpoint: truncated input: %w", err)
		return nil
	}
	return r.scratch[:n]
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if b := r.read(1); b != nil {
		return b[0]
	}
	return 0
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if b := r.read(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if b := r.read(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if b := r.read(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// U64s fills out with little-endian uint64s, the batch counterpart of U64.
func (r *Reader) U64s(out []uint64) {
	if r.err != nil {
		return
	}
	var chunk [512]byte
	for len(out) > 0 {
		n := len(out)
		if n > len(chunk)/8 {
			n = len(chunk) / 8
		}
		if _, err := io.ReadFull(r.r, chunk[:n*8]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			r.err = fmt.Errorf("checkpoint: truncated input: %w", err)
			return
		}
		for i := 0; i < n; i++ {
			out[i] = binary.LittleEndian.Uint64(chunk[i*8:])
		}
		out = out[n:]
	}
}

// Bool reads a boolean byte, rejecting values other than 0 and 1 (a strict
// read catches desynchronized streams early).
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("invalid boolean byte")
		return false
	}
}

// Count reads a list length and validates it against max. Always bound
// counts with the tightest limit the context offers — the caller allocates
// based on the result.
func (r *Reader) Count(max int) int {
	n := r.U32()
	if r.err == nil && int64(n) > int64(max) {
		r.Fail("count %d exceeds limit %d", n, max)
		return 0
	}
	return int(n)
}

// End consumes and validates the end marker, proving writer and reader
// agreed on the full payload layout.
func (r *Reader) End() {
	if m := r.U32(); r.err == nil && m != endMarker {
		r.Fail("missing end marker (corrupt or desynchronized stream)")
	}
}

// Fail records a validation failure with context; subsequent reads become
// no-ops.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// CapHint bounds a slice pre-allocation for a validated count: garbage
// input can still claim large counts within the limit, so allocations grow
// by append beyond the hint rather than trusting the count outright.
func CapHint(n int) int {
	const maxPrealloc = 1 << 16
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

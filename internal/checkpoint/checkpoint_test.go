package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.U16(65535)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.I64(-42)
	w.Bool(true)
	w.Bool(false)
	w.Count(3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.U16(); got != 65535 {
		t.Fatalf("U16 = %d", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.Count(10); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	r.End()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	if !errors.Is(r.Err(), ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", r.Err())
	}
}

func TestRejectsVersionSkew(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] ^= 0xFF // flip the version field behind the magic
	r := NewReader(bytes.NewReader(raw))
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "version") {
		t.Fatalf("err = %v, want a version mismatch", r.Err())
	}
}

func TestRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1234)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	r := NewReader(bytes.NewReader(raw[:len(raw)-6]))
	r.U64()
	r.End()
	if !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", r.Err())
	}
}

func TestCountLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Count(1000)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if r.Count(999); r.Err() == nil {
		t.Fatal("Count accepted a value above its limit")
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	first := r.Err()
	if first == nil {
		t.Fatal("empty input accepted")
	}
	r.U64()
	r.Bool()
	r.End()
	if r.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, r.Err())
	}
}

func TestMissingEndMarker(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(99)
	w.U32(99) // payload where End expects the marker
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.U32()
	r.End()
	if r.Err() == nil {
		t.Fatal("End accepted a stream without the marker")
	}
}

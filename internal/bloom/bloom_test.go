package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 4)
	keys := []uint64{0, 1, 42, 1 << 40, ^uint64(0)}
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := New(4096, 5)
	check := func(key uint64) bool {
		f.Add(key)
		return f.Test(key)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFilterTestsNegative(t *testing.T) {
	f := New(1024, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if f.Test(rng.Uint64()) {
			t.Fatal("empty filter returned a positive")
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 1000
	f := NewWithEstimate(n, 0.01)
	rng := rand.New(rand.NewSource(7))
	inserted := make(map[uint64]bool, n)
	for len(inserted) < n {
		k := rng.Uint64()
		if !inserted[k] {
			inserted[k] = true
			f.Add(k)
		}
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		k := rng.Uint64()
		if inserted[k] {
			continue
		}
		if f.Test(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want <= 0.03 for 1%% target", rate)
	}
}

func TestPaperGeometryLowFPR(t *testing.T) {
	// §3.3.1: 20 Kbit filters keep a ~0.1% FPR for typical profiles
	// (mean 249 items, >99% of users under 2000 items).
	f := New(DefaultBits, DefaultHashes)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		f.Add(rng.Uint64())
	}
	fp := 0
	const probes = 50000
	for i := 0; i < probes; i++ {
		if f.Test(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.002 {
		t.Fatalf("paper-geometry FPR %.5f at 500 items, want <= 0.002", rate)
	}
}

func TestSizeBytes(t *testing.T) {
	f := New(DefaultBits, DefaultHashes)
	if got := f.SizeBytes(); got != 2560 {
		t.Fatalf("SizeBytes = %d, want 2560 (20Kbit)", got)
	}
}

func TestGeometryClamps(t *testing.T) {
	f := New(-1, 0)
	if f.Bits() < 64 {
		t.Fatalf("Bits = %d, want >= 64", f.Bits())
	}
	if f.Hashes() < 1 {
		t.Fatalf("Hashes = %d, want >= 1", f.Hashes())
	}
	g := New(65, 2)
	if g.Bits()%64 != 0 {
		t.Fatalf("Bits = %d, want a multiple of 64", g.Bits())
	}
}

func TestNewRoundsUpToWord(t *testing.T) {
	// New documents rounding m up to a multiple of 64 (the word size of
	// the backing array), never down: exact-word sizes stay put, anything
	// else lands on the next word boundary, and SizeBytes follows.
	cases := []struct{ m, wantBits int }{
		{-5, 64}, {0, 64}, {1, 64}, {63, 64}, {64, 64},
		{65, 128}, {127, 128}, {128, 128}, {129, 192},
		{2048, 2048}, {DefaultBits, DefaultBits}, {DefaultBits + 1, DefaultBits + 64},
	}
	for _, c := range cases {
		f := New(c.m, 4)
		if f.Bits() != c.wantBits {
			t.Errorf("New(%d).Bits() = %d, want %d", c.m, f.Bits(), c.wantBits)
		}
		if f.SizeBytes() != c.wantBits/8 {
			t.Errorf("New(%d).SizeBytes() = %d, want %d", c.m, f.SizeBytes(), c.wantBits/8)
		}
	}
	if f := New(64, -3); f.Hashes() != 1 {
		t.Errorf("New(64, -3).Hashes() = %d, want clamp to 1", f.Hashes())
	}
}

func TestNewWithEstimateDegenerateArgs(t *testing.T) {
	for _, p := range []float64{-1, 0, 1, 2} {
		f := NewWithEstimate(0, p)
		f.Add(1)
		if !f.Test(1) {
			t.Fatal("degenerate-parameter filter lost a key")
		}
	}
}

func TestEqual(t *testing.T) {
	a := New(1024, 4)
	b := New(1024, 4)
	if !a.Equal(b) {
		t.Fatal("two empty same-geometry filters not Equal")
	}
	a.Add(5)
	if a.Equal(b) {
		t.Fatal("filters with different contents reported Equal")
	}
	b.Add(5)
	if !a.Equal(b) {
		t.Fatal("filters with same contents not Equal")
	}
	c := New(2048, 4)
	c.Add(5)
	if a.Equal(c) {
		t.Fatal("filters with different geometry reported Equal")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) returned true")
	}
}

func TestClone(t *testing.T) {
	a := New(1024, 4)
	a.Add(1)
	a.Add(2)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not Equal to original")
	}
	b.Add(99)
	if a.Test(99) {
		t.Fatal("mutating the clone changed the original")
	}
	if a.AddCount() != 2 || b.AddCount() != 3 {
		t.Fatalf("AddCounts = %d,%d, want 2,3", a.AddCount(), b.AddCount())
	}
}

func TestUnion(t *testing.T) {
	a := New(1024, 4)
	b := New(1024, 4)
	a.Add(1)
	b.Add(2)
	a.Union(b)
	if !a.Test(1) || !a.Test(2) {
		t.Fatal("union lost a key from one side")
	}
}

func TestUnionGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched geometry did not panic")
		}
	}()
	New(1024, 4).Union(New(2048, 4))
}

func TestReset(t *testing.T) {
	f := New(1024, 4)
	f.Add(1)
	f.Reset()
	if f.Test(1) {
		t.Fatal("Reset did not clear the filter")
	}
	if f.AddCount() != 0 {
		t.Fatalf("AddCount after Reset = %d, want 0", f.AddCount())
	}
	if f.FillRatio() != 0 {
		t.Fatalf("FillRatio after Reset = %f, want 0", f.FillRatio())
	}
}

func TestResetRestoresPostNewState(t *testing.T) {
	// Reset documents returning the filter to its post-New state: Equal to
	// a fresh filter of the same geometry, and refilling it reproduces the
	// exact bit pattern a fresh filter would — the property digest pooling
	// relies on when it reuses a filter across rebuilds.
	f := New(1024, 4)
	for i := uint64(0); i < 40; i++ {
		f.Add(i * 977)
	}
	f.Reset()
	if fresh := New(1024, 4); !f.Equal(fresh) {
		t.Fatal("Reset filter not Equal to a fresh same-geometry filter")
	}
	g := New(1024, 4)
	for i := uint64(0); i < 20; i++ {
		f.Add(i)
		g.Add(i)
	}
	if !f.Equal(g) || f.AddCount() != g.AddCount() {
		t.Fatal("refilled Reset filter diverged from a fresh filter")
	}
}

func TestAddCountTallySemantics(t *testing.T) {
	// AddCount is an insertion tally, not a distinct-key cardinality:
	// duplicates count each time, and Union sums both sides.
	f := New(1024, 4)
	f.Add(7)
	f.Add(7)
	if f.AddCount() != 2 {
		t.Fatalf("AddCount after duplicate Add = %d, want 2", f.AddCount())
	}
	g := New(1024, 4)
	g.Add(8)
	f.Union(g)
	if f.AddCount() != 3 {
		t.Fatalf("AddCount after Union = %d, want 3 (2 + 1)", f.AddCount())
	}
	f.Reset()
	if f.AddCount() != 0 {
		t.Fatalf("AddCount after Reset = %d, want 0", f.AddCount())
	}
}

func TestFillRatioMonotone(t *testing.T) {
	f := New(1024, 4)
	prev := f.FillRatio()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		f.Add(rng.Uint64())
		cur := f.FillRatio()
		if cur < prev {
			t.Fatal("FillRatio decreased after Add")
		}
		prev = cur
	}
	if prev <= 0 || prev > 1 {
		t.Fatalf("FillRatio = %f out of (0,1]", prev)
	}
}

func TestEstimateFPRBounds(t *testing.T) {
	f := New(1024, 4)
	if got := f.EstimateFPR(); got != 0 {
		t.Fatalf("empty filter EstimateFPR = %f, want 0", got)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		f.Add(rng.Uint64())
	}
	got := f.EstimateFPR()
	if got <= 0 || got > 1 {
		t.Fatalf("EstimateFPR = %f out of (0,1]", got)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a := New(2048, 5)
	b := New(2048, 5)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		k := rng.Uint64()
		a.Add(k)
		b.Add(k)
	}
	if !a.Equal(b) {
		t.Fatal("same insertions produced different filters")
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(DefaultBits, DefaultHashes)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkTest(b *testing.B) {
	f := New(DefaultBits, DefaultHashes)
	for i := 0; i < 1000; i++ {
		f.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Test(uint64(i))
	}
}

// Package bloom implements the Bloom filter used by P3Q to encode profile
// digests. Per §2.1 of the paper, "a digest of profile is also stored along
// with each neighbour ... encoded using a Bloom filter and only contains the
// items tagged by each user"; the evaluation (§3.3.1) uses 20 Kbit filters
// for a false-positive rate around 0.1%.
//
// The implementation follows Bloom's original construction with the standard
// double-hashing scheme of Kirsch & Mitzenmacher: the k indexes are derived
// from two 64-bit hashes h1 + i*h2. Keys are 64-bit values; callers hash
// their domain objects into uint64 first (tagging item IDs are widened
// directly, then mixed).
package bloom

import (
	"math"
	"math/bits"
)

// DefaultBits is the filter size used by the paper's evaluation: 20 Kbit
// (2.5 KB), which yields roughly 0.1% false positives for profiles of up to
// about 2,000 items with 10 hash functions.
const DefaultBits = 20 * 1024

// DefaultHashes is the number of hash functions paired with DefaultBits.
const DefaultHashes = 10

// Filter is a fixed-size Bloom filter. The zero value is not usable; create
// filters with New or NewWithEstimate. Filter is not safe for concurrent
// mutation.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // number of hash functions
	count int    // number of Add calls (approximate cardinality)
}

// New returns a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64; m < 64 becomes 64, and k < 1 becomes 1.
func New(m int, k int) *Filter {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	words := (m + 63) / 64
	return &Filter{
		bits: make([]uint64, words),
		m:    uint64(words * 64),
		k:    k,
	}
}

// NewWithEstimate returns a filter sized for n keys at the target
// false-positive probability p, using the optimal m = -n ln p / (ln 2)^2 and
// k = (m/n) ln 2.
func NewWithEstimate(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	ln2 := math.Ln2
	m := int(math.Ceil(-float64(n) * math.Log(p) / (ln2 * ln2)))
	k := int(math.Round(float64(m) / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// mix64 is the splitmix64 finalizer, a high-quality 64-bit mixing function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashes derives the double-hashing pair for a key.
func hashes(key uint64) (h1, h2 uint64) {
	h1 = mix64(key)
	h2 = mix64(key ^ 0x9e3779b97f4a7c15)
	h2 |= 1 // odd, so the probe sequence covers the table
	return
}

// Add inserts the key into the filter.
func (f *Filter) Add(key uint64) {
	h1, h2 := hashes(key)
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.count++
}

// Test reports whether the key may be in the filter. False positives are
// possible; false negatives are not.
func (f *Filter) Test(key uint64) bool {
	h1, h2 := hashes(key)
	for i := 0; i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() int { return int(f.m) }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.k }

// SizeBytes returns the wire size of the filter in bytes. This is the figure
// used for digest bandwidth accounting.
func (f *Filter) SizeBytes() int { return int(f.m) / 8 }

// AddCount returns the number of Add calls performed (with duplicate keys
// counted each time). Union adds the other side's count; Reset zeroes it.
// It is an insertion tally, not a distinct-key cardinality.
func (f *Filter) AddCount() int { return f.count }

// FillRatio returns the fraction of bits set.
func (f *Filter) FillRatio() float64 {
	ones := 0
	for _, w := range f.bits {
		ones += bits.OnesCount64(w)
	}
	return float64(ones) / float64(f.m)
}

// EstimateFPR returns the expected false-positive probability given the
// current fill ratio: fill^k.
func (f *Filter) EstimateFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Equal reports whether both filters have identical geometry and bit
// contents. Two digests of the same unchanged profile are Equal; this is how
// the lazy mode detects "Digest(ul) does not change" (Algorithm 1).
func (f *Filter) Equal(g *Filter) bool {
	if g == nil || f.m != g.m || f.k != g.k || len(f.bits) != len(g.bits) {
		return false
	}
	for i, w := range f.bits {
		if g.bits[i] != w {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits:  make([]uint64, len(f.bits)),
		m:     f.m,
		k:     f.k,
		count: f.count,
	}
	copy(c.bits, f.bits)
	return c
}

// Union ORs the other filter into this one. Both filters must have the same
// geometry; Union panics otherwise (it is a programming error, not a runtime
// condition).
func (f *Filter) Union(g *Filter) {
	if f.m != g.m || f.k != g.k {
		panic("bloom: Union of filters with different geometry")
	}
	for i := range f.bits {
		f.bits[i] |= g.bits[i]
	}
	f.count += g.count
}

// Reset clears all bits and zeroes the AddCount tally, returning the
// filter to its post-New state while keeping the geometry (and the backing
// allocation) intact — a Reset filter is Equal to a fresh New(m, k).
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

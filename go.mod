module p3q

go 1.22

package p3q_test

import (
	"bytes"
	"testing"

	"p3q"
)

// TestPublicAPIQuickstart exercises the full documented flow through the
// root package only.
func TestPublicAPIQuickstart(t *testing.T) {
	params := p3q.DefaultTraceParams(120)
	params.MeanItems = 20
	params.Seed = 3
	ds := p3q.GenerateTrace(params)

	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 20, 5
	nets := p3q.IdealNetworks(ds, cfg.S)

	engine := p3q.NewEngine(ds, cfg)
	engine.SeedIdealNetworks(nets)

	q, ok := p3q.QueryFor(ds, 7, 1)
	if !ok {
		t.Fatal("no query for user 7")
	}
	run := engine.IssueQuery(q)
	if run == nil {
		t.Fatal("IssueQuery returned nil")
	}
	for i := 0; i < 50 && !run.Done(); i++ {
		engine.EagerCycle()
	}
	if !run.Done() {
		t.Fatal("query did not complete")
	}

	ref := p3q.NewCentralizedWithNets(ds, nets, cfg.K)
	if r := p3q.Recall(run.Results(), ref.TopK(q)); r != 1 {
		t.Fatalf("recall at completion = %f, want 1", r)
	}
}

func TestPublicAPIOrganicConvergence(t *testing.T) {
	params := p3q.DefaultTraceParams(80)
	params.MeanItems = 15
	params.Seed = 5
	ds := p3q.GenerateTrace(params)

	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 10, 5
	engine := p3q.NewEngine(ds, cfg)
	engine.Bootstrap()
	engine.RunLazy(20)

	filled := 0
	for u := 0; u < engine.Users(); u++ {
		if engine.Node(p3q.UserID(u)).PersonalNetwork().Len() > 0 {
			filled++
		}
	}
	if filled < engine.Users()*8/10 {
		t.Fatalf("only %d/%d nodes discovered neighbours organically", filled, engine.Users())
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	ds := p3q.GenerateTrace(p3q.DefaultTraceParams(50))
	var buf bytes.Buffer
	if err := p3q.SaveTrace(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := p3q.LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Users() != ds.Users() {
		t.Fatalf("round trip lost users: %d vs %d", got.Users(), ds.Users())
	}
	stats := p3q.TraceStatistics(got)
	if stats.Users != 50 || stats.Actions == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPublicAPIChanges(t *testing.T) {
	ds := p3q.GenerateTrace(p3q.DefaultTraceParams(60))
	changes := p3q.GenerateChanges(ds, p3q.ChangeParams{
		FracUsers: 0.2, MeanNew: 5, SigmaNew: 0.5, MaxNew: 20, Seed: 9,
	})
	if len(changes) == 0 {
		t.Fatal("no changes generated")
	}
	if added := p3q.ApplyChanges(ds, changes); added == 0 {
		t.Fatal("changes added nothing")
	}
}

func TestPublicAPIProfileAndVocabulary(t *testing.T) {
	v := p3q.NewVocabulary()
	matrix := v.Tag("matrix")
	item := v.Item("https://en.wikipedia.org/wiki/Matrix_(mathematics)")
	p := p3q.NewProfile(0)
	if !p.Add(item, matrix) {
		t.Fatal("Add failed")
	}
	if v.TagName(matrix) != "matrix" {
		t.Fatal("vocabulary lost the tag name")
	}
}

package p3q_test

import (
	"fmt"
	"time"

	"p3q"
	"p3q/internal/core"
)

// ExampleEngine_IssueQuery demonstrates the full protocol flow: generate a
// workload, seed converged personal networks, issue a personalized query
// and refine it to completion.
func ExampleEngine_IssueQuery() {
	params := p3q.DefaultTraceParams(120)
	params.MeanItems = 20
	params.Seed = 3
	ds := p3q.GenerateTrace(params)

	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 20, 5
	nets := p3q.IdealNetworks(ds, cfg.S)
	engine := p3q.NewEngine(ds, cfg)
	engine.SeedIdealNetworks(nets)

	q, _ := p3q.QueryFor(ds, 7, 1)
	run := engine.IssueQuery(q)
	for !run.Done() {
		engine.EagerCycle()
	}

	ref := p3q.NewCentralizedWithNets(ds, nets, cfg.K)
	fmt.Printf("recall %.1f with %d/%d profiles\n",
		p3q.Recall(run.Results(), ref.TopK(q)),
		run.ProfilesUsed(), run.ProfilesNeeded())
	// Output: recall 1.0 with 21/21 profiles
}

// ExampleExpander shows personalized query expansion: the tags co-occurring
// with a query inside the querier's known profiles.
func ExampleExpander() {
	v := p3q.NewVocabulary()
	matrix, algebra := v.Tag("matrix"), v.Tag("linearalgebra")
	wiki := v.Item("wikipedia.org/Matrix_(mathematics)")
	course := v.Item("mit.edu/linear-algebra")

	p := p3q.NewProfile(0)
	p.Add(wiki, matrix)
	p.Add(wiki, algebra)
	p.Add(course, matrix)
	p.Add(course, algebra)

	x := p3q.NewExpander([]p3q.Snapshot{p.Snapshot()})
	for _, c := range x.Suggest([]p3q.TagID{matrix}, 1) {
		fmt.Println(v.TagName(c.Tag))
	}
	// Output: linearalgebra
}

// ExampleClock drives the bimodal protocol in simulated wall-clock time:
// lazy maintenance every minute, eager query gossip every five seconds.
func ExampleClock() {
	params := p3q.DefaultTraceParams(100)
	params.MeanItems = 20
	params.Seed = 4
	ds := p3q.GenerateTrace(params)

	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 20, 5
	engine := p3q.NewEngine(ds, cfg)
	engine.SeedIdealNetworks(p3q.IdealNetworks(ds, cfg.S))

	clock := core.NewClock(engine, time.Minute, 5*time.Second)
	q, _ := p3q.QueryFor(ds, 3, 2)
	run := engine.IssueQuery(q)
	elapsed := clock.RunUntilQueriesDone(2 * time.Minute)
	fmt.Printf("done=%v within %v\n", run.Done(), elapsed <= 2*time.Minute)
	// Output: done=true within true
}

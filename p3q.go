// Package p3q is a from-scratch Go implementation of P3Q, the fully
// decentralized gossip-based protocol for personalized top-k query
// processing in collaborative tagging systems, by Bai, Bertier, Guerraoui,
// Kermarrec and Leroy ("Gossiping Personalized Queries", EDBT 2010).
//
// P3Q associates each user with implicit social acquaintances — users with
// similar tagging behaviour — discovered and maintained through a two-layer
// gossip protocol (the lazy mode), and processes top-k queries by gossiping
// them among those acquaintances, computing partial results collaboratively
// and refining them cycle by cycle at the querier with an incremental NRA
// (the eager mode).
//
// This root package is the stable public surface: it re-exports the
// engine, the workload substrate and the evaluation metrics. A minimal
// session looks like:
//
//	ds := p3q.GenerateTrace(p3q.DefaultTraceParams(1000))
//	nets := p3q.IdealNetworks(ds, 100)
//	cfg := p3q.DefaultConfig()
//	cfg.S, cfg.C = 100, 10
//	engine := p3q.NewEngine(ds, cfg)
//	engine.SeedIdealNetworks(nets) // or Bootstrap + RunLazy to converge
//	q, _ := p3q.QueryFor(ds, 42, 1)
//	run := engine.IssueQuery(q)
//	for !run.Done() {
//	    engine.EagerCycle()
//	    fmt.Println(run.Results()) // refined every cycle
//	}
//
// Both modes run multicore in both halves of a cycle: a lazy cycle plans
// every node's exchanges and an eager cycle plans every (initiator, query)
// gossip concurrently on Config.Workers goroutines, then the same number
// of shard committers apply the planned effects — the population is
// partitioned into Workers contiguous node index shards, and each
// committer applies exactly its own nodes' intents in a canonical order,
// with per-shard traffic ledgers merged canonically afterwards. Runs are
// byte-for-byte deterministic — identical personal networks, query
// results, reached-sets and traffic counters — for every worker count
// (and across repeated runs with the same seed). The contract is enforced
// statically as well as by tests: the determinism linter (internal/lint,
// run as `make lint` — which drives both `go run ./cmd/p3qlint ./...` and
// the `go vet -vettool` path) bans order-sensitive map iteration,
// host-clock and ambient-randomness use, and undisciplined RNG sharing in
// the engine packages, enforces the plan/commit phase contract
// (//p3q:phase), requires checkpointed structs to be fully covered by the
// snapshot codec (//p3q:transient), and flags per-call allocations on
// //p3q:hotpath functions.
//
// Delivery is synchronous by default — every message of a cycle lands at
// the cycle boundary, the paper's PeerSim round model. Setting
// Config.Latency to a LatencyModel (FixedLatency, UniformLatency,
// LogNormalLatency, GeoLatency, or a spec via ParseLatency) switches the
// eager mode to event-driven asynchronous delivery: forwarded lists,
// returned portions and partial results arrive at model-drawn times on
// the engine's virtual clock (Engine.Now), queriers merge partial results
// the moment they arrive, queries can settle between cycle boundaries,
// and every run reports per-query QueryRun.TimeToFirstResult and
// QueryRun.TimeToFullRecall. Messages in flight toward a departed node
// freeze and are redelivered when it revives. Determinism is unaffected:
// output stays byte-for-byte identical for every Workers value, and a
// zero-delay model reproduces the synchronous engine's protocol state —
// networks, traffic, completed-query results — byte for byte (only the
// in-progress top-k bounds of an unfinished query may differ, because
// partial lists are merged per arrival rather than per cycle batch).
//
// Queries survive querier churn: if the querier departs mid-query the run
// stalls (QueryRun.State reports QueryStalled, and the engine stops
// spending eager cycles on it) and resumes automatically when the querier
// revives, still reaching full recall.
//
// See ARCHITECTURE.md for the engine design and determinism contract, the
// examples directory for runnable scenarios, and internal/experiments for
// the harness reproducing every table and figure of the paper.
package p3q

import (
	"io"
	"time"

	"p3q/internal/baseline"
	"p3q/internal/core"
	"p3q/internal/expansion"
	"p3q/internal/sim"
	"p3q/internal/similarity"
	"p3q/internal/tagging"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// Identifier types of the data model.
type (
	// UserID identifies a user (and her node).
	UserID = tagging.UserID
	// ItemID identifies a tagged item.
	ItemID = tagging.ItemID
	// TagID identifies a tag.
	TagID = tagging.TagID
	// Action is one tagging action: (item, tag) by the profile owner.
	Action = tagging.Action
	// Profile is a user's append-only tagging history.
	Profile = tagging.Profile
	// Vocabulary interns human-readable tag and item names.
	Vocabulary = tagging.Vocabulary
)

// NewProfile returns an empty profile owned by the given user.
func NewProfile(owner UserID) *Profile { return tagging.NewProfile(owner) }

// NewVocabulary returns an empty name-interning vocabulary.
func NewVocabulary() *Vocabulary { return tagging.NewVocabulary() }

// Protocol engine types.
type (
	// Config holds the protocol parameters (s, c, r, alpha, k, ...).
	Config = core.Config
	// Engine drives a population of P3Q nodes cycle by cycle.
	Engine = core.Engine
	// Node is one P3Q participant.
	Node = core.Node
	// QueryRun is the querier-side handle of an in-flight query.
	QueryRun = core.QueryRun
	// QueryBytes is the per-query traffic breakdown.
	QueryBytes = core.QueryBytes
)

// DefaultConfig returns the laptop-scale protocol configuration (s=100,
// c=10, r=10, alpha=0.5, k=10, the paper's Bloom geometry, planning and
// commit on all cores, synchronous delivery).
func DefaultConfig() Config { return core.DefaultConfig() }

// Latency model types (asynchronous eager delivery, Config.Latency).
type (
	// LatencyModel draws per-message one-way delivery delays.
	LatencyModel = sim.LatencyModel
	// FixedLatency is a constant delay.
	FixedLatency = sim.FixedLatency
	// UniformLatency draws uniformly from [Min, Max].
	UniformLatency = sim.UniformLatency
	// LogNormalLatency draws heavy-tailed Internet-like delays.
	LogNormalLatency = sim.LogNormalLatency
	// GeoLatency models zoned deployments with a zone-pair latency matrix.
	GeoLatency = sim.GeoLatency
)

// ParseLatency builds a latency model from a CLI-style spec ("none",
// "fixed:50ms", "uniform:10ms,200ms", "lognormal:1s,0.8",
// "geo:3,25ms,120ms").
func ParseLatency(spec string) (LatencyModel, error) { return sim.ParseLatency(spec) }

// NewGeoLatency builds the symmetric zone model of the geo CLI spec: intra
// within a zone, inter across zones, nodes assigned round-robin.
func NewGeoLatency(zones int, intra, inter time.Duration) GeoLatency {
	return sim.NewGeoLatency(zones, intra, inter)
}

// NewEngine builds an engine over the dataset. Call Bootstrap and RunLazy
// to converge organically, or SeedIdealNetworks to start converged.
func NewEngine(ds *Dataset, cfg Config) *Engine { return core.New(ds, cfg) }

// RestoreEngine rebuilds an engine from a checkpoint written by
// Engine.Snapshot. With ds == nil the dataset is materialized from the
// checkpoint's embedded profile logs; with a dataset (the deterministically
// regenerated base trace), its profiles are validated as prefixes of the
// checkpointed logs and fast-forwarded in place — the converge-once,
// fork-many path. The restored engine continues byte-for-byte as the
// snapshotted engine would, for any Config.Workers value and under any
// Config.Latency model; all other protocol parameters must match the
// snapshotting configuration.
func RestoreEngine(r io.Reader, ds *Dataset, cfg Config) (*Engine, error) {
	return core.Restore(r, ds, cfg)
}

// Workload substrate types.
type (
	// Dataset is a set of user profiles over a shared item/tag space.
	Dataset = trace.Dataset
	// TraceParams configures the synthetic trace generator.
	TraceParams = trace.GenParams
	// Query is a personalized top-k query (querier + tags).
	Query = trace.Query
	// Change is a set of new tagging actions for one user.
	Change = trace.Change
	// ChangeParams configures a profile change-set draw.
	ChangeParams = trace.ChangeParams
	// TraceStats summarizes a dataset's marginals.
	TraceStats = trace.Stats
)

// DefaultTraceParams returns generator parameters matching the paper's
// delicious crawl shape, scaled to the given number of users.
func DefaultTraceParams(users int) TraceParams { return trace.DefaultGenParams(users) }

// GenerateTrace builds a synthetic collaborative-tagging dataset.
func GenerateTrace(p TraceParams) *Dataset { return trace.Generate(p) }

// LoadTrace reads a dataset in the binary trace format (e.g. a converted
// real crawl).
func LoadTrace(r io.Reader) (*Dataset, error) { return trace.Load(r) }

// SaveTrace writes a dataset in the binary trace format.
func SaveTrace(w io.Writer, ds *Dataset) error { return trace.Save(w, ds) }

// TraceStatistics computes a dataset's summary statistics.
func TraceStatistics(ds *Dataset) TraceStats { return trace.ComputeStats(ds) }

// GenerateQueries produces one query per user as in §3.1.1 of the paper: a
// random item of the user's profile and the tags she used on it.
func GenerateQueries(ds *Dataset, seed uint64) []Query { return trace.GenerateQueries(ds, seed) }

// QueryFor builds the query of a single user with the same procedure.
func QueryFor(ds *Dataset, u UserID, seed uint64) (Query, bool) { return trace.QueryFor(ds, u, seed) }

// GenerateChanges draws a profile change-set without applying it (§3.4.1).
func GenerateChanges(ds *Dataset, p ChangeParams) []Change { return trace.GenerateChanges(ds, p) }

// ApplyChanges applies a change-set and returns the number of actions added.
func ApplyChanges(ds *Dataset, changes []Change) int { return trace.ApplyChanges(ds, changes) }

// Similarity oracle types.
type (
	// Neighbour is a scored personal-network candidate.
	Neighbour = similarity.Neighbour
)

// IdealNetworks computes every user's ideal personal network (top-s most
// similar users) offline from global information — the evaluation's ground
// truth and the input of Engine.SeedIdealNetworks.
func IdealNetworks(ds *Dataset, s int) [][]Neighbour { return similarity.IdealNetworks(ds, s) }

// Result types.
type (
	// Entry is one row of a top-k result list.
	Entry = topk.Entry
	// Centralized is the global-knowledge baseline of §3.2.2.
	Centralized = baseline.Centralized
)

// Recall returns |got ∩ want| / |want| over the item sets — the paper's
// result-quality metric.
func Recall(got, want []Entry) float64 { return topk.Recall(got, want) }

// NewCentralized builds the centralized reference (ideal networks of size
// s, exact top-k of size k) the protocol's recall is measured against.
func NewCentralized(ds *Dataset, s, k int) *Centralized { return baseline.NewCentralized(ds, s, k) }

// NewCentralizedWithNets builds the reference reusing precomputed networks.
func NewCentralizedWithNets(ds *Dataset, nets [][]Neighbour, k int) *Centralized {
	return baseline.NewCentralizedWithNets(ds, nets, k)
}

// Extension types (paper §4).
type (
	// Expander computes personalized query expansions from the profiles a
	// node knows locally — the application direction suggested in §1/§4 of
	// the paper.
	Expander = expansion.Expander
	// ExpansionCandidate is one suggested expansion tag with its affinity.
	ExpansionCandidate = expansion.Candidate
	// Snapshot is an immutable point-in-time view of a profile (a stored
	// replica). Obtain them from Node.KnownProfiles or Profile.Snapshot.
	Snapshot = tagging.Snapshot
)

// NewExpander builds personalized tag co-occurrence statistics from profile
// snapshots (typically Node.KnownProfiles()).
func NewExpander(profiles []Snapshot) *Expander { return expansion.New(profiles) }

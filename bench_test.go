// Benchmarks regenerating every table and figure of the paper's evaluation
// at a reduced scale (one per artifact; see DESIGN.md §3 for the index),
// plus ablation benches for the design choices called out in DESIGN.md §5.
//
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Bench output measures the cost of regenerating each artifact; the
// artifact values themselves are printed by cmd/p3qsim.
package p3q_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"p3q"
	"p3q/internal/analysis"
	"p3q/internal/core"
	"p3q/internal/experiments"
	"p3q/internal/obs"
	"p3q/internal/topk"
	"p3q/internal/trace"
)

// benchCfg is the reduced scale used by the artifact benches.
func benchCfg() experiments.Config {
	return experiments.Config{
		Users:     120,
		S:         20,
		K:         10,
		MeanItems: 18,
		Queries:   25,
		Cycles:    8,
		Seed:      99,
	}
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	r, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("experiment %s not registered", name)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := r.Run(cfg)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", name)
		}
	}
}

func BenchmarkTable1StorageDistribution(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig2Convergence(b *testing.B)           { benchExperiment(b, "fig2") }
func BenchmarkFig3AlphaSweep(b *testing.B)            { benchExperiment(b, "fig3") }
func BenchmarkFig4StorageSweep(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5Storage(b *testing.B)               { benchExperiment(b, "fig5") }
func BenchmarkFig6QueryBandwidth(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkTable2ProfileChanges(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig7AURLazy(b *testing.B)               { benchExperiment(b, "fig7a") }
func BenchmarkFig7bAURHetero(b *testing.B)            { benchExperiment(b, "fig7b") }
func BenchmarkFig8UsersReached(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9AUREager(b *testing.B)              { benchExperiment(b, "fig9") }
func BenchmarkFig10NeighbourDiscovery(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11Churn(b *testing.B)                { benchExperiment(b, "fig11a") }
func BenchmarkFig11cIncompleteQueries(b *testing.B)   { benchExperiment(b, "fig11c") }
func BenchmarkTheoryRAlpha(b *testing.B)              { benchExperiment(b, "theory") }
func BenchmarkBandwidthSummary(b *testing.B)          { benchExperiment(b, "bandwidth") }

// --- Ablation benches (DESIGN.md §5) ---

// benchWorld builds a seeded engine world for the ablations.
func benchWorld(b *testing.B, mutate func(*core.Config)) (*p3q.Dataset, *p3q.Engine) {
	b.Helper()
	params := p3q.DefaultTraceParams(120)
	params.MeanItems = 18
	params.Seed = 99
	ds := p3q.GenerateTrace(params)
	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 20, 5
	if mutate != nil {
		mutate(&cfg)
	}
	// Digest geometry proportional to the reduced profile sizes (the
	// paper's 20 Kbit digests are sized for ~249-item profiles).
	cfg.BloomBits, cfg.BloomHashes = 2048, 6
	e := p3q.NewEngine(ds, cfg)
	e.SeedIdealNetworks(p3q.IdealNetworks(ds, cfg.S))
	return ds, e
}

// BenchmarkAblationThreeStepExchange quantifies the 3-step profile exchange
// of Algorithm 1 against naively shipping every advertised profile: it runs
// lazy cycles and reports actual vs hypothetical bytes per cycle.
func BenchmarkAblationThreeStepExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, e := benchWorld(b, nil)
		e.RunLazy(5)
		actual := e.Network().Total().TotalBytes()
		naive := e.NaiveExchangeBytes()
		if naive == 0 {
			b.Fatal("no exchanges happened")
		}
		b.ReportMetric(float64(actual)/float64(e.Users())/5, "actualB/user/cycle")
		b.ReportMetric(float64(naive)/float64(e.Users())/5, "naiveB/user/cycle")
	}
}

// BenchmarkAblationBloomDigest compares the Bloom digest against an exact
// item-list digest at the paper's profile scale (mean 249 items per user):
// the 20 Kbit filter undercuts exact 16-byte item hashes there, while small
// profiles would be cheaper to ship exactly — the design choice only pays
// off for realistic tagging histories.
func BenchmarkAblationBloomDigest(b *testing.B) {
	params := p3q.DefaultTraceParams(300)
	params.MeanItems = 249 // the crawl's mean (§3.3.1)
	params.Seed = 99
	ds := p3q.GenerateTrace(params)
	cfg := p3q.DefaultConfig()
	bloomBytes := cfg.BloomBits / 8
	for i := 0; i < b.N; i++ {
		exact, bloomTotal := 0, 0
		for _, p := range ds.Profiles {
			exact += p.NumItems() * 16 // exact item hashes
			bloomTotal += bloomBytes
		}
		b.ReportMetric(float64(exact)/float64(ds.Users()), "exactB/digest")
		b.ReportMetric(float64(bloomTotal)/float64(ds.Users()), "bloomB/digest")
	}
}

// BenchmarkAblationEagerBias compares the eager destination bias (prefer
// personal-network members, Algorithm 3 lines 4-6) against uniform random
// destinations: completion cycles per query.
func BenchmarkAblationEagerBias(b *testing.B) {
	run := func(disable bool) float64 {
		ds, e := benchWorld(b, func(cfg *core.Config) { cfg.DisableEagerBias = disable })
		queries := p3q.GenerateQueries(ds, 3)[:20]
		for _, q := range queries {
			e.IssueQuery(q)
		}
		e.RunEager(60)
		total := 0.0
		for _, qr := range e.Queries() {
			total += float64(qr.Cycles())
		}
		return total / float64(len(queries))
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "cycles/query(biased)")
		b.ReportMetric(run(true), "cycles/query(random)")
	}
}

// BenchmarkAblationNRAIncremental compares the incremental NRA of
// Algorithm 4 against recomputing the exact aggregation from scratch every
// cycle, on the same stream of partial result lists.
func BenchmarkAblationNRAIncremental(b *testing.B) {
	// Build a realistic stream of partial lists from a real query.
	ds, e := benchWorld(b, nil)
	q, _ := p3q.QueryFor(ds, 0, 1)
	qr := e.IssueQuery(q)
	e.RunEager(60)
	if !qr.Done() {
		b.Fatal("query did not complete")
	}
	// Synthesize an equivalent batch stream.
	var lists [][]topk.Entry
	central := p3q.NewCentralized(ds, 20, 10)
	for u := 0; u < 30; u++ {
		entries := central.TopKOverNetwork(trace.Query{Querier: p3q.UserID(u), Tags: q.Tags}, nil)
		if len(entries) > 0 {
			lists = append(lists, entries)
		}
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := topk.NewNRA(10)
			for _, l := range lists {
				n.Run([][]topk.Entry{l})
			}
			// NRA's native cost metric: entries scanned before the early
			// stop, out of the total available (the whole point of the
			// algorithm is keeping this fraction below 1).
			b.ReportMetric(float64(n.ScannedEntries()), "scanned")
			b.ReportMetric(float64(n.TotalEntries()), "available")
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var acc [][]topk.Entry
			scanned := 0
			for _, l := range lists {
				acc = append(acc, l)
				topk.TopOf(topk.SumLists(acc), 10)
				for _, a := range acc {
					scanned += len(a)
				}
			}
			b.ReportMetric(float64(scanned), "scanned")
		}
	})
}

// BenchmarkAnalysisRAlpha measures the closed-form evaluation itself.
func BenchmarkAnalysisRAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, a := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
			analysis.RAlpha(a, 990, 10)
		}
	}
}

// BenchmarkEagerCycle measures the protocol's per-cycle cost with a live
// query load.
func BenchmarkEagerCycle(b *testing.B) {
	ds, e := benchWorld(b, nil)
	for _, q := range p3q.GenerateQueries(ds, 3)[:20] {
		e.IssueQuery(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EagerCycle()
	}
}

// BenchmarkLazyCycle measures the maintenance cost per lazy cycle.
func BenchmarkLazyCycle(b *testing.B) {
	_, e := benchWorld(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LazyCycle()
	}
}

// --- Parallel lazy-mode benches (plan/commit engine) ---

// lazyBenchData memoizes the large-population trace so every worker-count
// sub-bench measures the engine, not the generator. Sharing the dataset is
// safe: lazy cycles never mutate profiles.
var lazyBenchData struct {
	sync.Once
	ds *p3q.Dataset
}

func lazyBenchDataset(b *testing.B) *p3q.Dataset {
	b.Helper()
	lazyBenchData.Do(func() {
		params := p3q.DefaultTraceParams(5000)
		params.MeanItems = 20
		params.Seed = 7
		lazyBenchData.ds = p3q.GenerateTrace(params)
	})
	return lazyBenchData.ds
}

// lazyWorkerCounts returns the worker counts worth comparing on this
// machine: sequential, all cores, and a mid point, deduplicated.
func lazyWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		if n > 3 {
			counts = append(counts, n/2)
		}
		counts = append(counts, n)
	}
	return counts
}

// attachObs attaches a telemetry registry to a bench engine. The registry
// is fingerprint-neutral by contract (pinned by TestObsFingerprintInvariance)
// but turns on per-shard commit timing, so the tracked benches measure the
// engine exactly as the instrumented daemons and cmd/p3qsim run it — the
// benchjson alloc gate then also holds the instrumentation itself to the
// allocation budget.
func attachObs(e *p3q.Engine) *obs.Registry {
	reg := obs.New()
	e.SetObs(reg)
	return reg
}

// reportPhaseMetrics converts a PhaseDurations window into per-op plan and
// commit metrics, so the bench artifacts track the two phases separately —
// the commit phase was the Amdahl limit of both cycle kinds before it was
// sharded, and these metrics pin how much of each cycle it still costs.
// With a registry attached it also reports the mean and max max-min commit
// skew across the registry's samples: the imbalance between the fastest
// and slowest commit shard of a cycle, the number the locality-aware
// scheduling work (ROADMAP) wants to shrink.
func reportPhaseMetrics(b *testing.B, e *p3q.Engine, reg *obs.Registry, plan0, commit0 time.Duration) {
	plan1, commit1 := e.PhaseDurations()
	b.ReportMetric(float64(plan1-plan0)/float64(b.N), "plan-ns/op")
	b.ReportMetric(float64(commit1-commit0)/float64(b.N), "commit-ns/op")
	if reg != nil {
		if _, max, mean, samples := reg.CommitSkew(); samples > 0 {
			b.ReportMetric(float64(mean), "commit-skew-ns")
			b.ReportMetric(float64(max), "commit-skew-max-ns")
		}
	}
}

// allocBaseline snapshots the cumulative heap-allocation counter so the
// engine benches can report the alloc-bytes/node budget the pooled plan
// slots are held to. TotalAlloc is process-wide and keeps counting while
// the timer is stopped, so callers snapshot right before the measured loop
// and keep out-of-timer work inside it to a minimum.
func allocBaseline() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.TotalAlloc
}

// reportAllocPerNode reports the heap bytes allocated per cycle per node
// since the alloc0 baseline: the steady-state allocation budget the pooled
// engine is measured against (see ARCHITECTURE.md, "Memory layout").
func reportAllocPerNode(b *testing.B, users int, alloc0 uint64) {
	b.ReportMetric(float64(allocBaseline()-alloc0)/float64(b.N)/float64(users), "alloc-B/node")
}

// BenchmarkLazyConvergence5k times one lazy-mode cycle over a 5000-user
// population converging from Bootstrap, per worker count. The engine is
// byte-for-byte deterministic in Workers, so every sub-bench performs the
// exact same protocol work and the per-op times compare wall clock
// directly: the speedup at workers=GOMAXPROCS over workers=1 is the
// multicore yield of the parallel planning phase plus the sharded commit
// phase (reported separately via plan-ns/op and commit-ns/op).
func BenchmarkLazyConvergence5k(b *testing.B) {
	for _, workers := range lazyWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ds := lazyBenchDataset(b)
			cfg := p3q.DefaultConfig()
			cfg.S, cfg.C = 50, 10
			cfg.BloomBits, cfg.BloomHashes = 2048, 6
			cfg.Workers = workers
			cfg.Seed = 7
			e := p3q.NewEngine(ds, cfg)
			e.Bootstrap()
			e.RunLazy(2) // past the empty-network cold start
			reg := attachObs(e)
			plan0, commit0 := e.PhaseDurations()
			alloc0 := allocBaseline()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.LazyCycle()
			}
			b.StopTimer()
			reportAllocPerNode(b, e.Users(), alloc0)
			reportPhaseMetrics(b, e, reg, plan0, commit0)
		})
	}
}

// BenchmarkEagerBurst5k times one eager cycle over the same 5000-user
// population while it serves a burst of in-flight queries, per worker
// count — the eager counterpart of BenchmarkLazyConvergence5k. The engine
// is byte-for-byte deterministic in Workers, so every sub-bench performs
// the same protocol work and the per-op times compare wall clock directly.
// When the in-flight burst drains, a fresh one is issued outside the
// timer, so every measured cycle carries live query load.
func BenchmarkEagerBurst5k(b *testing.B) {
	for _, workers := range lazyWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ds := lazyBenchDataset(b)
			cfg := p3q.DefaultConfig()
			cfg.S, cfg.C = 50, 10
			cfg.BloomBits, cfg.BloomHashes = 2048, 6
			cfg.Workers = workers
			cfg.Seed = 7
			e := p3q.NewEngine(ds, cfg)
			e.Bootstrap()
			e.RunLazy(4) // grow personal networks so queries have branches to gossip
			queries := p3q.GenerateQueries(ds, 11)
			next := 0
			issueBurst := func() {
				for issued := 0; issued < 512 && next < len(queries); next++ {
					if e.IssueQuery(queries[next]) != nil {
						issued++
					}
				}
			}
			issueBurst()
			reg := attachObs(e)
			plan0, commit0 := e.PhaseDurations()
			alloc0 := allocBaseline()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e.AllQueriesDone() {
					b.StopTimer()
					if next >= len(queries) {
						next = 0
						queries = p3q.GenerateQueries(ds, uint64(13+i))
					}
					issueBurst()
					b.StartTimer()
				}
				e.EagerCycle()
			}
			b.StopTimer()
			reportAllocPerNode(b, e.Users(), alloc0)
			reportPhaseMetrics(b, e, reg, plan0, commit0)
		})
	}
}

// BenchmarkLazyChurn5k times lazy cycles over the same population under
// 30% departures, the regime where probe retries and view healing shift
// work between the planning and commit phases.
func BenchmarkLazyChurn5k(b *testing.B) {
	for _, workers := range lazyWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ds := lazyBenchDataset(b)
			cfg := p3q.DefaultConfig()
			cfg.S, cfg.C = 50, 10
			cfg.BloomBits, cfg.BloomHashes = 2048, 6
			cfg.Workers = workers
			cfg.Seed = 7
			e := p3q.NewEngine(ds, cfg)
			e.Bootstrap()
			e.RunLazy(2)
			e.Kill(0.3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.LazyCycle()
			}
		})
	}
}

// lazyBench100kData memoizes the 100k-user trace separately from the 5k
// one: building it costs real time and memory, so it is only paid when the
// 100k bench actually runs.
var lazyBench100kData struct {
	sync.Once
	ds *p3q.Dataset
}

func lazyBench100kDataset(b *testing.B) *p3q.Dataset {
	b.Helper()
	lazyBench100kData.Do(func() {
		params := p3q.DefaultTraceParams(100000)
		params.MeanItems = 20
		params.Seed = 7
		lazyBench100kData.ds = p3q.GenerateTrace(params)
	})
	return lazyBench100kData.ds
}

// BenchmarkLazyConvergence100k is the million-node scaling probe: one lazy
// cycle over a 100,000-user population, 20x the tracked 5k bench. The
// pooled plan slots and dense hot-state layouts are sized to keep the
// alloc-B/node metric flat between the two scales — a superlinear rise
// here means a per-node cost snuck back into the cycle path.
//
// It is skipped under -short so the quick per-commit CI pass (which runs
// every bench once) stays fast; the scheduled bench workflow runs it at
// full length and tracks it alongside the 5k benches.
func BenchmarkLazyConvergence100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k population bench skipped in -short mode")
	}
	for _, workers := range lazyWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ds := lazyBench100kDataset(b)
			cfg := p3q.DefaultConfig()
			cfg.S, cfg.C = 50, 10
			cfg.BloomBits, cfg.BloomHashes = 2048, 6
			cfg.Workers = workers
			cfg.Seed = 7
			e := p3q.NewEngine(ds, cfg)
			e.Bootstrap()
			e.RunLazy(1) // one warm-up cycle: enough to leave the cold start
			reg := attachObs(e)
			plan0, commit0 := e.PhaseDurations()
			alloc0 := allocBaseline()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.LazyCycle()
			}
			b.StopTimer()
			reportAllocPerNode(b, e.Users(), alloc0)
			reportPhaseMetrics(b, e, reg, plan0, commit0)
		})
	}
}

// Asynceager: event-driven asynchronous eager delivery. The paper
// evaluates the eager mode in PeerSim-style synchronous rounds — every
// partial result lands exactly at a cycle boundary. A deployed system has
// per-message latency: results trickle in mid-cycle, queriers refine their
// top-k the moment each list arrives, and slow messages can miss the next
// gossip cycle entirely.
//
// This example runs the same query burst twice — synchronously and under a
// heavy-tailed (log-normal) latency model — and compares when results
// actually become visible: the time-to-first-result and time-to-full-recall
// distributions on the engine's virtual clock (5 s per eager cycle, the
// paper's §3.5 deployment assumption).
//
// Run with: go run ./examples/asynceager
package main

import (
	"fmt"
	"sort"
	"time"

	"p3q"
)

func main() {
	params := p3q.DefaultTraceParams(300)
	params.MeanItems = 25
	params.Seed = 11
	ds := p3q.GenerateTrace(params)

	base := p3q.DefaultConfig()
	base.S, base.C = 30, 6
	nets := p3q.IdealNetworks(ds, base.S)
	reference := p3q.NewCentralizedWithNets(ds, nets, base.K)

	// A heavy-tailed Internet-like model: most messages take ~1 s one-way,
	// the tail takes far longer than the 5 s eager period — those gossips
	// miss the next cycle, the latency-vs-recall trade-off made visible.
	model := p3q.LogNormalLatency{Median: time.Second, Sigma: 1.0}

	fmt.Println("one querier, watched closely")
	fmt.Println("----------------------------")
	watchOne(ds, nets, reference, base, model)

	fmt.Println()
	fmt.Println("90 queries, arrival-time distributions (seconds of virtual time)")
	fmt.Println("----------------------------------------------------------------")
	fmt.Println("model       ttfr p50   ttfr p90   full p50   full p90   full p99")
	burst(ds, nets, base, nil, "sync")
	burst(ds, nets, base, model, "lognormal")
	fmt.Println()
	fmt.Println("synchronous rounds quantize every arrival to a 5 s boundary; under")
	fmt.Println("the latency model most queries see their first result in ~2 s, while")
	fmt.Println("the log-normal tail stretches full recall past the synchronous time.")
}

// watchOne follows a single query under the latency model, printing the
// estimate as it sharpens between cycle boundaries.
func watchOne(ds *p3q.Dataset, nets [][]p3q.Neighbour, reference *p3q.Centralized, cfg p3q.Config, model p3q.LatencyModel) {
	cfg.Latency = model
	engine := p3q.NewEngine(ds, cfg)
	engine.SeedIdealNetworks(nets)

	q, ok := p3q.QueryFor(ds, 17, 7)
	if !ok {
		panic("querier has an empty profile")
	}
	want := reference.TopK(q)
	run := engine.IssueQuery(q)
	fmt.Printf("t=%5.1fs  recall %.2f  (local processing, %d/%d profiles)\n",
		engine.Now().Seconds(), p3q.Recall(run.Results(), want),
		run.ProfilesUsed(), run.ProfilesNeeded())
	for !run.Done() {
		engine.EagerCycle()
		fmt.Printf("t=%5.1fs  recall %.2f  (%d/%d profiles, %d msgs in flight)\n",
			engine.Now().Seconds(), p3q.Recall(run.Results(), want),
			run.ProfilesUsed(), run.ProfilesNeeded(), run.InFlight())
	}
	if ttfr, ok := run.TimeToFirstResult(); ok {
		fmt.Printf("first partial result arrived %.2fs after issue\n", ttfr.Seconds())
	}
	if full, ok := run.TimeToFullRecall(); ok {
		fmt.Printf("full recall reached %.2fs after issue (mid-cycle: not a multiple of 5s)\n", full.Seconds())
	}
}

// burst issues the first 90 queries of the standard per-user workload and
// prints arrival-time quantiles.
func burst(ds *p3q.Dataset, nets [][]p3q.Neighbour, cfg p3q.Config, model p3q.LatencyModel, label string) {
	cfg.Latency = model
	engine := p3q.NewEngine(ds, cfg)
	engine.SeedIdealNetworks(nets)

	var runs []*p3q.QueryRun
	for _, q := range p3q.GenerateQueries(ds, 13) {
		if run := engine.IssueQuery(q); run != nil {
			runs = append(runs, run)
		}
		if len(runs) == 90 {
			break
		}
	}
	for cycle := 0; cycle < 200 && !engine.AllQueriesDone(); cycle++ {
		engine.EagerCycle()
	}

	var ttfr, full []float64
	for _, run := range runs {
		if d, ok := run.TimeToFirstResult(); ok {
			ttfr = append(ttfr, d.Seconds())
		}
		if d, ok := run.TimeToFullRecall(); ok {
			full = append(full, d.Seconds())
		}
	}
	fmt.Printf("%-10s  %8.2f   %8.2f   %8.2f   %8.2f   %8.2f\n",
		label, quantile(ttfr, 0.5), quantile(ttfr, 0.9),
		quantile(full, 0.5), quantile(full, 0.9), quantile(full, 0.99))
}

// quantile returns the q-quantile of a copy of xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1))]
}

// Mobile: the paper's lambda=1 heterogeneous scenario — "a network where
// the users are for instance mobile phones with limited memory" (§3.1.2).
// Most devices store only a handful of profiles; the example reports the
// storage/latency/bandwidth trade-off P3Q offers them, after converging the
// personal networks organically through the lazy mode (no oracle).
//
// Run with: go run ./examples/mobile
package main

import (
	"fmt"

	"p3q"
	"p3q/internal/randx"
)

func main() {
	const users = 250
	params := p3q.DefaultTraceParams(users)
	params.MeanItems = 25
	params.Seed = 7
	ds := p3q.GenerateTrace(params)

	// Heterogeneous storage: Poisson(lambda=1) over the Table 1 classes,
	// scaled to s — most devices get the two smallest classes.
	cfg := p3q.DefaultConfig()
	cfg.S = 30
	rng := randx.NewSource(11)
	classes := rng.AssignStorage(users, 1, randx.TailModeFor(1))
	cfg.CAssign = make([]int, users)
	hist := map[int]int{}
	for i, class := range classes {
		c := class * cfg.S / 1000
		if c < 1 {
			c = 1
		}
		cfg.CAssign[i] = c
		hist[c]++
	}
	fmt.Println("storage classes (profiles stored -> devices):")
	for _, c := range []int{1, 3, 6, 15, 30} {
		if hist[c] > 0 {
			fmt.Printf("  c=%-3d %4d devices\n", c, hist[c])
		}
	}

	// Organic convergence: bootstrap random views, run the lazy mode.
	engine := p3q.NewEngine(ds, cfg)
	engine.Bootstrap()
	fmt.Println("\nconverging personal networks (lazy mode)...")
	engine.RunLazy(40)

	// Every device asks one personalized query.
	reference := p3q.NewCentralized(ds, cfg.S, cfg.K)
	queries := p3q.GenerateQueries(ds, 3)
	for _, q := range queries {
		engine.IssueQuery(q)
	}
	for cycle := 0; cycle < 25 && !engine.AllQueriesDone(); cycle++ {
		engine.EagerCycle()
	}

	var recall, cycles, bytesAll float64
	runs := engine.Queries()
	for _, run := range runs {
		recall += p3q.Recall(run.Results(), reference.TopK(run.Query))
		cycles += float64(run.Cycles())
		bytesAll += float64(run.Bytes().Total())
	}
	n := float64(len(runs))
	fmt.Printf("\nafter organic convergence, %d queries (one per device):\n", len(runs))
	fmt.Printf("  average recall vs centralized baseline: %.2f\n", recall/n)
	fmt.Printf("  average eager cycles per query:         %.1f (= %.0fs at 5s/cycle)\n",
		cycles/n, cycles/n*5)
	fmt.Printf("  average query payload traffic:          %.1f KB\n", bytesAll/n/1000)
	fmt.Println("\nlimited-memory devices trade storage for a few gossip cycles of latency;")
	fmt.Println("the first cycle already returns most relevant items (paper §3.2.2).")
}

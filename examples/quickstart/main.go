// Quickstart: build a small collaborative tagging network, converge the
// personal networks, issue one personalized top-k query and watch the eager
// mode refine its results cycle by cycle until they match the centralized
// reference.
//
// Every cycle below plans and commits on all cores (Config.Workers), yet
// the printed numbers are byte-for-byte identical for any worker count —
// the engine's determinism contract (see ARCHITECTURE.md). Delivery here
// is synchronous: results land exactly at cycle boundaries, the paper's
// round model. The examples/asynceager walkthrough runs the same protocol
// with per-message latency instead.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"p3q"
)

func main() {
	// A synthetic delicious-like trace: 300 users, community structure,
	// long-tail item/tag popularity.
	params := p3q.DefaultTraceParams(300)
	params.MeanItems = 30
	params.Seed = 2024
	ds := p3q.GenerateTrace(params)
	fmt.Println("trace:", p3q.TraceStatistics(ds).String())

	// Protocol setup: personal networks of 40 neighbours, profiles of the
	// 8 most similar stored locally, split parameter alpha = 0.5.
	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 40, 8

	// Start from converged personal networks (the offline oracle); the
	// examples/mobile scenario shows organic convergence instead.
	nets := p3q.IdealNetworks(ds, cfg.S)
	engine := p3q.NewEngine(ds, cfg)
	engine.SeedIdealNetworks(nets)

	// One personalized query, generated the paper's way: an item of the
	// user's profile and the tags she used on it.
	querier := p3q.UserID(17)
	q, ok := p3q.QueryFor(ds, querier, 7)
	if !ok {
		panic("querier has an empty profile")
	}
	fmt.Printf("\nuser %d queries with %d tags (from item %d)\n", q.Querier, len(q.Tags), q.Item)

	reference := p3q.NewCentralizedWithNets(ds, nets, cfg.K)
	want := reference.TopK(q)

	run := engine.IssueQuery(q)
	fmt.Printf("cycle %2d: recall %.2f  (local processing, %d/%d profiles)\n",
		0, p3q.Recall(run.Results(), want), run.ProfilesUsed(), run.ProfilesNeeded())
	for cycle := 1; !run.Done(); cycle++ {
		engine.EagerCycle()
		fmt.Printf("cycle %2d: recall %.2f  (%d/%d profiles, %d users reached)\n",
			cycle, p3q.Recall(run.Results(), want),
			run.ProfilesUsed(), run.ProfilesNeeded(), run.UsersReached())
	}

	fmt.Println("\nfinal top-k (item, relevance):")
	for i, e := range run.Results() {
		marker := ""
		if e.Item == q.Item {
			marker = "   <- the item the query was generated from"
		}
		fmt.Printf("  %2d. item %-6d score %d%s\n", i+1, e.Item, e.Score, marker)
	}
	b := run.Bytes()
	fmt.Printf("\nquery traffic: %d B forwarded lists, %d B returned lists, %d B partial results\n",
		b.Forwarded, b.Returned, b.PartialResults)
}

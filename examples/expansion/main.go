// Expansion: the application direction the paper points to in §1 and §4 —
// personalized query expansion. A user issues a deliberately underspecified
// query (a single tag); the expander suggests additional tags from the tag
// co-occurrence statistics of the profiles her node already stores (her
// implicit acquaintances), and the expanded query recovers results the bare
// query misses.
//
// The example also demonstrates the §4 explicit-network deployment: the
// same machinery running over declared friend lists with frozen membership
// (Config.StaticNetworks), where "only the eager mode of P3Q would
// suffice".
//
// Run with: go run ./examples/expansion
package main

import (
	"fmt"

	"p3q"
)

func main() {
	params := p3q.DefaultTraceParams(300)
	params.MeanItems = 30
	params.Seed = 31
	ds := p3q.GenerateTrace(params)

	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 40, 10
	nets := p3q.IdealNetworks(ds, cfg.S)
	engine := p3q.NewEngine(ds, cfg)
	engine.SeedIdealNetworks(nets)
	reference := p3q.NewCentralizedWithNets(ds, nets, cfg.K)

	// A full query (all tags the user put on one item) is the ground truth;
	// the user actually types only the first tag.
	querier := p3q.UserID(11)
	full, _ := p3q.QueryFor(ds, querier, 5)
	if len(full.Tags) < 2 {
		panic("pick a seed whose query has several tags")
	}
	bare := p3q.Query{Querier: querier, Tags: full.Tags[:1]}
	want := reference.TopK(full)

	run := func(q p3q.Query) []p3q.Entry {
		r := engine.IssueQuery(q)
		for !r.Done() {
			engine.EagerCycle()
		}
		return r.Results()
	}

	fmt.Printf("user %d means the %d-tag query %v but types only tag %v\n\n",
		querier, len(full.Tags), full.Tags, bare.Tags)

	bareResults := run(bare)
	fmt.Printf("bare query recall vs full-query reference:     %.2f\n",
		p3q.Recall(bareResults, want))

	// Personalized expansion from the profiles this node already stores.
	x := p3q.NewExpander(engine.Node(querier).KnownProfiles())
	suggestions := x.Suggest(bare.Tags, 3)
	fmt.Printf("expander suggests: ")
	for _, c := range suggestions {
		fmt.Printf("tag %d (affinity %.2f)  ", c.Tag, c.Affinity)
	}
	fmt.Println()

	expanded := p3q.Query{Querier: querier, Tags: x.Expand(bare.Tags, 3)}
	expandedResults := run(expanded)
	fmt.Printf("expanded query recall vs full-query reference: %.2f\n\n",
		p3q.Recall(expandedResults, want))

	// Explicit-network deployment: declared friends, frozen membership.
	fmt.Println("--- explicit (declared) networks, §4 ---")
	explicitCfg := cfg
	explicitCfg.StaticNetworks = true
	explicitEngine := p3q.NewEngine(ds, explicitCfg)
	contacts := make([][]p3q.UserID, ds.Users())
	for u := 0; u < ds.Users(); u++ {
		for d := 1; d <= 25; d++ { // an arbitrary declared friend list
			contacts[u] = append(contacts[u], p3q.UserID((u+d*13)%ds.Users()))
		}
	}
	explicitEngine.SeedExplicitNetworks(contacts)
	r := explicitEngine.IssueQuery(full)
	for !r.Done() {
		explicitEngine.EagerCycle()
	}
	fmt.Printf("query over declared friends completed in %d cycles, %d profiles used\n",
		r.Cycles(), r.ProfilesUsed())
	fmt.Println("(declared friends rarely share interests — implicit networks personalize better)")
	fmt.Printf("recall vs implicit-network reference: %.2f\n",
		p3q.Recall(r.Results(), want))
}

// Socialsearch: the paper's §1 motivation, reproduced end to end. The query
// "matrix" is ambiguous — a computer scientist means the mathematical
// notion, a Keanu Reeves fan means the movie. A centralized engine returns
// the same ranking to everyone; P3Q personalizes the results through each
// user's implicit social network, built purely from tagging behaviour.
//
// Run with: go run ./examples/socialsearch
package main

import (
	"fmt"

	"p3q"
)

func main() {
	v := p3q.NewVocabulary()
	matrix := v.Tag("matrix")

	// The item space: mathematical resources and movie pages, all of which
	// could plausibly be tagged "matrix".
	mathItems := []p3q.ItemID{
		v.Item("wikipedia.org/Matrix_(mathematics)"),
		v.Item("wolfram.com/Eigenvalue"),
		v.Item("mit.edu/linear-algebra-course"),
		v.Item("numpy.org/matrix-api"),
	}
	movieItems := []p3q.ItemID{
		v.Item("imdb.com/The_Matrix_1999"),
		v.Item("imdb.com/The_Matrix_Reloaded"),
		v.Item("fandom.com/Neo"),
		v.Item("imdb.com/Keanu_Reeves"),
	}
	mathTags := []p3q.TagID{matrix, v.Tag("math"), v.Tag("linearalgebra"), v.Tag("eigenvalues")}
	movieTags := []p3q.TagID{matrix, v.Tag("movie"), v.Tag("scifi"), v.Tag("keanureeves")}

	// Two implicit communities of 20 users each, plus two probes: user 0 is
	// a mathematician, user 1 a film fan. Nobody declares a friend list —
	// similarity emerges from common tagging actions alone.
	const users = 42
	ds := &p3q.Dataset{NumItems: v.NumItems(), NumTags: v.NumTags()}
	for u := 0; u < users; u++ {
		p := p3q.NewProfile(p3q.UserID(u))
		items, tags := mathItems, mathTags
		if u%2 == 1 {
			items, tags = movieItems, movieTags
		}
		// Each user tags most of her community's items with a rotating
		// subset of the community vocabulary, always including "matrix".
		for i, it := range items {
			if (u/2+i)%4 == 3 {
				continue // not everyone tags everything
			}
			p.Add(it, matrix)
			p.Add(it, tags[1+(u/2+i)%3])
		}
		ds.Profiles = append(ds.Profiles, p)
	}

	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 12, 4
	cfg.K = 4
	nets := p3q.IdealNetworks(ds, cfg.S)
	engine := p3q.NewEngine(ds, cfg)
	engine.SeedIdealNetworks(nets)

	ask := func(who p3q.UserID, label string) {
		q := p3q.Query{Querier: who, Tags: []p3q.TagID{matrix}}
		run := engine.IssueQuery(q)
		for !run.Done() {
			engine.EagerCycle()
		}
		fmt.Printf("%s (user %d) searches \"matrix\":\n", label, who)
		for i, e := range run.Results() {
			fmt.Printf("  %d. %-40s score %d\n", i+1, v.ItemName(e.Item), e.Score)
		}
		fmt.Println()
	}

	ask(0, "the mathematician")
	ask(1, "the film fan")

	fmt.Println("Same query, different implicit acquaintances, different answers —")
	fmt.Println("no central server, no explicit social network.")
}

// Churn: the robustness scenario of §3.4.2 — a massive fraction of users
// departs simultaneously, and the surviving queriers keep asking. Stored
// replicas act as involuntary backups of departed users' profiles; the
// example reports how recall degrades with the departure rate and how many
// queries can no longer be answered perfectly.
//
// The engine handles the querier side of churn too: a query whose querier
// departs stalls (state QueryStalled, counters frozen, no cycles burned)
// and resumes to full recall when she revives — and under asynchronous
// delivery (Config.Latency, see examples/asynceager) messages in flight
// toward a departed node freeze and are redelivered on revival. Each
// departure row runs multicore and is byte-for-byte reproducible.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"

	"p3q"
)

func main() {
	params := p3q.DefaultTraceParams(300)
	params.MeanItems = 25
	params.Seed = 5
	ds := p3q.GenerateTrace(params)

	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 30, 6
	nets := p3q.IdealNetworks(ds, cfg.S)
	reference := p3q.NewCentralizedWithNets(ds, nets, cfg.K)

	fmt.Println("departures   queries   avg recall   incomplete (recall < 1)")
	for _, p := range []float64{0, 0.3, 0.5, 0.9} {
		engine := p3q.NewEngine(ds, cfg)
		engine.SeedIdealNetworks(nets)
		engine.Kill(p)

		var runs []*p3q.QueryRun
		var refs [][]p3q.Entry
		for _, q := range p3q.GenerateQueries(ds, 9) {
			run := engine.IssueQuery(q)
			if run == nil {
				continue // the querier departed
			}
			runs = append(runs, run)
			refs = append(refs, reference.TopK(q))
		}
		// The paper's waiting budget: 10 eager cycles (50 seconds at the
		// 5-second eager period).
		for cycle := 0; cycle < 10 && !engine.AllQueriesDone(); cycle++ {
			engine.EagerCycle()
		}

		var recall float64
		incomplete := 0
		for i, run := range runs {
			r := p3q.Recall(run.Results(), refs[i])
			recall += r
			if r < 1 {
				incomplete++
			}
		}
		fmt.Printf("   %3.0f%%      %4d       %.3f        %d (%.1f%%)\n",
			p*100, len(runs), recall/float64(len(runs)),
			incomplete, 100*float64(incomplete)/float64(len(runs)))
	}
	fmt.Println("\nreplicas of departed users' profiles keep most queries answerable;")
	fmt.Println("the paper reports ~10% quality loss at 50% departures (§3.4.2).")
}

// Warmstart: converge the overlay once, checkpoint it, and fork many
// scenario rows from the shared snapshot — the converge-once-fork-many
// pattern the checkpoint/restore subsystem exists for.
//
// Organic convergence (Bootstrap + lazy cycles) is the expensive prefix
// every scenario over a converged overlay repeats. Here it runs exactly
// once; Engine.Snapshot captures the complete engine state (personal
// networks, random views, RNG streams, traffic counters — see
// ARCHITECTURE.md) and p3q.RestoreEngine forks three independent rows from
// it: a synchronous query burst, the same burst under heavy-tailed
// latency, and the same burst under churn. Each fork continues
// byte-for-byte as the converged engine would — restoring is not an
// approximation — so the rows differ only in what the scenario does next.
//
// Run with: go run ./examples/warmstart
package main

import (
	"bytes"
	"fmt"
	"time"

	"p3q"
)

func main() {
	const users = 400
	params := p3q.DefaultTraceParams(users)
	params.MeanItems = 25
	params.Seed = 11
	ds := p3q.GenerateTrace(params)

	cfg := p3q.DefaultConfig()
	cfg.S, cfg.C = 30, 6
	cfg.Seed = 11

	// The expensive prefix, paid once: organic convergence from a cold
	// bootstrap.
	const lazyCycles = 60
	start := time.Now()
	engine := p3q.NewEngine(ds, cfg)
	engine.Bootstrap()
	engine.RunLazy(lazyCycles)
	converge := time.Since(start)

	start = time.Now()
	var snap bytes.Buffer
	if err := engine.Snapshot(&snap); err != nil {
		panic(err)
	}
	fmt.Printf("converged %d users over %d lazy cycles in %s; snapshot: %d KB in %s\n\n",
		users, lazyCycles, converge.Round(time.Millisecond), snap.Len()/1024,
		time.Since(start).Round(time.Millisecond))

	queries := p3q.GenerateQueries(ds, 99)[:60]
	var forks time.Duration

	fork := func(scenario string, cfg p3q.Config, run func(e *p3q.Engine)) {
		start := time.Now()
		e, err := p3q.RestoreEngine(bytes.NewReader(snap.Bytes()), ds, cfg)
		if err != nil {
			panic(err)
		}
		restored := time.Since(start)
		forks += restored
		fmt.Printf("%s (forked in %s)\n", scenario, restored.Round(time.Millisecond))
		run(e)
		fmt.Println()
	}

	burst := func(e *p3q.Engine) []time.Duration {
		var runs []*p3q.QueryRun
		for _, q := range queries {
			if qr := e.IssueQuery(q); qr != nil {
				runs = append(runs, qr)
			}
		}
		e.RunEager(400)
		var full []time.Duration
		for _, qr := range runs {
			if d, ok := qr.TimeToFullRecall(); ok {
				full = append(full, d)
			}
		}
		return full
	}

	fork("row 1: synchronous query burst", cfg, func(e *p3q.Engine) {
		full := burst(e)
		fmt.Printf("  %d/%d queries to full recall, median %s on the virtual clock\n",
			len(full), len(queries), median(full))
	})

	latencyCfg := cfg
	latencyCfg.Latency = p3q.LogNormalLatency{Median: time.Second, Sigma: 1.0}
	fork("row 2: same burst, lognormal(1s) delivery", latencyCfg, func(e *p3q.Engine) {
		full := burst(e)
		fmt.Printf("  %d/%d queries to full recall, median %s (mid-cycle settles)\n",
			len(full), len(queries), median(full))
	})

	fork("row 3: same burst with 30% mid-burst departures", cfg, func(e *p3q.Engine) {
		var runs []*p3q.QueryRun
		for _, q := range queries {
			if qr := e.IssueQuery(q); qr != nil {
				runs = append(runs, qr)
			}
		}
		e.RunEager(2)
		killed := e.Kill(0.3)
		e.RunEager(10)
		e.Revive(killed)
		e.RunEager(400)
		done := 0
		for _, qr := range runs {
			if qr.Done() {
				done++
			}
		}
		fmt.Printf("  %d departed and revived; %d/%d queries still reached full recall\n",
			len(killed), done, len(runs))
	})

	cold := 3 * converge
	warm := converge + forks
	fmt.Printf("wall clock: converged once + 3 forks = %s; re-converging per row would cost ~%s (saved ~%s)\n",
		warm.Round(time.Millisecond), cold.Round(time.Millisecond), (cold - warm).Round(time.Millisecond))
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

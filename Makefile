# Convenience targets for the p3q module. Everything here is a thin
# wrapper over the go tool; CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: lint test build bench

# lint runs the determinism-linter suite through both of its entry
# points: the standalone multichecker and the cmd/go unitchecker
# protocol behind go vet (which also exercises the export-data path).
lint:
	go run ./cmd/p3qlint ./...
	go build -o /tmp/p3qlint ./cmd/p3qlint
	go vet -vettool=/tmp/p3qlint ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test . -run='^$$' -bench='BenchmarkLazyConvergence5k|BenchmarkEagerBurst5k' -benchmem

# Convenience targets for the p3q module. Everything here is a thin
# wrapper over the go tool; CI runs the same commands (see
# .github/workflows/ci.yml).

.PHONY: lint test build bench e2e

# lint runs the determinism-linter suite through both of its entry
# points: the standalone multichecker and the cmd/go unitchecker
# protocol behind go vet (which also exercises the export-data path).
lint:
	go run ./cmd/p3qlint ./...
	go build -o /tmp/p3qlint ./cmd/p3qlint
	go vet -vettool=/tmp/p3qlint ./...

build:
	go build ./...

test:
	go test ./...

# e2e runs the process tier: real p3qd daemons on loopback TCP ports,
# driven through p3qctl. Gated behind the e2e build tag so the plain
# test target stays hermetic and fast (the in-process smoke and
# cross-check tiers already run there).
e2e:
	go test -tags e2e -run TestProcess -count 1 -v ./internal/e2e

bench:
	go test . -run='^$$' -bench='BenchmarkLazyConvergence5k|BenchmarkEagerBurst5k' -benchmem

package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"p3q/internal/lint"
	"p3q/internal/lint/analysis"
)

// vetConfig is the per-package configuration file the go command hands a
// -vettool (the unitchecker protocol of golang.org/x/tools): source file
// lists plus compiler export data for every import.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile and returns
// the process exit code. Findings go to stderr in the file:line:col form
// the go command relays to the user.
func unitcheck(cfgFile string) int {
	raw, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3qlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "p3qlint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The go command treats the facts file as the step's build output and
	// requires it to exist; this suite carries no cross-package facts, so
	// an empty file is the complete truth.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "p3qlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if cfg.Compiler != "gc" && cfg.Compiler != "" {
		fmt.Fprintf(os.Stderr, "p3qlint: unsupported compiler %q\n", cfg.Compiler)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3qlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: mappedImporter{cfg.ImportMap, compilerImporter}}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "p3qlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	exit := 0
	for _, a := range lint.Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			// The go command analyzes each package as its test-augmented
			// variant (production files merged with in-package _test.go
			// files under the plain import path). The determinism contract
			// covers production sources only — fingerprint tests
			// legitimately use wall time and ad-hoc randomness — so
			// diagnostics landing in test files are dropped rather than
			// skipping the whole unit and losing the production findings.
			if strings.HasSuffix(pos.Filename, "_test.go") {
				return
			}
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pos, d.Message, name)
			exit = 1
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "p3qlint: %s: %v\n", name, err)
			return 2
		}
	}
	return exit
}

// mappedImporter resolves source-level import paths through the go
// command's ImportMap (vendoring, etc.) before hitting export data.
type mappedImporter struct {
	importMap map[string]string
	next      types.Importer
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.next.Import(path)
}

// Command p3qlint runs the determinism-linter suite (internal/lint) over
// packages of this module. It is usable two ways:
//
// Standalone, from anywhere in the repository:
//
//	go run ./cmd/p3qlint ./...
//	go run ./cmd/p3qlint ./internal/core p3q/internal/sim
//
// As a vet tool, speaking the cmd/go unitchecker protocol (the go command
// hands the tool a *.cfg file per package and export data for its
// imports):
//
//	go build -o /tmp/p3qlint ./cmd/p3qlint
//	go vet -vettool=/tmp/p3qlint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"p3q/internal/lint"
	"p3q/internal/lint/load"
)

const module = "p3q"

// jsonFinding is the -json output record: one object per line (JSON
// Lines), stable field names for editor and CI integrations.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	args := os.Args[1:]

	// The go command interrogates a vet tool before use: -V=full must
	// print an identity line, -flags the JSON list of tool flags.
	jsonOut := false
	rest := args[:0:0]
	rest = append(rest, args...)
	for len(rest) > 0 && strings.HasPrefix(rest[0], "-") {
		switch {
		case strings.HasPrefix(rest[0], "-V"):
			// The go command keys its vet-result cache on this line, so it
			// must change whenever the tool's behaviour does: stamp it with
			// a content hash of the running binary, like the x/tools
			// unitchecker.
			fmt.Printf("%s version p3q-%s\n", filepath.Base(os.Args[0]), selfHash())
			return
		case rest[0] == "-flags":
			fmt.Println("[]")
			return
		case rest[0] == "-json":
			jsonOut = true
			rest = rest[1:]
		default:
			fmt.Fprintf(os.Stderr, "p3qlint: unknown flag %s\n", rest[0])
			os.Exit(2)
		}
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(unitcheck(rest[0]))
	}
	os.Exit(standalone(rest, jsonOut))
}

// selfHash fingerprints the running executable for the -V=full identity
// line. A stable fallback keeps `go run`-style invocations working even if
// the binary cannot be re-read.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "devel"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "devel"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "devel"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// standalone expands the package patterns against the enclosing module,
// loads and type-checks them with the offline loader, and prints findings —
// one `file:line:col: message [analyzer]` line each, or with jsonOut one
// JSON object per line (machine-readable, for editors and CI annotators).
func standalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		fmt.Fprintln(os.Stderr, "usage: p3qlint [-json] <packages>   (e.g. p3qlint ./...)")
		return 2
	}
	root, err := load.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3qlint: %v\n", err)
		return 2
	}
	paths, err := expand(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3qlint: %v\n", err)
		return 2
	}
	loader := load.New(load.ModuleRoot(module, root))
	var pkgs []*load.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3qlint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := lint.Check(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3qlint: %v\n", err)
		return 2
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		rel := f.File
		if r, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		if jsonOut {
			if err := enc.Encode(jsonFinding{File: rel, Line: f.Line, Col: f.Col, Analyzer: f.Analyzer, Message: f.Message}); err != nil {
				fmt.Fprintf(os.Stderr, "p3qlint: %v\n", err)
				return 2
			}
			continue
		}
		fmt.Printf("%s:%d:%d: %s [%s]\n", rel, f.Line, f.Col, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// expand resolves go-tool-style package patterns (./..., ./dir, import
// paths) to module import paths, preserving order and deduplicating.
func expand(root string, patterns []string) ([]string, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	// relImport maps a filesystem-relative pattern ("./x") to an import
	// path by locating it inside the module tree.
	relImport := func(rel string) (string, error) {
		abs, err := filepath.Abs(filepath.Join(cwd, rel))
		if err != nil {
			return "", err
		}
		r, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(r, "..") {
			return "", fmt.Errorf("pattern %q is outside module %s", rel, module)
		}
		if r == "." {
			return module, nil
		}
		return module + "/" + filepath.ToSlash(r), nil
	}

	seen := map[string]bool{}
	var out []string
	add := func(paths ...string) {
		for _, p := range paths {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			var prefix string
			if base == "." || strings.HasPrefix(base, "./") {
				prefix, err = relImport(base)
			} else {
				prefix = base
			}
			if err != nil {
				return nil, err
			}
			all, err := load.List(module, root)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		case pat == "." || strings.HasPrefix(pat, "./"):
			p, err := relImport(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		default:
			add(pat)
		}
	}
	return out, nil
}

// Command p3qctl is the thin gateway CLI for a running p3qd cluster. It
// dials one daemon (any daemon: members relay submissions to the lead)
// and speaks the same wire protocol the daemons use among themselves.
//
// Usage:
//
//	p3qctl -addr host:port submit -querier N -tags 1,2,3
//	p3qctl -addr host:port status -qid N
//	p3qctl -addr host:port wait -qid N [-timeout 30s]
//	p3qctl -addr host:port stats
//	p3qctl -addr host:port shutdown
//
// Output is line-oriented "key value" pairs, stable enough to grep in
// scripts and the e2e test tier.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"p3q/internal/peer"
	"p3q/internal/tagging"
	"p3q/internal/wire"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p3qctl: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var addr string
	flag.StringVar(&addr, "addr", "", "host:port of any daemon in the cluster")
	flag.Parse()
	if addr == "" {
		die("-addr is required")
	}
	if flag.NArg() == 0 {
		die("missing command: submit, status, wait, stats or shutdown")
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]

	cl, err := peer.DialClient(peer.TCP{}, addr)
	if err != nil {
		die("%v", err)
	}
	defer cl.Close()

	switch cmd {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		querier := fs.Uint64("querier", 0, "querying node id")
		tags := fs.String("tags", "", "comma-separated tag ids")
		parseArgs(fs, rest)
		qid, err := cl.Submit(tagging.UserID(*querier), parseTags(*tags))
		if err != nil {
			die("submit: %v", err)
		}
		fmt.Printf("qid %d\n", qid)

	case "status":
		fs := flag.NewFlagSet("status", flag.ExitOnError)
		qid := fs.Uint64("qid", 0, "query id from submit")
		parseArgs(fs, rest)
		st, err := cl.Status(*qid)
		if err != nil {
			die("status: %v", err)
		}
		printStatus(st)

	case "wait":
		fs := flag.NewFlagSet("wait", flag.ExitOnError)
		qid := fs.Uint64("qid", 0, "query id from submit")
		timeout := fs.Duration("timeout", 30*time.Second, "give up after this long")
		parseArgs(fs, rest)
		deadline := time.Now().Add(*timeout)
		for {
			st, err := cl.Status(*qid)
			if err != nil {
				die("wait: %v", err)
			}
			if !st.Known {
				die("wait: the cluster does not know query %d", *qid)
			}
			if st.Done {
				printStatus(st)
				return
			}
			if time.Now().After(deadline) {
				die("wait: query %d not done after %v", *qid, *timeout)
			}
			time.Sleep(10 * time.Millisecond)
		}

	case "stats":
		st, err := cl.Stats()
		if err != nil {
			die("stats: %v", err)
		}
		fmt.Printf("index %d\n", st.Index)
		fmt.Printf("lazy_cycles %d\n", st.LazyCycles)
		fmt.Printf("eager_cycles %d\n", st.EagerCycles)
		fmt.Printf("divergence %d\n", st.Divergence)
		fmt.Printf("frozen_events %d\n", st.FrozenEvents)
		fmt.Printf("pending_events %d\n", st.PendingEvents)
		fmt.Printf("plan_ns %d\n", st.PlanNanos)
		fmt.Printf("commit_ns %d\n", st.CommitNanos)
		fmt.Printf("commit_skew_max_ns %d\n", st.SkewMaxNanos)
		fmt.Printf("wire_msgs %d\n", st.WireMsgs)
		fmt.Printf("wire_bytes %d\n", st.WireBytes)
		fmt.Printf("wire_plane data msgs %d bytes %d\n", st.Data.Msgs, st.Data.Bytes)
		fmt.Printf("wire_plane ctrl msgs %d bytes %d\n", st.Ctrl.Msgs, st.Ctrl.Bytes)
		fmt.Printf("wire_plane gateway msgs %d bytes %d\n", st.Gateway.Msgs, st.Gateway.Bytes)
		fmt.Printf("wire_plane served msgs %d bytes %d\n", st.Served.Msgs, st.Served.Bytes)
		for _, q := range st.Queries {
			fmt.Printf("query %d done %v bytes_forwarded %d bytes_returned %d bytes_partial %d bytes_maintenance %d\n",
				q.Qid, q.Done, q.Forwarded, q.Returned, q.PartialResults, q.Maintenance)
		}

	case "shutdown":
		if err := cl.Shutdown(); err != nil {
			die("shutdown: %v", err)
		}
		fmt.Println("ok")

	default:
		die("unknown command %q: want submit, status, wait, stats or shutdown", cmd)
	}
}

func parseArgs(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		die("%v", err) // unreachable with ExitOnError; belt and braces
	}
	if fs.NArg() != 0 {
		die("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
}

func parseTags(s string) []tagging.TagID {
	if s == "" {
		return nil
	}
	var tags []tagging.TagID
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			die("bad tag %q: %v", part, err)
		}
		tags = append(tags, tagging.TagID(n))
	}
	return tags
}

func printStatus(st *wire.QueryStatusResp) {
	fmt.Printf("known %v\n", st.Known)
	fmt.Printf("done %v\n", st.Done)
	fmt.Printf("cycles %d\n", st.Cycles)
	fmt.Printf("used %d\n", st.Used)
	fmt.Printf("needed %d\n", st.Needed)
	fmt.Printf("bytes_forwarded %d\n", st.Forwarded)
	fmt.Printf("bytes_returned %d\n", st.Returned)
	fmt.Printf("bytes_partial %d\n", st.PartialResults)
	fmt.Printf("bytes_maintenance %d\n", st.Maintenance)
	for _, e := range st.Results {
		fmt.Printf("result item %d score %d\n", e.Item, e.Score)
	}
}

// Command p3qtrace generates, inspects and converts collaborative-tagging
// traces in the binary format every tool in this repository consumes.
//
// Usage:
//
//	p3qtrace gen -users 10000 -mean-items 249 -out trace.p3q   # synthesize
//	p3qtrace stats -in trace.p3q                               # marginals
//	p3qtrace queries -in trace.p3q -n 5                        # sample queries
//
// A real delicious-style crawl can be converted once into this format (see
// internal/trace's documented layout) and then drives every experiment via
// the same loader.
package main

import (
	"flag"
	"fmt"
	"os"

	"p3q/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "queries":
		cmdQueries(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `p3qtrace <command> [flags]

commands:
  gen      generate a synthetic trace and write it to -out
  stats    print the marginals of the trace at -in
  queries  print sample queries generated from the trace at -in`)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	users := fs.Int("users", 1000, "number of users")
	meanItems := fs.Float64("mean-items", 0, "mean distinct items per user (0 = scaled default)")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "trace.p3q", "output file")
	fs.Parse(args)

	p := trace.DefaultGenParams(*users)
	if *meanItems > 0 {
		p.MeanItems = *meanItems
	}
	p.Seed = *seed
	ds := trace.Generate(p)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Save(f, ds); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %v\n", *out, ds)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "trace.p3q", "input file")
	fs.Parse(args)
	ds := load(*in)
	fmt.Println(trace.ComputeStats(ds).String())
}

func cmdQueries(args []string) {
	fs := flag.NewFlagSet("queries", flag.ExitOnError)
	in := fs.String("in", "trace.p3q", "input file")
	n := fs.Int("n", 5, "number of queries to print")
	seed := fs.Uint64("seed", 1, "query generation seed")
	fs.Parse(args)
	ds := load(*in)
	qs := trace.GenerateQueries(ds, *seed)
	if *n > len(qs) {
		*n = len(qs)
	}
	for _, q := range qs[:*n] {
		fmt.Printf("user %d: item %d -> tags %v\n", q.Querier, q.Item, q.Tags)
	}
}

func load(path string) *trace.Dataset {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	ds, err := trace.Load(f)
	if err != nil {
		fatal(fmt.Errorf("loading %s: %w", path, err))
	}
	return ds
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p3qtrace:", err)
	os.Exit(1)
}

// Command p3qsim regenerates the tables and figures of "Gossiping
// Personalized Queries" (Bai et al., EDBT 2010) from this repository's
// implementation of P3Q.
//
// Usage:
//
//	p3qsim -exp fig3                 # one experiment at the default scale
//	p3qsim -exp all                  # the whole evaluation section
//	p3qsim -exp list                 # list experiment ids
//	p3qsim -exp fig2 -users 10000 -s 1000 -mean-items 249   # paper scale
//	p3qsim -exp fig6 -csv            # machine-readable output
//	p3qsim -exp latency              # async delivery: time-to-result distributions
//	p3qsim -exp fig3 -latency lognormal:1s,0.8   # any experiment under a latency model
//
// Long runs checkpoint and resume through the converge driver:
//
//	p3qsim -exp converge -cycles 200 -checkpoint-every 50 -checkpoint-dir ckpt
//	p3qsim -exp converge -cycles 200 -resume ckpt/checkpoint_cycle_0100.p3qc
//
// A checkpoint captures the complete engine state (see ARCHITECTURE.md);
// resuming reproduces the uninterrupted run byte for byte, for any
// -workers value.
//
// Each experiment prints one table per paper artifact; EXPERIMENTS.md in
// the repository root records paper-reported vs measured values.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"p3q/internal/core"
	"p3q/internal/experiments"
	"p3q/internal/metrics"
	"p3q/internal/obs"
	"p3q/internal/sim"
	"p3q/internal/trace"
)

// die prints a one-line friendly error and exits non-zero — never a panic,
// never a usage dump.
func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p3qsim: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		exp       = flag.String("exp", "list", "experiment id, 'all', or 'list'")
		users     = flag.Int("users", 0, "population size (0 = default)")
		s         = flag.Int("s", 0, "personal network size (0 = default)")
		k         = flag.Int("k", 0, "top-k size (0 = default)")
		queries   = flag.Int("queries", 0, "queries per scenario (0 = default)")
		cycles    = flag.Int("cycles", 0, "base cycle budget (0 = default)")
		meanItems = flag.Float64("mean-items", 0, "mean items per user in the trace (0 = default)")
		workers   = flag.Int("workers", 0, "planning workers and commit shards for both lazy and eager cycles (0 = all cores; output is identical for every value)")
		latency   = flag.String("latency", "", "per-message latency model for eager delivery: none (synchronous cycles, the default), fixed:<d>, uniform:<min>,<max>, lognormal:<median>,<sigma>, or geo:<zones>,<intra>,<inter> — e.g. fixed:50ms, uniform:10ms,200ms, lognormal:1s,0.8, geo:3,25ms,120ms; with a model set, partial results arrive mid-cycle and queries report time-to-first-result / time-to-full-recall (see the 'latency' experiment)")
		seed      = flag.Uint64("seed", 0, "random seed (0 = default)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir    = flag.String("out", "", "also write one CSV file per table into this directory")
		ckptEvery = flag.Int("checkpoint-every", 0, "converge driver: write a checkpoint every N cycles into -checkpoint-dir (0 = only the final checkpoint, if a dir is set)")
		ckptDir   = flag.String("checkpoint-dir", "", "converge driver: directory receiving checkpoint_cycle_NNNN.p3qc files")
		resume    = flag.String("resume", "", "converge driver: restore engine state from this checkpoint file and continue the run")
		obsOut    = flag.String("obs-out", "", "converge driver: stream query lifecycle events as JSON lines into this file ('-' = stderr); attaching the stream never changes the run")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *users > 0 {
		cfg.Users = *users
	}
	if *s > 0 {
		cfg.S = *s
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *cycles > 0 {
		cfg.Cycles = *cycles
	}
	if *meanItems > 0 {
		cfg.MeanItems = *meanItems
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *latency != "" {
		m, err := sim.ParseLatency(*latency)
		if err != nil {
			die("%v", err)
		}
		cfg.Latency = m
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	if *ckptEvery < 0 {
		die("-checkpoint-every must be non-negative, got %d", *ckptEvery)
	}
	if *ckptEvery > 0 && *ckptDir == "" {
		die("-checkpoint-every needs -checkpoint-dir to know where checkpoints go")
	}
	usesCheckpoints := *ckptEvery > 0 || *ckptDir != "" || *resume != ""
	if usesCheckpoints && *exp != "converge" {
		die("checkpoint flags apply to the converge driver; run with -exp converge")
	}
	if *obsOut != "" && *exp != "converge" {
		die("-obs-out applies to the converge driver; run with -exp converge")
	}

	switch *exp {
	case "list":
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-10s %s\n", r.Name, r.Paper)
		}
		fmt.Printf("  %-10s %s\n", "converge", "driver: converge the overlay and process a query burst, with periodic checkpoints (-checkpoint-every/-checkpoint-dir) and resume (-resume)")
		return
	case "all":
		for _, r := range experiments.Registry() {
			run(r, cfg, *csv, *outDir)
		}
		return
	case "converge":
		runConverge(cfg, *ckptEvery, *ckptDir, *resume, *obsOut)
		return
	default:
		r, ok := experiments.Lookup(*exp)
		if !ok {
			die("unknown experiment %q (try -exp list)", *exp)
		}
		run(r, cfg, *csv, *outDir)
	}
}

// runConverge is the checkpoint-aware simulation driver: converge the
// overlay for -cycles lazy cycles, then issue -queries queries and run the
// eager mode to completion, writing a checkpoint every -checkpoint-every
// cycles (and a final one when -checkpoint-dir is set). With -resume the
// engine restores from the given file — over the deterministically
// regenerated base trace, so the same flags must be passed — and continues
// exactly where the checkpointed run stopped.
//
// The driver always attaches a telemetry registry (observation is
// fingerprint-neutral by the obs contract) and prints a progress line to
// stderr every couple of seconds; with obsOut set it additionally streams
// every query lifecycle event as one JSON line.
func runConverge(cfg experiments.Config, every int, dir, resume, obsOut string) {
	start := time.Now()
	// cfg.CoreConfig is the same derivation the experiments harness uses,
	// so a checkpoint written here restores in either with the same flags.
	cc := cfg.CoreConfig(10)
	p := trace.DefaultGenParams(cfg.Users)
	p.MeanItems = cfg.MeanItems
	p.Seed = cfg.Seed
	ds := trace.Generate(p)

	var e *core.Engine
	if resume != "" {
		f, err := os.Open(resume)
		if err != nil {
			die("cannot resume: %v", err)
		}
		e, err = core.Restore(f, ds, cc)
		f.Close()
		if err != nil {
			die("cannot resume from %s: %v", resume, err)
		}
		fmt.Printf("resumed from %s at lazy cycle %d (eager %d, %d queries issued)\n",
			resume, e.LazyCycles(), e.EagerCycles(), len(e.Queries()))
	} else {
		e = core.New(ds, cc)
		e.Bootstrap()
	}

	reg := obs.New()
	e.SetObs(reg)
	if obsOut != "" {
		closeSink, err := streamEvents(reg, obsOut)
		if err != nil {
			die("%v", err)
		}
		defer closeSink()
	}
	lastProgress := time.Now()
	progress := func(mode string) {
		if time.Since(lastProgress) < 2*time.Second {
			return
		}
		lastProgress = time.Now()
		plan, commit := e.PhaseDurations()
		fmt.Fprintf(os.Stderr, "[%s lazy=%d eager=%d issued=%d settled=%d frozen=%d commit_bytes=%d plan=%s commit=%s]\n",
			mode, e.LazyCycles(), e.EagerCycles(),
			reg.Counter(obs.CQueriesIssued), reg.Counter(obs.CQueriesSettled),
			reg.EventCount(obs.EvFrozen), reg.Counter(obs.CCommitBytes),
			plan.Round(time.Millisecond), commit.Round(time.Millisecond))
	}

	cycles := func() int { return e.LazyCycles() + e.EagerCycles() }
	lastCkpt := -1
	maybeCheckpoint := func(force bool) {
		if dir == "" || cycles() == lastCkpt {
			return
		}
		if !force && (every == 0 || cycles()%every != 0) {
			return
		}
		path := filepath.Join(dir, fmt.Sprintf("checkpoint_cycle_%04d.p3qc", cycles()))
		if err := writeCheckpoint(e, dir, path); err != nil {
			die("%v", err)
		}
		lastCkpt = cycles()
		fmt.Printf("checkpoint written: %s\n", path)
	}

	for e.LazyCycles() < cfg.Cycles {
		e.LazyCycle()
		maybeCheckpoint(false)
		progress("converge")
	}
	if len(e.Queries()) == 0 {
		queries := trace.GenerateQueries(ds, cfg.Seed+1)
		for _, q := range queries[:min(cfg.Queries, len(queries))] {
			e.IssueQuery(q)
		}
	}
	for e.EagerCycles() < cfg.Cycles*10 && !e.AllQueriesDone() {
		e.EagerCycle()
		maybeCheckpoint(false)
		progress("query")
	}
	maybeCheckpoint(true)

	fmt.Printf("%s\n[converge: %d lazy + %d eager cycles in %s, users=%d s=%d seed=%d]\n",
		e.Stats(), e.LazyCycles(), e.EagerCycles(), time.Since(start).Round(time.Millisecond),
		cfg.Users, cfg.S, cfg.Seed)
}

// streamEvents wires a JSON-lines sink into the registry, one object per
// query lifecycle event, and returns the flush/close function. "-" streams
// to stderr so the event log interleaves with the progress lines.
func streamEvents(reg *obs.Registry, path string) (func(), error) {
	out := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("cannot open -obs-out file: %v", err)
		}
		out = f
	}
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	type jsonEvent struct {
		Kind  string `json:"kind"`
		Qid   uint64 `json:"qid"`
		Cycle uint64 `json:"cycle"`
		AtNs  int64  `json:"at_ns"`
		Node  uint64 `json:"node"`
		Peer  uint64 `json:"peer"`
		Bytes uint64 `json:"bytes,omitempty"`
	}
	reg.SetSink(func(ev obs.QueryEvent) {
		err := enc.Encode(jsonEvent{
			Kind:  ev.Kind.String(),
			Qid:   ev.Qid,
			Cycle: ev.Cycle,
			AtNs:  ev.At.Nanoseconds(),
			Node:  ev.Node,
			Peer:  ev.Peer,
			Bytes: ev.Bytes,
		})
		if err != nil {
			die("writing -obs-out stream: %v", err)
		}
	})
	return func() {
		if err := bw.Flush(); err != nil {
			die("flushing -obs-out stream: %v", err)
		}
		if out != os.Stderr {
			if err := out.Close(); err != nil {
				die("closing -obs-out file: %v", err)
			}
		}
	}, nil
}

// writeCheckpoint snapshots the engine into path, creating the directory on
// first use and writing through a temp file so a crash mid-write never
// leaves a truncated checkpoint behind.
func writeCheckpoint(e *core.Engine, dir, path string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cannot create checkpoint dir: %v", err)
	}
	tmp, err := os.CreateTemp(dir, "checkpoint_*.tmp")
	if err != nil {
		return fmt.Errorf("cannot write checkpoint: %v", err)
	}
	if err := e.Snapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cannot write checkpoint: %v", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cannot write checkpoint: %v", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cannot write checkpoint: %v", err)
	}
	return nil
}

func run(r experiments.Runner, cfg experiments.Config, csv bool, outDir string) {
	start := time.Now()
	tables := r.Run(cfg)
	elapsed := time.Since(start).Round(time.Millisecond)
	for i, tb := range tables {
		var err error
		if csv {
			fmt.Printf("# %s\n", tb.Title)
			err = tb.CSV(os.Stdout)
		} else {
			err = tb.Fprint(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3qsim: writing output: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if outDir != "" {
			if err := writeCSVFile(outDir, r.Name, i, len(tables), tb); err != nil {
				fmt.Fprintf(os.Stderr, "p3qsim: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "[%s: %d table(s) in %s, users=%d s=%d seed=%d]\n",
		r.Name, len(tables), elapsed, cfg.Users, cfg.S, cfg.Seed)
}

// writeCSVFile stores one table as <dir>/<experiment>[_partN].csv for
// plotting tools.
func writeCSVFile(dir, name string, idx, total int, tb *metrics.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	filename := name + ".csv"
	if total > 1 {
		filename = fmt.Sprintf("%s_part%d.csv", name, idx+1)
	}
	f, err := os.Create(filepath.Join(dir, filename))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "# %s\n", tb.Title); err != nil {
		return err
	}
	return tb.CSV(f)
}

// Command p3qsim regenerates the tables and figures of "Gossiping
// Personalized Queries" (Bai et al., EDBT 2010) from this repository's
// implementation of P3Q.
//
// Usage:
//
//	p3qsim -exp fig3                 # one experiment at the default scale
//	p3qsim -exp all                  # the whole evaluation section
//	p3qsim -exp list                 # list experiment ids
//	p3qsim -exp fig2 -users 10000 -s 1000 -mean-items 249   # paper scale
//	p3qsim -exp fig6 -csv            # machine-readable output
//	p3qsim -exp latency              # async delivery: time-to-result distributions
//	p3qsim -exp fig3 -latency lognormal:1s,0.8   # any experiment under a latency model
//
// Each experiment prints one table per paper artifact; EXPERIMENTS.md in
// the repository root records paper-reported vs measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"p3q/internal/experiments"
	"p3q/internal/metrics"
	"p3q/internal/sim"
)

func main() {
	var (
		exp       = flag.String("exp", "list", "experiment id, 'all', or 'list'")
		users     = flag.Int("users", 0, "population size (0 = default)")
		s         = flag.Int("s", 0, "personal network size (0 = default)")
		k         = flag.Int("k", 0, "top-k size (0 = default)")
		queries   = flag.Int("queries", 0, "queries per scenario (0 = default)")
		cycles    = flag.Int("cycles", 0, "base cycle budget (0 = default)")
		meanItems = flag.Float64("mean-items", 0, "mean items per user in the trace (0 = default)")
		workers   = flag.Int("workers", 0, "planning workers and commit shards for both lazy and eager cycles (0 = all cores; output is identical for every value)")
		latency   = flag.String("latency", "", "per-message latency model for eager delivery: none (synchronous cycles, the default), fixed:<d>, uniform:<min>,<max>, lognormal:<median>,<sigma>, or geo:<zones>,<intra>,<inter> — e.g. fixed:50ms, uniform:10ms,200ms, lognormal:1s,0.8, geo:3,25ms,120ms; with a model set, partial results arrive mid-cycle and queries report time-to-first-result / time-to-full-recall (see the 'latency' experiment)")
		seed      = flag.Uint64("seed", 0, "random seed (0 = default)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir    = flag.String("out", "", "also write one CSV file per table into this directory")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *users > 0 {
		cfg.Users = *users
	}
	if *s > 0 {
		cfg.S = *s
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *cycles > 0 {
		cfg.Cycles = *cycles
	}
	if *meanItems > 0 {
		cfg.MeanItems = *meanItems
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *latency != "" {
		m, err := sim.ParseLatency(*latency)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3qsim: %v\n", err)
			os.Exit(2)
		}
		cfg.Latency = m
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}

	switch *exp {
	case "list":
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-10s %s\n", r.Name, r.Paper)
		}
		return
	case "all":
		for _, r := range experiments.Registry() {
			run(r, cfg, *csv, *outDir)
		}
		return
	default:
		r, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "p3qsim: unknown experiment %q (try -exp list)\n", *exp)
			os.Exit(2)
		}
		run(r, cfg, *csv, *outDir)
	}
}

func run(r experiments.Runner, cfg experiments.Config, csv bool, outDir string) {
	start := time.Now()
	tables := r.Run(cfg)
	elapsed := time.Since(start).Round(time.Millisecond)
	for i, tb := range tables {
		var err error
		if csv {
			fmt.Printf("# %s\n", tb.Title)
			err = tb.CSV(os.Stdout)
		} else {
			err = tb.Fprint(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3qsim: writing output: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if outDir != "" {
			if err := writeCSVFile(outDir, r.Name, i, len(tables), tb); err != nil {
				fmt.Fprintf(os.Stderr, "p3qsim: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "[%s: %d table(s) in %s, users=%d s=%d seed=%d]\n",
		r.Name, len(tables), elapsed, cfg.Users, cfg.S, cfg.Seed)
}

// writeCSVFile stores one table as <dir>/<experiment>[_partN].csv for
// plotting tools.
func writeCSVFile(dir, name string, idx, total int, tb *metrics.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	filename := name + ".csv"
	if total > 1 {
		filename = fmt.Sprintf("%s_part%d.csv", name, idx+1)
	}
	f, err := os.Create(filepath.Join(dir, filename))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "# %s\n", tb.Title); err != nil {
		return err
	}
	return tb.CSV(f)
}

// Command benchjson converts the text output of `go test -bench` into a
// machine-readable JSON document, so CI can archive benchmark results as
// BENCH_*.json artifacts and the repository can track its performance
// trajectory (e.g. BenchmarkLazyConvergence5k and BenchmarkEagerBurst5k
// per worker count) across commits.
//
// Usage:
//
//	go test -run='^$' -bench=. ./... | benchjson -o BENCH_abc123.json
//	benchjson < bench.out            # JSON to stdout
//
// Each benchmark result line becomes one record carrying the benchmark
// name, the iteration count, and every reported metric (ns/op, B/op,
// allocs/op, and custom b.ReportMetric units) keyed by unit. Context lines
// (goos, goarch, pkg, cpu) annotate the records that follow them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output and extracts every benchmark
// result line. Unrecognized lines are ignored, so interleaved test output
// does not break the conversion.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if res, ok := parseResult(line); ok {
			res.Pkg = pkg
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, sc.Err()
}

// parseResult parses one benchmark result line of the form
//
//	BenchmarkName[/sub]-P  iterations  value unit  [value unit]...
//
// and returns ok=false for anything else.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is (value, unit) pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, true
}

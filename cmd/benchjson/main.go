// Command benchjson converts the text output of `go test -bench` into a
// machine-readable JSON document, so CI can archive benchmark results as
// BENCH_*.json artifacts and the repository can track its performance
// trajectory (e.g. BenchmarkLazyConvergence5k and BenchmarkEagerBurst5k
// per worker count) across commits.
//
// Usage:
//
//	go test -run='^$' -bench=. ./... | benchjson -o BENCH_abc123.json
//	benchjson < bench.out                     # JSON to stdout
//	benchjson -compare old.json new.json      # flag regressions
//
// Each benchmark result line becomes one record carrying the benchmark
// name, the iteration count, and every reported metric (ns/op, B/op,
// allocs/op, and custom b.ReportMetric units) keyed by unit. Context lines
// (goos, goarch, pkg, cpu) annotate the records that follow them.
//
// The -compare mode diffs two previously archived artifacts: it prints the
// ns/op and allocs/op deltas of every benchmark present in both, and exits
// non-zero when a tracked benchmark (by default the
// BenchmarkLazyConvergence5k, BenchmarkEagerBurst5k and
// BenchmarkLazyConvergence100k families, override with -track) slowed down
// or allocated more by more than -threshold (default 10%). The allocs/op
// gate guards the pooled-plan engine: allocation counts are deterministic
// where timings are noisy, so an allocation regression is meaningful even
// at -benchtime=1x. CI runs the comparison against the previous commit's
// artifact when one exists.
//
// The -history mode renders the benchmark trajectory across any number of
// archived artifacts: one row per (artifact, tracked benchmark) with
// ns/op, allocs/op, B/op, the alloc-B/node budget metric, and the
// plan-ns/op / commit-ns/op phase split the engine benches report, as a
// markdown table (or CSV with -csv). Rows follow the argument
// order, so pass artifacts oldest first — BENCH_<sha>.json names are not
// chronological, so expand globs by download/file time, e.g.:
//
//	benchjson -history BENCH_aaa.json BENCH_bbb.json BENCH_ccc.json
//	benchjson -history -csv $(ls -tr BENCH_*.json) > trajectory.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// defaultTracked is the benchmark families whose regressions fail the
// -compare mode: the two 5000-user engine benches the ROADMAP tracks
// across commits, plus the 100k scaling probe the scheduled bench
// workflow runs.
const defaultTracked = "BenchmarkLazyConvergence5k,BenchmarkEagerBurst5k,BenchmarkLazyConvergence100k"

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	compare := flag.Bool("compare", false, "compare two archived artifacts: benchjson -compare old.json new.json")
	history := flag.Bool("history", false, "render the tracked benches' ns/op and plan/commit phase split across archived artifacts (oldest first): benchjson -history a.json b.json ...")
	csv := flag.Bool("csv", false, "emit CSV instead of a markdown table in -history mode")
	threshold := flag.Float64("threshold", 0.10, "ns/op slowdown fraction that counts as a regression in -compare mode")
	track := flag.String("track", defaultTracked, "comma-separated benchmark name prefixes tracked by -compare and -history")
	flag.Parse()

	if *history {
		// An empty series is a normal cold start (a fresh repository, expired
		// CI artifacts, a glob that matched nothing), not a usage error:
		// render the friendly note instead of failing the job-summary step.
		if err := historyTable(flag.Args(), splitTracked(*track), *csv, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two artifacts: old.json new.json")
			os.Exit(2)
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if n := compareReports(oldRep, newRep, splitTracked(*track), *threshold, os.Stdout); n > 0 {
			os.Exit(1)
		}
		return
	}

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// loadReport reads one archived BENCH_*.json artifact.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &Report{}
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// splitTracked parses the -track flag into non-empty prefixes.
func splitTracked(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// benchKey identifies a benchmark across artifacts. The trailing
// -GOMAXPROCS suffix is stripped so artifacts from machines reporting
// different core counts still line up.
func benchKey(r Result) string {
	name := r.Name
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return r.Pkg + " " + name
}

// compareReports prints the ns/op and allocs/op deltas of every benchmark
// present in both reports and returns the number of tracked regressions:
// tracked benchmarks (matched by name prefix) whose ns/op OR allocs/op
// grew by more than threshold. Allocation counts are deterministic where
// timings are noisy, so the allocs/op gate holds even on the short
// per-commit runs; benchmarks without memory metrics on either side (older
// artifacts, runs without -benchmem) are gated on ns/op alone. Benchmarks
// missing from either side are skipped — a renamed or new bench is not a
// regression.
func compareReports(oldRep, newRep *Report, tracked []string, threshold float64, w io.Writer) int {
	// First occurrence wins on both sides: artifacts holding several -cpu
	// variants of one benchmark (whose -P suffixes strip to the same key)
	// must resolve to the same variant in both reports.
	oldM := make(map[string]map[string]float64, len(oldRep.Results))
	for _, r := range oldRep.Results {
		k := benchKey(r)
		if ns, ok := r.Metrics["ns/op"]; ok && ns > 0 {
			if _, dup := oldM[k]; !dup {
				oldM[k] = r.Metrics
			}
		}
	}
	isTracked := func(name string) bool {
		short := name[strings.LastIndex(name, " ")+1:]
		for _, p := range tracked {
			if strings.HasPrefix(short, p) {
				return true
			}
		}
		return false
	}
	regressions := 0
	keys := make([]string, 0, len(newRep.Results))
	newM := make(map[string]map[string]float64, len(newRep.Results))
	for _, r := range newRep.Results {
		k := benchKey(r)
		if _, ok := r.Metrics["ns/op"]; ok {
			if _, dup := newM[k]; !dup {
				keys = append(keys, k)
				newM[k] = r.Metrics
			}
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		old, ok := oldM[k]
		if !ok {
			continue
		}
		nw := newM[k]
		nsDelta := (nw["ns/op"] - old["ns/op"]) / old["ns/op"]
		line := fmt.Sprintf("%-60s %14.0f -> %14.0f ns/op  %+6.1f%%", k, old["ns/op"], nw["ns/op"], 100*nsDelta)
		allocDelta, haveAllocs := 0.0, false
		if oa, oaok := old["allocs/op"]; oaok && oa > 0 {
			if na, naok := nw["allocs/op"]; naok {
				haveAllocs = true
				allocDelta = (na - oa) / oa
				line += fmt.Sprintf("  %10.0f -> %10.0f allocs/op  %+6.1f%%", oa, na, 100*allocDelta)
			}
		}
		mark := ""
		if isTracked(k) {
			mark = " [tracked]"
			if nsDelta > threshold || (haveAllocs && allocDelta > threshold) {
				mark = " [REGRESSION]"
				regressions++
			}
		}
		fmt.Fprintln(w, line+mark)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d tracked benchmark(s) regressed beyond %.0f%%\n", regressions, 100*threshold)
	}
	return regressions
}

// historyRow is one (artifact, benchmark) point of the trajectory table.
type historyRow struct {
	artifact  string
	benchmark string
	ns        float64
	allocs    float64 // allocs/op, 0 when the run lacked -benchmem
	bytes     float64 // B/op, likewise
	allocNode float64 // alloc-B/node, 0 when the benchmark does not report it
	plan      float64 // plan-ns/op, likewise
	commit    float64 // commit-ns/op, likewise
}

// historyTable renders the tracked benchmarks' ns/op, memory metrics and
// plan/commit phase split across the given artifacts (in argument order —
// pass oldest first) as a markdown table, or CSV when csv is set. This is
// the benchmark-trajectory view of the ROADMAP: the plan and commit
// columns come from the custom metrics the 5k engine benches report, so
// the historical Amdahl limit (the commit phase share) stays visible
// across commits, and the allocs/op and alloc-B/node columns track the
// pooled engine's allocation budget the same way.
func historyTable(paths []string, tracked []string, csv bool, w io.Writer) error {
	isTracked := func(name string) bool {
		for _, p := range tracked {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var rows []historyRow
	for _, path := range paths {
		rep, err := loadReport(path)
		if err != nil {
			return err
		}
		seen := map[string]bool{}
		for _, r := range rep.Results {
			key := benchKey(r)
			name := key[strings.LastIndex(key, " ")+1:]
			if seen[key] || !isTracked(name) {
				continue
			}
			seen[key] = true
			ns, ok := r.Metrics["ns/op"]
			if !ok {
				continue
			}
			rows = append(rows, historyRow{
				artifact:  filepath.Base(path),
				benchmark: name,
				ns:        ns,
				allocs:    r.Metrics["allocs/op"],
				bytes:     r.Metrics["B/op"],
				allocNode: r.Metrics["alloc-B/node"],
				plan:      r.Metrics["plan-ns/op"],
				commit:    r.Metrics["commit-ns/op"],
			})
		}
	}
	if len(rows) == 0 {
		// Degrade gracefully: an empty or all-untracked series happens on
		// every fresh repository and whenever CI artifacts expired. The note
		// renders fine in both CSV consumers and the markdown job summary.
		if len(paths) == 0 {
			fmt.Fprintln(w, "no archived benchmark artifacts yet; the trajectory starts with the next successful run")
		} else {
			fmt.Fprintf(w, "no tracked benchmark (%s) in the %d given artifact(s); nothing to tabulate yet\n", strings.Join(tracked, ", "), len(paths))
		}
		return nil
	}

	// Optional metrics render as blanks when absent (older artifacts, runs
	// without -benchmem), keeping the columns aligned across a mixed series.
	opt := func(v float64) string {
		if v == 0 {
			return ""
		}
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	planShare := func(r historyRow) string {
		if r.plan == 0 || r.plan+r.commit == 0 {
			return ""
		}
		return fmt.Sprintf("%.1f%%", 100*r.plan/(r.plan+r.commit))
	}
	if csv {
		fmt.Fprintln(w, "artifact,benchmark,ns/op,allocs/op,B/op,alloc-B/node,plan-ns/op,commit-ns/op,plan share")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%s,%.0f,%s,%s,%s,%s,%s,%s\n",
				r.artifact, r.benchmark, r.ns, opt(r.allocs), opt(r.bytes), opt(r.allocNode),
				opt(r.plan), opt(r.commit), planShare(r))
		}
		return nil
	}
	fmt.Fprintln(w, "| artifact | benchmark | ns/op | allocs/op | B/op | alloc-B/node | plan-ns/op | commit-ns/op | plan share |")
	fmt.Fprintln(w, "| --- | --- | ---: | ---: | ---: | ---: | ---: | ---: | ---: |")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %s | %.0f | %s | %s | %s | %s | %s | %s |\n",
			r.artifact, r.benchmark, r.ns, opt(r.allocs), opt(r.bytes), opt(r.allocNode),
			opt(r.plan), opt(r.commit), planShare(r))
	}
	return nil
}

// parse reads `go test -bench` text output and extracts every benchmark
// result line. Unrecognized lines are ignored, so interleaved test output
// does not break the conversion.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if res, ok := parseResult(line); ok {
			res.Pkg = pkg
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, sc.Err()
}

// parseResult parses one benchmark result line of the form
//
//	BenchmarkName[/sub]-P  iterations  value unit  [value unit]...
//
// and returns ok=false for anything else.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is (value, unit) pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, true
}

package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: p3q
cpu: AMD EPYC 7B13
BenchmarkLazyConvergence5k/workers=1-8         	       3	 412345678 ns/op
BenchmarkLazyConvergence5k/workers=8-8         	      10	 112345678 ns/op	     512 B/op	       4 allocs/op
BenchmarkEagerBurst5k/workers=8-8              	       5	 212345678 ns/op
BenchmarkAblationThreeStepExchange-8           	       2	 912345678 ns/op	      42.5 actualB/user/cycle	     99.5 naiveB/user/cycle
--- BENCH: BenchmarkSomething
    some interleaved log line
PASS
ok  	p3q	12.345s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context lines misparsed: %+v", rep)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(rep.Results))
	}
	first := rep.Results[0]
	if first.Name != "BenchmarkLazyConvergence5k/workers=1-8" || first.Pkg != "p3q" {
		t.Fatalf("first result misparsed: %+v", first)
	}
	if first.Iterations != 3 || first.Metrics["ns/op"] != 412345678 {
		t.Fatalf("first result values misparsed: %+v", first)
	}
	second := rep.Results[1]
	if second.Metrics["B/op"] != 512 || second.Metrics["allocs/op"] != 4 {
		t.Fatalf("memory metrics misparsed: %+v", second)
	}
	last := rep.Results[3]
	if last.Metrics["actualB/user/cycle"] != 42.5 || last.Metrics["naiveB/user/cycle"] != 99.5 {
		t.Fatalf("custom metrics misparsed: %+v", last)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBroken 12\nok p3q 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("noise produced %d results", len(rep.Results))
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: p3q
cpu: AMD EPYC 7B13
BenchmarkLazyConvergence5k/workers=1-8         	       3	 412345678 ns/op
BenchmarkLazyConvergence5k/workers=8-8         	      10	 112345678 ns/op	     512 B/op	       4 allocs/op
BenchmarkEagerBurst5k/workers=8-8              	       5	 212345678 ns/op
BenchmarkAblationThreeStepExchange-8           	       2	 912345678 ns/op	      42.5 actualB/user/cycle	     99.5 naiveB/user/cycle
--- BENCH: BenchmarkSomething
    some interleaved log line
PASS
ok  	p3q	12.345s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context lines misparsed: %+v", rep)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(rep.Results))
	}
	first := rep.Results[0]
	if first.Name != "BenchmarkLazyConvergence5k/workers=1-8" || first.Pkg != "p3q" {
		t.Fatalf("first result misparsed: %+v", first)
	}
	if first.Iterations != 3 || first.Metrics["ns/op"] != 412345678 {
		t.Fatalf("first result values misparsed: %+v", first)
	}
	second := rep.Results[1]
	if second.Metrics["B/op"] != 512 || second.Metrics["allocs/op"] != 4 {
		t.Fatalf("memory metrics misparsed: %+v", second)
	}
	last := rep.Results[3]
	if last.Metrics["actualB/user/cycle"] != 42.5 || last.Metrics["naiveB/user/cycle"] != 99.5 {
		t.Fatalf("custom metrics misparsed: %+v", last)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBroken 12\nok p3q 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("noise produced %d results", len(rep.Results))
	}
}

// mkReport builds a one-package report with the given (name, ns/op) pairs.
func mkReport(ns map[string]float64) *Report {
	rep := &Report{}
	for name, v := range ns {
		rep.Results = append(rep.Results, Result{
			Name: name, Pkg: "p3q", Iterations: 1, Metrics: map[string]float64{"ns/op": v},
		})
	}
	return rep
}

func TestCompareFlagsTrackedRegression(t *testing.T) {
	oldRep := mkReport(map[string]float64{
		"BenchmarkLazyConvergence5k/workers=1-8": 100,
		"BenchmarkEagerBurst5k/workers=1-8":      200,
		"BenchmarkFig2Convergence-8":             300,
	})
	newRep := mkReport(map[string]float64{
		"BenchmarkLazyConvergence5k/workers=1-4": 125, // +25%: regression (suffix stripped)
		"BenchmarkEagerBurst5k/workers=1-4":      205, // +2.5%: within threshold
		"BenchmarkFig2Convergence-4":             900, // +200% but untracked
	})
	var out strings.Builder
	n := compareReports(oldRep, newRep, splitTracked(defaultTracked), 0.10, &out)
	if n != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkLazyConvergence5k/workers=1") ||
		!strings.Contains(out.String(), "[REGRESSION]") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}
	if strings.Count(out.String(), "[REGRESSION]") != 1 {
		t.Fatalf("exactly one regression mark expected (the untracked +200%% bench must not be flagged):\n%s", out.String())
	}
}

// mkMemReport builds a one-package report where each benchmark carries
// ns/op, allocs/op and B/op, from (name -> [ns, allocs, bytes]) triples.
func mkMemReport(m map[string][3]float64) *Report {
	rep := &Report{}
	for name, v := range m {
		rep.Results = append(rep.Results, Result{
			Name: name, Pkg: "p3q", Iterations: 1,
			Metrics: map[string]float64{"ns/op": v[0], "allocs/op": v[1], "B/op": v[2]},
		})
	}
	return rep
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	// Faster but allocating more: the allocs/op gate must flag it even
	// though ns/op improved — allocation counts are the deterministic
	// signal on noisy short runs.
	oldRep := mkMemReport(map[string][3]float64{
		"BenchmarkLazyConvergence5k/workers=1-8": {100, 1000, 4096},
	})
	newRep := mkMemReport(map[string][3]float64{
		"BenchmarkLazyConvergence5k/workers=1-8": {80, 1500, 4096},
	})
	var out strings.Builder
	if n := compareReports(oldRep, newRep, splitTracked(defaultTracked), 0.10, &out); n != 1 {
		t.Fatalf("regressions = %d, want 1 (allocs/op +50%%)\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "allocs/op") || !strings.Contains(out.String(), "[REGRESSION]") {
		t.Fatalf("allocs/op regression not reported:\n%s", out.String())
	}
}

func TestCompareAllocsMissingFromOldSide(t *testing.T) {
	// Artifacts predating -benchmem have no allocs/op: the comparison must
	// fall back to the ns/op gate alone instead of failing or flagging.
	oldRep := mkReport(map[string]float64{
		"BenchmarkLazyConvergence5k/workers=1-8": 100,
	})
	newRep := mkMemReport(map[string][3]float64{
		"BenchmarkLazyConvergence5k/workers=1-8": {95, 1500, 4096},
	})
	var out strings.Builder
	if n := compareReports(oldRep, newRep, splitTracked(defaultTracked), 0.10, &out); n != 0 {
		t.Fatalf("regressions = %d, want 0 (no old-side allocs to compare)\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "[tracked]") {
		t.Fatalf("tracked mark missing:\n%s", out.String())
	}
}

func TestCompareTracks100kFamily(t *testing.T) {
	oldRep := mkReport(map[string]float64{"BenchmarkLazyConvergence100k/workers=1-8": 100})
	newRep := mkReport(map[string]float64{"BenchmarkLazyConvergence100k/workers=1-8": 150})
	var out strings.Builder
	if n := compareReports(oldRep, newRep, splitTracked(defaultTracked), 0.10, &out); n != 1 {
		t.Fatalf("regressions = %d, want 1 (100k family is tracked by default)\n%s", n, out.String())
	}
}

func TestCompareCleanRun(t *testing.T) {
	oldRep := mkReport(map[string]float64{
		"BenchmarkLazyConvergence5k/workers=1-8": 100,
		"BenchmarkGone-8":                        50,
	})
	newRep := mkReport(map[string]float64{
		"BenchmarkLazyConvergence5k/workers=1-8": 80, // faster
		"BenchmarkNew-8":                         10, // only in new: skipped
	})
	var out strings.Builder
	if n := compareReports(oldRep, newRep, splitTracked(defaultTracked), 0.10, &out); n != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "-20.0%") {
		t.Fatalf("speedup not reported:\n%s", out.String())
	}
	if strings.Contains(out.String(), "BenchmarkNew") || strings.Contains(out.String(), "BenchmarkGone") {
		t.Fatalf("benchmarks missing from one side should be skipped:\n%s", out.String())
	}
}

func TestCompareEndToEnd(t *testing.T) {
	// The full pipeline: parse text output into reports, write them as the
	// CI artifact JSON, reload, compare.
	oldRep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	faster := strings.ReplaceAll(sample, "412345678 ns/op", "212345678 ns/op")
	newRep, err := parse(strings.NewReader(faster))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if n := compareReports(oldRep, newRep, splitTracked(defaultTracked), 0.10, &out); n != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "[tracked]") {
		t.Fatalf("tracked benchmarks not marked:\n%s", out.String())
	}
}

// writeArtifact stores a report as a JSON artifact file for history tests.
func writeArtifact(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHistoryTable(t *testing.T) {
	dir := t.TempDir()
	mk := func(ns, plan, commit float64) *Report {
		return &Report{Results: []Result{
			{Name: "BenchmarkLazyConvergence5k/workers=1-8", Pkg: "p3q", Iterations: 1,
				Metrics: map[string]float64{
					"ns/op": ns, "plan-ns/op": plan, "commit-ns/op": commit,
					"allocs/op": 1200, "B/op": 65536, "alloc-B/node": 13,
				}},
			{Name: "BenchmarkUntracked-8", Pkg: "p3q", Iterations: 1,
				Metrics: map[string]float64{"ns/op": 1}},
		}}
	}
	a := writeArtifact(t, dir, "BENCH_aaa.json", mk(1000, 600, 300))
	b := writeArtifact(t, dir, "BENCH_bbb.json", mk(900, 500, 320))

	var out strings.Builder
	if err := historyTable([]string{a, b}, splitTracked(defaultTracked), false, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"| BENCH_aaa.json | BenchmarkLazyConvergence5k/workers=1 | 1000 | 1200 | 65536 | 13 | 600 | 300 | 66.7% |",
		"| BENCH_bbb.json | BenchmarkLazyConvergence5k/workers=1 | 900 | 1200 | 65536 | 13 | 500 | 320 | 61.0% |",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("history table missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "BenchmarkUntracked") {
		t.Fatalf("untracked benchmark leaked into the history table:\n%s", got)
	}

	out.Reset()
	if err := historyTable([]string{a, b}, splitTracked(defaultTracked), true, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BENCH_aaa.json,BenchmarkLazyConvergence5k/workers=1,1000,1200,65536,13,600,300,66.7%") {
		t.Fatalf("CSV history missing row:\n%s", out.String())
	}
}

func TestHistoryTableBlanksMissingMemoryMetrics(t *testing.T) {
	// Artifacts from before -benchmem carry no memory metrics: their rows
	// render blank cells in those columns rather than zeros or errors.
	dir := t.TempDir()
	rep := &Report{Results: []Result{
		{Name: "BenchmarkLazyConvergence5k/workers=1-8", Pkg: "p3q", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1000, "plan-ns/op": 600, "commit-ns/op": 300}},
	}}
	p := writeArtifact(t, dir, "BENCH_old.json", rep)
	var out strings.Builder
	if err := historyTable([]string{p}, splitTracked(defaultTracked), false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| BENCH_old.json | BenchmarkLazyConvergence5k/workers=1 | 1000 |  |  |  | 600 | 300 | 66.7% |") {
		t.Fatalf("pre-benchmem artifact row misrendered:\n%s", out.String())
	}
}

func TestHistoryTableNoTrackedBenches(t *testing.T) {
	// Artifacts that carry no tracked benchmark degrade to a note, not an
	// error: the CI job-summary step must not fail on them.
	dir := t.TempDir()
	p := writeArtifact(t, dir, "BENCH_x.json", mkReport(map[string]float64{"BenchmarkOther-8": 5}))
	var out strings.Builder
	if err := historyTable([]string{p}, splitTracked(defaultTracked), false, &out); err != nil {
		t.Fatalf("history over untracked-only artifacts should degrade gracefully, got %v", err)
	}
	if !strings.Contains(out.String(), "nothing to tabulate yet") {
		t.Fatalf("missing graceful note:\n%s", out.String())
	}
	if strings.Contains(out.String(), "| --- |") {
		t.Fatalf("unexpected table header in the no-rows case:\n%s", out.String())
	}
}

func TestHistoryTableEmptySeries(t *testing.T) {
	// A cold start has no archived artifacts at all: -history over an empty
	// series is a note and a zero exit, not a usage error.
	var out strings.Builder
	if err := historyTable(nil, splitTracked(defaultTracked), false, &out); err != nil {
		t.Fatalf("history over an empty series should degrade gracefully, got %v", err)
	}
	if !strings.Contains(out.String(), "no archived benchmark artifacts yet") {
		t.Fatalf("missing cold-start note:\n%s", out.String())
	}
}

func TestHistoryTableSingleArtifact(t *testing.T) {
	// The first run after a cold start has a one-element series; it must
	// render as a one-row table rather than demanding a pair to diff.
	dir := t.TempDir()
	rep := &Report{Results: []Result{
		{Name: "BenchmarkEagerBurst5k/workers=1-8", Pkg: "p3q", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 700, "plan-ns/op": 400, "commit-ns/op": 200}},
	}}
	p := writeArtifact(t, dir, "BENCH_only.json", rep)
	var out strings.Builder
	if err := historyTable([]string{p}, splitTracked(defaultTracked), false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| BENCH_only.json | BenchmarkEagerBurst5k/workers=1 | 700 |  |  |  | 400 | 200 | 66.7% |") {
		t.Fatalf("single-artifact history row missing:\n%s", out.String())
	}
}

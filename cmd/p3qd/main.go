// Command p3qd runs one peer daemon of a P3Q cluster: a deterministic
// engine replica serving the wire protocol over TCP for the contiguous
// node range it hosts. Daemon 0 is the lead — it drives the cluster's
// lockstep lazy/eager cycles on real timers; every other daemon follows
// the lead's step broadcasts.
//
// Every daemon of a cluster must be launched with the same -addrs,
// -users and -seed: the replicas are only interchangeable when the
// whole deterministic universe matches, and the handshake rejects any
// peer whose configuration differs.
//
// A three-daemon cluster on loopback:
//
//	p3qd -index 0 -addrs localhost:7701,localhost:7702,localhost:7703 &
//	p3qd -index 1 -addrs localhost:7701,localhost:7702,localhost:7703 &
//	p3qd -index 2 -addrs localhost:7701,localhost:7702,localhost:7703 &
//
// then query it with p3qctl (any daemon answers; members relay to the
// lead):
//
//	p3qctl -addr localhost:7702 submit -querier 3 -tags 1,4
//	p3qctl -addr localhost:7702 wait -qid 1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p3q/internal/core"
	"p3q/internal/peer"
	"p3q/internal/trace"
)

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "p3qd: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		index      = flag.Int("index", 0, "this daemon's position in -addrs; daemon 0 is the lead")
		addrs      = flag.String("addrs", "", "comma-separated host:port of every daemon, in index order")
		users      = flag.Int("users", 60, "population size; all daemons must agree")
		seed       = flag.Uint64("seed", 1, "deterministic seed; all daemons must agree")
		warmup     = flag.Int("warmup", 8, "lead only: lazy cycles run before the timers start")
		eagerEvery = flag.Duration("eager-every", 20*time.Millisecond, "lead only: eager cycle cadence while queries are in flight")
		lazyEvery  = flag.Duration("lazy-every", 0, "lead only: background lazy cycle cadence (0 = none)")
		connectFor = flag.Duration("connect-timeout", 10*time.Second, "how long to wait for peers to come up")
		httpAddr   = flag.String("http", "", "serve Prometheus /metrics and /debug/pprof on this host:port (empty = off)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		die("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	if *addrs == "" {
		die("-addrs is required")
	}
	list := strings.Split(*addrs, ",")

	gen := trace.DefaultGenParams(*users)
	ecfg := core.DefaultConfig()
	ecfg.Seed = *seed

	d, err := peer.New(peer.Config{
		Index:          *index,
		Addrs:          list,
		Gen:            gen,
		Engine:         ecfg,
		ConnectTimeout: *connectFor,
	}, peer.TCP{})
	if err != nil {
		die("%v", err)
	}
	if err := d.Start(); err != nil {
		die("%v", err)
	}
	fmt.Printf("p3qd: daemon %d/%d serving %s\n", *index, len(list), list[*index])
	if *httpAddr != "" {
		taddr, err := d.StartHTTP(*httpAddr)
		if err != nil {
			d.Close()
			die("%v", err)
		}
		fmt.Printf("p3qd: daemon %d telemetry on http://%s/metrics\n", *index, taddr)
	}
	if err := d.Connect(); err != nil {
		die("%v", err)
	}
	fmt.Printf("p3qd: daemon %d connected to the cluster\n", *index)

	errc := make(chan error, 1)
	if *index == 0 {
		go func() { errc <- d.RunLead(*warmup, *eagerEvery, *lazyEvery) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-d.ShutdownRequested():
		fmt.Printf("p3qd: daemon %d shutting down on wire request\n", *index)
	case s := <-sigc:
		fmt.Printf("p3qd: daemon %d shutting down on %v\n", *index, s)
	case err := <-errc:
		if err != nil {
			d.Close()
			die("lead driver: %v", err)
		}
	}
	d.Close()
}
